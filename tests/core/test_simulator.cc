#include "core/simulator.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "workload/model_config.h"

namespace flat {
namespace {

SimOptions
quick()
{
    SimOptions options;
    options.quick = true;
    return options;
}

TEST(Simulator, ScopeReportConsistency)
{
    const Simulator sim(edge_accel());
    const Workload w = make_workload(bert_base(), 64, 512);
    const ScopeReport report = sim.run(
        w, Scope::kBlock, DataflowPolicy::parse("flat-opt"), quick());
    EXPECT_GT(report.cycles, 0.0);
    EXPECT_GT(report.ideal_cycles, 0.0);
    EXPECT_LE(report.util(), 1.0);
    EXPECT_NEAR(report.cycles,
                report.breakdown.la_cycles + report.breakdown.proj_cycles +
                    report.breakdown.fc_cycles,
                1e-6 * report.cycles);
    EXPECT_NEAR(report.runtime_s, report.cycles * 1e-9,
                1e-12 * report.runtime_s);
    EXPECT_GT(report.energy_j, 0.0);
}

TEST(Simulator, LaScopeHasNoProjectionCost)
{
    const Simulator sim(edge_accel());
    const Workload w = make_workload(bert_base(), 64, 512);
    const ScopeReport report = sim.run(
        w, Scope::kLogitAttend, DataflowPolicy::parse("flat-h"), quick());
    EXPECT_EQ(report.breakdown.proj_cycles, 0.0);
    EXPECT_EQ(report.breakdown.fc_cycles, 0.0);
    EXPECT_GT(report.breakdown.la_cycles, 0.0);
}

TEST(Simulator, ModelScopeScalesBlockByNumBlocks)
{
    const Simulator sim(edge_accel());
    const Workload w = make_workload(bert_base(), 64, 512);
    const DataflowPolicy policy = DataflowPolicy::parse("flat-h");
    const ScopeReport block = sim.run(w, Scope::kBlock, policy, quick());
    const ScopeReport model = sim.run(w, Scope::kModel, policy, quick());
    EXPECT_NEAR(model.cycles, 12.0 * block.cycles, 1e-6 * model.cycles);
    EXPECT_NEAR(model.energy_j, 12.0 * block.energy_j,
                1e-6 * model.energy_j);
}

TEST(Simulator, FlatOptBeatsBaseOptAtLaScope)
{
    const Simulator sim(edge_accel());
    for (std::uint64_t n : {512u, 4096u, 16384u}) {
        const Workload w = make_workload(bert_base(), 64, n);
        const ScopeReport flat_report = sim.run(
            w, Scope::kLogitAttend, DataflowPolicy::parse("flat-opt"),
            quick());
        const ScopeReport base_report = sim.run(
            w, Scope::kLogitAttend, DataflowPolicy::parse("base-opt"),
            quick());
        EXPECT_GE(flat_report.util(), base_report.util() * 0.9999)
            << "N=" << n;
    }
}

TEST(Simulator, AttaccOutperformsFlexAccelAtLongSequence)
{
    const Simulator sim(edge_accel());
    const Workload w = make_workload(bert_base(), 64, 16384);
    const ScopeReport attacc = sim.run(
        w, Scope::kModel, AcceleratorSpec::parse("attacc"), quick());
    const ScopeReport flex = sim.run(
        w, Scope::kModel, AcceleratorSpec::parse("flexaccel"), quick());
    const ScopeReport flexm = sim.run(
        w, Scope::kModel, AcceleratorSpec::parse("flexaccel-m"), quick());
    EXPECT_LT(attacc.cycles, flex.cycles);
    EXPECT_LE(flex.cycles, flexm.cycles * 1.0001);
}

TEST(Simulator, BaseAccelUsesFixedDataflowEverywhere)
{
    const Simulator sim(edge_accel());
    const Workload w = make_workload(bert_base(), 64, 2048);
    const ScopeReport base_accel = sim.run(
        w, Scope::kBlock, AcceleratorSpec::parse("baseaccel"), quick());
    const ScopeReport flex = sim.run(
        w, Scope::kBlock, AcceleratorSpec::parse("flexaccel"), quick());
    EXPECT_GE(base_accel.cycles, flex.cycles);
}

TEST(Simulator, NonFusedOperatorsIdenticalAcrossFlexAndAttacc)
{
    // §6.5.1: "FlexAccel and ATTACC share the same performance for
    // Projections and FCs".
    const Simulator sim(cloud_accel());
    const Workload w = make_workload(xlm(), 64, 4096);
    const ScopeReport attacc = sim.run(
        w, Scope::kBlock, AcceleratorSpec::parse("attacc"), quick());
    const ScopeReport flex = sim.run(
        w, Scope::kBlock, AcceleratorSpec::parse("flexaccel"), quick());
    EXPECT_DOUBLE_EQ(attacc.breakdown.proj_cycles,
                     flex.breakdown.proj_cycles);
    EXPECT_DOUBLE_EQ(attacc.breakdown.fc_cycles,
                     flex.breakdown.fc_cycles);
}

TEST(Simulator, AttentionPolicyEvaluation)
{
    const Simulator sim(edge_accel());
    const Workload w = make_workload(bert_base(), 64, 1024);
    const AttentionSearchResult res = sim.attention(
        w, DataflowPolicy::parse("flat-r64"), quick());
    EXPECT_TRUE(res.found);
    EXPECT_EQ(res.best.dataflow.cross.granularity, Granularity::kRow);
    EXPECT_EQ(res.best.dataflow.cross.rows, 64u);
}

TEST(Simulator, PolicyOptionsForFixedPoliciesPinTheSpace)
{
    const AttentionSearchOptions opt = attention_options(
        DataflowPolicy::parse("base-h"), quick());
    EXPECT_FALSE(opt.fused);
    ASSERT_TRUE(opt.fixed_cross.has_value());
    EXPECT_EQ(opt.fixed_cross->granularity, Granularity::kHead);
    ASSERT_TRUE(opt.fixed_flags.has_value());
    EXPECT_TRUE(opt.fixed_flags->intermediate);

    const AttentionSearchOptions base = attention_options(
        DataflowPolicy::parse("base"), quick());
    ASSERT_TRUE(base.fixed_flags.has_value());
    EXPECT_EQ(FusedStageFlags::encode(*base.fixed_flags), 0u);
}

TEST(Simulator, SpecOptionsForAttaccRArePinnedCrossAlwaysStaged)
{
    // A fixed-granularity accelerator stages at that granularity by
    // construction (it cannot fall back to pure streaming).
    const AttentionSearchOptions opt = attention_options(
        AcceleratorSpec::parse("attacc-r128"), quick());
    EXPECT_TRUE(opt.fused);
    ASSERT_TRUE(opt.fixed_cross.has_value());
    EXPECT_EQ(opt.fixed_cross->rows, 128u);
    ASSERT_TRUE(opt.fixed_flags.has_value());
    EXPECT_EQ(FusedStageFlags::encode(*opt.fixed_flags), 31u);

    // The fully flexible ATTACC sweeps the staging flags.
    const AttentionSearchOptions full = attention_options(
        AcceleratorSpec::parse("attacc"), quick());
    EXPECT_FALSE(full.fixed_flags.has_value());
}

TEST(Simulator, RejectsInvalidAccel)
{
    AccelConfig bad = edge_accel();
    bad.pe_rows = 0;
    EXPECT_THROW(Simulator{bad}, Error);
}

} // namespace
} // namespace flat

/**
 * @file
 * Death / exit-code tests driving the REAL flatsim binary (its path is
 * baked in as FLAT_FLATSIM_PATH). The shell-based smoke tests in
 * tools/CMakeLists.txt assert exit codes only; this suite additionally
 * pins the stderr contract — every failure ends with one well-formed
 * JSON diagnostic record whose "kind" matches the exit code:
 *
 *   0 success, 1 config/infeasible, 2 usage, 3 internal/oom,
 *   4 sweep completed with failed points.
 */
#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "support/minijson.h"

namespace {

struct CliResult {
    int exit_code = -1;
    std::string stderr_text;
};

std::string
flatsim_path()
{
#ifdef FLAT_FLATSIM_PATH
    return FLAT_FLATSIM_PATH;
#else
    return "flatsim";
#endif
}

/** Runs `flatsim <args>`, capturing exit code and stderr. */
CliResult
run_flatsim(const std::string& args)
{
    // 2>&1 1>/dev/null: the pipe sees stderr only; stdout is dropped.
    const std::string command =
        "'" + flatsim_path() + "' " + args + " 2>&1 1>/dev/null";
    std::FILE* pipe = popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << "popen failed for: " << command;
    CliResult result;
    if (pipe == nullptr) {
        return result;
    }
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
        result.stderr_text.append(buf, n);
    }
    const int status = pclose(pipe);
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

/** Last non-empty stderr line — the machine-readable diagnostic. */
std::string
last_line(const std::string& text)
{
    std::size_t end = text.size();
    while (end > 0 && text[end - 1] == '\n') {
        --end;
    }
    const std::size_t start = text.rfind('\n', end - 1);
    return text.substr(start == std::string::npos ? 0 : start + 1,
                       end - (start == std::string::npos ? 0 : start + 1));
}

/** Asserts the stderr tail is one JSON diagnostic of @p kind. */
void
expect_json_diagnostic(const CliResult& result, const std::string& kind)
{
    ASSERT_FALSE(result.stderr_text.empty());
    const std::string record = last_line(result.stderr_text);
    flat::testing::FlatJson doc;
    ASSERT_NO_THROW(doc = flat::testing::parse_flat_json(record))
        << "stderr tail is not well-formed JSON: " << record;
    ASSERT_TRUE(doc.count("kind")) << record;
    EXPECT_EQ(doc.at("kind"), "\"" + kind + "\"") << record;
    ASSERT_TRUE(doc.count("severity")) << record;
    EXPECT_EQ(doc.at("severity"), "\"error\"") << record;
    EXPECT_TRUE(doc.count("message")) << record;
}

TEST(FlatsimCli, SuccessExitsZeroWithSilentStderr)
{
    const CliResult result =
        run_flatsim("--model bert --seq 512 --scope la --quick");
    EXPECT_EQ(result.exit_code, 0);
    EXPECT_TRUE(result.stderr_text.empty()) << result.stderr_text;
}

TEST(FlatsimCli, UnknownFlagExitsTwo)
{
    const CliResult result = run_flatsim("--frobnicate");
    EXPECT_EQ(result.exit_code, 2);
}

TEST(FlatsimCli, BadNumericFlagExitsTwoWithUsageDiagnostic)
{
    const CliResult result = run_flatsim("--seq banana");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
}

TEST(FlatsimCli, MissingFlagValueExitsTwo)
{
    const CliResult result = run_flatsim("--seq");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
}

TEST(FlatsimCli, BadShardAxisExitsTwo)
{
    const CliResult result =
        run_flatsim("--devices 4 --shard-axis sideways");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
}

TEST(FlatsimCli, MalformedFaultSpecExitsTwo)
{
    const CliResult result = run_flatsim("--inject-fault ':::bogus'");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
}

TEST(FlatsimCli, UnknownModelExitsOneWithConfigDiagnostic)
{
    const CliResult result = run_flatsim("--model gpt17");
    EXPECT_EQ(result.exit_code, 1);
    expect_json_diagnostic(result, "config");
}

TEST(FlatsimCli, MissingPlatformFileExitsOne)
{
    const CliResult result =
        run_flatsim("--platform-file /nonexistent/platform.cfg");
    EXPECT_EQ(result.exit_code, 1);
    expect_json_diagnostic(result, "config");
}

TEST(FlatsimCli, InfeasibleScaleOutExitsOne)
{
    // bert has 12 heads: a pinned head shard across 16 devices cannot
    // be satisfied, and neither can batch=2 or seq=64 cover 16.
    const CliResult result = run_flatsim(
        "--model bert --seq 64 --batch 2 --scope la --quick "
        "--devices 16 --shard-axis head");
    EXPECT_EQ(result.exit_code, 1);
    expect_json_diagnostic(result, "config");
}

TEST(FlatsimCli, ScaleOutRunExitsZero)
{
    const CliResult result = run_flatsim(
        "--model bert --seq 1024 --scope la --quick --devices 4 "
        "--shard-axis seq --topology ring --link-bw 300GB/s");
    EXPECT_EQ(result.exit_code, 0);
    EXPECT_TRUE(result.stderr_text.empty()) << result.stderr_text;
}

TEST(FlatsimCli, InjectedInternalFaultExitsThree)
{
    const CliResult result = run_flatsim(
        "--seq 512 --scope la --quick "
        "--inject-fault dse.search_attention:0:internal");
    EXPECT_EQ(result.exit_code, 3);
    expect_json_diagnostic(result, "internal");
}

TEST(FlatsimCli, InjectedOomExitsThree)
{
    const CliResult result = run_flatsim(
        "--seq 512 --scope la --quick "
        "--inject-fault dse.search_attention:0:oom");
    EXPECT_EQ(result.exit_code, 3);
    expect_json_diagnostic(result, "oom");
}

TEST(FlatsimCli, PoisonedSweepPointExitsFour)
{
    const std::string spec_path = "flatsim_cli_poison.sweep";
    {
        std::ofstream spec(spec_path);
        ASSERT_TRUE(spec.is_open());
        spec << "models = bert\nplatforms = edge\n"
             << "policies = flat-opt, base\nseq = 256, 512\n"
             << "batch = 2, 4\nscope = la\nquick = true\n";
    }
    const CliResult result = run_flatsim(
        "--sweep " + spec_path + " --json --inject-fault sweep.point:3");
    std::remove(spec_path.c_str());
    EXPECT_EQ(result.exit_code, 4);
}

} // namespace

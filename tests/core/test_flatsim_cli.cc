/**
 * @file
 * Death / exit-code tests driving the REAL flatsim binary (its path is
 * baked in as FLAT_FLATSIM_PATH). The shell-based smoke tests in
 * tools/CMakeLists.txt assert exit codes only; this suite additionally
 * pins the stderr contract — every failure ends with one well-formed
 * JSON diagnostic record whose "kind" matches the exit code:
 *
 *   0 success, 1 config/infeasible, 2 usage, 3 internal/oom/timeout,
 *   4 sweep completed with failed points, 5 cancelled (signal drain).
 *
 * Plus the long-run contract: --journal/--resume survive a mid-sweep
 * crash (kCrash fault = SIGABRT) and a SIGINT drain, and the resumed
 * output is identical to an uninterrupted run's.
 */
#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "support/minijson.h"

namespace {

struct CliResult {
    int exit_code = -1;
    std::string stderr_text;
};

std::string
flatsim_path()
{
#ifdef FLAT_FLATSIM_PATH
    return FLAT_FLATSIM_PATH;
#else
    return "flatsim";
#endif
}

/** Runs `flatsim <args>`, capturing exit code and stderr. */
CliResult
run_flatsim(const std::string& args)
{
    // 2>&1 1>/dev/null: the pipe sees stderr only; stdout is dropped.
    const std::string command =
        "'" + flatsim_path() + "' " + args + " 2>&1 1>/dev/null";
    std::FILE* pipe = popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << "popen failed for: " << command;
    CliResult result;
    if (pipe == nullptr) {
        return result;
    }
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
        result.stderr_text.append(buf, n);
    }
    const int status = pclose(pipe);
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

/** Last non-empty stderr line — the machine-readable diagnostic. */
std::string
last_line(const std::string& text)
{
    std::size_t end = text.size();
    while (end > 0 && text[end - 1] == '\n') {
        --end;
    }
    const std::size_t start = text.rfind('\n', end - 1);
    return text.substr(start == std::string::npos ? 0 : start + 1,
                       end - (start == std::string::npos ? 0 : start + 1));
}

/** Asserts the stderr tail is one JSON diagnostic of @p kind. */
void
expect_json_diagnostic(const CliResult& result, const std::string& kind)
{
    ASSERT_FALSE(result.stderr_text.empty());
    const std::string record = last_line(result.stderr_text);
    flat::testing::FlatJson doc;
    ASSERT_NO_THROW(doc = flat::testing::parse_flat_json(record))
        << "stderr tail is not well-formed JSON: " << record;
    ASSERT_TRUE(doc.count("kind")) << record;
    EXPECT_EQ(doc.at("kind"), "\"" + kind + "\"") << record;
    ASSERT_TRUE(doc.count("severity")) << record;
    EXPECT_EQ(doc.at("severity"), "\"error\"") << record;
    EXPECT_TRUE(doc.count("message")) << record;
}

struct CliOutput {
    int exit_code = -1;
    std::string stdout_text;
};

/** Runs `flatsim <args>`, capturing exit code and stdout. */
CliOutput
run_flatsim_stdout(const std::string& args)
{
    const std::string command =
        "'" + flatsim_path() + "' " + args + " 2>/dev/null";
    std::FILE* pipe = popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << "popen failed for: " << command;
    CliOutput result;
    if (pipe == nullptr) {
        return result;
    }
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
        result.stdout_text.append(buf, n);
    }
    const int status = pclose(pipe);
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

/** wall_ms values are the only run-to-run noise in sweep JSON. */
std::string
scrub_wall_ms(const std::string& text)
{
    const std::string key = "\"wall_ms\":";
    std::string out;
    out.reserve(text.size());
    std::size_t pos = 0;
    while (true) {
        const std::size_t hit = text.find(key, pos);
        if (hit == std::string::npos) {
            out.append(text, pos, std::string::npos);
            return out;
        }
        out.append(text, pos, hit + key.size() - pos);
        out.push_back('0');
        std::size_t end = hit + key.size();
        while (end < text.size() && text[end] != ',' &&
               text[end] != '}') {
            ++end;
        }
        pos = end;
    }
}

/** Writes the 8-point smoke sweep spec used by the long-run tests. */
std::string
write_sweep_spec(const std::string& name)
{
    std::ofstream spec(name);
    EXPECT_TRUE(spec.is_open());
    spec << "models = bert\nplatforms = edge\n"
         << "policies = flat-opt, base\nseq = 256, 512\n"
         << "batch = 2, 4\nscope = la\nquick = true\n";
    return name;
}

TEST(FlatsimCli, SuccessExitsZeroWithSilentStderr)
{
    const CliResult result =
        run_flatsim("--model bert --seq 512 --scope la --quick");
    EXPECT_EQ(result.exit_code, 0);
    EXPECT_TRUE(result.stderr_text.empty()) << result.stderr_text;
}

TEST(FlatsimCli, UnknownFlagExitsTwo)
{
    const CliResult result = run_flatsim("--frobnicate");
    EXPECT_EQ(result.exit_code, 2);
}

TEST(FlatsimCli, BadNumericFlagExitsTwoWithUsageDiagnostic)
{
    const CliResult result = run_flatsim("--seq banana");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
}

TEST(FlatsimCli, MissingFlagValueExitsTwo)
{
    const CliResult result = run_flatsim("--seq");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
}

TEST(FlatsimCli, BadShardAxisExitsTwo)
{
    const CliResult result =
        run_flatsim("--devices 4 --shard-axis sideways");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
}

TEST(FlatsimCli, MalformedFaultSpecExitsTwo)
{
    const CliResult result = run_flatsim("--inject-fault ':::bogus'");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
}

TEST(FlatsimCli, UnknownStyleExitsTwoWithUsageDiagnostic)
{
    const CliResult result = run_flatsim("--style bogus --scope la");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
    EXPECT_NE(result.stderr_text.find("--list-styles"),
              std::string::npos)
        << result.stderr_text;
}

TEST(FlatsimCli, ListStylesPrintsTheRegistryInOrder)
{
    const CliOutput result = run_flatsim_stdout("--list-styles");
    EXPECT_EQ(result.exit_code, 0);
    // Registry order: the four ids appear, each at an increasing
    // offset, and "all" is documented as the expansion token.
    std::size_t pos = 0;
    for (const char* id : {"baseline", "flat", "pipelined", "flash"}) {
        const std::size_t at = result.stdout_text.find(
            std::string("\n  ") + id, pos);
        EXPECT_NE(at, std::string::npos)
            << "style '" << id << "' missing after offset " << pos
            << " in:\n" << result.stdout_text;
        pos = at == std::string::npos ? pos : at;
    }
    EXPECT_NE(result.stdout_text.find("'all'"), std::string::npos);
}

TEST(FlatsimCli, FlashStyleRunsEndToEnd)
{
    const CliOutput result = run_flatsim_stdout(
        "--style flash --scope la --quick --json");
    EXPECT_EQ(result.exit_code, 0);
    EXPECT_NE(result.stdout_text.find("\"picked_dataflow\":\"flash:"),
              std::string::npos)
        << result.stdout_text;
}

TEST(FlatsimCli, CommaSeparatedStyleListIsAccepted)
{
    const CliResult result = run_flatsim(
        "--style flat,flash --scope la --quick");
    EXPECT_EQ(result.exit_code, 0);
    EXPECT_TRUE(result.stderr_text.empty()) << result.stderr_text;
}

TEST(FlatsimCli, UnknownModelExitsOneWithConfigDiagnostic)
{
    const CliResult result = run_flatsim("--model gpt17");
    EXPECT_EQ(result.exit_code, 1);
    expect_json_diagnostic(result, "config");
}

TEST(FlatsimCli, MissingPlatformFileExitsOne)
{
    const CliResult result =
        run_flatsim("--platform-file /nonexistent/platform.cfg");
    EXPECT_EQ(result.exit_code, 1);
    expect_json_diagnostic(result, "config");
}

TEST(FlatsimCli, InfeasibleScaleOutExitsOne)
{
    // bert has 12 heads: a pinned head shard across 16 devices cannot
    // be satisfied, and neither can batch=2 or seq=64 cover 16.
    const CliResult result = run_flatsim(
        "--model bert --seq 64 --batch 2 --scope la --quick "
        "--devices 16 --shard-axis head");
    EXPECT_EQ(result.exit_code, 1);
    expect_json_diagnostic(result, "config");
}

TEST(FlatsimCli, ScaleOutRunExitsZero)
{
    const CliResult result = run_flatsim(
        "--model bert --seq 1024 --scope la --quick --devices 4 "
        "--shard-axis seq --topology ring --link-bw 300GB/s");
    EXPECT_EQ(result.exit_code, 0);
    EXPECT_TRUE(result.stderr_text.empty()) << result.stderr_text;
}

TEST(FlatsimCli, InjectedInternalFaultExitsThree)
{
    const CliResult result = run_flatsim(
        "--seq 512 --scope la --quick "
        "--inject-fault dse.search_attention:0:internal");
    EXPECT_EQ(result.exit_code, 3);
    expect_json_diagnostic(result, "internal");
}

TEST(FlatsimCli, InjectedOomExitsThree)
{
    const CliResult result = run_flatsim(
        "--seq 512 --scope la --quick "
        "--inject-fault dse.search_attention:0:oom");
    EXPECT_EQ(result.exit_code, 3);
    expect_json_diagnostic(result, "oom");
}

TEST(FlatsimCli, PoisonedSweepPointExitsFour)
{
    const std::string spec_path = "flatsim_cli_poison.sweep";
    {
        std::ofstream spec(spec_path);
        ASSERT_TRUE(spec.is_open());
        spec << "models = bert\nplatforms = edge\n"
             << "policies = flat-opt, base\nseq = 256, 512\n"
             << "batch = 2, 4\nscope = la\nquick = true\n";
    }
    const CliResult result = run_flatsim(
        "--sweep " + spec_path + " --json --inject-fault sweep.point:3");
    std::remove(spec_path.c_str());
    EXPECT_EQ(result.exit_code, 4);
}

TEST(FlatsimCli, JournalingKeepsSingleRunOutputBitIdentical)
{
    const std::string journal = "flatsim_cli_run_journal.jsonl";
    std::remove(journal.c_str());
    const std::string args = "--model bert --seq 1024 --scope la "
                             "--quick --json";
    const CliOutput plain = run_flatsim_stdout(args);
    const CliOutput journaled =
        run_flatsim_stdout(args + " --journal " + journal);
    const CliOutput resumed =
        run_flatsim_stdout(args + " --resume " + journal);
    std::remove(journal.c_str());
    EXPECT_EQ(plain.exit_code, 0);
    EXPECT_EQ(journaled.exit_code, 0);
    EXPECT_EQ(resumed.exit_code, 0);
    EXPECT_EQ(plain.stdout_text, journaled.stdout_text);
    EXPECT_EQ(plain.stdout_text, resumed.stdout_text);
}

TEST(FlatsimCli, GoldenTraceJsonBitIdenticalWithJournalingEnabled)
{
    const std::string journal = "flatsim_cli_trace_journal.jsonl";
    std::remove(journal.c_str());
    // The golden-trace configs pin --trace-json bytes; journaling (and
    // resuming) must never perturb them.
    const std::string args = "--model bert --seq 2048 --scope la "
                             "--quick --trace-json";
    const CliOutput plain = run_flatsim_stdout(args);
    const CliOutput journaled =
        run_flatsim_stdout(args + " --journal " + journal);
    const CliOutput resumed =
        run_flatsim_stdout(args + " --resume " + journal);
    std::remove(journal.c_str());
    EXPECT_EQ(plain.exit_code, 0);
    EXPECT_EQ(plain.stdout_text, journaled.stdout_text);
    EXPECT_EQ(plain.stdout_text, resumed.stdout_text);
}

TEST(FlatsimCli, CrashedSweepResumesToTheIdenticalReport)
{
    const std::string spec = write_sweep_spec("flatsim_cli_crash.sweep");
    const std::string journal = "flatsim_cli_crash_journal.jsonl";
    std::remove(journal.c_str());

    const CliOutput fresh =
        run_flatsim_stdout("--sweep " + spec + " --json");
    ASSERT_EQ(fresh.exit_code, 0);

    // Kill the run mid-sweep via the deterministic crash probe
    // (std::abort -> SIGABRT -> the shell reports 128+6).
    const CliOutput crashed = run_flatsim_stdout(
        "--sweep " + spec + " --json --journal " + journal +
        " --inject-fault sweep.point:5:crash");
    EXPECT_EQ(crashed.exit_code, 134);

    const CliOutput resumed = run_flatsim_stdout(
        "--sweep " + spec + " --json --resume " + journal);
    std::remove(spec.c_str());
    std::remove(journal.c_str());
    EXPECT_EQ(resumed.exit_code, 0);
    EXPECT_EQ(scrub_wall_ms(resumed.stdout_text),
              scrub_wall_ms(fresh.stdout_text));
}

TEST(FlatsimCli, SigintDrainsGracefullyWithExitFive)
{
    const std::string spec = write_sweep_spec("flatsim_cli_drain.sweep");
    const std::string journal = "flatsim_cli_drain_journal.jsonl";
    std::remove(journal.c_str());

    // Point 0 sleeps 3 s; SIGINT arrives after ~1 s. The drain lets the
    // running point finish, marks the rest cancelled and exits 5.
    const std::string script =
        "'" + flatsim_path() + "' --sweep " + spec +
        " --threads 1 --journal " + journal +
        " --inject-fault sweep.point:0:delay=3000"
        " > flatsim_cli_drain.out 2>&1 & pid=$!; sleep 1; "
        "kill -INT $pid; wait $pid; echo $?";
    std::FILE* pipe = popen(script.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    char buf[64];
    std::string echoed;
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
        echoed.append(buf, n);
    }
    pclose(pipe);
    EXPECT_EQ(echoed.substr(0, echoed.find('\n')), "5");

    std::ifstream out("flatsim_cli_drain.out");
    const std::string text((std::istreambuf_iterator<char>(out)),
                           std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("cancelled"), std::string::npos) << text;

    // The drained journal resumes to the uninterrupted report.
    const CliOutput fresh =
        run_flatsim_stdout("--sweep " + spec + " --json");
    const CliOutput resumed = run_flatsim_stdout(
        "--sweep " + spec + " --json --resume " + journal);
    std::remove(spec.c_str());
    std::remove(journal.c_str());
    std::remove("flatsim_cli_drain.out");
    EXPECT_EQ(resumed.exit_code, 0);
    EXPECT_EQ(scrub_wall_ms(resumed.stdout_text),
              scrub_wall_ms(fresh.stdout_text));
}

TEST(FlatsimCli, ClosedStdoutPipeKeepsTheRunExitCode)
{
    const std::string spec = write_sweep_spec("flatsim_cli_pipe.sweep");
    const std::string script =
        "( '" + flatsim_path() + "' --sweep " + spec +
        " --json; echo $? > flatsim_cli_pipe.code )"
        " | head -c 32 > /dev/null; cat flatsim_cli_pipe.code";
    std::FILE* pipe = popen(script.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    char buf[64];
    std::string echoed;
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
        echoed.append(buf, n);
    }
    pclose(pipe);
    std::remove(spec.c_str());
    std::remove("flatsim_cli_pipe.code");
    EXPECT_EQ(echoed.substr(0, echoed.find('\n')), "0");
}

TEST(FlatsimCli, StaleJournalExitsOneWithConfigDiagnostic)
{
    const std::string journal = "flatsim_cli_stale_journal.jsonl";
    std::remove(journal.c_str());
    ASSERT_EQ(run_flatsim_stdout("--model bert --seq 512 --scope la "
                                 "--quick --journal " + journal)
                  .exit_code,
              0);
    // A different sequence length is a different search space.
    const CliResult result =
        run_flatsim("--model bert --seq 1024 --scope la --quick "
                    "--resume " + journal);
    std::remove(journal.c_str());
    EXPECT_EQ(result.exit_code, 1);
    expect_json_diagnostic(result, "config");
    EXPECT_NE(result.stderr_text.find("stale"), std::string::npos);
}

TEST(FlatsimCli, JournalAndResumeAreMutuallyExclusive)
{
    const CliResult result =
        run_flatsim("--journal a.jsonl --resume b.jsonl");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
}

TEST(FlatsimCli, MissingResumeJournalExitsOne)
{
    const CliResult result = run_flatsim(
        "--model bert --seq 512 --scope la --quick "
        "--resume /nonexistent/journal.jsonl");
    EXPECT_EQ(result.exit_code, 1);
    expect_json_diagnostic(result, "config");
}

// ---------------------------------------------------------------------
// --serve: the request-level traffic simulator's CLI contract.

TEST(FlatsimCli, ServeUnknownSchedPolicyExitsTwo)
{
    const CliResult result = run_flatsim("--serve --sched lifo");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
    EXPECT_NE(result.stderr_text.find("lifo"), std::string::npos);
}

TEST(FlatsimCli, ServeUnknownArrivalKindExitsTwo)
{
    const CliResult result = run_flatsim("--serve --arrival uniform");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
}

TEST(FlatsimCli, ServeReplayWithoutTraceFileExitsTwo)
{
    const CliResult result = run_flatsim("--serve --arrival replay");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
    EXPECT_NE(result.stderr_text.find("--arrival-file"),
              std::string::npos);
}

TEST(FlatsimCli, ServeMissingTraceFileExitsTwo)
{
    const CliResult result = run_flatsim(
        "--serve --arrival replay "
        "--arrival-file /nonexistent/trace.csv");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
}

TEST(FlatsimCli, ServeMalformedTraceRowExitsTwo)
{
    const std::string trace = "flatsim_cli_bad_trace.csv";
    {
        std::ofstream out(trace);
        ASSERT_TRUE(out.is_open());
        out << "0.5, banana, 8\n";
    }
    const CliResult result = run_flatsim(
        "--serve --arrival replay --arrival-file " + trace);
    std::remove(trace.c_str());
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
}

TEST(FlatsimCli, ServeBadRateExitsTwo)
{
    const CliResult result = run_flatsim("--serve --rate -3");
    EXPECT_EQ(result.exit_code, 2);
    expect_json_diagnostic(result, "usage");
}

TEST(FlatsimCli, ServeExcludesSweepAndTrace)
{
    EXPECT_EQ(run_flatsim("--serve --sweep spec.txt").exit_code, 2);
    EXPECT_EQ(run_flatsim("--serve --trace").exit_code, 2);
}

TEST(FlatsimCli, ServeRunsEndToEndWithJsonReport)
{
    const CliOutput result = run_flatsim_stdout(
        "--serve --model bert --serve-requests 4 --quick --json");
    EXPECT_EQ(result.exit_code, 0);
    EXPECT_NE(result.stdout_text.find("\"tokens_per_s\""),
              std::string::npos);
    EXPECT_NE(result.stdout_text.find("\"completed\":4"),
              std::string::npos);
    EXPECT_NE(result.stdout_text.find("\"cancelled\":false"),
              std::string::npos);
}

TEST(FlatsimCli, ServeReplayTraceRunsEndToEnd)
{
    const std::string trace = "flatsim_cli_replay.csv";
    {
        std::ofstream out(trace);
        ASSERT_TRUE(out.is_open());
        out << "# t, prompt, output\n"
            << "0.0, 128, 2\n0.1, 256, 2\n0.2, 64, 2\n";
    }
    const CliOutput result = run_flatsim_stdout(
        "--serve --arrival replay --arrival-file " + trace +
        " --quick --json");
    std::remove(trace.c_str());
    EXPECT_EQ(result.exit_code, 0);
    EXPECT_NE(result.stdout_text.find("\"completed\":3"),
              std::string::npos);
}

/** cost_journal_hits is the only field a resumed serve run may change
 *  (costs replay from the journal instead of the DSE). */
std::string
scrub_journal_hits(const std::string& text)
{
    const std::string key = "\"cost_journal_hits\":";
    const std::size_t hit = text.find(key);
    if (hit == std::string::npos) {
        return text;
    }
    std::size_t end = hit + key.size();
    while (end < text.size() && text[end] != ',' && text[end] != '}') {
        ++end;
    }
    return text.substr(0, hit + key.size()) + "0" + text.substr(end);
}

TEST(FlatsimCli, ServeJournalResumeIsBitIdentical)
{
    const std::string journal = "flatsim_cli_serve_journal.jsonl";
    std::remove(journal.c_str());
    const std::string args =
        "--serve --model bert --serve-requests 6 --quick --json";
    const CliOutput plain = run_flatsim_stdout(args);
    const CliOutput journaled =
        run_flatsim_stdout(args + " --journal " + journal);
    const CliOutput resumed =
        run_flatsim_stdout(args + " --resume " + journal);
    std::remove(journal.c_str());
    EXPECT_EQ(plain.exit_code, 0);
    EXPECT_EQ(journaled.exit_code, 0);
    EXPECT_EQ(resumed.exit_code, 0);
    EXPECT_EQ(plain.stdout_text, journaled.stdout_text);
    EXPECT_EQ(scrub_journal_hits(plain.stdout_text),
              scrub_journal_hits(resumed.stdout_text));
    // The resume actually replayed costs rather than re-searching.
    EXPECT_EQ(resumed.stdout_text.find("\"cost_journal_hits\":0"),
              std::string::npos);
}

TEST(FlatsimCli, ServeStaleJournalExitsOne)
{
    const std::string journal = "flatsim_cli_serve_stale.jsonl";
    std::remove(journal.c_str());
    ASSERT_EQ(run_flatsim_stdout("--serve --model bert "
                                 "--serve-requests 4 --quick "
                                 "--journal " + journal)
                  .exit_code,
              0);
    // One more request is a different trace, hence a different space.
    const CliResult result =
        run_flatsim("--serve --model bert --serve-requests 5 --quick "
                    "--resume " + journal);
    std::remove(journal.c_str());
    EXPECT_EQ(result.exit_code, 1);
    expect_json_diagnostic(result, "config");
}

TEST(FlatsimCli, ServeSigintDrainsToPartialReportWithExitFive)
{
    // The first step-cost DSE sleeps 3 s via the delay probe; SIGINT
    // arrives after ~1 s. The drain finishes the in-flight step, then
    // the loop notices the cancel, prints the PARTIAL report on stdout
    // and exits through the documented cancelled path (exit 5).
    const std::string script =
        "'" + flatsim_path() + "' --serve --model bert "
        "--serve-requests 4 --quick --json "
        "--inject-fault dse.search_attention:0:delay=3000"
        " > flatsim_cli_serve_drain.out 2>&1 & pid=$!; sleep 1; "
        "kill -INT $pid; wait $pid; echo $?";
    std::FILE* pipe = popen(script.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    char buf[64];
    std::string echoed;
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
        echoed.append(buf, n);
    }
    pclose(pipe);
    EXPECT_EQ(echoed.substr(0, echoed.find('\n')), "5");

    std::ifstream out("flatsim_cli_serve_drain.out");
    const std::string text((std::istreambuf_iterator<char>(out)),
                           std::istreambuf_iterator<char>());
    std::remove("flatsim_cli_serve_drain.out");
    // Partial SLO report on stdout, cancelled diagnostic on stderr.
    EXPECT_NE(text.find("\"cancelled\":true"), std::string::npos)
        << text;
    EXPECT_NE(text.find("\"kind\":\"cancelled\""), std::string::npos)
        << text;
}

} // namespace

/**
 * @file
 * Long-run robustness of the sweep engine: journaled checkpoint /
 * resume determinism (threads 1 vs 8, prune on/off, complete and
 * interrupted journals), graceful cancellation drain (exit 5), the
 * preemptive per-point deadline, and transparent transient retries
 * with deterministic attempt counts.
 */
#include "core/sweep.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "common/json.h"

namespace flat {
namespace {

/** 2 models x 2 policies x 2 seqs x 2 batches = 16 cheap points. */
SweepSpec
small_spec()
{
    return SweepSpec::from_text(
        "models    = bert, t5\n"
        "platforms = edge\n"
        "policies  = flat-opt, base\n"
        "seq       = 256, 512\n"
        "batch     = 2, 4\n"
        "scope     = la\n"
        "quick     = true\n");
}

/** Machine-readable report with wall-clock noise normalized away —
 *  everything else must be byte-identical across resume paths. */
std::string
scrubbed_json(const SweepReport& report)
{
    JsonWriter json;
    report.write_json(json);
    const std::string text = json.str();
    const std::string key = "\"wall_ms\":";
    std::string out;
    out.reserve(text.size());
    std::size_t pos = 0;
    while (true) {
        const std::size_t hit = text.find(key, pos);
        if (hit == std::string::npos) {
            out.append(text, pos, std::string::npos);
            return out;
        }
        out.append(text, pos, hit + key.size() - pos);
        out.push_back('0');
        std::size_t end = hit + key.size();
        while (end < text.size() && text[end] != ',' &&
               text[end] != '}') {
            ++end;
        }
        pos = end;
    }
}

class SweepResume : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "flat_sweep_resume_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".jsonl";
        std::remove(path_.c_str());
    }

    void TearDown() override
    {
        disarm_all_faults();
        std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(SweepResume, JournalHeaderTracksResultShapingKnobsOnly)
{
    const SweepSpec spec = small_spec();
    SimOptions sim;
    const RunJournalHeader base = sweep_journal_header(spec, sim);
    EXPECT_EQ(base.mode, "sweep");
    EXPECT_EQ(base.points, 16u);

    // Execution knobs do not invalidate a journal...
    SimOptions threaded = sim;
    threaded.threads = 8;
    threaded.prune = false;
    threaded.batch_width = 4;
    EXPECT_EQ(sweep_journal_header(spec, threaded).space_hash,
              base.space_hash);

    // ...result-shaping knobs do.
    SweepSpec other = spec;
    other.seq_lens = {256, 1024};
    EXPECT_NE(sweep_journal_header(other, sim).space_hash,
              base.space_hash);
    SimOptions serialized = sim;
    serialized.baseline_overlap = BaselineOverlap::kSerialized;
    EXPECT_NE(sweep_journal_header(spec, serialized).space_hash,
              base.space_hash);
}

TEST_F(SweepResume, ResumedSweepMatchesFreshAcrossThreadsAndPrune)
{
    const SweepSpec spec = small_spec();
    SweepOptions options;
    options.threads = 2;
    const std::string fresh = scrubbed_json(run_sweep(spec, options));

    {
        auto journal = RunJournal::create(
            path_, sweep_journal_header(spec, options.sim));
        SweepOptions journaled = options;
        journaled.journal = journal.get();
        // Journaling itself must not change the report.
        EXPECT_EQ(scrubbed_json(run_sweep(spec, journaled)), fresh);
    }

    for (const unsigned threads : {1u, 8u}) {
        for (const bool prune : {true, false}) {
            SCOPED_TRACE(std::to_string(threads) + " threads, prune " +
                         (prune ? "on" : "off"));
            SweepOptions resumed_options;
            resumed_options.threads = threads;
            resumed_options.sim.prune = prune;
            auto journal = RunJournal::open_resume(
                path_, sweep_journal_header(spec, resumed_options.sim));
            resumed_options.journal = journal.get();
            const SweepReport resumed = run_sweep(spec, resumed_options);
            EXPECT_EQ(resumed.resumed(), 16u);
            EXPECT_EQ(scrubbed_json(resumed), fresh);
        }
    }
}

TEST_F(SweepResume, InterruptedJournalResumesToTheIdenticalReport)
{
    const SweepSpec spec = small_spec();
    SweepOptions options;
    options.threads = 2;
    const std::string fresh = scrubbed_json(run_sweep(spec, options));

    {
        auto journal = RunJournal::create(
            path_, sweep_journal_header(spec, options.sim));
        SweepOptions journaled = options;
        journaled.journal = journal.get();
        run_sweep(spec, journaled);
    }
    // Simulate a crash partway: keep the header plus roughly half of
    // the journal (which interleaves per-search slice records with
    // completed sweep points — any prefix is a valid crash state).
    std::vector<std::string> lines;
    {
        std::ifstream in(path_);
        std::string line;
        while (std::getline(in, line)) {
            lines.push_back(line);
        }
    }
    ASSERT_GT(lines.size(), 4u);
    {
        std::ofstream out(path_, std::ios::trunc);
        for (std::size_t i = 0; i < lines.size() / 2; ++i) {
            out << lines[i] << "\n";
        }
    }
    SweepOptions resumed_options;
    resumed_options.threads = 8;
    resumed_options.sim.prune = false;
    auto journal = RunJournal::open_resume(
        path_, sweep_journal_header(spec, resumed_options.sim));
    resumed_options.journal = journal.get();
    const SweepReport resumed = run_sweep(spec, resumed_options);
    EXPECT_LT(resumed.resumed(), 16u);
    EXPECT_EQ(scrubbed_json(resumed), fresh);
}

TEST_F(SweepResume, PreCancelledSweepDrainsWithExitFive)
{
    CancellationToken cancel;
    cancel.request(CancelReason::kSignal);
    SweepOptions options;
    options.threads = 2;
    options.cancel = &cancel;
    const SweepReport report = run_sweep(small_spec(), options);
    ASSERT_EQ(report.results.size(), 16u);
    EXPECT_EQ(report.cancelled(), 16u);
    EXPECT_EQ(report.completed(), 0u);
    EXPECT_EQ(report.failed(), 0u);
    EXPECT_EQ(report.exit_code(), 5);
    for (const SweepPointResult& r : report.results) {
        EXPECT_TRUE(r.cancelled);
        EXPECT_EQ(r.attempts, 0u);
    }
    JsonWriter json;
    report.write_json(json);
    EXPECT_NE(json.str().find("\"cancelled\":16"), std::string::npos);
}

TEST_F(SweepResume, PreemptiveDeadlineStopsAStuckPointEarly)
{
    // One expensive point (full menus, block scope) with a deadline far
    // below its evaluation time: the per-point token must unwind the
    // DSE at a poll point and record a timeout diagnostic.
    const SweepSpec spec = SweepSpec::from_text(
        "models    = bert\n"
        "platforms = edge\n"
        "policies  = flat-opt\n"
        "seq       = 8192\n"
        "batch     = 64\n"
        "scope     = block\n");
    SweepOptions options;
    options.threads = 1;
    options.deadline_ms = 5.0;
    const SweepReport report = run_sweep(spec, options);
    ASSERT_EQ(report.results.size(), 1u);
    EXPECT_FALSE(report.results[0].ok);
    EXPECT_EQ(report.results[0].diag.kind, DiagKind::kTimeout);
    EXPECT_EQ(report.exit_code(), 4);
}

TEST_F(SweepResume, TransientRetriesSucceedWithDeterministicAttempts)
{
    for (const unsigned threads : {1u, 4u}) {
        SCOPED_TRACE(std::to_string(threads) + " threads");
        FaultSpec transient;
        transient.action = FaultAction::kTransient;
        transient.seed = 1;
        transient.count = 2;
        arm_fault("sweep.point", transient); // re-arm resets attempts

        SweepOptions options;
        options.threads = threads;
        options.retries = 2;
        const SweepReport report = run_sweep(small_spec(), options);
        EXPECT_EQ(report.completed(), 16u);
        EXPECT_EQ(report.exit_code(), 0);
        EXPECT_EQ(report.retried_points(), 1u);
        EXPECT_EQ(report.extra_attempts(), 2u);
        for (const SweepPointResult& r : report.results) {
            EXPECT_EQ(r.attempts, r.point.index == 1 ? 3u : 1u);
            if (r.point.index == 1) {
                // The failed attempts leave warning diagnostics.
                EXPECT_EQ(r.warnings.size(), 2u);
            }
        }
    }
}

TEST_F(SweepResume, ExhaustedRetriesFailWithATransientDiagnostic)
{
    FaultSpec transient;
    transient.action = FaultAction::kTransient;
    transient.seed = 3;
    transient.count = 5;
    arm_fault("sweep.point", transient);

    SweepOptions options;
    options.threads = 2;
    options.retries = 1;
    const SweepReport report = run_sweep(small_spec(), options);
    EXPECT_EQ(report.completed(), 15u);
    EXPECT_EQ(report.failed(), 1u);
    EXPECT_EQ(report.exit_code(), 4);
    const SweepPointResult& failed = report.results[3];
    EXPECT_FALSE(failed.ok);
    EXPECT_EQ(failed.diag.kind, DiagKind::kTransient);
    EXPECT_EQ(failed.attempts, 2u);
}

TEST_F(SweepResume, FailedPointsAreJournaledAndNotReattempted)
{
    const SweepSpec spec = small_spec();
    {
        FaultSpec poison; // deterministic (non-transient) failure
        poison.seed = 5;
        arm_fault("sweep.point", poison);
        auto journal = RunJournal::create(
            path_, sweep_journal_header(spec, SimOptions{}));
        SweepOptions options;
        options.threads = 2;
        options.journal = journal.get();
        EXPECT_EQ(run_sweep(spec, options).failed(), 1u);
    }
    disarm_all_faults();
    // Resume WITHOUT the fault: the journaled failure is restored as a
    // failure (a journal records outcomes, it does not retry them).
    SweepOptions options;
    options.threads = 2;
    auto journal = RunJournal::open_resume(
        path_, sweep_journal_header(spec, options.sim));
    options.journal = journal.get();
    const SweepReport resumed = run_sweep(spec, options);
    EXPECT_EQ(resumed.resumed(), 16u);
    EXPECT_EQ(resumed.failed(), 1u);
    EXPECT_FALSE(resumed.results[5].ok);
    EXPECT_EQ(resumed.exit_code(), 4);
}

} // namespace
} // namespace flat

#include "core/sweep.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/json.h"

namespace flat {
namespace {

/** 2 models x 2 policies x 3 seqs x 2 batches = 24 points, all cheap
 *  (L-A scope, quick menus). */
SweepSpec
small_spec()
{
    return SweepSpec::from_text(
        "models    = bert, t5\n"
        "platforms = edge\n"
        "policies  = flat-opt, base\n"
        "seq       = 256, 512, 1024\n"
        "batch     = 2, 4\n"
        "scope     = la\n"
        "quick     = true\n");
}

class Sweep : public ::testing::Test
{
  protected:
    void TearDown() override { disarm_all_faults(); }
};

TEST_F(Sweep, SpecParsesAndExpandsCrossProduct)
{
    const SweepSpec spec = small_spec();
    const std::vector<SweepPoint> points = spec.expand();
    ASSERT_EQ(points.size(), 24u);
    EXPECT_EQ(points[0].tag(), "bert/edge/flat-opt/seq=256/batch=2");
    EXPECT_EQ(points[23].tag(), "t5/edge/base/seq=1024/batch=4");
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].index, i);
    }
}

TEST_F(Sweep, SpecRejectsUnknownKeysAndBadValues)
{
    EXPECT_THROW(SweepSpec::from_text("modells = bert"), Error);
    EXPECT_THROW(SweepSpec::from_text("seq = twelve"), Error);
    EXPECT_THROW(SweepSpec::from_text("seq = 0"), Error);
    EXPECT_THROW(SweepSpec::from_text("quick = perhaps"), Error);
    EXPECT_THROW(SweepSpec::from_text("scope = galaxy"), Error);
}

TEST_F(Sweep, ExpandValidatesAxesEagerly)
{
    SweepSpec spec = small_spec();
    spec.models = {"bert", "gpt17"};
    EXPECT_THROW(spec.expand(), Error);
    spec = small_spec();
    spec.platforms = {"tpu"};
    EXPECT_THROW(spec.expand(), Error);
    spec = small_spec();
    spec.policies = {"flat-warp"};
    EXPECT_THROW(spec.expand(), Error);
}

TEST_F(Sweep, AllHealthyPointsComplete)
{
    SweepOptions options;
    options.threads = 2;
    const SweepReport report = run_sweep(small_spec(), options);
    ASSERT_EQ(report.results.size(), 24u);
    EXPECT_EQ(report.completed(), 24u);
    EXPECT_EQ(report.failed(), 0u);
    EXPECT_EQ(report.exit_code(), 0);
    for (const SweepPointResult& r : report.results) {
        EXPECT_TRUE(r.ok);
        EXPECT_GT(r.report.cycles, 0.0);
    }
}

/**
 * The acceptance scenario: 24 points, point 5 poisoned with a thrown
 * fault and point 17 with an injected delay that exceeds the per-point
 * deadline. The sweep must finish with results for every healthy point
 * and structured diagnostics for exactly the two failed ones —
 * identically for 1 and 4 threads.
 */
TEST_F(Sweep, PoisonedPointsAreIsolatedIdenticallyAcrossThreadCounts)
{
    FaultSpec poison;
    poison.seed = 5;
    arm_fault("dse.search_attention", poison);
    FaultSpec delay;
    delay.action = FaultAction::kDelay;
    delay.seed = 17;
    delay.delay_ms = 1500;
    arm_fault("sweep.point", delay);

    for (const unsigned threads : {1u, 4u}) {
        SweepOptions options;
        options.threads = threads;
        options.deadline_ms = 500.0;
        const SweepReport report = run_sweep(small_spec(), options);

        ASSERT_EQ(report.results.size(), 24u) << threads << " threads";
        EXPECT_EQ(report.completed(), 22u) << threads << " threads";
        EXPECT_EQ(report.failed(), 2u) << threads << " threads";
        EXPECT_EQ(report.skipped(), 0u) << threads << " threads";
        EXPECT_EQ(report.exit_code(), 4) << threads << " threads";

        const std::vector<const SweepPointResult*> failures =
            report.failures();
        ASSERT_EQ(failures.size(), 2u);
        EXPECT_EQ(failures[0]->point.index, 5u);
        EXPECT_EQ(failures[0]->diag.kind, DiagKind::kInfeasible);
        EXPECT_EQ(failures[0]->diag.probe_site, "dse.search_attention");
        ASSERT_FALSE(failures[0]->diag.context.empty());
        EXPECT_NE(failures[0]->diag.context[0].find("sweep point 5"),
                  std::string::npos);

        EXPECT_EQ(failures[1]->point.index, 17u);
        EXPECT_EQ(failures[1]->diag.kind, DiagKind::kTimeout);
        EXPECT_EQ(failures[1]->diag.probe_site, "sweep.point");
        ASSERT_FALSE(failures[1]->diag.context.empty());
        EXPECT_NE(failures[1]->diag.context[0].find("sweep point 17"),
                  std::string::npos);

        // Every healthy point still carries a full report.
        for (const SweepPointResult& r : report.results) {
            if (r.point.index != 5 && r.point.index != 17) {
                EXPECT_TRUE(r.ok) << r.point.tag();
                EXPECT_GT(r.report.cycles, 0.0);
            }
        }

        // The JSON report names the kind, probe site and context of
        // exactly the two failures.
        JsonWriter json;
        report.write_json(json);
        const std::string text = json.str();
        EXPECT_NE(text.find("\"failed\":2"), std::string::npos);
        EXPECT_NE(text.find("\"kind\":\"infeasible\""),
                  std::string::npos);
        EXPECT_NE(text.find("\"kind\":\"timeout\""), std::string::npos);
        EXPECT_NE(text.find("\"probe_site\":\"dse.search_attention\""),
                  std::string::npos);
        EXPECT_NE(text.find("\"probe_site\":\"sweep.point\""),
                  std::string::npos);
        EXPECT_NE(text.find("sweep point 5"), std::string::npos);
        EXPECT_NE(text.find("sweep point 17"), std::string::npos);
    }
}

TEST_F(Sweep, InternalAndOomFaultsAreIsolatedToo)
{
    FaultSpec internal;
    internal.action = FaultAction::kThrowInternal;
    internal.seed = 0;
    arm_fault("energy.table", internal);
    FaultSpec oom;
    oom.action = FaultAction::kThrowBadAlloc;
    oom.seed = 3;
    arm_fault("gemm_engine.tile_menu", oom);

    SweepOptions options;
    options.threads = 2;
    const SweepReport report = run_sweep(small_spec(), options);
    EXPECT_EQ(report.failed(), 2u);
    EXPECT_EQ(report.results[0].diag.kind, DiagKind::kInternal);
    EXPECT_EQ(report.results[3].diag.kind, DiagKind::kOom);
    EXPECT_EQ(report.completed(), 22u);
}

TEST_F(Sweep, FailFastSkipsRemainingPoints)
{
    FaultSpec poison;
    poison.seed = 2;
    arm_fault("sweep.point", poison);

    SweepOptions options;
    options.threads = 1; // serial: points after #2 must all be skipped
    options.fail_fast = true;
    const SweepReport report = run_sweep(small_spec(), options);
    EXPECT_EQ(report.failed(), 1u);
    EXPECT_EQ(report.completed(), 2u);
    EXPECT_EQ(report.skipped(), 21u);
    EXPECT_EQ(report.exit_code(), 4);
}

TEST_F(Sweep, ReportSerializesToTablesAndCsv)
{
    FaultSpec poison;
    poison.seed = 1;
    arm_fault("sweep.point", poison);

    SweepSpec spec = small_spec();
    spec.seq_lens = {256};
    spec.batches = {2};
    SweepOptions options;
    options.threads = 1;
    const SweepReport report = run_sweep(spec, options);
    EXPECT_EQ(report.failed(), 1u);

    std::ostringstream oss;
    report.print(oss);
    EXPECT_NE(oss.str().find("failure diagnostics"), std::string::npos);
    EXPECT_NE(oss.str().find("sweep.point"), std::string::npos);

    const std::string path = ::testing::TempDir() + "/flat_sweep.csv";
    report.write_csv(path);
    std::ifstream in(path);
    std::string csv((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(csv.find("infeasible"), std::string::npos);
    EXPECT_NE(csv.find("ok"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace flat

#include "core/catalog.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace flat {
namespace {

TEST(Catalog, PolicyParsingRoundTrips)
{
    for (const char* name :
         {"Base", "Base-M", "Base-B", "Base-H", "Base-opt", "FLAT-M",
          "FLAT-B", "FLAT-H", "FLAT-R64", "FLAT-opt"}) {
        const DataflowPolicy policy = DataflowPolicy::parse(name);
        EXPECT_EQ(policy.name(), name);
    }
}

TEST(Catalog, PolicyParseRejectsUnknown)
{
    EXPECT_THROW(DataflowPolicy::parse("flash-attention"), Error);
    EXPECT_THROW(DataflowPolicy::parse("flat-r0"), Error);
}

TEST(Catalog, FusedFamilies)
{
    EXPECT_FALSE(DataflowPolicy::parse("base").fused());
    EXPECT_FALSE(DataflowPolicy::parse("base-opt").fused());
    EXPECT_TRUE(DataflowPolicy::parse("flat-m").fused());
    EXPECT_TRUE(DataflowPolicy::parse("flat-r128").fused());
    EXPECT_TRUE(DataflowPolicy::parse("flat-opt").fused());
}

TEST(Catalog, SearchedOnlyForOptVariants)
{
    EXPECT_TRUE(DataflowPolicy::parse("base-opt").searched());
    EXPECT_TRUE(DataflowPolicy::parse("flat-opt").searched());
    EXPECT_FALSE(DataflowPolicy::parse("flat-h").searched());
}

TEST(Catalog, FixedCrossMatchesPolicy)
{
    EXPECT_EQ(DataflowPolicy::parse("flat-h").fixed_cross().granularity,
              Granularity::kHead);
    EXPECT_EQ(DataflowPolicy::parse("flat-r256").fixed_cross().rows,
              256u);
    EXPECT_THROW(DataflowPolicy::parse("flat-opt").fixed_cross(), Error);
}

TEST(Catalog, Figure8PoliciesCoverTheTenCurves)
{
    const auto policies = figure8_policies(64);
    ASSERT_EQ(policies.size(), 10u);
    EXPECT_EQ(policies.front().name(), "Base");
    EXPECT_EQ(policies.back().name(), "FLAT-opt");
}

TEST(Catalog, AcceleratorParsingRoundTrips)
{
    for (const char* name : {"BaseAccel", "FlexAccel-M", "FlexAccel",
                             "ATTACC-M", "ATTACC-R64", "ATTACC"}) {
        EXPECT_EQ(AcceleratorSpec::parse(name).name(), name);
    }
    EXPECT_THROW(AcceleratorSpec::parse("TPU"), Error);
}

TEST(Catalog, BaseAccelIsInflexible)
{
    const AcceleratorSpec base = AcceleratorSpec::parse("baseaccel");
    EXPECT_FALSE(base.flexible());
    EXPECT_FALSE(base.allows_l3());
    EXPECT_EQ(base.la_policy().kind, PolicyKind::kBase);
}

TEST(Catalog, AttaccRunsFlatOpt)
{
    const AcceleratorSpec attacc = AcceleratorSpec::parse("attacc");
    EXPECT_TRUE(attacc.flexible());
    EXPECT_TRUE(attacc.allows_l3());
    EXPECT_EQ(attacc.la_policy().kind, PolicyKind::kFlatOpt);
}

TEST(Catalog, FlexAccelRunsBaseOpt)
{
    EXPECT_EQ(AcceleratorSpec::parse("flexaccel").la_policy().kind,
              PolicyKind::kBaseOpt);
    EXPECT_EQ(AcceleratorSpec::parse("flexaccel-m").la_policy().kind,
              PolicyKind::kBaseM);
}

} // namespace
} // namespace flat

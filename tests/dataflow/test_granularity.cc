#include "dataflow/granularity.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace flat {
namespace {

TEST(Granularity, MultiCoversEverythingInOnePass)
{
    const CrossLoopExtent e =
        cross_loop_extent({Granularity::kMulti, 0}, 64, 12, 512);
    EXPECT_EQ(e.passes, 1u);
    EXPECT_EQ(e.instances_per_pass, 64u * 12u);
    EXPECT_EQ(e.rows_per_pass, 512u);
}

TEST(Granularity, BatchIteratesOverSamples)
{
    const CrossLoopExtent e =
        cross_loop_extent({Granularity::kBatch, 0}, 64, 12, 512);
    EXPECT_EQ(e.passes, 64u);
    EXPECT_EQ(e.instances_per_pass, 12u);
    EXPECT_EQ(e.rows_per_pass, 512u);
}

TEST(Granularity, HeadIteratesOverEveryInstance)
{
    const CrossLoopExtent e =
        cross_loop_extent({Granularity::kHead, 0}, 64, 12, 512);
    EXPECT_EQ(e.passes, 64u * 12u);
    EXPECT_EQ(e.instances_per_pass, 1u);
}

TEST(Granularity, RowChunksOneHead)
{
    const CrossLoopExtent e =
        cross_loop_extent({Granularity::kRow, 64}, 64, 12, 512);
    EXPECT_EQ(e.passes, 64u * 12u * 8u);
    EXPECT_EQ(e.instances_per_pass, 1u);
    EXPECT_EQ(e.rows_per_pass, 64u);
}

TEST(Granularity, RowLargerThanSequenceClamps)
{
    const CrossLoopExtent e =
        cross_loop_extent({Granularity::kRow, 4096}, 2, 4, 512);
    EXPECT_EQ(e.passes, 2u * 4u);
    EXPECT_EQ(e.rows_per_pass, 512u);
}

TEST(Granularity, RowCeilDivision)
{
    // 500 rows with R=64 -> 8 chunks per head.
    const CrossLoopExtent e =
        cross_loop_extent({Granularity::kRow, 64}, 1, 1, 500);
    EXPECT_EQ(e.passes, 8u);
}

TEST(Granularity, RowRequiresPositiveRows)
{
    EXPECT_THROW(cross_loop_extent({Granularity::kRow, 0}, 1, 1, 512),
                 Error);
}

TEST(Granularity, RejectsZeroDims)
{
    EXPECT_THROW(cross_loop_extent({Granularity::kMulti, 0}, 0, 1, 1),
                 Error);
}

TEST(Granularity, Tags)
{
    EXPECT_EQ(CrossLoop({Granularity::kMulti, 0}).tag(), "M");
    EXPECT_EQ(CrossLoop({Granularity::kBatch, 0}).tag(), "B");
    EXPECT_EQ(CrossLoop({Granularity::kHead, 0}).tag(), "H");
    EXPECT_EQ(CrossLoop({Granularity::kRow, 64}).tag(), "R64");
}

/** Property: passes x instances_per_pass covers exactly B*H slices
 *  (up to row chunking). */
class ExtentCoverage
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t,
                                                 std::uint64_t>>
{
};

TEST_P(ExtentCoverage, RowPassesCoverAllRows)
{
    const auto [batch, heads, rows] = GetParam();
    for (std::uint64_t r : {std::uint64_t{1}, std::uint64_t{32},
                            std::uint64_t{100}}) {
        const CrossLoopExtent e =
            cross_loop_extent({Granularity::kRow, r}, batch, heads, rows);
        const std::uint64_t chunks = (rows + r - 1) / r;
        EXPECT_EQ(e.passes, batch * heads * chunks);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExtentCoverage,
    ::testing::Values(std::make_tuple(1u, 1u, 512u),
                      std::make_tuple(64u, 12u, 512u),
                      std::make_tuple(8u, 16u, 4096u),
                      std::make_tuple(2u, 16u, 65536u)));

} // namespace
} // namespace flat

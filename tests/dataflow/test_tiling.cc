#include "dataflow/tiling.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace flat {
namespace {

GemmShape
shape(std::uint64_t m, std::uint64_t k, std::uint64_t n)
{
    GemmShape s;
    s.m = m;
    s.k = k;
    s.n = n;
    return s;
}

TEST(Tiling, ClampedTileNeverExceedsShape)
{
    const L2Tile tile{1024, 1024, 1024};
    const L2Tile clamped = tile.clamped(shape(512, 64, 2048));
    EXPECT_EQ(clamped.m, 512u);
    EXPECT_EQ(clamped.k, 64u);
    EXPECT_EQ(clamped.n, 1024u);
}

TEST(Tiling, TripCountsUseCeil)
{
    const L2Tile tile{128, 64, 100};
    const GemmShape s = shape(512, 64, 512);
    EXPECT_EQ(tile.trips_m(s), 4u);
    EXPECT_EQ(tile.trips_k(s), 1u);
    EXPECT_EQ(tile.trips_n(s), 6u); // ceil(512/100)
    EXPECT_EQ(tile.total_trips(s), 24u);
}

TEST(Tiling, TileBytes)
{
    const L2Tile tile{128, 64, 256};
    EXPECT_EQ(tile.a_bytes(2), 128u * 64 * 2);
    EXPECT_EQ(tile.b_bytes(2), 64u * 256 * 2);
    EXPECT_EQ(tile.c_bytes(2), 128u * 256 * 2);
}

TEST(Tiling, ValidateRejectsZeroDims)
{
    EXPECT_THROW((L2Tile{0, 1, 1}).validate(), Error);
    EXPECT_NO_THROW((L2Tile{1, 1, 1}).validate());
}

TEST(Tiling, LoopOrderDims)
{
    Dim dims[3];
    loop_order_dims(LoopOrder::kNKM, dims);
    EXPECT_EQ(dims[0], Dim::kN);
    EXPECT_EQ(dims[1], Dim::kK);
    EXPECT_EQ(dims[2], Dim::kM);
}

TEST(Tiling, AllSixOrdersDistinct)
{
    // Every permutation of (m, k, n) appears exactly once.
    std::set<std::string> seen;
    for (LoopOrder order : kAllLoopOrders) {
        Dim dims[3];
        loop_order_dims(order, dims);
        std::string sig;
        for (Dim d : dims) {
            sig += static_cast<char>('0' + static_cast<int>(d));
        }
        EXPECT_TRUE(seen.insert(sig).second) << to_string(order);
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Tiling, ToStringNames)
{
    EXPECT_EQ(to_string(LoopOrder::kMKN), "mkn");
    EXPECT_EQ(to_string(Stationarity::kWeightStationary), "WS");
    EXPECT_EQ(to_string(Stationarity::kOutputStationary), "OS");
    EXPECT_EQ(to_string(Stationarity::kInputStationary), "IS");
}

TEST(Tiling, TagFormat)
{
    EXPECT_EQ((L2Tile{128, 64, 256}).tag(), "128x64x256");
}

} // namespace
} // namespace flat

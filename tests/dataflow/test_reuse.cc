#include "dataflow/reuse.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace flat {
namespace {

TEST(Reuse, InnermostNonIndexingLoopGivesFreeReuse)
{
    // Order m,k,n: the innermost n loop does not index A, so each A tile
    // is fetched exactly once.
    const ReuseCounts c = analyze_reuse(LoopOrder::kMKN, 4, 3, 5);
    EXPECT_EQ(c.a_fetches, 4u * 3u);
    // B is indexed by the innermost loop -> refetched every iteration.
    EXPECT_EQ(c.b_fetches, 4u * 3u * 5u);
}

TEST(Reuse, OuterLoopForcesRefetch)
{
    // Order n,m,k: A (m,k) has no inner non-indexing loop; it is
    // fetched every iteration = Nn passes over the whole tensor.
    const ReuseCounts c = analyze_reuse(LoopOrder::kNMK, 4, 3, 5);
    EXPECT_EQ(c.a_fetches, 4u * 3u * 5u);
    // B (k,n): innermost k indexes it; middle m does not but is not
    // innermost-contiguous below an indexing loop... k is innermost and
    // indexes B, so B is refetched every iteration too.
    EXPECT_EQ(c.b_fetches, 4u * 3u * 5u);
}

TEST(Reuse, OutputResidentWhenReductionInnermost)
{
    // Order m,n,k: C (m,n) reused across the whole k loop: one write
    // per distinct tile, no partial-sum re-reads.
    const ReuseCounts c = analyze_reuse(LoopOrder::kMNK, 4, 3, 5);
    EXPECT_EQ(c.c_tiles, 4u * 5u);
    EXPECT_EQ(c.c_writes, 4u * 5u);
    EXPECT_EQ(c.c_reads, 0u);
}

TEST(Reuse, PartialSumsSpillWhenReductionOuter)
{
    // Order k,m,n: every k iteration revisits all C tiles.
    const ReuseCounts c = analyze_reuse(LoopOrder::kKMN, 4, 3, 5);
    EXPECT_EQ(c.c_writes, 4u * 3u * 5u);
    EXPECT_EQ(c.c_reads, 4u * 3u * 5u - 4u * 5u);
}

TEST(Reuse, SingleTripLoopsNeverForceRefetch)
{
    const ReuseCounts c = analyze_reuse(LoopOrder::kNMK, 4, 1, 1);
    EXPECT_EQ(c.a_fetches, 4u);
    EXPECT_EQ(c.b_fetches, 1u);
    EXPECT_EQ(c.c_writes, 4u);
    EXPECT_EQ(c.c_reads, 0u);
}

TEST(Reuse, RejectsZeroTrips)
{
    EXPECT_THROW(analyze_reuse(LoopOrder::kMKN, 0, 1, 1), Error);
}

TEST(Reuse, BestLoopOrderPrefersKeepingLargeTensorResident)
{
    // A tiles are huge: the best order should avoid refetching A.
    const LoopOrder order = best_loop_order(8, 8, 8,
                                            /*a=*/1 << 20,
                                            /*b=*/1, /*c=*/1);
    const ReuseCounts c = analyze_reuse(order, 8, 8, 8);
    EXPECT_EQ(c.a_fetches, 64u); // minimal: one fetch per A tile
}

/**
 * Property: for every loop order, fetch counts are bounded below by the
 * distinct-tile count and above by the total trip count, and at least
 * one tensor enjoys free reuse from the innermost loop.
 */
class ReuseBounds : public ::testing::TestWithParam<LoopOrder>
{
};

TEST_P(ReuseBounds, FetchCountsWithinBounds)
{
    const std::uint64_t tm = 6, tk = 4, tn = 10;
    const ReuseCounts c = analyze_reuse(GetParam(), tm, tk, tn);
    const std::uint64_t trips = tm * tk * tn;
    EXPECT_GE(c.a_fetches, tm * tk);
    EXPECT_LE(c.a_fetches, trips);
    EXPECT_GE(c.b_fetches, tk * tn);
    EXPECT_LE(c.b_fetches, trips);
    EXPECT_GE(c.c_writes, c.c_tiles);
    EXPECT_LE(c.c_writes, trips);
    EXPECT_EQ(c.c_reads, c.c_writes - c.c_tiles);

    const bool a_minimal = c.a_fetches == tm * tk;
    const bool b_minimal = c.b_fetches == tk * tn;
    const bool c_minimal = c.c_writes == c.c_tiles;
    EXPECT_TRUE(a_minimal || b_minimal || c_minimal)
        << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllOrders, ReuseBounds,
                         ::testing::ValuesIn(kAllLoopOrders),
                         [](const auto& info) {
                             return to_string(info.param);
                         });

} // namespace
} // namespace flat

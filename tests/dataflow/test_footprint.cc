#include "dataflow/fused_dataflow.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "dataflow/operator_dataflow.h"

namespace flat {
namespace {

AttentionDims
dims(std::uint64_t b, std::uint64_t h, std::uint64_t n, std::uint64_t dk)
{
    AttentionDims d;
    d.batch = b;
    d.heads = h;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = dk;
    return d;
}

FusedDataflow
all_staged(Granularity g, std::uint64_t rows)
{
    FusedDataflow df;
    df.cross = {g, rows};
    df.l2_logit = {64, 64, 64};
    df.l2_attend = {64, 64, 64};
    return df;
}

/** Table 2 closed forms, checked against the footprint model with all
 *  FLAT-tiles enabled (tile terms vanish in the staged case). */
class Table2 : public ::testing::TestWithParam<Granularity>
{
};

TEST_P(Table2, ModelMatchesClosedForm)
{
    const Granularity g = GetParam();
    const AttentionDims d = dims(4, 16, 1024, 64);
    const std::uint64_t r = 128;
    const FusedDataflow df = all_staged(g, r);
    const std::uint64_t model_bytes = fused_live_footprint(df, d, 2);
    const std::uint64_t table_elems = table2_footprint_elems(g, d, r);
    EXPECT_EQ(model_bytes, table_elems * 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllGranularities, Table2,
    ::testing::Values(Granularity::kMulti, Granularity::kBatch,
                      Granularity::kHead, Granularity::kRow),
    [](const auto& info) { return to_string(info.param); });

TEST(Table2, ClosedFormsFromPaper)
{
    // R-Gran: 4*R*dk + 4*N*dk + R*N elements.
    const AttentionDims d = dims(64, 16, 2048, 64);
    EXPECT_EQ(table2_footprint_elems(Granularity::kRow, d, 64),
              4ull * 64 * 64 + 4ull * 2048 * 64 + 64ull * 2048);
    // H-Gran: 8*N*dk + N^2.
    EXPECT_EQ(table2_footprint_elems(Granularity::kHead, d, 0),
              8ull * 2048 * 64 + 2048ull * 2048);
    // B-Gran: 8*D*N + H*N^2 with D = H*dk.
    EXPECT_EQ(table2_footprint_elems(Granularity::kBatch, d, 0),
              8ull * 1024 * 2048 + 16ull * 2048 * 2048);
    // M-Gran: 8*B*D*N + B*H*N^2.
    EXPECT_EQ(table2_footprint_elems(Granularity::kMulti, d, 0),
              8ull * 64 * 1024 * 2048 + 64ull * 16 * 2048 * 2048);
}

TEST(Footprint, GranularityOrdering)
{
    // M >= B >= H >= R for the same workload (§4.4).
    const AttentionDims d = dims(64, 12, 4096, 64);
    const auto fp = [&](Granularity g, std::uint64_t r) {
        return fused_live_footprint(all_staged(g, r), d, 2);
    };
    EXPECT_GT(fp(Granularity::kMulti, 0), fp(Granularity::kBatch, 0));
    EXPECT_GT(fp(Granularity::kBatch, 0), fp(Granularity::kHead, 0));
    EXPECT_GT(fp(Granularity::kHead, 0), fp(Granularity::kRow, 64));
}

TEST(Footprint, RGranGrowsLinearlyInN)
{
    // §4.4: the R-Gran live footprint is O(N), not O(N^2).
    const std::uint64_t r = 64;
    const std::uint64_t dk = 64;
    const auto fp = [&](std::uint64_t n) {
        return fused_live_footprint(all_staged(Granularity::kRow, r),
                                    dims(1, 1, n, dk), 2);
    };
    const std::uint64_t f1 = fp(4096);
    const std::uint64_t f2 = fp(8192);
    // Doubling N should roughly double (not quadruple) the footprint.
    EXPECT_LT(f2, 3 * f1);
    EXPECT_GT(f2, f1);
}

TEST(Footprint, HGranGrowsQuadraticallyInN)
{
    const auto fp = [&](std::uint64_t n) {
        return fused_live_footprint(all_staged(Granularity::kHead, 0),
                                    dims(1, 1, n, 64), 2);
    };
    EXPECT_GT(fp(8192), 3 * fp(4096));
}

TEST(Footprint, DisablingIntermediateShrinksFootprint)
{
    const AttentionDims d = dims(8, 8, 2048, 64);
    FusedDataflow staged = all_staged(Granularity::kHead, 0);
    FusedDataflow unstaged = staged;
    unstaged.stage.intermediate = false;
    EXPECT_LT(fused_live_footprint(unstaged, d, 2),
              fused_live_footprint(staged, d, 2));
}

TEST(Footprint, DisablingEveryTensorLeavesOnlyTiles)
{
    const AttentionDims d = dims(8, 8, 2048, 64);
    FusedDataflow df = all_staged(Granularity::kHead, 0);
    df.stage = FusedStageFlags::decode(0);
    const std::uint64_t tile_bytes = fused_live_footprint(df, d, 2);
    // Twelve double-buffered 64x64 tile slots: Q, K (logit inputs),
    // V, output (attend), and the intermediate as both logit-C and
    // attend-A streams.
    EXPECT_EQ(tile_bytes, 12u * 64 * 64 * 2);
}

TEST(StageFlags, EncodeDecodeRoundTrip)
{
    for (std::uint32_t code = 0; code < 32; ++code) {
        const FusedStageFlags flags = FusedStageFlags::decode(code);
        EXPECT_EQ(FusedStageFlags::encode(flags), code);
    }
    EXPECT_THROW(FusedStageFlags::decode(32), Error);
}

TEST(StageFlags, TagShowsEnabledTensors)
{
    FusedStageFlags flags;
    EXPECT_EQ(flags.tag(), "QKVOI");
    flags.key = false;
    flags.intermediate = false;
    EXPECT_EQ(flags.tag(), "Q-VO-");
}

TEST(OperatorFootprint, StagedWeightNotScaledByInstances)
{
    GemmShape shape;
    shape.m = 512;
    shape.k = 256;
    shape.n = 256;
    shape.instances = 8;
    shape.b_kind = OperandKind::kWeight;

    OperatorDataflow df;
    df.l2 = {64, 64, 64};
    df.cross = {Granularity::kMulti, 0};
    df.l3 = {false, true, false};
    const std::uint64_t fp = operator_live_footprint(df, shape, 2);
    // staged weight (2x double buffer) + two streaming tile pairs.
    EXPECT_EQ(fp, 2u * 256 * 256 * 2 + 2u * 64 * 64 * 2 * 2);
}

TEST(OperatorFootprint, CrossGranularityScalesActivations)
{
    GemmShape shape;
    shape.m = 512;
    shape.k = 64;
    shape.n = 512;
    shape.instances = 16;
    shape.a_kind = OperandKind::kActivation;
    shape.b_kind = OperandKind::kActivation;

    OperatorDataflow df;
    df.l2 = {64, 64, 64};
    df.l3 = {true, true, true};
    df.cross = {Granularity::kMulti, 0};
    const std::uint64_t all = operator_live_footprint(df, shape, 2);
    df.cross = {Granularity::kHead, 0};
    const std::uint64_t one = operator_live_footprint(df, shape, 2);
    EXPECT_GT(all, one);
}

} // namespace
} // namespace flat

#include "workload/attention.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "workload/model_config.h"

namespace flat {
namespace {

TEST(AttentionWorkload, BlockHasNineOperatorsInOrder)
{
    const Workload w = make_workload(bert_base(), 64, 512);
    ASSERT_EQ(w.ops.size(), 9u);
    const char* expected[] = {"Q", "K", "V", "L", "softmax",
                              "A", "O", "FC1", "FC2"};
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_EQ(w.ops[i].name, expected[i]);
    }
}

TEST(AttentionWorkload, LogitShapeMatchesFigure1)
{
    const Workload w = make_workload(bert_base(), 64, 512);
    const Operator& logit = w.logit_op();
    EXPECT_EQ(logit.gemm.m, 512u);
    EXPECT_EQ(logit.gemm.k, 64u);  // dk = 768 / 12
    EXPECT_EQ(logit.gemm.n, 512u);
    EXPECT_EQ(logit.gemm.instances, 64u * 12u); // B * H
    EXPECT_TRUE(logit.gemm.activation_activation());
}

TEST(AttentionWorkload, AttendShapeTransposesLogit)
{
    const Workload w = make_workload(bert_base(), 64, 512);
    const Operator& attend = w.attend_op();
    EXPECT_EQ(attend.gemm.m, 512u);
    EXPECT_EQ(attend.gemm.k, 512u);
    EXPECT_EQ(attend.gemm.n, 64u);
    EXPECT_TRUE(attend.gemm.activation_activation());
}

TEST(AttentionWorkload, ProjectionFoldsBatchIntoM)
{
    const Workload w = make_workload(bert_base(), 64, 512);
    const Operator& q = w.ops[0];
    EXPECT_EQ(q.gemm.m, 64u * 512u);
    EXPECT_EQ(q.gemm.k, 768u);
    EXPECT_EQ(q.gemm.n, 768u);
    EXPECT_EQ(q.gemm.instances, 1u);
    EXPECT_EQ(q.gemm.b_kind, OperandKind::kWeight);
}

TEST(AttentionWorkload, SoftmaxCoversLogitsTensor)
{
    const Workload w = make_workload(bert_base(), 64, 512);
    const Operator& sm = w.softmax_op();
    EXPECT_EQ(sm.softmax_instances, 64u * 12u);
    EXPECT_EQ(sm.softmax_rows, 512u);
    EXPECT_EQ(sm.softmax_cols, 512u);
    EXPECT_EQ(sm.output_elems(), 64ull * 12 * 512 * 512);
}

TEST(AttentionWorkload, LogitAttendScopeFiltersOps)
{
    const Workload w = make_workload(bert_base(), 64, 512);
    const auto la = w.ops_in_scope(Scope::kLogitAttend);
    ASSERT_EQ(la.size(), 3u);
    EXPECT_EQ(la[0].name, "L");
    EXPECT_EQ(la[1].name, "softmax");
    EXPECT_EQ(la[2].name, "A");
}

TEST(AttentionWorkload, ModelScopeMultiplier)
{
    const Workload w = make_workload(bert_base(), 64, 512);
    EXPECT_EQ(w.scope_multiplier(Scope::kBlock), 1u);
    EXPECT_EQ(w.scope_multiplier(Scope::kModel), 12u);
    EXPECT_EQ(w.total_macs(Scope::kModel),
              12u * w.total_macs(Scope::kBlock));
}

TEST(AttentionWorkload, CrossAttentionUsesDifferentKvLength)
{
    const Workload w =
        make_cross_attention_workload(t5_small(), 8, 128, 1024);
    EXPECT_EQ(w.logit_op().gemm.m, 128u);
    EXPECT_EQ(w.logit_op().gemm.n, 1024u);
    EXPECT_EQ(w.attend_op().gemm.k, 1024u);
    EXPECT_EQ(w.attend_op().gemm.n, t5_small().head_dim());
    // K/V projections work on the kv-side sequence.
    EXPECT_EQ(w.ops[1].gemm.m, 8u * 1024u);
}

TEST(AttentionWorkload, QuadraticGrowthOfLogitAttendMacs)
{
    const Workload w1 = make_workload(bert_base(), 1, 512);
    const Workload w2 = make_workload(bert_base(), 1, 1024);
    const auto macs = [](const Workload& w) {
        return w.logit_op().gemm.macs() + w.attend_op().gemm.macs();
    };
    EXPECT_EQ(macs(w2), 4u * macs(w1));
}

TEST(AttentionWorkload, RejectsZeroBatch)
{
    EXPECT_THROW(make_workload(bert_base(), 0, 512), Error);
    EXPECT_THROW(make_workload(bert_base(), 1, 0), Error);
}

TEST(AttentionWorkload, FindOpThrowsForMissingName)
{
    Workload w = make_workload(bert_base(), 1, 128);
    w.ops.clear();
    EXPECT_THROW(w.logit_op(), Error);
}

TEST(LocalAttentionWorkload, ShrinksLogitAttendOnly)
{
    const Workload dense = make_workload(bert_base(), 8, 4096);
    const Workload local =
        make_local_attention_workload(bert_base(), 8, 4096, 128);
    // L/A and softmax shrink to the effective window width 2w+1.
    EXPECT_EQ(local.logit_op().gemm.n, 257u);
    EXPECT_EQ(local.attend_op().gemm.k, 257u);
    EXPECT_EQ(local.softmax_op().softmax_cols, 257u);
    // Projections and FCs are untouched (full sequence).
    for (const char* name : {"Q", "K", "V", "O", "FC1", "FC2"}) {
        bool found = false;
        for (std::size_t i = 0; i < dense.ops.size(); ++i) {
            if (dense.ops[i].name == name) {
                EXPECT_EQ(local.ops[i].gemm.macs(),
                          dense.ops[i].gemm.macs())
                    << name;
                found = true;
            }
        }
        EXPECT_TRUE(found) << name;
    }
}

TEST(LocalAttentionWorkload, MacsLinearInNForFixedWindow)
{
    const auto la_macs = [](std::uint64_t n) {
        const Workload w =
            make_local_attention_workload(bert_base(), 1, n, 64);
        return w.logit_op().gemm.macs() + w.attend_op().gemm.macs();
    };
    EXPECT_EQ(la_macs(8192), 2 * la_macs(4096));
}

TEST(LocalAttentionWorkload, HugeWindowEqualsDense)
{
    const Workload dense = make_workload(bert_base(), 4, 512);
    const Workload local =
        make_local_attention_workload(bert_base(), 4, 512, 100000);
    EXPECT_EQ(local.logit_op().gemm.macs(),
              dense.logit_op().gemm.macs());
    EXPECT_EQ(local.kv_seq_len, 512u);
}

/** Property: L-A MACs equal 2*B*H*N*Nkv*dk for every zoo model. */
class LaMacsProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(LaMacsProperty, ClosedForm)
{
    const ModelConfig m = model_by_name(GetParam());
    const std::uint64_t batch = 4;
    const std::uint64_t n = 256;
    const Workload w = make_workload(m, batch, n);
    const std::uint64_t expected =
        2ull * batch * m.num_heads * n * n * m.head_dim();
    EXPECT_EQ(w.logit_op().gemm.macs() + w.attend_op().gemm.macs(),
              expected);
}

INSTANTIATE_TEST_SUITE_P(Zoo, LaMacsProperty,
                         ::testing::Values("bert", "trxl", "flaubert",
                                           "t5", "xlm"));

} // namespace
} // namespace flat

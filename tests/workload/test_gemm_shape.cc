#include "workload/gemm_shape.h"

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/status.h"

namespace flat {
namespace {

GemmShape
projection_shape(std::uint64_t batch_tokens, std::uint64_t d)
{
    GemmShape s;
    s.m = batch_tokens;
    s.k = d;
    s.n = d;
    s.a_kind = OperandKind::kActivation;
    s.b_kind = OperandKind::kWeight;
    return s;
}

GemmShape
logit_shape(std::uint64_t n, std::uint64_t dk, std::uint64_t instances)
{
    GemmShape s;
    s.m = n;
    s.k = dk;
    s.n = n;
    s.instances = instances;
    s.a_kind = OperandKind::kActivation;
    s.b_kind = OperandKind::kActivation;
    return s;
}

TEST(GemmShape, MacCount)
{
    GemmShape s = logit_shape(512, 64, 12);
    EXPECT_EQ(s.macs(), 12ull * 512 * 64 * 512);
}

TEST(GemmShape, WeightOperandSharedAcrossInstances)
{
    GemmShape s = projection_shape(1024, 768);
    s.instances = 4;
    EXPECT_EQ(s.b_elems_total(), 768ull * 768);        // shared weight
    EXPECT_EQ(s.a_elems_total(), 4ull * 1024 * 768);   // per instance
    EXPECT_EQ(s.c_elems_total(), 4ull * 1024 * 768);
}

TEST(GemmShape, ActivationActivationDetection)
{
    EXPECT_TRUE(logit_shape(512, 64, 1).activation_activation());
    EXPECT_FALSE(projection_shape(512, 768).activation_activation());
}

TEST(GemmShape, ValidateRejectsZeroDims)
{
    GemmShape s = logit_shape(512, 64, 1);
    s.k = 0;
    EXPECT_THROW(s.validate(), Error);
    s = logit_shape(512, 64, 1);
    s.instances = 0;
    EXPECT_THROW(s.validate(), Error);
}

/**
 * §2.2: projection intensity reciprocal is 2/D + 1/(B*N) — so larger
 * batch raises intensity.
 */
TEST(GemmShape, BatchRaisesProjectionIntensity)
{
    const GemmShape small = projection_shape(512, 1024);
    const GemmShape big = projection_shape(64 * 512, 1024);
    EXPECT_GT(big.operational_intensity(),
              small.operational_intensity());
}

/**
 * §2.2: L/A intensity reciprocal is 2/N + 1/D per single-head; batching
 * via instances leaves intensity unchanged.
 */
TEST(GemmShape, BatchDoesNotChangeAttentionIntensity)
{
    const GemmShape one = logit_shape(512, 64, 1);
    const GemmShape many = logit_shape(512, 64, 64);
    EXPECT_DOUBLE_EQ(one.operational_intensity(),
                     many.operational_intensity());
}

TEST(GemmShape, AttentionIntensityMatchesClosedForm)
{
    // For L: macs = N*dk*N, accesses = N*dk + dk*N + N*N, so
    // 1/intensity = 2/N + 1/dk.
    const std::uint64_t n = 2048;
    const std::uint64_t dk = 64;
    const GemmShape s = logit_shape(n, dk, 8);
    const double reciprocal = 1.0 / s.operational_intensity();
    EXPECT_NEAR(reciprocal, 2.0 / n + 1.0 / dk, 1e-12);
}

/** Parameterized: projection intensity approaches D/2 as batch grows. */
class ProjectionIntensity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ProjectionIntensity, BoundedByHalfD)
{
    const std::uint64_t d = 1024;
    const GemmShape s = projection_shape(GetParam(), d);
    EXPECT_LE(s.operational_intensity(), d / 2.0 + 1e-9);
    EXPECT_GT(s.operational_intensity(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(BatchSweep, ProjectionIntensity,
                         ::testing::Values(1, 8, 64, 512, 4096, 1u << 20));

} // namespace
} // namespace flat

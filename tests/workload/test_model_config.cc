#include "workload/model_config.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace flat {
namespace {

TEST(ModelConfig, ZooHasPaperModelsPlusGqaDecoder)
{
    const auto zoo = model_zoo();
    ASSERT_EQ(zoo.size(), 6u);
    for (const ModelConfig& m : zoo) {
        EXPECT_NO_THROW(m.validate()) << m.name;
    }
    // The paper's five are all classic MHA; the serving decoder is
    // the only grouped-query entry.
    EXPECT_EQ(zoo.back().name, "mistral");
    EXPECT_NE(zoo.back().num_kv_heads, 0u);
}

TEST(ModelConfig, BertBase)
{
    const ModelConfig m = bert_base();
    EXPECT_EQ(m.num_blocks, 12u);
    EXPECT_EQ(m.hidden_dim, 768u);
    EXPECT_EQ(m.num_heads, 12u);
    EXPECT_EQ(m.head_dim(), 64u);
    EXPECT_EQ(m.ff_dim, 3072u);
}

TEST(ModelConfig, XlmIsWidest)
{
    // xlm-mlm-en-2048: the model the paper uses for the cloud plots.
    const ModelConfig m = xlm();
    EXPECT_EQ(m.hidden_dim, 2048u);
    EXPECT_EQ(m.head_dim(), 128u);
    for (const ModelConfig& other : model_zoo()) {
        if (other.num_kv_heads != 0) {
            continue; // the GQA decoder is wider but not a paper model
        }
        EXPECT_LE(other.hidden_dim, m.hidden_dim) << other.name;
    }
}

TEST(ModelConfig, KvHeadsDefaultsToQueryHeads)
{
    EXPECT_EQ(bert_base().kv_heads(), bert_base().num_heads);
    const ModelConfig m = mistral();
    EXPECT_EQ(m.num_kv_heads, 8u);
    EXPECT_EQ(m.kv_heads(), 8u);
    EXPECT_EQ(m.num_heads % m.kv_heads(), 0u);
}

TEST(ModelConfig, ValidateRejectsIndivisibleKvHeads)
{
    ModelConfig m = mistral();
    m.num_kv_heads = 5; // 32 % 5 != 0
    EXPECT_THROW(m.validate(), Error);
    m.num_kv_heads = 64; // more KV heads than query heads
    EXPECT_THROW(m.validate(), Error);
}

TEST(ModelConfig, HeadDimDividesHidden)
{
    for (const ModelConfig& m : model_zoo()) {
        EXPECT_EQ(m.head_dim() * m.num_heads, m.hidden_dim) << m.name;
    }
}

TEST(ModelConfig, LookupByNameCaseInsensitive)
{
    EXPECT_EQ(model_by_name("BERT").hidden_dim, 768u);
    EXPECT_EQ(model_by_name("t5").num_blocks, 6u);
    EXPECT_EQ(model_by_name("TrXL").num_blocks, 18u);
}

TEST(ModelConfig, LookupUnknownThrows)
{
    EXPECT_THROW(model_by_name("gpt17"), Error);
}

TEST(ModelConfig, ValidateRejectsIndivisibleHeads)
{
    ModelConfig m = bert_base();
    m.num_heads = 7;
    EXPECT_THROW(m.validate(), Error);
}

TEST(ModelConfig, ValidateRejectsZeroBlocks)
{
    ModelConfig m = bert_base();
    m.num_blocks = 0;
    EXPECT_THROW(m.validate(), Error);
}

} // namespace
} // namespace flat

#include "energy/energy_model.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/units.h"

namespace flat {
namespace {

ActivityCounts
sample_activity()
{
    ActivityCounts a;
    a.macs = 1e9;
    a.sl_accesses = 3e9;
    a.sfu_elems = 1e7;
    a.traffic.dram_read = 1e8;
    a.traffic.dram_write = 5e7;
    a.traffic.sg_read = 1e9;
    a.traffic.sg_write = 5e8;
    return a;
}

TEST(EnergyModel, BreakdownSumsToTotal)
{
    const EnergyBreakdown e =
        estimate_energy(EnergyTable{}, sample_activity());
    EXPECT_NEAR(e.total(),
                e.compute_j + e.sl_j + e.sg_j + e.dram_j + e.sfu_j,
                1e-15);
    EXPECT_GT(e.total(), 0.0);
}

TEST(EnergyModel, DramDominatesAtEqualBytes)
{
    // The core Accelergy property the paper relies on (§5.3.2): an
    // off-chip byte costs orders of magnitude more than an on-chip byte.
    ActivityCounts a;
    a.traffic.dram_read = 1e6;
    a.traffic.sg_read = 1e6;
    const EnergyBreakdown e = estimate_energy(EnergyTable{}, a);
    EXPECT_GT(e.dram_j, 20.0 * e.sg_j);
}

TEST(EnergyModel, LinearInActivity)
{
    ActivityCounts a = sample_activity();
    const double e1 = estimate_energy(EnergyTable{}, a).total();
    a += sample_activity();
    const double e2 = estimate_energy(EnergyTable{}, a).total();
    EXPECT_NEAR(e2, 2.0 * e1, 1e-12 * e2);
}

TEST(EnergyModel, ForAccelScalesSgEnergyWithCapacity)
{
    const EnergyTable edge = EnergyTable::for_accel(edge_accel());
    const EnergyTable cloud = EnergyTable::for_accel(cloud_accel());
    EXPECT_GT(cloud.sg_pj_per_byte, edge.sg_pj_per_byte);
    EXPECT_GT(edge.dram_pj_per_byte, 10 * cloud.sg_pj_per_byte);
}

TEST(EnergyModel, ForAccelKeepsHierarchyOrderedAtHugeCapacity)
{
    // Regression: a 64 GiB scratchpad once pushed SG energy past the
    // SG2 constant and failed validation.
    AccelConfig accel = edge_accel();
    accel.sg_bytes = 64ull * 1024 * 1024 * 1024;
    const EnergyTable table = EnergyTable::for_accel(accel);
    EXPECT_NO_THROW(table.validate());
    EXPECT_GT(table.sg2_pj_per_byte, table.sg_pj_per_byte);
    EXPECT_GT(table.dram_pj_per_byte, table.sg2_pj_per_byte);
}

TEST(EnergyModel, ValidateRejectsInvertedHierarchy)
{
    EnergyTable t;
    t.dram_pj_per_byte = t.sg_pj_per_byte / 2;
    EXPECT_THROW(t.validate(), Error);
}

TEST(EnergyModel, ValidateRejectsNonPositiveEntries)
{
    EnergyTable t;
    t.mac_pj = 0.0;
    EXPECT_THROW(t.validate(), Error);
}

TEST(EnergyModel, AccumulateBreakdowns)
{
    EnergyBreakdown a = estimate_energy(EnergyTable{}, sample_activity());
    const double total = a.total();
    a += a;
    EXPECT_NEAR(a.total(), 2 * total, 1e-12 * total);
}

TEST(EnergyModel, ZeroActivityZeroEnergy)
{
    const EnergyBreakdown e = estimate_energy(EnergyTable{}, {});
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

} // namespace
} // namespace flat

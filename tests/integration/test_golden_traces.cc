/**
 * @file
 * Golden-trace regression suite (ctest -L golden): the --trace-json
 * output of every catalog configuration in src/core/goldens.cc is
 * pinned byte-for-byte in tests/goldens/<id>.json. Any drift fails
 * with a field-level diff (path, golden value, current value) and an
 * absolute-zero tolerance on every cycle count.
 *
 * Intentional changes: rebuild and run `tools/regen_goldens`, review
 * the diff, and commit the regenerated files (tests/goldens/README.md).
 */
#include "core/goldens.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "support/minijson.h"

namespace flat {
namespace {

std::string
golden_dir()
{
#ifdef FLAT_GOLDEN_DIR
    return FLAT_GOLDEN_DIR;
#else
    return "tests/goldens";
#endif
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {};
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Field-level diff: every divergence is its own failure line. */
void
expect_same_document(const flat::testing::FlatJson& golden,
                     const flat::testing::FlatJson& current,
                     const std::string& id)
{
    for (const auto& [path, value] : golden) {
        const auto it = current.find(path);
        if (it == current.end()) {
            ADD_FAILURE() << id << ": field '" << path
                          << "' vanished (golden value " << value << ")";
            continue;
        }
        EXPECT_EQ(it->second, value)
            << id << ": field '" << path << "' drifted: golden " << value
            << " != current " << it->second;
    }
    for (const auto& [path, value] : current) {
        if (golden.find(path) == golden.end()) {
            ADD_FAILURE() << id << ": new field '" << path << "' = "
                          << value
                          << " is not in the golden (regen required?)";
        }
    }
}

class GoldenTrace : public ::testing::TestWithParam<GoldenConfig>
{
};

TEST_P(GoldenTrace, MatchesPinnedOutput)
{
    const GoldenConfig& config = GetParam();
    const std::string path = golden_dir() + "/" + config.id + ".json";
    std::string golden_text = read_file(path);
    ASSERT_FALSE(golden_text.empty())
        << "missing golden " << path
        << " — run tools/regen_goldens and commit the result";
    // regen_goldens terminates the file with one newline; the
    // comparison is over the JSON bytes proper.
    if (golden_text.back() == '\n') {
        golden_text.pop_back();
    }

    const std::string current_text = golden_trace_json(config);

    // Fast path: byte-identical documents need no parsing.
    if (current_text == golden_text) {
        return;
    }

    // Slow path: emit one failure per drifted field.
    flat::testing::FlatJson golden;
    flat::testing::FlatJson current;
    ASSERT_NO_THROW(golden = flat::testing::parse_flat_json(golden_text))
        << config.id << ": golden file is not valid JSON";
    ASSERT_NO_THROW(current =
                        flat::testing::parse_flat_json(current_text))
        << config.id << ": generated trace is not valid JSON";
    expect_same_document(golden, current, config.id);

    // Belt and braces: even if the field walk found nothing (it cannot
    // if the bytes differ and both documents parse), fail loudly.
    ADD_FAILURE() << config.id
                  << ": trace bytes differ from the pinned golden";
}

TEST(GoldenCatalog, IdsAreUniqueAndStable)
{
    const auto& configs = golden_configs();
    ASSERT_GE(configs.size(), 8u);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        for (std::size_t j = i + 1; j < configs.size(); ++j) {
            EXPECT_NE(configs[i].id, configs[j].id);
        }
    }
}

TEST(GoldenCatalog, GenerationIsDeterministic)
{
    // Two in-process generations must agree byte-for-byte; anything
    // else would make the suite flaky by construction.
    const GoldenConfig& config = golden_configs().front();
    EXPECT_EQ(golden_trace_json(config), golden_trace_json(config));
}

TEST(GoldenCatalog, CycleFieldsParseExactly)
{
    // The shortest-round-trip emitter guarantees that re-parsing a
    // cycles token yields the identical double — the absolute-zero
    // tolerance the golden comparison relies on.
    const std::string text =
        golden_trace_json(golden_configs().front());
    const flat::testing::FlatJson doc =
        flat::testing::parse_flat_json(text);
    bool saw_cycles = false;
    for (const auto& [path, token] : doc) {
        if (path.find("cycles") == std::string::npos ||
            token.front() == '"') {
            continue;
        }
        saw_cycles = true;
        const double value = std::stod(token);
        char buf[64];
        for (int precision = 15; precision <= 17; ++precision) {
            std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
            if (std::strtod(buf, nullptr) == value) {
                break;
            }
        }
        EXPECT_EQ(std::string(buf), token) << path;
    }
    EXPECT_TRUE(saw_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, GoldenTrace, ::testing::ValuesIn(golden_configs()),
    [](const ::testing::TestParamInfo<GoldenConfig>& info) {
        std::string name = info.param.id;
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) {
                c = '_';
            }
        }
        return name;
    });

} // namespace
} // namespace flat

/**
 * @file
 * Cross-validation between the two independent halves of this library:
 * the analytical cost model's DRAM traffic predictions and the
 * instrumented functional kernels' measured traffic must agree — they
 * describe the same dataflow from two directions.
 */
#include <gtest/gtest.h>

#include "common/units.h"
#include "costmodel/attention_cost.h"
#include "kernels/attention.h"

namespace flat {
namespace {

/** Off-chip elements (not bytes) moved by the functional kernel. */
std::uint64_t
kernel_offchip_elems(std::size_t n, std::size_t dk, bool fused,
                     std::size_t row_tile)
{
    Matrix q(n, dk);
    Matrix k(n, dk);
    Matrix v(n, dk);
    fill_random(q, 1);
    fill_random(k, 2);
    fill_random(v, 3);
    TrafficMeter meter;
    if (fused) {
        attention_flat(q, k, v, row_tile, {}, &meter);
    } else {
        attention_reference(q, k, v, {}, &meter);
    }
    return meter.total_offchip() / sizeof(float);
}

/** Off-chip elements predicted by the cost model for one head. */
double
model_offchip_elems(const AccelConfig& accel, std::size_t n,
                    std::size_t dk, bool fused, std::size_t row_tile)
{
    AttentionDims dims;
    dims.batch = 1;
    dims.heads = 1;
    dims.q_len = n;
    dims.kv_len = n;
    dims.head_dim = dk;

    FusedDataflow df;
    df.cross = fused ? CrossLoop{Granularity::kRow, row_tile}
                     : CrossLoop{Granularity::kMulti, 0};
    // Tiles larger than the slice: single-tile streaming, no re-fetch,
    // mirroring the kernel's semantics.
    df.l2_logit = {n, dk, n};
    df.l2_attend = {n, n, dk};
    if (!fused) {
        df.stage = FusedStageFlags::decode(0);
    }

    const OperatorCost cost =
        fused ? model_flat_attention(accel, dims, df)
              : model_baseline_attention(accel, dims, df);
    return cost.activity.traffic.total_dram() / accel.bytes_per_element;
}

class CrossCheck
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
  protected:
    AccelConfig accel_ = [] {
        AccelConfig a = edge_accel();
        a.sg_bytes = 256 * kMiB; // everything staged fits: exact regime
        return a;
    }();
};

TEST_P(CrossCheck, FlatTrafficMatchesKernelMeter)
{
    const auto [n, row_tile] = GetParam();
    const std::uint64_t measured =
        kernel_offchip_elems(n, 32, /*fused=*/true, row_tile);
    const double predicted =
        model_offchip_elems(accel_, n, 32, /*fused=*/true, row_tile);
    // FLAT moves exactly Q, K, V in and the output out: 4*N*dk.
    EXPECT_EQ(measured, 4u * n * 32);
    EXPECT_DOUBLE_EQ(predicted, static_cast<double>(measured));
}

TEST_P(CrossCheck, BaselineTrafficMatchesKernelMeter)
{
    const auto [n, row_tile] = GetParam();
    (void)row_tile;
    const std::uint64_t measured =
        kernel_offchip_elems(n, 32, /*fused=*/false, 0);
    const double predicted =
        model_offchip_elems(accel_, n, 32, /*fused=*/false, 0);
    // Baseline adds four crossings of the N x N intermediate.
    EXPECT_EQ(measured, 4u * n * 32 + 4u * n * n);
    EXPECT_DOUBLE_EQ(predicted, static_cast<double>(measured));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossCheck,
    ::testing::Values(std::pair<std::size_t, std::size_t>{64, 16},
                      std::pair<std::size_t, std::size_t>{128, 32},
                      std::pair<std::size_t, std::size_t>{256, 64},
                      std::pair<std::size_t, std::size_t>{250, 32}));

} // namespace
} // namespace flat

/**
 * @file
 * Seeded random stress tests: hundreds of random (workload, dataflow,
 * accelerator) configurations are pushed through the cost model, and
 * invariants that must hold for EVERY configuration are asserted —
 * utilization bounds, compulsory-traffic lower bounds, fusion dominance
 * and buffer monotonicity.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "common/units.h"
#include "costmodel/attention_cost.h"
#include "energy/energy_model.h"

namespace flat {
namespace {

struct RandomCase {
    AccelConfig accel;
    AttentionDims dims;
    FusedDataflow dataflow;
};

class CaseGenerator
{
  public:
    explicit CaseGenerator(std::uint32_t seed) : rng_(seed) {}

    RandomCase
    next()
    {
        RandomCase c;
        c.accel = pick({edge_accel(), cloud_accel()});
        c.accel.sg_bytes = pick<std::uint64_t>(
            {64 * kKiB, 512 * kKiB, 8 * kMiB, 64 * kMiB});
        if (flip()) {
            c.accel.sg2_bytes = pick<std::uint64_t>(
                {16 * kMiB, 128 * kMiB});
            c.accel.sg2_bw =
                std::min(4.0 * c.accel.offchip_bw, c.accel.onchip_bw);
        }

        c.dims.batch = pick<std::uint64_t>({1, 4, 32});
        c.dims.heads = pick<std::uint64_t>({1, 8, 16});
        c.dims.q_len = pick<std::uint64_t>({256, 1024, 4096, 16384});
        c.dims.kv_len = flip() ? c.dims.q_len
                               : pick<std::uint64_t>({512, 2048});
        c.dims.head_dim = pick<std::uint64_t>({32, 64, 128});

        c.dataflow.cross.granularity =
            pick({Granularity::kMulti, Granularity::kBatch,
                  Granularity::kHead, Granularity::kRow});
        c.dataflow.cross.rows = pick<std::uint64_t>({16, 64, 256});
        c.dataflow.l2_logit = random_tile();
        c.dataflow.l2_attend = random_tile();
        c.dataflow.order_logit = pick({LoopOrder::kMKN, LoopOrder::kMNK,
                                       LoopOrder::kKMN, LoopOrder::kNKM});
        c.dataflow.order_attend = pick({LoopOrder::kMNK, LoopOrder::kNMK,
                                        LoopOrder::kKNM});
        c.dataflow.stat_logit =
            pick({Stationarity::kOutputStationary,
                  Stationarity::kWeightStationary,
                  Stationarity::kInputStationary});
        c.dataflow.stat_attend =
            pick({Stationarity::kOutputStationary,
                  Stationarity::kInputStationary});
        c.dataflow.stage =
            FusedStageFlags::decode(rng_() % 32);
        return c;
    }

  private:
    template <typename T>
    T
    pick(std::initializer_list<T> options)
    {
        auto it = options.begin();
        std::advance(it, rng_() % options.size());
        return *it;
    }

    bool flip() { return (rng_() & 1u) != 0; }

    L2Tile
    random_tile()
    {
        return {pick<std::uint64_t>({16, 64, 256, 1024}),
                pick<std::uint64_t>({16, 64, 256}),
                pick<std::uint64_t>({16, 64, 256, 1024})};
    }

    std::mt19937 rng_;
};

constexpr int kCases = 300;

TEST(ModelInvariants, UtilizationBoundedAndFinite)
{
    CaseGenerator gen(1);
    for (int i = 0; i < kCases; ++i) {
        const RandomCase c = gen.next();
        const OperatorCost cost =
            model_flat_attention(c.accel, c.dims, c.dataflow);
        EXPECT_TRUE(std::isfinite(cost.cycles)) << "case " << i;
        EXPECT_GT(cost.util(), 0.0) << "case " << i;
        EXPECT_LE(cost.util(), 1.0 + 1e-9) << "case " << i;
        EXPECT_GE(cost.resident_fraction, 0.0);
        EXPECT_LE(cost.resident_fraction, 1.0 + 1e-9);
    }
}

TEST(ModelInvariants, TrafficAtLeastCompulsory)
{
    CaseGenerator gen(2);
    for (int i = 0; i < kCases; ++i) {
        const RandomCase c = gen.next();
        const OperatorCost cost =
            model_flat_attention(c.accel, c.dims, c.dataflow);
        const double bpe = c.accel.bytes_per_element;
        const double bh =
            static_cast<double>(c.dims.batch) * c.dims.heads;
        const double inputs =
            bh * (c.dims.q_len + 2.0 * c.dims.kv_len) * c.dims.head_dim *
            bpe;
        const double outputs =
            bh * c.dims.q_len * c.dims.head_dim * bpe;
        EXPECT_GE(cost.activity.traffic.dram_read, inputs - 1.0)
            << "case " << i;
        EXPECT_GE(cost.activity.traffic.dram_write, outputs - 1.0)
            << "case " << i;
    }
}

TEST(ModelInvariants, FusedNeverSlowerThanSequentialSameDataflow)
{
    CaseGenerator gen(3);
    for (int i = 0; i < kCases; ++i) {
        RandomCase c = gen.next();
        if (c.dataflow.cross.granularity == Granularity::kRow) {
            c.dataflow.cross.granularity = Granularity::kHead;
        }
        const double fused =
            model_flat_attention(c.accel, c.dims, c.dataflow).cycles;
        const double sequential =
            model_baseline_attention(c.accel, c.dims, c.dataflow).cycles;
        EXPECT_LE(fused, sequential * 1.0001) << "case " << i;
    }
}

TEST(ModelInvariants, LargerBufferNeverSlowerSameDataflow)
{
    CaseGenerator gen(4);
    for (int i = 0; i < kCases / 3; ++i) {
        const RandomCase c = gen.next();
        AccelConfig bigger = c.accel;
        bigger.sg_bytes *= 8;
        const double small_cycles =
            model_flat_attention(c.accel, c.dims, c.dataflow).cycles;
        const double big_cycles =
            model_flat_attention(bigger, c.dims, c.dataflow).cycles;
        EXPECT_LE(big_cycles, small_cycles * 1.0001) << "case " << i;
    }
}

TEST(ModelInvariants, EnergyFinitePositiveAndLinearInBlocks)
{
    CaseGenerator gen(5);
    const EnergyTable table;
    for (int i = 0; i < kCases / 3; ++i) {
        const RandomCase c = gen.next();
        const OperatorCost cost =
            model_flat_attention(c.accel, c.dims, c.dataflow);
        const double e = estimate_energy(table, cost.activity).total();
        EXPECT_TRUE(std::isfinite(e)) << "case " << i;
        EXPECT_GT(e, 0.0) << "case " << i;

        ActivityCounts doubled = cost.activity;
        doubled += cost.activity;
        EXPECT_NEAR(estimate_energy(table, doubled).total(), 2.0 * e,
                    1e-9 * e);
    }
}

TEST(ModelInvariants, FootprintMatchesDataflowFunction)
{
    CaseGenerator gen(6);
    for (int i = 0; i < kCases / 3; ++i) {
        const RandomCase c = gen.next();
        const OperatorCost cost =
            model_flat_attention(c.accel, c.dims, c.dataflow);
        EXPECT_EQ(cost.live_footprint_bytes,
                  fused_live_footprint(c.dataflow, c.dims,
                                       c.accel.bytes_per_element))
            << "case " << i;
    }
}

TEST(ModelInvariants, PipelinedAlsoBounded)
{
    CaseGenerator gen(7);
    for (int i = 0; i < kCases / 3; ++i) {
        const RandomCase c = gen.next();
        const OperatorCost cost =
            model_pipelined_attention(c.accel, c.dims, c.dataflow);
        EXPECT_GT(cost.util(), 0.0) << "case " << i;
        EXPECT_LE(cost.util(), 1.0 + 1e-9) << "case " << i;
    }
}

} // namespace
} // namespace flat

/**
 * @file
 * Integration tests asserting the qualitative results of the paper's
 * evaluation section: the shapes of Figure 8/9, the Figure 12(a)
 * speedup ordering and the Figure 12(b) bandwidth trend. Absolute
 * numbers are model-specific; these tests pin the *relationships* the
 * paper's conclusions rest on.
 */
#include <gtest/gtest.h>

#include "common/units.h"
#include "core/simulator.h"
#include "workload/model_config.h"

namespace flat {
namespace {

SimOptions
quick()
{
    SimOptions options;
    options.quick = true;
    return options;
}

double
util_at_buffer(const AccelConfig& base_accel, std::uint64_t sg_bytes,
               const Workload& w, const char* policy)
{
    AccelConfig accel = base_accel;
    accel.sg_bytes = sg_bytes;
    const Simulator sim(accel);
    return sim
        .run(w, Scope::kLogitAttend, DataflowPolicy::parse(policy),
             quick())
        .util();
}

/** Figure 8(a): Base-M pays an extra pass when the buffer is too small
 *  and overtakes Base only once the whole tensor fits. */
TEST(Figure8, BaseMCrossoverWithBuffer)
{
    const Workload w = make_workload(bert_base(), 64, 512);
    const AccelConfig edge = edge_accel();
    const double base_small =
        util_at_buffer(edge, 128 * kKiB, w, "base");
    const double basem_small =
        util_at_buffer(edge, 128 * kKiB, w, "base-m");
    EXPECT_LE(basem_small, base_small);

    const double base_big = util_at_buffer(edge, 2 * kGiB, w, "base");
    const double basem_big = util_at_buffer(edge, 2 * kGiB, w, "base-m");
    EXPECT_GT(basem_big, base_big);
}

/** Figure 8: FLAT-opt dominates Base-opt at every buffer size. */
TEST(Figure8, FlatOptAlwaysAtLeastBaseOpt)
{
    const Workload w = make_workload(bert_base(), 64, 4096);
    const AccelConfig edge = edge_accel();
    for (std::uint64_t buf : {64 * kKiB, 512 * kKiB, 8 * kMiB,
                              256 * kMiB}) {
        EXPECT_GE(util_at_buffer(edge, buf, w, "flat-opt"),
                  util_at_buffer(edge, buf, w, "base-opt") * 0.9999)
            << format_bytes(buf);
    }
}

/** Figure 8: the finer the FLAT granularity, the smaller the buffer
 *  needed to approach cap utilization. */
TEST(Figure8, RGranReachesCapWithSmallestBuffer)
{
    const Workload w = make_workload(bert_base(), 64, 4096);
    const AccelConfig edge = edge_accel();
    const std::uint64_t small_buf = 512 * kKiB;
    const double r = util_at_buffer(edge, small_buf, w, "flat-r64");
    const double h = util_at_buffer(edge, small_buf, w, "flat-h");
    const double m = util_at_buffer(edge, small_buf, w, "flat-m");
    EXPECT_GT(r, h);
    EXPECT_GE(h, m * 0.9999);
}

/** Figure 8 rows 2-4: at 64K sequences only FLAT-R approaches cap. */
TEST(Figure8, LongSequenceOnlyFlatRApproachesCap)
{
    const Workload w = make_workload(bert_base(), 64, 65536);
    const AccelConfig edge = edge_accel();
    const std::uint64_t buf = 32 * kMiB;
    const double flat_r = util_at_buffer(edge, buf, w, "flat-r64");
    EXPECT_GT(flat_r, 0.9);
    EXPECT_LT(util_at_buffer(edge, buf, w, "base-opt"), 0.7);
    EXPECT_LT(util_at_buffer(edge, buf, w, "base-h"), 0.7);
    EXPECT_LT(util_at_buffer(edge, buf, w, "flat-m"), 0.7);
}

/** Figure 8 Block/Model levels: the L-A advantage is diluted at short
 *  sequences but dominates at long ones. */
TEST(Figure8, BlockLevelDilutionAtShortSequences)
{
    const auto gap = [&](const AccelConfig& accel, std::uint64_t n,
                         Scope scope) {
        const Simulator sim(accel);
        const Workload w = make_workload(bert_base(), 64, n);
        const double flat_util =
            sim.run(w, scope, DataflowPolicy::parse("flat-opt"), quick())
                .util();
        const double base_util =
            sim.run(w, scope, DataflowPolicy::parse("base"), quick())
                .util();
        return flat_util / base_util;
    };
    // At N=512 the block-level gap is smaller than the L-A-level gap
    // (projections/FCs dilute the win).
    const AccelConfig edge = edge_accel();
    EXPECT_LT(gap(edge, 512, Scope::kBlock),
              gap(edge, 512, Scope::kLogitAttend));
    // At N=64K the block is dominated by L-A, so with FLAT's O(N)
    // footprint provisioned (64MiB here) the gap survives at block
    // level instead of being diluted away.
    AccelConfig roomy = edge_accel();
    roomy.sg_bytes = 64 * kMiB;
    EXPECT_GT(gap(roomy, 65536, Scope::kBlock), 1.3);
}

/** Figure 9: FLAT-opt never costs more energy than Base at the same
 *  buffer, thanks to the saved off-chip accesses. */
TEST(Figure9, FlatSavesEnergyVersusBase)
{
    const Simulator sim(edge_accel());
    for (std::uint64_t n : {512u, 4096u, 65536u}) {
        const Workload w = make_workload(bert_base(), 64, n);
        const double flat_energy =
            sim.run(w, Scope::kLogitAttend,
                    DataflowPolicy::parse("flat-opt"), quick())
                .energy_j;
        const double base_energy =
            sim.run(w, Scope::kLogitAttend, DataflowPolicy::parse("base"),
                    quick())
                .energy_j;
        EXPECT_LT(flat_energy, base_energy) << "N=" << n;
    }
}

/** Figure 11: at long sequences L-A dominates the latency breakdown on
 *  the baseline accelerator but not on ATTACC. */
TEST(Figure11, LaDominatesBaselineBreakdownAtLongN)
{
    const Simulator sim(cloud_accel());
    const Workload w = make_workload(xlm(), 64, 65536);
    const ScopeReport flex = sim.run(
        w, Scope::kBlock, AcceleratorSpec::parse("flexaccel"), quick());
    EXPECT_GT(flex.breakdown.la_cycles,
              5.0 * (flex.breakdown.proj_cycles +
                     flex.breakdown.fc_cycles));

    const ScopeReport attacc = sim.run(
        w, Scope::kBlock, AcceleratorSpec::parse("attacc"), quick());
    EXPECT_LT(attacc.breakdown.la_cycles, flex.breakdown.la_cycles);
}

/** Figure 12(a): the headline speedups — ATTACC over FlexAccel-M and
 *  FlexAccel, growing with sequence length. */
TEST(Figure12a, SpeedupOrderingAndGrowth)
{
    const Simulator sim(cloud_accel());
    const auto runtime = [&](std::uint64_t n, const char* accel) {
        const Workload w = make_workload(xlm(), 64, n);
        return sim
            .run(w, Scope::kModel, AcceleratorSpec::parse(accel), quick())
            .cycles;
    };
    for (std::uint64_t n : {4096u, 65536u}) {
        const double attacc = runtime(n, "attacc");
        const double flex = runtime(n, "flexaccel");
        const double flexm = runtime(n, "flexaccel-m");
        EXPECT_LE(attacc, flex * 1.0001) << n;
        EXPECT_LE(flex, flexm * 1.0001) << n;
    }
    // The ATTACC advantage grows with N.
    const double speedup_4k =
        runtime(4096, "flexaccel") / runtime(4096, "attacc");
    const double speedup_64k =
        runtime(65536, "flexaccel") / runtime(65536, "attacc");
    EXPECT_GT(speedup_64k, speedup_4k);
    EXPECT_GT(speedup_64k, 1.5);
}

/** Figure 12(a): energy consumption ratio below 1 (ATTACC saves). */
TEST(Figure12a, EnergyRatioBelowOne)
{
    const Simulator sim(edge_accel());
    const Workload w = make_workload(bert_base(), 64, 16384);
    const double attacc_energy =
        sim.run(w, Scope::kModel, AcceleratorSpec::parse("attacc"),
                quick())
            .energy_j;
    const double flex_energy =
        sim.run(w, Scope::kModel, AcceleratorSpec::parse("flexaccel"),
                quick())
            .energy_j;
    EXPECT_LT(attacc_energy, flex_energy);
}

/** Figure 12(b): the off-chip bandwidth needed for Util >= 0.95 rises
 *  once the live footprint outgrows the 32MB cloud buffer, and ATTACC
 *  needs far less of it than the baselines. */
TEST(Figure12b, AttaccNeedsLessBandwidth)
{
    const Workload w = make_workload(xlm(), 64, 65536);
    const auto util_with_bw = [&](const char* accel, double bw) {
        AccelConfig cloud = cloud_accel();
        cloud.offchip_bw = bw;
        cloud.onchip_bw = std::max(cloud.onchip_bw, bw);
        const Simulator sim(cloud);
        return sim
            .run(w, Scope::kLogitAttend, AcceleratorSpec::parse(accel),
                 quick())
            .util();
    };
    // At the same (generous) bandwidth, ATTACC's utilization is higher,
    // i.e. it reaches any utilization target at lower bandwidth.
    for (double bw : {400e9, 1.6e12, 6.4e12}) {
        EXPECT_GT(util_with_bw("attacc", bw),
                  util_with_bw("flexaccel", bw))
            << format_bandwidth(bw);
    }
}

} // namespace
} // namespace flat

#include "common/units.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace flat {
namespace {

TEST(Units, Constants)
{
    EXPECT_EQ(kKiB, 1024u);
    EXPECT_EQ(kMiB, 1024u * 1024u);
    EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
}

TEST(Units, FormatBytesWholeUnits)
{
    EXPECT_EQ(format_bytes(512 * kKiB), "512KiB");
    EXPECT_EQ(format_bytes(32 * kMiB), "32MiB");
    EXPECT_EQ(format_bytes(2 * kGiB), "2GiB");
    EXPECT_EQ(format_bytes(0), "0B");
}

TEST(Units, FormatBytesFractional)
{
    EXPECT_EQ(format_bytes(1536), "1.50KiB");
}

TEST(Units, FormatBandwidth)
{
    EXPECT_EQ(format_bandwidth(400e9), "400GB/s");
    EXPECT_EQ(format_bandwidth(1e12), "1TB/s");
    EXPECT_EQ(format_bandwidth(50e9), "50GB/s");
}

TEST(Units, FormatTimePicksScale)
{
    EXPECT_EQ(format_time(1.5e-9), "1.50ns");
    EXPECT_EQ(format_time(2.5e-6), "2.50us");
    EXPECT_EQ(format_time(3.25e-3), "3.25ms");
    EXPECT_EQ(format_time(1.5), "1.500s");
}

TEST(Units, FormatCount)
{
    EXPECT_EQ(format_count(1000.0), "1K");
    EXPECT_EQ(format_count(2.5e6), "2.50M");
}

TEST(Units, ParseBytesBinary)
{
    EXPECT_EQ(parse_bytes("512KiB"), 512 * kKiB);
    EXPECT_EQ(parse_bytes("2MiB"), 2 * kMiB);
    EXPECT_EQ(parse_bytes("1.5GiB"), 3 * kGiB / 2);
    EXPECT_EQ(parse_bytes("32 MiB"), 32 * kMiB);
}

TEST(Units, ParseBytesDecimalAndPlain)
{
    EXPECT_EQ(parse_bytes("4KB"), 4000u);
    EXPECT_EQ(parse_bytes("1000"), 1000u);
    EXPECT_EQ(parse_bytes("123B"), 123u);
}

TEST(Units, ParseBytesRoundTripsFormat)
{
    for (std::uint64_t bytes : {20 * kKiB, 512 * kKiB, 32 * kMiB,
                                2 * kGiB}) {
        EXPECT_EQ(parse_bytes(format_bytes(bytes)), bytes);
    }
}

TEST(Units, ParseBytesRejectsGarbage)
{
    EXPECT_THROW(parse_bytes("lots"), Error);
    EXPECT_THROW(parse_bytes("12XiB"), Error);
    EXPECT_THROW(parse_bytes("-5KiB"), Error);
}

TEST(Units, ParseBytesRejectsNonFiniteValues)
{
    // NaN slips past a plain `value < 0.0` guard; both must throw.
    EXPECT_THROW(parse_bytes("nan"), Error);
    EXPECT_THROW(parse_bytes("NaN MiB"), Error);
    EXPECT_THROW(parse_bytes("inf"), Error);
    EXPECT_THROW(parse_bytes("infKiB"), Error);
}

TEST(Units, ParseBytesRejectsOverflow)
{
    // 2^64 bytes and anything whose scaled value exceeds it.
    EXPECT_THROW(parse_bytes("18446744073709551616"), Error);
    EXPECT_THROW(parse_bytes("20000000TiB"), Error);
    EXPECT_THROW(parse_bytes("1e300"), Error);
    // Near-limit values still parse.
    EXPECT_EQ(parse_bytes("16000000TiB"),
              16000000ull * 1024 * 1024 * 1024 * 1024);
}

TEST(Units, ParseBytesRejectsTrailingGarbage)
{
    EXPECT_THROW(parse_bytes("4MiBx"), Error);
    EXPECT_THROW(parse_bytes("4Mx"), Error);
    EXPECT_THROW(parse_bytes("4KiBB"), Error);
    EXPECT_THROW(parse_bytes("123Bq"), Error);
}

TEST(Units, ParseBandwidth)
{
    EXPECT_DOUBLE_EQ(parse_bandwidth("50GB/s"), 50e9);
    EXPECT_DOUBLE_EQ(parse_bandwidth("1TB/s"), 1e12);
    EXPECT_DOUBLE_EQ(parse_bandwidth("400e9"), 400e9);
}

TEST(Units, ParseBandwidthRejectsGarbage)
{
    EXPECT_THROW(parse_bandwidth("100GB/sx"), Error);
    EXPECT_THROW(parse_bandwidth("nanGB/s"), Error);
    EXPECT_THROW(parse_bandwidth("infTB/s"), Error);
    EXPECT_THROW(parse_bandwidth("100GiBx/s"), Error);
}

} // namespace
} // namespace flat

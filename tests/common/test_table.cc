#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/status.h"

namespace flat {
namespace {

TEST(TextTable, PrintsHeaderAndRows)
{
    TextTable table({"name", "util"});
    table.add_row({"Base", "0.56"});
    table.add_row({"FLAT-opt", "0.97"});
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("FLAT-opt"), std::string::npos);
    EXPECT_NE(out.find("0.97"), std::string::npos);
    EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable table({"a", "b"});
    table.add_row({"short", "x"});
    table.add_row({"much-longer-cell", "y"});
    std::ostringstream oss;
    table.print(oss);
    // Every rendered line has the same width.
    std::istringstream lines(oss.str());
    std::string line;
    std::size_t width = 0;
    while (std::getline(lines, line)) {
        if (width == 0) {
            width = line.size();
        }
        EXPECT_EQ(line.size(), width) << line;
    }
}

TEST(TextTable, RejectsWrongArity)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(TextTable, RejectsEmptyHeader)
{
    EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTable, SeparatorDoesNotCountAsRow)
{
    TextTable table({"a"});
    table.add_row({"x"});
    table.add_separator();
    table.add_row({"y"});
    EXPECT_EQ(table.num_rows(), 2u);
    std::ostringstream oss;
    EXPECT_NO_THROW(table.print(oss));
}

} // namespace
} // namespace flat

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

namespace flat {
namespace {

TEST(ParallelFor, EmptyRangeNeverInvokesBody)
{
    std::atomic<int> calls{0};
    parallel_for(0, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    constexpr std::size_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(kN, 8, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelFor, SingleThreadRunsInOrderOnCaller)
{
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    parallel_for(100, 1, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 100u);
    for (std::size_t i = 0; i < order.size(); ++i) {
        EXPECT_EQ(order[i], i);
    }
}

TEST(ParallelFor, PropagatesTheFirstException)
{
    EXPECT_THROW(
        parallel_for(1000, 4,
                     [&](std::size_t i) {
                         if (i == 37) {
                             throw std::runtime_error("boom");
                         }
                     }),
        std::runtime_error);

    // Serial path too.
    EXPECT_THROW(parallel_for(10, 1,
                              [&](std::size_t) {
                                  throw std::logic_error("serial boom");
                              }),
                 std::logic_error);
}

TEST(ParallelFor, ExceptionAbandonsRemainingIterations)
{
    std::atomic<int> calls{0};
    try {
        parallel_for(100000, 4, [&](std::size_t i) {
            ++calls;
            if (i == 0) {
                throw std::runtime_error("stop");
            }
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error&) {
    }
    // Not all 100k iterations should have run: workers observe the
    // failure flag and bail out.
    EXPECT_LT(calls.load(), 100000);
}

TEST(ParallelFor, NestedCallRunsSeriallyWithoutDeadlock)
{
    constexpr std::size_t kOuter = 8;
    constexpr std::size_t kInner = 500;
    std::vector<std::atomic<int>> hits(kOuter * kInner);
    parallel_for(kOuter, 4, [&](std::size_t o) {
        const std::thread::id outer_thread = std::this_thread::get_id();
        parallel_for(kInner, 4, [&](std::size_t i) {
            // The nested loop must stay on the worker that owns the
            // outer iteration (serial fallback).
            EXPECT_EQ(std::this_thread::get_id(), outer_thread);
            ++hits[o * kInner + i];
        });
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine)
{
    std::atomic<int> calls{0};
    parallel_for(3, 64, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 3);
}

TEST(ParallelFor, GrainVisitsEveryIndexExactlyOnce)
{
    constexpr std::size_t kN = 10000;
    for (const std::size_t grain : {std::size_t{1}, std::size_t{3},
                                    std::size_t{64}, std::size_t{997},
                                    kN, kN * 2}) {
        std::vector<std::atomic<int>> hits(kN);
        parallel_for(kN, 8, [&](std::size_t i) { ++hits[i]; }, grain);
        for (std::size_t i = 0; i < kN; ++i) {
            ASSERT_EQ(hits[i].load(), 1)
                << "grain " << grain << ", index " << i;
        }
    }
}

TEST(ParallelFor, GrainZeroBehavesLikeGrainOne)
{
    constexpr std::size_t kN = 257;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(kN, 4, [&](std::size_t i) { ++hits[i]; },
                 /*grain=*/0);
    for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelFor, ChunkedMatchesUnchunkedResults)
{
    // The grain only batches index hand-out; the computed per-index
    // results must be identical to the grain-1 schedule.
    constexpr std::size_t kN = 4096;
    std::vector<std::uint64_t> unchunked(kN), chunked(kN);
    const auto body = [](std::size_t i) {
        return static_cast<std::uint64_t>(i) * 2654435761u + 17u;
    };
    parallel_for(kN, 8, [&](std::size_t i) { unchunked[i] = body(i); });
    parallel_for(kN, 8, [&](std::size_t i) { chunked[i] = body(i); },
                 /*grain=*/128);
    EXPECT_EQ(chunked, unchunked);
}

TEST(ParallelFor, GrainSerialRunsInOrderOnCaller)
{
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    parallel_for(100, 1,
                 [&](std::size_t i) {
                     EXPECT_EQ(std::this_thread::get_id(), caller);
                     order.push_back(i);
                 },
                 /*grain=*/16);
    ASSERT_EQ(order.size(), 100u);
    for (std::size_t i = 0; i < order.size(); ++i) {
        EXPECT_EQ(order[i], i);
    }
}

TEST(ParallelFor, GrainPropagatesTheFirstException)
{
    EXPECT_THROW(parallel_for(1000, 4,
                              [&](std::size_t i) {
                                  if (i == 537) {
                                      throw std::runtime_error("boom");
                                  }
                              },
                              /*grain=*/32),
                 std::runtime_error);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    std::atomic<int> done{0};
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 256; ++i) {
        pool.submit([&] { ++done; });
    }
    pool.wait();
    EXPECT_EQ(done.load(), 256);
}

TEST(ThreadPool, WaitIsReusable)
{
    std::atomic<int> done{0};
    ThreadPool pool(2);
    pool.submit([&] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 1);
    pool.submit([&] { ++done; });
    pool.submit([&] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 3);
}

TEST(ThreadPool, ZeroWorkersClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> done{0};
    pool.submit([&] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 1);
}

TEST(Threads, ResolveHonorsExplicitRequest)
{
    EXPECT_EQ(resolve_threads(5), 5u);
    EXPECT_EQ(resolve_threads(1), 1u);
    EXPECT_GE(resolve_threads(0), 1u); // auto is at least one thread
    EXPECT_GE(default_threads(), 1u);
}

} // namespace
} // namespace flat

#include "common/math_util.h"

#include <gtest/gtest.h>

namespace flat {
namespace {

TEST(MathUtil, CeilDivExact)
{
    EXPECT_EQ(ceil_div<std::uint64_t>(12, 4), 3u);
    EXPECT_EQ(ceil_div<std::uint64_t>(12, 3), 4u);
}

TEST(MathUtil, CeilDivRoundsUp)
{
    EXPECT_EQ(ceil_div<std::uint64_t>(13, 4), 4u);
    EXPECT_EQ(ceil_div<std::uint64_t>(1, 4), 1u);
}

TEST(MathUtil, CeilDivZeroNumerator)
{
    EXPECT_EQ(ceil_div<std::uint64_t>(0, 7), 0u);
}

TEST(MathUtil, CeilDivZeroDenominatorIsZero)
{
    EXPECT_EQ(ceil_div<std::uint64_t>(5, 0), 0u);
}

TEST(MathUtil, RoundUp)
{
    EXPECT_EQ(round_up<std::uint64_t>(13, 4), 16u);
    EXPECT_EQ(round_up<std::uint64_t>(16, 4), 16u);
    EXPECT_EQ(round_up<std::uint64_t>(0, 4), 0u);
}

TEST(MathUtil, IsPow2)
{
    EXPECT_FALSE(is_pow2(0));
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(1024));
    EXPECT_FALSE(is_pow2(1023));
    EXPECT_TRUE(is_pow2(1ull << 63));
}

TEST(MathUtil, Ilog2)
{
    EXPECT_EQ(ilog2(1), 0u);
    EXPECT_EQ(ilog2(2), 1u);
    EXPECT_EQ(ilog2(3), 1u);
    EXPECT_EQ(ilog2(1024), 10u);
}

TEST(MathUtil, Ilog2Ceil)
{
    EXPECT_EQ(ilog2_ceil(1), 0u);
    EXPECT_EQ(ilog2_ceil(2), 1u);
    EXPECT_EQ(ilog2_ceil(3), 2u);
    EXPECT_EQ(ilog2_ceil(1024), 10u);
    EXPECT_EQ(ilog2_ceil(1025), 11u);
}

TEST(MathUtil, AlmostEqual)
{
    EXPECT_TRUE(almost_equal(1.0, 1.0));
    EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(almost_equal(1.0, 1.001));
    EXPECT_TRUE(almost_equal(0.0, 0.0));
}

TEST(MathUtil, CheckedU64RejectsNegative)
{
    EXPECT_THROW(checked_u64(-1.0), Error);
    EXPECT_EQ(checked_u64(42.9), 42u);
}

/** Property: ceil_div(x, d) * d >= x and (ceil_div(x, d) - 1) * d < x. */
class CeilDivProperty
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                std::uint64_t>>
{
};

TEST_P(CeilDivProperty, TightUpperBound)
{
    const auto [x, d] = GetParam();
    const std::uint64_t q = ceil_div(x, d);
    EXPECT_GE(q * d, x);
    if (q > 0) {
        EXPECT_LT((q - 1) * d, x);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CeilDivProperty,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{1, 1},
                      std::pair<std::uint64_t, std::uint64_t>{7, 3},
                      std::pair<std::uint64_t, std::uint64_t>{512, 32},
                      std::pair<std::uint64_t, std::uint64_t>{513, 32},
                      std::pair<std::uint64_t, std::uint64_t>{65536, 511},
                      std::pair<std::uint64_t, std::uint64_t>{1, 1024}));

} // namespace
} // namespace flat

#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <new>

#include "common/diagnostics.h"

namespace flat {
namespace {

/** Every test leaves the global fault registry clean. */
class FaultInjection : public ::testing::Test
{
  protected:
    void TearDown() override { disarm_all_faults(); }
};

void
probe_once()
{
    FLAT_FAULT_POINT("test.site");
}

TEST_F(FaultInjection, UnarmedProbeIsInert)
{
    EXPECT_FALSE(fault_injection::enabled());
    EXPECT_NO_THROW(probe_once());
}

TEST_F(FaultInjection, ArmedProbeThrowsOnSeedThHit)
{
    FaultSpec spec;
    spec.seed = 2;
    arm_fault("test.site", spec);
    EXPECT_TRUE(fault_injection::enabled());
    EXPECT_NO_THROW(probe_once()); // hit 0
    EXPECT_NO_THROW(probe_once()); // hit 1
    EXPECT_THROW(probe_once(), FaultInjectedError); // hit 2 fires
    EXPECT_NO_THROW(probe_once()); // fired already, counter moved on
}

TEST_F(FaultInjection, ScopedFaultFiresOnlyInMatchingScope)
{
    FaultSpec spec;
    spec.seed = 7;
    arm_fault("test.site", spec);
    for (std::uint64_t id : {0ull, 3ull, 6ull, 8ull}) {
        FaultScope scope(id);
        EXPECT_NO_THROW(probe_once()) << "scope " << id;
    }
    {
        FaultScope scope(7);
        EXPECT_THROW(probe_once(), FaultInjectedError);
    }
}

TEST_F(FaultInjection, ScopedFiringIsRepeatableAcrossRuns)
{
    FaultSpec spec;
    spec.seed = 1;
    arm_fault("test.site", spec);
    for (int run = 0; run < 3; ++run) {
        FaultScope miss(0);
        EXPECT_NO_THROW(probe_once());
    }
    for (int run = 0; run < 3; ++run) {
        FaultScope match(1);
        EXPECT_THROW(probe_once(), FaultInjectedError);
    }
}

TEST_F(FaultInjection, ActionsMapToTaxonomy)
{
    FaultSpec spec;
    spec.action = FaultAction::kThrowInternal;
    arm_fault("test.site", spec);
    {
        FaultScope scope(0);
        EXPECT_THROW(probe_once(), InternalError);
    }
    spec.action = FaultAction::kThrowBadAlloc;
    arm_fault("test.site", spec);
    {
        FaultScope scope(0);
        EXPECT_THROW(probe_once(), std::bad_alloc);
    }
}

TEST_F(FaultInjection, DelayActionSleepsOncePerScope)
{
    FaultSpec spec;
    spec.action = FaultAction::kDelay;
    spec.delay_ms = 50;
    arm_fault("test.site", spec);
    FaultScope scope(0);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_NO_THROW(probe_once());
    EXPECT_NO_THROW(probe_once()); // second hit in the scope: no sleep
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    EXPECT_GE(ms, 50.0);
    EXPECT_LT(ms, 1000.0);
}

TEST_F(FaultInjection, TransientFailsExactlyCountAttemptsPerScope)
{
    FaultSpec spec;
    spec.action = FaultAction::kTransient;
    spec.seed = 3;
    spec.count = 2;
    arm_fault("test.site", spec);
    {
        FaultScope other(1); // wrong scope: never fires
        EXPECT_NO_THROW(probe_once());
    }
    // The per-scope attempt counter survives FaultScope
    // re-construction — exactly how a retrying driver re-scopes each
    // attempt — so attempts 1..count fail and attempt count+1 works.
    {
        FaultScope attempt(3);
        EXPECT_THROW(probe_once(), TransientError);
    }
    {
        FaultScope attempt(3);
        EXPECT_THROW(probe_once(), TransientError);
    }
    {
        FaultScope attempt(3);
        EXPECT_NO_THROW(probe_once());
        EXPECT_NO_THROW(probe_once()); // stays healthy afterwards
    }
}

TEST_F(FaultInjection, TransientClassifiesAsRetryableDiagnostic)
{
    FaultSpec spec;
    spec.action = FaultAction::kTransient;
    arm_fault("test.site", spec);
    FaultScope scope(0);
    try {
        probe_once();
        FAIL() << "probe should have thrown";
    } catch (const std::exception& e) {
        EXPECT_EQ(diagnostic_from_exception(e).kind,
                  DiagKind::kTransient);
    }
}

TEST_F(FaultInjection, CrashActionAbortsTheProcess)
{
    EXPECT_DEATH(
        {
            FaultSpec spec;
            spec.action = FaultAction::kCrash;
            arm_fault("test.site", spec);
            FaultScope scope(0);
            probe_once();
        },
        "crash fault");
}

TEST_F(FaultInjection, FiredSiteIsAttributedToDiagnostics)
{
    FaultSpec spec;
    arm_fault("test.site", spec);
    FaultScope scope(0);
    try {
        probe_once();
        FAIL() << "probe should have thrown";
    } catch (const std::exception& e) {
        const Diagnostic diag = diagnostic_from_exception(e);
        EXPECT_EQ(diag.probe_site, "test.site");
    }
}

TEST_F(FaultInjection, DisarmRestoresInertProbes)
{
    arm_fault("test.site", FaultSpec{});
    disarm_fault("test.site");
    EXPECT_FALSE(fault_injection::enabled());
    FaultScope scope(0);
    EXPECT_NO_THROW(probe_once());
}

TEST_F(FaultInjection, RegistryListsReachedSites)
{
    probe_once();
    const std::vector<std::string> sites = registered_fault_sites();
    EXPECT_NE(std::find(sites.begin(), sites.end(), "test.site"),
              sites.end());
}

TEST_F(FaultInjection, ParsesCliSpecs)
{
    {
        const auto [site, spec] = parse_fault_spec("dse.search_attention");
        EXPECT_EQ(site, "dse.search_attention");
        EXPECT_EQ(spec.seed, 0u);
        EXPECT_EQ(spec.action, FaultAction::kThrowError);
    }
    {
        const auto [site, spec] = parse_fault_spec("sweep.point:7");
        EXPECT_EQ(site, "sweep.point");
        EXPECT_EQ(spec.seed, 7u);
    }
    {
        const auto [site, spec] =
            parse_fault_spec("sweep.point:3:delay=500");
        EXPECT_EQ(spec.seed, 3u);
        EXPECT_EQ(spec.action, FaultAction::kDelay);
        EXPECT_EQ(spec.delay_ms, 500u);
    }
    {
        const auto [site, spec] = parse_fault_spec("x:1:internal");
        EXPECT_EQ(spec.action, FaultAction::kThrowInternal);
    }
    {
        const auto [site, spec] =
            parse_fault_spec("sweep.point:3:transient=2");
        EXPECT_EQ(spec.seed, 3u);
        EXPECT_EQ(spec.action, FaultAction::kTransient);
        EXPECT_EQ(spec.count, 2u);
    }
    {
        const auto [site, spec] = parse_fault_spec("x:1:transient");
        EXPECT_EQ(spec.action, FaultAction::kTransient);
        EXPECT_EQ(spec.count, 1u);
    }
    {
        const auto [site, spec] = parse_fault_spec("sweep.point:5:crash");
        EXPECT_EQ(spec.seed, 5u);
        EXPECT_EQ(spec.action, FaultAction::kCrash);
    }
    EXPECT_THROW(parse_fault_spec(""), Error);
    EXPECT_THROW(parse_fault_spec("site:abc"), Error);
    EXPECT_THROW(parse_fault_spec("site:1:frobnicate"), Error);
    EXPECT_THROW(parse_fault_spec("site:1:delay=xyz"), Error);
    EXPECT_THROW(parse_fault_spec("site:1:transient=0"), Error);
    EXPECT_THROW(parse_fault_spec("site:1:transient=x"), Error);
    EXPECT_THROW(parse_fault_spec("site:1:crash=5"), Error);
}

} // namespace
} // namespace flat

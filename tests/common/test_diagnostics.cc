#include "common/diagnostics.h"

#include <gtest/gtest.h>

#include <new>
#include <stdexcept>
#include <thread>

#include "common/json.h"

namespace flat {
namespace {

TEST(Diagnostics, ContextStackIsScoped)
{
    EXPECT_TRUE(diagnostic_context().empty());
    {
        FLAT_ERROR_CONTEXT("outer phase " << 1);
        {
            FLAT_ERROR_CONTEXT("inner " << "phase");
            const std::vector<std::string> stack = diagnostic_context();
            ASSERT_EQ(stack.size(), 2u);
            EXPECT_EQ(stack[0], "outer phase 1");
            EXPECT_EQ(stack[1], "inner phase");
        }
        EXPECT_EQ(diagnostic_context().size(), 1u);
    }
    EXPECT_TRUE(diagnostic_context().empty());
}

TEST(Diagnostics, ContextStackIsPerThread)
{
    FLAT_ERROR_CONTEXT("main thread frame");
    std::vector<std::string> other;
    std::thread t([&] { other = diagnostic_context(); });
    t.join();
    EXPECT_TRUE(other.empty());
    EXPECT_EQ(diagnostic_context().size(), 1u);
}

TEST(Diagnostics, ClassifiesExceptionTaxonomy)
{
    EXPECT_EQ(diagnostic_from_exception(UsageError("bad flag")).kind,
              DiagKind::kUsage);
    EXPECT_EQ(diagnostic_from_exception(Error("bad config")).kind,
              DiagKind::kConfig);
    EXPECT_EQ(diagnostic_from_exception(Error("no feasible point"),
                                        DiagKind::kInfeasible)
                  .kind,
              DiagKind::kInfeasible);
    EXPECT_EQ(diagnostic_from_exception(InternalError("bug")).kind,
              DiagKind::kInternal);
    EXPECT_EQ(diagnostic_from_exception(std::bad_alloc()).kind,
              DiagKind::kOom);
    EXPECT_EQ(
        diagnostic_from_exception(std::runtime_error("surprise")).kind,
        DiagKind::kInternal);
}

TEST(Diagnostics, ClassificationCapturesContext)
{
    FLAT_ERROR_CONTEXT("evaluating point seq=65536 policy=flat-opt");
    const Diagnostic diag = diagnostic_from_exception(Error("boom"));
    ASSERT_EQ(diag.context.size(), 1u);
    EXPECT_EQ(diag.context[0],
              "evaluating point seq=65536 policy=flat-opt");
    EXPECT_EQ(diag.message, "boom");
}

TEST(Diagnostics, FromCurrentExceptionHandlesNonStd)
{
    Diagnostic diag;
    try {
        throw 42;
    } catch (...) {
        diag = diagnostic_from_current_exception();
    }
    EXPECT_EQ(diag.kind, DiagKind::kInternal);
}

TEST(Diagnostics, ExitCodeContract)
{
    EXPECT_EQ(exit_code_for(DiagKind::kUsage), 2);
    EXPECT_EQ(exit_code_for(DiagKind::kConfig), 1);
    EXPECT_EQ(exit_code_for(DiagKind::kInfeasible), 1);
    EXPECT_EQ(exit_code_for(DiagKind::kInternal), 3);
    EXPECT_EQ(exit_code_for(DiagKind::kTimeout), 3);
    EXPECT_EQ(exit_code_for(DiagKind::kOom), 3);
}

TEST(Diagnostics, JsonSerialization)
{
    Diagnostic diag;
    diag.kind = DiagKind::kTimeout;
    diag.message = "point exceeded deadline";
    diag.probe_site = "sweep.point";
    diag.context = {"sweep point 9"};

    JsonWriter json;
    diag.write_json(json);
    const std::string text = json.str();
    EXPECT_NE(text.find("\"kind\":\"timeout\""), std::string::npos);
    EXPECT_NE(text.find("\"probe_site\":\"sweep.point\""),
              std::string::npos);
    EXPECT_NE(text.find("\"sweep point 9\""), std::string::npos);
}

TEST(Diagnostics, TableRowMatchesHeader)
{
    Diagnostic diag;
    diag.kind = DiagKind::kInfeasible;
    diag.message = "m";
    diag.context = {"a", "b"};
    EXPECT_EQ(diag.table_row().size(), Diagnostic::table_header().size());
    EXPECT_EQ(diag.table_row()[3], "a > b");
}

TEST(Diagnostics, ToStringNamesSeverityKindAndContext)
{
    Diagnostic diag;
    diag.severity = DiagSeverity::kWarning;
    diag.kind = DiagKind::kConfig;
    diag.message = "duplicate key";
    diag.context = {"parsing x.conf"};
    const std::string text = diag.to_string();
    EXPECT_NE(text.find("warning[config]"), std::string::npos);
    EXPECT_NE(text.find("duplicate key"), std::string::npos);
    EXPECT_NE(text.find("parsing x.conf"), std::string::npos);
}

TEST(Diagnostics, CaptureCollectsEmittedRecords)
{
    DiagnosticCapture capture;
    Diagnostic diag;
    diag.severity = DiagSeverity::kWarning;
    diag.message = "w1";
    emit_diagnostic(diag);
    diag.message = "w2";
    emit_diagnostic(diag);
    ASSERT_EQ(capture.diagnostics().size(), 2u);
    EXPECT_EQ(capture.diagnostics()[0].message, "w1");
    const std::vector<Diagnostic> taken = capture.take();
    EXPECT_EQ(taken.size(), 2u);
    EXPECT_TRUE(capture.diagnostics().empty());
}

TEST(Diagnostics, CapturesNest)
{
    DiagnosticCapture outer;
    {
        DiagnosticCapture inner;
        Diagnostic diag;
        diag.message = "inner only";
        emit_diagnostic(diag);
        EXPECT_EQ(inner.diagnostics().size(), 1u);
        EXPECT_TRUE(outer.diagnostics().empty());
    }
    Diagnostic diag;
    diag.message = "outer now";
    emit_diagnostic(diag);
    EXPECT_EQ(outer.diagnostics().size(), 1u);
}

} // namespace
} // namespace flat

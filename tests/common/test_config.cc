#include "common/config.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/diagnostics.h"
#include "common/status.h"

namespace flat {
namespace {

TEST(Config, ParsesKeyValuePairs)
{
    const ConfigMap map = parse_config_text("a = 1\nb=two\n  c  =  3  ");
    EXPECT_EQ(map.at("a"), "1");
    EXPECT_EQ(map.at("b"), "two");
    EXPECT_EQ(map.at("c"), "3");
}

TEST(Config, IgnoresCommentsAndBlankLines)
{
    const ConfigMap map = parse_config_text(
        "# header\n\nkey = value # trailing comment\n   \n# done\n");
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.at("key"), "value");
}

TEST(Config, KeysLowerCased)
{
    const ConfigMap map = parse_config_text("PE_Rows = 64");
    EXPECT_EQ(map.at("pe_rows"), "64");
}

TEST(Config, LaterDuplicateWins)
{
    const ConfigMap map = parse_config_text("k = 1\nk = 2");
    EXPECT_EQ(map.at("k"), "2");
}

TEST(Config, DuplicateKeyEmitsWarningDiagnostic)
{
    DiagnosticCapture capture;
    parse_config_text("k = 1\nother = x\nk = 2");
    ASSERT_EQ(capture.diagnostics().size(), 1u);
    const Diagnostic& diag = capture.diagnostics()[0];
    EXPECT_EQ(diag.severity, DiagSeverity::kWarning);
    EXPECT_EQ(diag.kind, DiagKind::kConfig);
    EXPECT_NE(diag.message.find("line 3"), std::string::npos);
    EXPECT_NE(diag.message.find("'k'"), std::string::npos);
    EXPECT_NE(diag.message.find("'1'"), std::string::npos);
    EXPECT_NE(diag.message.find("'2'"), std::string::npos);
}

TEST(Config, RejectsMalformedLines)
{
    EXPECT_THROW(parse_config_text("no-equals-here"), Error);
    EXPECT_THROW(parse_config_text("= value"), Error);
    EXPECT_THROW(parse_config_text("key ="), Error);
}

TEST(Config, ErrorsNameLineNumberAndText)
{
    try {
        parse_config_text("a = 1\nb = 2\nbroken line three");
        FAIL() << "malformed line should throw";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 3"), std::string::npos) << what;
        EXPECT_NE(what.find("broken line three"), std::string::npos)
            << what;
    }
    try {
        parse_config_text("a = 1\nkey =   # only a comment");
        FAIL() << "empty value should throw";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
        EXPECT_NE(what.find("key =   # only a comment"),
                  std::string::npos)
            << what;
    }
}

TEST(Config, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/flat_cfg_test.conf";
    {
        std::ofstream out(path);
        out << "name = custom\nsg = 2MiB\n";
    }
    const ConfigMap map = parse_config_file(path);
    EXPECT_EQ(map.at("name"), "custom");
    EXPECT_EQ(map.at("sg"), "2MiB");
    std::remove(path.c_str());
}

TEST(Config, MissingFileThrows)
{
    EXPECT_THROW(parse_config_file("/nonexistent/x.conf"), Error);
}

} // namespace
} // namespace flat

/**
 * @file
 * RunJournal contract: header binding, batched appends, (scope, key)
 * dedup, bit-exact payload round-trips, and the resume semantics —
 * torn FINAL lines are crash artifacts and tolerated, corrupt middle
 * lines and stale headers are rejected.
 */
#include "common/run_journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/status.h"

namespace flat {
namespace {

RunJournalHeader
test_header()
{
    RunJournalHeader header;
    header.mode = "sweep";
    header.space_hash = fnv1a64("test-space");
    header.points = 3;
    return header;
}

std::string
point_payload(std::uint64_t cycles, double energy)
{
    JsonWriter json;
    json.begin_object();
    json.field("cycles", cycles);
    json.field("energy_j", energy);
    json.end_object();
    return json.str();
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

class RunJournalTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "flat_run_journal_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".jsonl";
        std::remove(path_.c_str());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(RunJournalTest, HashIsStableAndSensitive)
{
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
    EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
}

TEST_F(RunJournalTest, AppendedRecordsRoundTripBitExactly)
{
    const double energy = 0.123456789012345678; // needs 17 digits
    {
        auto journal = RunJournal::create(path_, test_header());
        journal->set_flush_every(1);
        journal->append("sweep", "p0", point_payload(1234567890123ull,
                                                     energy));
        journal->append("sweep", "p1", point_payload(7, 0.5));
    }
    auto resumed = RunJournal::open_resume(path_, test_header());
    EXPECT_EQ(resumed->restored(), 2u);
    const JsonValue* p0 = resumed->find("sweep", "p0");
    ASSERT_NE(p0, nullptr);
    EXPECT_EQ(p0->member_u64("cycles"), 1234567890123ull);
    // Bit-exact double round-trip (raw token preserved end to end).
    EXPECT_EQ(p0->member_number("energy_j"), energy);
    EXPECT_EQ(resumed->find("sweep", "missing"), nullptr);
    EXPECT_EQ(resumed->find("other", "p0"), nullptr);
}

TEST_F(RunJournalTest, DuplicateScopeKeyPairsAreDropped)
{
    {
        auto journal = RunJournal::create(path_, test_header());
        journal->set_flush_every(1);
        journal->append("sweep", "p0", point_payload(1, 1.0));
        journal->append("sweep", "p0", point_payload(2, 2.0)); // dropped
    }
    {
        auto resumed = RunJournal::open_resume(path_, test_header());
        EXPECT_EQ(resumed->restored(), 1u);
        EXPECT_EQ(resumed->find("sweep", "p0")->member_u64("cycles"), 1u);
        // Re-appending a restored key is dropped too (the re-run of a
        // restored search must not double-journal).
        resumed->append("sweep", "p0", point_payload(3, 3.0));
        resumed->flush();
    }
    auto again = RunJournal::open_resume(path_, test_header());
    EXPECT_EQ(again->restored(), 1u);
    EXPECT_EQ(again->find("sweep", "p0")->member_u64("cycles"), 1u);
}

TEST_F(RunJournalTest, AppendsAreBatchedUntilFlush)
{
    auto journal = RunJournal::create(path_, test_header());
    journal->set_flush_every(100);
    journal->append("sweep", "p0", point_payload(1, 1.0));
    // Buffered: on disk the file still holds only the header line.
    EXPECT_EQ(read_file(path_).find("\"p0\""), std::string::npos);
    journal->flush();
    EXPECT_NE(read_file(path_).find("\"p0\""), std::string::npos);
}

TEST_F(RunJournalTest, TornFinalLineIsDroppedAndTruncated)
{
    {
        auto journal = RunJournal::create(path_, test_header());
        journal->set_flush_every(1);
        journal->append("sweep", "p0", point_payload(1, 1.0));
        journal->append("sweep", "p1", point_payload(2, 2.0));
    }
    const std::string intact = read_file(path_);
    {
        // Simulate a crash mid-append: a partial record, no newline.
        std::ofstream out(path_, std::ios::app | std::ios::binary);
        out << "{\"scope\":\"sweep\",\"key\":\"p2\",\"data\":{\"cy";
    }
    {
        auto resumed = RunJournal::open_resume(path_, test_header());
        EXPECT_EQ(resumed->restored(), 2u);
        EXPECT_EQ(resumed->find("sweep", "p2"), nullptr);
    }
    // The torn tail was truncated away: the file is intact again.
    EXPECT_EQ(read_file(path_), intact);
}

TEST_F(RunJournalTest, CorruptMiddleLineIsRejected)
{
    {
        auto journal = RunJournal::create(path_, test_header());
        journal->set_flush_every(1);
        journal->append("sweep", "p0", point_payload(1, 1.0));
    }
    std::string text = read_file(path_);
    // Corrupt the middle record but keep a VALID final line: this is
    // data loss, not a crash artifact, and must not be silently healed.
    const std::size_t pos = text.find('\n'); // start of the p0 record
    ASSERT_NE(pos, std::string::npos);
    text[pos + 1] = '#'; // "{"scope":... -> "#"scope":... unparsable
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out << text << "{\"scope\":\"sweep\",\"key\":\"p1\","
            << "\"data\":{\"cycles\":2}}\n";
    }
    EXPECT_THROW(RunJournal::open_resume(path_, test_header()), Error);
}

TEST_F(RunJournalTest, StaleHeaderIsRejected)
{
    { auto journal = RunJournal::create(path_, test_header()); }

    RunJournalHeader other = test_header();
    other.space_hash ^= 1;
    EXPECT_THROW(RunJournal::open_resume(path_, other), Error);

    other = test_header();
    other.mode = "run";
    EXPECT_THROW(RunJournal::open_resume(path_, other), Error);

    other = test_header();
    other.points = 4;
    EXPECT_THROW(RunJournal::open_resume(path_, other), Error);

    EXPECT_NO_THROW(RunJournal::open_resume(path_, test_header()));
}

TEST_F(RunJournalTest, MissingOrHeaderlessFileIsRejected)
{
    EXPECT_THROW(RunJournal::open_resume(path_, test_header()), Error);
    {
        std::ofstream out(path_, std::ios::binary);
        out << "{\"not\":\"a journal\"}\n";
    }
    EXPECT_THROW(RunJournal::open_resume(path_, test_header()), Error);
}

TEST_F(RunJournalTest, CreateTruncatesAnExistingJournal)
{
    {
        auto journal = RunJournal::create(path_, test_header());
        journal->set_flush_every(1);
        journal->append("sweep", "p0", point_payload(1, 1.0));
    }
    { auto journal = RunJournal::create(path_, test_header()); }
    auto resumed = RunJournal::open_resume(path_, test_header());
    EXPECT_EQ(resumed->restored(), 0u);
}

} // namespace
} // namespace flat

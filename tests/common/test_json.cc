#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/status.h"

namespace flat {
namespace {

TEST(Json, FlatObject)
{
    JsonWriter json;
    json.begin_object();
    json.field("name", "flat");
    json.field("util", 0.5);
    json.field("cycles", std::uint64_t{42});
    json.field("ok", true);
    json.end_object();
    EXPECT_EQ(json.str(),
              R"({"name":"flat","util":0.5,"cycles":42,"ok":true})");
}

TEST(Json, NestedStructures)
{
    JsonWriter json;
    json.begin_object();
    json.key("series");
    json.begin_array();
    json.value(1.0);
    json.value(2.0);
    json.begin_object();
    json.field("x", std::uint64_t{3});
    json.end_object();
    json.end_array();
    json.end_object();
    EXPECT_EQ(json.str(), R"({"series":[1,2,{"x":3}]})");
}

TEST(Json, EscapesSpecialCharacters)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteNumbersBecomeNull)
{
    JsonWriter json;
    json.begin_array();
    json.value(std::numeric_limits<double>::infinity());
    json.value(std::nan(""));
    json.end_array();
    EXPECT_EQ(json.str(), "[null,null]");
}

TEST(Json, NullValue)
{
    JsonWriter json;
    json.begin_object();
    json.key("missing");
    json.null_value();
    json.end_object();
    EXPECT_EQ(json.str(), R"({"missing":null})");
}

TEST(Json, IncompleteDocumentThrows)
{
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.str(), Error);
}

TEST(Json, ValueWithoutKeyThrows)
{
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(1.0), Error);
}

TEST(Json, KeyInArrayThrows)
{
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("nope"), Error);
}

TEST(Json, MismatchedCloseThrows)
{
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.end_array(), Error);
}

TEST(Json, RootScalar)
{
    JsonWriter json;
    json.value(3.25);
    EXPECT_EQ(json.str(), "3.25");
}

} // namespace
} // namespace flat

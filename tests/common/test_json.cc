#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/status.h"

namespace flat {
namespace {

TEST(Json, FlatObject)
{
    JsonWriter json;
    json.begin_object();
    json.field("name", "flat");
    json.field("util", 0.5);
    json.field("cycles", std::uint64_t{42});
    json.field("ok", true);
    json.end_object();
    EXPECT_EQ(json.str(),
              R"({"name":"flat","util":0.5,"cycles":42,"ok":true})");
}

TEST(Json, NestedStructures)
{
    JsonWriter json;
    json.begin_object();
    json.key("series");
    json.begin_array();
    json.value(1.0);
    json.value(2.0);
    json.begin_object();
    json.field("x", std::uint64_t{3});
    json.end_object();
    json.end_array();
    json.end_object();
    EXPECT_EQ(json.str(), R"({"series":[1,2,{"x":3}]})");
}

TEST(Json, EscapesSpecialCharacters)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteNumbersBecomeNull)
{
    JsonWriter json;
    json.begin_array();
    json.value(std::numeric_limits<double>::infinity());
    json.value(std::nan(""));
    json.end_array();
    EXPECT_EQ(json.str(), "[null,null]");
}

TEST(Json, NullValue)
{
    JsonWriter json;
    json.begin_object();
    json.key("missing");
    json.null_value();
    json.end_object();
    EXPECT_EQ(json.str(), R"({"missing":null})");
}

TEST(Json, IncompleteDocumentThrows)
{
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.str(), Error);
}

TEST(Json, ValueWithoutKeyThrows)
{
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(1.0), Error);
}

TEST(Json, KeyInArrayThrows)
{
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.key("nope"), Error);
}

TEST(Json, MismatchedCloseThrows)
{
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.end_array(), Error);
}

TEST(Json, RootScalar)
{
    JsonWriter json;
    json.value(3.25);
    EXPECT_EQ(json.str(), "3.25");
}

namespace {

std::string
emit(double value)
{
    JsonWriter json;
    json.value(value);
    return json.str();
}

} // namespace

TEST(Json, DoublesRoundTripBitExactly)
{
    // The emitter must pick the SHORTEST decimal form that strtod maps
    // back to the identical bits — the invariant the golden-trace suite
    // (ctest -L golden) leans on for its zero-tolerance comparison.
    const double values[] = {
        0.1,
        1.0 / 3.0,
        2.0 / 3.0,
        1e-300,
        6.02214076e23,
        9007199254740993.0,          // 2^53 + 1 rounds to 2^53
        123456789.123456789,
        std::nextafter(1.0, 2.0),    // 1 + 2^-52 needs 17 digits
        3270432.3199999998,          // a real trace total_cycles
    };
    for (const double value : values) {
        const std::string token = emit(value);
        EXPECT_EQ(std::strtod(token.c_str(), nullptr), value)
            << "token '" << token << "' does not re-parse to the same "
            << "bits";
    }
}

TEST(Json, DoublesUseShortestForm)
{
    // Values with short exact forms must not be padded to 17 digits.
    EXPECT_EQ(emit(0.1), "0.1");
    EXPECT_EQ(emit(0.5), "0.5");
    EXPECT_EQ(emit(1234.0), "1234");
    EXPECT_EQ(emit(1e100), "1e+100");
    // ...but values that NEED 17 digits get them.
    EXPECT_EQ(emit(std::nextafter(1.0, 2.0)), "1.0000000000000002");
}

} // namespace
} // namespace flat

#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/status.h"

namespace flat {
namespace {

std::string
read_file(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

class CsvTest : public ::testing::Test
{
  protected:
    std::string path_ = ::testing::TempDir() + "/flat_csv_test.csv";

    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows)
{
    {
        CsvWriter csv(path_, {"seq", "util"});
        csv.add_row({"512", "0.97"});
        csv.add_row({"4096", "0.95"});
    }
    EXPECT_EQ(read_file(path_), "seq,util\n512,0.97\n4096,0.95\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters)
{
    {
        CsvWriter csv(path_, {"name", "note"});
        csv.add_row({"a,b", "say \"hi\""});
    }
    EXPECT_EQ(read_file(path_), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, RejectsWrongArity)
{
    CsvWriter csv(path_, {"a", "b"});
    EXPECT_THROW(csv.add_row({"1"}), Error);
}

TEST_F(CsvTest, RejectsEmptyHeader)
{
    EXPECT_THROW(CsvWriter(path_, {}), Error);
}

TEST_F(CsvTest, RejectsUnwritablePath)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), Error);
}

} // namespace
} // namespace flat

#include "common/string_util.h"

#include <gtest/gtest.h>

namespace flat {
namespace {

TEST(StringUtil, Strprintf)
{
    EXPECT_EQ(strprintf("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
    EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(StringUtil, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(StringUtil, Split)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("a,,c", ','),
              (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split("trailing,", ','),
              (std::vector<std::string>{"trailing", ""}));
}

TEST(StringUtil, Trim)
{
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringUtil, ToLower)
{
    EXPECT_EQ(to_lower("FLAT-R64"), "flat-r64");
    EXPECT_EQ(to_lower("already"), "already");
}

TEST(StringUtil, SplitJoinRoundTrip)
{
    const std::string original = "base,base-M,flat-R64";
    EXPECT_EQ(join(split(original, ','), ","), original);
}

} // namespace
} // namespace flat

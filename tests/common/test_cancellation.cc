/**
 * @file
 * CancellationToken contract: first-reason-wins requests, lazy
 * deadlines, parent chaining, poll() unwinding, and the diagnostic
 * classification that maps a cancelled run onto the exit-code contract
 * (deadline -> timeout/3, signal or programmatic -> cancelled/5).
 */
#include "common/cancellation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/diagnostics.h"

namespace flat {
namespace {

TEST(Cancellation, FreshTokenIsNotCancelled)
{
    CancellationToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::kNone);
    EXPECT_NO_THROW(token.poll());
}

TEST(Cancellation, RequestSetsReasonAndFirstReasonWins)
{
    CancellationToken token;
    token.request(CancelReason::kSignal);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::kSignal);
    token.request(CancelReason::kUser); // ignored: already cancelled
    EXPECT_EQ(token.reason(), CancelReason::kSignal);
}

TEST(Cancellation, PollThrowsCancelledErrorCarryingTheReason)
{
    CancellationToken token;
    token.request(CancelReason::kUser);
    try {
        token.poll();
        FAIL() << "poll() must throw once cancelled";
    } catch (const CancelledError& e) {
        EXPECT_EQ(e.reason(), CancelReason::kUser);
    }
}

TEST(Cancellation, ExpiredDeadlineTripsLazilyOnCheck)
{
    CancellationToken token;
    token.set_deadline_ms(0.0);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::kDeadline);
}

TEST(Cancellation, FutureDeadlineDoesNotTrip)
{
    CancellationToken token;
    token.set_deadline_ms(60000.0);
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::kNone);
}

TEST(Cancellation, ParentCancellationPropagatesToChild)
{
    CancellationToken parent;
    CancellationToken child;
    child.set_parent(&parent);
    EXPECT_FALSE(child.cancelled());
    parent.request(CancelReason::kSignal);
    EXPECT_TRUE(child.cancelled());
    EXPECT_EQ(child.reason(), CancelReason::kSignal);
}

TEST(Cancellation, ChildCancellationDoesNotReachTheParent)
{
    CancellationToken parent;
    CancellationToken child;
    child.set_parent(&parent);
    child.request(CancelReason::kDeadline);
    EXPECT_TRUE(child.cancelled());
    EXPECT_FALSE(parent.cancelled());
}

/** request() from many threads: exactly one reason wins, no tearing.
 *  (Run under -DFLAT_SANITIZE=thread to validate the atomics.) */
TEST(Cancellation, ConcurrentRequestsAgreeOnOneReason)
{
    CancellationToken token;
    std::atomic<int> go{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < 8; ++i) {
        threads.emplace_back([&token, &go, i] {
            while (go.load() == 0) {
            }
            token.request(i % 2 == 0 ? CancelReason::kSignal
                                     : CancelReason::kUser);
        });
    }
    go.store(1);
    for (std::thread& t : threads) {
        t.join();
    }
    EXPECT_TRUE(token.cancelled());
    const CancelReason reason = token.reason();
    EXPECT_TRUE(reason == CancelReason::kSignal ||
                reason == CancelReason::kUser);
    EXPECT_EQ(token.reason(), reason); // stable after the race
}

TEST(Cancellation, ReasonNamesAreStable)
{
    EXPECT_STREQ(to_string(CancelReason::kNone), "none");
    EXPECT_STREQ(to_string(CancelReason::kSignal), "signal");
    EXPECT_STREQ(to_string(CancelReason::kDeadline), "deadline");
    EXPECT_STREQ(to_string(CancelReason::kUser), "user");
}

/** The taxonomy bridge: a tripped deadline keeps the established
 *  kTimeout contract (exit 3); signal/user drains are kCancelled
 *  (exit 5). */
TEST(Cancellation, DiagnosticsClassifyCancelledErrorByReason)
{
    const CancelledError deadline(CancelReason::kDeadline, "over budget");
    EXPECT_EQ(diagnostic_from_exception(deadline).kind,
              DiagKind::kTimeout);

    const CancelledError signal(CancelReason::kSignal, "drained");
    const Diagnostic diag = diagnostic_from_exception(signal);
    EXPECT_EQ(diag.kind, DiagKind::kCancelled);
    EXPECT_EQ(exit_code_for(diag.kind), 5);
}

} // namespace
} // namespace flat

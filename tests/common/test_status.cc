#include "common/status.h"

#include <gtest/gtest.h>

namespace flat {
namespace {

TEST(Status, CheckPassesOnTrueCondition)
{
    EXPECT_NO_THROW(FLAT_CHECK(1 + 1 == 2, "arithmetic works"));
}

TEST(Status, CheckThrowsErrorWithDetail)
{
    try {
        FLAT_CHECK(false, "value was " << 42);
        FAIL() << "expected flat::Error";
    } catch (const Error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("value was 42"), std::string::npos) << msg;
        EXPECT_NE(msg.find("check failed"), std::string::npos) << msg;
        EXPECT_NE(msg.find("test_status.cc"), std::string::npos) << msg;
    }
}

TEST(Status, AssertThrowsInternalError)
{
    EXPECT_THROW(FLAT_ASSERT(false, "invariant"), InternalError);
}

TEST(Status, FailAlwaysThrows)
{
    EXPECT_THROW(FLAT_FAIL("nope"), Error);
}

TEST(Status, ErrorIsNotInternalError)
{
    // The two categories must stay distinct so callers can distinguish
    // user errors from library bugs.
    try {
        FLAT_FAIL("user error");
    } catch (const std::exception& e) {
        EXPECT_EQ(dynamic_cast<const InternalError*>(&e), nullptr);
        EXPECT_NE(dynamic_cast<const Error*>(&e), nullptr);
    }
}

TEST(Status, MessageIncludesConditionText)
{
    try {
        FLAT_CHECK(2 < 1, "impossible");
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
    }
}

} // namespace
} // namespace flat

#include "dse/search.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/status.h"
#include "workload/attention.h"
#include "workload/model_config.h"

namespace flat {
namespace {

AttentionDims
dims(std::uint64_t n)
{
    AttentionDims d;
    d.batch = 16;
    d.heads = 8;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = 64;
    return d;
}

TEST(Search, FindsAPoint)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    const AttentionSearchResult res =
        search_attention(edge_accel(), dims(1024), opt);
    EXPECT_TRUE(res.found);
    EXPECT_GT(res.evaluated, 100u);
    EXPECT_GT(res.best.cost.cycles, 0.0);
    EXPECT_GT(res.best.energy_j, 0.0);
}

TEST(Search, FusedOptimumNeverWorseThanBaselineOptimum)
{
    // FLAT's space strictly contains everything the baseline space can
    // express plus fusion; the optimum must dominate (§6.2).
    for (std::uint64_t n : {512u, 4096u, 16384u}) {
        AttentionSearchOptions opt;
        opt.quick = true;
        opt.fused = true;
        const auto flat_res =
            search_attention(edge_accel(), dims(n), opt);
        opt.fused = false;
        const auto base_res =
            search_attention(edge_accel(), dims(n), opt);
        EXPECT_LE(flat_res.best.cost.cycles,
                  base_res.best.cost.cycles * 1.0001)
            << "N=" << n;
    }
}

TEST(Search, FixedCrossRestrictsSpace)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.fixed_cross = CrossLoop{Granularity::kHead, 0};
    const auto res = search_attention(edge_accel(), dims(1024), opt);
    EXPECT_EQ(res.best.dataflow.cross.granularity, Granularity::kHead);
}

TEST(Search, FixedFlagsRestrictSpace)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    FusedStageFlags flags = FusedStageFlags::decode(0);
    opt.fixed_flags = flags;
    const auto res = search_attention(edge_accel(), dims(1024), opt);
    EXPECT_EQ(FusedStageFlags::encode(res.best.dataflow.stage), 0u);
}

TEST(Search, BaselineSpaceExcludesRowGranularity)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.fused = false;
    const auto points =
        explore_attention(edge_accel(), dims(1024), opt);
    ASSERT_FALSE(points.empty());
    for (const DsePoint& p : points) {
        EXPECT_NE(p.dataflow.cross.granularity, Granularity::kRow);
    }
}

TEST(Search, ExploreRespectsMaxPoints)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    const auto points =
        explore_attention(edge_accel(), dims(1024), opt, 10);
    EXPECT_EQ(points.size(), 10u);
}

TEST(Search, EnergyObjectivePicksLowerEnergyPoint)
{
    AttentionSearchOptions runtime_opt;
    runtime_opt.quick = true;
    runtime_opt.objective = Objective::kRuntime;
    AttentionSearchOptions energy_opt = runtime_opt;
    energy_opt.objective = Objective::kEnergy;

    const auto by_runtime =
        search_attention(edge_accel(), dims(4096), runtime_opt);
    const auto by_energy =
        search_attention(edge_accel(), dims(4096), energy_opt);
    EXPECT_LE(by_energy.best.energy_j,
              by_runtime.best.energy_j * 1.0001);
    EXPECT_LE(by_runtime.best.cost.cycles,
              by_energy.best.cost.cycles * 1.0001);
}

TEST(Search, EdpObjectiveBetweenExtremes)
{
    const DsePoint p{FusedDataflow{}, OperatorCost{}, 2.0};
    DsePoint q = p;
    q.cost.cycles = 3.0;
    EXPECT_DOUBLE_EQ(q.objective_value(Objective::kRuntime), 3.0);
    EXPECT_DOUBLE_EQ(q.objective_value(Objective::kEnergy), 2.0);
    EXPECT_DOUBLE_EQ(q.objective_value(Objective::kEdp), 6.0);
}

TEST(OperatorSearch, FindsDataflowForProjection)
{
    const Workload w = make_workload(bert_base(), 64, 512);
    OperatorSearchOptions opt;
    opt.quick = true;
    const OperatorSearchResult res =
        search_operator(edge_accel(), w.ops[0], opt);
    EXPECT_TRUE(res.found);
    EXPECT_GT(res.cost.util(), 0.5);
}

TEST(OperatorSearch, L3ForbiddenMeansNoStaging)
{
    const Workload w = make_workload(bert_base(), 64, 512);
    OperatorSearchOptions opt;
    opt.quick = true;
    opt.allow_l3 = false;
    const OperatorSearchResult res =
        search_operator(edge_accel(), w.ops[0], opt);
    EXPECT_FALSE(res.dataflow.l3.any());
}

TEST(OperatorSearch, AllowingL3NeverHurts)
{
    const Workload w = make_workload(bert_base(), 64, 2048);
    OperatorSearchOptions with;
    with.quick = true;
    OperatorSearchOptions without = with;
    without.allow_l3 = false;
    const auto res_with = search_operator(edge_accel(), w.ops[0], with);
    const auto res_without =
        search_operator(edge_accel(), w.ops[0], without);
    EXPECT_LE(res_with.cost.cycles, res_without.cost.cycles * 1.0001);
}

TEST(Search, UtilMonotoneInBufferSize)
{
    // Property: a larger SG can never make the best fused dataflow
    // slower (the DSE can always ignore the extra capacity).
    const AttentionDims d = dims(8192);
    double prev_cycles = std::numeric_limits<double>::infinity();
    for (std::uint64_t buf = 64 * 1024; buf <= 256ull * 1024 * 1024;
         buf *= 8) {
        AccelConfig accel = edge_accel();
        accel.sg_bytes = buf;
        AttentionSearchOptions opt;
        opt.quick = true;
        const auto res = search_attention(accel, d, opt);
        EXPECT_LE(res.best.cost.cycles, prev_cycles * 1.0001)
            << "buffer " << buf;
        prev_cycles = res.best.cost.cycles;
    }
}

TEST(Search, SerializedBaselineNeverFasterThanOverlapped)
{
    for (std::uint64_t n : {1024u, 16384u}) {
        AttentionSearchOptions opt;
        opt.quick = true;
        opt.fused = false;
        const auto full = search_attention(edge_accel(), dims(n), opt);
        opt.baseline_overlap = BaselineOverlap::kSerialized;
        const auto serial = search_attention(edge_accel(), dims(n), opt);
        EXPECT_GE(serial.best.cost.cycles,
                  full.best.cost.cycles * 0.9999)
            << "N=" << n;
    }
}

TEST(Search, BestPointNeverBeatsIdealCycles)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    const AttentionDims d = dims(4096);
    const auto res = search_attention(edge_accel(), d, opt);
    EXPECT_GE(res.best.cost.cycles,
              attention_ideal_cycles(edge_accel(), d) * 0.9999);
}

TEST(OperatorSearch, RejectsSoftmax)
{
    const Workload w = make_workload(bert_base(), 1, 128);
    EXPECT_THROW(
        search_operator(edge_accel(), w.softmax_op(), {}), Error);
}

} // namespace
} // namespace flat

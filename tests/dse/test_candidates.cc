#include "dse/candidates.h"

#include <gtest/gtest.h>

namespace flat {
namespace {

GemmShape
shape(std::uint64_t m, std::uint64_t k, std::uint64_t n)
{
    GemmShape s;
    s.m = m;
    s.k = k;
    s.n = n;
    return s;
}

TEST(Candidates, TileMenuDeduplicated)
{
    const auto tiles =
        tile_candidates(edge_accel(), shape(32, 32, 32),
                        CandidateOptions{},
                        Stationarity::kOutputStationary);
    // A tiny GEMM clamps every budget to the same tile.
    EXPECT_EQ(tiles.size(), 1u);
}

TEST(Candidates, TileMenuGrowsWithShape)
{
    const auto tiles =
        tile_candidates(edge_accel(), shape(65536, 4096, 65536),
                        CandidateOptions{},
                        Stationarity::kOutputStationary);
    EXPECT_GE(tiles.size(), 2u);
    for (const L2Tile& t : tiles) {
        EXPECT_NO_THROW(t.validate());
    }
}

TEST(Candidates, RowCandidatesClampToSequence)
{
    const auto rows =
        row_tile_candidates(edge_accel(), 48, CandidateOptions{});
    for (std::uint64_t r : rows) {
        EXPECT_LE(r, 48u);
        EXPECT_GT(r, 0u);
    }
}

TEST(Candidates, RowCandidatesDerivedFromArray)
{
    const auto rows =
        row_tile_candidates(edge_accel(), 1 << 20, CandidateOptions{});
    // 16, 32, 64, 128, 256 for a 32-row array.
    EXPECT_EQ(rows.size(), 5u);
    EXPECT_EQ(rows.front(), 16u);
    EXPECT_EQ(rows.back(), 256u);
}

TEST(Candidates, CrossLoopIncludesRowOnlyWhenFused)
{
    const auto fused = cross_loop_candidates(edge_accel(), 4096,
                                             CandidateOptions{}, true);
    const auto baseline = cross_loop_candidates(edge_accel(), 4096,
                                                CandidateOptions{}, false);
    EXPECT_EQ(baseline.size(), 3u);
    EXPECT_GT(fused.size(), baseline.size());
    for (const CrossLoop& c : baseline) {
        EXPECT_NE(c.granularity, Granularity::kRow);
    }
}

TEST(Candidates, StageFlagSweepHas32Combos)
{
    CandidateOptions opt;
    EXPECT_EQ(stage_flag_candidates(opt).size(), 32u);
    opt.sweep_stage_flags = false;
    const auto only = stage_flag_candidates(opt);
    ASSERT_EQ(only.size(), 1u);
    EXPECT_TRUE(only[0].intermediate);
}

TEST(Candidates, ExplicitOverridesRespected)
{
    CandidateOptions opt;
    opt.loop_orders = {LoopOrder::kKNM};
    opt.stationarities = {Stationarity::kWeightStationary};
    opt.row_candidates = {17, 1000000};
    EXPECT_EQ(loop_order_candidates(opt).size(), 1u);
    EXPECT_EQ(stationarity_candidates(opt).size(), 1u);
    const auto rows = row_tile_candidates(edge_accel(), 512, opt);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], 17u);
    EXPECT_EQ(rows[1], 512u); // clamped
}

} // namespace
} // namespace flat

/**
 * @file
 * Checkpoint/resume contract of the slice-journaled attention search:
 * a search restored from its journal returns the bit-identical best
 * point — for any thread count, prune on or off, from a complete OR a
 * partially-written (interrupted) journal — and a journal written for
 * a different search space contributes nothing.
 */
#include "dse/search.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/cancellation.h"
#include "common/run_journal.h"
#include "workload/model_config.h"

namespace flat {
namespace {

AttentionDims
self_attention(std::uint64_t n)
{
    AttentionDims d;
    d.batch = 16;
    d.heads = 8;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = 64;
    return d;
}

RunJournalHeader
test_header()
{
    RunJournalHeader header;
    header.mode = "run";
    header.space_hash = fnv1a64("search-journal-test");
    return header;
}

AttentionSearchResult
run_search(unsigned threads, bool prune, RunJournal* journal = nullptr)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.threads = threads;
    opt.prune = prune;
    opt.journal = journal;
    return search_attention(edge_accel(), self_attention(1024), opt);
}

void
expect_same_best(const AttentionSearchResult& reference,
                 const AttentionSearchResult& candidate,
                 const char* what)
{
    ASSERT_TRUE(candidate.found) << what;
    EXPECT_EQ(candidate.best.dataflow.tag(),
              reference.best.dataflow.tag())
        << what;
    EXPECT_EQ(candidate.best.cost.cycles, reference.best.cost.cycles)
        << what;
    EXPECT_EQ(candidate.best.energy_j, reference.best.energy_j) << what;
}

class SearchJournal : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "flat_search_journal_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".jsonl";
        std::remove(path_.c_str());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(SearchJournal, RestoredSearchMatchesFreshBitForBit)
{
    const AttentionSearchResult fresh = run_search(1, false);
    ASSERT_TRUE(fresh.found);

    std::size_t journaled = 0;
    {
        auto journal = RunJournal::create(path_, test_header());
        expect_same_best(fresh, run_search(1, false, journal.get()),
                         "journaled fresh run");
        journal->flush();
    }
    {
        auto journal = RunJournal::open_resume(path_, test_header());
        journaled = journal->restored();
        EXPECT_GT(journaled, 0u);
        // Every slice restored; the determinism conditions (threads,
        // prune) may differ between the writing and the resuming run.
        for (const unsigned threads : {1u, 8u}) {
            for (const bool prune : {false, true}) {
                expect_same_best(fresh,
                                 run_search(threads, prune,
                                            journal.get()),
                                 "restored run");
            }
        }
        journal->flush();
    }
    // Restored re-runs never double-journal their slices.
    auto journal = RunJournal::open_resume(path_, test_header());
    EXPECT_EQ(journal->restored(), journaled);
}

TEST_F(SearchJournal, PartialJournalResumesToTheSameResult)
{
    const AttentionSearchResult fresh = run_search(1, false);
    {
        auto journal = RunJournal::create(path_, test_header());
        run_search(1, false, journal.get());
        journal->flush();
    }
    // Simulate an interrupted run: keep the header and the first three
    // slice records, drop the rest.
    std::string kept;
    {
        std::ifstream in(path_);
        std::string line;
        for (int i = 0; i < 4 && std::getline(in, line); ++i) {
            kept += line + "\n";
        }
    }
    {
        std::ofstream out(path_, std::ios::trunc);
        out << kept;
    }
    auto journal = RunJournal::open_resume(path_, test_header());
    EXPECT_EQ(journal->restored(), 3u);
    expect_same_best(fresh, run_search(8, true, journal.get()),
                     "partial resume");
    journal->flush();
    // The resumed run journaled the missing slices.
    auto full = RunJournal::open_resume(path_, test_header());
    EXPECT_GT(full->restored(), 3u);
}

TEST_F(SearchJournal, DifferentSearchSpaceIgnoresTheJournal)
{
    {
        auto journal = RunJournal::create(path_, test_header());
        run_search(1, false, journal.get());
        journal->flush();
    }
    auto journal = RunJournal::open_resume(path_, test_header());
    // A different dims/space hashes to a different scope: nothing
    // matches, the search runs fresh and appends its own records.
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.journal = journal.get();
    const AttentionSearchResult other =
        search_attention(edge_accel(), self_attention(2048), opt);
    AttentionSearchOptions plain;
    plain.quick = true;
    const AttentionSearchResult reference =
        search_attention(edge_accel(), self_attention(2048), plain);
    expect_same_best(reference, other, "disjoint space");
    EXPECT_EQ(other.evaluated, reference.evaluated);
}

TEST_F(SearchJournal, FourStyleSpaceResumesToTheSameResult)
{
    // The style axis rides the same slice journal: a search
    // enumerating baseline/flat/pipelined/flash checkpoints its
    // style-prefixed slices and resumes bit-identically — including
    // from a partial journal whose surviving records span styles.
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.styles = {"all"};
    const AttentionSearchResult fresh =
        search_attention(edge_accel(), self_attention(1024), opt);
    ASSERT_TRUE(fresh.found);

    {
        auto journal = RunJournal::create(path_, test_header());
        opt.journal = journal.get();
        expect_same_best(fresh,
                         search_attention(edge_accel(),
                                          self_attention(1024), opt),
                         "journaled four-style run");
        journal->flush();
    }
    // Truncate to an interrupted prefix, then resume with different
    // engine conditions.
    std::string kept;
    {
        std::ifstream in(path_);
        std::string line;
        for (int i = 0; i < 6 && std::getline(in, line); ++i) {
            kept += line + "\n";
        }
    }
    {
        std::ofstream out(path_, std::ios::trunc);
        out << kept;
    }
    auto journal = RunJournal::open_resume(path_, test_header());
    EXPECT_EQ(journal->restored(), 5u);
    opt.journal = journal.get();
    opt.threads = 8;
    opt.prune = true;
    expect_same_best(fresh,
                     search_attention(edge_accel(),
                                      self_attention(1024), opt),
                     "four-style partial resume");
}

TEST_F(SearchJournal, StyleRestrictedJournalIsScopedByStyleSet)
{
    // A journal written for the flat-only space must not leak into the
    // four-style space (its scope hash covers the style list).
    {
        auto journal = RunJournal::create(path_, test_header());
        run_search(1, false, journal.get());
        journal->flush();
    }
    auto journal = RunJournal::open_resume(path_, test_header());
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.styles = {"all"};
    opt.journal = journal.get();
    const AttentionSearchResult resumed =
        search_attention(edge_accel(), self_attention(1024), opt);
    AttentionSearchOptions plain = opt;
    plain.journal = nullptr;
    const AttentionSearchResult reference =
        search_attention(edge_accel(), self_attention(1024), plain);
    expect_same_best(reference, resumed, "style-disjoint space");
    EXPECT_EQ(resumed.evaluated, reference.evaluated);
}

TEST_F(SearchJournal, CancelledSearchThrowsAndFlushesCompletedSlices)
{
    CancellationToken cancel;
    cancel.request(CancelReason::kSignal);
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.cancel = &cancel;
    EXPECT_THROW(
        search_attention(edge_accel(), self_attention(1024), opt),
        CancelledError);
}

} // namespace
} // namespace flat

/**
 * @file
 * Determinism contract of the parallel, pruned DSE engine: for any
 * thread count and with pruning on or off, search_attention must return
 * exactly the same best point (tag, cycles, energy) as the serial
 * unpruned reference, and explore_attention must return the same point
 * sequence. Bit-exact equality is intentional — every point is modeled
 * by exactly one thread with an identical instruction sequence, and the
 * reduction only compares, never accumulates, across threads.
 */
#include "dse/search.h"

#include <gtest/gtest.h>

#include <vector>

#include "workload/model_config.h"

namespace flat {
namespace {

AttentionDims
self_attention(std::uint64_t n)
{
    AttentionDims d;
    d.batch = 16;
    d.heads = 8;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = 64;
    return d;
}

AttentionDims
cross_attention(std::uint64_t q, std::uint64_t kv)
{
    AttentionDims d;
    d.batch = 8;
    d.heads = 12;
    d.q_len = q;
    d.kv_len = kv;
    d.head_dim = 64;
    return d;
}

struct Config {
    const char* name;
    AccelConfig accel;
    AttentionDims dims;
};

std::vector<Config>
configs()
{
    // Two presets x two workloads (plus a baseline-space case below).
    return {
        {"edge/self-1024", edge_accel(), self_attention(1024)},
        {"edge/cross-512x2048", edge_accel(), cross_attention(512, 2048)},
        {"cloud/self-4096", cloud_accel(), self_attention(4096)},
        {"cloud/cross-1024x4096", cloud_accel(),
         cross_attention(1024, 4096)},
    };
}

AttentionSearchResult
run(const Config& cfg, unsigned threads, bool prune,
    Objective objective = Objective::kRuntime, bool fused = true)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.fused = fused;
    opt.objective = objective;
    opt.threads = threads;
    opt.prune = prune;
    return search_attention(cfg.accel, cfg.dims, opt);
}

void
expect_same_best(const AttentionSearchResult& reference,
                 const AttentionSearchResult& candidate,
                 const char* what)
{
    ASSERT_TRUE(candidate.found) << what;
    EXPECT_EQ(candidate.best.dataflow.tag(),
              reference.best.dataflow.tag())
        << what;
    EXPECT_EQ(candidate.best.cost.cycles, reference.best.cost.cycles)
        << what;
    EXPECT_EQ(candidate.best.energy_j, reference.best.energy_j) << what;
    // Pruning may skip points but never lose any: the audit counters
    // must cover the full space.
    EXPECT_EQ(candidate.evaluated + candidate.pruned,
              reference.evaluated + reference.pruned)
        << what;
}

TEST(SearchDeterminism, ParallelAndPrunedMatchSerialUnpruned)
{
    for (const Config& cfg : configs()) {
        SCOPED_TRACE(cfg.name);
        const AttentionSearchResult reference =
            run(cfg, /*threads=*/1, /*prune=*/false);
        ASSERT_TRUE(reference.found);
        EXPECT_EQ(reference.pruned, 0u);

        expect_same_best(reference, run(cfg, 1, true),
                         "serial, pruned");
        expect_same_best(reference, run(cfg, 4, false),
                         "4 threads, unpruned");
        expect_same_best(reference, run(cfg, 4, true),
                         "4 threads, pruned");
        expect_same_best(reference, run(cfg, 7, true),
                         "7 threads, pruned");
    }
}

TEST(SearchDeterminism, HoldsForTheBaselineSpace)
{
    const Config cfg{"edge/self-1024/base", edge_accel(),
                     self_attention(1024)};
    const auto reference = run(cfg, 1, false, Objective::kRuntime,
                               /*fused=*/false);
    expect_same_best(reference,
                     run(cfg, 4, true, Objective::kRuntime, false),
                     "baseline space");
}

TEST(SearchDeterminism, HoldsForEnergyAndEdpObjectives)
{
    const Config cfg{"edge/self-1024", edge_accel(),
                     self_attention(1024)};
    for (Objective objective : {Objective::kEnergy, Objective::kEdp}) {
        SCOPED_TRACE(static_cast<int>(objective));
        const auto reference = run(cfg, 1, false, objective);
        expect_same_best(reference, run(cfg, 4, true, objective),
                         "objective variant");
    }
}

TEST(SearchDeterminism, PruningActuallyFires)
{
    // Sanity that the determinism guarantee is not vacuous: on a
    // non-trivial space the bound must skip a decent share of points.
    const Config cfg{"edge/self-4096", edge_accel(),
                     self_attention(4096)};
    const auto pruned = run(cfg, 1, true);
    EXPECT_GT(pruned.pruned, 0u);
    const auto reference = run(cfg, 1, false);
    EXPECT_EQ(pruned.evaluated + pruned.pruned, reference.evaluated);
    expect_same_best(reference, pruned, "pruned run");
}

TEST(SearchDeterminism, OneThreadMatchesThirtyTwoThreads)
{
    // The oversubscribed extreme: 32 workers on any core count must
    // still reduce to the bit-identical optimum (slice order is fixed,
    // the shared incumbent only tightens pruning).
    for (const Config& cfg : configs()) {
        SCOPED_TRACE(cfg.name);
        const AttentionSearchResult reference = run(cfg, 1, true);
        expect_same_best(reference, run(cfg, 32, true),
                         "32 threads, pruned");
    }
}

TEST(SearchDeterminism, BatchWidthNeverChangesTheResult)
{
    // The batched evaluator buffers lanes per (tiles, flags) block;
    // a smaller width only flushes (and refreshes the pruning
    // incumbent) more often. Any width — including degenerate 1-lane
    // batches and widths that straddle block boundaries — must return
    // the same optimum over the same audited space.
    const Config cfg{"edge/self-1024", edge_accel(),
                     self_attention(1024)};
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.threads = 1;
    opt.batch_width = 0; // auto: one whole block
    const AttentionSearchResult reference =
        search_attention(cfg.accel, cfg.dims, opt);
    ASSERT_TRUE(reference.found);

    for (const std::size_t width : {1ul, 2ul, 3ul, 7ul, 64ul}) {
        for (const bool prune : {false, true}) {
            for (const unsigned threads : {1u, 4u}) {
                SCOPED_TRACE("width=" + std::to_string(width) +
                             " prune=" + std::to_string(prune) +
                             " threads=" + std::to_string(threads));
                opt.batch_width = width;
                opt.prune = prune;
                opt.threads = threads;
                expect_same_best(
                    reference,
                    search_attention(cfg.accel, cfg.dims, opt),
                    "batch width variant");
            }
        }
    }
}

TEST(SearchDeterminism, ExplicitFlatStyleMatchesTheLegacyFusedSpace)
{
    // styles={"flat"} must be the SAME search as the historical
    // fused=true default: same space, same audit counters, same best
    // bit for bit. This is the compatibility contract that keeps the
    // incumbent trajectory unchanged when flash is not requested.
    for (const Config& cfg : configs()) {
        SCOPED_TRACE(cfg.name);
        const AttentionSearchResult legacy = run(cfg, 1, true);
        AttentionSearchOptions opt;
        opt.quick = true;
        opt.threads = 1;
        opt.styles = {"flat"};
        const AttentionSearchResult explicit_style =
            search_attention(cfg.accel, cfg.dims, opt);
        ASSERT_TRUE(explicit_style.found);
        EXPECT_EQ(explicit_style.best.dataflow.tag(),
                  legacy.best.dataflow.tag());
        EXPECT_EQ(explicit_style.best.cost.cycles,
                  legacy.best.cost.cycles);
        EXPECT_EQ(explicit_style.evaluated, legacy.evaluated);
        EXPECT_EQ(explicit_style.pruned, legacy.pruned);
    }
}

TEST(SearchDeterminism, HoldsForTheFourStyleSpace)
{
    // The full style axis (baseline / flat / pipelined / flash) under
    // every engine configuration: thread counts, pruning, and batch
    // widths must all reduce to the serial unpruned optimum bit for
    // bit. This also validates each style's pruning bound empirically:
    // an invalid (too-high) bound would skip the optimum in some
    // pruned run and fail the comparison.
    for (const Config& cfg : configs()) {
        SCOPED_TRACE(cfg.name);
        AttentionSearchOptions opt;
        opt.quick = true;
        opt.styles = {"all"};
        opt.threads = 1;
        opt.prune = false;
        const AttentionSearchResult reference =
            search_attention(cfg.accel, cfg.dims, opt);
        ASSERT_TRUE(reference.found);
        EXPECT_EQ(reference.pruned, 0u);

        for (const unsigned threads : {1u, 8u}) {
            for (const bool prune : {false, true}) {
                for (const std::size_t width : {0ul, 3ul}) {
                    SCOPED_TRACE("threads=" + std::to_string(threads) +
                                 " prune=" + std::to_string(prune) +
                                 " width=" + std::to_string(width));
                    opt.threads = threads;
                    opt.prune = prune;
                    opt.batch_width = width;
                    expect_same_best(
                        reference,
                        search_attention(cfg.accel, cfg.dims, opt),
                        "four-style space variant");
                }
            }
        }
    }
}

TEST(SearchDeterminism, StyleOrderAndDuplicatesDoNotChangeTheResult)
{
    const Config cfg{"edge/self-1024", edge_accel(),
                     self_attention(1024)};
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.threads = 1;
    opt.styles = {"all"};
    const AttentionSearchResult reference =
        search_attention(cfg.accel, cfg.dims, opt);
    ASSERT_TRUE(reference.found);
    // Explicit enumeration in a different order, with duplicates and
    // a redundant trailing "all": the same set of (style, candidate)
    // points is audited and the same optimum wins.
    opt.styles = {"flash", "flat", "flat", "baseline", "pipelined",
                  "all"};
    expect_same_best(reference,
                     search_attention(cfg.accel, cfg.dims, opt),
                     "shuffled style list");
}

TEST(ExploreDeterminism, PointOrderIndependentOfThreads)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.threads = 1;
    const AccelConfig accel = edge_accel();
    const AttentionDims dims = self_attention(1024);
    const auto serial = explore_attention(accel, dims, opt);
    opt.threads = 4;
    const auto parallel = explore_attention(accel, dims, opt);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(parallel[i].dataflow.tag(), serial[i].dataflow.tag())
            << "point " << i;
        ASSERT_EQ(parallel[i].cost.cycles, serial[i].cost.cycles)
            << "point " << i;
    }
}

TEST(ExploreDeterminism, MaxPointsPrefixMatchesFullEnumeration)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    const AccelConfig accel = edge_accel();
    const AttentionDims dims = self_attention(1024);
    opt.threads = 1;
    const auto full = explore_attention(accel, dims, opt);
    for (unsigned threads : {1u, 4u}) {
        opt.threads = threads;
        const auto capped = explore_attention(accel, dims, opt, 25);
        ASSERT_EQ(capped.size(), 25u) << threads << " threads";
        for (std::size_t i = 0; i < capped.size(); ++i) {
            ASSERT_EQ(capped[i].dataflow.tag(), full[i].dataflow.tag())
                << threads << " threads, point " << i;
        }
    }
}

} // namespace
} // namespace flat

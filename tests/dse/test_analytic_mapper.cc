/**
 * @file
 * Contracts of the analytic tile mapper (SearchMode::kAnalytic):
 *
 *  - the closed-form tile seeds satisfy the SL/SG footprint constraint
 *    whenever any tile pair in the menus can (and report honestly when
 *    none does);
 *  - the analytic optimum never beats the exhaustive optimum (it
 *    evaluates a subset of the same space through the same evaluator)
 *    and never undercuts its own slice lower bounds;
 *  - the result is bit-identical across thread counts and pruning
 *    settings, with evaluated + pruned equal to the exhaustive space
 *    size;
 *  - SearchMode::kAnalyticVerified reports exact objective parity
 *    (ratio == 1.0) on every config of the 12-golden catalog.
 *
 * Runs under `ctest -L mapper`.
 */
#include "dse/analytic_mapper.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/goldens.h"
#include "dse/search.h"
#include "dse/search_internal.h"
#include "scaleout/scaleout_model.h"
#include "workload/model_config.h"

namespace flat {
namespace {

AttentionDims
self_attention(std::uint64_t n)
{
    AttentionDims d;
    d.batch = 8;
    d.heads = 8;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = 64;
    return d;
}

AttentionDims
cross_attention(std::uint64_t q, std::uint64_t kv)
{
    AttentionDims d;
    d.batch = 4;
    d.heads = 12;
    d.q_len = q;
    d.kv_len = kv;
    d.head_dim = 64;
    return d;
}

struct Config {
    const char* name;
    AccelConfig accel;
    AttentionDims dims;
};

std::vector<Config>
configs()
{
    return {
        {"edge/self-1024", edge_accel(), self_attention(1024)},
        {"edge/cross-512x2048", edge_accel(),
         cross_attention(512, 2048)},
        {"cloud/self-4096", cloud_accel(), self_attention(4096)},
    };
}

AttentionSearchResult
run(const Config& cfg, SearchMode mode, Objective objective,
    unsigned threads, bool prune, bool quick)
{
    AttentionSearchOptions opt;
    opt.mode = mode;
    opt.objective = objective;
    opt.styles = {"all"};
    opt.quick = quick;
    opt.threads = threads;
    opt.prune = prune;
    return search_attention(cfg.accel, cfg.dims, opt);
}

// ---------------------------------------------------------------------
// Closed-form seed: SL/SG footprint property.
// ---------------------------------------------------------------------

TEST(AnalyticSeeds, SatisfyFootprintConstraintWheneverPossible)
{
    for (const Config& cfg : configs()) {
        SCOPED_TRACE(cfg.name);
        AttentionSearchOptions opt;
        opt.mode = SearchMode::kAnalytic;
        opt.styles = {"all"};
        const std::vector<AnalyticSliceSeed> seeds =
            analytic_tile_seeds(cfg.accel, cfg.dims, opt);
        const detail::SlicedSpace space =
            detail::build_sliced_space(cfg.accel, cfg.dims, opt);
        ASSERT_EQ(seeds.size(), space.slices.size());

        for (std::size_t si = 0; si < seeds.size(); ++si) {
            const AnalyticSliceSeed& seed = seeds[si];
            const detail::SearchSlice& slice = space.slices[si];
            SCOPED_TRACE(seed.slice_key);
            ASSERT_EQ(seed.slice_key,
                      detail::slice_journal_key(slice));

            // The stored footprint is the model's own number for the
            // pick, fully staged.
            FusedDataflow df;
            df.cross = slice.cross;
            df.l2_logit = seed.tiles.logit;
            df.stat_logit = slice.stat_logit;
            df.l2_attend = seed.tiles.attend;
            df.stat_attend = slice.stat_attend;
            EXPECT_EQ(fused_live_footprint(df, cfg.dims,
                                           cfg.accel.bytes_per_element),
                      seed.tiles.staged_footprint_bytes);
            EXPECT_EQ(seed.tiles.fits,
                      seed.tiles.staged_footprint_bytes <=
                          cfg.accel.sg_bytes);

            // When the derivation reports "does not fit", no pair in
            // the menus fits: the footprint is monotone in both tile
            // indices, so the smallest pair is the witness.
            if (!seed.tiles.fits) {
                df.l2_logit = slice.tiles_logit->front();
                df.l2_attend = slice.tiles_attend->front();
                EXPECT_GT(fused_live_footprint(
                              df, cfg.dims,
                              cfg.accel.bytes_per_element),
                          cfg.accel.sg_bytes);
                // ... and the seed flags spill the intermediate
                // instead of pretending it is resident.
                EXPECT_FALSE(seed.stage.intermediate);
            } else {
                EXPECT_TRUE(seed.stage.intermediate);
            }

            // The indices address the slice's menus.
            ASSERT_LT(seed.tiles.logit_index,
                      slice.tiles_logit->size());
            ASSERT_LT(seed.tiles.attend_index,
                      slice.tiles_attend->size());
        }
    }
}

// ---------------------------------------------------------------------
// Subset + bound properties against the exhaustive optimum.
// ---------------------------------------------------------------------

TEST(AnalyticSearch, NeverBeatsExhaustiveAndRespectsBounds)
{
    const Objective objectives[] = {Objective::kRuntime,
                                    Objective::kEnergy, Objective::kEdp};
    for (const Config& cfg : configs()) {
        for (const Objective objective : objectives) {
            SCOPED_TRACE(std::string(cfg.name) + "/obj=" +
                         std::to_string(static_cast<int>(objective)));
            const AttentionSearchResult exh =
                run(cfg, SearchMode::kExhaustive, objective, 0, true,
                    /*quick=*/true);
            const AttentionSearchResult ana =
                run(cfg, SearchMode::kAnalytic, objective, 0, true,
                    /*quick=*/true);
            ASSERT_TRUE(exh.found);
            ASSERT_TRUE(ana.found);

            const double exh_value =
                exh.best.objective_value(objective);
            const double ana_value =
                ana.best.objective_value(objective);
            // The analytic mode evaluates a subset of the same space
            // through the same evaluator: it can tie, never win.
            EXPECT_GE(ana_value, exh_value);

            // Audit identity: both modes account for the same space.
            EXPECT_EQ(ana.evaluated + ana.pruned,
                      exh.evaluated + exh.pruned);

            // The pick never undercuts its own slice lower bounds.
            AttentionSearchOptions opt;
            opt.mode = SearchMode::kAnalytic;
            opt.objective = objective;
            opt.styles = {"all"};
            opt.quick = true;
            const detail::SlicedSpace space =
                detail::build_sliced_space(cfg.accel, cfg.dims, opt);
            const EnergyTable table = EnergyTable::for_accel(cfg.accel);
            double min_lb = std::numeric_limits<double>::infinity();
            for (const detail::SearchSlice& slice : space.slices) {
                const detail::SliceBound bound = detail::make_slice_bound(
                    cfg.accel, cfg.dims, table, slice, space.orders);
                for (std::size_t li = 0;
                     li < bound.logit_costs->size(); ++li) {
                    for (std::size_t ai = 0;
                         ai < bound.attend_costs->size(); ++ai) {
                        min_lb = std::min(
                            min_lb,
                            bound.lower_bound(objective, li, ai));
                    }
                }
            }
            EXPECT_LE(min_lb, ana_value);
        }
    }
}

// ---------------------------------------------------------------------
// Determinism: threads x pruning.
// ---------------------------------------------------------------------

TEST(AnalyticSearch, DeterministicAcrossThreadsAndPruning)
{
    for (const Config& cfg : configs()) {
        SCOPED_TRACE(cfg.name);
        const AttentionSearchResult reference =
            run(cfg, SearchMode::kAnalytic, Objective::kRuntime, 1,
                /*prune=*/false, /*quick=*/true);
        ASSERT_TRUE(reference.found);
        const std::size_t space_points =
            reference.evaluated + reference.pruned;

        const unsigned thread_counts[] = {1, 8};
        const bool prune_settings[] = {false, true};
        for (const unsigned threads : thread_counts) {
            for (const bool prune : prune_settings) {
                SCOPED_TRACE("threads=" + std::to_string(threads) +
                             " prune=" + std::to_string(prune));
                const AttentionSearchResult result =
                    run(cfg, SearchMode::kAnalytic,
                        Objective::kRuntime, threads, prune,
                        /*quick=*/true);
                ASSERT_TRUE(result.found);
                EXPECT_EQ(result.best.dataflow.tag(),
                          reference.best.dataflow.tag());
                EXPECT_EQ(result.best.style, reference.best.style);
                EXPECT_EQ(result.best.cost.cycles,
                          reference.best.cost.cycles);
                EXPECT_EQ(result.best.energy_j,
                          reference.best.energy_j);
                EXPECT_EQ(result.evaluated + result.pruned,
                          space_points);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Golden-catalog parity under kAnalyticVerified.
// ---------------------------------------------------------------------

/** The (accel, dims, options) triple a golden config's quick DSE runs
 *  on — mirrors core/goldens.cc exactly (scale-out searches the
 *  per-device shard). */
struct GoldenSearch {
    AccelConfig accel;
    AttentionDims dims;
    AttentionSearchOptions opt;
};

GoldenSearch
golden_search(const GoldenConfig& config)
{
    GoldenSearch gs;
    if (config.preset == "edge") {
        gs.accel = edge_accel();
    } else if (config.preset == "cloud") {
        gs.accel = cloud_accel();
    } else {
        gs.accel = edge_accel();
        gs.accel.name = "edge-sg2";
        gs.accel.sg2_bytes = 4 * kMiB;
        gs.accel.sg2_bw = 200e9;
    }
    const ModelConfig model = model_by_name(config.model);
    gs.dims.batch = config.batch;
    gs.dims.heads = model.num_heads;
    gs.dims.q_len = config.decode ? 1 : config.seq_len;
    gs.dims.kv_len = config.seq_len;
    gs.dims.head_dim = model.head_dim();
    gs.dims.kv_heads = model.kv_heads();
    gs.dims.decode = config.decode;

    gs.opt.quick = true;
    switch (config.style) {
      case GoldenStyle::kFlat:
        gs.opt.fused = true;
        break;
      case GoldenStyle::kBaselineFull:
        gs.opt.fused = false;
        break;
      case GoldenStyle::kBaselineSerialized:
        gs.opt.fused = false;
        gs.opt.baseline_overlap = BaselineOverlap::kSerialized;
        break;
      case GoldenStyle::kPipelined:
        gs.opt.styles = {"pipelined"};
        break;
      case GoldenStyle::kFlash:
        gs.opt.styles = {"flash"};
        break;
      case GoldenStyle::kScaleOutSequence:
        gs.dims = shard_attention_dims(gs.dims, ShardAxis::kSequence,
                                       config.devices);
        gs.opt.fused = true;
        break;
      case GoldenStyle::kScaleOutHead:
        gs.dims = shard_attention_dims(gs.dims, ShardAxis::kHead,
                                       config.devices);
        gs.opt.fused = true;
        break;
    }
    return gs;
}

TEST(AnalyticVerified, ExactParityOnGoldenCatalog)
{
    const std::vector<GoldenConfig>& catalog = golden_configs();
    ASSERT_EQ(catalog.size(), 12u);
    for (const GoldenConfig& config : catalog) {
        SCOPED_TRACE(config.id);
        GoldenSearch gs = golden_search(config);
        gs.opt.mode = SearchMode::kAnalyticVerified;
        const AttentionSearchResult result =
            search_attention(gs.accel, gs.dims, gs.opt);
        ASSERT_TRUE(result.found);
        ASSERT_TRUE(result.verified);
        EXPECT_EQ(result.best.objective_value(gs.opt.objective),
                  result.verified_exhaustive_value)
            << "analytic pick missed the exhaustive optimum";
        EXPECT_EQ(result.verified_ratio, 1.0);
    }
}

} // namespace
} // namespace flat

/**
 * @file
 * Minimal recursive-descent JSON reader for tests only: flattens a
 * document into an ordered (path -> scalar token) map so golden-trace
 * comparisons can report field-level diffs. The production JsonWriter
 * stays writer-only; this parser lives with the tests on purpose.
 *
 * Paths look like "phases[3].cycles". Scalar tokens keep their exact
 * source spelling ("1.5e+06", "true", "\"flat\"") so comparing tokens
 * is an absolute-zero-tolerance comparison of the emitted bytes.
 */
#ifndef FLAT_TESTS_SUPPORT_MINIJSON_H
#define FLAT_TESTS_SUPPORT_MINIJSON_H

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>

namespace flat::testing {

/** Ordered path -> raw scalar token map of one JSON document. */
using FlatJson = std::map<std::string, std::string>;

namespace detail {

class MiniJsonParser
{
  public:
    explicit MiniJsonParser(const std::string& text) : text_(text) {}

    FlatJson parse()
    {
        FlatJson out;
        skip_ws();
        parse_value("", out);
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters after the document");
        }
        return out;
    }

  private:
    [[noreturn]] void fail(const std::string& what) const
    {
        throw std::runtime_error("minijson: " + what + " at offset " +
                                 std::to_string(pos_));
    }

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek() const
    {
        if (pos_ >= text_.size()) {
            throw std::runtime_error("minijson: unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c) {
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        }
        ++pos_;
    }

    /** Returns the raw token of a quoted string (quotes included). */
    std::string parse_string_token()
    {
        const std::size_t start = pos_;
        expect('"');
        while (peek() != '"') {
            if (peek() == '\\') {
                ++pos_; // skip the escape introducer
            }
            ++pos_;
        }
        ++pos_; // closing quote
        return text_.substr(start, pos_ - start);
    }

    void parse_value(const std::string& path, FlatJson& out)
    {
        skip_ws();
        const char c = peek();
        if (c == '{') {
            parse_object(path, out);
        } else if (c == '[') {
            parse_array(path, out);
        } else if (c == '"') {
            out[path] = parse_string_token();
        } else {
            // number / true / false / null: one bare token.
            const std::size_t start = pos_;
            while (pos_ < text_.size() &&
                   std::string("}],").find(text_[pos_]) ==
                       std::string::npos &&
                   !std::isspace(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
            if (pos_ == start) {
                fail("empty scalar");
            }
            out[path] = text_.substr(start, pos_ - start);
        }
    }

    void parse_object(const std::string& path, FlatJson& out)
    {
        expect('{');
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            out[path.empty() ? "{}" : path] = "{}";
            return;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string_token();
            key = key.substr(1, key.size() - 2); // strip quotes
            skip_ws();
            expect(':');
            parse_value(path.empty() ? key : path + "." + key, out);
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            break;
        }
    }

    void parse_array(const std::string& path, FlatJson& out)
    {
        expect('[');
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            out[path + "[]"] = "[]";
            return;
        }
        std::size_t index = 0;
        while (true) {
            parse_value(path + "[" + std::to_string(index) + "]", out);
            ++index;
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            break;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace detail

/** Parses @p text; throws std::runtime_error on malformed JSON. */
inline FlatJson
parse_flat_json(const std::string& text)
{
    return detail::MiniJsonParser(text).parse();
}

} // namespace flat::testing

#endif // FLAT_TESTS_SUPPORT_MINIJSON_H

#include "analysis/roofline.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/units.h"

namespace flat {
namespace {

TEST(Roofline, BandwidthBoundBelowRidge)
{
    // Edge: 1024 GMAC/s peak, 50 GB/s -> ridge at ~20.5 MACs/byte.
    const RooflinePoint p = roofline_point(edge_accel(), 1.0, false);
    EXPECT_FALSE(p.compute_bound);
    EXPECT_DOUBLE_EQ(p.attainable_macs_s, 50e9);
}

TEST(Roofline, ComputeBoundAboveRidge)
{
    const RooflinePoint p = roofline_point(edge_accel(), 100.0, false);
    EXPECT_TRUE(p.compute_bound);
    EXPECT_DOUBLE_EQ(p.attainable_macs_s,
                     edge_accel().peak_macs_per_sec());
}

TEST(Roofline, OnchipStagingRaisesCeiling)
{
    // Figure 2(c): with the operand staged on-chip the bandwidth roof
    // uses the much higher on-chip bandwidth.
    const double intensity = 5.0;
    const RooflinePoint off = roofline_point(edge_accel(), intensity,
                                             false);
    const RooflinePoint on = roofline_point(edge_accel(), intensity,
                                            true);
    EXPECT_GT(on.attainable_macs_s, off.attainable_macs_s);
}

TEST(Roofline, RejectsNonPositiveIntensity)
{
    EXPECT_THROW(roofline_point(edge_accel(), 0.0, false), Error);
}

TEST(OpIntensity, ConvHighestAndCapsOrdered)
{
    // Figure 2(a): CONV sits highest. The asymptotic caps also order
    // correctly: FC saturates at D/2 MACs/element with batch, while
    // multi-head attention saturates at only D/H.
    const double conv = conv_op_intensity(64, 256, 256, 56 * 56, 3, 2);
    const double fc_cap = fc_op_intensity(1 << 22, 1024, 1024, 2);
    const double la_cap =
        attention_op_intensity(64, 16, 1 << 22, 1024 / 16, 2);
    EXPECT_GT(conv, fc_cap);
    EXPECT_GT(fc_cap, la_cap);
}

TEST(OpIntensity, BatchRaisesFcButNotAttention)
{
    // Figure 2(b)/(d).
    EXPECT_GT(fc_op_intensity(64, 1024, 1024, 2),
              fc_op_intensity(1, 1024, 1024, 2));
    EXPECT_DOUBLE_EQ(attention_op_intensity(64, 16, 4096, 64, 2),
                     attention_op_intensity(1, 16, 4096, 64, 2));
}

TEST(OpIntensity, MoreHeadsLowerIntensity)
{
    // §2.2: multi-head reciprocal is 2/N + H/D — more heads at the same
    // D means a bigger intermediate tensor and lower intensity.
    EXPECT_GT(attention_op_intensity(1, 8, 4096, 128, 2),
              attention_op_intensity(1, 16, 64, 2048 / 16, 2));
    const double h8 = attention_op_intensity(1, 8, 4096, 1024 / 8, 2);
    const double h16 = attention_op_intensity(1, 16, 4096, 1024 / 16, 2);
    EXPECT_GT(h8, h16);
}

TEST(OpIntensity, AttentionIntensitySaturatesInN)
{
    // As N grows, intensity tends to D/H per byte-pair — it stops
    // improving, unlike FC with batch.
    const double n4k = attention_op_intensity(1, 16, 4096, 64, 2);
    const double n64k = attention_op_intensity(1, 16, 65536, 64, 2);
    EXPECT_LT(n64k / n4k, 1.2);
}

TEST(Table1, PaperRowsReproduced)
{
    // Table 1 at D=1024, 16-bit. Paper: K/Q/V/O 4MB/10MB/62MB for
    // N=512/2K/14K; L/A 2.5MB/10MB (H=1/16) at N=512, 16MB/142MB at 2K,
    // 474MB/6.6GB at 14K. Our closed form matches within ~10% (the
    // paper's numbers include small implementation-specific extras).
    const auto mb = [](std::uint64_t bytes) {
        return static_cast<double>(bytes) / (1024.0 * 1024.0);
    };
    const StagingRequirement n512h1 = staging_requirement(512, 1024, 1, 2);
    EXPECT_NEAR(mb(n512h1.qkvo_bytes), 4.0, 0.5);
    EXPECT_NEAR(mb(n512h1.la_bytes), 2.5, 0.3);

    const StagingRequirement n512h16 =
        staging_requirement(512, 1024, 16, 2);
    EXPECT_NEAR(mb(n512h16.la_bytes), 10.0, 1.0);

    const StagingRequirement n2k1 = staging_requirement(2048, 1024, 1, 2);
    EXPECT_NEAR(mb(n2k1.qkvo_bytes), 10.0, 1.0);
    EXPECT_NEAR(mb(n2k1.la_bytes), 16.0, 2.0);

    const StagingRequirement n2k16 =
        staging_requirement(2048, 1024, 16, 2);
    EXPECT_NEAR(mb(n2k16.la_bytes), 142.0, 10.0);

    const StagingRequirement n14k1 =
        staging_requirement(14 * 1024, 1024, 1, 2);
    EXPECT_NEAR(mb(n14k1.qkvo_bytes), 62.0, 6.0);
    EXPECT_NEAR(mb(n14k1.la_bytes), 474.0, 80.0);

    const StagingRequirement n14k16 =
        staging_requirement(14 * 1024, 1024, 16, 2);
    EXPECT_NEAR(mb(n14k16.la_bytes) / 1024.0, 6.6, 0.8); // GB
}

TEST(Table1, QkvoIndependentOfHeads)
{
    const auto h1 = staging_requirement(2048, 1024, 1, 2);
    const auto h16 = staging_requirement(2048, 1024, 16, 2);
    EXPECT_EQ(h1.qkvo_bytes, h16.qkvo_bytes);
    EXPECT_LT(h1.la_bytes, h16.la_bytes);
}

TEST(Table1, LaGrowsQuadratically)
{
    const auto a = staging_requirement(1024, 1024, 16, 2);
    const auto b = staging_requirement(2048, 1024, 16, 2);
    EXPECT_GT(b.la_bytes, 3 * a.la_bytes);
    EXPECT_LT(b.qkvo_bytes, 3 * a.qkvo_bytes);
}

} // namespace
} // namespace flat

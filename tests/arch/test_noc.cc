#include "arch/noc.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace flat {
namespace {

TEST(Noc, SystolicFillIsWavefrontSkew)
{
    const NocModel noc(NocKind::kSystolic, 32, 32);
    EXPECT_EQ(noc.fill_latency(), 64u);
    EXPECT_EQ(noc.drain_latency(), 32u);
}

TEST(Noc, TreeFillIsLogDepth)
{
    const NocModel noc(NocKind::kTree, 32, 32);
    EXPECT_EQ(noc.fill_latency(), 5u + 5u + 1u);
    // 1024 leaves -> depth 10 (+1 pipeline stage).
    EXPECT_EQ(noc.drain_latency(), 11u);
}

TEST(Noc, CrossbarIsConstant)
{
    const NocModel noc(NocKind::kCrossbar, 256, 256);
    EXPECT_EQ(noc.fill_latency(), 2u);
    EXPECT_EQ(noc.drain_latency(), 2u);
}

TEST(Noc, InjectionRateOrdering)
{
    // Multicast-capable NoCs inject at least as fast as systolic edges.
    const NocModel systolic(NocKind::kSystolic, 32, 32);
    const NocModel tree(NocKind::kTree, 32, 32);
    const NocModel xbar(NocKind::kCrossbar, 32, 32);
    EXPECT_LT(systolic.injection_rate(), tree.injection_rate());
    EXPECT_DOUBLE_EQ(tree.injection_rate(), xbar.injection_rate());
}

TEST(Noc, LargerArrayLargerSystolicSkew)
{
    const NocModel small(NocKind::kSystolic, 32, 32);
    const NocModel big(NocKind::kSystolic, 256, 256);
    EXPECT_GT(big.fill_latency(), small.fill_latency());
}

TEST(Noc, RejectsEmptyArray)
{
    EXPECT_THROW(NocModel(NocKind::kSystolic, 0, 32), Error);
    EXPECT_THROW(NocModel(NocKind::kTree, 32, 0), Error);
}

TEST(Noc, ToString)
{
    EXPECT_EQ(to_string(NocKind::kSystolic), "systolic");
    EXPECT_EQ(to_string(NocKind::kTree), "tree");
    EXPECT_EQ(to_string(NocKind::kCrossbar), "crossbar");
}

} // namespace
} // namespace flat

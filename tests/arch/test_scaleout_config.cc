/**
 * @file
 * ScaleOutConfig: parsing, presets, config-file I/O, unit conversion
 * and validation.
 */
#include "arch/scaleout_config.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/units.h"

namespace flat {
namespace {

TEST(ScaleOutConfig, DefaultIsSingleDevice)
{
    const ScaleOutConfig config;
    EXPECT_TRUE(config.single_device());
    EXPECT_NO_THROW(config.validate());
}

TEST(ScaleOutConfig, ShardAxisRoundTrips)
{
    for (const ShardAxis axis :
         {ShardAxis::kBatch, ShardAxis::kHead, ShardAxis::kSequence,
          ShardAxis::kAuto}) {
        EXPECT_EQ(parse_shard_axis(to_string(axis)), axis);
    }
    EXPECT_EQ(parse_shard_axis("sequence"), ShardAxis::kSequence);
    EXPECT_EQ(parse_shard_axis("HEADS"), ShardAxis::kHead);
    EXPECT_THROW(parse_shard_axis("diagonal"), Error);
}

TEST(ScaleOutConfig, TopologyRoundTrips)
{
    EXPECT_EQ(parse_topology("ring"), LinkTopology::kRing);
    EXPECT_EQ(parse_topology("Tree"), LinkTopology::kTree);
    EXPECT_THROW(parse_topology("torus"), Error);
}

TEST(ScaleOutConfig, LinkUnitConversionUsesAccelClock)
{
    ScaleOutConfig config;
    config.devices = 4;
    config.link_bw = 100e9;
    config.link_latency_s = 1e-6;
    AccelConfig accel = edge_accel();
    accel.clock_hz = 1e9;
    EXPECT_DOUBLE_EQ(config.link_bytes_per_cycle(accel), 100.0);
    EXPECT_DOUBLE_EQ(config.link_latency_cycles(accel), 1000.0);
}

TEST(ScaleOutConfig, PresetsAreValid)
{
    for (const std::string& name : scaleout_preset_names()) {
        const ScaleOutConfig preset = scaleout_preset(name);
        EXPECT_NO_THROW(preset.validate()) << name;
    }
    EXPECT_EQ(scaleout_preset("single").devices, 1u);
    EXPECT_EQ(scaleout_preset("pod-ring").devices, 8u);
    EXPECT_EQ(scaleout_preset("pod-ring").topology, LinkTopology::kRing);
    EXPECT_EQ(scaleout_preset("pod-tree").topology, LinkTopology::kTree);
    EXPECT_EQ(scaleout_preset("edge-mesh").devices, 4u);
    EXPECT_THROW(scaleout_preset("hypercube"), Error);
}

TEST(ScaleOutConfig, ConfigMapOverridesBase)
{
    const ConfigMap map = {{"devices", "8"},
                           {"shard_axis", "seq"},
                           {"topology", "tree"},
                           {"link_bw", "300GB/s"},
                           {"link_latency", "700ns"}};
    const ScaleOutConfig config = scaleout_from_config(map);
    EXPECT_EQ(config.devices, 8u);
    EXPECT_EQ(config.axis, ShardAxis::kSequence);
    EXPECT_EQ(config.topology, LinkTopology::kTree);
    EXPECT_DOUBLE_EQ(config.link_bw, 300e9);
    EXPECT_DOUBLE_EQ(config.link_latency_s, 700e-9);
}

TEST(ScaleOutConfig, UnknownKeyRejected)
{
    EXPECT_THROW(scaleout_from_config({{"devcies", "8"}}), Error);
}

TEST(ScaleOutConfig, InvalidFabricRejected)
{
    ConfigMap map = {{"devices", "4"}, {"link_bw", "0"}};
    EXPECT_THROW(scaleout_from_config(map), Error);
    // A single device never needs the fabric, so 0 link BW is fine.
    map["devices"] = "1";
    EXPECT_NO_THROW(scaleout_from_config(map));
}

TEST(ScaleOutConfig, ParseTimeUnits)
{
    EXPECT_DOUBLE_EQ(parse_time("1.5us"), 1.5e-6);
    EXPECT_DOUBLE_EQ(parse_time("250ns"), 250e-9);
    EXPECT_DOUBLE_EQ(parse_time("2ms"), 2e-3);
    EXPECT_DOUBLE_EQ(parse_time("0.25"), 0.25);
    EXPECT_DOUBLE_EQ(parse_time("3s"), 3.0);
    EXPECT_THROW(parse_time("fast"), Error);
    EXPECT_THROW(parse_time("5parsecs"), Error);
    EXPECT_THROW(parse_time("-1us"), Error);
}

} // namespace
} // namespace flat

#include "arch/accel_config.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/units.h"

namespace flat {
namespace {

TEST(AccelConfig, EdgePresetMatchesFigure7a)
{
    const AccelConfig edge = edge_accel();
    EXPECT_EQ(edge.pe_rows, 32u);
    EXPECT_EQ(edge.pe_cols, 32u);
    EXPECT_EQ(edge.sg_bytes, 512 * kKiB);
    EXPECT_DOUBLE_EQ(edge.onchip_bw, 1e12);
    EXPECT_DOUBLE_EQ(edge.offchip_bw, 50e9);
    EXPECT_DOUBLE_EQ(edge.clock_hz, 1e9);
    EXPECT_NO_THROW(edge.validate());
}

TEST(AccelConfig, CloudPresetMatchesFigure7a)
{
    const AccelConfig cloud = cloud_accel();
    EXPECT_EQ(cloud.pe_rows, 256u);
    EXPECT_EQ(cloud.pe_cols, 256u);
    EXPECT_EQ(cloud.sg_bytes, 32 * kMiB);
    EXPECT_DOUBLE_EQ(cloud.onchip_bw, 8e12);
    EXPECT_DOUBLE_EQ(cloud.offchip_bw, 400e9);
    EXPECT_NO_THROW(cloud.validate());
}

TEST(AccelConfig, DerivedQuantities)
{
    const AccelConfig edge = edge_accel();
    EXPECT_EQ(edge.num_pes(), 1024u);
    EXPECT_DOUBLE_EQ(edge.peak_macs_per_sec(), 1024.0 * 1e9);
    EXPECT_DOUBLE_EQ(edge.macs_per_cycle(), 1024.0);
    EXPECT_DOUBLE_EQ(edge.cycle_time(), 1e-9);
    EXPECT_DOUBLE_EQ(edge.offchip_bytes_per_cycle(), 50.0);
    EXPECT_DOUBLE_EQ(edge.onchip_bytes_per_cycle(), 1000.0);
}

TEST(AccelConfig, ValidateRejectsZeroPes)
{
    AccelConfig cfg = edge_accel();
    cfg.pe_rows = 0;
    EXPECT_THROW(cfg.validate(), Error);
}

TEST(AccelConfig, ValidateRejectsOffchipFasterThanOnchip)
{
    AccelConfig cfg = edge_accel();
    cfg.offchip_bw = cfg.onchip_bw * 2;
    EXPECT_THROW(cfg.validate(), Error);
}

TEST(AccelConfig, ValidateRejectsOddElementWidth)
{
    AccelConfig cfg = edge_accel();
    cfg.bytes_per_element = 3;
    EXPECT_THROW(cfg.validate(), Error);
}

TEST(AccelConfig, NocModelsSpanArray)
{
    const AccelConfig cloud = cloud_accel();
    EXPECT_EQ(cloud.distribution_model().fill_latency(), 512u);
    EXPECT_EQ(cloud.reduction_model().drain_latency(), 256u);
}

TEST(AccelConfig, CloudOutscalesEdge)
{
    // Sanity of the two presets relative to each other.
    const AccelConfig edge = edge_accel();
    const AccelConfig cloud = cloud_accel();
    EXPECT_GT(cloud.num_pes(), edge.num_pes());
    EXPECT_GT(cloud.sg_bytes, edge.sg_bytes);
    EXPECT_GT(cloud.offchip_bw, edge.offchip_bw);
}

} // namespace
} // namespace flat

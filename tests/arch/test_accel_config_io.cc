#include "arch/accel_config_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/status.h"
#include "common/units.h"

namespace flat {
namespace {

TEST(AccelConfigIo, OverridesOnTopOfBase)
{
    const AccelConfig accel = accel_from_config(
        parse_config_text("name = npu\npe_rows = 64\npe_cols = 128\n"
                          "sg = 2MiB\noffchip_bw = 100GB/s"),
        edge_accel());
    EXPECT_EQ(accel.name, "npu");
    EXPECT_EQ(accel.pe_rows, 64u);
    EXPECT_EQ(accel.pe_cols, 128u);
    EXPECT_EQ(accel.sg_bytes, 2 * kMiB);
    EXPECT_DOUBLE_EQ(accel.offchip_bw, 100e9);
    // Untouched keys keep the base preset's values.
    EXPECT_DOUBLE_EQ(accel.onchip_bw, edge_accel().onchip_bw);
}

TEST(AccelConfigIo, ParsesSecondLevelBuffer)
{
    const AccelConfig accel = accel_from_config(
        parse_config_text("sg2 = 32MiB\nsg2_bw = 200GB/s"));
    EXPECT_TRUE(accel.has_sg2());
    EXPECT_EQ(accel.sg2_bytes, 32 * kMiB);
    EXPECT_DOUBLE_EQ(accel.sg2_bw, 200e9);
}

TEST(AccelConfigIo, ParsesNocKinds)
{
    const AccelConfig accel = accel_from_config(parse_config_text(
        "distribution_noc = tree\nreduction_noc = crossbar"));
    EXPECT_EQ(accel.distribution_noc, NocKind::kTree);
    EXPECT_EQ(accel.reduction_noc, NocKind::kCrossbar);
    EXPECT_THROW(
        accel_from_config(parse_config_text("distribution_noc = mesh")),
        Error);
}

TEST(AccelConfigIo, RejectsUnknownKeys)
{
    EXPECT_THROW(accel_from_config(parse_config_text("pe_rowz = 64")),
                 Error);
    // The error names the offending key so typos are actionable.
    try {
        accel_from_config(parse_config_text("offchip_bandwidth = 1GB/s"));
        FAIL() << "unknown key should throw";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("offchip_bandwidth"),
                  std::string::npos);
    }
}

TEST(AccelConfigIo, RejectsBadNocKindName)
{
    try {
        accel_from_config(parse_config_text("reduction_noc = torus"));
        FAIL() << "bad NoC kind should throw";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("torus"), std::string::npos) << what;
        EXPECT_NE(what.find("systolic"), std::string::npos) << what;
    }
}

TEST(AccelConfigIo, ValidatesResult)
{
    // SG2 without bandwidth fails validation.
    EXPECT_THROW(accel_from_config(parse_config_text("sg2 = 32MiB")),
                 Error);
}

TEST(AccelConfigIo, RejectsSg2BwOutsideValidityWindow)
{
    const AccelConfig base = edge_accel(); // 1TB/s on-chip, 50GB/s off
    // Below the off-chip bandwidth: SG2 would be slower than DRAM.
    EXPECT_THROW(accel_from_config(parse_config_text(
                     "sg2 = 32MiB\nsg2_bw = 10GB/s"),
                 base),
                 Error);
    // Above the on-chip bandwidth: SG2 would outrun the SG itself.
    EXPECT_THROW(accel_from_config(parse_config_text(
                     "sg2 = 32MiB\nsg2_bw = 2TB/s"),
                 base),
                 Error);
    // Inside the [offchip_bw, onchip_bw] window it is accepted.
    const AccelConfig ok = accel_from_config(
        parse_config_text("sg2 = 32MiB\nsg2_bw = 200GB/s"), base);
    EXPECT_DOUBLE_EQ(ok.sg2_bw, 200e9);
}

TEST(AccelConfigIo, MidParseFailureLeavesNoPartialState)
{
    const std::string path =
        ::testing::TempDir() + "/flat_partial_platform.conf";
    {
        std::ofstream out(path);
        // Valid overrides first, then a key that fails to parse.
        out << "name = poisoned\npe_rows = 64\nsg = 2MiB\n"
            << "offchip_bw = 4MiBx\n";
    }
    AccelConfig base = edge_accel();
    EXPECT_THROW(accel_from_config_file(path, base), Error);
    // The base object the caller holds is untouched: no partially
    // applied overrides escape a failed load.
    EXPECT_EQ(base.name, edge_accel().name);
    EXPECT_EQ(base.pe_rows, edge_accel().pe_rows);
    EXPECT_EQ(base.sg_bytes, edge_accel().sg_bytes);
    EXPECT_DOUBLE_EQ(base.offchip_bw, edge_accel().offchip_bw);
    std::remove(path.c_str());
}

TEST(AccelConfigIo, ClockAndSfu)
{
    const AccelConfig accel = accel_from_config(
        parse_config_text("clock = 1.2e9\nsfu_lanes = 512\n"
                          "bytes_per_element = 1"));
    EXPECT_DOUBLE_EQ(accel.clock_hz, 1.2e9);
    EXPECT_DOUBLE_EQ(accel.sfu_lanes, 512.0);
    EXPECT_EQ(accel.bytes_per_element, 1u);
}

} // namespace
} // namespace flat

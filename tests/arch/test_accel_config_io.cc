#include "arch/accel_config_io.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/units.h"

namespace flat {
namespace {

TEST(AccelConfigIo, OverridesOnTopOfBase)
{
    const AccelConfig accel = accel_from_config(
        parse_config_text("name = npu\npe_rows = 64\npe_cols = 128\n"
                          "sg = 2MiB\noffchip_bw = 100GB/s"),
        edge_accel());
    EXPECT_EQ(accel.name, "npu");
    EXPECT_EQ(accel.pe_rows, 64u);
    EXPECT_EQ(accel.pe_cols, 128u);
    EXPECT_EQ(accel.sg_bytes, 2 * kMiB);
    EXPECT_DOUBLE_EQ(accel.offchip_bw, 100e9);
    // Untouched keys keep the base preset's values.
    EXPECT_DOUBLE_EQ(accel.onchip_bw, edge_accel().onchip_bw);
}

TEST(AccelConfigIo, ParsesSecondLevelBuffer)
{
    const AccelConfig accel = accel_from_config(
        parse_config_text("sg2 = 32MiB\nsg2_bw = 200GB/s"));
    EXPECT_TRUE(accel.has_sg2());
    EXPECT_EQ(accel.sg2_bytes, 32 * kMiB);
    EXPECT_DOUBLE_EQ(accel.sg2_bw, 200e9);
}

TEST(AccelConfigIo, ParsesNocKinds)
{
    const AccelConfig accel = accel_from_config(parse_config_text(
        "distribution_noc = tree\nreduction_noc = crossbar"));
    EXPECT_EQ(accel.distribution_noc, NocKind::kTree);
    EXPECT_EQ(accel.reduction_noc, NocKind::kCrossbar);
    EXPECT_THROW(
        accel_from_config(parse_config_text("distribution_noc = mesh")),
        Error);
}

TEST(AccelConfigIo, RejectsUnknownKeys)
{
    EXPECT_THROW(accel_from_config(parse_config_text("pe_rowz = 64")),
                 Error);
}

TEST(AccelConfigIo, ValidatesResult)
{
    // SG2 without bandwidth fails validation.
    EXPECT_THROW(accel_from_config(parse_config_text("sg2 = 32MiB")),
                 Error);
}

TEST(AccelConfigIo, ClockAndSfu)
{
    const AccelConfig accel = accel_from_config(
        parse_config_text("clock = 1.2e9\nsfu_lanes = 512\n"
                          "bytes_per_element = 1"));
    EXPECT_DOUBLE_EQ(accel.clock_hz, 1.2e9);
    EXPECT_DOUBLE_EQ(accel.sfu_lanes, 512.0);
    EXPECT_EQ(accel.bytes_per_element, 1u);
}

} // namespace
} // namespace flat

/**
 * @file
 * Property tests of the continuous-batching scheduler, driven by a
 * tiny in-test serving loop over seeded arrival traces:
 *  - occupancy: the active set never exceeds the batch cap;
 *  - no starvation: every offered request eventually completes, and
 *    under FIFO admission no request waits more than a bounded number
 *    of steps after its predecessor started;
 *  - token conservation: prefilled tokens == the prompts of admitted
 *    requests, generated tokens == the output budgets of completed
 *    requests, exactly;
 *  - policy contract: prefill-first admits into any free slot,
 *    decode-first never admits while a batch is in flight.
 */
#include "serving/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/status.h"
#include "serving/arrival.h"

namespace flat {
namespace {

std::vector<Request>
trace(std::uint64_t n, std::uint64_t seed)
{
    ArrivalOptions opt;
    opt.kind = ArrivalKind::kBursty; // bursts stress the admission path
    opt.seed = seed;
    opt.rate_rps = 64.0;
    opt.requests = n;
    opt.prompt_tokens = 128;
    opt.output_tokens = 4;
    return generate_arrivals(opt);
}

/** Steps the scheduler to drain; returns per-step occupancy checks and
 *  conservation counters via the out-params. */
struct DrainStats {
    std::uint64_t prefilled_tokens = 0;
    std::uint64_t generated_tokens = 0;
    std::uint64_t steps = 0;
    std::vector<std::uint64_t> completion_order;

    /** steps_seen[id] = loop step at which the request was admitted. */
    std::map<std::uint64_t, std::uint64_t> admitted_at;
};

DrainStats
drain(const std::vector<Request>& requests, SchedPolicy policy,
      std::uint64_t max_batch)
{
    SchedOptions opt;
    opt.policy = policy;
    opt.max_batch = max_batch;
    ContinuousBatchScheduler sched(opt);

    DrainStats stats;
    std::size_t next = 0;
    // Steps are the logical clock here; arrivals trickle in one per
    // idle step so the admission path sees both full and empty queues.
    while (sched.has_work() || next < requests.size()) {
        ++stats.steps;
        FLAT_CHECK(stats.steps < 100000, "scheduler failed to drain");
        const SchedStep step = sched.plan();
        EXPECT_LE(sched.active(), max_batch);
        if (step.kind == SchedStep::Kind::kIdle) {
            FLAT_CHECK(next < requests.size(),
                       "idle scheduler with no pending arrivals");
            sched.enqueue(requests[next]);
            ++next;
            continue;
        }
        if (step.kind == SchedStep::Kind::kPrefill) {
            if (policy == SchedPolicy::kDecodeFirst) {
                // decode-first never admits while a batch is live; a
                // planned prefill implies the batch fully drained.
                EXPECT_EQ(sched.active(), 0u);
            }
            for (const std::uint64_t id : step.ids) {
                stats.prefilled_tokens += requests[id].prompt_tokens;
                stats.admitted_at.emplace(id, stats.steps);
            }
            sched.complete_prefill(step);
            EXPECT_LE(sched.active(), max_batch);
            // Mid-flight arrivals interleave with in-flight decodes.
            if (next < requests.size() && stats.steps % 3 == 0) {
                sched.enqueue(requests[next]);
                ++next;
            }
            continue;
        }
        stats.generated_tokens += step.ids.size();
        for (const std::uint64_t id : sched.complete_decode(step)) {
            stats.completion_order.push_back(id);
        }
        if (next < requests.size() && stats.steps % 2 == 0) {
            sched.enqueue(requests[next]);
            ++next;
        }
    }
    return stats;
}

TEST(Scheduler, EveryRequestCompletesUnderBothPolicies)
{
    const auto requests = trace(96, 3);
    for (const SchedPolicy policy : sched_policies()) {
        const DrainStats stats = drain(requests, policy, 8);
        ASSERT_EQ(stats.completion_order.size(), requests.size())
            << to_string(policy);
        // ... each exactly once (no duplicates, no drops).
        std::vector<std::uint64_t> sorted = stats.completion_order;
        std::sort(sorted.begin(), sorted.end());
        for (std::size_t i = 0; i < sorted.size(); ++i) {
            EXPECT_EQ(sorted[i], i) << to_string(policy);
        }
    }
}

TEST(Scheduler, TokenConservationIsExact)
{
    const auto requests = trace(64, 5);
    std::uint64_t prompts = 0;
    std::uint64_t outputs = 0;
    for (const Request& r : requests) {
        prompts += r.prompt_tokens;
        outputs += r.output_tokens;
    }
    for (const SchedPolicy policy : sched_policies()) {
        const DrainStats stats = drain(requests, policy, 4);
        EXPECT_EQ(stats.prefilled_tokens, prompts) << to_string(policy);
        EXPECT_EQ(stats.generated_tokens, outputs) << to_string(policy);
    }
}

TEST(Scheduler, NoStarvationFifoAdmissionIsOrdered)
{
    // FIFO: requests are admitted in id order, and the wait between
    // consecutive admissions is bounded (nobody is bypassed).
    const auto requests = trace(64, 7);
    for (const SchedPolicy policy : sched_policies()) {
        const DrainStats stats = drain(requests, policy, 4);
        ASSERT_EQ(stats.admitted_at.size(), requests.size());
        std::uint64_t prev_step = 0;
        std::uint64_t prev_id = 0;
        bool first = true;
        for (const auto& [id, step] : stats.admitted_at) {
            if (!first) {
                EXPECT_EQ(id, prev_id + 1);
                EXPECT_GE(step, prev_step); // admission follows id order
                // Bounded wait: one full batch of decodes (output
                // budget x cap) plus the admission step itself.
                EXPECT_LE(step - prev_step, 4u * 4u + 2u)
                    << "request " << id << " starved under "
                    << to_string(policy);
            }
            first = false;
            prev_id = id;
            prev_step = step;
        }
    }
}

TEST(Scheduler, PrefillFirstBackfillsFreeSlotsMidFlight)
{
    // Two requests in the queue, cap 2: admit both, decode once, let
    // one finish (output budget 1 vs 3), and check the policies split:
    // prefill-first refills the free slot immediately, decode-first
    // keeps decoding the survivor.
    const auto make = [](std::uint64_t id, std::uint64_t out_tokens) {
        Request r;
        r.id = id;
        r.arrival_s = 0.0;
        r.prompt_tokens = 64;
        r.output_tokens = out_tokens;
        return r;
    };
    for (const SchedPolicy policy : sched_policies()) {
        SchedOptions opt;
        opt.policy = policy;
        opt.max_batch = 2;
        ContinuousBatchScheduler sched(opt);
        sched.enqueue(make(0, 1));
        sched.enqueue(make(1, 3));

        SchedStep step = sched.plan();
        ASSERT_EQ(step.kind, SchedStep::Kind::kPrefill);
        ASSERT_EQ(step.ids.size(), 2u);
        sched.complete_prefill(step);

        step = sched.plan();
        ASSERT_EQ(step.kind, SchedStep::Kind::kDecode);
        const auto finished = sched.complete_decode(step);
        ASSERT_EQ(finished.size(), 1u);
        EXPECT_EQ(finished[0], 0u);

        sched.enqueue(make(2, 1)); // arrives mid-flight
        step = sched.plan();
        if (policy == SchedPolicy::kPrefillFirst) {
            EXPECT_EQ(step.kind, SchedStep::Kind::kPrefill)
                << "continuous batching must backfill the free slot";
        } else {
            EXPECT_EQ(step.kind, SchedStep::Kind::kDecode)
                << "static batching must drain before admitting";
        }
    }
}

TEST(Scheduler, ContextTokensTrackPromptPlusGenerated)
{
    SchedOptions opt;
    opt.max_batch = 1;
    ContinuousBatchScheduler sched(opt);
    Request r;
    r.id = 0;
    r.prompt_tokens = 100;
    r.output_tokens = 3;
    sched.enqueue(r);
    SchedStep step = sched.plan();
    sched.complete_prefill(step);
    EXPECT_EQ(sched.context_tokens(0), 101u); // producing token 1
    step = sched.plan();
    sched.complete_decode(step);
    EXPECT_EQ(sched.context_tokens(0), 102u); // producing token 2
}

TEST(Scheduler, RejectsMisuse)
{
    SchedOptions zero_cap;
    zero_cap.max_batch = 0;
    EXPECT_THROW(ContinuousBatchScheduler{zero_cap}, Error);

    ContinuousBatchScheduler sched(SchedOptions{});
    SchedStep decode;
    decode.kind = SchedStep::Kind::kDecode;
    EXPECT_THROW(sched.complete_prefill(decode), Error);
    SchedStep prefill;
    prefill.kind = SchedStep::Kind::kPrefill;
    EXPECT_THROW(sched.complete_decode(prefill), Error);
}

} // namespace
} // namespace flat

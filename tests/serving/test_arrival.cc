/**
 * @file
 * Arrival-trace generator contract: seeded runs are bit-identical,
 * different seeds differ, traces are sorted with dense arrival-order
 * ids, the bursty process keeps the offered mean rate, and replay
 * parses (and rejects) trace files the way the CLI documents.
 */
#include "serving/arrival.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/status.h"

namespace flat {
namespace {

ArrivalOptions
base_options(ArrivalKind kind, std::uint64_t seed = 1)
{
    ArrivalOptions opt;
    opt.kind = kind;
    opt.seed = seed;
    opt.rate_rps = 8.0;
    opt.requests = 256;
    opt.prompt_tokens = 512;
    opt.output_tokens = 16;
    return opt;
}

void
expect_identical(const std::vector<Request>& a,
                 const std::vector<Request>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].arrival_s, b[i].arrival_s); // bit-exact
        EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
        EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
    }
}

TEST(Arrival, SeededGenerationIsBitIdentical)
{
    for (const ArrivalKind kind :
         {ArrivalKind::kPoisson, ArrivalKind::kBursty}) {
        expect_identical(generate_arrivals(base_options(kind, 7)),
                         generate_arrivals(base_options(kind, 7)));
    }
}

TEST(Arrival, DifferentSeedsProduceDifferentTraces)
{
    const auto a = generate_arrivals(base_options(ArrivalKind::kPoisson, 1));
    const auto b = generate_arrivals(base_options(ArrivalKind::kPoisson, 2));
    ASSERT_EQ(a.size(), b.size());
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        any_diff = any_diff || a[i].arrival_s != b[i].arrival_s;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Arrival, TracesAreSortedWithDenseIds)
{
    for (const ArrivalKind kind :
         {ArrivalKind::kPoisson, ArrivalKind::kBursty}) {
        const auto trace = generate_arrivals(base_options(kind, 3));
        ASSERT_EQ(trace.size(), 256u);
        for (std::size_t i = 0; i < trace.size(); ++i) {
            EXPECT_EQ(trace[i].id, i);
            if (i > 0) {
                EXPECT_GE(trace[i].arrival_s, trace[i - 1].arrival_s);
            }
            EXPECT_GT(trace[i].prompt_tokens, 0u);
            EXPECT_GT(trace[i].output_tokens, 0u);
        }
    }
}

TEST(Arrival, PromptJitterStaysWithinQuarter)
{
    const auto trace =
        generate_arrivals(base_options(ArrivalKind::kPoisson, 11));
    bool any_jitter = false;
    for (const Request& r : trace) {
        EXPECT_GE(r.prompt_tokens, 512u - 512u / 4);
        EXPECT_LE(r.prompt_tokens, 512u + 512u / 4);
        any_jitter = any_jitter || r.prompt_tokens != 512u;
    }
    EXPECT_TRUE(any_jitter);
}

TEST(Arrival, BurstyKeepsTheOfferedMeanRate)
{
    // Long-run mean of the bursty process ~= rate_rps: the makespan of
    // N requests should be within 40% of N / rate on both processes.
    for (const ArrivalKind kind :
         {ArrivalKind::kPoisson, ArrivalKind::kBursty}) {
        const auto trace = generate_arrivals(base_options(kind, 5));
        const double expected = 256.0 / 8.0;
        const double makespan = trace.back().arrival_s;
        EXPECT_GT(makespan, 0.6 * expected) << to_string(kind);
        EXPECT_LT(makespan, 1.4 * expected) << to_string(kind);
    }
}

TEST(Arrival, BurstyClustersTighterThanPoisson)
{
    // Burstiness signature: the minimum observed inter-arrival gap
    // shrinks versus Poisson at the same mean rate (bursts run at
    // burst_factor x rate).
    const auto gaps = [](const std::vector<Request>& trace) {
        double shortest = 1e300;
        for (std::size_t i = 1; i < trace.size(); ++i) {
            shortest = std::min(
                shortest, trace[i].arrival_s - trace[i - 1].arrival_s);
        }
        return shortest;
    };
    ArrivalOptions bursty = base_options(ArrivalKind::kBursty, 9);
    bursty.burst_factor = 16.0;
    const double bursty_gap = gaps(generate_arrivals(bursty));
    const double poisson_gap =
        gaps(generate_arrivals(base_options(ArrivalKind::kPoisson, 9)));
    EXPECT_LT(bursty_gap, poisson_gap);
}

class ArrivalReplay : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "flat_arrival_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".csv";
        std::remove(path_.c_str());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    void write(const std::string& text)
    {
        std::ofstream out(path_);
        out << text;
    }

    ArrivalOptions replay_options() const
    {
        ArrivalOptions opt;
        opt.kind = ArrivalKind::kReplay;
        opt.replay_file = path_;
        return opt;
    }

    std::string path_;
};

TEST_F(ArrivalReplay, ParsesRowsSkipsCommentsAndSortsByTime)
{
    write("# recorded trace\n"
          "0.5, 128, 8\n"
          "\n"
          "0.25, 256, 4\n"
          "1.0, 64, 2\n");
    const auto trace = generate_arrivals(replay_options());
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0].arrival_s, 0.25);
    EXPECT_EQ(trace[0].prompt_tokens, 256u);
    EXPECT_EQ(trace[0].output_tokens, 4u);
    EXPECT_EQ(trace[1].arrival_s, 0.5);
    EXPECT_EQ(trace[2].arrival_s, 1.0);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].id, i); // dense ids in arrival order
    }
}

TEST_F(ArrivalReplay, RejectsMissingFileAndMalformedRows)
{
    ArrivalOptions missing;
    missing.kind = ArrivalKind::kReplay;
    missing.replay_file = path_ + ".does-not-exist";
    EXPECT_THROW(generate_arrivals(missing), Error);

    write("0.5, banana, 8\n");
    EXPECT_THROW(generate_arrivals(replay_options()), Error);

    write("0.5, 128\n"); // missing the output column
    EXPECT_THROW(generate_arrivals(replay_options()), Error);
}

} // namespace
} // namespace flat

/**
 * @file
 * Determinism contract of the request-level traffic simulator: the
 * serving report — SLO percentiles, tokens/s, and the exact completion
 * order — is bit-identical at any inner-DSE thread count and batch
 * width, and a run resumed from a step-cost journal (even one
 * truncated mid-write) reproduces the uninterrupted report bit for
 * bit. The serving event loop is strictly serial; the only parallelism
 * is inside each step-cost DSE, whose result is thread-invariant.
 */
#include "serving/serving.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/run_journal.h"
#include "common/status.h"
#include "workload/model_config.h"

namespace flat {
namespace {

std::vector<Request>
small_trace()
{
    ArrivalOptions opt;
    opt.kind = ArrivalKind::kPoisson;
    opt.seed = 13;
    opt.rate_rps = 16.0;
    opt.requests = 10;
    opt.prompt_tokens = 256;
    opt.output_tokens = 6;
    return generate_arrivals(opt);
}

ServeOptions
serve_options(unsigned threads, std::size_t batch_width,
              RunJournal* journal = nullptr)
{
    ServeOptions opt;
    opt.sched.max_batch = 4;
    opt.sim.quick = true;
    opt.sim.threads = threads;
    opt.sim.batch_width = batch_width;
    opt.journal = journal;
    return opt;
}

void
expect_identical_reports(const ServeReport& a, const ServeReport& b,
                         const char* what)
{
    EXPECT_EQ(a.completed, b.completed) << what;
    EXPECT_EQ(a.p50_s, b.p50_s) << what; // bit-exact, no tolerance
    EXPECT_EQ(a.p95_s, b.p95_s) << what;
    EXPECT_EQ(a.p99_s, b.p99_s) << what;
    EXPECT_EQ(a.mean_s, b.mean_s) << what;
    EXPECT_EQ(a.makespan_s, b.makespan_s) << what;
    EXPECT_EQ(a.tokens_per_s, b.tokens_per_s) << what;
    EXPECT_EQ(a.prefill_steps, b.prefill_steps) << what;
    EXPECT_EQ(a.decode_steps, b.decode_steps) << what;
    ASSERT_EQ(a.completion_order.size(), b.completion_order.size())
        << what;
    for (std::size_t i = 0; i < a.completion_order.size(); ++i) {
        EXPECT_EQ(a.completion_order[i], b.completion_order[i]) << what;
    }
}

RunJournalHeader
serve_header(const AccelConfig& accel, const ModelConfig& model,
             const std::vector<Request>& requests,
             const ServeOptions& options)
{
    RunJournalHeader header;
    header.mode = "serve";
    header.space_hash = fnv1a64(
        serving_space_canonical(accel, model, requests, options));
    return header;
}

TEST(TrafficDeterminism, ReportIsThreadAndBatchWidthInvariant)
{
    const AccelConfig accel = edge_accel();
    const ModelConfig model = model_by_name("bert");
    const std::vector<Request> requests = small_trace();

    const ServeReport reference =
        run_serving(accel, model, requests, serve_options(1, 1));
    ASSERT_EQ(reference.completed, requests.size());
    ASSERT_GT(reference.tokens_per_s, 0.0);

    for (const unsigned threads : {1u, 8u}) {
        for (const std::size_t width : {std::size_t{1}, std::size_t{0}}) {
            const ServeReport candidate = run_serving(
                accel, model, requests, serve_options(threads, width));
            expect_identical_reports(
                reference, candidate,
                (std::string("threads=") + std::to_string(threads) +
                 " width=" + std::to_string(width))
                    .c_str());
        }
    }
}

TEST(TrafficDeterminism, BothPoliciesDrainDeterministically)
{
    const AccelConfig accel = edge_accel();
    const ModelConfig model = model_by_name("bert");
    const std::vector<Request> requests = small_trace();
    for (const SchedPolicy policy : sched_policies()) {
        ServeOptions a = serve_options(1, 0);
        a.sched.policy = policy;
        ServeOptions b = serve_options(8, 0);
        b.sched.policy = policy;
        expect_identical_reports(run_serving(accel, model, requests, a),
                                 run_serving(accel, model, requests, b),
                                 to_string(policy).c_str());
    }
}

class TrafficJournal : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = ::testing::TempDir() + "flat_traffic_journal_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".jsonl";
        std::remove(path_.c_str());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(TrafficJournal, ResumedRunMatchesUninterruptedBitForBit)
{
    const AccelConfig accel = edge_accel();
    const ModelConfig model = model_by_name("bert");
    const std::vector<Request> requests = small_trace();

    const ServeReport uninterrupted =
        run_serving(accel, model, requests, serve_options(1, 0));

    // Journaled first run, then a resume that replays every step cost.
    {
        ServeOptions opt = serve_options(1, 0);
        auto journal = RunJournal::create(
            path_, serve_header(accel, model, requests, opt));
        opt.journal = journal.get();
        const ServeReport journaled =
            run_serving(accel, model, requests, opt);
        expect_identical_reports(uninterrupted, journaled, "journaled");
        EXPECT_EQ(journaled.cost_journal_hits, 0u);
    }
    {
        ServeOptions opt = serve_options(8, 0);
        auto journal = RunJournal::open_resume(
            path_, serve_header(accel, model, requests, opt));
        EXPECT_GT(journal->restored(), 0u);
        opt.journal = journal.get();
        const ServeReport resumed =
            run_serving(accel, model, requests, opt);
        expect_identical_reports(uninterrupted, resumed, "resumed");
        // Every distinct step cost came from the journal, none from a
        // fresh DSE.
        EXPECT_EQ(resumed.cost_journal_hits,
                  resumed.cost_lookups - resumed.cost_memo_hits);
        EXPECT_GT(resumed.cost_journal_hits, 0u);
    }
}

TEST_F(TrafficJournal, ResumeFromTruncatedJournalMatchesUninterrupted)
{
    const AccelConfig accel = edge_accel();
    const ModelConfig model = model_by_name("bert");
    const std::vector<Request> requests = small_trace();

    const ServeReport uninterrupted =
        run_serving(accel, model, requests, serve_options(1, 0));

    {
        ServeOptions opt = serve_options(1, 0);
        auto journal = RunJournal::create(
            path_, serve_header(accel, model, requests, opt));
        opt.journal = journal.get();
        run_serving(accel, model, requests, opt);
    }

    // Simulate a crash mid-write: drop the tail of the journal,
    // leaving a torn final line behind.
    std::ifstream in(path_);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(text.size(), 0u);
    std::size_t cut = text.size() - text.size() / 3;
    {
        std::ofstream out(path_, std::ios::trunc);
        out << text.substr(0, cut); // mid-record: torn final line
    }

    ServeOptions opt = serve_options(8, 0);
    auto journal = RunJournal::open_resume(
        path_, serve_header(accel, model, requests, opt));
    opt.journal = journal.get();
    const ServeReport resumed = run_serving(accel, model, requests, opt);
    expect_identical_reports(uninterrupted, resumed,
                             "resume from truncated journal");
    // The torn tail re-evaluates; the intact prefix replays.
    EXPECT_GT(resumed.cost_journal_hits, 0u);
}

TEST_F(TrafficJournal, StaleJournalIsRejected)
{
    const AccelConfig accel = edge_accel();
    const ModelConfig model = model_by_name("bert");
    const std::vector<Request> requests = small_trace();
    ServeOptions opt = serve_options(1, 0);
    {
        auto journal = RunJournal::create(
            path_, serve_header(accel, model, requests, opt));
        opt.journal = journal.get();
        run_serving(accel, model, requests, opt);
    }
    // A different trace (one more request) is a different space.
    ArrivalOptions bigger;
    bigger.seed = 13;
    bigger.rate_rps = 16.0;
    bigger.requests = 11;
    bigger.prompt_tokens = 256;
    bigger.output_tokens = 6;
    const std::vector<Request> other = generate_arrivals(bigger);
    EXPECT_THROW(RunJournal::open_resume(
                     path_, serve_header(accel, model, other, opt)),
                 Error);
}

TEST(ServingSearch, AutoPicksTheThroughputWinnerDeterministically)
{
    const AccelConfig accel = edge_accel();
    const ModelConfig model = model_by_name("bert");
    const std::vector<Request> requests = small_trace();

    ServeOptions opt = serve_options(1, 0);
    const ServingSearchResult a =
        search_serving(accel, model, requests, opt);
    ASSERT_TRUE(a.found);
    // style registry x 2 batching policies, all feasible here
    EXPECT_EQ(a.evaluated.size() % 2, 0u);
    EXPECT_GE(a.evaluated.size(), 4u);
    for (const ServeReport& r : a.evaluated) {
        EXPECT_LE(r.tokens_per_s, a.report.tokens_per_s);
    }

    ServeOptions opt8 = serve_options(8, 1);
    const ServingSearchResult b =
        search_serving(accel, model, requests, opt8);
    ASSERT_TRUE(b.found);
    EXPECT_EQ(a.best.style, b.best.style);
    EXPECT_EQ(a.best.sched, b.best.sched);
    expect_identical_reports(a.report, b.report, "serving search");
}

} // namespace
} // namespace flat

/**
 * @file
 * Property tests of the phase-timeline evaluator: the one arbitration
 * engine behind every execution style. The invariants here hold for
 * arbitrary phase lists, not just the ones the attention emitters
 * produce.
 */
#include "costmodel/timeline.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "costmodel/attention_cost.h"

namespace flat {
namespace {

AttentionDims
dims(std::uint64_t n)
{
    AttentionDims d;
    d.batch = 8;
    d.heads = 8;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = 64;
    return d;
}

FusedDataflow
flat_r(std::uint64_t rows)
{
    FusedDataflow df;
    df.cross = {Granularity::kRow, rows};
    df.l2_logit = {128, 64, 128};
    df.l2_attend = {128, 128, 64};
    return df;
}

Phase
make_phase(const char* label, int group, double compute,
           double dram_read, double sg_read, bool pace_only = false)
{
    Phase p;
    p.label = label;
    p.group = group;
    p.compute_cycles = compute;
    p.activity.macs = compute;
    p.activity.traffic.dram_read = dram_read;
    p.activity.traffic.sg_read = sg_read;
    p.pace_only = pace_only;
    return p;
}

/** Synthetic four-phase timeline with mixed compute and traffic. */
std::vector<Phase>
synthetic_phases(int group_a, int group_b)
{
    return {make_phase("load", group_a, 0.0, 3e6, 1e6),
            make_phase("gemm", group_a, 5e5, 0.0, 4e6),
            make_phase("reduce", group_b, 2e5, 0.0, 2e6),
            make_phase("store", group_b, 0.0, 1e6, 1e6)};
}

// -------------------------------------------------------------------
// Property 1: a group can never be faster than its compute occupancy —
// the paced latency is at least the serial compute lower bound, under
// either overlap policy, for synthetic and for real emitted timelines.

TEST(Timeline, GroupLatencyAtLeastComputeLane)
{
    const AccelConfig accel = edge_accel();
    for (const OverlapKind overlap :
         {OverlapKind::kOverlapped, OverlapKind::kSerialTransfers}) {
        const TimelineResult r =
            evaluate_timeline(synthetic_phases(0, 1), accel, overlap);
        ASSERT_EQ(r.groups.size(), 2u);
        double compute_sum = 0.0;
        for (const GroupTiming& g : r.groups) {
            EXPECT_GE(g.latency, g.lanes.compute);
            compute_sum += g.lanes.compute;
        }
        EXPECT_GE(r.cycles, compute_sum);
    }
}

TEST(Timeline, PacedPhaseSumCoversComputeLowerBound)
{
    const AccelConfig accel = edge_accel();
    const AttentionDims d = dims(4096);
    // Head granularity: the one cross-loop every style can execute.
    FusedDataflow df = flat_r(64);
    df.cross = {Granularity::kHead, 0};
    for (const TimelineResult& r :
         {flat_attention_timeline(accel, d, df),
          baseline_attention_timeline(accel, d, df,
                                      BaselineOverlap::kFull),
          baseline_attention_timeline(accel, d, df,
                                      BaselineOverlap::kSerialized),
          pipelined_attention_timeline(accel, d, df)}) {
        double paced_sum = 0.0;
        double occupancy_max = 0.0;
        for (std::size_t i = 0; i < r.phases.size(); ++i) {
            const PhaseTiming& t = r.phase_timings[i];
            // A phase alone is never faster than its own occupancy.
            EXPECT_GE(t.paced_cycles, t.occupancy_cycles);
            if (!r.phases[i].pace_only) {
                paced_sum += t.paced_cycles;
                occupancy_max =
                    std::max(occupancy_max, t.occupancy_cycles);
            }
        }
        // The fully-serialized sum of phases dominates the arbitrated
        // total, which in turn covers the slowest single phase.
        EXPECT_GE(paced_sum + r.cold_start_cycles, r.cycles);
        EXPECT_GE(r.cycles, occupancy_max);
    }
}

// -------------------------------------------------------------------
// Property 2: bound_by attribution responds to the hardware — an
// off-chip-bound timeline flips to compute-bound as DRAM bandwidth
// grows, and cycles shrink monotonically along the way.

TEST(Timeline, BoundByFlipsOffchipToComputeWithBandwidth)
{
    AccelConfig accel = edge_accel();
    const AttentionDims d = dims(32768);
    const FusedDataflow df = flat_r(32);

    const TimelineResult starved = flat_attention_timeline(accel, d, df);
    EXPECT_EQ(starved.bound_by, BoundBy::kOffchip);

    double prev_cycles = starved.cycles;
    bool flipped = false;
    for (const double scale : {4.0, 16.0, 64.0, 256.0}) {
        AccelConfig fat = edge_accel();
        // Off-chip BW may not exceed on-chip BW, so widen both.
        fat.offchip_bw *= scale;
        fat.onchip_bw *= scale;
        const TimelineResult r = flat_attention_timeline(fat, d, df);
        EXPECT_LE(r.cycles, prev_cycles);
        prev_cycles = r.cycles;
        flipped = flipped || r.bound_by == BoundBy::kCompute;
    }
    EXPECT_TRUE(flipped) << "never became compute-bound";

    // Once compute-bound, more bandwidth changes nothing.
    AccelConfig huge = edge_accel();
    huge.offchip_bw *= 1024.0;
    huge.onchip_bw *= 1024.0;
    const TimelineResult capped = flat_attention_timeline(huge, d, df);
    EXPECT_EQ(capped.bound_by, BoundBy::kCompute);
}

// -------------------------------------------------------------------
// Property 3: the activity ledger never double-counts a byte — it is
// invariant to how phases are grouped, and pace-only phases pace the
// clock without adding to the ledger.

TEST(Timeline, LedgerInvariantToGrouping)
{
    const AccelConfig accel = edge_accel();
    const TimelineResult fused =
        evaluate_timeline(synthetic_phases(0, 0), accel);
    const TimelineResult split =
        evaluate_timeline(synthetic_phases(0, 1), accel);

    EXPECT_DOUBLE_EQ(fused.activity.macs, split.activity.macs);
    EXPECT_DOUBLE_EQ(fused.activity.traffic.dram_read,
                     split.activity.traffic.dram_read);
    EXPECT_DOUBLE_EQ(fused.activity.traffic.dram_write,
                     split.activity.traffic.dram_write);
    EXPECT_DOUBLE_EQ(fused.activity.traffic.sg_read,
                     split.activity.traffic.sg_read);
    EXPECT_DOUBLE_EQ(fused.activity.traffic.sg_write,
                     split.activity.traffic.sg_write);

    // Overlapping more can only help latency, never the ledger.
    EXPECT_LE(fused.cycles, split.cycles);
}

TEST(Timeline, PaceOnlyPhasesExcludedFromLedger)
{
    const AccelConfig accel = edge_accel();
    std::vector<Phase> phases = synthetic_phases(1, 2);
    const TimelineResult without =
        evaluate_timeline(phases, accel);

    phases.insert(phases.begin(),
                  make_phase("cold start", 0, 0.0, 5e6, 0.0,
                             /*pace_only=*/true));
    const TimelineResult with_cold =
        evaluate_timeline(phases, accel);

    EXPECT_GT(with_cold.cold_start_cycles, 0.0);
    EXPECT_GT(with_cold.cycles, without.cycles);
    EXPECT_DOUBLE_EQ(with_cold.cycles,
                     without.cycles + with_cold.cold_start_cycles);
    // Same bytes, same MACs: the warm-up window is pacing, not work.
    EXPECT_DOUBLE_EQ(with_cold.activity.traffic.dram_read,
                     without.activity.traffic.dram_read);
    EXPECT_DOUBLE_EQ(with_cold.activity.macs, without.activity.macs);
}

TEST(Timeline, EmittedLedgersMatchModelActivity)
{
    const AccelConfig accel = edge_accel();
    const AttentionDims d = dims(2048);
    const FusedDataflow df = flat_r(64);

    const TimelineResult tl = flat_attention_timeline(accel, d, df);
    const OperatorCost cost = model_flat_attention(accel, d, df);
    EXPECT_DOUBLE_EQ(tl.cycles, cost.cycles);
    EXPECT_DOUBLE_EQ(tl.activity.macs, cost.activity.macs);
    EXPECT_DOUBLE_EQ(tl.activity.sfu_elems, cost.activity.sfu_elems);
    EXPECT_DOUBLE_EQ(tl.activity.traffic.total_dram(),
                     cost.activity.traffic.total_dram());
    EXPECT_DOUBLE_EQ(tl.activity.traffic.total_sg(),
                     cost.activity.traffic.total_sg());
}

// -------------------------------------------------------------------
// Arbitration-policy ordering and attribution details.

TEST(Timeline, SerializedTransfersNeverFasterThanOverlapped)
{
    const AccelConfig accel = edge_accel();
    const std::vector<Phase> phases = synthetic_phases(0, 1);
    const TimelineResult overlapped = evaluate_timeline(
        phases, accel, OverlapKind::kOverlapped);
    const TimelineResult serialized = evaluate_timeline(
        phases, accel, OverlapKind::kSerialTransfers);
    EXPECT_GE(serialized.cycles, overlapped.cycles);
}

TEST(Timeline, ConcurrentTracksTakeTheSlowerTrack)
{
    const AccelConfig accel = edge_accel();
    Phase left = make_phase("L half", 0, 4e5, 0.0, 0.0);
    left.track = 0;
    Phase right = make_phase("A half", 0, 3e5, 0.0, 0.0);
    right.track = 1;
    Phase serial = make_phase("softmax", 0, 1e5, 0.0, 0.0);

    const TimelineResult r =
        evaluate_timeline({left, right, serial}, accel);
    ASSERT_EQ(r.groups.size(), 1u);
    // serial + max(track0, track1), not the sum of all three.
    EXPECT_DOUBLE_EQ(r.groups[0].lanes.compute, 1e5 + 4e5);
    EXPECT_EQ(r.bound_by, BoundBy::kCompute);
}

TEST(Timeline, TieBreaksTowardCompute)
{
    AccelConfig accel = edge_accel();
    Phase p = make_phase("tied", 0, 1000.0, 0.0, 0.0);
    // Make the off-chip lane exactly equal to the compute lane.
    p.activity.traffic.dram_read =
        1000.0 * accel.offchip_bytes_per_cycle();
    const TimelineResult r = evaluate_timeline({p}, accel);
    EXPECT_DOUBLE_EQ(r.groups[0].lanes.compute, r.groups[0].lanes.offchip);
    EXPECT_EQ(r.bound_by, BoundBy::kCompute);
}

} // namespace
} // namespace flat

/**
 * @file
 * Tests of the optional second-level on-chip buffer (SG2): the paper's
 * §3.1 note that the ideas extend to multi-level hierarchies.
 */
#include <gtest/gtest.h>

#include "common/status.h"
#include "common/units.h"
#include "costmodel/attention_cost.h"
#include "energy/energy_model.h"

namespace flat {
namespace {

AttentionDims
dims(std::uint64_t n)
{
    AttentionDims d;
    d.batch = 64;
    d.heads = 12;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = 64;
    return d;
}

FusedDataflow
flat_r(std::uint64_t rows)
{
    FusedDataflow df;
    df.cross = {Granularity::kRow, rows};
    df.l2_logit = {128, 128, 128};
    df.l2_attend = {128, 128, 128};
    return df;
}

AccelConfig
edge_with_edram(std::uint64_t sg2_bytes)
{
    AccelConfig accel = edge_accel();
    accel.sg2_bytes = sg2_bytes;
    accel.sg2_bw = 200e9; // eDRAM-class: 4x DRAM, 1/5 of SG BW
    return accel;
}

TEST(Hierarchy, ValidateRequiresBandwidthWithCapacity)
{
    AccelConfig accel = edge_accel();
    accel.sg2_bytes = 16 * kMiB;
    EXPECT_THROW(accel.validate(), Error); // no BW set
    accel.sg2_bw = 200e9;
    EXPECT_NO_THROW(accel.validate());
    accel.sg2_bw = 10e9; // below off-chip: nonsensical
    EXPECT_THROW(accel.validate(), Error);
}

TEST(Hierarchy, AbsentSg2ProducesNoSg2Traffic)
{
    const OperatorCost cost =
        model_flat_attention(edge_accel(), dims(65536), flat_r(64));
    EXPECT_DOUBLE_EQ(cost.activity.traffic.total_sg2(), 0.0);
}

TEST(Hierarchy, OverflowRecoversUtilizationAtLongSequence)
{
    // At N=64K the R-Gran footprint (~42MB) dwarfs the 512KB SG; an
    // eDRAM level large enough to absorb it restores near-cap Util.
    const AttentionDims d = dims(65536);
    const FusedDataflow df = flat_r(64);
    const double without =
        model_flat_attention(edge_accel(), d, df).util();
    const double with_edram =
        model_flat_attention(edge_with_edram(64 * kMiB), d, df).util();
    EXPECT_GT(with_edram, without + 0.15);
    EXPECT_GT(with_edram, 0.8);
}

TEST(Hierarchy, Sg2TrafficAppearsWhenOverflowing)
{
    const OperatorCost cost = model_flat_attention(
        edge_with_edram(64 * kMiB), dims(65536), flat_r(64));
    EXPECT_GT(cost.activity.traffic.total_sg2(), 0.0);
    // And the DRAM traffic drops to roughly the compulsory I/O.
    const double io =
        4.0 * 64 * 12 * 65536.0 * 64 * 2.0; // Q+K+V+out bytes
    EXPECT_LT(cost.activity.traffic.total_dram(), 3.0 * io);
}

TEST(Hierarchy, ResidentFractionCountsBothLevels)
{
    const OperatorCost without =
        model_flat_attention(edge_accel(), dims(65536), flat_r(64));
    const OperatorCost with_edram = model_flat_attention(
        edge_with_edram(64 * kMiB), dims(65536), flat_r(64));
    EXPECT_GT(with_edram.resident_fraction,
              without.resident_fraction + 0.5);
}

TEST(Hierarchy, MoreSg2NeverSlower)
{
    const AttentionDims d = dims(16384);
    const FusedDataflow df = flat_r(64);
    double prev = model_flat_attention(edge_accel(), d, df).cycles;
    for (std::uint64_t sg2 : {4 * kMiB, 16 * kMiB, 64 * kMiB}) {
        const double cycles =
            model_flat_attention(edge_with_edram(sg2), d, df).cycles;
        EXPECT_LE(cycles, prev * 1.0001) << format_bytes(sg2);
        prev = cycles;
    }
}

TEST(Hierarchy, BaselineBenefitsLessThanFlat)
{
    // The baseline's O(N^2) intermediate outgrows even a 64MB eDRAM at
    // 64K, while FLAT's O(N) footprint fits — the hierarchy widens the
    // FLAT advantage instead of erasing it.
    const AttentionDims d = dims(65536);
    const AccelConfig accel = edge_with_edram(64 * kMiB);
    FusedDataflow base_df = flat_r(64);
    base_df.cross = {Granularity::kMulti, 0};
    base_df.stage = FusedStageFlags::decode(0);
    const double base_util =
        model_baseline_attention(accel, d, base_df).util();
    const double flat_util =
        model_flat_attention(accel, d, flat_r(64)).util();
    EXPECT_GT(flat_util, base_util + 0.2);
}

TEST(Hierarchy, Sg2EnergyBetweenSgAndDram)
{
    const OperatorCost cost = model_flat_attention(
        edge_with_edram(64 * kMiB), dims(65536), flat_r(64));
    const EnergyBreakdown e =
        estimate_energy(EnergyTable{}, cost.activity);
    EXPECT_GT(e.sg2_j, 0.0);
    // Per byte, SG2 sits between SG and DRAM.
    EnergyTable t;
    EXPECT_GT(t.sg2_pj_per_byte, t.sg_pj_per_byte);
    EXPECT_LT(t.sg2_pj_per_byte, t.dram_pj_per_byte);
}

} // namespace
} // namespace flat

#include "costmodel/gemm_engine.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace flat {
namespace {

GemmShape
shape(std::uint64_t m, std::uint64_t k, std::uint64_t n)
{
    GemmShape s;
    s.m = m;
    s.k = k;
    s.n = n;
    return s;
}

TEST(GemmEngine, IdealCycles)
{
    const AccelConfig edge = edge_accel();
    EXPECT_DOUBLE_EQ(ideal_gemm_cycles(edge, 1024 * 1000), 1000.0);
}

TEST(GemmEngine, PerfectlyMappedGemmReachesIdeal)
{
    // Dims are multiples of the array: compute cycles == ideal.
    const AccelConfig edge = edge_accel();
    const GemmShape s = shape(512, 256, 512);
    const L2Tile tile{128, 256, 128};
    const GemmComputeCost cost =
        model_gemm_compute(edge, s, tile, LoopOrder::kMNK,
                           Stationarity::kOutputStationary);
    EXPECT_DOUBLE_EQ(cost.compute_cycles,
                     ideal_gemm_cycles(edge, s.macs()));
}

TEST(GemmEngine, EdgeTilesLoseUtilization)
{
    // m = 40 on a 32-row array wastes 24 rows in the second fold.
    const AccelConfig edge = edge_accel();
    const GemmShape s = shape(40, 256, 512);
    const L2Tile tile{40, 256, 128};
    const GemmComputeCost cost =
        model_gemm_compute(edge, s, tile, LoopOrder::kMNK,
                           Stationarity::kOutputStationary);
    EXPECT_GT(cost.compute_cycles, ideal_gemm_cycles(edge, s.macs()));
}

TEST(GemmEngine, NarrowGemmWastesArrayColumnsUnderOS)
{
    // n = 64 < 256 columns: OS cannot fill the cloud array, IS can.
    const AccelConfig cloud = cloud_accel();
    const GemmShape s = shape(4096, 4096, 64);
    const L2Tile tile{1024, 1024, 64};
    const GemmComputeCost os =
        model_gemm_compute(cloud, s, tile, LoopOrder::kMNK,
                           Stationarity::kOutputStationary);
    const GemmComputeCost is =
        model_gemm_compute(cloud, s, tile, LoopOrder::kMNK,
                           Stationarity::kInputStationary);
    EXPECT_GT(os.compute_cycles, 1.9 * is.compute_cycles);
}

TEST(GemmEngine, FillDrainSmallForDeepRuns)
{
    // Long accumulation runs hide the systolic skew almost entirely.
    const AccelConfig edge = edge_accel();
    const GemmShape s = shape(512, 4096, 512);
    const L2Tile tile{128, 4096, 128};
    const GemmComputeCost cost =
        model_gemm_compute(edge, s, tile, LoopOrder::kMNK,
                           Stationarity::kOutputStationary);
    EXPECT_LT(cost.fill_drain_cycles, 0.01 * cost.compute_cycles);
}

TEST(GemmEngine, StreamedOperandVolumeScalesWithReuseLoops)
{
    const AccelConfig edge = edge_accel();
    const GemmShape s = shape(512, 64, 512);
    const L2Tile tile{128, 64, 128};
    const GemmComputeCost cost =
        model_gemm_compute(edge, s, tile, LoopOrder::kMNK,
                           Stationarity::kOutputStationary);
    // A streams once per n tile (4 trips), B once per m tile (4 trips).
    const double a_bytes = 512.0 * 64 * 2;
    const double b_bytes = 64.0 * 512 * 2;
    EXPECT_DOUBLE_EQ(cost.sg_read_bytes, 4 * a_bytes + 4 * b_bytes);
    // Output-stationary with k innermost: one write per C tile, no
    // partial-sum re-reads.
    EXPECT_DOUBLE_EQ(cost.sg_write_bytes, 512.0 * 512 * 2);
    EXPECT_DOUBLE_EQ(cost.sg_psum_read_bytes, 0.0);
}

TEST(GemmEngine, WeightStationarySpillsPartialSums)
{
    const AccelConfig edge = edge_accel();
    const GemmShape s = shape(512, 256, 512);
    const L2Tile tile{128, 64, 128}; // trips_k = 4
    const GemmComputeCost cost =
        model_gemm_compute(edge, s, tile, LoopOrder::kMNK,
                           Stationarity::kWeightStationary);
    EXPECT_DOUBLE_EQ(cost.sg_write_bytes, 4 * 512.0 * 512 * 2);
    EXPECT_DOUBLE_EQ(cost.sg_psum_read_bytes, 3 * 512.0 * 512 * 2);
}

TEST(GemmEngine, DefaultTileFitsBudget)
{
    const AccelConfig edge = edge_accel();
    const GemmShape s = shape(65536, 2048, 2048);
    for (std::uint64_t budget :
         {std::uint64_t{16} * 1024, std::uint64_t{256} * 1024,
          std::uint64_t{4} * 1024 * 1024}) {
        const L2Tile tile = default_l2_tile(
            edge, s, budget, Stationarity::kOutputStationary);
        const std::uint64_t bytes =
            2 * (tile.a_bytes(2) + tile.b_bytes(2) + tile.c_bytes(2));
        EXPECT_LE(bytes, budget) << "budget " << budget;
        EXPECT_GE(tile.m, 1u);
        EXPECT_GE(tile.k, 1u);
        EXPECT_GE(tile.n, 1u);
    }
}

TEST(GemmEngine, DefaultTileClampsToShape)
{
    const AccelConfig edge = edge_accel();
    const GemmShape s = shape(8, 8, 8);
    const L2Tile tile = default_l2_tile(edge, s, 1 << 20,
                                        Stationarity::kOutputStationary);
    EXPECT_LE(tile.m, 8u);
    EXPECT_LE(tile.k, 8u);
    EXPECT_LE(tile.n, 8u);
}

/** Property: compute cycles never undercut the ideal. */
class ComputeLowerBound : public ::testing::TestWithParam<Stationarity>
{
};

TEST_P(ComputeLowerBound, NeverFasterThanIdeal)
{
    const AccelConfig edge = edge_accel();
    for (const GemmShape& s :
         {shape(100, 64, 300), shape(512, 512, 512), shape(33, 7, 1000),
          shape(1, 1, 1)}) {
        const L2Tile tile = default_l2_tile(edge, s, 128 * 1024,
                                            GetParam());
        const GemmComputeCost cost = model_gemm_compute(
            edge, s, tile, LoopOrder::kMNK, GetParam());
        EXPECT_GE(cost.compute_cycles,
                  ideal_gemm_cycles(edge, s.macs()) - 1e-9)
            << s.m << "x" << s.k << "x" << s.n;
    }
}

INSTANTIATE_TEST_SUITE_P(AllStationarities, ComputeLowerBound,
                         ::testing::Values(
                             Stationarity::kOutputStationary,
                             Stationarity::kWeightStationary,
                             Stationarity::kInputStationary),
                         [](const auto& info) {
                             return to_string(info.param);
                         });

} // namespace
} // namespace flat

#include "costmodel/trace.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "costmodel/attention_cost.h"

namespace flat {
namespace {

AttentionDims
dims(std::uint64_t n)
{
    AttentionDims d;
    d.batch = 8;
    d.heads = 8;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = 64;
    return d;
}

FusedDataflow
flat_r(std::uint64_t rows)
{
    FusedDataflow df;
    df.cross = {Granularity::kRow, rows};
    df.l2_logit = {128, 64, 128};
    df.l2_attend = {128, 128, 64};
    return df;
}

TEST(Trace, PhasesInExecutionOrder)
{
    const ExecutionTrace t =
        trace_flat_attention(edge_accel(), dims(1024), flat_r(64));
    ASSERT_EQ(t.phases.size(), 5u);
    EXPECT_NE(t.phases[0].label.find("prefetch"), std::string::npos);
    EXPECT_NE(t.phases[1].label.find("L:"), std::string::npos);
    EXPECT_NE(t.phases[2].label.find("softmax"), std::string::npos);
    EXPECT_NE(t.phases[3].label.find("A:"), std::string::npos);
    EXPECT_NE(t.phases[4].label.find("writeback"), std::string::npos);
}

TEST(Trace, TransfersMarkedOverlapped)
{
    const ExecutionTrace t =
        trace_flat_attention(edge_accel(), dims(1024), flat_r(64));
    EXPECT_FALSE(t.phases[0].on_critical_path);
    EXPECT_TRUE(t.phases[1].on_critical_path);
    EXPECT_TRUE(t.phases[2].on_critical_path);
    EXPECT_TRUE(t.phases[3].on_critical_path);
    EXPECT_FALSE(t.phases[4].on_critical_path);
}

TEST(Trace, TotalsMatchCostModel)
{
    const AttentionDims d = dims(2048);
    const FusedDataflow df = flat_r(64);
    const ExecutionTrace t =
        trace_flat_attention(edge_accel(), d, df);
    const OperatorCost cost =
        model_flat_attention(edge_accel(), d, df);
    EXPECT_DOUBLE_EQ(t.total_cycles, cost.cycles);
    EXPECT_NEAR(t.pass_cycles * t.passes, cost.cycles,
                1e-6 * cost.cycles);
}

TEST(Trace, PassCountMatchesCrossLoop)
{
    const ExecutionTrace t =
        trace_flat_attention(edge_accel(), dims(1024), flat_r(64));
    // 8 batch x 8 heads x (1024/64) chunks.
    EXPECT_DOUBLE_EQ(t.passes, 8.0 * 8.0 * 16.0);
}

TEST(Trace, BoundByIdentifiesBottleneck)
{
    // Roomy buffer + fat pipe: compute bound.
    AccelConfig roomy = edge_accel();
    roomy.sg_bytes = 64 * kMiB;
    roomy.offchip_bw = 400e9;
    const ExecutionTrace fast =
        trace_flat_attention(roomy, dims(4096), flat_r(64));
    EXPECT_EQ(fast.bound_by, "compute");

    // Tiny buffer at long N: off-chip bound.
    const ExecutionTrace slow =
        trace_flat_attention(edge_accel(), dims(32768), flat_r(32));
    EXPECT_EQ(slow.bound_by, "off-chip BW");
}

TEST(Trace, RenderContainsBarsAndLabels)
{
    const ExecutionTrace t =
        trace_flat_attention(edge_accel(), dims(1024), flat_r(64));
    const std::string text = t.render(40);
    EXPECT_NE(text.find("L: logits slice GEMM"), std::string::npos);
    EXPECT_NE(text.find('#'), std::string::npos);
    EXPECT_NE(text.find("passes"), std::string::npos);
}

} // namespace
} // namespace flat

#include "costmodel/trace.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/units.h"
#include "costmodel/attention_cost.h"
#include "dse/search.h"

namespace flat {
namespace {

AttentionDims
dims(std::uint64_t n)
{
    AttentionDims d;
    d.batch = 8;
    d.heads = 8;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = 64;
    return d;
}

FusedDataflow
flat_r(std::uint64_t rows)
{
    FusedDataflow df;
    df.cross = {Granularity::kRow, rows};
    df.l2_logit = {128, 64, 128};
    df.l2_attend = {128, 128, 64};
    return df;
}

TEST(Trace, PhasesInExecutionOrder)
{
    const ExecutionTrace t =
        trace_flat_attention(edge_accel(), dims(1024), flat_r(64));
    ASSERT_EQ(t.phases.size(), 5u);
    EXPECT_NE(t.phases[0].label.find("prefetch"), std::string::npos);
    EXPECT_NE(t.phases[1].label.find("L:"), std::string::npos);
    EXPECT_NE(t.phases[2].label.find("softmax"), std::string::npos);
    EXPECT_NE(t.phases[3].label.find("A:"), std::string::npos);
    EXPECT_NE(t.phases[4].label.find("writeback"), std::string::npos);
}

TEST(Trace, TransfersMarkedOverlapped)
{
    const ExecutionTrace t =
        trace_flat_attention(edge_accel(), dims(1024), flat_r(64));
    EXPECT_FALSE(t.phases[0].on_critical_path);
    EXPECT_TRUE(t.phases[1].on_critical_path);
    EXPECT_TRUE(t.phases[2].on_critical_path);
    EXPECT_TRUE(t.phases[3].on_critical_path);
    EXPECT_FALSE(t.phases[4].on_critical_path);
}

TEST(Trace, TotalsMatchCostModel)
{
    const AttentionDims d = dims(2048);
    const FusedDataflow df = flat_r(64);
    const ExecutionTrace t =
        trace_flat_attention(edge_accel(), d, df);
    const OperatorCost cost =
        model_flat_attention(edge_accel(), d, df);
    EXPECT_DOUBLE_EQ(t.total_cycles, cost.cycles);
    EXPECT_NEAR(t.pass_cycles * t.passes, cost.cycles,
                1e-6 * cost.cycles);
}

/** Head-granularity dataflow every execution style can run. */
FusedDataflow
head_df()
{
    FusedDataflow df;
    df.cross = {Granularity::kHead, 0};
    df.l2_logit = {128, 64, 128};
    df.l2_attend = {128, 128, 64};
    return df;
}

TEST(Trace, TotalsExactForEveryStyle)
{
    // The trace and the cost model consume the SAME evaluated
    // timeline, so totals agree bit-for-bit — cold start included —
    // for every execution style, on several hardware points.
    AccelConfig starved = edge_accel();
    starved.offchip_bw /= 8.0;
    for (const AccelConfig& accel :
         {edge_accel(), cloud_accel(), starved}) {
        for (const std::uint64_t n :
             {std::uint64_t{1024}, std::uint64_t{8192}}) {
            const AttentionDims d = dims(n);
            const FusedDataflow df = head_df();

            const ExecutionTrace flat_t =
                trace_flat_attention(accel, d, df);
            EXPECT_DOUBLE_EQ(flat_t.total_cycles,
                             model_flat_attention(accel, d, df).cycles);
            EXPECT_EQ(flat_t.style, "flat");

            const ExecutionTrace base_full = trace_baseline_attention(
                accel, d, df, BaselineOverlap::kFull);
            EXPECT_DOUBLE_EQ(
                base_full.total_cycles,
                model_baseline_attention(accel, d, df,
                                         BaselineOverlap::kFull)
                    .cycles);
            EXPECT_EQ(base_full.style, "baseline-full");

            const ExecutionTrace base_ser = trace_baseline_attention(
                accel, d, df, BaselineOverlap::kSerialized);
            EXPECT_DOUBLE_EQ(
                base_ser.total_cycles,
                model_baseline_attention(accel, d, df,
                                         BaselineOverlap::kSerialized)
                    .cycles);
            EXPECT_EQ(base_ser.style, "baseline-serialized");
            EXPECT_GE(base_ser.total_cycles, base_full.total_cycles);

            const ExecutionTrace pipe =
                trace_pipelined_attention(accel, d, df);
            EXPECT_DOUBLE_EQ(
                pipe.total_cycles,
                model_pipelined_attention(accel, d, df).cycles);
            EXPECT_EQ(pipe.style, "pipelined");
        }
    }
}

TEST(Trace, DecodeTotalsExactForGoldenShapes)
{
    // The two decode golden configs (edge-bert MHA, cloud-mistral
    // GQA): the trace totals must equal the model cycles bit-for-bit,
    // and the decode phase relabeling must show the KV-cache read.
    AttentionDims mha;
    mha.batch = 8;
    mha.heads = 12;
    mha.q_len = 1;
    mha.kv_len = 512;
    mha.head_dim = 64;
    mha.kv_heads = 12;
    mha.decode = true;

    AttentionDims gqa;
    gqa.batch = 16;
    gqa.heads = 32;
    gqa.q_len = 1;
    gqa.kv_len = 2048;
    gqa.head_dim = 128;
    gqa.kv_heads = 8;
    gqa.decode = true;

    struct Case {
        AccelConfig accel;
        AttentionDims d;
    };
    const Case cases[] = {{edge_accel(), mha}, {cloud_accel(), gqa}};
    for (const Case& c : cases) {
        SCOPED_TRACE(c.accel.name);
        AttentionSearchOptions opt;
        opt.quick = true;
        opt.fused = true;
        const AttentionSearchResult result =
            search_attention(c.accel, c.d, opt);
        ASSERT_TRUE(result.found);
        const FusedDataflow df = result.best.dataflow;
        const ExecutionTrace t = trace_flat_attention(c.accel, c.d, df);
        EXPECT_DOUBLE_EQ(t.total_cycles,
                         model_flat_attention(c.accel, c.d, df).cycles);
        bool saw_kv_read = false;
        for (const auto& phase : t.phases) {
            if (phase.label.find("KV-cache") != std::string::npos) {
                saw_kv_read = true;
            }
        }
        EXPECT_TRUE(saw_kv_read);
    }
}

TEST(Trace, GqaReducesKvTrafficNotMacs)
{
    // Same shape with and without head grouping: the grouped variant
    // must move fewer DRAM bytes while the MAC count is identical.
    AttentionDims d = dims(2048);
    const FusedDataflow df = flat_r(64);
    const OperatorCost mha = model_flat_attention(edge_accel(), d, df);
    d.kv_heads = 2; // 8 query heads in groups of 4
    const OperatorCost gqa = model_flat_attention(edge_accel(), d, df);
    EXPECT_EQ(gqa.activity.macs, mha.activity.macs);
    EXPECT_LT(gqa.activity.traffic.total_dram(),
              mha.activity.traffic.total_dram());
}

TEST(Trace, ColdStartIncludedInTotals)
{
    const AttentionDims d = dims(2048);
    const ExecutionTrace t =
        trace_flat_attention(edge_accel(), d, flat_r(64));
    EXPECT_GT(t.cold_start_cycles, 0.0);
    double phase_sum = 0.0;
    for (const TracePhase& p : t.phases) {
        phase_sum += p.cycles;
    }
    // The per-pass phase bars exclude the exposed warm-up; the total
    // includes it (that is what makes the totals exact).
    EXPECT_LT(t.cold_start_cycles, t.total_cycles);
    EXPECT_GE(phase_sum * t.passes + t.cold_start_cycles,
              t.total_cycles);
}

TEST(Trace, JsonAndCsvCarryTheTimeline)
{
    const ExecutionTrace t = trace_baseline_attention(
        edge_accel(), dims(1024), head_df(), BaselineOverlap::kFull);
    const std::string json = t.to_json();
    EXPECT_NE(json.find("\"style\":\"baseline-full\""),
              std::string::npos);
    EXPECT_NE(json.find("\"bound_by\""), std::string::npos);
    EXPECT_NE(json.find("\"total_cycles\""), std::string::npos);
    EXPECT_NE(json.find("\"phases\":["), std::string::npos);

    const std::string csv = t.to_csv();
    EXPECT_EQ(csv.find("phase,stage,cycles,bound_by,on_critical_path"),
              0u);
    // One header line plus one line per phase.
    const std::size_t lines =
        static_cast<std::size_t>(
            std::count(csv.begin(), csv.end(), '\n'));
    EXPECT_EQ(lines, t.phases.size() + 1);
}

TEST(Trace, PassCountMatchesCrossLoop)
{
    const ExecutionTrace t =
        trace_flat_attention(edge_accel(), dims(1024), flat_r(64));
    // 8 batch x 8 heads x (1024/64) chunks.
    EXPECT_DOUBLE_EQ(t.passes, 8.0 * 8.0 * 16.0);
}

TEST(Trace, BoundByIdentifiesBottleneck)
{
    // Roomy buffer + fat pipe: compute bound.
    AccelConfig roomy = edge_accel();
    roomy.sg_bytes = 64 * kMiB;
    roomy.offchip_bw = 400e9;
    const ExecutionTrace fast =
        trace_flat_attention(roomy, dims(4096), flat_r(64));
    EXPECT_EQ(fast.bound_by, "compute");

    // Tiny buffer at long N: off-chip bound.
    const ExecutionTrace slow =
        trace_flat_attention(edge_accel(), dims(32768), flat_r(32));
    EXPECT_EQ(slow.bound_by, "off-chip BW");
}

TEST(Trace, RenderContainsBarsAndLabels)
{
    const ExecutionTrace t =
        trace_flat_attention(edge_accel(), dims(1024), flat_r(64));
    const std::string text = t.render(40);
    EXPECT_NE(text.find("L: logits slice GEMM"), std::string::npos);
    EXPECT_NE(text.find('#'), std::string::npos);
    EXPECT_NE(text.find("passes"), std::string::npos);
}

} // namespace
} // namespace flat

#include "costmodel/attention_cost.h"

#include "costmodel/gemm_engine.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/units.h"

namespace flat {
namespace {

AttentionDims
dims(std::uint64_t b, std::uint64_t h, std::uint64_t n, std::uint64_t dk)
{
    AttentionDims d;
    d.batch = b;
    d.heads = h;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = dk;
    return d;
}

FusedDataflow
make_dataflow(Granularity g, std::uint64_t rows)
{
    FusedDataflow df;
    df.cross = {g, rows};
    df.l2_logit = {128, 128, 128};
    df.l2_attend = {128, 128, 128};
    df.order_logit = LoopOrder::kMNK;
    df.order_attend = LoopOrder::kMNK;
    return df;
}

TEST(AttentionCost, MacsClosedForm)
{
    EXPECT_EQ(attention_macs(dims(64, 12, 512, 64)),
              2ull * 64 * 12 * 512 * 512 * 64);
}

TEST(AttentionCost, IdealCyclesScalesWithPes)
{
    const AttentionDims d = dims(8, 8, 1024, 64);
    const double edge_ideal = attention_ideal_cycles(edge_accel(), d);
    const double cloud_ideal = attention_ideal_cycles(cloud_accel(), d);
    EXPECT_DOUBLE_EQ(edge_ideal / cloud_ideal, 64.0);
}

TEST(AttentionCost, FlatStagedIntermediateNeverTouchesDram)
{
    AccelConfig accel = edge_accel();
    accel.sg_bytes = 16 * kMiB; // roomy: footprint fits
    const AttentionDims d = dims(4, 4, 1024, 64);
    const FusedDataflow df = make_dataflow(Granularity::kRow, 64);
    const OperatorCost cost = model_flat_attention(accel, d, df);
    ASSERT_DOUBLE_EQ(cost.resident_fraction, 1.0);
    // DRAM traffic is exactly Q + K + V in and output out.
    const double io_bytes =
        4.0 * d.batch * d.heads * d.q_len * d.head_dim * 2.0;
    EXPECT_DOUBLE_EQ(cost.activity.traffic.total_dram(), io_bytes);
}

TEST(AttentionCost, BaselineMovesIntermediateFourTimes)
{
    // Plain Base (nothing staged): L writes, softmax reads+writes, A
    // reads the O(N^2) intermediate.
    const AttentionDims d = dims(4, 4, 1024, 64);
    FusedDataflow df = make_dataflow(Granularity::kMulti, 0);
    df.stage = FusedStageFlags::decode(0);
    const OperatorCost cost =
        model_baseline_attention(edge_accel(), d, df);
    const double inter_bytes =
        static_cast<double>(d.batch) * d.heads * d.q_len * d.kv_len * 2.0;
    EXPECT_GE(cost.activity.traffic.total_dram(), 4.0 * inter_bytes);
}

TEST(AttentionCost, FlatBeatsBaselineWhenBufferLimited)
{
    AccelConfig accel = edge_accel(); // 512 KiB SG
    const AttentionDims d = dims(64, 12, 4096, 64);
    const FusedDataflow flat_df = make_dataflow(Granularity::kRow, 64);
    const FusedDataflow base_df = make_dataflow(Granularity::kHead, 0);
    const OperatorCost flat_cost =
        model_flat_attention(accel, d, flat_df);
    const OperatorCost base_cost =
        model_baseline_attention(accel, d, base_df);
    EXPECT_LT(flat_cost.cycles, base_cost.cycles);
}

TEST(AttentionCost, BaselineRejectsRowGranularity)
{
    const AttentionDims d = dims(4, 4, 512, 64);
    const FusedDataflow df = make_dataflow(Granularity::kRow, 64);
    EXPECT_THROW(model_baseline_attention(edge_accel(), d, df), Error);
}

TEST(AttentionCost, UtilBounded)
{
    for (Granularity g : {Granularity::kMulti, Granularity::kBatch,
                          Granularity::kHead}) {
        const OperatorCost flat_cost = model_flat_attention(
            edge_accel(), dims(8, 8, 2048, 64), make_dataflow(g, 0));
        EXPECT_GT(flat_cost.util(), 0.0);
        EXPECT_LE(flat_cost.util(), 1.0);
        const OperatorCost base_cost = model_baseline_attention(
            edge_accel(), dims(8, 8, 2048, 64), make_dataflow(g, 0));
        EXPECT_GT(base_cost.util(), 0.0);
        EXPECT_LE(base_cost.util(), 1.0);
    }
}

TEST(AttentionCost, InterleavingNeverSlowerThanSequential)
{
    // Same dataflow, fused vs sequential windows: the shared overlap
    // window can only help.
    for (std::uint64_t n : {512u, 2048u, 8192u}) {
        const AttentionDims d = dims(16, 8, n, 64);
        const FusedDataflow df = make_dataflow(Granularity::kHead, 0);
        const double fused =
            model_flat_attention(edge_accel(), d, df).cycles;
        const double sequential =
            model_baseline_attention(edge_accel(), d, df).cycles;
        EXPECT_LE(fused, sequential * 1.0001) << "N=" << n;
    }
}

TEST(AttentionCost, RGranFootprintLinearInN)
{
    const FusedDataflow df = make_dataflow(Granularity::kRow, 64);
    const OperatorCost c1 =
        model_flat_attention(edge_accel(), dims(1, 1, 8192, 64), df);
    const OperatorCost c2 =
        model_flat_attention(edge_accel(), dims(1, 1, 16384, 64), df);
    EXPECT_LT(static_cast<double>(c2.live_footprint_bytes),
              3.0 * static_cast<double>(c1.live_footprint_bytes));
}

TEST(AttentionCost, LongSequenceKeepsFlatUtilHigh)
{
    // The headline property: at N = 64K the R-Gran FLAT dataflow stays
    // near its cap once its O(N) footprint (Table 2: ~42MB here) is
    // provisioned, while the sequential baseline's O(N^2) footprint can
    // never fit — it stays collapsed even with the same buffer.
    AccelConfig accel = edge_accel();
    accel.sg_bytes = 64 * kMiB;
    const AttentionDims d = dims(64, 12, 65536, 64);
    const OperatorCost flat_cost = model_flat_attention(
        accel, d, make_dataflow(Granularity::kRow, 64));
    FusedDataflow base_df = make_dataflow(Granularity::kMulti, 0);
    base_df.stage = FusedStageFlags::decode(0);
    const OperatorCost base_cost =
        model_baseline_attention(accel, d, base_df);
    EXPECT_GT(flat_cost.util(), 0.9);
    EXPECT_LT(base_cost.util(), 0.7);
    EXPECT_GT(flat_cost.util() / base_cost.util(), 1.4);
}

TEST(AttentionCost, TinyBufferNeutralizesFlatAtLongSequence)
{
    // Corollary (honest spill accounting): when even one FLAT row-slice
    // plus the K/V working set dwarfs the SG, FLAT degrades toward the
    // baseline instead of magically staying compute-bound.
    const AttentionDims d = dims(64, 12, 65536, 64);
    const OperatorCost flat_cost = model_flat_attention(
        edge_accel(), d, make_dataflow(Granularity::kRow, 64));
    EXPECT_LT(flat_cost.util(), 0.7);
    EXPECT_LT(flat_cost.resident_fraction, 0.1);
}

TEST(PipelinedAttention, KeepsIntermediateOnChipLikeInterleaved)
{
    AccelConfig accel = edge_accel();
    accel.sg_bytes = 16 * kMiB;
    const AttentionDims d = dims(4, 4, 1024, 64);
    const FusedDataflow df = make_dataflow(Granularity::kRow, 64);
    const OperatorCost pipe = model_pipelined_attention(accel, d, df);
    const double io_bytes =
        4.0 * d.batch * d.heads * d.q_len * d.head_dim * 2.0;
    EXPECT_DOUBLE_EQ(pipe.activity.traffic.total_dram(), io_bytes);
}

TEST(PipelinedAttention, InterleavedAtLeastAsGoodWhenImbalanced)
{
    // On the wide cloud array, A (n = dk = 128) wastes half the
    // columns; pipelining pays that waste at the slower stage's pace
    // on a half array while interleaving runs both stages on the full
    // array back to back. Tiles must be sized for the full array — a
    // deliberately undersized tile makes splitting free.
    const AccelConfig cloud = cloud_accel();
    AttentionDims d = dims(8, 16, 4096, 128);
    FusedDataflow df = make_dataflow(Granularity::kHead, 0);
    GemmShape logit_shape;
    logit_shape.m = d.q_len;
    logit_shape.k = d.head_dim;
    logit_shape.n = d.kv_len;
    GemmShape attend_shape;
    attend_shape.m = d.q_len;
    attend_shape.k = d.kv_len;
    attend_shape.n = d.head_dim;
    df.l2_logit = default_l2_tile(cloud, logit_shape,
                                  cloud.sg_bytes / 4,
                                  Stationarity::kOutputStationary);
    df.l2_attend = default_l2_tile(cloud, attend_shape,
                                   cloud.sg_bytes / 4,
                                   Stationarity::kOutputStationary);
    const OperatorCost inter = model_flat_attention(cloud, d, df);
    const OperatorCost pipe = model_pipelined_attention(cloud, d, df);
    EXPECT_LT(inter.cycles, pipe.cycles);
}

TEST(PipelinedAttention, NearTieWhenPerfectlyBalanced)
{
    // Balanced stages on the edge array: the two styles agree within a
    // few percent; the decisive §5.1 arguments (area, non-fused ops)
    // are outside this model.
    const OperatorCost inter = model_flat_attention(
        edge_accel(), dims(8, 8, 2048, 64),
        make_dataflow(Granularity::kHead, 0));
    const OperatorCost pipe = model_pipelined_attention(
        edge_accel(), dims(8, 8, 2048, 64),
        make_dataflow(Granularity::kHead, 0));
    EXPECT_NEAR(inter.cycles / pipe.cycles, 1.0, 0.05);
}

TEST(PipelinedAttention, RejectsUnsplittableArray)
{
    AccelConfig accel = edge_accel();
    accel.pe_rows = 1;
    EXPECT_THROW(model_pipelined_attention(
                     accel, dims(1, 1, 128, 64),
                     make_dataflow(Granularity::kHead, 0)),
                 Error);
}

/** Property: doubling off-chip bandwidth never increases runtime, for
 *  both models at every granularity. */
class BandwidthMonotonicity : public ::testing::TestWithParam<Granularity>
{
};

TEST_P(BandwidthMonotonicity, MoreBwNeverSlower)
{
    const AttentionDims d = dims(16, 8, 4096, 64);
    FusedDataflow df = make_dataflow(GetParam(), 128);
    AccelConfig slow = edge_accel();
    AccelConfig fast = edge_accel();
    fast.offchip_bw *= 2;

    const bool can_baseline = GetParam() != Granularity::kRow;
    EXPECT_LE(model_flat_attention(fast, d, df).cycles,
              model_flat_attention(slow, d, df).cycles);
    if (can_baseline) {
        EXPECT_LE(model_baseline_attention(fast, d, df).cycles,
                  model_baseline_attention(slow, d, df).cycles);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllGranularities, BandwidthMonotonicity,
    ::testing::Values(Granularity::kMulti, Granularity::kBatch,
                      Granularity::kHead, Granularity::kRow),
    [](const auto& info) { return to_string(info.param); });

} // namespace
} // namespace flat

/**
 * @file
 * Contract tests of the pluggable execution-style registry: stable
 * enumeration order and ids, distinct cache keys, the per-style
 * legal-granularity predicate (including the flash style's
 * register-tier capacity check), the bound algebra each style prunes
 * with, and the model == timeline exactness seam for every style.
 */
#include "costmodel/execution_style.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "costmodel/attention_cost.h"
#include "dataflow/granularity.h"
#include "dse/search.h"
#include "workload/model_config.h"

namespace flat {
namespace {

AttentionDims
self_attention(std::uint64_t n)
{
    AttentionDims d;
    d.batch = 16;
    d.heads = 8;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = 64;
    return d;
}

CrossLoop
cross_of(Granularity g, std::uint64_t rows = 0, std::uint64_t cols = 0)
{
    CrossLoop cross;
    cross.granularity = g;
    cross.rows = rows;
    cross.cols = cols;
    return cross;
}

TEST(ExecutionStyleRegistry, OrderAndIdsAreStable)
{
    const std::vector<const ExecutionStyle*>& styles = execution_styles();
    ASSERT_EQ(styles.size(), 4u);
    EXPECT_STREQ(styles[0]->id(), "baseline");
    EXPECT_STREQ(styles[1]->id(), "flat");
    EXPECT_STREQ(styles[2]->id(), "pipelined");
    EXPECT_STREQ(styles[3]->id(), "flash");
    EXPECT_EQ(styles[0], &baseline_execution_style());
    EXPECT_EQ(styles[1], &flat_execution_style());
    EXPECT_EQ(styles[2], &pipelined_execution_style());
    EXPECT_EQ(styles[3], &flash_execution_style());
}

TEST(ExecutionStyleRegistry, LookupRoundTripsAndRejectsUnknownIds)
{
    for (const ExecutionStyle* style : execution_styles()) {
        EXPECT_EQ(find_execution_style(style->id()), style);
        EXPECT_NE(style->summary()[0], '\0');
        EXPECT_NE(style->cost_name()[0], '\0');
    }
    EXPECT_EQ(find_execution_style("bogus"), nullptr);
    EXPECT_EQ(find_execution_style(""), nullptr);
    EXPECT_EQ(find_execution_style("FLAT"), nullptr); // ids are exact
}

TEST(ExecutionStyleRegistry, DefaultStyleFollowsTheHistoricalFusedFlag)
{
    EXPECT_EQ(&default_execution_style(true), &flat_execution_style());
    EXPECT_EQ(&default_execution_style(false),
              &baseline_execution_style());
    EXPECT_TRUE(flat_execution_style().fused());
    EXPECT_FALSE(baseline_execution_style().fused());
    EXPECT_TRUE(pipelined_execution_style().fused());
    EXPECT_TRUE(flash_execution_style().fused());
}

TEST(ExecutionStyleRegistry, CacheKeysAreDistinct)
{
    std::set<std::uint64_t> keys;
    for (const ExecutionStyle* style : execution_styles()) {
        EXPECT_TRUE(keys.insert(style->cache_key()).second)
            << "duplicate cache key for " << style->id();
    }
}

TEST(ExecutionStyleAdmits, GranularityContractPerStyle)
{
    const AccelConfig accel = edge_accel();
    const AttentionDims dims = self_attention(1024);
    const CrossLoop m = cross_of(Granularity::kMulti);
    const CrossLoop b = cross_of(Granularity::kBatch);
    const CrossLoop h = cross_of(Granularity::kHead);
    const CrossLoop r = cross_of(Granularity::kRow, 64);
    const CrossLoop c = cross_of(Granularity::kColumn, 32, 128);

    // Baseline: two-pass softmax over whole slices, no R/C tiles.
    EXPECT_TRUE(baseline_execution_style().admits(accel, dims, m));
    EXPECT_TRUE(baseline_execution_style().admits(accel, dims, b));
    EXPECT_TRUE(baseline_execution_style().admits(accel, dims, h));
    EXPECT_FALSE(baseline_execution_style().admits(accel, dims, r));
    EXPECT_FALSE(baseline_execution_style().admits(accel, dims, c));

    // FLAT: row granularity is its signature; no column streaming.
    EXPECT_TRUE(flat_execution_style().admits(accel, dims, m));
    EXPECT_TRUE(flat_execution_style().admits(accel, dims, r));
    EXPECT_FALSE(flat_execution_style().admits(accel, dims, c));

    // Pipelined: FLAT's granularities on a split array.
    EXPECT_TRUE(pipelined_execution_style().admits(accel, dims, r));
    EXPECT_FALSE(pipelined_execution_style().admits(accel, dims, c));

    // Flash: ONLY column-blocked tiles (its recurrence needs them).
    EXPECT_FALSE(flash_execution_style().admits(accel, dims, m));
    EXPECT_FALSE(flash_execution_style().admits(accel, dims, b));
    EXPECT_FALSE(flash_execution_style().admits(accel, dims, h));
    EXPECT_FALSE(flash_execution_style().admits(accel, dims, r));
    EXPECT_TRUE(flash_execution_style().admits(accel, dims, c));
}

TEST(ExecutionStyleAdmits, PipelinedNeedsASplittableArray)
{
    AccelConfig accel = edge_accel();
    const AttentionDims dims = self_attention(1024);
    const CrossLoop r = cross_of(Granularity::kRow, 64);
    ASSERT_TRUE(pipelined_execution_style().admits(accel, dims, r));
    accel.pe_rows = 1;
    EXPECT_FALSE(pipelined_execution_style().admits(accel, dims, r));
}

TEST(ExecutionStyleAdmits, FlashAdmissionIsRegisterTierCapacityChecked)
{
    const AccelConfig accel = edge_accel();
    const AttentionDims dims = self_attention(4096);

    // A tile within the register tier is admitted...
    const CrossLoop fits = cross_of(Granularity::kColumn, 32, 128);
    ASSERT_LE(register_tier_bytes(32, 128, dims.head_dim,
                                  accel.bytes_per_element),
              accel.rf_capacity_bytes());
    EXPECT_TRUE(flash_execution_style().admits(accel, dims, fits));

    // ...one whose running state outgrows it is not.
    const CrossLoop spills = cross_of(Granularity::kColumn, 4096, 4096);
    ASSERT_GT(register_tier_bytes(4096, 4096, dims.head_dim,
                                  accel.bytes_per_element),
              accel.rf_capacity_bytes());
    EXPECT_FALSE(flash_execution_style().admits(accel, dims, spills));
}

TEST(ExecutionStyleBounds, BoundAlgebraPerStyle)
{
    const double sum = 1000.0;
    const double mx = 700.0;
    const double sm = 300.0;
    const double cold = 50.0;
    const double rescale = 40.0;

    // Serial styles: every window is exposed, rescale is not theirs.
    EXPECT_EQ(baseline_execution_style().bound_cycles(sum, mx, sm, cold,
                                                      rescale),
              sum + sm + cold);
    EXPECT_EQ(flat_execution_style().bound_cycles(sum, mx, sm, cold,
                                                  rescale),
              sum + sm + cold);

    // Pipelined: concurrent tracks can beat the serial sum, so its
    // bound keeps only the slowest track.
    EXPECT_EQ(pipelined_execution_style().bound_cycles(sum, mx, sm, cold,
                                                       rescale),
              std::max(mx, sm));

    // Flash: serial shape plus the online-softmax rescale SFU work.
    EXPECT_EQ(flash_execution_style().bound_cycles(sum, mx, sm, cold,
                                                   rescale),
              sum + sm + cold + rescale);
}

TEST(ExecutionStyleBounds, InterSgRoundTripReflectsTheStagingTier)
{
    // SG-staged styles round-trip the intermediate (write + read);
    // flash keeps it in the register tier and pays nothing at SG.
    EXPECT_EQ(baseline_execution_style().inter_sg_round_trip_bytes(64.0),
              128.0);
    EXPECT_EQ(flat_execution_style().inter_sg_round_trip_bytes(64.0),
              128.0);
    EXPECT_EQ(pipelined_execution_style().inter_sg_round_trip_bytes(64.0),
              128.0);
    EXPECT_EQ(flash_execution_style().inter_sg_round_trip_bytes(64.0),
              0.0);
}

TEST(ExecutionStyleSeam, ModelEqualsTimelineForEveryStyle)
{
    // The core seam invariant: for each style, the winning dataflow of
    // a style-restricted search re-evaluates through the generic
    // timeline entry point to exactly the modeled cycles.
    const AccelConfig accel = edge_accel();
    const AttentionDims dims = self_attention(1024);
    for (const ExecutionStyle* style : execution_styles()) {
        SCOPED_TRACE(style->id());
        AttentionSearchOptions opt;
        opt.quick = true;
        opt.styles = {style->id()};
        const AttentionSearchResult result =
            search_attention(accel, dims, opt);
        ASSERT_TRUE(result.found);
        EXPECT_EQ(result.best.style, style);
        const OperatorCost cost = model_attention(
            *style, accel, dims, result.best.dataflow);
        const TimelineResult timeline = attention_timeline(
            *style, accel, dims, result.best.dataflow);
        EXPECT_EQ(timeline.cycles, cost.cycles);
        EXPECT_EQ(cost.cycles, result.best.cost.cycles);
        EXPECT_STREQ(cost.name.c_str(), style->cost_name());
    }
}

TEST(ExecutionStyleSeam, GenericEntryPointsMatchTheLegacyOnes)
{
    const AccelConfig accel = edge_accel();
    const AttentionDims dims = self_attention(1024);

    AttentionSearchOptions fused_opt;
    fused_opt.quick = true;
    const FusedDataflow flat_df =
        search_attention(accel, dims, fused_opt).best.dataflow;
    EXPECT_EQ(model_attention(flat_execution_style(), accel, dims,
                              flat_df)
                  .cycles,
              model_flat_attention(accel, dims, flat_df).cycles);
    EXPECT_EQ(model_attention(pipelined_execution_style(), accel, dims,
                              flat_df)
                  .cycles,
              model_pipelined_attention(accel, dims, flat_df).cycles);

    AttentionSearchOptions seq_opt;
    seq_opt.quick = true;
    seq_opt.fused = false;
    const FusedDataflow base_df =
        search_attention(accel, dims, seq_opt).best.dataflow;
    for (const BaselineOverlap overlap :
         {BaselineOverlap::kFull, BaselineOverlap::kSerialized}) {
        EXPECT_EQ(model_attention(baseline_execution_style(), accel,
                                  dims, base_df, overlap)
                      .cycles,
                  model_baseline_attention(accel, dims, base_df, overlap)
                      .cycles);
    }
}

TEST(ExecutionStyleSeam, FlashFreesTheSgShareOfTheIntermediate)
{
    // The flash win mechanism the paper-level ablation relies on: with
    // the intermediate in the register tier, the SG round-trip traffic
    // of the picked flash dataflow carries no intermediate term, so on
    // a long memory-bound sequence its DRAM traffic drops below FLAT's.
    const AccelConfig accel = edge_accel();
    const AttentionDims dims = self_attention(8192);

    AttentionSearchOptions flat_opt;
    flat_opt.quick = true;
    const AttentionSearchResult flat_res =
        search_attention(accel, dims, flat_opt);
    AttentionSearchOptions flash_opt;
    flash_opt.quick = true;
    flash_opt.styles = {"flash"};
    const AttentionSearchResult flash_res =
        search_attention(accel, dims, flash_opt);
    ASSERT_TRUE(flat_res.found);
    ASSERT_TRUE(flash_res.found);
    EXPECT_LT(flash_res.best.cost.activity.traffic.total_dram(),
              flat_res.best.cost.activity.traffic.total_dram());
}

} // namespace
} // namespace flat

/**
 * @file
 * Bit-identity contract of the SoA batch evaluators: a TimelineBatch
 * lane must reproduce evaluate_timeline_into()'s summary bit for bit
 * for the same phase values, and an AttentionBatchEvaluator lane must
 * reproduce model_flat_attention() / model_baseline_attention() bit
 * for bit — across the golden-catalog accelerator presets, execution
 * styles, overlap policies and batch widths. Every EXPECT_EQ on a
 * double below is an exact bit comparison on purpose: the batched hot
 * path is only admissible in the DSE because it changes nothing.
 */
#include "costmodel/timeline.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/catalog.h"
#include "costmodel/attention_cost.h"
#include "costmodel/gemm_engine.h"
#include "dataflow/granularity.h"

namespace flat {
namespace {

void
expect_same_summary(const TimelineBatch::LaneSummary& lane,
                    const TimelineResult& scalar, const char* what)
{
    EXPECT_EQ(lane.cycles, scalar.cycles) << what;
    EXPECT_EQ(lane.cold_start_cycles, scalar.cold_start_cycles)
        << what;
    EXPECT_EQ(lane.bound_by, scalar.bound_by) << what;
    EXPECT_EQ(lane.activity.macs, scalar.activity.macs) << what;
    EXPECT_EQ(lane.activity.sl_accesses, scalar.activity.sl_accesses)
        << what;
    EXPECT_EQ(lane.activity.sfu_elems, scalar.activity.sfu_elems)
        << what;
    const TrafficBytes& a = lane.activity.traffic;
    const TrafficBytes& b = scalar.activity.traffic;
    EXPECT_EQ(a.dram_read, b.dram_read) << what;
    EXPECT_EQ(a.dram_write, b.dram_write) << what;
    EXPECT_EQ(a.sg_read, b.sg_read) << what;
    EXPECT_EQ(a.sg_write, b.sg_write) << what;
    EXPECT_EQ(a.sg2_read, b.sg2_read) << what;
    EXPECT_EQ(a.sg2_write, b.sg2_write) << what;
    EXPECT_EQ(a.link_in, b.link_in) << what;
    EXPECT_EQ(a.link_out, b.link_out) << what;
}

/** Scalar reference: the summary-only path the DSE used before. */
TimelineResult
scalar_summary(const std::vector<Phase>& phases,
               const AccelConfig& accel, OverlapKind overlap)
{
    TimelineScratch scratch;
    scratch.phases = phases;
    scratch.summary_only = true;
    evaluate_timeline_into(scratch, accel, overlap);
    return scratch.result;
}

/** Loads @p phases' values into lane @p lane of @p batch. */
void
load_lane(TimelineBatch& batch, std::size_t lane,
          const std::vector<Phase>& phases)
{
    ASSERT_EQ(batch.add_lane(), lane);
    for (std::size_t p = 0; p < phases.size(); ++p) {
        batch.set_phase(lane, p, phases[p].compute_cycles,
                        phases[p].sfu_cycles,
                        phases[p].link_latency_cycles,
                        phases[p].activity);
    }
}

/** @p phases with every value scaled by @p factor (same structure). */
std::vector<Phase>
scaled(std::vector<Phase> phases, double factor)
{
    for (Phase& p : phases) {
        p.compute_cycles *= factor;
        p.sfu_cycles *= factor;
        p.activity.macs *= factor;
        p.activity.sfu_elems *= factor;
        p.activity.traffic.dram_read *= factor;
        p.activity.traffic.dram_write *= factor;
        p.activity.traffic.sg_read *= factor;
        p.activity.traffic.sg_write *= factor;
    }
    return phases;
}

/**
 * Checks every lane of a batch filled with per-lane scaled variants of
 * @p phases against per-lane scalar evaluations.
 */
void
check_parity(const std::vector<Phase>& phases,
             const AccelConfig& accel, OverlapKind overlap,
             std::size_t lanes, const char* what)
{
    TimelineBatch batch;
    batch.configure(phases, overlap, lanes);
    EXPECT_EQ(batch.phase_count(), phases.size());
    std::vector<std::vector<Phase>> variants;
    for (std::size_t l = 0; l < lanes; ++l) {
        variants.push_back(
            scaled(phases, 1.0 + 0.375 * static_cast<double>(l)));
        load_lane(batch, l, variants.back());
    }
    batch.evaluate(accel);
    for (std::size_t l = 0; l < lanes; ++l) {
        SCOPED_TRACE(l);
        expect_same_summary(batch.summary(l),
                            scalar_summary(variants[l], accel,
                                           overlap),
                            what);
    }
}

Phase
make_phase(int group, int track, double compute, double sfu,
           double dram_read, double sg_read, bool pace_only = false)
{
    Phase p;
    p.group = group;
    p.track = track;
    p.compute_cycles = compute;
    p.sfu_cycles = sfu;
    p.activity.macs = compute;
    p.activity.sfu_elems = sfu;
    p.activity.traffic.dram_read = dram_read;
    p.activity.traffic.sg_read = sg_read;
    p.pace_only = pace_only;
    return p;
}

TEST(TimelineBatch, MatchesScalarOnSyntheticStructures)
{
    const AccelConfig accel = edge_accel();
    // Serial members, concurrent tracks, a pace-only cold-start group
    // and a trailing mixed group — every structural feature at once.
    const std::vector<Phase> phases = {
        make_phase(0, -1, 0.0, 0.0, 3e6, 0.0, /*pace_only=*/true),
        make_phase(1, -1, 5e5, 0.0, 2e6, 4e6),
        make_phase(1, -1, 0.0, 3e5, 0.0, 2e6),
        make_phase(2, 0, 4e5, 0.0, 0.0, 3e6),
        make_phase(2, 1, 2e5, 1e5, 1e6, 1e6),
        make_phase(2, -1, 1e5, 0.0, 0.0, 0.0),
        make_phase(3, -1, 0.0, 0.0, 5e5, 5e5),
    };
    for (const OverlapKind overlap :
         {OverlapKind::kOverlapped, OverlapKind::kSerialTransfers}) {
        SCOPED_TRACE(static_cast<int>(overlap));
        check_parity(phases, accel, overlap, 5, "synthetic");
    }
}

TEST(TimelineBatch, ReconfigureAcrossStructuresStaysExact)
{
    const AccelConfig accel = edge_accel();
    const std::vector<Phase> wide = {
        make_phase(0, -1, 1e5, 0.0, 1e6, 1e6),
        make_phase(1, -1, 2e5, 1e4, 0.0, 2e6),
        make_phase(2, -1, 3e5, 0.0, 2e6, 0.0),
    };
    const std::vector<Phase> narrow = {
        make_phase(0, -1, 7e5, 2e4, 3e6, 1e6),
    };
    // Shrinking then regrowing the structure must reuse the retired
    // group entries without leaking stale members into the result.
    check_parity(wide, accel, OverlapKind::kOverlapped, 3, "wide");
    check_parity(narrow, accel, OverlapKind::kOverlapped, 2, "narrow");
    check_parity(wide, accel, OverlapKind::kSerialTransfers, 4,
                 "wide again");
}

AttentionDims
attention(std::uint64_t batch, std::uint64_t q, std::uint64_t kv)
{
    AttentionDims d;
    d.batch = batch;
    d.heads = 8;
    d.q_len = q;
    d.kv_len = kv;
    d.head_dim = 64;
    return d;
}

TEST(TimelineBatch, MatchesScalarOnEmittedAttentionTimelines)
{
    const AttentionDims dims = attention(8, 1024, 1024);
    FusedDataflow flat_df;
    flat_df.cross = {Granularity::kRow, 64};
    flat_df.l2_logit = {128, 64, 128};
    flat_df.l2_attend = {128, 128, 64};
    FusedDataflow base_df;
    base_df.cross = {Granularity::kMulti, 0};
    base_df.l2_logit = {128, 64, 128};
    base_df.l2_attend = {128, 128, 64};
    base_df.stage = FusedStageFlags{};

    for (const AccelConfig& accel : {edge_accel(), cloud_accel()}) {
        SCOPED_TRACE(accel.name);
        const AttentionPhases flat_p =
            flat_attention_phases(accel, dims, flat_df);
        check_parity(flat_p.phases, accel, flat_p.overlap, 4, "flat");

        for (const BaselineOverlap overlap :
             {BaselineOverlap::kFull, BaselineOverlap::kSerialized}) {
            const AttentionPhases base_p = baseline_attention_phases(
                accel, dims, base_df, overlap);
            check_parity(base_p.phases, accel, base_p.overlap, 3,
                         "baseline");
        }

        const AttentionPhases pipe_p =
            pipelined_attention_phases(accel, dims, flat_df);
        check_parity(pipe_p.phases, accel, pipe_p.overlap, 2,
                     "pipelined");
    }
}

// -------------------------------------------------------------------
// AttentionBatchEvaluator: whole-model parity against the plain
// entry points, lane by lane.

void
expect_same_cost(const OperatorCost& got, const OperatorCost& want,
                 const char* what)
{
    EXPECT_EQ(got.cycles, want.cycles) << what;
    EXPECT_EQ(got.ideal_cycles, want.ideal_cycles) << what;
    EXPECT_EQ(got.live_footprint_bytes, want.live_footprint_bytes)
        << what;
    EXPECT_EQ(got.resident_fraction, want.resident_fraction) << what;
    EXPECT_EQ(got.activity.macs, want.activity.macs) << what;
    EXPECT_EQ(got.activity.traffic.dram_read,
              want.activity.traffic.dram_read)
        << what;
    EXPECT_EQ(got.activity.traffic.sg_read,
              want.activity.traffic.sg_read)
        << what;
}

/** The lane's GEMM cost records under the PlannedGemmCosts contract. */
GemmSliceCost
slice_cost(const AccelConfig& accel, const GemmShape& shape,
           const L2Tile& tile, LoopOrder order,
           Stationarity stationarity)
{
    return {model_gemm_compute(accel, shape, tile, order, stationarity),
            stage_reuse(shape, tile, order)};
}

/**
 * Evaluates every (order_logit, order_attend) lane of @p base through
 * the batch evaluator at @p width lanes per flush and checks each
 * against the scalar model.
 */
void
check_evaluator_parity(const AccelConfig& accel,
                       const AttentionDims& dims,
                       const FusedDataflow& base, bool fused,
                       BaselineOverlap overlap, std::size_t width,
                       const char* what)
{
    const CrossLoopExtent extent = cross_loop_extent(
        base.cross, dims.batch, dims.heads, dims.q_len);
    GemmShape logit_shape;
    logit_shape.m = extent.rows_per_pass;
    logit_shape.k = dims.head_dim;
    logit_shape.n = dims.kv_len;
    GemmShape attend_shape;
    attend_shape.m = extent.rows_per_pass;
    attend_shape.k = dims.kv_len;
    attend_shape.n = dims.head_dim;

    const std::vector<LoopOrder> orders = {
        LoopOrder::kMKN, LoopOrder::kNKM, LoopOrder::kKMN};

    AttentionEvalScratch scratch;
    AttentionBatchEvaluator batch;
    batch.begin(accel, dims, base, fused, overlap, width, scratch);

    std::vector<FusedDataflow> lane_df;
    const auto flush_and_check = [&]() {
        batch.evaluate();
        for (std::size_t i = 0; i < batch.lanes(); ++i) {
            SCOPED_TRACE(lane_df[i].tag());
            const OperatorCost scalar =
                fused ? model_flat_attention(accel, dims, lane_df[i])
                      : model_baseline_attention(accel, dims,
                                                 lane_df[i], overlap);
            EXPECT_EQ(batch.cycles(i), scalar.cycles) << what;
            EXPECT_EQ(batch.activity(i).traffic.dram_read,
                      scalar.activity.traffic.dram_read)
                << what;
            expect_same_cost(batch.cost(i), scalar, what);
        }
        batch.clear_lanes();
        lane_df.clear();
    };

    for (const LoopOrder ol : orders) {
        for (const LoopOrder oa : orders) {
            FusedDataflow df = base;
            df.order_logit = ol;
            df.order_attend = oa;
            batch.add(slice_cost(accel, logit_shape, base.l2_logit, ol,
                                 base.stat_logit),
                      slice_cost(accel, attend_shape, base.l2_attend,
                                 oa, base.stat_attend),
                      ol, oa);
            lane_df.push_back(df);
            if (batch.full()) {
                flush_and_check();
            }
        }
    }
    flush_and_check();
}

TEST(AttentionBatchEvaluator, MatchesScalarModelAcrossCatalogStyles)
{
    const AttentionDims self = attention(8, 1024, 1024);
    const AttentionDims cross = attention(4, 512, 2048);

    FusedDataflow flat_df;
    flat_df.cross = {Granularity::kRow, 64};
    flat_df.l2_logit = {128, 64, 128};
    flat_df.l2_attend = {128, 128, 64};

    FusedDataflow base_df = flat_df;
    base_df.cross = {Granularity::kHead, 0};
    base_df.stage = FusedStageFlags{};

    for (const AccelConfig& accel : {edge_accel(), cloud_accel()}) {
        SCOPED_TRACE(accel.name);
        for (const AttentionDims& dims : {self, cross}) {
            check_evaluator_parity(accel, dims, flat_df, /*fused=*/true,
                                   BaselineOverlap::kFull, 9, "flat");
            check_evaluator_parity(accel, dims, base_df,
                                   /*fused=*/false,
                                   BaselineOverlap::kFull, 9,
                                   "baseline full");
            check_evaluator_parity(accel, dims, base_df,
                                   /*fused=*/false,
                                   BaselineOverlap::kSerialized, 9,
                                   "baseline serialized");
        }
    }
}

TEST(AttentionBatchEvaluator, WidthOneAndPartialFlushesStayExact)
{
    const AttentionDims dims = attention(8, 2048, 2048);
    FusedDataflow df;
    df.cross = {Granularity::kRow, 128};
    df.l2_logit = {128, 64, 128};
    df.l2_attend = {128, 128, 64};
    const AccelConfig accel = edge_accel();
    // Degenerate 1-lane batches, a width that straddles the 9-lane
    // block, and a width larger than the block.
    for (const std::size_t width : {1ul, 4ul, 16ul}) {
        SCOPED_TRACE(width);
        check_evaluator_parity(accel, dims, df, /*fused=*/true,
                               BaselineOverlap::kFull, width,
                               "width variant");
    }
}

} // namespace
} // namespace flat

/**
 * @file
 * Contract of the process-wide evaluation cache: results are
 * bit-identical with the cache on or off and for any thread count, the
 * counters track hits/misses/entries honestly, disabled lookups bypass
 * the shards entirely, and clear() never invalidates handed-out
 * payloads. Labeled `concurrency` — the bit-identity checks drive the
 * parallel DSE engine through the shared cache.
 */
#include "costmodel/eval_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "costmodel/gemm_engine.h"
#include "dse/search.h"

namespace flat {
namespace {

/** Restores the global enabled flag and leaves a clean cache behind. */
class CacheFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_ = EvalCache::enabled();
        EvalCache::set_enabled(true);
        EvalCache::instance().clear();
        EvalCache::instance().reset_stats();
    }

    void
    TearDown() override
    {
        EvalCache::instance().clear();
        EvalCache::instance().reset_stats();
        EvalCache::set_enabled(saved_);
    }

  private:
    bool saved_ = true;
};

AttentionDims
self_attention(std::uint64_t n)
{
    AttentionDims d;
    d.batch = 16;
    d.heads = 8;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = 64;
    return d;
}

AttentionSearchResult
run_search(unsigned threads)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.threads = threads;
    return search_attention(edge_accel(), self_attention(1024), opt);
}

void
expect_identical(const AttentionSearchResult& a,
                 const AttentionSearchResult& b, const char* what)
{
    ASSERT_TRUE(a.found) << what;
    ASSERT_TRUE(b.found) << what;
    EXPECT_EQ(a.best.dataflow.tag(), b.best.dataflow.tag()) << what;
    EXPECT_EQ(a.best.cost.cycles, b.best.cost.cycles) << what;
    EXPECT_EQ(a.best.cost.live_footprint_bytes,
              b.best.cost.live_footprint_bytes)
        << what;
    EXPECT_EQ(a.best.energy_j, b.best.energy_j) << what;
    EXPECT_EQ(a.evaluated + a.pruned, b.evaluated + b.pruned) << what;
}

TEST_F(CacheFixture, SearchIsBitIdenticalWithCacheOnOrOff)
{
    EvalCache::set_enabled(false);
    const AttentionSearchResult off = run_search(1);

    EvalCache::set_enabled(true);
    const AttentionSearchResult cold = run_search(1);
    expect_identical(off, cold, "cache off vs cold cache");

    // A warm cache (every lookup a hit) must not change a single bit.
    const AttentionSearchResult warm = run_search(1);
    expect_identical(off, warm, "cache off vs warm cache");
    EXPECT_GT(EvalCache::instance().stats().hits, 0u);
}

TEST_F(CacheFixture, SearchIsBitIdenticalAcrossThreadCounts)
{
    const AttentionSearchResult serial = run_search(1);
    const AttentionSearchResult threaded = run_search(8);
    expect_identical(serial, threaded, "1 thread vs 8 threads");
}

TEST_F(CacheFixture, CountersTrackMissesThenHits)
{
    const AttentionSearchResult first = run_search(1);
    ASSERT_TRUE(first.found);
    const CacheStats after_first = EvalCache::instance().stats();
    EXPECT_GT(after_first.misses, 0u);
    EXPECT_GT(after_first.entries, 0u);
    EXPECT_GT(after_first.bytes, 0u);

    run_search(1);
    const CacheStats after_second = EvalCache::instance().stats();
    EXPECT_GT(after_second.hits, after_first.hits);
    // The second identical search re-derives nothing.
    EXPECT_EQ(after_second.misses, after_first.misses);
    EXPECT_GT(after_second.hit_rate(), 0.0);
    EXPECT_LE(after_second.hit_rate(), 1.0);
}

TEST_F(CacheFixture, TileMenuComputesOncePerKey)
{
    const AccelConfig accel = edge_accel();
    GemmShape shape;
    shape.m = 512;
    shape.k = 64;
    shape.n = 512;
    const std::vector<double> fractions = {0.25, 0.5};
    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return std::vector<L2Tile>{
            default_l2_tile(accel, shape, accel.sg_bytes,
                            Stationarity::kWeightStationary)};
    };

    const EvalCache::TileMenu first = EvalCache::instance().tile_menu(
        accel, shape, fractions, Stationarity::kWeightStationary,
        compute);
    const EvalCache::TileMenu second = EvalCache::instance().tile_menu(
        accel, shape, fractions, Stationarity::kWeightStationary,
        compute);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(first.get(), second.get()); // the very same payload

    // A different stationarity is a different key.
    EvalCache::instance().tile_menu(accel, shape, fractions,
                                    Stationarity::kOutputStationary,
                                    compute);
    EXPECT_EQ(computes, 2);

    // So is a different shape.
    shape.n = 1024;
    EvalCache::instance().tile_menu(accel, shape, fractions,
                                    Stationarity::kWeightStationary,
                                    compute);
    EXPECT_EQ(computes, 3);
}

TEST_F(CacheFixture, GemmCostTableMatchesDirectEvaluation)
{
    const AccelConfig accel = edge_accel();
    GemmShape shape;
    shape.m = 1024;
    shape.k = 64;
    shape.n = 1024;
    const std::vector<L2Tile> tiles = {
        default_l2_tile(accel, shape, accel.sg_bytes,
                        Stationarity::kWeightStationary),
        default_l2_tile(accel, shape, accel.sg_bytes / 4,
                        Stationarity::kWeightStationary)};
    const std::vector<LoopOrder> orders = {LoopOrder::kMKN,
                                           LoopOrder::kNKM};

    const EvalCache::GemmCostTable table =
        EvalCache::instance().gemm_costs(
            accel, shape, tiles, orders,
            Stationarity::kWeightStationary);
    ASSERT_EQ(table->size(), tiles.size() * orders.size());
    for (std::size_t t = 0; t < tiles.size(); ++t) {
        for (std::size_t o = 0; o < orders.size(); ++o) {
            const GemmComputeCost direct = model_gemm_compute(
                accel, shape, tiles[t], orders[o],
                Stationarity::kWeightStationary);
            const StageReuse reuse =
                stage_reuse(shape, tiles[t], orders[o]);
            const GemmSliceCost& cached =
                (*table)[t * orders.size() + o];
            EXPECT_EQ(cached.compute.compute_cycles,
                      direct.compute_cycles);
            EXPECT_EQ(cached.compute.fill_drain_cycles,
                      direct.fill_drain_cycles);
            EXPECT_EQ(cached.compute.tile_switches,
                      direct.tile_switches);
            EXPECT_EQ(cached.compute.sg_stream_bytes(),
                      direct.sg_stream_bytes());
            EXPECT_EQ(cached.reuse.a_repeats, reuse.a_repeats);
            EXPECT_EQ(cached.reuse.b_repeats, reuse.b_repeats);
            EXPECT_EQ(cached.reuse.c_write_repeats,
                      reuse.c_write_repeats);
            EXPECT_EQ(cached.reuse.c_read_repeats,
                      reuse.c_read_repeats);
        }
    }
}

TEST_F(CacheFixture, DisabledLookupsBypassShardsAndCounters)
{
    EvalCache::set_enabled(false);
    const AccelConfig accel = edge_accel();
    GemmShape shape;
    shape.m = 256;
    shape.k = 64;
    shape.n = 256;
    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return std::vector<L2Tile>{
            default_l2_tile(accel, shape, accel.sg_bytes,
                            Stationarity::kWeightStationary)};
    };
    for (int i = 0; i < 3; ++i) {
        EvalCache::instance().tile_menu(
            accel, shape, {0.5}, Stationarity::kWeightStationary,
            compute);
    }
    EXPECT_EQ(computes, 3); // every lookup recomputed
    const CacheStats stats = EvalCache::instance().stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.entries, 0u);
}

TEST_F(CacheFixture, ClearKeepsHandedOutPayloadsAlive)
{
    const AccelConfig accel = edge_accel();
    GemmShape shape;
    shape.m = 128;
    shape.k = 64;
    shape.n = 128;
    const EvalCache::TileMenu menu = EvalCache::instance().tile_menu(
        accel, shape, {0.5}, Stationarity::kWeightStationary, [&] {
            return std::vector<L2Tile>{
                default_l2_tile(accel, shape, accel.sg_bytes,
                                Stationarity::kWeightStationary)};
        });
    ASSERT_EQ(menu->size(), 1u);
    const L2Tile before = (*menu)[0];

    EvalCache::instance().clear();
    EXPECT_EQ(EvalCache::instance().stats().entries, 0u);
    // The shared_ptr handle outlives the shard entry.
    ASSERT_EQ(menu->size(), 1u);
    EXPECT_EQ((*menu)[0].m, before.m);
    EXPECT_EQ((*menu)[0].k, before.k);
    EXPECT_EQ((*menu)[0].n, before.n);
}

TEST_F(CacheFixture, HitRateIsZeroWhenNeverConsulted)
{
    EXPECT_EQ(EvalCache::instance().stats().hit_rate(), 0.0);
}

} // namespace
} // namespace flat

/**
 * @file
 * Contract of the process-wide evaluation cache: results are
 * bit-identical with the cache on or off and for any thread count, the
 * counters track hits/misses/entries honestly, disabled lookups bypass
 * the shards entirely, and clear() never invalidates handed-out
 * payloads. Labeled `concurrency` — the bit-identity checks drive the
 * parallel DSE engine through the shared cache.
 */
#include "costmodel/eval_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "costmodel/gemm_engine.h"
#include "dse/search.h"

namespace flat {
namespace {

/** Restores the global enabled flag and leaves a clean cache behind. */
class CacheFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_ = EvalCache::enabled();
        EvalCache::set_enabled(true);
        EvalCache::instance().clear();
        EvalCache::instance().reset_stats();
    }

    void
    TearDown() override
    {
        EvalCache::instance().clear();
        EvalCache::instance().reset_stats();
        EvalCache::set_enabled(saved_);
    }

  private:
    bool saved_ = true;
};

AttentionDims
self_attention(std::uint64_t n)
{
    AttentionDims d;
    d.batch = 16;
    d.heads = 8;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = 64;
    return d;
}

AttentionSearchResult
run_search(unsigned threads)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.threads = threads;
    return search_attention(edge_accel(), self_attention(1024), opt);
}

void
expect_identical(const AttentionSearchResult& a,
                 const AttentionSearchResult& b, const char* what)
{
    ASSERT_TRUE(a.found) << what;
    ASSERT_TRUE(b.found) << what;
    EXPECT_EQ(a.best.dataflow.tag(), b.best.dataflow.tag()) << what;
    EXPECT_EQ(a.best.cost.cycles, b.best.cost.cycles) << what;
    EXPECT_EQ(a.best.cost.live_footprint_bytes,
              b.best.cost.live_footprint_bytes)
        << what;
    EXPECT_EQ(a.best.energy_j, b.best.energy_j) << what;
    EXPECT_EQ(a.evaluated + a.pruned, b.evaluated + b.pruned) << what;
}

TEST_F(CacheFixture, SearchIsBitIdenticalWithCacheOnOrOff)
{
    EvalCache::set_enabled(false);
    const AttentionSearchResult off = run_search(1);

    EvalCache::set_enabled(true);
    const AttentionSearchResult cold = run_search(1);
    expect_identical(off, cold, "cache off vs cold cache");

    // A warm cache (every lookup a hit) must not change a single bit.
    const AttentionSearchResult warm = run_search(1);
    expect_identical(off, warm, "cache off vs warm cache");
    EXPECT_GT(EvalCache::instance().stats().hits, 0u);
}

TEST_F(CacheFixture, SearchIsBitIdenticalAcrossThreadCounts)
{
    const AttentionSearchResult serial = run_search(1);
    const AttentionSearchResult threaded = run_search(8);
    expect_identical(serial, threaded, "1 thread vs 8 threads");
}

TEST_F(CacheFixture, CountersTrackMissesThenHits)
{
    const AttentionSearchResult first = run_search(1);
    ASSERT_TRUE(first.found);
    const CacheStats after_first = EvalCache::instance().stats();
    EXPECT_GT(after_first.misses, 0u);
    EXPECT_GT(after_first.entries, 0u);
    EXPECT_GT(after_first.bytes, 0u);

    run_search(1);
    const CacheStats after_second = EvalCache::instance().stats();
    EXPECT_GT(after_second.hits, after_first.hits);
    // The second identical search re-derives nothing.
    EXPECT_EQ(after_second.misses, after_first.misses);
    EXPECT_GT(after_second.hit_rate(), 0.0);
    EXPECT_LE(after_second.hit_rate(), 1.0);
}

TEST_F(CacheFixture, TileMenuComputesOncePerKey)
{
    const AccelConfig accel = edge_accel();
    GemmShape shape;
    shape.m = 512;
    shape.k = 64;
    shape.n = 512;
    const std::vector<double> fractions = {0.25, 0.5};
    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return std::vector<L2Tile>{
            default_l2_tile(accel, shape, accel.sg_bytes,
                            Stationarity::kWeightStationary)};
    };

    const EvalCache::TileMenu first = EvalCache::instance().tile_menu(
        accel, shape, fractions, Stationarity::kWeightStationary,
        compute);
    const EvalCache::TileMenu second = EvalCache::instance().tile_menu(
        accel, shape, fractions, Stationarity::kWeightStationary,
        compute);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(first.get(), second.get()); // the very same payload

    // A different stationarity is a different key.
    EvalCache::instance().tile_menu(accel, shape, fractions,
                                    Stationarity::kOutputStationary,
                                    compute);
    EXPECT_EQ(computes, 2);

    // So is a different shape.
    shape.n = 1024;
    EvalCache::instance().tile_menu(accel, shape, fractions,
                                    Stationarity::kWeightStationary,
                                    compute);
    EXPECT_EQ(computes, 3);
}

TEST_F(CacheFixture, GemmCostTableMatchesDirectEvaluation)
{
    const AccelConfig accel = edge_accel();
    GemmShape shape;
    shape.m = 1024;
    shape.k = 64;
    shape.n = 1024;
    const std::vector<L2Tile> tiles = {
        default_l2_tile(accel, shape, accel.sg_bytes,
                        Stationarity::kWeightStationary),
        default_l2_tile(accel, shape, accel.sg_bytes / 4,
                        Stationarity::kWeightStationary)};
    const std::vector<LoopOrder> orders = {LoopOrder::kMKN,
                                           LoopOrder::kNKM};

    const EvalCache::GemmCostTable table =
        EvalCache::instance().gemm_costs(
            accel, shape, tiles, orders,
            Stationarity::kWeightStationary);
    ASSERT_EQ(table->size(), tiles.size() * orders.size());
    for (std::size_t t = 0; t < tiles.size(); ++t) {
        for (std::size_t o = 0; o < orders.size(); ++o) {
            const GemmComputeCost direct = model_gemm_compute(
                accel, shape, tiles[t], orders[o],
                Stationarity::kWeightStationary);
            const StageReuse reuse =
                stage_reuse(shape, tiles[t], orders[o]);
            const GemmSliceCost& cached =
                (*table)[t * orders.size() + o];
            EXPECT_EQ(cached.compute.compute_cycles,
                      direct.compute_cycles);
            EXPECT_EQ(cached.compute.fill_drain_cycles,
                      direct.fill_drain_cycles);
            EXPECT_EQ(cached.compute.tile_switches,
                      direct.tile_switches);
            EXPECT_EQ(cached.compute.sg_stream_bytes(),
                      direct.sg_stream_bytes());
            EXPECT_EQ(cached.reuse.a_repeats, reuse.a_repeats);
            EXPECT_EQ(cached.reuse.b_repeats, reuse.b_repeats);
            EXPECT_EQ(cached.reuse.c_write_repeats,
                      reuse.c_write_repeats);
            EXPECT_EQ(cached.reuse.c_read_repeats,
                      reuse.c_read_repeats);
        }
    }
}

TEST_F(CacheFixture, DisabledLookupsBypassShardsAndCounters)
{
    EvalCache::set_enabled(false);
    const AccelConfig accel = edge_accel();
    GemmShape shape;
    shape.m = 256;
    shape.k = 64;
    shape.n = 256;
    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return std::vector<L2Tile>{
            default_l2_tile(accel, shape, accel.sg_bytes,
                            Stationarity::kWeightStationary)};
    };
    for (int i = 0; i < 3; ++i) {
        EvalCache::instance().tile_menu(
            accel, shape, {0.5}, Stationarity::kWeightStationary,
            compute);
    }
    EXPECT_EQ(computes, 3); // every lookup recomputed
    const CacheStats stats = EvalCache::instance().stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.entries, 0u);
}

TEST_F(CacheFixture, ClearKeepsHandedOutPayloadsAlive)
{
    const AccelConfig accel = edge_accel();
    GemmShape shape;
    shape.m = 128;
    shape.k = 64;
    shape.n = 128;
    const EvalCache::TileMenu menu = EvalCache::instance().tile_menu(
        accel, shape, {0.5}, Stationarity::kWeightStationary, [&] {
            return std::vector<L2Tile>{
                default_l2_tile(accel, shape, accel.sg_bytes,
                                Stationarity::kWeightStationary)};
        });
    ASSERT_EQ(menu->size(), 1u);
    const L2Tile before = (*menu)[0];

    EvalCache::instance().clear();
    EXPECT_EQ(EvalCache::instance().stats().entries, 0u);
    // The shared_ptr handle outlives the shard entry.
    ASSERT_EQ(menu->size(), 1u);
    EXPECT_EQ((*menu)[0].m, before.m);
    EXPECT_EQ((*menu)[0].k, before.k);
    EXPECT_EQ((*menu)[0].n, before.n);
}

TEST_F(CacheFixture, HitRateIsZeroWhenNeverConsulted)
{
    EXPECT_EQ(EvalCache::instance().stats().hit_rate(), 0.0);
}

/** Counts tile_menu computes for one fixed shape/fractions key. */
class CountingLookup
{
  public:
    explicit CountingLookup(std::vector<double> fractions = {0.5})
        : accel_(edge_accel()), fractions_(std::move(fractions))
    {
        shape_.m = 320;
        shape_.k = 64;
        shape_.n = 320;
    }

    EvalCache::TileMenu
    operator()()
    {
        return EvalCache::instance().tile_menu(
            accel_, shape_, fractions_,
            Stationarity::kWeightStationary, [this] {
                ++computes_;
                return std::vector<L2Tile>{default_l2_tile(
                    accel_, shape_, accel_.sg_bytes,
                    Stationarity::kWeightStationary)};
            });
    }

    int computes() const { return computes_; }

  private:
    AccelConfig accel_;
    GemmShape shape_;
    std::vector<double> fractions_;
    int computes_ = 0;
};

TEST_F(CacheFixture, ClearInvalidatesThreadLocalFrontEnd)
{
    // First lookup misses, second is served by this thread's L1 —
    // after clear() the L1 must re-miss instead of serving the stale
    // slot (the global epoch bump), so the compute runs again.
    CountingLookup look;
    look();
    look();
    EXPECT_EQ(look.computes(), 1);
    EXPECT_GT(EvalCache::instance().stats().l1_hits, 0u);

    EvalCache::instance().clear();
    look();
    EXPECT_EQ(look.computes(), 2);

    // And the refilled L1 serves hits again.
    look();
    EXPECT_EQ(look.computes(), 2);
}

TEST_F(CacheFixture, L1HitsAreASubsetOfTotalHits)
{
    CountingLookup look;
    look(); // miss
    for (int i = 0; i < 4; ++i) {
        look(); // same thread, same key: all L1
    }
    const CacheStats stats = EvalCache::instance().stats();
    EXPECT_EQ(stats.hits, 4u);
    EXPECT_EQ(stats.l1_hits, 4u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST_F(CacheFixture, ResetStatsKeepsEntriesAndRestartsCounters)
{
    CountingLookup look;
    look();
    look();
    EvalCache::instance().reset_stats();
    const CacheStats zeroed = EvalCache::instance().stats();
    EXPECT_EQ(zeroed.hits, 0u);
    EXPECT_EQ(zeroed.l1_hits, 0u);
    EXPECT_EQ(zeroed.misses, 0u);
    EXPECT_GT(zeroed.entries, 0u); // entries survive a stats reset

    look(); // still cached: a hit, not a recompute
    EXPECT_EQ(look.computes(), 1);
    EXPECT_EQ(EvalCache::instance().stats().hits, 1u);
}

TEST_F(CacheFixture, SignedZeroFractionsAreDistinctKeys)
{
    // Binary bit-pattern keys are stricter than operator==: +0.0 and
    // -0.0 compare equal as doubles but are different sub-problems to
    // the cache (and to any consumer that branches on signbit).
    CountingLookup positive({0.0});
    CountingLookup negative({-0.0});
    positive();
    negative();
    EXPECT_EQ(positive.computes(), 1);
    EXPECT_EQ(negative.computes(), 1);
    EXPECT_EQ(EvalCache::instance().stats().misses, 2u);

    // Each variant still hits its own entry.
    positive();
    negative();
    EXPECT_EQ(positive.computes(), 1);
    EXPECT_EQ(negative.computes(), 1);
    EXPECT_EQ(EvalCache::instance().stats().hits, 2u);
}

TEST_F(CacheFixture, DenormalFractionsRoundTripExactly)
{
    const double denormal = 4.9406564584124654e-324; // smallest double
    CountingLookup tiny({denormal});
    CountingLookup doubled({2.0 * denormal});
    tiny();
    tiny();
    EXPECT_EQ(tiny.computes(), 1); // no precision loss in the key

    doubled(); // a neighboring denormal is a different key
    EXPECT_EQ(doubled.computes(), 1);
    EXPECT_EQ(EvalCache::instance().stats().misses, 2u);
}

// ---------------------------------------------------------------------
// ProbeKey + find()/insert(): the split front door batched producers
// use — probe every point, compute the misses together, publish.
// ---------------------------------------------------------------------

std::shared_ptr<const int>
payload_of(int value)
{
    return std::make_shared<const int>(value);
}

TEST_F(CacheFixture, FindMissesThenServesInsertedPayload)
{
    EvalCache& cache = EvalCache::instance();
    EvalCache::ProbeKey key;
    key.reset(EvalCache::kFirstExternalTag + 100);
    key.add(std::uint64_t{42});
    key.add(0.25);

    EXPECT_EQ(cache.find(key), nullptr);
    EXPECT_EQ(cache.stats().misses, 1u);

    cache.insert(key, payload_of(7), sizeof(int));
    const EvalCache::OpaquePayload hit = cache.find(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*std::static_pointer_cast<const int>(hit), 7);
    EXPECT_GT(cache.stats().hits, 0u);
    EXPECT_GE(cache.stats().entries, 1u);
}

TEST_F(CacheFixture, RewindRestoresTheMarkedPrefix)
{
    EvalCache& cache = EvalCache::instance();
    EvalCache::ProbeKey key;
    key.reset(EvalCache::kFirstExternalTag + 100);
    EvalCache::append_accel(key, edge_accel());
    key.mark();

    key.add(std::uint64_t{1});
    cache.insert(key, payload_of(1), sizeof(int));
    key.rewind();
    key.add(std::uint64_t{2});
    cache.insert(key, payload_of(2), sizeof(int));

    // Re-deriving each suffix from the restored prefix finds its own
    // entry — rewind() loses no prefix words and leaks no suffix words.
    key.rewind();
    key.add(std::uint64_t{1});
    const EvalCache::OpaquePayload first = cache.find(key);
    key.rewind();
    key.add(std::uint64_t{2});
    const EvalCache::OpaquePayload second = cache.find(key);
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(*std::static_pointer_cast<const int>(first), 1);
    EXPECT_EQ(*std::static_pointer_cast<const int>(second), 2);
}

TEST_F(CacheFixture, FindAndInsertBypassDisabledCache)
{
    EvalCache& cache = EvalCache::instance();
    EvalCache::ProbeKey key;
    key.reset(EvalCache::kFirstExternalTag + 100);
    key.add(std::uint64_t{9});

    EvalCache::set_enabled(false);
    EXPECT_TRUE(EvalCache::bypassed());
    cache.insert(key, payload_of(9), sizeof(int));
    EXPECT_EQ(cache.find(key), nullptr);

    // Nothing was stored or counted while disabled.
    EvalCache::set_enabled(true);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

} // namespace
} // namespace flat

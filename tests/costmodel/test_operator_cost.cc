#include "costmodel/operator_cost.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/units.h"
#include "workload/attention.h"
#include "workload/model_config.h"

namespace flat {
namespace {

Operator
projection_op()
{
    const Workload w = make_workload(bert_base(), 64, 512);
    return w.ops[0]; // Q
}

OperatorDataflow
default_dataflow()
{
    OperatorDataflow df;
    df.l2 = {128, 128, 128};
    df.order = LoopOrder::kMNK;
    df.stationarity = Stationarity::kOutputStationary;
    df.cross = {Granularity::kMulti, 0};
    return df;
}

TEST(OperatorCost, UtilIsAtMostOne)
{
    const AccelConfig edge = edge_accel();
    const OperatorCost cost =
        model_gemm_operator(edge, projection_op(), default_dataflow());
    EXPECT_GT(cost.util(), 0.0);
    EXPECT_LE(cost.util(), 1.0);
}

TEST(OperatorCost, ProjectionIsComputeBoundAtBatch64)
{
    // §2.2: batched activation-weight operators have high intensity.
    const AccelConfig edge = edge_accel();
    const OperatorCost cost =
        model_gemm_operator(edge, projection_op(), default_dataflow());
    EXPECT_GT(cost.util(), 0.7);
}

TEST(OperatorCost, MoreBandwidthNeverHurts)
{
    AccelConfig accel = edge_accel();
    const Operator op = projection_op();
    const OperatorDataflow df = default_dataflow();
    const double slow = model_gemm_operator(accel, op, df).cycles;
    accel.offchip_bw *= 8;
    const double fast = model_gemm_operator(accel, op, df).cycles;
    EXPECT_LE(fast, slow);
}

TEST(OperatorCost, StagingWeightCutsDramTraffic)
{
    const AccelConfig edge = edge_accel();
    const Operator op = projection_op();
    OperatorDataflow streaming = default_dataflow();
    streaming.order = LoopOrder::kNMK; // weight refetched per m tile

    OperatorDataflow staged = streaming;
    staged.l3.b = true;

    const OperatorCost unstaged_cost =
        model_gemm_operator(edge, op, streaming);
    const OperatorCost staged_cost =
        model_gemm_operator(edge, op, staged);
    EXPECT_LT(staged_cost.activity.traffic.dram_read,
              unstaged_cost.activity.traffic.dram_read);
}

TEST(OperatorCost, SpillPenaltyWhenFootprintExceedsSg)
{
    // Staging a tensor that cannot fit must cost MORE traffic than not
    // staging it at all (the Base-M < Base effect of §6.2.1).
    AccelConfig accel = edge_accel();
    accel.sg_bytes = 64 * kKiB;

    const Workload w = make_workload(bert_base(), 64, 4096);
    const Operator& logit = w.logit_op();

    OperatorDataflow plain = default_dataflow();
    plain.l2 = {64, 64, 64};
    OperatorDataflow staged = plain;
    staged.l3 = {true, true, true};

    const OperatorCost plain_cost =
        model_gemm_operator(accel, logit, plain);
    const OperatorCost staged_cost =
        model_gemm_operator(accel, logit, staged);
    EXPECT_LT(staged_cost.resident_fraction, 0.05);
    EXPECT_GT(staged_cost.activity.traffic.total_dram(),
              plain_cost.activity.traffic.total_dram());
}

TEST(OperatorCost, EffectiveFetchesBlendsWithResidency)
{
    EXPECT_DOUBLE_EQ(effective_fetches(false, 1.0, 7.0), 7.0);
    EXPECT_DOUBLE_EQ(effective_fetches(true, 1.0, 7.0), 1.0);
    // Fully spilled staging costs one extra pass.
    EXPECT_DOUBLE_EQ(effective_fetches(true, 0.0, 7.0), 8.0);
    // Half resident: average of the two regimes.
    EXPECT_DOUBLE_EQ(effective_fetches(true, 0.5, 7.0), 0.5 + 4.0);
}

TEST(OperatorCost, DramTrafficAtLeastCompulsory)
{
    const AccelConfig edge = edge_accel();
    const Operator op = projection_op();
    const OperatorCost cost =
        model_gemm_operator(edge, op, default_dataflow());
    const double compulsory =
        static_cast<double>(op.gemm.a_elems_total() +
                            op.gemm.b_elems_total()) *
        2.0;
    EXPECT_GE(cost.activity.traffic.dram_read, compulsory - 1.0);
    EXPECT_GE(cost.activity.traffic.dram_write,
              static_cast<double>(op.gemm.c_elems_total()) * 2.0 - 1.0);
}

TEST(OperatorCost, RejectsSoftmaxNode)
{
    const Workload w = make_workload(bert_base(), 1, 128);
    EXPECT_THROW(model_gemm_operator(edge_accel(), w.softmax_op(),
                                     default_dataflow()),
                 Error);
}

TEST(BaselineSoftmax, RoundTripsThroughDram)
{
    const Workload w = make_workload(bert_base(), 4, 1024);
    const OperatorCost cost =
        model_baseline_softmax(edge_accel(), w.softmax_op());
    const double bytes =
        static_cast<double>(w.softmax_op().output_elems()) * 2.0;
    EXPECT_DOUBLE_EQ(cost.activity.traffic.dram_read, bytes);
    EXPECT_DOUBLE_EQ(cost.activity.traffic.dram_write, bytes);
    EXPECT_GT(cost.cycles, 0.0);
}

TEST(BaselineSoftmax, ResidentFractionRemovesDramTraffic)
{
    const Workload w = make_workload(bert_base(), 4, 1024);
    const OperatorCost off =
        model_baseline_softmax(edge_accel(), w.softmax_op(), 0.0);
    const OperatorCost on =
        model_baseline_softmax(edge_accel(), w.softmax_op(), 1.0);
    EXPECT_DOUBLE_EQ(on.activity.traffic.total_dram(), 0.0);
    EXPECT_LT(on.cycles, off.cycles);
}

TEST(BaselineSoftmax, RejectsGemmNode)
{
    EXPECT_THROW(model_baseline_softmax(edge_accel(), projection_op()),
                 Error);
}

} // namespace
} // namespace flat

#include "kernels/transformer_block.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/status.h"

namespace flat {
namespace {

TEST(TransformerBlock, FlatMatchesBaseline)
{
    const std::size_t n = 96;
    const std::size_t d = 64;
    Matrix x(n, d);
    fill_random(x, 5);
    const TransformerBlockWeights w =
        TransformerBlockWeights::random(d, 4 * d, 11);

    const Matrix base = transformer_block_forward(x, w, 4, 0);
    const Matrix fused = transformer_block_forward(x, w, 4, 16);
    EXPECT_LT(base.max_abs_diff(fused), 1e-3f);
}

/** Parameterized over head counts and row tiles. */
class BlockEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t,
                                                 std::size_t>>
{
};

TEST_P(BlockEquivalence, FusedEqualsBaseline)
{
    const auto [heads, row_tile] = GetParam();
    const std::size_t d = 64;
    Matrix x(40, d);
    fill_random(x, 9);
    const TransformerBlockWeights w =
        TransformerBlockWeights::random(d, 128, 3);
    const Matrix base = transformer_block_forward(x, w, heads, 0);
    const Matrix fused = transformer_block_forward(x, w, heads, row_tile);
    EXPECT_LT(base.max_abs_diff(fused), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 8),
                       ::testing::Values(1, 7, 64)));

TEST(TransformerBlock, StackStaysFinite)
{
    // Residual + layernorm keeps a 12-block stack numerically sane.
    Matrix x(32, 64);
    fill_random(x, 21);
    const TransformerBlockWeights w =
        TransformerBlockWeights::random(64, 256, 2);
    const Matrix out = transformer_stack_forward(x, w, 4, 12, 16);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_TRUE(std::isfinite(out.data()[i])) << "element " << i;
    }
}

TEST(TransformerBlock, StackFusedMatchesBaseline)
{
    Matrix x(24, 32);
    fill_random(x, 4);
    const TransformerBlockWeights w =
        TransformerBlockWeights::random(32, 64, 8);
    const Matrix base = transformer_stack_forward(x, w, 2, 4, 0);
    const Matrix fused = transformer_stack_forward(x, w, 2, 4, 8);
    EXPECT_LT(base.max_abs_diff(fused), 5e-3f);
}

TEST(TransformerBlock, ResidualPathPreservedForZeroWeights)
{
    // With all-zero attention/FC weights the block reduces to
    // x + 0 + 0 (plus bias-driven FC output): check x passes through.
    const std::size_t d = 16;
    TransformerBlockWeights w = TransformerBlockWeights::random(d, 32, 1);
    w.attention.wq = Matrix(d, d);
    w.attention.wk = Matrix(d, d);
    w.attention.wv = Matrix(d, d);
    w.attention.wo = Matrix(d, d);
    w.w_fc1 = Matrix(d, 32);
    w.w_fc2 = Matrix(32, d);
    w.b_fc1.assign(32, 0.0f);
    w.b_fc2.assign(d, 0.0f);

    Matrix x(4, d);
    fill_random(x, 6);
    const Matrix out = transformer_block_forward(x, w, 2, 4);
    EXPECT_LT(out.max_abs_diff(x), 1e-6f);
}

TEST(TransformerBlock, TrafficDominatedByIntermediateOnlyInBaseline)
{
    const std::size_t n = 256;
    const std::size_t d = 64;
    Matrix x(n, d);
    fill_random(x, 13);
    const TransformerBlockWeights w =
        TransformerBlockWeights::random(d, 4 * d, 17);

    TrafficMeter base_meter;
    transformer_block_forward(x, w, 4, 0, {}, &base_meter);
    TrafficMeter flat_meter;
    transformer_block_forward(x, w, 4, 32, {}, &flat_meter);

    EXPECT_GT(base_meter.offchip_bytes("intermediate"), 0u);
    EXPECT_EQ(flat_meter.offchip_bytes("intermediate"), 0u);
    // The FC traffic is identical: FLAT only changes the L-A pair.
    EXPECT_EQ(base_meter.offchip_bytes("FC"),
              flat_meter.offchip_bytes("FC"));
}

TEST(TransformerBlock, ValidateRejectsInconsistentShapes)
{
    TransformerBlockWeights w = TransformerBlockWeights::random(32, 64, 1);
    w.b_fc1.resize(5);
    EXPECT_THROW(w.validate(), Error);
    Matrix x(4, 32);
    EXPECT_THROW(transformer_block_forward(x, w, 2, 0), Error);
}

TEST(TransformerBlock, RejectsWrongInputWidth)
{
    const TransformerBlockWeights w =
        TransformerBlockWeights::random(32, 64, 1);
    Matrix x(4, 16);
    EXPECT_THROW(transformer_block_forward(x, w, 2, 0), Error);
}

} // namespace
} // namespace flat

#include "kernels/matrix.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace flat {
namespace {

TEST(Matrix, ZeroInitialized)
{
    const Matrix m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 4; ++c) {
            EXPECT_EQ(m.at(r, c), 0.0f);
        }
    }
}

TEST(Matrix, FillRandomDeterministic)
{
    Matrix a(8, 8);
    Matrix b(8, 8);
    fill_random(a, 42);
    fill_random(b, 42);
    EXPECT_EQ(a.max_abs_diff(b), 0.0f);

    Matrix c(8, 8);
    fill_random(c, 43);
    EXPECT_GT(a.max_abs_diff(c), 0.0f);
}

TEST(Matrix, FillRandomInRange)
{
    Matrix m(16, 16);
    fill_random(m, 7);
    for (std::size_t i = 0; i < m.size(); ++i) {
        EXPECT_GE(m.data()[i], -1.0f);
        EXPECT_LE(m.data()[i], 1.0f);
    }
}

TEST(Matrix, MatmulIdentity)
{
    Matrix a(3, 3);
    fill_random(a, 1);
    Matrix eye(3, 3);
    for (std::size_t i = 0; i < 3; ++i) {
        eye.at(i, i) = 1.0f;
    }
    const Matrix c = matmul(a, eye);
    EXPECT_LT(c.max_abs_diff(a), 1e-6f);
}

TEST(Matrix, MatmulKnownValues)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(1, 0) = 3;
    a.at(1, 1) = 4;
    Matrix b(2, 2);
    b.at(0, 0) = 5;
    b.at(0, 1) = 6;
    b.at(1, 0) = 7;
    b.at(1, 1) = 8;
    const Matrix c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Matrix, MatmulTransposedAgreesWithMatmul)
{
    Matrix a(5, 7);
    Matrix b(7, 6);
    fill_random(a, 2);
    fill_random(b, 3);
    // Build b^T and compare paths.
    Matrix bt(6, 7);
    for (std::size_t r = 0; r < 7; ++r) {
        for (std::size_t c = 0; c < 6; ++c) {
            bt.at(c, r) = b.at(r, c);
        }
    }
    const Matrix c1 = matmul(a, b);
    const Matrix c2 = matmul_transposed(a, bt);
    EXPECT_LT(c1.max_abs_diff(c2), 1e-5f);
}

TEST(Matrix, MatmulRejectsShapeMismatch)
{
    EXPECT_THROW(matmul(Matrix(2, 3), Matrix(4, 2)), Error);
    EXPECT_THROW(matmul_transposed(Matrix(2, 3), Matrix(4, 5)), Error);
}

TEST(Matrix, MaxAbsDiffRejectsShapeMismatch)
{
    EXPECT_THROW(Matrix(2, 2).max_abs_diff(Matrix(2, 3)), Error);
}

} // namespace
} // namespace flat

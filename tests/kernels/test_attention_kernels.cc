#include "kernels/attention.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace flat {
namespace {

struct Inputs {
    Matrix q, k, v;
};

Inputs
make_inputs(std::size_t n, std::size_t n_kv, std::size_t dk,
            std::uint64_t seed)
{
    Inputs in{Matrix(n, dk), Matrix(n_kv, dk), Matrix(n_kv, dk)};
    fill_random(in.q, seed + 1);
    fill_random(in.k, seed + 2);
    fill_random(in.v, seed + 3);
    return in;
}

/**
 * The central functional claim of the paper: FLAT is a pure dataflow
 * transformation — fused row-streamed attention computes EXACTLY the
 * same function as the materialized baseline (§4).
 */
class FusedEqualsReference
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>>
{
};

TEST_P(FusedEqualsReference, SelfAttention)
{
    const auto [n, row_tile] = GetParam();
    const Inputs in = make_inputs(n, n, 32, 77);
    const Matrix ref = attention_reference(in.q, in.k, in.v);
    const Matrix fused =
        attention_flat(in.q, in.k, in.v, row_tile);
    EXPECT_LT(ref.max_abs_diff(fused), 1e-5f)
        << "N=" << n << " R=" << row_tile;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FusedEqualsReference,
    ::testing::Combine(::testing::Values(1, 7, 64, 128, 257),
                       ::testing::Values(1, 3, 16, 64, 1024)));

TEST(AttentionKernels, CrossAttentionMatches)
{
    const Inputs in = make_inputs(48, 160, 32, 5);
    const Matrix ref = attention_reference(in.q, in.k, in.v);
    const Matrix fused = attention_flat(in.q, in.k, in.v, 16);
    EXPECT_LT(ref.max_abs_diff(fused), 1e-5f);
}

TEST(AttentionKernels, CausalMaskingMatches)
{
    AttentionOptions opts;
    opts.causal = true;
    const Inputs in = make_inputs(96, 96, 16, 13);
    const Matrix ref = attention_reference(in.q, in.k, in.v, opts);
    const Matrix fused = attention_flat(in.q, in.k, in.v, 32, opts);
    EXPECT_LT(ref.max_abs_diff(fused), 1e-5f);
}

TEST(AttentionKernels, UnscaledVariantMatches)
{
    AttentionOptions opts;
    opts.scaled = false;
    const Inputs in = make_inputs(32, 32, 8, 21);
    const Matrix ref = attention_reference(in.q, in.k, in.v, opts);
    const Matrix fused = attention_flat(in.q, in.k, in.v, 8, opts);
    EXPECT_LT(ref.max_abs_diff(fused), 1e-5f);
}

TEST(AttentionKernels, OutputRowsAreConvexCombinationsOfV)
{
    // Softmax weights are a distribution, so each output element lies
    // within the [min, max] range of its V column.
    const Inputs in = make_inputs(16, 64, 8, 3);
    const Matrix out = attention_flat(in.q, in.k, in.v, 4);
    for (std::size_t c = 0; c < out.cols(); ++c) {
        float lo = 1e30f;
        float hi = -1e30f;
        for (std::size_t r = 0; r < in.v.rows(); ++r) {
            lo = std::min(lo, in.v.at(r, c));
            hi = std::max(hi, in.v.at(r, c));
        }
        for (std::size_t r = 0; r < out.rows(); ++r) {
            EXPECT_GE(out.at(r, c), lo - 1e-5f);
            EXPECT_LE(out.at(r, c), hi + 1e-5f);
        }
    }
}

TEST(AttentionKernels, BaselineMovesIntermediateOffChip)
{
    const std::size_t n = 128;
    const Inputs in = make_inputs(n, n, 32, 1);
    TrafficMeter meter;
    attention_reference(in.q, in.k, in.v, {}, &meter);
    // Four crossings: L write, softmax read+write, A read.
    const std::uint64_t inter = n * n * sizeof(float);
    EXPECT_EQ(meter.offchip_bytes("intermediate"), 4 * inter);
}

TEST(AttentionKernels, FlatMovesZeroIntermediateOffChip)
{
    const std::size_t n = 128;
    const Inputs in = make_inputs(n, n, 32, 1);
    TrafficMeter meter;
    attention_flat(in.q, in.k, in.v, 16, {}, &meter);
    EXPECT_EQ(meter.offchip_bytes("intermediate"), 0u);
    EXPECT_GT(meter.onchip_bytes("intermediate"), 0u);
}

TEST(AttentionKernels, FlatTotalOffchipIsLinearInN)
{
    // O(N * dk) I/O for FLAT vs O(N^2) for the baseline.
    const std::size_t dk = 32;
    const auto offchip = [&](std::size_t n, bool fused) {
        const Inputs in = make_inputs(n, n, dk, 2);
        TrafficMeter meter;
        if (fused) {
            attention_flat(in.q, in.k, in.v, 16, {}, &meter);
        } else {
            attention_reference(in.q, in.k, in.v, {}, &meter);
        }
        return meter.total_offchip();
    };
    const std::uint64_t flat1 = offchip(128, true);
    const std::uint64_t flat2 = offchip(256, true);
    EXPECT_LT(flat2, 3 * flat1); // ~2x
    const std::uint64_t base1 = offchip(128, false);
    const std::uint64_t base2 = offchip(256, false);
    EXPECT_GT(base2, 3 * base1); // ~4x
}

TEST(AttentionKernels, LayerForwardFlatMatchesBaseline)
{
    const std::size_t n = 64;
    const std::size_t d = 32;
    Matrix x(n, d);
    fill_random(x, 99);
    const AttentionLayerWeights w = AttentionLayerWeights::random(d, 7);
    const Matrix ref =
        attention_layer_forward(x, x, w, /*heads=*/4, /*row_tile=*/0);
    const Matrix fused =
        attention_layer_forward(x, x, w, /*heads=*/4, /*row_tile=*/16);
    EXPECT_LT(ref.max_abs_diff(fused), 1e-4f);
}

TEST(AttentionKernels, LayerForwardCrossAttention)
{
    Matrix xq(24, 32);
    Matrix xkv(80, 32);
    fill_random(xq, 1);
    fill_random(xkv, 2);
    const AttentionLayerWeights w = AttentionLayerWeights::random(32, 3);
    const Matrix ref =
        attention_layer_forward(xq, xkv, w, 4, 0);
    const Matrix fused = attention_layer_forward(xq, xkv, w, 4, 8);
    ASSERT_EQ(ref.rows(), 24u);
    ASSERT_EQ(ref.cols(), 32u);
    EXPECT_LT(ref.max_abs_diff(fused), 1e-4f);
}

TEST(AttentionKernels, SplitHeadSlicesColumns)
{
    Matrix x(2, 8);
    for (std::size_t c = 0; c < 8; ++c) {
        x.at(0, c) = static_cast<float>(c);
    }
    const Matrix h1 = split_head(x, 4, 1);
    ASSERT_EQ(h1.cols(), 2u);
    EXPECT_FLOAT_EQ(h1.at(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(h1.at(0, 1), 3.0f);
    EXPECT_THROW(split_head(x, 4, 4), Error);
    EXPECT_THROW(split_head(x, 3, 0), Error);
}

TEST(AttentionKernels, ShapeValidation)
{
    EXPECT_THROW(
        attention_reference(Matrix(4, 8), Matrix(4, 16), Matrix(4, 8)),
        Error);
    EXPECT_THROW(
        attention_flat(Matrix(4, 8), Matrix(6, 8), Matrix(4, 8), 2),
        Error);
    EXPECT_THROW(
        attention_flat(Matrix(4, 8), Matrix(4, 8), Matrix(4, 8), 0),
        Error);
}

} // namespace
} // namespace flat

/**
 * @file
 * Parity contract of the online (streaming) softmax against the
 * two-pass reference: single-block runs are bit-identical, multi-block
 * runs are ULP-bounded, and the flash attention kernel built on the
 * recurrence matches the reference attention to a tight relative
 * tolerance across the golden-catalog shapes.
 */
#include "kernels/online_softmax.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "kernels/attention.h"
#include "kernels/softmax.h"

namespace flat {
namespace {

/** ULP distance between two finite floats of the same sign. */
std::int64_t
ulp_distance(float a, float b)
{
    std::int32_t ia;
    std::int32_t ib;
    static_assert(sizeof(float) == sizeof(std::int32_t));
    std::memcpy(&ia, &a, sizeof(a));
    std::memcpy(&ib, &b, sizeof(b));
    if (ia < 0) {
        ia = std::numeric_limits<std::int32_t>::min() - ia;
    }
    if (ib < 0) {
        ib = std::numeric_limits<std::int32_t>::min() - ib;
    }
    return std::llabs(static_cast<std::int64_t>(ia) -
                      static_cast<std::int64_t>(ib));
}

TEST(OnlineSoftmax, SingleBlockIsBitIdenticalToTwoPass)
{
    for (const std::size_t block : {std::size_t{0}, std::size_t{64},
                                    std::size_t{1000}}) {
        SCOPED_TRACE(block);
        Matrix reference(8, 64);
        fill_random(reference, 42);
        Matrix online = reference;
        softmax_rows(reference);
        online_softmax_rows(online, block); // >= width: one block
        for (std::size_t r = 0; r < online.rows(); ++r) {
            for (std::size_t c = 0; c < online.cols(); ++c) {
                ASSERT_EQ(online.at(r, c), reference.at(r, c))
                    << "row " << r << " col " << c;
            }
        }
    }
}

TEST(OnlineSoftmax, SingleBlockCausalIsBitIdenticalToTwoPass)
{
    Matrix reference(8, 32);
    fill_random(reference, 7);
    Matrix online = reference;
    softmax_rows_causal(reference, /*row_offset=*/4);
    online_softmax_rows_causal(online, 4, /*col_block=*/0);
    for (std::size_t r = 0; r < online.rows(); ++r) {
        for (std::size_t c = 0; c < online.cols(); ++c) {
            ASSERT_EQ(online.at(r, c), reference.at(r, c))
                << "row " << r << " col " << c;
        }
    }
}

TEST(OnlineSoftmax, MultiBlockIsUlpBoundedAndNormalized)
{
    // Streaming in blocks takes the rescale path: each element accrues
    // at most a handful of extra roundings (one multiply per rescale),
    // so the result stays within a small ULP envelope of the two-pass
    // softmax and each row still sums to ~1.
    for (const std::size_t block : {std::size_t{1}, std::size_t{7},
                                    std::size_t{16}, std::size_t{33}}) {
        SCOPED_TRACE(block);
        Matrix reference(16, 128);
        fill_random(reference, 1234);
        Matrix online = reference;
        softmax_rows(reference);
        online_softmax_rows(online, block);
        for (std::size_t r = 0; r < online.rows(); ++r) {
            float sum = 0.0f;
            for (std::size_t c = 0; c < online.cols(); ++c) {
                EXPECT_LE(
                    ulp_distance(online.at(r, c), reference.at(r, c)),
                    64)
                    << "row " << r << " col " << c << " online "
                    << online.at(r, c) << " ref " << reference.at(r, c);
                sum += online.at(r, c);
            }
            EXPECT_NEAR(sum, 1.0f, 1e-5f);
        }
    }
}

TEST(OnlineSoftmax, StableWhenTheMaximumKeepsGrowing)
{
    // Ascending logits force a rescale at every block — the worst case
    // for the recurrence. Large magnitudes must not overflow.
    Matrix m(1, 64);
    for (std::size_t c = 0; c < 64; ++c) {
        m.at(0, c) = 100.0f + 10.0f * static_cast<float>(c);
    }
    Matrix reference = m;
    softmax_rows(reference);
    online_softmax_rows(m, /*col_block=*/4);
    float sum = 0.0f;
    for (std::size_t c = 0; c < 64; ++c) {
        ASSERT_FALSE(std::isnan(m.at(0, c)));
        EXPECT_NEAR(m.at(0, c), reference.at(0, c), 1e-6f);
        sum += m.at(0, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(OnlineSoftmax, CausalMultiBlockMasksAndNormalizes)
{
    Matrix m(6, 48);
    fill_random(m, 99);
    Matrix reference = m;
    softmax_rows_causal(reference, /*row_offset=*/2);
    online_softmax_rows_causal(m, 2, /*col_block=*/5);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const std::size_t valid = std::min<std::size_t>(48, 2 + r + 1);
        for (std::size_t c = valid; c < 48; ++c) {
            ASSERT_EQ(m.at(r, c), 0.0f) << "row " << r << " col " << c;
        }
        for (std::size_t c = 0; c < valid; ++c) {
            EXPECT_LE(ulp_distance(m.at(r, c), reference.at(r, c)), 64)
                << "row " << r << " col " << c;
        }
    }
}

/** allclose: |a - b| <= atol + rtol * |b| element-wise. */
void
expect_allclose(const Matrix& a, const Matrix& b, float atol, float rtol)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < a.cols(); ++c) {
            EXPECT_LE(std::fabs(a.at(r, c) - b.at(r, c)),
                      atol + rtol * std::fabs(b.at(r, c)))
                << "row " << r << " col " << c << ": " << a.at(r, c)
                << " vs " << b.at(r, c);
        }
    }
}

TEST(FlashAttentionKernel, MatchesReferenceAcrossShapes)
{
    // Golden-catalog-style shapes: (N, N_kv, dk) x (R, C) tilings,
    // causal and bidirectional. The flash kernel is numerically exact
    // up to fp32 rounding (rescales plus a different accumulation
    // order); the mixed tolerance is a few hundred ULP of the output
    // magnitude, far below any approximation error.
    struct Shape {
        std::size_t n, n_kv, dk, row_tile, col_tile;
    };
    const Shape shapes[] = {
        {64, 64, 32, 16, 16},  {64, 64, 32, 16, 0},
        {128, 128, 64, 32, 32}, {96, 192, 64, 32, 48},
        {33, 65, 16, 8, 9},     {128, 128, 64, 128, 128},
    };
    for (const Shape& s : shapes) {
        for (const bool causal : {false, true}) {
            if (causal && s.n != s.n_kv) {
                continue;
            }
            SCOPED_TRACE("n=" + std::to_string(s.n) +
                         " n_kv=" + std::to_string(s.n_kv) +
                         " R=" + std::to_string(s.row_tile) +
                         " C=" + std::to_string(s.col_tile) +
                         " causal=" + std::to_string(causal));
            Matrix q(s.n, s.dk);
            Matrix k(s.n_kv, s.dk);
            Matrix v(s.n_kv, s.dk);
            fill_random(q, 1);
            fill_random(k, 2);
            fill_random(v, 3);
            AttentionOptions options;
            options.causal = causal;
            const Matrix reference =
                attention_reference(q, k, v, options);
            const Matrix flash = attention_flash(
                q, k, v, s.row_tile, s.col_tile, options);
            expect_allclose(flash, reference, /*atol=*/1e-6f,
                            /*rtol=*/1e-4f);
        }
    }
}

TEST(FlashAttentionKernel, WholeRowBlockMatchesFlatTightly)
{
    // col_tile >= N_kv never rescales: the softmax recurrence is the
    // single-block case (bit-identical to the FLAT kernel's two-pass
    // softmax), so the outputs differ only by the A-side accumulation
    // order — flash normalizes after the P x V products, FLAT before —
    // which is a last-ULP effect, not the rescale path.
    Matrix q(64, 32);
    Matrix k(64, 32);
    Matrix v(64, 32);
    fill_random(q, 4);
    fill_random(k, 5);
    fill_random(v, 6);
    const Matrix flat = attention_flat(q, k, v, /*row_tile=*/16);
    const Matrix flash =
        attention_flash(q, k, v, /*row_tile=*/16, /*col_tile=*/0);
    expect_allclose(flash, flat, /*atol=*/1e-7f, /*rtol=*/1e-5f);
}

TEST(FlashAttentionKernel, IntermediateNeverTouchesOffchip)
{
    // The traffic contract mirroring the cost model: the [R, C] logits
    // block lives on-chip (register tier), so flash's off-chip traffic
    // is inputs + output only — strictly less than the baseline's,
    // which round-trips the whole [N, N_kv] intermediate.
    Matrix q(128, 64);
    Matrix k(128, 64);
    Matrix v(128, 64);
    fill_random(q, 7);
    fill_random(k, 8);
    fill_random(v, 9);
    TrafficMeter baseline_meter;
    attention_reference(q, k, v, {}, &baseline_meter);
    TrafficMeter flash_meter;
    attention_flash(q, k, v, 32, 32, {}, &flash_meter);
    EXPECT_LT(flash_meter.total_offchip(),
              baseline_meter.total_offchip());
    EXPECT_GT(flash_meter.total_onchip(), 0u);
}

} // namespace
} // namespace flat

#include "kernels/attention.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace flat {
namespace {

struct Inputs {
    Matrix q, k, v;
};

Inputs
make_inputs(std::size_t n, std::size_t dk, std::uint64_t seed)
{
    Inputs in{Matrix(n, dk), Matrix(n, dk), Matrix(n, dk)};
    fill_random(in.q, seed + 1);
    fill_random(in.k, seed + 2);
    fill_random(in.v, seed + 3);
    return in;
}

/** FLAT composed with local attention == masked reference. */
class LocalEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>>
{
};

TEST_P(LocalEquivalence, FusedEqualsReference)
{
    const auto [n, window, row_tile] = GetParam();
    const Inputs in = make_inputs(n, 16, 42);
    const Matrix ref =
        attention_local_reference(in.q, in.k, in.v, window);
    const Matrix fused =
        attention_flat_local(in.q, in.k, in.v, row_tile, window);
    EXPECT_LT(ref.max_abs_diff(fused), 1e-5f)
        << "N=" << n << " w=" << window << " R=" << row_tile;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LocalEquivalence,
    ::testing::Combine(::testing::Values(33, 96, 200),
                       ::testing::Values(1, 8, 31),
                       ::testing::Values(1, 16, 64)));

TEST(LocalAttention, HugeWindowEqualsDenseAttention)
{
    const Inputs in = make_inputs(64, 16, 7);
    const Matrix dense = attention_reference(in.q, in.k, in.v);
    const Matrix local =
        attention_local_reference(in.q, in.k, in.v, 1000);
    const Matrix fused_local =
        attention_flat_local(in.q, in.k, in.v, 16, 1000);
    EXPECT_LT(dense.max_abs_diff(local), 1e-5f);
    EXPECT_LT(dense.max_abs_diff(fused_local), 1e-5f);
}

TEST(LocalAttention, WindowZeroIsSelfOnly)
{
    // Window 0: each row attends only to itself -> output = V row.
    const Inputs in = make_inputs(8, 4, 3);
    const Matrix out = attention_flat_local(in.q, in.k, in.v, 4, 0);
    EXPECT_LT(out.max_abs_diff(in.v), 1e-6f);
}

TEST(LocalAttention, CausalWindowMatchesReference)
{
    AttentionOptions options;
    options.causal = true;
    const Inputs in = make_inputs(50, 8, 5);
    const Matrix ref =
        attention_local_reference(in.q, in.k, in.v, 8, options);
    const Matrix fused =
        attention_flat_local(in.q, in.k, in.v, 16, 8, options);
    EXPECT_LT(ref.max_abs_diff(fused), 1e-5f);
}

TEST(LocalAttention, FlatLocalKvTrafficIndependentOfN)
{
    // The composition claim (§7): with a fixed window, FLAT-local moves
    // O(N * w/R) K/V bytes — per-token traffic independent of N.
    const std::size_t window = 16;
    const std::size_t row_tile = 16;
    const auto kv_bytes = [&](std::size_t n) {
        const Inputs in = make_inputs(n, 16, 9);
        TrafficMeter meter;
        attention_flat_local(in.q, in.k, in.v, row_tile, window, {},
                             &meter);
        return meter.offchip_bytes("K") + meter.offchip_bytes("V");
    };
    const std::uint64_t at_256 = kv_bytes(256);
    const std::uint64_t at_512 = kv_bytes(512);
    // Linear in N (doubling), not quadratic.
    EXPECT_NEAR(static_cast<double>(at_512) / at_256, 2.0, 0.1);
}

TEST(LocalAttention, DenseFlatKvTrafficIsQuadraticWithoutResidency)
{
    // Contrast: if K/V had to be re-streamed per chunk (no residency),
    // dense FLAT K/V traffic grows ~quadratically. The kernel models
    // residency (reads K/V once), so this checks the *local* variant
    // is strictly cheaper per pass instead.
    const std::size_t n = 512;
    const Inputs in = make_inputs(n, 16, 11);
    TrafficMeter dense_meter;
    attention_flat(in.q, in.k, in.v, 32, {}, &dense_meter);
    TrafficMeter local_meter;
    attention_flat_local(in.q, in.k, in.v, 32, 16, {}, &local_meter);
    // Dense stages K+V once: 2*N*dk floats; local touches only window
    // slices per pass: 16 passes x (R+2w) rows.
    EXPECT_GT(local_meter.offchip_bytes("K") +
                  local_meter.offchip_bytes("V"),
              0u);
    EXPECT_LT(local_meter.onchip_bytes("intermediate"),
              dense_meter.onchip_bytes("intermediate"));
}

TEST(LocalAttention, IntermediateStaysOnChip)
{
    const Inputs in = make_inputs(128, 16, 13);
    TrafficMeter meter;
    attention_flat_local(in.q, in.k, in.v, 32, 8, {}, &meter);
    EXPECT_EQ(meter.offchip_bytes("intermediate"), 0u);
    EXPECT_GT(meter.onchip_bytes("intermediate"), 0u);
}

TEST(LocalAttention, RejectsCrossAttention)
{
    EXPECT_THROW(attention_local_reference(Matrix(8, 4), Matrix(16, 4),
                                           Matrix(16, 4), 2),
                 Error);
    EXPECT_THROW(attention_flat_local(Matrix(8, 4), Matrix(16, 4),
                                      Matrix(16, 4), 4, 2),
                 Error);
}

} // namespace
} // namespace flat

#include "kernels/softmax.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/status.h"

namespace flat {
namespace {

TEST(Softmax, RowsSumToOne)
{
    Matrix m(4, 16);
    fill_random(m, 11);
    softmax_rows(m);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        float sum = 0.0f;
        for (std::size_t c = 0; c < m.cols(); ++c) {
            sum += m.at(r, c);
            EXPECT_GE(m.at(r, c), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(Softmax, NumericallyStableForLargeLogits)
{
    Matrix m(1, 4);
    m.at(0, 0) = 1000.0f;
    m.at(0, 1) = 999.0f;
    m.at(0, 2) = -1000.0f;
    m.at(0, 3) = 0.0f;
    softmax_rows(m);
    EXPECT_FALSE(std::isnan(m.at(0, 0)));
    EXPECT_GT(m.at(0, 0), m.at(0, 1));
    EXPECT_NEAR(m.at(0, 2), 0.0f, 1e-6f);
}

TEST(Softmax, UniformLogitsUniformProbabilities)
{
    Matrix m(1, 8);
    for (std::size_t c = 0; c < 8; ++c) {
        m.at(0, c) = 3.5f;
    }
    softmax_rows(m);
    for (std::size_t c = 0; c < 8; ++c) {
        EXPECT_NEAR(m.at(0, c), 0.125f, 1e-6f);
    }
}

TEST(Softmax, RangeVariantOnlyTouchesSelectedRows)
{
    Matrix m(4, 4);
    fill_random(m, 5);
    Matrix copy = m;
    softmax_rows(m, 1, 3);
    for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_EQ(m.at(0, c), copy.at(0, c));
        EXPECT_EQ(m.at(3, c), copy.at(3, c));
    }
    float sum = 0.0f;
    for (std::size_t c = 0; c < 4; ++c) {
        sum += m.at(1, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(Softmax, RangeValidation)
{
    Matrix m(4, 4);
    EXPECT_THROW(softmax_rows(m, 3, 2), Error);
    EXPECT_THROW(softmax_rows(m, 0, 5), Error);
}

TEST(Softmax, CausalMasksFuturePositions)
{
    Matrix m(3, 5);
    fill_random(m, 9);
    softmax_rows_causal(m, /*row_offset=*/0);
    // Row r may only attend to columns <= r.
    EXPECT_EQ(m.at(0, 1), 0.0f);
    EXPECT_EQ(m.at(0, 4), 0.0f);
    EXPECT_EQ(m.at(1, 2), 0.0f);
    EXPECT_GT(m.at(2, 2), 0.0f);
    EXPECT_EQ(m.at(2, 3), 0.0f);
    for (std::size_t r = 0; r < 3; ++r) {
        float sum = 0.0f;
        for (std::size_t c = 0; c < 5; ++c) {
            sum += m.at(r, c);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(Softmax, CausalRowOffsetShiftsMask)
{
    Matrix m(2, 6);
    fill_random(m, 10);
    softmax_rows_causal(m, /*row_offset=*/3);
    // Local row 0 is global row 3: columns 0..3 visible.
    EXPECT_GT(m.at(0, 3), 0.0f);
    EXPECT_EQ(m.at(0, 4), 0.0f);
    EXPECT_GT(m.at(1, 4), 0.0f);
    EXPECT_EQ(m.at(1, 5), 0.0f);
}

TEST(Softmax, ScaleMultipliesEveryElement)
{
    Matrix m(2, 2);
    m.at(0, 0) = 1.0f;
    m.at(1, 1) = -2.0f;
    scale(m, 0.5f);
    EXPECT_FLOAT_EQ(m.at(0, 0), 0.5f);
    EXPECT_FLOAT_EQ(m.at(1, 1), -1.0f);
}

} // namespace
} // namespace flat

#include "kernels/layer_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/status.h"
#include "kernels/softmax.h"

namespace flat {
namespace {

TEST(LayerNorm, NormalizesEachRow)
{
    Matrix x(4, 64);
    fill_random(x, 7);
    scale(x, 5.0f);
    std::vector<float> gamma(64, 1.0f);
    std::vector<float> beta(64, 0.0f);
    layernorm_rows(x, gamma, beta);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        float mean = 0.0f;
        float var = 0.0f;
        for (std::size_t c = 0; c < 64; ++c) {
            mean += x.at(r, c);
        }
        mean /= 64.0f;
        for (std::size_t c = 0; c < 64; ++c) {
            var += (x.at(r, c) - mean) * (x.at(r, c) - mean);
        }
        var /= 64.0f;
        EXPECT_NEAR(mean, 0.0f, 1e-4f);
        EXPECT_NEAR(var, 1.0f, 1e-2f);
    }
}

TEST(LayerNorm, AffineParametersApplied)
{
    Matrix x(1, 4);
    fill_random(x, 3);
    std::vector<float> gamma(4, 2.0f);
    std::vector<float> beta(4, 1.0f);
    Matrix reference = x;
    std::vector<float> unit_gamma(4, 1.0f);
    std::vector<float> zero_beta(4, 0.0f);
    layernorm_rows(reference, unit_gamma, zero_beta);
    layernorm_rows(x, gamma, beta);
    for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_NEAR(x.at(0, c), 2.0f * reference.at(0, c) + 1.0f, 1e-5f);
    }
}

TEST(LayerNorm, RejectsWrongParameterSize)
{
    Matrix x(2, 8);
    std::vector<float> bad(4, 1.0f);
    std::vector<float> good(8, 0.0f);
    EXPECT_THROW(layernorm_rows(x, bad, good), Error);
}

TEST(LayerNorm, ConstantRowStaysFinite)
{
    Matrix x(1, 16);
    for (std::size_t c = 0; c < 16; ++c) {
        x.at(0, c) = 3.0f;
    }
    std::vector<float> gamma(16, 1.0f);
    std::vector<float> beta(16, 0.0f);
    layernorm_rows(x, gamma, beta);
    for (std::size_t c = 0; c < 16; ++c) {
        EXPECT_TRUE(std::isfinite(x.at(0, c)));
        EXPECT_NEAR(x.at(0, c), 0.0f, 1e-2f);
    }
}

TEST(Gelu, KnownValues)
{
    Matrix x(1, 3);
    x.at(0, 0) = 0.0f;
    x.at(0, 1) = 10.0f;
    x.at(0, 2) = -10.0f;
    gelu(x);
    EXPECT_FLOAT_EQ(x.at(0, 0), 0.0f);
    EXPECT_NEAR(x.at(0, 1), 10.0f, 1e-3f);  // ~identity for large +x
    EXPECT_NEAR(x.at(0, 2), 0.0f, 1e-3f);   // ~zero for large -x
}

TEST(Gelu, BoundedBySignRangeAndMonotoneOnPositives)
{
    // GELU is NOT monotone on negatives (it dips to ~-0.17 near
    // x = -0.75); the true properties: x <= gelu(x) <= 0 for x < 0,
    // 0 <= gelu(x) <= x for x >= 0, monotone for x >= 0.
    Matrix x(1, 41);
    for (int i = 0; i <= 40; ++i) {
        x.at(0, i) = -2.0f + 0.1f * i;
    }
    Matrix original = x;
    gelu(x);
    for (int i = 0; i <= 40; ++i) {
        const float in = original.at(0, i);
        const float out = x.at(0, i);
        if (in < 0.0f) {
            EXPECT_GE(out, in - 1e-6f) << "x=" << in;
            EXPECT_LE(out, 1e-6f) << "x=" << in;
        } else {
            EXPECT_GE(out, -1e-6f) << "x=" << in;
            EXPECT_LE(out, in + 1e-6f) << "x=" << in;
        }
        if (i > 0 && original.at(0, i - 1) >= 0.0f) {
            EXPECT_GE(out, x.at(0, i - 1) - 1e-6f);
        }
    }
}

TEST(Relu, ClampsNegatives)
{
    Matrix x(1, 3);
    x.at(0, 0) = -1.0f;
    x.at(0, 1) = 0.0f;
    x.at(0, 2) = 2.0f;
    relu(x);
    EXPECT_FLOAT_EQ(x.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(x.at(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(x.at(0, 2), 2.0f);
}

TEST(Residual, AddInplace)
{
    Matrix a(2, 2);
    Matrix b(2, 2);
    a.at(0, 0) = 1.0f;
    b.at(0, 0) = 2.0f;
    add_inplace(a, b);
    EXPECT_FLOAT_EQ(a.at(0, 0), 3.0f);
    EXPECT_THROW(add_inplace(a, Matrix(2, 3)), Error);
}

TEST(Bias, AddedToEveryRow)
{
    Matrix x(3, 2);
    std::vector<float> bias{1.0f, -1.0f};
    add_bias(x, bias);
    for (std::size_t r = 0; r < 3; ++r) {
        EXPECT_FLOAT_EQ(x.at(r, 0), 1.0f);
        EXPECT_FLOAT_EQ(x.at(r, 1), -1.0f);
    }
    EXPECT_THROW(add_bias(x, std::vector<float>(3, 0.0f)), Error);
}

} // namespace
} // namespace flat

/**
 * @file
 * Scale-out model contract: sharding arithmetic, D=1 bit-identity with
 * the single-device path, collective phases landing in the one
 * arbitration engine (trace totals == model cycles exactly), link-bound
 * attribution, and the fabric term in the energy ledger.
 */
#include "scaleout/scaleout_model.h"

#include <gtest/gtest.h>

#include "common/status.h"
#include "costmodel/trace.h"
#include "energy/energy_model.h"

namespace flat {
namespace {

AttentionDims
dims(std::uint64_t n)
{
    AttentionDims d;
    d.batch = 8;
    d.heads = 16;
    d.q_len = n;
    d.kv_len = n;
    d.head_dim = 64;
    return d;
}

FusedDataflow
flat_r(std::uint64_t rows)
{
    FusedDataflow df;
    df.cross = {Granularity::kRow, rows};
    df.l2_logit = {128, 64, 128};
    df.l2_attend = {128, 128, 64};
    return df;
}

ScaleOutConfig
fabric(std::uint32_t devices, ShardAxis axis,
       LinkTopology topo = LinkTopology::kRing)
{
    ScaleOutConfig f;
    f.devices = devices;
    f.axis = axis;
    f.topology = topo;
    f.link_bw = 300e9;
    f.link_latency_s = 700e-9;
    return f;
}

TEST(ShardDims, BatchAndHeadCeilSplit)
{
    const AttentionDims d = dims(1024);
    const AttentionDims b3 =
        shard_attention_dims(d, ShardAxis::kBatch, 3);
    EXPECT_EQ(b3.batch, 3u); // ceil(8/3)
    EXPECT_EQ(b3.heads, d.heads);

    const AttentionDims h4 = shard_attention_dims(d, ShardAxis::kHead, 4);
    EXPECT_EQ(h4.heads, 4u);
    EXPECT_EQ(h4.batch, d.batch);
}

TEST(ShardDims, SequenceShardsQueriesKeepsKv)
{
    const AttentionDims s4 =
        shard_attention_dims(dims(1024), ShardAxis::kSequence, 4);
    EXPECT_EQ(s4.q_len, 256u);
    EXPECT_EQ(s4.kv_len, 1024u);
}

TEST(ShardDims, InfeasibleSplitsThrow)
{
    EXPECT_THROW(shard_attention_dims(dims(64), ShardAxis::kBatch, 16),
                 Error);
    EXPECT_THROW(shard_attention_dims(dims(64), ShardAxis::kHead, 32),
                 Error);
    EXPECT_THROW(
        shard_attention_dims(dims(8), ShardAxis::kSequence, 16), Error);
    EXPECT_THROW(shard_attention_dims(dims(64), ShardAxis::kAuto, 2),
                 Error);
}

TEST(ScaleOutModel, SingleDeviceIsBitIdentical)
{
    const AttentionDims d = dims(2048);
    const FusedDataflow df = flat_r(64);
    const AccelConfig accel = edge_accel();

    const ScaleOutCost so =
        model_scaleout_attention(accel, d, df, fabric(1, ShardAxis::kAuto));
    const TimelineResult single = flat_attention_timeline(accel, d, df);

    EXPECT_EQ(so.cycles, single.cycles); // bitwise, not approximate
    EXPECT_EQ(so.timeline.phases.size(), single.phases.size());
    EXPECT_EQ(so.collective_phases, 0u);
    EXPECT_EQ(so.link_bytes_per_device, 0.0);
    EXPECT_EQ(so.timeline.activity.traffic.total_link(), 0.0);
    EXPECT_EQ(so.exposed_collective_cycles, 0.0);
}

TEST(ScaleOutModel, BatchShardingEmitsNoCollectives)
{
    const ScaleOutCost so = model_scaleout_attention(
        edge_accel(), dims(1024), flat_r(64),
        fabric(4, ShardAxis::kBatch));
    EXPECT_EQ(so.collective_phases, 0u);
    EXPECT_EQ(so.link_bytes_per_device, 0.0);
    EXPECT_EQ(so.device_dims.batch, 2u);
    EXPECT_GT(so.cycles, 0.0);
}

TEST(ScaleOutModel, HeadShardingGathersOutputInEpilogue)
{
    const AttentionDims d = dims(1024);
    const ScaleOutCost so = model_scaleout_attention(
        edge_accel(), d, flat_r(64), fabric(4, ShardAxis::kHead));
    EXPECT_EQ(so.collective_phases, 1u);
    EXPECT_GT(so.exposed_collective_cycles, 0.0);
    EXPECT_GT(so.link_bytes_per_device, 0.0);

    // The epilogue group is collective-only and comes last.
    const GroupTiming& last = so.timeline.groups.back();
    ASSERT_EQ(last.phase_indices.size(), 1u);
    EXPECT_EQ(so.timeline.phases[last.phase_indices[0]].stage,
              StageTag::kCollective);
    EXPECT_EQ(last.bound_by, BoundBy::kLink);
}

TEST(ScaleOutModel, SequenceShardingGathersKvAndRescales)
{
    const ScaleOutCost so = model_scaleout_attention(
        edge_accel(), dims(1024), flat_r(64),
        fabric(4, ShardAxis::kSequence));
    ASSERT_EQ(so.collective_phases, 2u);

    // The KV gather shares the steady group with compute; only the
    // tiny stat rescale is exposed.
    EXPECT_GT(so.overlapped_link_cycles, 0.0);
    EXPECT_GT(so.exposed_collective_cycles, 0.0);
    EXPECT_LT(so.exposed_collective_cycles, so.cycles);
}

TEST(ScaleOutModel, TraceTotalsEqualModelCycles)
{
    for (const ShardAxis axis :
         {ShardAxis::kBatch, ShardAxis::kHead, ShardAxis::kSequence}) {
        const ScaleOutCost so = model_scaleout_attention(
            edge_accel(), dims(1024), flat_r(64), fabric(4, axis));
        const ExecutionTrace trace = trace_from_timeline(
            so.timeline, "scaleout-flat", "df", 1.0);
        EXPECT_EQ(trace.total_cycles, so.cycles)
            << "axis " << to_string(axis);
        if (axis == ShardAxis::kSequence) {
            std::size_t collectives = 0;
            for (const TracePhase& phase : trace.phases) {
                if (phase.stage == "collective") {
                    ++collectives;
                }
            }
            EXPECT_EQ(collectives, 2u);
        }
    }
}

TEST(ScaleOutModel, StarvedLinkBecomesTheBound)
{
    ScaleOutConfig f = fabric(8, ShardAxis::kSequence);
    f.link_bw = 1e9; // 1 GB/s: the fabric cannot keep up
    const ScaleOutCost so = model_scaleout_attention(
        edge_accel(), dims(2048), flat_r(64), f);
    EXPECT_EQ(so.timeline.bound_by, BoundBy::kLink);
    EXPECT_GT(so.overlapped_link_cycles, 0.0);
}

TEST(ScaleOutModel, FasterLinkNeverSlower)
{
    ScaleOutConfig slow = fabric(4, ShardAxis::kSequence);
    slow.link_bw = 10e9;
    ScaleOutConfig fast = slow;
    fast.link_bw = 600e9;
    const AttentionDims d = dims(2048);
    const ScaleOutCost c_slow =
        model_scaleout_attention(edge_accel(), d, flat_r(64), slow);
    const ScaleOutCost c_fast =
        model_scaleout_attention(edge_accel(), d, flat_r(64), fast);
    EXPECT_LE(c_fast.cycles, c_slow.cycles);
}

TEST(ScaleOutModel, LinkTrafficWithoutBandwidthThrows)
{
    // Emitting collective phases but evaluating without a link BW is a
    // configuration error, not silent free communication.
    ScaleOutConfig f = fabric(4, ShardAxis::kHead);
    const AccelConfig accel = edge_accel();
    Phase phase = collective_phase("gather", 9,
                                   CollectiveKind::kAllGather, f, accel,
                                   1e6);
    EXPECT_THROW(evaluate_timeline({phase}, accel), Error);
}

TEST(ScaleOutModel, LinkTrafficLandsInEnergyLedger)
{
    const ScaleOutCost so = model_scaleout_attention(
        edge_accel(), dims(1024), flat_r(64),
        fabric(4, ShardAxis::kSequence));
    const EnergyTable table = EnergyTable::for_accel(edge_accel());
    const EnergyBreakdown energy =
        estimate_energy(table, so.timeline.activity);
    EXPECT_GT(energy.link_j, 0.0);
    EXPECT_DOUBLE_EQ(energy.link_j,
                     so.link_bytes_per_device * table.link_pj_per_byte *
                         1e-12);
    EXPECT_GT(energy.total(), energy.link_j);
}

TEST(ScaleOutModel, AutoAxisRejectedAtModelLevel)
{
    EXPECT_THROW(model_scaleout_attention(edge_accel(), dims(1024),
                                          flat_r(64),
                                          fabric(4, ShardAxis::kAuto)),
                 Error);
}

} // namespace
} // namespace flat

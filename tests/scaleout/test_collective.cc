/**
 * @file
 * Collective cost-model contract: bandwidth-optimal byte volumes, the
 * ring/tree step counts, and the translation into timeline phases.
 */
#include "scaleout/collective.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace flat {
namespace {

TEST(Collective, SingleDeviceIsFree)
{
    for (const CollectiveKind kind :
         {CollectiveKind::kAllGather, CollectiveKind::kAllReduce}) {
        for (const LinkTopology topo :
             {LinkTopology::kRing, LinkTopology::kTree}) {
            const CollectiveCost c =
                model_collective(kind, topo, 1, 4096.0);
            EXPECT_EQ(c.steps, 0.0);
            EXPECT_EQ(c.bytes_in, 0.0);
            EXPECT_EQ(c.bytes_out, 0.0);
        }
    }
}

TEST(Collective, RingAllGatherIsBandwidthOptimal)
{
    const double s = 1024.0 * 1024.0;
    const CollectiveCost c = model_collective(
        CollectiveKind::kAllGather, LinkTopology::kRing, 8, s);
    EXPECT_DOUBLE_EQ(c.steps, 7.0);
    EXPECT_DOUBLE_EQ(c.bytes_in, s * 7.0 / 8.0);
    EXPECT_DOUBLE_EQ(c.bytes_out, c.bytes_in);
}

TEST(Collective, TreeAllGatherUsesLogSteps)
{
    const double s = 4096.0;
    const CollectiveCost ring = model_collective(
        CollectiveKind::kAllGather, LinkTopology::kRing, 16, s);
    const CollectiveCost tree = model_collective(
        CollectiveKind::kAllGather, LinkTopology::kTree, 16, s);
    EXPECT_DOUBLE_EQ(tree.steps, 4.0); // log2(16)
    EXPECT_DOUBLE_EQ(ring.steps, 15.0);
    // Same bandwidth-optimal volume on both topologies.
    EXPECT_DOUBLE_EQ(tree.bytes_in, ring.bytes_in);
}

TEST(Collective, TreeStepsRoundUpForNonPowerOfTwo)
{
    const CollectiveCost c = model_collective(
        CollectiveKind::kAllGather, LinkTopology::kTree, 5, 1.0);
    EXPECT_DOUBLE_EQ(c.steps, 3.0); // ceil(log2(5))
}

TEST(Collective, AllReduceDoublesGatherCost)
{
    const double s = 65536.0;
    const CollectiveCost gather = model_collective(
        CollectiveKind::kAllGather, LinkTopology::kRing, 4, s);
    const CollectiveCost reduce = model_collective(
        CollectiveKind::kAllReduce, LinkTopology::kRing, 4, s);
    EXPECT_DOUBLE_EQ(reduce.steps, 2.0 * gather.steps);
    EXPECT_DOUBLE_EQ(reduce.bytes_in, 2.0 * gather.bytes_in);
}

TEST(Collective, RejectsNegativeTensor)
{
    EXPECT_THROW(model_collective(CollectiveKind::kAllGather,
                                  LinkTopology::kRing, 4, -1.0),
                 Error);
}

TEST(CollectivePhase, CarriesLinkBytesAndHopLatency)
{
    ScaleOutConfig fabric;
    fabric.devices = 4;
    fabric.topology = LinkTopology::kRing;
    fabric.link_bw = 100e9;
    fabric.link_latency_s = 1e-6;

    const AccelConfig accel = edge_accel(); // 1 GHz
    const double s = 1e6;
    const Phase phase =
        collective_phase("kv gather", 3, CollectiveKind::kAllGather,
                         fabric, accel, s);

    EXPECT_EQ(phase.stage, StageTag::kCollective);
    EXPECT_EQ(phase.group, 3);
    EXPECT_DOUBLE_EQ(phase.activity.traffic.link_in, s * 3.0 / 4.0);
    EXPECT_DOUBLE_EQ(phase.activity.traffic.link_out, s * 3.0 / 4.0);
    // 3 ring steps x 1 us x 1 GHz = 3000 cycles of exposed hops.
    EXPECT_DOUBLE_EQ(phase.link_latency_cycles, 3000.0);
    // No memory-system traffic: the fabric lane is its own resource.
    EXPECT_EQ(phase.activity.traffic.total_dram(), 0.0);
    EXPECT_EQ(phase.activity.traffic.total_sg(), 0.0);
}

TEST(CollectivePhase, StageTagHasStableName)
{
    EXPECT_STREQ(to_string(StageTag::kCollective), "collective");
    EXPECT_STREQ(to_string(CollectiveKind::kAllGather), "all-gather");
    EXPECT_STREQ(to_string(CollectiveKind::kAllReduce), "all-reduce");
}

} // namespace
} // namespace flat

/**
 * @file
 * Determinism contract of the scale-out DSE: the (axis x devices)
 * sweep must return byte-identical winner lists for any thread count
 * and with pruning on or off — the inner search_attention inherits the
 * PR-1 deterministic reduction, and the outer enumeration is serial.
 */
#include "scaleout/scaleout_search.h"

#include <gtest/gtest.h>

#include <vector>

namespace flat {
namespace {

AttentionDims
dims()
{
    AttentionDims d;
    d.batch = 8;
    d.heads = 16;
    d.q_len = 512;
    d.kv_len = 512;
    d.head_dim = 64;
    return d;
}

ScaleOutSearchOptions
options(unsigned threads, bool prune)
{
    ScaleOutSearchOptions opt;
    opt.attention.quick = true;
    opt.attention.threads = threads;
    opt.attention.prune = prune;
    opt.fabric.axis = ShardAxis::kAuto;
    opt.fabric.link_bw = 200e9;
    opt.device_counts = {1, 2, 4, 8};
    return opt;
}

void
expect_same_points(const ScaleOutSearchResult& reference,
                   const ScaleOutSearchResult& candidate,
                   const char* what)
{
    ASSERT_EQ(reference.found, candidate.found) << what;
    ASSERT_EQ(reference.points.size(), candidate.points.size()) << what;
    for (std::size_t i = 0; i < reference.points.size(); ++i) {
        const ScaleOutSearchPoint& r = reference.points[i];
        const ScaleOutSearchPoint& c = candidate.points[i];
        EXPECT_EQ(r.cost.axis, c.cost.axis) << what << " point " << i;
        EXPECT_EQ(r.cost.devices, c.cost.devices)
            << what << " point " << i;
        // Byte-identical winners: tag, cycles and energy compare with
        // operator== — no tolerance.
        EXPECT_EQ(r.dataflow.tag(), c.dataflow.tag())
            << what << " point " << i;
        EXPECT_EQ(r.cost.cycles, c.cost.cycles) << what << " point " << i;
        EXPECT_EQ(r.total_energy_j, c.total_energy_j)
            << what << " point " << i;
        // The space size is thread-invariant even when the
        // evaluated/pruned split shifts.
        EXPECT_EQ(r.evaluated + r.pruned, c.evaluated + c.pruned)
            << what << " point " << i;
    }
    EXPECT_EQ(reference.best.dataflow.tag(), candidate.best.dataflow.tag())
        << what;
    EXPECT_EQ(reference.best.cost.cycles, candidate.best.cost.cycles)
        << what;
    EXPECT_EQ(reference.best.cost.axis, candidate.best.cost.axis) << what;
    EXPECT_EQ(reference.best.cost.devices, candidate.best.cost.devices)
        << what;
}

TEST(ScaleOutDeterminism, ThreadCountInvariant)
{
    const ScaleOutSearchResult serial =
        search_scaleout(edge_accel(), dims(), options(1, true));
    ASSERT_TRUE(serial.found);
    EXPECT_FALSE(serial.points.empty());

    for (const unsigned threads : {2u, 8u}) {
        const ScaleOutSearchResult parallel =
            search_scaleout(edge_accel(), dims(), options(threads, true));
        expect_same_points(serial, parallel, "threads");
    }
}

TEST(ScaleOutDeterminism, PruneInvariant)
{
    const ScaleOutSearchResult unpruned =
        search_scaleout(edge_accel(), dims(), options(1, false));
    const ScaleOutSearchResult pruned =
        search_scaleout(edge_accel(), dims(), options(8, true));
    expect_same_points(unpruned, pruned, "prune");
}

TEST(ScaleOutDeterminism, ExploreOverShardedDimsIsThreadInvariant)
{
    // explore_attention on the sharded per-device dims (the inner leg
    // of the scale-out DSE) must return the same point sequence for
    // any thread count and prune setting.
    for (const ShardAxis axis :
         {ShardAxis::kBatch, ShardAxis::kHead, ShardAxis::kSequence}) {
        const AttentionDims device_dims =
            shard_attention_dims(dims(), axis, 4);

        AttentionSearchOptions opt;
        opt.quick = true;
        opt.threads = 1;
        opt.prune = false;
        const std::vector<DsePoint> reference =
            explore_attention(edge_accel(), device_dims, opt);
        ASSERT_FALSE(reference.empty());

        opt.threads = 8;
        opt.prune = true;
        const std::vector<DsePoint> candidate =
            explore_attention(edge_accel(), device_dims, opt);

        ASSERT_EQ(reference.size(), candidate.size())
            << to_string(axis);
        for (std::size_t i = 0; i < reference.size(); ++i) {
            EXPECT_EQ(reference[i].dataflow.tag(),
                      candidate[i].dataflow.tag())
                << to_string(axis) << " point " << i;
            EXPECT_EQ(reference[i].cost.cycles, candidate[i].cost.cycles)
                << to_string(axis) << " point " << i;
            EXPECT_EQ(reference[i].energy_j, candidate[i].energy_j)
                << to_string(axis) << " point " << i;
        }
    }
}

TEST(ScaleOutDeterminism, BestIsOnTheParetoOfItsOwnPoints)
{
    const ScaleOutSearchResult result =
        search_scaleout(edge_accel(), dims(), options(4, true));
    ASSERT_TRUE(result.found);
    for (const ScaleOutSearchPoint& point : result.points) {
        EXPECT_LE(result.best.objective_value(Objective::kRuntime),
                  point.objective_value(Objective::kRuntime));
    }
}

} // namespace
} // namespace flat

/**
 * @file
 * Network-on-chip models for operand distribution and output reduction.
 *
 * The paper (§5.3.1) models different distribution/reduction NoC choices
 * (systolic, tree, crossbar) that trade off bandwidth against the time to
 * fill/drain the PE array when switching tiles. We capture exactly that
 * first-order effect: a per-tile-switch latency (cold start + tail) and a
 * per-element streaming cost expressed as elements/cycle into the array.
 */
#ifndef FLAT_ARCH_NOC_H
#define FLAT_ARCH_NOC_H

#include <cstdint>
#include <string>

namespace flat {

/** NoC family used for operand distribution or output collection. */
enum class NocKind {
    kSystolic, ///< store-and-forward mesh links (TPU-style)
    kTree,     ///< fat-tree distribution / adder-tree reduction (MAERI-style)
    kCrossbar, ///< all-to-all switch (small arrays only)
};

std::string to_string(NocKind kind);

/**
 * Latency/bandwidth model of one NoC instance attached to a PE array.
 *
 * All quantities are in cycles or elements/cycle; the caller converts to
 * seconds with the accelerator clock.
 */
class NocModel
{
  public:
    /**
     * @param kind NoC family.
     * @param rows PE array rows this NoC spans.
     * @param cols PE array columns this NoC spans.
     */
    NocModel(NocKind kind, std::uint32_t rows, std::uint32_t cols);

    NocKind kind() const { return kind_; }

    /**
     * Cycles to fill the array when a new tile is mapped (cold start).
     * Systolic arrays pay the wavefront skew (rows + cols); trees pay the
     * pipeline depth of the levels; crossbars a small constant.
     */
    std::uint64_t fill_latency() const;

    /** Cycles to drain the last outputs after the final MAC (tail). */
    std::uint64_t drain_latency() const;

    /**
     * Peak operand-injection rate in elements/cycle. Systolic arrays
     * inject one element per edge row/column per cycle; trees and
     * crossbars can broadcast/multicast a full tile row per cycle.
     */
    double injection_rate() const;

  private:
    NocKind kind_;
    std::uint32_t rows_;
    std::uint32_t cols_;
};

} // namespace flat

#endif // FLAT_ARCH_NOC_H

#include "arch/accel_config.h"

#include "common/status.h"
#include "common/units.h"

namespace flat {

std::uint64_t
AccelConfig::num_pes() const
{
    return static_cast<std::uint64_t>(pe_rows) * pe_cols;
}

double
AccelConfig::peak_macs_per_sec() const
{
    return static_cast<double>(num_pes()) * clock_hz;
}

double
AccelConfig::macs_per_cycle() const
{
    return static_cast<double>(num_pes());
}

double
AccelConfig::cycle_time() const
{
    return 1.0 / clock_hz;
}

double
AccelConfig::offchip_bytes_per_cycle() const
{
    return offchip_bw / clock_hz;
}

double
AccelConfig::onchip_bytes_per_cycle() const
{
    return onchip_bw / clock_hz;
}

bool
AccelConfig::has_sg2() const
{
    return sg2_bytes > 0;
}

std::uint64_t
AccelConfig::rf_capacity_bytes() const
{
    return rf_bytes > 0 ? rf_bytes : num_pes() * 64ull;
}

double
AccelConfig::sg2_bytes_per_cycle() const
{
    return has_sg2() ? sg2_bw / clock_hz : 0.0;
}

NocModel
AccelConfig::distribution_model() const
{
    return NocModel(distribution_noc, pe_rows, pe_cols);
}

NocModel
AccelConfig::reduction_model() const
{
    return NocModel(reduction_noc, pe_rows, pe_cols);
}

void
AccelConfig::validate() const
{
    FLAT_CHECK(pe_rows > 0 && pe_cols > 0,
               name << ": PE array must be non-empty");
    FLAT_CHECK(sg_bytes > 0, name << ": SG must be non-empty");
    FLAT_CHECK(sl_bytes > 0, name << ": SL must be non-empty");
    FLAT_CHECK(onchip_bw > 0.0, name << ": on-chip BW must be positive");
    FLAT_CHECK(offchip_bw > 0.0, name << ": off-chip BW must be positive");
    if (sg2_bytes > 0) {
        FLAT_CHECK(sg2_bw > 0.0,
                   name << ": SG2 needs a positive bandwidth");
        FLAT_CHECK(sg2_bw >= offchip_bw && sg2_bw <= onchip_bw,
                   name << ": SG2 BW should sit between off-chip and "
                           "SG bandwidth");
    }
    FLAT_CHECK(offchip_bw <= onchip_bw,
               name << ": off-chip BW (" << format_bandwidth(offchip_bw)
                    << ") should not exceed on-chip BW ("
                    << format_bandwidth(onchip_bw) << ")");
    FLAT_CHECK(clock_hz > 0.0, name << ": clock must be positive");
    FLAT_CHECK(sfu_lanes > 0.0, name << ": SFU must have lanes");
    FLAT_CHECK(bytes_per_element == 1 || bytes_per_element == 2 ||
                   bytes_per_element == 4,
               name << ": unsupported element width "
                    << bytes_per_element);
}

AccelConfig
edge_accel()
{
    AccelConfig cfg;
    cfg.name = "edge";
    cfg.pe_rows = 32;
    cfg.pe_cols = 32;
    cfg.sl_bytes = 1 * kKiB;
    cfg.sg_bytes = 512 * kKiB;
    cfg.onchip_bw = 1.0 * kTBps;
    cfg.offchip_bw = 50.0 * kGBps;
    cfg.clock_hz = 1.0 * kGHz;
    cfg.sfu_lanes = 256.0;
    cfg.dram_bytes = 8 * kGiB;
    return cfg;
}

AccelConfig
cloud_accel()
{
    AccelConfig cfg;
    cfg.name = "cloud";
    cfg.pe_rows = 256;
    cfg.pe_cols = 256;
    cfg.sl_bytes = 2 * kKiB;
    cfg.sg_bytes = 32 * kMiB;
    cfg.onchip_bw = 8.0 * kTBps;
    cfg.offchip_bw = 400.0 * kGBps;
    cfg.clock_hz = 1.0 * kGHz;
    cfg.sfu_lanes = 4096.0;
    cfg.dram_bytes = 80 * kGiB;
    return cfg;
}

} // namespace flat

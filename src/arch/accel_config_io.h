/**
 * @file
 * Builds an AccelConfig from a key=value configuration (see
 * common/config.h), so custom platforms can be described in text files:
 *
 *   # my-npu.conf
 *   name = my-npu
 *   pe_rows = 64
 *   pe_cols = 64
 *   sg = 2MiB
 *   sg2 = 32MiB
 *   sg2_bw = 200GB/s
 *   onchip_bw = 2TB/s
 *   offchip_bw = 100GB/s
 *   clock = 1.2e9
 *   sfu_lanes = 512
 *   bytes_per_element = 2
 *   distribution_noc = systolic   # systolic | tree | crossbar
 *   reduction_noc = tree
 */
#ifndef FLAT_ARCH_ACCEL_CONFIG_IO_H
#define FLAT_ARCH_ACCEL_CONFIG_IO_H

#include <string>

#include "arch/accel_config.h"
#include "common/config.h"

namespace flat {

/**
 * Applies @p config on top of @p base (unknown keys are rejected so
 * typos fail loudly). The result is validated before returning.
 */
AccelConfig accel_from_config(const ConfigMap& config,
                              AccelConfig base = edge_accel());

/** Convenience: parse @p path and build the accelerator. */
AccelConfig accel_from_config_file(const std::string& path,
                                   AccelConfig base = edge_accel());

} // namespace flat

#endif // FLAT_ARCH_ACCEL_CONFIG_IO_H

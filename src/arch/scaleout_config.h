/**
 * @file
 * Multi-accelerator scale-out description: how many FLAT devices share
 * one attention layer, which tensor axis is sharded across them, and
 * what inter-device fabric connects them.
 *
 * The fabric is a flat point-to-point link model (per-link bandwidth +
 * per-hop latency) arranged as a ring or a tree; collective cost models
 * in src/scaleout translate it into timeline phases.
 */
#ifndef FLAT_ARCH_SCALEOUT_CONFIG_H
#define FLAT_ARCH_SCALEOUT_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/accel_config.h"
#include "common/config.h"

namespace flat {

/** Which attention tensor axis is partitioned across devices. */
enum class ShardAxis {
    kBatch,    ///< batch B: fully independent, no collectives
    kHead,     ///< heads H: output all-gather at layer end
    kSequence, ///< query rows N: KV all-gather + softmax-stat rescale
    kAuto,     ///< let the DSE pick the best feasible axis
};

/** Short stable name ("batch", "head", "seq", "auto"). */
const char* to_string(ShardAxis axis);

/** Parses "batch" | "head" | "seq"/"sequence" | "auto". */
ShardAxis parse_shard_axis(const std::string& text);

/** Physical arrangement of the inter-device links. */
enum class LinkTopology {
    kRing, ///< bidirectional ring: D-1 steps, bandwidth-optimal
    kTree, ///< binomial tree: ceil(log2 D) steps, latency-optimal
};

/** Short stable name ("ring", "tree"). */
const char* to_string(LinkTopology topology);

/** Parses "ring" | "tree". */
LinkTopology parse_topology(const std::string& text);

/** Scale-out configuration: device count, shard axis and fabric. */
struct ScaleOutConfig {
    std::string name = "single";

    /** Number of identical FLAT accelerators. 1 = no scale-out. */
    std::uint32_t devices = 1;

    /** Axis the attention layer is partitioned along. */
    ShardAxis axis = ShardAxis::kAuto;

    /** Link arrangement between devices. */
    LinkTopology topology = LinkTopology::kRing;

    /** Per-link, per-direction bandwidth (bytes/s, full duplex). */
    double link_bw = 100e9;

    /** Per-hop link latency (seconds), exposed once per collective
     *  step. */
    double link_latency_s = 500e-9;

    /** True iff this is the trivial single-device configuration. */
    bool single_device() const { return devices == 1; }

    /** Link bytes transferable per @p accel clock cycle. */
    double link_bytes_per_cycle(const AccelConfig& accel) const;

    /** Per-hop latency in @p accel clock cycles. */
    double link_latency_cycles(const AccelConfig& accel) const;

    /** Throws flat::Error if the configuration is inconsistent. */
    void validate() const;
};

/**
 * Named presets:
 *   "single"    - 1 device (the pre-scale-out behavior);
 *   "pod-ring"  - 8 devices, ring, 300 GB/s links, 700 ns hops
 *                 (NVLink-class pod);
 *   "pod-tree"  - 8 devices, tree, 300 GB/s links, 700 ns hops;
 *   "edge-mesh" - 4 devices, ring, 25 GB/s links, 1 us hops
 *                 (PCIe-class edge board).
 * Throws flat::Error on an unknown name.
 */
ScaleOutConfig scaleout_preset(const std::string& name);

/** Names accepted by scaleout_preset(), in display order. */
std::vector<std::string> scaleout_preset_names();

/**
 * Applies "key = value" pairs onto @p base. Keys: name, devices,
 * shard_axis, topology, link_bw, link_latency. Unknown keys throw
 * flat::Error. The result is validated.
 */
ScaleOutConfig scaleout_from_config(const ConfigMap& config,
                                    ScaleOutConfig base = {});

/** Reads and applies a scale-out configuration file. */
ScaleOutConfig scaleout_from_config_file(const std::string& path,
                                         ScaleOutConfig base = {});

} // namespace flat

#endif // FLAT_ARCH_SCALEOUT_CONFIG_H

/**
 * @file
 * Hardware resource description of a spatial DNN accelerator (Figure 5).
 *
 * The accelerator comprises a PE array (each PE: one MAC + a local
 * scratchpad SL), a global on-chip scratchpad (SG), a special function
 * unit (SFU) for softmax/reductions, and interfaces to on-chip (SG<->PE)
 * and off-chip (DRAM<->SG) memory with bounded bandwidth.
 */
#ifndef FLAT_ARCH_ACCEL_CONFIG_H
#define FLAT_ARCH_ACCEL_CONFIG_H

#include <cstdint>
#include <string>

#include "arch/noc.h"

namespace flat {

/**
 * Dataflow-related capabilities of an accelerator (Figure 7(c)).
 *
 * These do not change the hardware resources; they restrict which
 * dataflow configurations the scheduler may use on this accelerator.
 */
struct Capabilities {
    /** Can run any intra-operator dataflow (FlexAccel/ATTACC) or only a
     *  fixed one (BaseAccel). */
    bool flexible_intra_dataflow = true;
    /** Supports an L3 staging tile in the soft-partitioned SG. */
    bool l3_tiling = true;
    /** Supports fused, interleaved execution of L-A (ATTACC only). */
    bool fused_execution = true;
};

/** Physical resources of one accelerator instance. */
struct AccelConfig {
    std::string name = "accel";

    /** PE array geometry. */
    std::uint32_t pe_rows = 32;
    std::uint32_t pe_cols = 32;

    /** Per-PE local scratchpad (SL) in bytes. */
    std::uint64_t sl_bytes = 1 * 1024;

    /** Global on-chip scratchpad (SG) in bytes. */
    std::uint64_t sg_bytes = 512 * 1024;

    /**
     * Optional second-level on-chip buffer (eDRAM/MRAM class) sitting
     * between SG and DRAM: staged tensors overflow here before
     * spilling off-chip (§3.1's multi-level hierarchy). 0 = absent.
     */
    std::uint64_t sg2_bytes = 0;

    /**
     * Aggregate register-file capacity across the PE array, the staging
     * tier below SL that column-blocked (online-softmax) styles keep the
     * running logits block and output accumulator in. 0 = derive a
     * conservative default of 64 bytes per PE (see rf_capacity_bytes()).
     */
    std::uint64_t rf_bytes = 0;

    /**
     * Off-chip DRAM/HBM capacity in bytes. Admission-only (like
     * rf_bytes): decode-phase styles reject points whose KV-cache
     * footprint cannot reside off-chip. 0 = unlimited.
     */
    std::uint64_t dram_bytes = 0;

    /** SG2 <-> SG bandwidth (bytes/s); only used when sg2_bytes > 0. */
    double sg2_bw = 0.0;

    /** SG <-> PE-array aggregate bandwidth (bytes/s). */
    double onchip_bw = 1e12;

    /** DRAM/HBM <-> SG bandwidth (bytes/s). */
    double offchip_bw = 50e9;

    /** Clock frequency (Hz). */
    double clock_hz = 1e9;

    /** SFU throughput in elements/cycle (softmax, reductions). */
    double sfu_lanes = 128.0;

    /** Element size in bytes (paper evaluates at 16-bit). */
    std::uint32_t bytes_per_element = 2;

    /** Distribution / reduction NoC families. */
    NocKind distribution_noc = NocKind::kSystolic;
    NocKind reduction_noc = NocKind::kSystolic;

    /** Dataflow capabilities (see Figure 7(c) accelerator catalog). */
    Capabilities caps;

    /** Total number of PEs. */
    std::uint64_t num_pes() const;

    /** Peak MACs per second (1 MAC/PE/cycle). */
    double peak_macs_per_sec() const;

    /** Peak MACs per cycle. */
    double macs_per_cycle() const;

    /** Seconds per cycle. */
    double cycle_time() const;

    /** Off-chip bytes transferable per cycle. */
    double offchip_bytes_per_cycle() const;

    /** On-chip bytes transferable per cycle. */
    double onchip_bytes_per_cycle() const;

    /** True iff a second-level on-chip buffer is configured. */
    bool has_sg2() const;

    /** Register-tier capacity: rf_bytes, or 64 bytes/PE when unset. */
    std::uint64_t rf_capacity_bytes() const;

    /** SG2 bytes transferable per cycle (0 when absent). */
    double sg2_bytes_per_cycle() const;

    /** NoC model instance for operand distribution. */
    NocModel distribution_model() const;

    /** NoC model instance for output reduction/collection. */
    NocModel reduction_model() const;

    /** Throws flat::Error if the configuration is inconsistent. */
    void validate() const;
};

/** Edge preset of Figure 7(a): 32x32 PEs, 512KB SG, 1TB/s / 50GB/s. */
AccelConfig edge_accel();

/** Cloud preset of Figure 7(a): 256x256 PEs, 32MB SG, 8TB/s / 400GB/s. */
AccelConfig cloud_accel();

} // namespace flat

#endif // FLAT_ARCH_ACCEL_CONFIG_H

#include "arch/noc.h"

#include "common/math_util.h"
#include "common/status.h"

namespace flat {

std::string
to_string(NocKind kind)
{
    switch (kind) {
      case NocKind::kSystolic: return "systolic";
      case NocKind::kTree: return "tree";
      case NocKind::kCrossbar: return "crossbar";
    }
    return "?";
}

NocModel::NocModel(NocKind kind, std::uint32_t rows, std::uint32_t cols)
    : kind_(kind), rows_(rows), cols_(cols)
{
    FLAT_CHECK(rows > 0 && cols > 0,
               "NoC must span a non-empty array, got " << rows << "x"
                                                       << cols);
}

std::uint64_t
NocModel::fill_latency() const
{
    switch (kind_) {
      case NocKind::kSystolic:
        return static_cast<std::uint64_t>(rows_) + cols_;
      case NocKind::kTree:
        return ilog2_ceil(rows_) + ilog2_ceil(cols_) + 1;
      case NocKind::kCrossbar:
        return 2;
    }
    return 0;
}

std::uint64_t
NocModel::drain_latency() const
{
    switch (kind_) {
      case NocKind::kSystolic:
        // Outputs ripple out along one dimension.
        return static_cast<std::uint64_t>(rows_);
      case NocKind::kTree:
        // Adder-tree depth.
        return ilog2_ceil(static_cast<std::uint64_t>(rows_) * cols_) + 1;
      case NocKind::kCrossbar:
        return 2;
    }
    return 0;
}

double
NocModel::injection_rate() const
{
    switch (kind_) {
      case NocKind::kSystolic:
        // One element per boundary row and per boundary column per cycle.
        return static_cast<double>(rows_) + static_cast<double>(cols_);
      case NocKind::kTree:
      case NocKind::kCrossbar:
        // Multicast-capable: a full array row per cycle.
        return static_cast<double>(rows_) * cols_;
    }
    return 0.0;
}

} // namespace flat

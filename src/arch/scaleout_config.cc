#include "arch/scaleout_config.h"

#include <cmath>

#include "common/status.h"
#include "common/string_util.h"
#include "common/units.h"

namespace flat {

const char*
to_string(ShardAxis axis)
{
    switch (axis) {
      case ShardAxis::kBatch:
        return "batch";
      case ShardAxis::kHead:
        return "head";
      case ShardAxis::kSequence:
        return "seq";
      case ShardAxis::kAuto:
        return "auto";
    }
    return "auto";
}

ShardAxis
parse_shard_axis(const std::string& text)
{
    const std::string key = to_lower(text);
    if (key == "batch" || key == "b") {
        return ShardAxis::kBatch;
    }
    if (key == "head" || key == "heads" || key == "h") {
        return ShardAxis::kHead;
    }
    if (key == "seq" || key == "sequence" || key == "n") {
        return ShardAxis::kSequence;
    }
    if (key == "auto") {
        return ShardAxis::kAuto;
    }
    FLAT_FAIL("unknown shard axis '" << text
                                     << "' (batch | head | seq | auto)");
}

const char*
to_string(LinkTopology topology)
{
    switch (topology) {
      case LinkTopology::kRing:
        return "ring";
      case LinkTopology::kTree:
        return "tree";
    }
    return "ring";
}

LinkTopology
parse_topology(const std::string& text)
{
    const std::string key = to_lower(text);
    if (key == "ring") {
        return LinkTopology::kRing;
    }
    if (key == "tree") {
        return LinkTopology::kTree;
    }
    FLAT_FAIL("unknown link topology '" << text << "' (ring | tree)");
}

double
ScaleOutConfig::link_bytes_per_cycle(const AccelConfig& accel) const
{
    return link_bw / accel.clock_hz;
}

double
ScaleOutConfig::link_latency_cycles(const AccelConfig& accel) const
{
    return link_latency_s * accel.clock_hz;
}

void
ScaleOutConfig::validate() const
{
    FLAT_CHECK(devices >= 1, "scale-out needs at least one device");
    if (devices == 1) {
        return; // fabric parameters are unused single-device
    }
    FLAT_CHECK(std::isfinite(link_bw) && link_bw > 0.0,
               "link bandwidth must be positive, got " << link_bw);
    FLAT_CHECK(std::isfinite(link_latency_s) && link_latency_s >= 0.0,
               "link latency must be non-negative, got "
                   << link_latency_s);
}

ScaleOutConfig
scaleout_preset(const std::string& name)
{
    const std::string key = to_lower(name);
    ScaleOutConfig out;
    out.name = key;
    if (key == "single") {
        out.devices = 1;
        return out;
    }
    if (key == "pod-ring" || key == "pod-tree") {
        out.devices = 8;
        out.topology = key == "pod-ring" ? LinkTopology::kRing
                                         : LinkTopology::kTree;
        out.link_bw = 300e9;
        out.link_latency_s = 700e-9;
        return out;
    }
    if (key == "edge-mesh") {
        out.devices = 4;
        out.topology = LinkTopology::kRing;
        out.link_bw = 25e9;
        out.link_latency_s = 1e-6;
        return out;
    }
    FLAT_FAIL("unknown scale-out preset '"
              << name << "' (single | pod-ring | pod-tree | edge-mesh)");
}

std::vector<std::string>
scaleout_preset_names()
{
    return {"single", "pod-ring", "pod-tree", "edge-mesh"};
}

ScaleOutConfig
scaleout_from_config(const ConfigMap& config, ScaleOutConfig base)
{
    ScaleOutConfig out = std::move(base);
    for (const auto& [key, value] : config) {
        if (key == "name") {
            out.name = value;
        } else if (key == "devices") {
            out.devices =
                static_cast<std::uint32_t>(std::stoul(value));
        } else if (key == "shard_axis") {
            out.axis = parse_shard_axis(value);
        } else if (key == "topology") {
            out.topology = parse_topology(value);
        } else if (key == "link_bw") {
            out.link_bw = parse_bandwidth(value);
        } else if (key == "link_latency") {
            out.link_latency_s = parse_time(value);
        } else {
            FLAT_FAIL("unknown scale-out config key '" << key << "'");
        }
    }
    out.validate();
    return out;
}

ScaleOutConfig
scaleout_from_config_file(const std::string& path, ScaleOutConfig base)
{
    return scaleout_from_config(parse_config_file(path), std::move(base));
}

} // namespace flat

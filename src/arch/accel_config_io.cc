#include "arch/accel_config_io.h"

#include "common/status.h"
#include "common/string_util.h"
#include "common/units.h"

namespace flat {
namespace {

NocKind
parse_noc(const std::string& value)
{
    const std::string key = to_lower(value);
    if (key == "systolic") {
        return NocKind::kSystolic;
    }
    if (key == "tree") {
        return NocKind::kTree;
    }
    if (key == "crossbar") {
        return NocKind::kCrossbar;
    }
    FLAT_FAIL("unknown NoC kind '" << value
                                   << "' (systolic | tree | crossbar)");
}

} // namespace

AccelConfig
accel_from_config(const ConfigMap& config, AccelConfig base)
{
    AccelConfig accel = std::move(base);
    for (const auto& [key, value] : config) {
        if (key == "name") {
            accel.name = value;
        } else if (key == "pe_rows") {
            accel.pe_rows = static_cast<std::uint32_t>(std::stoul(value));
        } else if (key == "pe_cols") {
            accel.pe_cols = static_cast<std::uint32_t>(std::stoul(value));
        } else if (key == "sl") {
            accel.sl_bytes = parse_bytes(value);
        } else if (key == "sg") {
            accel.sg_bytes = parse_bytes(value);
        } else if (key == "sg2") {
            accel.sg2_bytes = parse_bytes(value);
        } else if (key == "rf") {
            accel.rf_bytes = parse_bytes(value);
        } else if (key == "dram") {
            accel.dram_bytes = parse_bytes(value);
        } else if (key == "sg2_bw") {
            accel.sg2_bw = parse_bandwidth(value);
        } else if (key == "onchip_bw") {
            accel.onchip_bw = parse_bandwidth(value);
        } else if (key == "offchip_bw") {
            accel.offchip_bw = parse_bandwidth(value);
        } else if (key == "clock") {
            accel.clock_hz = std::stod(value);
        } else if (key == "sfu_lanes") {
            accel.sfu_lanes = std::stod(value);
        } else if (key == "bytes_per_element") {
            accel.bytes_per_element =
                static_cast<std::uint32_t>(std::stoul(value));
        } else if (key == "distribution_noc") {
            accel.distribution_noc = parse_noc(value);
        } else if (key == "reduction_noc") {
            accel.reduction_noc = parse_noc(value);
        } else {
            FLAT_FAIL("unknown platform config key '" << key << "'");
        }
    }
    accel.validate();
    return accel;
}

AccelConfig
accel_from_config_file(const std::string& path, AccelConfig base)
{
    return accel_from_config(parse_config_file(path), std::move(base));
}

} // namespace flat

#include "workload/attention.h"

#include <algorithm>

#include "common/status.h"
#include "common/string_util.h"

namespace flat {

std::string
to_string(Scope scope)
{
    switch (scope) {
      case Scope::kLogitAttend: return "L-A";
      case Scope::kBlock: return "Block";
      case Scope::kModel: return "Model";
    }
    return "?";
}

Scope
parse_scope(const std::string& name)
{
    const std::string key = to_lower(name);
    if (key == "la" || key == "l-a") {
        return Scope::kLogitAttend;
    }
    if (key == "block") {
        return Scope::kBlock;
    }
    if (key == "model") {
        return Scope::kModel;
    }
    FLAT_FAIL("unknown scope '" << name << "' (la | block | model)");
}

std::vector<Operator>
Workload::ops_in_scope(Scope scope) const
{
    if (scope == Scope::kLogitAttend) {
        std::vector<Operator> out;
        for (const Operator& op : ops) {
            if (op.category == OpCategory::kLogitAttend ||
                op.category == OpCategory::kSoftmax) {
                out.push_back(op);
            }
        }
        return out;
    }
    return ops; // block and model share the per-block operator list
}

std::uint64_t
Workload::scope_multiplier(Scope scope) const
{
    return (scope == Scope::kModel) ? model.num_blocks : 1;
}

std::uint64_t
Workload::total_macs(Scope scope) const
{
    std::uint64_t macs = 0;
    for (const Operator& op : ops_in_scope(scope)) {
        if (op.kind == OpKind::kGemm) {
            macs += op.gemm.macs();
        }
    }
    return macs * scope_multiplier(scope);
}

namespace {

const Operator&
find_op(const std::vector<Operator>& ops, const std::string& name)
{
    for (const Operator& op : ops) {
        if (op.name == name) {
            return op;
        }
    }
    FLAT_FAIL("workload has no operator named '" << name << "'");
}

} // namespace

const Operator&
Workload::logit_op() const
{
    return find_op(ops, "L");
}

const Operator&
Workload::attend_op() const
{
    return find_op(ops, "A");
}

const Operator&
Workload::softmax_op() const
{
    return find_op(ops, "softmax");
}

Workload
make_cross_attention_workload(const ModelConfig& model, std::uint64_t batch,
                              std::uint64_t seq_len,
                              std::uint64_t kv_seq_len)
{
    model.validate();
    FLAT_CHECK(batch > 0, "batch must be positive");
    FLAT_CHECK(seq_len > 0 && kv_seq_len > 0,
               "sequence lengths must be positive");

    const std::uint64_t d = model.hidden_dim;
    const std::uint64_t h = model.num_heads;
    const std::uint64_t dk = model.head_dim();
    const std::uint64_t ff = model.ff_dim;

    Workload w;
    w.model = model;
    w.batch = batch;
    w.seq_len = seq_len;
    w.kv_seq_len = kv_seq_len;

    // Projections: [B*N, D] x [D, D]. The batch dimension folds into m,
    // which is exactly why batching buys weight reuse for these (§2.2).
    auto projection = [&](const char* name, std::uint64_t rows) {
        GemmShape s;
        s.m = batch * rows;
        s.k = d;
        s.n = d;
        s.instances = 1;
        s.a_kind = OperandKind::kActivation;
        s.b_kind = OperandKind::kWeight;
        return make_gemm_op(name, OpCategory::kProjection, s);
    };

    // K/V projections only produce kv_heads() head slices under
    // GQA/MQA: [B*N_kv, D] x [D, H_kv*dk]. For MHA H_kv*dk == D, so
    // the shapes are unchanged.
    auto kv_projection = [&](const char* name, std::uint64_t rows) {
        Operator op = projection(name, rows);
        op.gemm.n = static_cast<std::uint64_t>(model.kv_heads()) * dk;
        return op;
    };

    w.ops.push_back(projection("Q", seq_len));
    w.ops.push_back(kv_projection("K", kv_seq_len));
    w.ops.push_back(kv_projection("V", kv_seq_len));

    // Logit: per (batch, head) instance [N, dk] x [dk, N_kv] -> [N, N_kv].
    {
        GemmShape s;
        s.m = seq_len;
        s.k = dk;
        s.n = kv_seq_len;
        s.instances = batch * h;
        s.a_kind = OperandKind::kActivation;
        s.b_kind = OperandKind::kActivation;
        w.ops.push_back(make_gemm_op("L", OpCategory::kLogitAttend, s));
    }

    // Softmax over each logits row (reduction along the key dimension).
    w.ops.push_back(
        make_softmax_op("softmax", batch * h, seq_len, kv_seq_len));

    // Attend: per instance [N, N_kv] x [N_kv, dk] -> [N, dk].
    {
        GemmShape s;
        s.m = seq_len;
        s.k = kv_seq_len;
        s.n = dk;
        s.instances = batch * h;
        s.a_kind = OperandKind::kActivation;
        s.b_kind = OperandKind::kActivation;
        w.ops.push_back(make_gemm_op("A", OpCategory::kLogitAttend, s));
    }

    // Output projection.
    w.ops.push_back(projection("O", seq_len));

    // Position-wise feed-forward: [B*N, D] x [D, FF], [B*N, FF] x [FF, D].
    {
        GemmShape s;
        s.m = batch * seq_len;
        s.k = d;
        s.n = ff;
        s.instances = 1;
        w.ops.push_back(make_gemm_op("FC1", OpCategory::kFeedForward, s));
        s.k = ff;
        s.n = d;
        w.ops.push_back(make_gemm_op("FC2", OpCategory::kFeedForward, s));
    }

    return w;
}

Workload
make_decode_workload(const ModelConfig& model, std::uint64_t batch,
                     std::uint64_t n_ctx)
{
    FLAT_CHECK(n_ctx > 0, "decode needs at least one cached token");
    // One new query token against the n_ctx cached K/V tokens: the
    // projections (and FCs) see a single-row activation, while
    // L/softmax/A span the full context.
    Workload w = make_cross_attention_workload(model, batch, 1, n_ctx);
    w.decode = true;
    for (Operator& op : w.ops) {
        // K/V projections compute only the NEW token's rows — the
        // cache supplies the previous n_ctx - 1 (plus the new row it
        // just admitted); L and A still read all n_ctx of them.
        if (op.name == "K" || op.name == "V") {
            op.gemm.m = batch;
        }
    }
    return w;
}

Workload
make_workload(const ModelConfig& model, std::uint64_t batch,
              std::uint64_t seq_len)
{
    return make_cross_attention_workload(model, batch, seq_len, seq_len);
}

Workload
make_local_attention_workload(const ModelConfig& model,
                              std::uint64_t batch, std::uint64_t seq_len,
                              std::uint64_t window)
{
    Workload w = make_workload(model, batch, seq_len);
    const std::uint64_t kv_eff =
        std::min<std::uint64_t>(seq_len, 2 * window + 1);
    w.kv_seq_len = kv_eff;
    for (Operator& op : w.ops) {
        if (op.name == "L") {
            op.gemm.n = kv_eff;
        } else if (op.name == "A") {
            op.gemm.k = kv_eff;
        } else if (op.kind == OpKind::kSoftmax) {
            op.softmax_cols = kv_eff;
        }
    }
    return w;
}



} // namespace flat

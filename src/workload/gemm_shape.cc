#include "workload/gemm_shape.h"

#include "common/status.h"

namespace flat {

std::string
to_string(OperandKind kind)
{
    return kind == OperandKind::kWeight ? "weight" : "activation";
}

std::uint64_t
GemmShape::a_elems_total() const
{
    return (a_kind == OperandKind::kWeight) ? a_elems()
                                            : instances * a_elems();
}

std::uint64_t
GemmShape::b_elems_total() const
{
    return (b_kind == OperandKind::kWeight) ? b_elems()
                                            : instances * b_elems();
}

std::uint64_t
GemmShape::c_elems_total() const
{
    return instances * c_elems();
}

bool
GemmShape::activation_activation() const
{
    return a_kind == OperandKind::kActivation &&
           b_kind == OperandKind::kActivation;
}

double
GemmShape::operational_intensity() const
{
    const double accesses = static_cast<double>(a_elems_total()) +
                            static_cast<double>(b_elems_total()) +
                            static_cast<double>(c_elems_total());
    return static_cast<double>(macs()) / accesses;
}

void
GemmShape::validate() const
{
    FLAT_CHECK(m > 0 && k > 0 && n > 0,
               "GEMM dims must be positive, got m=" << m << " k=" << k
                                                    << " n=" << n);
    FLAT_CHECK(instances > 0, "GEMM needs at least one instance");
}

} // namespace flat

/**
 * @file
 * Shape description of a (possibly batched) GEMM operator instance.
 *
 * Every matrix operator in an attention block — the Q/K/V/O projections,
 * the Logit and Attend operators, and the two feed-forward FCs — is a
 * GEMM `C[m,n] = A[m,k] x B[k,n]`, replicated over `instances`
 * independent problem instances (batch x heads for the per-head
 * operators, 1 for the projections whose batch dimension is folded
 * into m).
 */
#ifndef FLAT_WORKLOAD_GEMM_SHAPE_H
#define FLAT_WORKLOAD_GEMM_SHAPE_H

#include <cstdint>
#include <string>

namespace flat {

/** Whether a GEMM operand is a model parameter or an activation. */
enum class OperandKind {
    kWeight,     ///< model parameter, shared across the batch
    kActivation, ///< produced by a previous operator, unique per sample
};

std::string to_string(OperandKind kind);

/** Dimensions and operand classes of one GEMM operator. */
struct GemmShape {
    std::uint64_t m = 0; ///< rows of A and C
    std::uint64_t k = 0; ///< reduction dimension
    std::uint64_t n = 0; ///< columns of B and C

    /** Number of independent GEMM instances (e.g. batch x heads). */
    std::uint64_t instances = 1;

    OperandKind a_kind = OperandKind::kActivation;
    OperandKind b_kind = OperandKind::kWeight;

    /** Total multiply-accumulates across all instances. */
    std::uint64_t macs() const { return instances * m * k * n; }

    /** Elements of A per instance / across all instances. */
    std::uint64_t a_elems() const { return m * k; }
    std::uint64_t a_elems_total() const;

    /** Elements of B per instance / across all instances.
     *  A weight operand is shared, so its total equals one instance. */
    std::uint64_t b_elems() const { return k * n; }
    std::uint64_t b_elems_total() const;

    /** Elements of C per instance / across all instances. */
    std::uint64_t c_elems() const { return m * n; }
    std::uint64_t c_elems_total() const;

    /** True iff both inputs are activations (the L/A pathology, §2.2). */
    bool activation_activation() const;

    /**
     * Operational intensity in MACs per element accessed, assuming each
     * tensor is touched exactly once (the algorithmic minimum, Eq. 1
     * counts "ops" as MACs).
     */
    double operational_intensity() const;

    /** Throws flat::Error on degenerate dimensions. */
    void validate() const;
};

} // namespace flat

#endif // FLAT_WORKLOAD_GEMM_SHAPE_H

/**
 * @file
 * Builders that instantiate the operator graph of an attention layer /
 * attention block for a concrete (model, batch, sequence length), per
 * Figure 1 of the paper.
 */
#ifndef FLAT_WORKLOAD_ATTENTION_H
#define FLAT_WORKLOAD_ATTENTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "workload/model_config.h"
#include "workload/operator.h"

namespace flat {

/** Evaluation scopes of Figure 8: L-A only, attention block, full model. */
enum class Scope {
    kLogitAttend, ///< only L, softmax, A
    kBlock,       ///< one attention block (adds Q/K/V/O and the two FCs)
    kModel,       ///< all blocks of the model
};

std::string to_string(Scope scope);

/** Parses "la" / "l-a" / "block" / "model"; throws flat::Error. */
Scope parse_scope(const std::string& name);

/**
 * One instantiated workload: the operators of a single attention block
 * (in execution order) plus the replication factor for model scope.
 */
struct Workload {
    ModelConfig model;
    std::uint64_t batch = 1;      ///< B
    std::uint64_t seq_len = 512;  ///< N (query side)
    std::uint64_t kv_seq_len = 0; ///< key/value N (== seq_len if self-attn)

    /**
     * Autoregressive decode step: the block processes one new token
     * per sequence (seq_len == 1) attending over a KV-cache holding
     * kv_seq_len past tokens. K/V projections only produce the new
     * token's K/V rows; the cached rows are read, not recomputed.
     */
    bool decode = false;

    /** Operators of one block, execution order:
     *  Q, K, V, L, softmax, A, O, FC1, FC2. */
    std::vector<Operator> ops;

    /** Operators participating at the given scope. */
    std::vector<Operator> ops_in_scope(Scope scope) const;

    /** Multiplier applied at model scope (number of blocks). */
    std::uint64_t scope_multiplier(Scope scope) const;

    /** Total MACs (GEMMs only) at a scope. */
    std::uint64_t total_macs(Scope scope) const;

    /** The L operator (Logit). */
    const Operator& logit_op() const;

    /** The A operator (Attend). */
    const Operator& attend_op() const;

    /** The softmax between them. */
    const Operator& softmax_op() const;
};

/**
 * Builds a self-attention block workload: projections, L/softmax/A, output
 * projection, and the two position-wise FCs.
 *
 * @param model model hyper-parameters
 * @param batch batch size B
 * @param seq_len sequence length N
 */
Workload make_workload(const ModelConfig& model, std::uint64_t batch,
                       std::uint64_t seq_len);

/**
 * Builds a cross-attention block: the query sequence has length
 * @p seq_len while keys/values have @p kv_seq_len (Figure 1 footnote).
 */
Workload make_cross_attention_workload(const ModelConfig& model,
                                       std::uint64_t batch,
                                       std::uint64_t seq_len,
                                       std::uint64_t kv_seq_len);

/**
 * Builds a local (windowed) attention block, the Longformer-style
 * sparse pattern the paper lists as orthogonal to FLAT (§7): each
 * query row attends to at most 2*window+1 keys. The L/A operators and
 * the softmax shrink to the effective window width; the projections
 * and FCs still process the full sequence.
 *
 * First-order approximation: K/V input traffic is modeled at the
 * effective width rather than the sliding union (each K row is
 * actually touched once); both are negligible next to the O(N*w)
 * logits terms this transform is about.
 */
Workload make_local_attention_workload(const ModelConfig& model,
                                       std::uint64_t batch,
                                       std::uint64_t seq_len,
                                       std::uint64_t window);

/**
 * Builds one autoregressive decode step: each of the @p batch
 * sequences appends one token, so every GEMM's row dimension is a
 * single token while L/softmax/A run against a KV-cache of @p n_ctx
 * past tokens (the new token's K/V rows included). K/V projections
 * produce only the new rows — and only kv_heads() of them under
 * GQA/MQA — since the cache holds the rest.
 */
Workload make_decode_workload(const ModelConfig& model,
                              std::uint64_t batch, std::uint64_t n_ctx);

} // namespace flat

#endif // FLAT_WORKLOAD_ATTENTION_H

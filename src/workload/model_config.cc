#include "workload/model_config.h"

#include "common/status.h"
#include "common/string_util.h"

namespace flat {

std::uint32_t
ModelConfig::head_dim() const
{
    return hidden_dim / num_heads;
}

std::uint32_t
ModelConfig::kv_heads() const
{
    return num_kv_heads != 0 ? num_kv_heads : num_heads;
}

void
ModelConfig::validate() const
{
    FLAT_CHECK(!name.empty(), "model must be named");
    FLAT_CHECK(num_blocks > 0, name << ": needs at least one block");
    FLAT_CHECK(num_heads > 0, name << ": needs at least one head");
    FLAT_CHECK(hidden_dim % num_heads == 0,
               name << ": heads (" << num_heads << ") must divide D ("
                    << hidden_dim << ")");
    FLAT_CHECK(num_kv_heads <= num_heads &&
                   num_heads % kv_heads() == 0,
               name << ": KV heads (" << num_kv_heads
                    << ") must divide the query heads (" << num_heads
                    << ")");
    FLAT_CHECK(ff_dim > 0, name << ": feed-forward dim must be positive");
}

ModelConfig
bert_base()
{
    return ModelConfig{"bert", 12, 768, 12, 3072};
}

ModelConfig
flaubert()
{
    return ModelConfig{"flaubert", 24, 1024, 16, 4096};
}

ModelConfig
xlm()
{
    return ModelConfig{"xlm", 12, 2048, 16, 8192};
}

ModelConfig
transformer_xl()
{
    return ModelConfig{"trxl", 18, 1024, 16, 4096};
}

ModelConfig
t5_small()
{
    return ModelConfig{"t5", 6, 512, 8, 2048};
}

ModelConfig
mistral()
{
    return ModelConfig{"mistral", 32, 4096, 32, 14336, 8};
}

std::vector<ModelConfig>
model_zoo()
{
    return {bert_base(), transformer_xl(), flaubert(), t5_small(), xlm(),
            mistral()};
}

ModelConfig
model_by_name(const std::string& name)
{
    const std::string key = to_lower(name);
    for (const ModelConfig& m : model_zoo()) {
        if (m.name == key) {
            return m;
        }
    }
    FLAT_FAIL("unknown model '" << name
                                << "' (known: bert, trxl, flaubert, t5, "
                                   "xlm, mistral)");
}

} // namespace flat

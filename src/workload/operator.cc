#include "workload/operator.h"

#include "common/status.h"

namespace flat {

std::string
to_string(OpCategory category)
{
    switch (category) {
      case OpCategory::kLogitAttend: return "L-A";
      case OpCategory::kProjection: return "Projection";
      case OpCategory::kFeedForward: return "FC";
      case OpCategory::kSoftmax: return "Softmax";
    }
    return "?";
}

std::uint64_t
Operator::compute_ops() const
{
    if (kind == OpKind::kGemm) {
        return gemm.macs();
    }
    // Softmax: one exp, one accumulate, one scale per element, plus the
    // row max for numerical stability — model as 4 ops/element.
    return 4 * softmax_instances * softmax_rows * softmax_cols;
}

std::uint64_t
Operator::output_elems() const
{
    if (kind == OpKind::kGemm) {
        return gemm.c_elems_total();
    }
    return softmax_instances * softmax_rows * softmax_cols;
}

void
Operator::validate() const
{
    FLAT_CHECK(!name.empty(), "operator must be named");
    if (kind == OpKind::kGemm) {
        gemm.validate();
    } else {
        FLAT_CHECK(softmax_rows > 0 && softmax_cols > 0 &&
                       softmax_instances > 0,
                   name << ": softmax shape must be positive");
    }
}

Operator
make_gemm_op(std::string name, OpCategory category, const GemmShape& shape)
{
    Operator op;
    op.name = std::move(name);
    op.kind = OpKind::kGemm;
    op.category = category;
    op.gemm = shape;
    op.validate();
    return op;
}

Operator
make_softmax_op(std::string name, std::uint64_t instances,
                std::uint64_t rows, std::uint64_t cols)
{
    Operator op;
    op.name = std::move(name);
    op.kind = OpKind::kSoftmax;
    op.category = OpCategory::kSoftmax;
    op.softmax_instances = instances;
    op.softmax_rows = rows;
    op.softmax_cols = cols;
    op.validate();
    return op;
}

} // namespace flat

/**
 * @file
 * Transformer model hyper-parameters and the evaluation model zoo
 * (Figure 7 workloads: BERT, FlauBERT, XLM, TransformerXL, T5).
 */
#ifndef FLAT_WORKLOAD_MODEL_CONFIG_H
#define FLAT_WORKLOAD_MODEL_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace flat {

/** Architecture hyper-parameters of one attention-based model. */
struct ModelConfig {
    std::string name;
    std::uint32_t num_blocks = 12;  ///< attention blocks (layers)
    std::uint32_t hidden_dim = 768; ///< D
    std::uint32_t num_heads = 12;   ///< H
    std::uint32_t ff_dim = 3072;    ///< feed-forward inner dimension

    /**
     * Key/value head count for grouped-query attention (GQA/MQA):
     * groups of num_heads/num_kv_heads query heads share one K/V head,
     * shrinking the KV-cache and the K/V projections by that factor.
     * 0 = one K/V head per query head (classic multi-head attention).
     */
    std::uint32_t num_kv_heads = 0;

    /** Per-head dimension dk = D / H. */
    std::uint32_t head_dim() const;

    /** Effective K/V head count: num_kv_heads, or num_heads when 0. */
    std::uint32_t kv_heads() const;

    /** Throws flat::Error if H does not divide D, etc. */
    void validate() const;
};

/** BERT-base: 12 blocks, D=768, H=12, FF=3072. */
ModelConfig bert_base();

/** FlauBERT-large: 24 blocks, D=1024, H=16, FF=4096. */
ModelConfig flaubert();

/** XLM (xlm-mlm-en-2048): 12 blocks, D=2048, H=16, FF=8192. */
ModelConfig xlm();

/** TransformerXL-large: 18 blocks, D=1024, H=16, FF=4096. */
ModelConfig transformer_xl();

/** T5-small encoder stack: 6 blocks, D=512, H=8, FF=2048. */
ModelConfig t5_small();

/** Mistral-7B-class GQA decoder: 32 blocks, D=4096, H=32, KV=8,
 *  FF=14336 — the serving-regime workload with a grouped KV-cache. */
ModelConfig mistral();

/** The evaluation workloads: the paper's five, then the GQA decoder. */
std::vector<ModelConfig> model_zoo();

/** Look up a zoo model by (case-insensitive) name; throws if unknown. */
ModelConfig model_by_name(const std::string& name);

} // namespace flat

#endif // FLAT_WORKLOAD_MODEL_CONFIG_H

/**
 * @file
 * Operator IR: one node of an attention block's compute graph.
 */
#ifndef FLAT_WORKLOAD_OPERATOR_H
#define FLAT_WORKLOAD_OPERATOR_H

#include <cstdint>
#include <string>

#include "workload/gemm_shape.h"

namespace flat {

/** Categories used for the latency breakdown in Figure 11. */
enum class OpCategory {
    kLogitAttend, ///< L and A (activation-activation GEMMs)
    kProjection,  ///< Q, K, V, O (activation-weight GEMMs)
    kFeedForward, ///< the two FCs outside the attention layer
    kSoftmax,     ///< the softmax between L and A (runs on the SFU)
};

std::string to_string(OpCategory category);

/** Kinds of operator node. */
enum class OpKind {
    kGemm,
    kSoftmax,
};

/**
 * One operator of an attention block.
 *
 * GEMM operators carry a GemmShape. The softmax operator carries the
 * shape of the logits tensor it normalizes ([rows, cols] per instance,
 * reduced along cols).
 */
struct Operator {
    std::string name;
    OpKind kind = OpKind::kGemm;
    OpCategory category = OpCategory::kProjection;

    /** Valid iff kind == kGemm. */
    GemmShape gemm;

    /** Valid iff kind == kSoftmax. */
    std::uint64_t softmax_rows = 0;
    std::uint64_t softmax_cols = 0;
    std::uint64_t softmax_instances = 0;

    /** MAC count for GEMMs; exp/sum/scale op count for softmax. */
    std::uint64_t compute_ops() const;

    /** Total elements of the operator's output tensor. */
    std::uint64_t output_elems() const;

    /** Throws flat::Error if the node is malformed. */
    void validate() const;
};

/** Builds a GEMM operator node. */
Operator make_gemm_op(std::string name, OpCategory category,
                      const GemmShape& shape);

/** Builds the softmax node for a logits tensor of
 *  [instances x rows x cols]. */
Operator make_softmax_op(std::string name, std::uint64_t instances,
                         std::uint64_t rows, std::uint64_t cols);

} // namespace flat

#endif // FLAT_WORKLOAD_OPERATOR_H

/**
 * @file
 * Process-wide, sharded, thread-safe evaluation cache for the DSE hot
 * path. Two families of sub-problems recur across search_attention
 * slices, core/sweep points, search_scaleout's inner sweeps and the
 * bench suite:
 *
 *   - the L2 tile menu of a (AccelConfig, GemmShape, budget fractions,
 *     stationarity) tuple, and
 *   - the per-(tile, order) GemmSliceCost table of a slice (compute
 *     cost + DRAM reuse multipliers),
 *
 * both pure functions of their keys. The cache memoizes them behind a
 * canonical string key (FNV-1a picks the shard; full string equality
 * decides the hit, so a hash collision can never alias two different
 * sub-problems — results stay bit-identical with the cache on or off).
 *
 * Entries are immutable and handed out as shared_ptr, so a consumer
 * keeps its table alive even if the shard is reset under memory
 * pressure. Misses compute OUTSIDE the shard lock; a racing duplicate
 * insert keeps the first entry (both are bit-identical by purity).
 */
#ifndef FLAT_COSTMODEL_EVAL_CACHE_H
#define FLAT_COSTMODEL_EVAL_CACHE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/accel_config.h"
#include "costmodel/gemm_engine.h"
#include "dataflow/tiling.h"
#include "workload/gemm_shape.h"

namespace flat {

/** Snapshot of the cache's behavior counters. */
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0; ///< entries dropped by capacity resets
    std::uint64_t entries = 0;   ///< live entries across all shards
    std::uint64_t bytes = 0;     ///< approximate payload + key bytes

    /** hits / (hits + misses); 0 when the cache was never consulted. */
    double hit_rate() const;
};

/**
 * The process-wide evaluation cache (see file comment). All methods are
 * thread-safe. Disable it (set_enabled(false) or flatsim
 * --no-eval-cache) to force every lookup to recompute — results must
 * not change, only throughput.
 */
class EvalCache
{
  public:
    using TileMenu = std::shared_ptr<const std::vector<L2Tile>>;
    using GemmCostTable =
        std::shared_ptr<const std::vector<GemmSliceCost>>;

    static EvalCache& instance();

    /** Process-wide switch; disabled lookups bypass the shards (and the
     *  counters) entirely and recompute. */
    static void set_enabled(bool enabled);
    static bool enabled();

    /**
     * Memoized L2 tile menu. The key covers @p accel's physical fields,
     * the (m, k, n) shape, @p budget_fractions and @p stationarity;
     * @p compute supplies the menu on a miss (the dse layer owns
     * tile_candidates(), which this library cannot call — dependency
     * order). Operand kinds and instance counts are intentionally not
     * part of the key: the tile menu is a pure function of the listed
     * inputs only.
     */
    TileMenu tile_menu(const AccelConfig& accel, const GemmShape& shape,
                       const std::vector<double>& budget_fractions,
                       Stationarity stationarity,
                       const std::function<std::vector<L2Tile>()>& compute);

    /**
     * Memoized per-(tile, order) cost table for one slice: entry
     * [t * orders.size() + o] is
     * { model_gemm_compute(accel, shape, tiles[t], orders[o],
     *   stationarity), stage_reuse(shape, tiles[t], orders[o]) } —
     * the exact layout the DSE's SliceBound indexes. Both members are
     * pure functions of the same key, so they share one entry.
     */
    GemmCostTable gemm_costs(const AccelConfig& accel,
                             const GemmShape& shape,
                             const std::vector<L2Tile>& tiles,
                             const std::vector<LoopOrder>& orders,
                             Stationarity stationarity);

    CacheStats stats() const;
    void reset_stats();

    /** Drops every entry (outstanding shared_ptr handles stay valid). */
    void clear();

    /**
     * Approximate process-wide payload budget. A shard whose share
     * overflows is reset wholesale (counted in CacheStats::evictions) —
     * the population is small and uniform enough that LRU bookkeeping
     * would cost more than the occasional recompute.
     */
    void set_capacity_bytes(std::uint64_t capacity);

  private:
    EvalCache();

    struct Shard;

    template <typename Payload, typename Compute>
    std::shared_ptr<const Payload> lookup(std::string key,
                                          const Compute& compute);

    static constexpr std::size_t kShards = 16;
    std::unique_ptr<Shard[]> shards_;
    std::atomic<std::uint64_t> capacity_bytes_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace flat

#endif // FLAT_COSTMODEL_EVAL_CACHE_H

/**
 * @file
 * Process-wide, two-level, thread-safe evaluation cache for the DSE hot
 * path. Three families of sub-problems recur across search_attention
 * slices, core/sweep points, search_scaleout's inner sweeps and the
 * bench suite:
 *
 *   - the L2 tile menu of a (AccelConfig, GemmShape, budget fractions,
 *     stationarity) tuple,
 *   - the per-(tile, order) GemmSliceCost table of a slice (compute
 *     cost + DRAM reuse multipliers), and
 *   - the attention plan base of a (accel buffers, dims, cross loop,
 *     L2 tiles, staging flags) tuple, registered by attention_cost.cc
 *     through the generic memoize() front door, and
 *   - the per-point attention cost (cycles + activity of one fully
 *     specified design point), registered by the batch evaluator
 *     through the split find()/insert() pair,
 *
 * all pure functions of their keys. Keys are fixed-width binary words
 * (raw uint64_t bit patterns of the doubles and the integer fields,
 * length-prefixed per variable section, hashed once while packing) —
 * no snprintf, no string allocation per lookup. Full word-for-word key
 * equality decides a hit, so a hash collision can never alias two
 * different sub-problems and results stay bit-identical cache-on/off.
 * Bit-pattern keys are stricter than operator== on doubles: +0.0 and
 * -0.0 are distinct keys and denormals round-trip exactly.
 *
 * Lookups go through two levels:
 *
 *   - L1: a small direct-mapped thread_local array, no locks, no shared
 *     cache lines. Repeat lookups within a slice (the common case: a
 *     search re-asks for the same menu/table for every stage-flag and
 *     loop-order combination) are served here without ever touching a
 *     shard mutex. clear() invalidates every thread's L1 via a global
 *     epoch.
 *   - L2: a bank of mutex shards (kShards) holding the authoritative
 *     entries, selected by the high bits of the key hash. The
 *     high-rate find()/insert() pair never blocks on a shard — under
 *     contention it falls back to recomputing (purity makes that
 *     bit-identical), so a descheduled lock holder can never convoy
 *     the other workers.
 *
 * Entries are immutable and handed out as shared_ptr, so a consumer
 * keeps its table alive even if the shard is reset under memory
 * pressure. Misses compute OUTSIDE the shard lock; a racing duplicate
 * insert keeps the first entry (both are bit-identical by purity).
 */
#ifndef FLAT_COSTMODEL_EVAL_CACHE_H
#define FLAT_COSTMODEL_EVAL_CACHE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "arch/accel_config.h"
#include "costmodel/gemm_engine.h"
#include "dataflow/tiling.h"
#include "workload/gemm_shape.h"

namespace flat {

/** Snapshot of the cache's behavior counters. */
struct CacheStats {
    std::uint64_t hits = 0;      ///< total hits (shard + L1)
    std::uint64_t l1_hits = 0;   ///< subset of hits served lock-free
                                 ///< by the thread-local front-ends
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0; ///< entries dropped by capacity resets
    std::uint64_t entries = 0;   ///< live entries across all shards
    std::uint64_t bytes = 0;     ///< approximate payload + key bytes

    /** hits / (hits + misses); 0 when the cache was never consulted. */
    double hit_rate() const;
};

/**
 * The process-wide evaluation cache (see file comment). All methods are
 * thread-safe. Disable it (set_enabled(false) or flatsim
 * --no-eval-cache) to force every lookup to recompute — results must
 * not change, only throughput.
 */
class EvalCache
{
  public:
    using TileMenu = std::shared_ptr<const std::vector<L2Tile>>;
    using GemmCostTable =
        std::shared_ptr<const std::vector<GemmSliceCost>>;

    static EvalCache& instance();

    /** Process-wide switch; disabled lookups bypass both levels (and
     *  the counters) entirely and recompute. */
    static void set_enabled(bool enabled);
    static bool enabled();

    /** True when lookups currently bypass the cache — disabled, or a
     *  fault-injection probe is armed (serving a memoized entry would
     *  skip the producer's probe site). High-rate callers check this
     *  once per block to skip key packing entirely. */
    static bool bypassed();

    /**
     * Memoized L2 tile menu. The key covers @p accel's physical fields,
     * the (m, k, n) shape, @p budget_fractions and @p stationarity;
     * @p compute supplies the menu on a miss (the dse layer owns
     * tile_candidates(), which this library cannot call — dependency
     * order). Operand kinds and instance counts are intentionally not
     * part of the key: the tile menu is a pure function of the listed
     * inputs only.
     */
    TileMenu tile_menu(const AccelConfig& accel, const GemmShape& shape,
                       const std::vector<double>& budget_fractions,
                       Stationarity stationarity,
                       const std::function<std::vector<L2Tile>()>& compute);

    /**
     * Memoized per-(tile, order) cost table for one slice: entry
     * [t * orders.size() + o] is
     * { model_gemm_compute(accel, shape, tiles[t], orders[o],
     *   stationarity), stage_reuse(shape, tiles[t], orders[o]) } —
     * the exact layout the DSE's SliceBound indexes. Both members are
     * pure functions of the same key, so they share one entry.
     */
    GemmCostTable gemm_costs(const AccelConfig& accel,
                             const GemmShape& shape,
                             const std::vector<L2Tile>& tiles,
                             const std::vector<LoopOrder>& orders,
                             Stationarity stationarity);

    /**
     * Generic memoization front door for payload families this header
     * cannot name (e.g. the attention plan base, whose type lives in
     * attention_cost.cc). The caller packs its key as raw 64-bit words
     * (doubles via bit_cast — same bit-for-bit strictness as the typed
     * methods) under a family @p tag; @p payload_bytes is the
     * approximate payload footprint charged against the capacity
     * budget. Returns nullptr when the cache is bypassed (disabled or
     * a fault is armed) — the caller runs its uncached path; the
     * typed built-ins use tags below kFirstExternalTag.
     */
    using OpaquePayload = std::shared_ptr<const void>;
    static constexpr std::uint64_t kFirstExternalTag = 8;
    template <typename Compute>
    OpaquePayload
    memoize(std::uint64_t tag, const std::uint64_t* words,
            std::size_t count, std::uint64_t payload_bytes,
            Compute&& compute)
    {
        // Trampoline instead of std::function: the capture list of a
        // typical compute lambda overflows the small-object buffer, and
        // this runs on the hit path — it must not allocate.
        const auto call = [](void* ctx) -> OpaquePayload {
            return (*static_cast<Compute*>(ctx))();
        };
        return memoize_erased(tag, words, count, payload_bytes, call,
                              &compute);
    }

    /**
     * Incremental binary key for the find()/insert() pair: families
     * that probe many entries per shared key prefix (e.g. the
     * per-point attention cost — one prefix per plan-base block, two
     * suffix words per point) pack the prefix once, mark() it, and
     * between probes rewind() and re-append only the suffix. Packing
     * rules match the internal key builder word for word (doubles as
     * raw bit patterns, tag first), so the same no-aliasing guarantee
     * applies. The buffer is reused — steady state allocates nothing.
     */
    class ProbeKey
    {
      public:
        void reset(std::uint64_t tag);
        void add(std::uint64_t word);
        void add(double value); ///< raw bit pattern, bit-for-bit strict

        /** Snapshots the current prefix; rewind() restores it. */
        void mark();
        void rewind();

      private:
        friend class EvalCache;
        std::uint64_t hash_ = 0;
        std::uint64_t mark_hash_ = 0;
        std::size_t mark_size_ = 0;
        std::vector<std::uint64_t> words_;
    };

    /**
     * Probe-only lookup for families whose compute step is batched:
     * the caller collects the misses, computes them together (SoA
     * evaluation), then publishes the results through insert().
     * Returns nullptr on a miss or when the cache is bypassed; counts
     * one hit or miss per non-bypassed call.
     */
    OpaquePayload find(const ProbeKey& key);

    /**
     * Publishes a computed payload under @p key. No-op when bypassed;
     * a racing duplicate keeps the first entry (bit-identical by
     * purity). @p payload_bytes is the approximate footprint charged
     * against the capacity budget, as in memoize().
     */
    void insert(const ProbeKey& key, OpaquePayload payload,
                std::uint64_t payload_bytes);

    /**
     * Packs the physical AccelConfig fingerprint (the same field list
     * the built-in families key on — `name` and `caps` are policy
     * metadata, deliberately excluded) into @p key, so external
     * families cannot drift from the internal accel fingerprint.
     */
    static void append_accel(ProbeKey& key, const AccelConfig& accel);

    CacheStats stats() const;
    void reset_stats();

    /**
     * Drops every entry and bumps the L1 epoch so every thread's
     * front-end re-misses (outstanding shared_ptr handles stay valid).
     */
    void clear();

    /**
     * Approximate process-wide payload budget. A shard whose share
     * overflows is reset wholesale (counted in CacheStats::evictions) —
     * the population is small and uniform enough that LRU bookkeeping
     * would cost more than the occasional recompute. Thread-local L1s
     * are untouched: their slots pin at most kL1Slots payloads per
     * thread and keep serving bit-identical entries by purity.
     */
    void set_capacity_bytes(std::uint64_t capacity);

    /** Slots in each thread's direct-mapped L1 front-end. Sized so a
     *  quick-search sweep's whole working set — per-point outcomes
     *  plus the per-slice menus/tables/plan bases — stays resident
     *  per thread (~50 KB/thread), keeping steady-state probes
     *  lock-free even with oversubscribed worker threads. */
    static constexpr std::size_t kL1Slots = 1024;

    struct KeyScratch; // thread-local binary key builder (see .cc)

  private:
    EvalCache();

    struct Shard;

    template <typename Payload, typename Compute>
    std::shared_ptr<const Payload> lookup(const KeyScratch& key,
                                          const Compute& compute);

    /** Type-erased core of lookup(); @p compute_entry returns the
     *  payload plus its byte cost for the capacity budget. */
    template <typename ComputeEntry>
    OpaquePayload lookup_raw(const KeyScratch& key,
                             const ComputeEntry& compute_entry);

    /** Out-of-line core of memoize() (keeps the template thin). */
    OpaquePayload memoize_erased(std::uint64_t tag,
                                 const std::uint64_t* words,
                                 std::size_t count,
                                 std::uint64_t payload_bytes,
                                 OpaquePayload (*compute)(void*),
                                 void* ctx);

    /** Shard count: sized so per-point probes from oversubscribed
     *  worker threads rarely collide on one mutex. Selection uses the
     *  hash's HIGH bits — the low bits index the L1 slots. */
    static constexpr std::size_t kShards = 64;

    static std::size_t shard_index(std::uint64_t hash)
    {
        return (hash >> 58) % kShards;
    }

    std::unique_ptr<Shard[]> shards_;
    std::atomic<std::uint64_t> capacity_bytes_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace flat

#endif // FLAT_COSTMODEL_EVAL_CACHE_H

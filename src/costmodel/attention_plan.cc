#include "costmodel/attention_plan.h"

#include <algorithm>

#include "common/math_util.h"
#include "common/status.h"
#include "costmodel/operator_cost.h"
#include "dataflow/reuse.h"

namespace flat {

FetchSplit
split_fetches(bool staged, double rho_sg, double rho_sg2,
              double unstaged_events)
{
    FetchSplit out;
    if (!staged) {
        out.dram = unstaged_events;
        return out;
    }
    const double spill = std::max(0.0, 1.0 - rho_sg - rho_sg2);
    out.dram = rho_sg + rho_sg2 + spill * (unstaged_events + 1.0);
    out.sg2 = rho_sg2 * unstaged_events;
    return out;
}

Residency
allocate_residency(const AccelConfig& accel, const FusedDataflow& dataflow,
                   const AttentionDims& dims, const CrossLoopExtent& extent,
                   const GemmShape& logit_shape,
                   const GemmShape& attend_shape, bool inter_in_rf)
{
    const double bpe = accel.bytes_per_element;
    const double inst = static_cast<double>(extent.instances_per_pass);
    const double rows = static_cast<double>(extent.rows_per_pass);
    const double kv = static_cast<double>(dims.kv_len);
    const double dk = static_cast<double>(dims.head_dim);
    // GQA: each staged K/V slice is shared by heads/kv_heads query
    // heads, so the bytes to hold resident shrink by kv_frac (exactly
    // 1.0 for MHA — the arithmetic below is then bit-identical).
    const double kv_frac = dims.kv_frac();

    // Mandatory streaming-tile reservation for the unstaged tensors.
    const L2Tile lt = dataflow.l2_logit.clamped(logit_shape);
    const L2Tile at = dataflow.l2_attend.clamped(attend_shape);
    const std::uint32_t b = accel.bytes_per_element;
    double reserve = 0.0;
    if (!dataflow.stage.query) {
        reserve += 2.0 * lt.a_bytes(b);
    }
    if (!dataflow.stage.key) {
        reserve += 2.0 * lt.b_bytes(b);
    }
    if (!dataflow.stage.value) {
        reserve += 2.0 * at.b_bytes(b);
    }
    if (!dataflow.stage.output) {
        reserve += 2.0 * at.c_bytes(b);
    }
    if (!dataflow.stage.intermediate && !inter_in_rf) {
        reserve += 2.0 * (lt.c_bytes(b) + at.a_bytes(b));
    }

    double capacity =
        std::max(0.0, static_cast<double>(accel.sg_bytes) - reserve);
    double capacity2 = static_cast<double>(accel.sg2_bytes);

    struct Demand {
        double* rho;
        double* rho2;
        double bytes;
    };
    Residency res;
    // Fixed-capacity demand lists (at most 1 + 4 tensors): this runs
    // once per DSE point, so it must not touch the heap.
    Demand demands[5];
    std::size_t n_demands = 0;
    if (dataflow.stage.intermediate && !inter_in_rf) {
        // Highest priority: the FLAT-tile itself (single-buffered).
        demands[n_demands++] = {&res.inter, &res.inter2,
                                rows * kv * inst * bpe};
    }
    Demand staged[4];
    std::size_t n_staged = 0;
    if (dataflow.stage.query) {
        staged[n_staged++] = {&res.q, &res.q2,
                              2.0 * rows * dk * inst * bpe};
    }
    if (dataflow.stage.output) {
        staged[n_staged++] = {&res.out, &res.out2,
                              2.0 * rows * dk * inst * bpe};
    }
    if (dataflow.stage.key) {
        staged[n_staged++] = {&res.k, &res.k2,
                              2.0 * kv * dk * inst * bpe * kv_frac};
    }
    if (dataflow.stage.value) {
        staged[n_staged++] = {&res.v, &res.v2,
                              2.0 * kv * dk * inst * bpe * kv_frac};
    }
    // Insertion sort by bytes ascending (stable; <= 4 elements). Equal
    // demands keep the q/out/k/v emission order above, matching what
    // std::sort's small-range insertion path produced historically.
    for (std::size_t i = 1; i < n_staged; ++i) {
        const Demand d = staged[i];
        std::size_t j = i;
        while (j > 0 && d.bytes < staged[j - 1].bytes) {
            staged[j] = staged[j - 1];
            --j;
        }
        staged[j] = d;
    }
    for (std::size_t i = 0; i < n_staged; ++i) {
        demands[n_demands++] = staged[i];
    }

    double wanted = 0.0;
    double granted = 0.0;
    for (std::size_t di = 0; di < n_demands; ++di) {
        const Demand& d = demands[di];
        const double fit =
            (d.bytes <= 0.0) ? 1.0 : std::min(1.0, capacity / d.bytes);
        *d.rho = fit;
        capacity -= fit * d.bytes;
        // Overflow into the second-level buffer when present.
        const double left = (1.0 - fit) * d.bytes;
        const double fit2 =
            (left <= 0.0 || capacity2 <= 0.0)
                ? 0.0
                : std::min(1.0, capacity2 / left) * (1.0 - fit);
        *d.rho2 = fit2;
        capacity2 -= fit2 * d.bytes;
        wanted += d.bytes;
        granted += (fit + fit2) * d.bytes;
    }
    res.overall = (wanted > 0.0) ? granted / wanted : 1.0;
    return res;
}

AttentionPlan
make_plan(const AccelConfig& accel, const AttentionDims& dims,
          const FusedDataflow& dataflow, const PlannedGemmCosts& planned)
{
    dims.validate();
    dataflow.validate();

    AttentionPlan plan;
    plan.extent = cross_loop_extent(dataflow.cross, dims.batch, dims.heads,
                                    dims.q_len);
    const std::uint64_t rows = plan.extent.rows_per_pass;
    const bool column =
        dataflow.cross.granularity == Granularity::kColumn;
    const std::uint64_t cols_eff =
        cross_col_tile(dataflow.cross, dims.kv_len);
    plan.inter_in_rf = column;

    plan.logit_shape.m = rows;
    plan.logit_shape.k = dims.head_dim;
    plan.logit_shape.n = cols_eff;
    plan.logit_shape.instances = 1;
    plan.logit_shape.a_kind = OperandKind::kActivation;
    plan.logit_shape.b_kind = OperandKind::kActivation;

    plan.attend_shape.m = rows;
    plan.attend_shape.k = cols_eff;
    plan.attend_shape.n = dims.head_dim;
    plan.attend_shape.instances = 1;
    plan.attend_shape.a_kind = OperandKind::kActivation;
    plan.attend_shape.b_kind = OperandKind::kActivation;

    plan.slices = static_cast<double>(plan.extent.passes) *
                  plan.extent.instances_per_pass;
    if (column) {
        plan.col_blocks = static_cast<double>(
            cross_col_blocks(dataflow.cross, dims.kv_len));
        plan.slices *= plan.col_blocks;
    }

    // Injected costs come from the DSE's per-slice tables (see
    // PlannedGemmCosts): same pure functions of the same inputs, so the
    // plan is bit-identical either way — just cheaper.
    if (planned.logit != nullptr) {
        plan.logit_compute = planned.logit->compute;
        plan.logit_reuse = planned.logit->reuse;
    } else {
        plan.logit_compute =
            model_gemm_compute(accel, plan.logit_shape, dataflow.l2_logit,
                               dataflow.order_logit, dataflow.stat_logit);
        plan.logit_reuse = stage_reuse(plan.logit_shape, dataflow.l2_logit,
                                       dataflow.order_logit);
    }
    if (planned.attend != nullptr) {
        plan.attend_compute = planned.attend->compute;
        plan.attend_reuse = planned.attend->reuse;
    } else {
        plan.attend_compute = model_gemm_compute(
            accel, plan.attend_shape, dataflow.l2_attend,
            dataflow.order_attend, dataflow.stat_attend);
        plan.attend_reuse = stage_reuse(
            plan.attend_shape, dataflow.l2_attend, dataflow.order_attend);
    }

    const double bpe = accel.bytes_per_element;
    const double bh =
        static_cast<double>(dims.batch) * dims.heads;
    plan.q_bytes = bh * dims.q_len * dims.head_dim * bpe;
    // GQA shares one K/V head across heads/kv_heads query heads, so
    // the distinct K/V bytes scale by kv_frac (== 1.0 for MHA).
    plan.k_bytes =
        bh * dims.kv_len * dims.head_dim * bpe * dims.kv_frac();
    plan.v_bytes = plan.k_bytes;
    plan.out_bytes = plan.q_bytes;
    plan.inter_bytes = bh * dims.q_len * dims.kv_len * bpe;

    plan.kv_chunks = static_cast<double>(
        ceil_div(dims.q_len, plan.extent.rows_per_pass));

    plan.footprint =
        fused_live_footprint(dataflow, dims, accel.bytes_per_element);
    plan.res = allocate_residency(accel, dataflow, dims, plan.extent,
                                  plan.logit_shape, plan.attend_shape,
                                  plan.inter_in_rf);
    return plan;
}

TrafficBytes
plan_dram_traffic(const AttentionPlan& plan, const FusedStageFlags& stage)
{
    const Residency& res = plan.res;
    TrafficBytes t;

    // Inputs of L: Q rows stream per slice; K/V per row chunk.
    const FetchSplit q_split = split_fetches(
        stage.query, res.q, res.q2, plan.logit_reuse.a_repeats);
    t.dram_read += q_split.dram * plan.q_bytes;
    t.sg2_read += q_split.sg2 * plan.q_bytes;

    const FetchSplit k_split = split_fetches(
        stage.key, res.k, res.k2,
        plan.kv_chunks * plan.logit_reuse.b_repeats);
    t.dram_read += k_split.dram * plan.k_bytes;
    t.sg2_read += k_split.sg2 * plan.k_bytes;

    const FetchSplit v_split = split_fetches(
        stage.value, res.v, res.v2,
        plan.kv_chunks * plan.attend_reuse.b_repeats);
    t.dram_read += v_split.dram * plan.v_bytes;
    t.sg2_read += v_split.sg2 * plan.v_bytes;

    // SG2-resident input fractions are filled from DRAM through SG2.
    t.sg2_write += (res.q2 * plan.q_bytes + res.k2 * plan.k_bytes +
                    res.v2 * plan.v_bytes);

    // Output of A (events mirrored: writes dominate).
    if (stage.output) {
        const double spill_out =
            std::max(0.0, 1.0 - res.out - res.out2);
        t.dram_write += (res.out + res.out2 +
                         spill_out * plan.attend_reuse.c_write_repeats) *
                        plan.out_bytes;
        t.dram_read += spill_out * plan.attend_reuse.c_read_repeats *
                       plan.out_bytes;
        t.sg2_write += res.out2 * plan.attend_reuse.c_write_repeats *
                       plan.out_bytes;
        t.sg2_read += res.out2 *
                      (plan.attend_reuse.c_read_repeats + 1.0) *
                      plan.out_bytes;
    } else {
        t.dram_write +=
            plan.attend_reuse.c_write_repeats * plan.out_bytes;
        t.dram_read +=
            plan.attend_reuse.c_read_repeats * plan.out_bytes;
    }

    // Intermediate tensor: on-chip when SG-resident; SG2-resident
    // fractions round-trip through SG2; the rest round-trips through
    // DRAM (L writes it, softmax reads+writes it, A reads it) plus the
    // failed-staging penalty (§6.2.1's "one extra pass"). A register-
    // tier-resident intermediate (C-Gran) never leaves the PE array.
    if (!plan.inter_in_rf) {
        const double inter_write_events =
            plan.logit_reuse.c_write_repeats + 1.0; // + softmax write
        const double inter_read_events =
            plan.logit_reuse.c_read_repeats +
            plan.attend_reuse.a_repeats + 1.0; // + softmax read
        const double spill =
            stage.intermediate
                ? std::max(0.0, 1.0 - res.inter - res.inter2)
                : 1.0;
        const double staging_penalty = stage.intermediate ? spill : 0.0;
        t.dram_write += (spill * inter_write_events + staging_penalty) *
                        plan.inter_bytes;
        t.dram_read += (spill * inter_read_events + staging_penalty) *
                       plan.inter_bytes;
        t.sg2_write += res.inter2 * inter_write_events * plan.inter_bytes;
        t.sg2_read += res.inter2 * inter_read_events * plan.inter_bytes;
    }
    return t;
}

double
softmax_sfu_cycles(const AccelConfig& accel, const AttentionPlan& plan)
{
    return (plan.inter_bytes / accel.bytes_per_element) / accel.sfu_lanes;
}

double
flash_rescale_elems(const AccelConfig& accel, const AttentionPlan& plan)
{
    const double out_elems = plan.out_bytes / accel.bytes_per_element;
    return (plan.col_blocks - 1.0) * out_elems;
}

double
half_macs(const AttentionDims& dims)
{
    return static_cast<double>(attention_macs(dims)) / 2.0;
}

Phase&
next_phase(std::vector<Phase>& out, std::size_t& idx, const char* label,
           StageTag stage, int group)
{
    if (idx == out.size()) {
        out.emplace_back();
    }
    Phase& phase = out[idx++];
    phase.label = label;
    phase.stage = stage;
    phase.group = group;
    phase.track = -1;
    phase.compute_cycles = 0.0;
    phase.sfu_cycles = 0.0;
    phase.link_latency_cycles = 0.0;
    phase.activity = ActivityCounts{};
    phase.pace_only = false;
    return phase;
}

void
emit_cold_start(std::vector<Phase>& out, std::size_t& idx,
                const AttentionPlan& plan, const AttentionDims& dims)
{
    Phase& phase = next_phase(out, idx,
                              dims.decode
                                  ? "cold start (first KV-cache fetch)"
                                  : "cold start (first Q/K slice fetch)",
                              StageTag::kColdStart, 0);
    phase.pace_only = true;
    phase.activity.traffic.dram_read =
        (plan.q_bytes + plan.k_bytes) /
        (plan.slices > 0.0 ? plan.slices : 1.0);
}

std::uint64_t
kv_cache_bytes(const AttentionDims& dims, std::uint32_t bytes_per_element)
{
    return dims.batch * dims.kv_heads_eff() * dims.kv_len *
           dims.head_dim * 2ull * bytes_per_element;
}

bool
kv_cache_admitted(const AccelConfig& accel, const AttentionDims& dims)
{
    if (!dims.decode || accel.dram_bytes == 0) {
        return true;
    }
    return kv_cache_bytes(dims, accel.bytes_per_element) <=
           accel.dram_bytes;
}

Phase&
emit_gemm_phase(std::vector<Phase>& out, std::size_t& idx,
                const char* label, StageTag stage, int group,
                const GemmComputeCost& compute, double occupancy_cycles,
                const AttentionDims& dims, double slices)
{
    Phase& phase = next_phase(out, idx, label, stage, group);
    phase.compute_cycles = occupancy_cycles;
    phase.activity.macs = half_macs(dims);
    phase.activity.sl_accesses = 3.0 * phase.activity.macs;
    phase.activity.traffic.sg_read =
        (compute.sg_read_bytes + compute.sg_psum_read_bytes) * slices;
    phase.activity.traffic.sg_write = compute.sg_write_bytes * slices;
    return phase;
}

OperatorCost
finalize_cost(const AccelConfig& accel, const AttentionDims& dims,
              const AttentionPlan& plan, const TimelineResult& timeline,
              const char* name)
{
    OperatorCost cost;
    cost.name = name;
    cost.ideal_cycles = attention_ideal_cycles(accel, dims);
    cost.cycles = timeline.cycles;
    cost.live_footprint_bytes = plan.footprint;
    cost.resident_fraction = plan.res.overall;
    cost.activity = timeline.activity;
    return cost;
}

std::uint64_t
attention_macs(const AttentionDims& dims)
{
    const std::uint64_t bh = dims.batch * dims.heads;
    // L: N x dk x kv, A: N x kv x dk per (batch, head).
    return 2 * bh * dims.q_len * dims.kv_len * dims.head_dim;
}

double
attention_ideal_cycles(const AccelConfig& accel, const AttentionDims& dims)
{
    return static_cast<double>(attention_macs(dims)) /
           accel.macs_per_cycle();
}

} // namespace flat

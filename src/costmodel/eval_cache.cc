#include "costmodel/eval_cache.h"

#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"

namespace flat {
namespace {

std::atomic<bool> g_enabled{true};

/**
 * The cached computations carry fault-injection probe sites (e.g.
 * "gemm_engine.tile_menu"). Serving a memoized entry would skip the
 * probe and silently defuse an armed fault, so while any fault is armed
 * the cache steps aside — robustness tests observe the exact same
 * behavior as before the cache existed.
 */
bool
bypass_cache()
{
    return !g_enabled.load(std::memory_order_relaxed) ||
           fault_injection::enabled();
}

/** 64-bit FNV-1a over the canonical key; shard selector only — entry
 *  identity is the full key string, so collisions cannot alias. */
std::uint64_t
fnv1a(const std::string& text)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

void
append_u64(std::string& key, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ",", value);
    key += buf;
}

/** Shortest-unambiguous canonical double spelling: %.17g round-trips
 *  every finite IEEE-754 double, so equal keys imply equal inputs. */
void
append_double(std::string& key, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g,", value);
    key += buf;
}

/**
 * Canonical fingerprint of the physical fields model_gemm_compute()
 * and the tile-menu builder can observe. `name` and `caps` are policy
 * metadata, deliberately excluded so renamed-but-identical platforms
 * share entries.
 */
void
append_accel(std::string& key, const AccelConfig& accel)
{
    append_u64(key, accel.pe_rows);
    append_u64(key, accel.pe_cols);
    append_u64(key, accel.sl_bytes);
    append_u64(key, accel.sg_bytes);
    append_u64(key, accel.sg2_bytes);
    append_double(key, accel.sg2_bw);
    append_double(key, accel.onchip_bw);
    append_double(key, accel.offchip_bw);
    append_double(key, accel.clock_hz);
    append_double(key, accel.sfu_lanes);
    append_u64(key, accel.bytes_per_element);
    append_u64(key, static_cast<std::uint64_t>(accel.distribution_noc));
    append_u64(key, static_cast<std::uint64_t>(accel.reduction_noc));
}

/** Only (m, k, n) feed the cached computations; operand kinds and
 *  instance counts are scaling metadata applied by the callers. */
void
append_shape(std::string& key, const GemmShape& shape)
{
    append_u64(key, shape.m);
    append_u64(key, shape.k);
    append_u64(key, shape.n);
}

/** Approximate footprint of one entry: payload + key + node overhead. */
template <typename Payload>
std::uint64_t
entry_bytes(const std::string& key, const Payload& payload)
{
    return payload.size() * sizeof(typename Payload::value_type) +
           key.size() + 64;
}

} // namespace

double
CacheStats::hit_rate() const
{
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
}

struct EvalCache::Shard {
    std::mutex mutex;
    std::unordered_map<std::string, TileMenu> menus;
    std::unordered_map<std::string, GemmCostTable> costs;
    std::uint64_t bytes = 0;
};

EvalCache::EvalCache()
    : shards_(new Shard[kShards]),
      capacity_bytes_(256ull * 1024 * 1024)
{
}

EvalCache&
EvalCache::instance()
{
    // Leaked on purpose: worker threads may outlive static destructors.
    static EvalCache* cache = new EvalCache();
    return *cache;
}

void
EvalCache::set_enabled(bool enabled)
{
    g_enabled.store(enabled, std::memory_order_relaxed);
}

bool
EvalCache::enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

template <typename Payload, typename Compute>
std::shared_ptr<const Payload>
EvalCache::lookup(std::string key, const Compute& compute)
{
    constexpr bool kIsMenu =
        std::is_same_v<Payload, std::vector<L2Tile>>;
    Shard& shard = shards_[fnv1a(key) % kShards];
    auto map_of = [](Shard& s) -> auto& {
        if constexpr (kIsMenu) {
            return s.menus;
        } else {
            return s.costs;
        }
    };
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto& map = map_of(shard);
        const auto it = map.find(key);
        if (it != map.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }

    // Compute outside the lock: misses are the expensive path and must
    // not serialize against each other across threads.
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto entry = std::make_shared<const Payload>(compute());

    std::lock_guard<std::mutex> lock(shard.mutex);
    auto& map = map_of(shard);
    const auto [it, inserted] = map.emplace(key, entry);
    if (!inserted) {
        return it->second; // lost the race; entries are bit-identical
    }
    shard.bytes += entry_bytes(key, *entry);
    const std::uint64_t budget =
        capacity_bytes_.load(std::memory_order_relaxed) / kShards;
    if (shard.bytes > budget) {
        // Whole-shard reset; the just-inserted entry survives via the
        // shared_ptr we are about to return (and re-inserting it would
        // immediately re-overflow a tiny budget).
        evictions_.fetch_add(shard.menus.size() + shard.costs.size(),
                             std::memory_order_relaxed);
        shard.menus.clear();
        shard.costs.clear();
        shard.bytes = 0;
    }
    return entry;
}

EvalCache::TileMenu
EvalCache::tile_menu(const AccelConfig& accel, const GemmShape& shape,
                     const std::vector<double>& budget_fractions,
                     Stationarity stationarity,
                     const std::function<std::vector<L2Tile>()>& compute)
{
    if (bypass_cache()) {
        return std::make_shared<const std::vector<L2Tile>>(compute());
    }
    std::string key = "menu:";
    append_accel(key, accel);
    append_shape(key, shape);
    append_u64(key, static_cast<std::uint64_t>(stationarity));
    for (const double fraction : budget_fractions) {
        append_double(key, fraction);
    }
    return lookup<std::vector<L2Tile>>(std::move(key), compute);
}

EvalCache::GemmCostTable
EvalCache::gemm_costs(const AccelConfig& accel, const GemmShape& shape,
                      const std::vector<L2Tile>& tiles,
                      const std::vector<LoopOrder>& orders,
                      Stationarity stationarity)
{
    const auto compute = [&] {
        std::vector<GemmSliceCost> table;
        table.reserve(tiles.size() * orders.size());
        for (const L2Tile& tile : tiles) {
            for (const LoopOrder order : orders) {
                table.push_back(
                    {model_gemm_compute(accel, shape, tile, order,
                                        stationarity),
                     stage_reuse(shape, tile, order)});
            }
        }
        return table;
    };
    if (bypass_cache()) {
        return std::make_shared<const std::vector<GemmSliceCost>>(
            compute());
    }
    std::string key = "costs:";
    append_accel(key, accel);
    append_shape(key, shape);
    append_u64(key, static_cast<std::uint64_t>(stationarity));
    key += "t:";
    for (const L2Tile& tile : tiles) {
        append_u64(key, tile.m);
        append_u64(key, tile.k);
        append_u64(key, tile.n);
    }
    key += "o:";
    for (const LoopOrder order : orders) {
        append_u64(key, static_cast<std::uint64_t>(order));
    }
    return lookup<std::vector<GemmSliceCost>>(std::move(key), compute);
}

CacheStats
EvalCache::stats() const
{
    CacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    for (std::size_t s = 0; s < kShards; ++s) {
        Shard& shard = shards_[s];
        std::lock_guard<std::mutex> lock(shard.mutex);
        out.entries += shard.menus.size() + shard.costs.size();
        out.bytes += shard.bytes;
    }
    return out;
}

void
EvalCache::reset_stats()
{
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
}

void
EvalCache::clear()
{
    for (std::size_t s = 0; s < kShards; ++s) {
        Shard& shard = shards_[s];
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.menus.clear();
        shard.costs.clear();
        shard.bytes = 0;
    }
}

void
EvalCache::set_capacity_bytes(std::uint64_t capacity)
{
    capacity_bytes_.store(capacity, std::memory_order_relaxed);
}

} // namespace flat

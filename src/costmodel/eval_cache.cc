#include "costmodel/eval_cache.h"

#include <algorithm>
#include <array>
#include <bit>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"

namespace flat {
namespace {

std::atomic<bool> g_enabled{true};

/**
 * The cached computations carry fault-injection probe sites (e.g.
 * "gemm_engine.tile_menu"). Serving a memoized entry would skip the
 * probe and silently defuse an armed fault, so while any fault is armed
 * the cache steps aside — robustness tests observe the exact same
 * behavior as before the cache existed.
 */
bool
bypass_cache()
{
    return !g_enabled.load(std::memory_order_relaxed) ||
           fault_injection::enabled();
}

/** splitmix64 finalizer; shard/slot selector only — entry identity is
 *  the full word sequence, so collisions cannot alias. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/** Bumped by clear(); every thread's L1 re-misses after a mismatch. */
std::atomic<std::uint64_t> g_l1_epoch{0};

/**
 * Per-thread L1 hit counter block. Blocks are heap-allocated, listed in
 * a registry that is never freed (stats() may run after a worker thread
 * exited), and recycled through a freelist when their thread exits so
 * short-lived pool threads do not grow the registry without bound. The
 * accumulated count survives recycling — totals only ever grow, except
 * through reset_stats().
 */
struct L1Counters {
    std::atomic<std::uint64_t> hits{0};
};

std::mutex&
l1_registry_mutex()
{
    static std::mutex* m = new std::mutex();
    return *m;
}

std::vector<L1Counters*>&
l1_registry()
{
    static std::vector<L1Counters*>* all = new std::vector<L1Counters*>();
    return *all;
}

std::vector<L1Counters*>&
l1_freelist()
{
    static std::vector<L1Counters*>* free_ = new std::vector<L1Counters*>();
    return *free_;
}

L1Counters*
acquire_l1_counters()
{
    std::lock_guard<std::mutex> lock(l1_registry_mutex());
    if (!l1_freelist().empty()) {
        L1Counters* block = l1_freelist().back();
        l1_freelist().pop_back();
        return block;
    }
    L1Counters* block = new L1Counters();
    l1_registry().push_back(block);
    return block;
}

void
release_l1_counters(L1Counters* block)
{
    std::lock_guard<std::mutex> lock(l1_registry_mutex());
    l1_freelist().push_back(block);
}

} // namespace

/**
 * Thread-local binary key builder. add() packs one 64-bit word and
 * folds it into the rolling hash; doubles go in as raw bit patterns
 * (bit-for-bit identity, stricter than operator==). The buffer is
 * reused across lookups, so steady-state key building allocates
 * nothing.
 */
struct EvalCache::KeyScratch {
    std::uint64_t hash = 0;
    std::vector<std::uint64_t> words;

    void
    reset(std::uint64_t tag)
    {
        hash = 0xcbf29ce484222325ull; // FNV offset basis as seed
        words.clear();
        add(tag);
    }

    void
    add(std::uint64_t word)
    {
        words.push_back(word);
        hash = mix64(hash ^ word) + 0x9e3779b97f4a7c15ull;
    }

    void
    add(double value)
    {
        add(std::bit_cast<std::uint64_t>(value));
    }
};

namespace {

/** Key families; the tag is the first word of every key, so a tile-menu
 *  key can never equal a cost-table key word-for-word. Callers of the
 *  generic memoize() front door bring their own tags starting at
 *  EvalCache::kFirstExternalTag. */
constexpr std::uint64_t kTagMenu = 1;
constexpr std::uint64_t kTagCosts = 2;

EvalCache::KeyScratch&
scratch_key()
{
    thread_local EvalCache::KeyScratch key;
    return key;
}

/**
 * Binary fingerprint of the physical fields the cost model can
 * observe. `name` and `caps` are policy metadata, deliberately
 * excluded so renamed-but-identical platforms share entries. Templated
 * over the key builder (KeyScratch and ProbeKey share the add()
 * vocabulary) so the internal families and the public
 * EvalCache::append_accel() can never drift apart.
 */
template <typename Key>
void
append_accel_fields(Key& key, const AccelConfig& accel)
{
    key.add(static_cast<std::uint64_t>(accel.pe_rows));
    key.add(static_cast<std::uint64_t>(accel.pe_cols));
    key.add(static_cast<std::uint64_t>(accel.sl_bytes));
    key.add(static_cast<std::uint64_t>(accel.sg_bytes));
    key.add(static_cast<std::uint64_t>(accel.sg2_bytes));
    key.add(accel.sg2_bw);
    key.add(accel.onchip_bw);
    key.add(accel.offchip_bw);
    key.add(accel.clock_hz);
    key.add(accel.sfu_lanes);
    key.add(static_cast<std::uint64_t>(accel.bytes_per_element));
    key.add(static_cast<std::uint64_t>(accel.distribution_noc));
    key.add(static_cast<std::uint64_t>(accel.reduction_noc));
}

/** Only (m, k, n) feed the cached computations; operand kinds and
 *  instance counts are scaling metadata applied by the callers. */
void
append_shape(EvalCache::KeyScratch& key, const GemmShape& shape)
{
    key.add(shape.m);
    key.add(shape.k);
    key.add(shape.n);
}

/** Owned copy of a key as stored in a shard map. */
struct StoredKey {
    std::uint64_t hash = 0;
    std::vector<std::uint64_t> words;
};

/** Non-owning probe view — shard hits never copy the key. */
struct KeyRef {
    std::uint64_t hash;
    const std::uint64_t* data;
    std::size_t size;
};

struct KeyHash {
    using is_transparent = void;
    std::size_t
    operator()(const StoredKey& key) const noexcept
    {
        return static_cast<std::size_t>(key.hash);
    }
    std::size_t
    operator()(const KeyRef& key) const noexcept
    {
        return static_cast<std::size_t>(key.hash);
    }
};

struct KeyEqual {
    using is_transparent = void;
    static bool
    words_equal(const std::vector<std::uint64_t>& words,
                const std::uint64_t* data, std::size_t size)
    {
        return words.size() == size &&
               std::equal(words.begin(), words.end(), data);
    }
    bool
    operator()(const StoredKey& a, const StoredKey& b) const
    {
        return a.hash == b.hash &&
               words_equal(a.words, b.words.data(), b.words.size());
    }
    bool
    operator()(const StoredKey& a, const KeyRef& b) const
    {
        return a.hash == b.hash && words_equal(a.words, b.data, b.size);
    }
    bool
    operator()(const KeyRef& a, const StoredKey& b) const
    {
        return (*this)(b, a);
    }
};

/** Payloads are type-erased; the key's tag word guarantees the stored
 *  type matches the requested one. */
struct ShardEntry {
    std::shared_ptr<const void> payload;
    std::uint64_t bytes = 0;
};

/**
 * Direct-mapped thread_local front-end: kL1Slots slots indexed by the
 * key hash's low bits, full-key equality on probe. No locks, no shared
 * cache lines — the hot repeat-lookup path of a search slice never
 * leaves the thread. Destroyed at thread exit (releasing its pinned
 * payloads); its counter block outlives it through the registry.
 */
struct L1Cache {
    struct Slot {
        std::uint64_t hash = 0;
        std::vector<std::uint64_t> words; // empty = vacant
        std::shared_ptr<const void> payload;
    };

    std::uint64_t epoch;
    L1Counters* counters;
    std::array<Slot, EvalCache::kL1Slots> slots;

    L1Cache()
        : epoch(g_l1_epoch.load(std::memory_order_acquire)),
          counters(acquire_l1_counters())
    {
    }

    ~L1Cache() { release_l1_counters(counters); }

    void
    invalidate_if_stale()
    {
        const std::uint64_t now =
            g_l1_epoch.load(std::memory_order_acquire);
        if (now == epoch) {
            return;
        }
        for (Slot& slot : slots) {
            slot.hash = 0;
            slot.words.clear();
            slot.payload.reset();
        }
        epoch = now;
    }
};

L1Cache&
local_l1()
{
    thread_local L1Cache l1;
    return l1;
}

} // namespace

double
CacheStats::hit_rate() const
{
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
}

struct EvalCache::Shard {
    std::mutex mutex;
    std::unordered_map<StoredKey, ShardEntry, KeyHash, KeyEqual> entries;
    std::uint64_t bytes = 0;
};

EvalCache::EvalCache()
    : shards_(new Shard[kShards]),
      capacity_bytes_(256ull * 1024 * 1024)
{
}

EvalCache&
EvalCache::instance()
{
    // Leaked on purpose: worker threads may outlive static destructors.
    static EvalCache* cache = new EvalCache();
    return *cache;
}

void
EvalCache::set_enabled(bool enabled)
{
    g_enabled.store(enabled, std::memory_order_relaxed);
}

bool
EvalCache::enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

template <typename ComputeEntry>
EvalCache::OpaquePayload
EvalCache::lookup_raw(const KeyScratch& key,
                      const ComputeEntry& compute_entry)
{
    // Level 1: thread-local, lock-free, direct-mapped.
    L1Cache& l1 = local_l1();
    l1.invalidate_if_stale();
    L1Cache::Slot& slot = l1.slots[key.hash & (kL1Slots - 1)];
    if (slot.hash == key.hash &&
        KeyEqual::words_equal(slot.words, key.words.data(),
                              key.words.size())) {
        l1.counters->hits.fetch_add(1, std::memory_order_relaxed);
        return slot.payload;
    }

    const auto fill_slot = [&](const std::shared_ptr<const void>& entry) {
        slot.hash = key.hash;
        slot.words.assign(key.words.begin(), key.words.end());
        slot.payload = entry;
    };

    // Level 2: the authoritative mutex shard, picked by the hash's
    // high bits (the low bits already index the L1 slot). Locks are
    // opportunistic throughout: every caller owns a compute path, so
    // when the shard is contended — with oversubscribed workers the
    // holder may be descheduled for a whole timeslice — recomputing
    // the pure entry is far cheaper than waiting, and the L1 fill
    // below still converges each thread to lock-free steady state.
    Shard& shard = shards_[shard_index(key.hash)];
    const KeyRef probe{key.hash, key.words.data(), key.words.size()};
    {
        std::shared_ptr<const void> found;
        bool contended = false;
        {
            std::unique_lock<std::mutex> lock(shard.mutex,
                                              std::try_to_lock);
            if (lock.owns_lock()) {
                const auto it = shard.entries.find(probe);
                if (it != shard.entries.end()) {
                    hits_.fetch_add(1, std::memory_order_relaxed);
                    found = it->second.payload;
                }
            } else {
                contended = true;
            }
        }
        if (found) {
            fill_slot(found); // outside the lock — L1 is ours alone
            return found;
        }
        if (contended) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            const auto [entry, payload_bytes] = compute_entry();
            (void)payload_bytes;
            fill_slot(entry); // keep our own copy; skip the shard
            return entry;
        }
    }

    // Compute outside the lock: misses are the expensive path and must
    // not serialize against each other across threads.
    misses_.fetch_add(1, std::memory_order_relaxed);
    const auto [entry, payload_bytes] = compute_entry();

    StoredKey stored;
    stored.hash = key.hash;
    stored.words.assign(key.words.begin(), key.words.end());
    const std::uint64_t cost = payload_bytes +
                               stored.words.size() *
                                   sizeof(std::uint64_t) +
                               64;

    std::shared_ptr<const void> kept = entry;
    {
        std::unique_lock<std::mutex> lock(shard.mutex,
                                          std::try_to_lock);
        if (!lock.owns_lock()) {
            // Contended publish: drop it (a later miss re-inserts the
            // same bit-identical entry) and keep our copy in the L1.
            fill_slot(kept);
            return kept;
        }
        const auto [it, inserted] = shard.entries.emplace(
            std::move(stored),
            ShardEntry{std::shared_ptr<const void>(entry), cost});
        if (!inserted) {
            // Lost the race; entries are bit-identical by purity.
            kept = it->second.payload;
        } else {
            shard.bytes += cost;
            const std::uint64_t budget =
                capacity_bytes_.load(std::memory_order_relaxed) /
                kShards;
            if (shard.bytes > budget) {
                // Whole-shard reset; the just-inserted entry survives
                // via the shared_ptr we are about to return (and
                // re-inserting it would immediately re-overflow a tiny
                // budget).
                evictions_.fetch_add(shard.entries.size(),
                                     std::memory_order_relaxed);
                shard.entries.clear();
                shard.bytes = 0;
            }
        }
    }
    fill_slot(kept);
    return kept;
}

template <typename Payload, typename Compute>
std::shared_ptr<const Payload>
EvalCache::lookup(const KeyScratch& key, const Compute& compute)
{
    return std::static_pointer_cast<const Payload>(
        lookup_raw(key, [&] {
            std::shared_ptr<const Payload> entry =
                std::make_shared<const Payload>(compute());
            const std::uint64_t payload_bytes =
                entry->size() *
                sizeof(typename Payload::value_type);
            return std::make_pair(
                std::shared_ptr<const void>(std::move(entry)),
                payload_bytes);
        }));
}

EvalCache::OpaquePayload
EvalCache::memoize_erased(std::uint64_t tag, const std::uint64_t* words,
                          std::size_t count, std::uint64_t payload_bytes,
                          OpaquePayload (*compute)(void*), void* ctx)
{
    if (bypass_cache()) {
        return nullptr;
    }
    KeyScratch& key = scratch_key();
    key.reset(tag);
    for (std::size_t i = 0; i < count; ++i) {
        key.add(words[i]);
    }
    return lookup_raw(key, [&] {
        return std::make_pair(compute(ctx), payload_bytes);
    });
}

bool
EvalCache::bypassed()
{
    return bypass_cache();
}

void
EvalCache::ProbeKey::reset(std::uint64_t tag)
{
    hash_ = 0xcbf29ce484222325ull; // FNV offset basis, as KeyScratch
    words_.clear();
    add(tag);
    mark_hash_ = hash_;
    mark_size_ = words_.size();
}

void
EvalCache::ProbeKey::add(std::uint64_t word)
{
    words_.push_back(word);
    hash_ = mix64(hash_ ^ word) + 0x9e3779b97f4a7c15ull;
}

void
EvalCache::ProbeKey::add(double value)
{
    add(std::bit_cast<std::uint64_t>(value));
}

void
EvalCache::ProbeKey::mark()
{
    mark_hash_ = hash_;
    mark_size_ = words_.size();
}

void
EvalCache::ProbeKey::rewind()
{
    hash_ = mark_hash_;
    words_.resize(mark_size_);
}

void
EvalCache::append_accel(ProbeKey& key, const AccelConfig& accel)
{
    append_accel_fields(key, accel);
}

EvalCache::OpaquePayload
EvalCache::find(const ProbeKey& key)
{
    if (bypass_cache()) {
        return nullptr;
    }
    L1Cache& l1 = local_l1();
    l1.invalidate_if_stale();
    L1Cache::Slot& slot = l1.slots[key.hash_ & (kL1Slots - 1)];
    if (slot.hash == key.hash_ &&
        KeyEqual::words_equal(slot.words, key.words_.data(),
                              key.words_.size())) {
        l1.counters->hits.fetch_add(1, std::memory_order_relaxed);
        return slot.payload;
    }

    Shard& shard = shards_[shard_index(key.hash_)];
    const KeyRef probe{key.hash_, key.words_.data(), key.words_.size()};
    std::shared_ptr<const void> found;
    {
        // Opportunistic lock: find() callers recompute on a miss
        // anyway, and with oversubscribed worker threads blocking on a
        // mutex whose holder was descheduled costs a whole timeslice —
        // far more than recomputing one point. Purity makes the
        // recompute bit-identical, so contention only shifts a probe
        // from hit to miss.
        std::unique_lock<std::mutex> lock(shard.mutex,
                                          std::try_to_lock);
        if (!lock.owns_lock()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        const auto it = shard.entries.find(probe);
        if (it != shard.entries.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            found = it->second.payload;
        }
    }
    if (found) {
        // Fill outside the lock — the L1 is ours alone.
        slot.hash = key.hash_;
        slot.words.assign(key.words_.begin(), key.words_.end());
        slot.payload = found;
        return found;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
}

void
EvalCache::insert(const ProbeKey& key, OpaquePayload payload,
                  std::uint64_t payload_bytes)
{
    if (bypass_cache() || !payload) {
        return;
    }
    StoredKey stored;
    stored.hash = key.hash_;
    stored.words.assign(key.words_.begin(), key.words_.end());
    const std::uint64_t cost = payload_bytes +
                               stored.words.size() *
                                   sizeof(std::uint64_t) +
                               64;
    Shard& shard = shards_[shard_index(key.hash_)];
    {
        // Opportunistic, like find(): dropping a publish under
        // contention only means a later evaluate() re-inserts the same
        // bit-identical entry — the producing thread keeps its copy in
        // its L1 below either way.
        std::unique_lock<std::mutex> lock(shard.mutex,
                                          std::try_to_lock);
        if (lock.owns_lock()) {
            const auto [it, inserted] = shard.entries.emplace(
                std::move(stored), ShardEntry{payload, cost});
            if (inserted) {
                shard.bytes += cost;
                const std::uint64_t budget =
                    capacity_bytes_.load(std::memory_order_relaxed) /
                    kShards;
                if (shard.bytes > budget) {
                    // Whole-shard reset, as in the memoizing path; the
                    // caller holds its own reference to the payload.
                    evictions_.fetch_add(shard.entries.size(),
                                         std::memory_order_relaxed);
                    shard.entries.clear();
                    shard.bytes = 0;
                }
            }
        }
    }
    // Seed the producing thread's L1: the warm re-run of the same
    // search (the common repeat pattern) probes the same keys from the
    // same worker.
    L1Cache& l1 = local_l1();
    l1.invalidate_if_stale();
    L1Cache::Slot& slot = l1.slots[key.hash_ & (kL1Slots - 1)];
    slot.hash = key.hash_;
    slot.words.assign(key.words_.begin(), key.words_.end());
    slot.payload = std::move(payload);
}

EvalCache::TileMenu
EvalCache::tile_menu(const AccelConfig& accel, const GemmShape& shape,
                     const std::vector<double>& budget_fractions,
                     Stationarity stationarity,
                     const std::function<std::vector<L2Tile>()>& compute)
{
    if (bypass_cache()) {
        return std::make_shared<const std::vector<L2Tile>>(compute());
    }
    KeyScratch& key = scratch_key();
    key.reset(kTagMenu);
    append_accel_fields(key, accel);
    append_shape(key, shape);
    key.add(static_cast<std::uint64_t>(stationarity));
    key.add(static_cast<std::uint64_t>(budget_fractions.size()));
    for (const double fraction : budget_fractions) {
        key.add(fraction);
    }
    return lookup<std::vector<L2Tile>>(key, compute);
}

EvalCache::GemmCostTable
EvalCache::gemm_costs(const AccelConfig& accel, const GemmShape& shape,
                      const std::vector<L2Tile>& tiles,
                      const std::vector<LoopOrder>& orders,
                      Stationarity stationarity)
{
    const auto compute = [&] {
        std::vector<GemmSliceCost> table;
        table.reserve(tiles.size() * orders.size());
        for (const L2Tile& tile : tiles) {
            for (const LoopOrder order : orders) {
                table.push_back(
                    {model_gemm_compute(accel, shape, tile, order,
                                        stationarity),
                     stage_reuse(shape, tile, order)});
            }
        }
        return table;
    };
    if (bypass_cache()) {
        return std::make_shared<const std::vector<GemmSliceCost>>(
            compute());
    }
    KeyScratch& key = scratch_key();
    key.reset(kTagCosts);
    append_accel_fields(key, accel);
    append_shape(key, shape);
    key.add(static_cast<std::uint64_t>(stationarity));
    key.add(static_cast<std::uint64_t>(tiles.size()));
    for (const L2Tile& tile : tiles) {
        key.add(tile.m);
        key.add(tile.k);
        key.add(tile.n);
    }
    key.add(static_cast<std::uint64_t>(orders.size()));
    for (const LoopOrder order : orders) {
        key.add(static_cast<std::uint64_t>(order));
    }
    return lookup<std::vector<GemmSliceCost>>(key, compute);
}

CacheStats
EvalCache::stats() const
{
    CacheStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.evictions = evictions_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(l1_registry_mutex());
        for (const L1Counters* block : l1_registry()) {
            out.l1_hits +=
                block->hits.load(std::memory_order_relaxed);
        }
    }
    out.hits += out.l1_hits;
    for (std::size_t s = 0; s < kShards; ++s) {
        Shard& shard = shards_[s];
        std::lock_guard<std::mutex> lock(shard.mutex);
        out.entries += shard.entries.size();
        out.bytes += shard.bytes;
    }
    return out;
}

void
EvalCache::reset_stats()
{
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(l1_registry_mutex());
    for (L1Counters* block : l1_registry()) {
        block->hits.store(0, std::memory_order_relaxed);
    }
}

void
EvalCache::clear()
{
    for (std::size_t s = 0; s < kShards; ++s) {
        Shard& shard = shards_[s];
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries.clear();
        shard.bytes = 0;
    }
    // Release so a thread whose L1 observes the new epoch also observes
    // the cleared shards (it will re-miss and recompute).
    g_l1_epoch.fetch_add(1, std::memory_order_release);
}

void
EvalCache::set_capacity_bytes(std::uint64_t capacity)
{
    capacity_bytes_.store(capacity, std::memory_order_relaxed);
}

} // namespace flat

/**
 * @file
 * PE-array mapping model for one GEMM: compute cycles (with array edge
 * effects), tile-switch fill/drain overhead, and SG<->array streaming
 * volume, for each stationarity choice (§5.3.1 "Compute Model").
 */
#ifndef FLAT_COSTMODEL_GEMM_ENGINE_H
#define FLAT_COSTMODEL_GEMM_ENGINE_H

#include <cstdint>

#include "arch/accel_config.h"
#include "dataflow/tiling.h"
#include "workload/gemm_shape.h"

namespace flat {

/** Compute-side cost of streaming one GEMM instance through the array. */
struct GemmComputeCost {
    /** Pure MAC cycles, including array under-utilization at tile and
     *  array edges. */
    double compute_cycles = 0.0;

    /** Additional cycles spent filling/draining the array on tile
     *  switches (cold start + tail, per the NoC model). */
    double fill_drain_cycles = 0.0;

    /** Number of L2-tile activations (array reconfigurations). */
    std::uint64_t tile_switches = 0;

    /** SG->array operand streaming volume in bytes. */
    double sg_read_bytes = 0.0;

    /** array->SG result volume in bytes (includes partial-sum spills
     *  when the reduction loop is not innermost). */
    double sg_write_bytes = 0.0;

    /** array<-SG partial-sum re-reads in bytes. */
    double sg_psum_read_bytes = 0.0;

    double total_cycles() const
    {
        return compute_cycles + fill_drain_cycles;
    }

    /** Total SG<->array streaming volume (operands + results + partial
     *  sums) per instance — the on-chip bytes a timeline phase ledgers
     *  for this GEMM. */
    double sg_stream_bytes() const
    {
        return sg_read_bytes + sg_psum_read_bytes + sg_write_bytes;
    }
};

/**
 * Models one GEMM instance executed with L2 tiles of @p tile shape, SG
 * tile loop order @p order and @p stationarity on @p accel's PE array.
 *
 * The returned cost covers ONE instance; callers scale by the instance
 * count of the operator.
 */
GemmComputeCost model_gemm_compute(const AccelConfig& accel,
                                   const GemmShape& shape,
                                   const L2Tile& tile, LoopOrder order,
                                   Stationarity stationarity);

/**
 * Per-tensor DRAM fetch-event multipliers of one tiled GEMM: how many
 * full passes over each operand/result the (tile, loop order) reuse
 * pattern implies. A pure function of (shape, tile, order) — the
 * attention planner consumes it per stage and the evaluation cache
 * memoizes it alongside GemmComputeCost.
 */
struct StageReuse {
    double a_repeats = 1.0;       ///< streaming repeats of the A operand
    double b_repeats = 1.0;       ///< streaming repeats of the B operand
    double c_write_repeats = 1.0; ///< output write passes
    double c_read_repeats = 0.0;  ///< partial-sum re-read passes
};

StageReuse stage_reuse(const GemmShape& shape, const L2Tile& tile,
                       LoopOrder order);

/**
 * One cached record of the per-(tile, order) slice tables: the compute
 * cost plus the reuse multipliers, both pure functions of the same key.
 */
struct GemmSliceCost {
    GemmComputeCost compute;
    StageReuse reuse;
};

/**
 * Ideal cycles for @p macs MACs on @p accel (all PEs busy every cycle).
 */
double ideal_gemm_cycles(const AccelConfig& accel, std::uint64_t macs);

/**
 * Picks an L2 tile matched to the PE array shape and an SG budget: tile
 * dims are multiples of the array dims where possible, sized so that two
 * copies of each operand tile (double buffering) fit in @p sg_budget.
 * Used as the default intra-operator dataflow.
 */
L2Tile default_l2_tile(const AccelConfig& accel, const GemmShape& shape,
                       std::uint64_t sg_budget_bytes,
                       Stationarity stationarity);

} // namespace flat

#endif // FLAT_COSTMODEL_GEMM_ENGINE_H

/**
 * @file
 * Shared attention "plan" plumbing of the execution styles: the
 * cross-loop extent, per-slice stage shapes, byte totals, SG residency
 * split and DRAM traffic ledger every style's phase emitter reads.
 *
 * This is internal machinery factored out of attention_cost.cc so the
 * pluggable ExecutionStyle emitters (execution_style.h) and the scalar /
 * batched evaluators can share one plan computation. It is not a stable
 * public surface — include attention_cost.h for the model entry points.
 */
#ifndef FLAT_COSTMODEL_ATTENTION_PLAN_H
#define FLAT_COSTMODEL_ATTENTION_PLAN_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arch/accel_config.h"
#include "costmodel/cost_types.h"
#include "costmodel/gemm_engine.h"
#include "costmodel/timeline.h"
#include "dataflow/fused_dataflow.h"

namespace flat {

/**
 * Precomputed per-slice GEMM cost records injected into the plan. A
 * non-null pointer MUST equal {model_gemm_compute(), stage_reuse()} of
 * the same (accel, stage shape, tile, order, stationarity) — the DSE
 * engine feeds these from its per-slice cost tables (which the
 * evaluation cache memoizes), skipping two model_gemm_compute and two
 * stage_reuse calls per point. Null pointers fall back to computing in
 * place.
 */
struct PlannedGemmCosts {
    const GemmSliceCost* logit = nullptr;
    const GemmSliceCost* attend = nullptr;
};

/**
 * Per-tensor resident fractions of the staged working set. The SG is
 * allocated greedily: streaming tiles are mandatory, the intermediate
 * FLAT-tile has priority (it is the single-buffered tensor whose
 * off-chip round trip fusion exists to avoid), then the remaining
 * staged tensors smallest-first.
 */
struct Residency {
    /** Fraction of the staged working set resident in the SG. */
    double q = 1.0;
    double k = 1.0;
    double v = 1.0;
    double out = 1.0;
    double inter = 1.0;

    /** Fraction overflowed into the optional SG2 level (0 without
     *  SG2); the remainder spills to DRAM. */
    double q2 = 0.0;
    double k2 = 0.0;
    double v2 = 0.0;
    double out2 = 0.0;
    double inter2 = 0.0;

    double overall = 1.0;
};

/** DRAM / SG2 fetch-event split for one staged-or-streamed tensor. */
struct FetchSplit {
    double dram = 0.0; ///< full-tensor passes through the DRAM bus
    double sg2 = 0.0;  ///< full-tensor passes through the SG2 bus
};

/**
 * Splits the fetch events of a tensor across the hierarchy: the
 * SG-resident fraction is fetched from DRAM once; the SG2-resident
 * fraction is fetched from DRAM once and re-read from SG2 on every
 * reuse pass; the rest streams from DRAM with the failed-staging
 * penalty.
 */
FetchSplit split_fetches(bool staged, double rho_sg, double rho_sg2,
                         double unstaged_events);

/** Everything the phase emitters need, computed once. */
struct AttentionPlan {
    CrossLoopExtent extent;
    GemmShape logit_shape;  ///< per staged slice
    GemmShape attend_shape; ///< per staged slice
    double slices = 0.0;    ///< passes * instances (* column blocks)

    GemmComputeCost logit_compute;  ///< per slice
    GemmComputeCost attend_compute; ///< per slice
    StageReuse logit_reuse;
    StageReuse attend_reuse;

    double q_bytes = 0.0;     ///< total Q rows bytes (B*H*N*dk)
    double k_bytes = 0.0;     ///< total K bytes
    double v_bytes = 0.0;     ///< total V bytes
    double out_bytes = 0.0;   ///< total output bytes
    double inter_bytes = 0.0; ///< total intermediate bytes (B*H*N*kv)

    /** Row chunks per (batch, head) group: K/V are re-touched once per
     *  chunk when they are not resident (1 for M/B/H granularity). */
    double kv_chunks = 1.0;

    /** Column blocks each row chunk streams through (1 unless the
     *  cross loop is C-Gran). */
    double col_blocks = 1.0;

    /** True when the intermediate lives in the register tier below SL
     *  (C-Gran / online softmax): it then demands no SG capacity and
     *  moves zero DRAM/SG2 bytes. */
    bool inter_in_rf = false;

    std::uint64_t footprint = 0;
    Residency res;
};

/** Greedy SG allocation producing per-tensor resident fractions. The
 *  stage shapes must be the plan's (column-clamped at C-Gran). */
Residency allocate_residency(const AccelConfig& accel,
                             const FusedDataflow& dataflow,
                             const AttentionDims& dims,
                             const CrossLoopExtent& extent,
                             const GemmShape& logit_shape,
                             const GemmShape& attend_shape,
                             bool inter_in_rf);

AttentionPlan make_plan(const AccelConfig& accel, const AttentionDims& dims,
                        const FusedDataflow& dataflow,
                        const PlannedGemmCosts& planned = {});

/**
 * Memory traffic of the whole L-A pipeline given the staging flags:
 * DRAM events plus SG2 events for the fractions that overflow into the
 * optional second-level buffer. A register-tier-resident intermediate
 * contributes nothing.
 */
TrafficBytes plan_dram_traffic(const AttentionPlan& plan,
                               const FusedStageFlags& stage);

/** SFU time of the whole softmax (every intermediate element once). */
double softmax_sfu_cycles(const AccelConfig& accel,
                          const AttentionPlan& plan);

/** Online-softmax rescale elements: every streamed column block after
 *  the first rescales the (rows x head_dim) output accumulator. */
double flash_rescale_elems(const AccelConfig& accel,
                           const AttentionPlan& plan);

/** Half the L-A MACs: each GEMM contributes exactly one half. */
double half_macs(const AttentionDims& dims);

/**
 * Appends-or-reuses the phase at @p idx of @p out, resetting every
 * field. Label assignment reuses the existing string's capacity, so a
 * steady-state emit loop (same style, hence same label lengths) never
 * allocates. The emitters fill phases strictly one at a time — the
 * returned reference is invalidated by the next next_phase() call.
 */
Phase& next_phase(std::vector<Phase>& out, std::size_t& idx,
                  const char* label, StageTag stage, int group);

/**
 * Exposed first-fetch window: the first Q/K slice cannot hide under
 * any compute. Pace-only — its bytes are already in the steady-state
 * prefetch ledger.
 */
void emit_cold_start(std::vector<Phase>& out, std::size_t& idx,
                     const AttentionPlan& plan,
                     const AttentionDims& dims);

/**
 * KV-cache footprint of a decode step in DRAM: K and V rows for every
 * cached token of every (batch, K/V head) pair.
 */
std::uint64_t kv_cache_bytes(const AttentionDims& dims,
                             std::uint32_t bytes_per_element);

/**
 * Admission check styles apply to decode points: the KV-cache must fit
 * in off-chip memory (accel.dram_bytes; 0 = unlimited). Always true
 * for prefill shapes.
 */
bool kv_cache_admitted(const AccelConfig& accel,
                       const AttentionDims& dims);

/** GEMM phase skeleton: array occupancy, MACs/SL, SG streaming. */
Phase& emit_gemm_phase(std::vector<Phase>& out, std::size_t& idx,
                       const char* label, StageTag stage, int group,
                       const GemmComputeCost& compute,
                       double occupancy_cycles, const AttentionDims& dims,
                       double slices);

/** Cost report from a plan and its evaluated timeline: the cycles and
 *  the activity ledger ARE the timeline's — no re-aggregation. */
OperatorCost finalize_cost(const AccelConfig& accel,
                           const AttentionDims& dims,
                           const AttentionPlan& plan,
                           const TimelineResult& timeline,
                           const char* name);

/** Ideal PE cycles of the whole L-A pair (both GEMMs, no stalls). */
double attention_ideal_cycles(const AccelConfig& accel,
                              const AttentionDims& dims);

/** Total MACs of the L-A pair. */
std::uint64_t attention_macs(const AttentionDims& dims);

} // namespace flat

#endif // FLAT_COSTMODEL_ATTENTION_PLAN_H

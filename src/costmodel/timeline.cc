#include "costmodel/timeline.h"

#include <algorithm>

#include "common/status.h"

namespace flat {
namespace {

/** Lane with the largest cycle count; ties break toward compute, then
 *  off-chip, then on-chip, then SG2, then link (the historical
 *  attribution order; link is last because it is the newest lane). */
BoundBy
pick_bound(const LaneCycles& lanes)
{
    BoundBy bound = BoundBy::kCompute;
    double best = lanes.compute;
    if (lanes.offchip > best) {
        bound = BoundBy::kOffchip;
        best = lanes.offchip;
    }
    if (lanes.onchip > best) {
        bound = BoundBy::kOnchip;
        best = lanes.onchip;
    }
    if (lanes.sg2 > best) {
        bound = BoundBy::kSg2;
        best = lanes.sg2;
    }
    if (lanes.link > best) {
        bound = BoundBy::kLink;
        best = lanes.link;
    }
    return bound;
}

double
combine_lanes(const LaneCycles& lanes, OverlapKind overlap)
{
    if (overlap == OverlapKind::kOverlapped) {
        return std::max({lanes.compute, lanes.offchip, lanes.onchip,
                         lanes.sg2, lanes.link});
    }
    // Serialized: operand streaming inside the array still proceeds
    // with compute, but transfers below the SG (and off-device) are
    // not hidden.
    return std::max(lanes.compute, lanes.onchip) +
           std::max({lanes.offchip, lanes.sg2, lanes.link});
}

} // namespace

const char*
to_string(StageTag stage)
{
    switch (stage) {
      case StageTag::kPrefetch:
        return "prefetch";
      case StageTag::kLogit:
        return "logit";
      case StageTag::kSoftmax:
        return "softmax";
      case StageTag::kAttend:
        return "attend";
      case StageTag::kWriteback:
        return "writeback";
      case StageTag::kCompute:
        return "compute";
      case StageTag::kColdStart:
        return "cold-start";
      case StageTag::kCollective:
        return "collective";
    }
    return "compute";
}

namespace {

/**
 * The one arbitration engine behind both evaluate_timeline() entry
 * points. Reads @p phases (never touching out.phases, so callers can
 * alias or reuse buffers), reuses @p group_order / @p track_cycles as
 * scratch and overwrites every field of @p out it is responsible for.
 * At steady state (same phase-list shape as the previous call on the
 * same buffers) it performs zero heap allocations.
 */
void
evaluate_core(const std::vector<Phase>& phases, const AccelConfig& accel,
              OverlapKind overlap, double link_bytes_per_cycle,
              std::vector<int>& group_order,
              std::vector<std::pair<int, double>>& track_cycles,
              bool summary_only, TimelineResult& out)
{
    accel.validate();

    out.phase_timings.resize(summary_only ? 0 : phases.size());
    out.cycles = 0.0;
    out.cold_start_cycles = 0.0;
    out.bound_by = BoundBy::kCompute;
    out.activity = ActivityCounts{};

    const double off_bpc = accel.offchip_bytes_per_cycle();
    const double on_bpc = accel.onchip_bytes_per_cycle();
    const bool has_sg2 = accel.has_sg2();
    const double sg2_bpc = has_sg2 ? accel.sg2_bytes_per_cycle() : 0.0;
    const double link_bpc = link_bytes_per_cycle;

    // The fabric is full duplex: send and receive of the same
    // collective step proceed concurrently, so the byte-paced time is
    // the max of the two directions, plus any exposed hop latency.
    const auto lanes_of = [&](double compute, const TrafficBytes& bytes,
                              double link_latency) {
        LaneCycles lanes;
        lanes.compute = compute;
        lanes.offchip = bytes.total_dram() / off_bpc;
        lanes.onchip = bytes.total_sg() / on_bpc;
        lanes.sg2 = has_sg2 ? bytes.total_sg2() / sg2_bpc : 0.0;
        const double link_bytes = std::max(bytes.link_in, bytes.link_out);
        if (link_bytes > 0.0 || link_latency > 0.0) {
            FLAT_CHECK(link_bpc > 0.0,
                       "timeline carries link traffic ("
                           << link_bytes << " B, " << link_latency
                           << " latency cycles) but no link bandwidth "
                              "was supplied to evaluate_timeline()");
            lanes.link = link_bytes / link_bpc + link_latency;
        }
        return lanes;
    };

    // Group discovery in order of first appearance; evaluation never
    // reorders what the emitter laid out.
    group_order.clear();
    for (const Phase& phase : phases) {
        if (std::find(group_order.begin(), group_order.end(),
                      phase.group) == group_order.end()) {
            group_order.push_back(phase.group);
        }
    }

    out.groups.resize(group_order.size());
    for (std::size_t gi = 0; gi < group_order.size(); ++gi) {
        const int group_id = group_order[gi];
        GroupTiming& timing = out.groups[gi];
        timing.group = group_id;
        timing.overlap = overlap;
        timing.phase_indices.clear();

        // Serial phases chain on the array/SFU; tracks >= 0 run
        // side by side (spatial pipelining), so only the slowest
        // track adds to the group's compute lane.
        double serial_cycles = 0.0;
        track_cycles.clear();
        TrafficBytes bytes;
        double link_latency = 0.0;
        bool all_pace_only = true;
        std::size_t members = 0;
        for (std::size_t i = 0; i < phases.size(); ++i) {
            const Phase& phase = phases[i];
            if (phase.group != group_id) {
                continue;
            }
            ++members;
            if (!summary_only) {
                timing.phase_indices.push_back(i);
            }
            const double occupancy =
                phase.compute_cycles + phase.sfu_cycles;
            if (phase.track < 0) {
                serial_cycles += occupancy;
            } else {
                auto it = std::find_if(
                    track_cycles.begin(), track_cycles.end(),
                    [&](const auto& t) {
                        return t.first == phase.track;
                    });
                if (it == track_cycles.end()) {
                    track_cycles.emplace_back(phase.track, occupancy);
                } else {
                    it->second += occupancy;
                }
            }
            bytes += phase.activity.traffic;
            link_latency += phase.link_latency_cycles;
            all_pace_only = all_pace_only && phase.pace_only;
        }
        double parallel_cycles = 0.0;
        for (const auto& [track, cycles] : track_cycles) {
            parallel_cycles = std::max(parallel_cycles, cycles);
        }

        timing.lanes =
            lanes_of(serial_cycles + parallel_cycles, bytes, link_latency);
        timing.latency = combine_lanes(timing.lanes, overlap);
        timing.bound_by = pick_bound(timing.lanes);
        out.cycles += timing.latency;
        if (all_pace_only && members > 0) {
            out.cold_start_cycles += timing.latency;
        }
    }

    if (summary_only) {
        for (const Phase& phase : phases) {
            if (!phase.pace_only) {
                out.activity += phase.activity;
            }
        }
    } else {
        for (std::size_t i = 0; i < phases.size(); ++i) {
            const Phase& phase = phases[i];
            PhaseTiming& timing = out.phase_timings[i];
            timing.occupancy_cycles =
                phase.compute_cycles + phase.sfu_cycles;
            const LaneCycles lanes =
                lanes_of(timing.occupancy_cycles, phase.activity.traffic,
                         phase.link_latency_cycles);
            timing.paced_cycles = combine_lanes(lanes, overlap);
            timing.bound_by = pick_bound(lanes);
            timing.on_critical_path = timing.occupancy_cycles > 0.0;
            if (!phase.pace_only) {
                out.activity += phase.activity;
            }
        }
    }

    // The whole timeline is attributed to the lane that paces its
    // slowest group (ties break toward the earlier group).
    double slowest = -1.0;
    for (const GroupTiming& group : out.groups) {
        if (group.latency > slowest) {
            slowest = group.latency;
            out.bound_by = group.bound_by;
        }
    }
}

} // namespace

TimelineResult
evaluate_timeline(std::vector<Phase> phases, const AccelConfig& accel,
                  OverlapKind overlap, double link_bytes_per_cycle)
{
    TimelineResult out;
    std::vector<int> group_order;
    std::vector<std::pair<int, double>> track_cycles;
    evaluate_core(phases, accel, overlap, link_bytes_per_cycle,
                  group_order, track_cycles, /*summary_only=*/false,
                  out);
    out.phases = std::move(phases);
    return out;
}

void
evaluate_timeline_into(TimelineScratch& scratch, const AccelConfig& accel,
                       OverlapKind overlap, double link_bytes_per_cycle)
{
    evaluate_core(scratch.phases, accel, overlap, link_bytes_per_cycle,
                  scratch.group_ids, scratch.track_cycles,
                  scratch.summary_only, scratch.result);
}

} // namespace flat

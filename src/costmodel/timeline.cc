#include "costmodel/timeline.h"

#include <algorithm>

#include "common/status.h"

/**
 * Vectorization hint for the batch evaluator's lane-innermost loops.
 * Only enabled under -DFLAT_SIMD=ON: the pragmas assert the absence of
 * loop-carried dependences (true here — every lane is independent and
 * the SoA rows never alias) but do NOT license reassociation, so the
 * per-lane floating-point operation order — and with it the
 * bit-identity contract — is unchanged.
 */
#if defined(FLAT_SIMD) && defined(__clang__)
#define FLAT_SIMD_LOOP _Pragma("clang loop vectorize(assume_safety)")
#elif defined(FLAT_SIMD) && defined(__GNUC__)
#define FLAT_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define FLAT_SIMD_LOOP
#endif

namespace flat {
namespace {

/** Lane with the largest cycle count; ties break toward compute, then
 *  off-chip, then on-chip, then SG2, then link (the historical
 *  attribution order; link is last because it is the newest lane). */
BoundBy
pick_bound(const LaneCycles& lanes)
{
    BoundBy bound = BoundBy::kCompute;
    double best = lanes.compute;
    if (lanes.offchip > best) {
        bound = BoundBy::kOffchip;
        best = lanes.offchip;
    }
    if (lanes.onchip > best) {
        bound = BoundBy::kOnchip;
        best = lanes.onchip;
    }
    if (lanes.sg2 > best) {
        bound = BoundBy::kSg2;
        best = lanes.sg2;
    }
    if (lanes.link > best) {
        bound = BoundBy::kLink;
        best = lanes.link;
    }
    return bound;
}

double
combine_lanes(const LaneCycles& lanes, OverlapKind overlap)
{
    if (overlap == OverlapKind::kOverlapped) {
        return std::max({lanes.compute, lanes.offchip, lanes.onchip,
                         lanes.sg2, lanes.link});
    }
    // Serialized: operand streaming inside the array still proceeds
    // with compute, but transfers below the SG (and off-device) are
    // not hidden.
    return std::max(lanes.compute, lanes.onchip) +
           std::max({lanes.offchip, lanes.sg2, lanes.link});
}

} // namespace

const char*
to_string(StageTag stage)
{
    switch (stage) {
      case StageTag::kPrefetch:
        return "prefetch";
      case StageTag::kLogit:
        return "logit";
      case StageTag::kSoftmax:
        return "softmax";
      case StageTag::kAttend:
        return "attend";
      case StageTag::kWriteback:
        return "writeback";
      case StageTag::kCompute:
        return "compute";
      case StageTag::kColdStart:
        return "cold-start";
      case StageTag::kCollective:
        return "collective";
    }
    return "compute";
}

namespace {

/**
 * The one arbitration engine behind both evaluate_timeline() entry
 * points. Reads @p phases (never touching out.phases, so callers can
 * alias or reuse buffers), reuses @p group_order / @p track_cycles as
 * scratch and overwrites every field of @p out it is responsible for.
 * At steady state (same phase-list shape as the previous call on the
 * same buffers) it performs zero heap allocations.
 */
void
evaluate_core(const std::vector<Phase>& phases, const AccelConfig& accel,
              OverlapKind overlap, double link_bytes_per_cycle,
              std::vector<int>& group_order,
              std::vector<std::pair<int, double>>& track_cycles,
              bool summary_only, TimelineResult& out)
{
    accel.validate();

    out.phase_timings.resize(summary_only ? 0 : phases.size());
    out.cycles = 0.0;
    out.cold_start_cycles = 0.0;
    out.bound_by = BoundBy::kCompute;
    out.activity = ActivityCounts{};

    const double off_bpc = accel.offchip_bytes_per_cycle();
    const double on_bpc = accel.onchip_bytes_per_cycle();
    const bool has_sg2 = accel.has_sg2();
    const double sg2_bpc = has_sg2 ? accel.sg2_bytes_per_cycle() : 0.0;
    const double link_bpc = link_bytes_per_cycle;

    // The fabric is full duplex: send and receive of the same
    // collective step proceed concurrently, so the byte-paced time is
    // the max of the two directions, plus any exposed hop latency.
    const auto lanes_of = [&](double compute, const TrafficBytes& bytes,
                              double link_latency) {
        LaneCycles lanes;
        lanes.compute = compute;
        lanes.offchip = bytes.total_dram() / off_bpc;
        lanes.onchip = bytes.total_sg() / on_bpc;
        lanes.sg2 = has_sg2 ? bytes.total_sg2() / sg2_bpc : 0.0;
        const double link_bytes = std::max(bytes.link_in, bytes.link_out);
        if (link_bytes > 0.0 || link_latency > 0.0) {
            FLAT_CHECK(link_bpc > 0.0,
                       "timeline carries link traffic ("
                           << link_bytes << " B, " << link_latency
                           << " latency cycles) but no link bandwidth "
                              "was supplied to evaluate_timeline()");
            lanes.link = link_bytes / link_bpc + link_latency;
        }
        return lanes;
    };

    // Group discovery in order of first appearance; evaluation never
    // reorders what the emitter laid out.
    group_order.clear();
    for (const Phase& phase : phases) {
        if (std::find(group_order.begin(), group_order.end(),
                      phase.group) == group_order.end()) {
            group_order.push_back(phase.group);
        }
    }

    out.groups.resize(group_order.size());
    for (std::size_t gi = 0; gi < group_order.size(); ++gi) {
        const int group_id = group_order[gi];
        GroupTiming& timing = out.groups[gi];
        timing.group = group_id;
        timing.overlap = overlap;
        timing.phase_indices.clear();

        // Serial phases chain on the array/SFU; tracks >= 0 run
        // side by side (spatial pipelining), so only the slowest
        // track adds to the group's compute lane.
        double serial_cycles = 0.0;
        track_cycles.clear();
        TrafficBytes bytes;
        double link_latency = 0.0;
        bool all_pace_only = true;
        std::size_t members = 0;
        for (std::size_t i = 0; i < phases.size(); ++i) {
            const Phase& phase = phases[i];
            if (phase.group != group_id) {
                continue;
            }
            ++members;
            if (!summary_only) {
                timing.phase_indices.push_back(i);
            }
            const double occupancy =
                phase.compute_cycles + phase.sfu_cycles;
            if (phase.track < 0) {
                serial_cycles += occupancy;
            } else {
                auto it = std::find_if(
                    track_cycles.begin(), track_cycles.end(),
                    [&](const auto& t) {
                        return t.first == phase.track;
                    });
                if (it == track_cycles.end()) {
                    track_cycles.emplace_back(phase.track, occupancy);
                } else {
                    it->second += occupancy;
                }
            }
            bytes += phase.activity.traffic;
            link_latency += phase.link_latency_cycles;
            all_pace_only = all_pace_only && phase.pace_only;
        }
        double parallel_cycles = 0.0;
        for (const auto& [track, cycles] : track_cycles) {
            parallel_cycles = std::max(parallel_cycles, cycles);
        }

        timing.lanes =
            lanes_of(serial_cycles + parallel_cycles, bytes, link_latency);
        timing.latency = combine_lanes(timing.lanes, overlap);
        timing.bound_by = pick_bound(timing.lanes);
        out.cycles += timing.latency;
        if (all_pace_only && members > 0) {
            out.cold_start_cycles += timing.latency;
        }
    }

    if (summary_only) {
        for (const Phase& phase : phases) {
            if (!phase.pace_only) {
                out.activity += phase.activity;
            }
        }
    } else {
        for (std::size_t i = 0; i < phases.size(); ++i) {
            const Phase& phase = phases[i];
            PhaseTiming& timing = out.phase_timings[i];
            timing.occupancy_cycles =
                phase.compute_cycles + phase.sfu_cycles;
            const LaneCycles lanes =
                lanes_of(timing.occupancy_cycles, phase.activity.traffic,
                         phase.link_latency_cycles);
            timing.paced_cycles = combine_lanes(lanes, overlap);
            timing.bound_by = pick_bound(lanes);
            timing.on_critical_path = timing.occupancy_cycles > 0.0;
            if (!phase.pace_only) {
                out.activity += phase.activity;
            }
        }
    }

    // The whole timeline is attributed to the lane that paces its
    // slowest group (ties break toward the earlier group).
    double slowest = -1.0;
    for (const GroupTiming& group : out.groups) {
        if (group.latency > slowest) {
            slowest = group.latency;
            out.bound_by = group.bound_by;
        }
    }
}

} // namespace

TimelineResult
evaluate_timeline(std::vector<Phase> phases, const AccelConfig& accel,
                  OverlapKind overlap, double link_bytes_per_cycle)
{
    TimelineResult out;
    std::vector<int> group_order;
    std::vector<std::pair<int, double>> track_cycles;
    evaluate_core(phases, accel, overlap, link_bytes_per_cycle,
                  group_order, track_cycles, /*summary_only=*/false,
                  out);
    out.phases = std::move(phases);
    return out;
}

void
evaluate_timeline_into(TimelineScratch& scratch, const AccelConfig& accel,
                       OverlapKind overlap, double link_bytes_per_cycle)
{
    evaluate_core(scratch.phases, accel, overlap, link_bytes_per_cycle,
                  scratch.group_ids, scratch.track_cycles,
                  scratch.summary_only, scratch.result);
}

void
TimelineBatch::configure(const std::vector<Phase>& structure,
                         OverlapKind overlap, std::size_t lane_capacity)
{
    FLAT_CHECK(lane_capacity > 0,
               "TimelineBatch needs at least one lane of capacity");
    overlap_ = overlap;
    phase_count_ = structure.size();
    capacity_ = lane_capacity;
    lanes_ = 0;

    pace_only_.assign(phase_count_, false);
    // Group ids and per-group track ids in first-appearance order —
    // the same discovery rule as evaluate_core(), so track slot 0 is
    // the first distinct track a group's member order encounters.
    // Retired GroupShape entries and the discovery scratch are reused
    // in place (no destroy/rebuild): reconfiguring per (tiles, flags)
    // block is the DSE hot path and must not allocate in steady state.
    group_count_ = 0;
    group_ids_.clear();
    for (std::size_t i = 0; i < structure.size(); ++i) {
        const Phase& phase = structure[i];
        pace_only_[i] = phase.pace_only;
        std::size_t gi = 0;
        while (gi < group_ids_.size() && group_ids_[gi] != phase.group) {
            ++gi;
        }
        if (gi == group_ids_.size()) {
            group_ids_.push_back(phase.group);
            if (track_ids_.size() <= gi) {
                track_ids_.emplace_back();
            }
            track_ids_[gi].clear();
            if (groups_.size() <= gi) {
                groups_.emplace_back();
            }
            GroupShape& fresh = groups_[gi];
            fresh.member_phases.clear();
            fresh.serial_phases.clear();
            fresh.track_phases.clear();
            fresh.track_slots = 0;
            fresh.members = 0;
            fresh.all_pace_only = true;
            ++group_count_;
        }
        GroupShape& group = groups_[gi];
        ++group.members;
        group.member_phases.push_back(i);
        group.all_pace_only = group.all_pace_only && phase.pace_only;
        if (phase.track < 0) {
            group.serial_phases.push_back(i);
        } else {
            std::vector<int>& tracks = track_ids_[gi];
            std::size_t slot = 0;
            while (slot < tracks.size() && tracks[slot] != phase.track) {
                ++slot;
            }
            if (slot == tracks.size()) {
                tracks.push_back(phase.track);
                group.track_slots = tracks.size();
            }
            group.track_phases.emplace_back(i, slot);
        }
    }

    const std::size_t values = phase_count_ * capacity_;
    occupancy_.resize(values);
    link_latency_.resize(values);
    macs_.resize(values);
    sl_accesses_.resize(values);
    sfu_elems_.resize(values);
    dram_read_.resize(values);
    dram_write_.resize(values);
    sg_read_.resize(values);
    sg_write_.resize(values);
    sg2_read_.resize(values);
    sg2_write_.resize(values);
    link_in_.resize(values);
    link_out_.resize(values);
    summaries_.resize(capacity_);
}

std::size_t
TimelineBatch::add_lane()
{
    FLAT_CHECK(lanes_ < capacity_,
               "TimelineBatch overflow: " << capacity_
                                          << " lanes already added");
    return lanes_++;
}

void
TimelineBatch::clear_lanes()
{
    lanes_ = 0;
}

void
TimelineBatch::set_phase(std::size_t lane, std::size_t phase,
                         double compute_cycles, double sfu_cycles,
                         double link_latency_cycles,
                         const ActivityCounts& activity)
{
    const std::size_t i = phase * capacity_ + lane;
    // Same single addition evaluate_core() performs per phase.
    occupancy_[i] = compute_cycles + sfu_cycles;
    link_latency_[i] = link_latency_cycles;
    macs_[i] = activity.macs;
    sl_accesses_[i] = activity.sl_accesses;
    sfu_elems_[i] = activity.sfu_elems;
    dram_read_[i] = activity.traffic.dram_read;
    dram_write_[i] = activity.traffic.dram_write;
    sg_read_[i] = activity.traffic.sg_read;
    sg_write_[i] = activity.traffic.sg_write;
    sg2_read_[i] = activity.traffic.sg2_read;
    sg2_write_[i] = activity.traffic.sg2_write;
    link_in_[i] = activity.traffic.link_in;
    link_out_[i] = activity.traffic.link_out;
}

void
TimelineBatch::evaluate(const AccelConfig& accel,
                        double link_bytes_per_cycle)
{
    accel.validate();
    const std::size_t n = lanes_;
    if (n == 0) {
        return;
    }

    const double off_bpc = accel.offchip_bytes_per_cycle();
    const double on_bpc = accel.onchip_bytes_per_cycle();
    const bool has_sg2 = accel.has_sg2();
    const double sg2_bpc = has_sg2 ? accel.sg2_bytes_per_cycle() : 0.0;
    const double link_bpc = link_bytes_per_cycle;

    std::size_t max_slots = 0;
    for (std::size_t g = 0; g < group_count_; ++g) {
        max_slots = std::max(max_slots, groups_[g].track_slots);
    }
    serial_.resize(capacity_);
    tracks_.resize(max_slots * capacity_);
    acc_bytes_.resize(8 * capacity_);
    acc_link_latency_.resize(capacity_);
    slowest_.resize(capacity_);

    for (std::size_t l = 0; l < n; ++l) {
        summaries_[l] = LaneSummary{};
        slowest_[l] = -1.0;
    }

    // The 8 interface rows of acc_bytes_, in TrafficBytes field order.
    const std::vector<double>* const byte_fields[8] = {
        &dram_read_, &dram_write_, &sg_read_,  &sg_write_,
        &sg2_read_,  &sg2_write_,  &link_in_,  &link_out_};

    for (std::size_t g = 0; g < group_count_; ++g) {
        const GroupShape& group = groups_[g];
        std::fill_n(serial_.begin(), n, 0.0);
        std::fill_n(acc_link_latency_.begin(), n, 0.0);
        for (std::size_t slot = 0; slot < group.track_slots; ++slot) {
            std::fill_n(tracks_.begin() + slot * capacity_, n, 0.0);
        }
        for (std::size_t f = 0; f < 8; ++f) {
            std::fill_n(acc_bytes_.begin() + f * capacity_, n, 0.0);
        }

        // Lane-innermost accumulation over contiguous rows — the SIMD
        // meat. Each accumulator only ever combines with itself across
        // phases, in member order, so the per-lane FP sequence is the
        // scalar engine's.
        for (const std::size_t p : group.serial_phases) {
            const double* src = occupancy_.data() + p * capacity_;
            double* dst = serial_.data();
            FLAT_SIMD_LOOP
            for (std::size_t l = 0; l < n; ++l) {
                dst[l] += src[l];
            }
        }
        for (const auto& [p, slot] : group.track_phases) {
            const double* src = occupancy_.data() + p * capacity_;
            double* dst = tracks_.data() + slot * capacity_;
            FLAT_SIMD_LOOP
            for (std::size_t l = 0; l < n; ++l) {
                dst[l] += src[l];
            }
        }
        for (const std::size_t p : group.member_phases) {
            for (std::size_t f = 0; f < 8; ++f) {
                const double* src =
                    byte_fields[f]->data() + p * capacity_;
                double* dst = acc_bytes_.data() + f * capacity_;
                FLAT_SIMD_LOOP
                for (std::size_t l = 0; l < n; ++l) {
                    dst[l] += src[l];
                }
            }
            const double* src = link_latency_.data() + p * capacity_;
            double* dst = acc_link_latency_.data();
            FLAT_SIMD_LOOP
            for (std::size_t l = 0; l < n; ++l) {
                dst[l] += src[l];
            }
        }

        // Per-lane arbitration: the scalar engine's lanes_of /
        // combine_lanes / pick_bound sequence, streamed over lanes.
        for (std::size_t l = 0; l < n; ++l) {
            double parallel = 0.0;
            for (std::size_t slot = 0; slot < group.track_slots;
                 ++slot) {
                parallel = std::max(parallel,
                                    tracks_[slot * capacity_ + l]);
            }
            LaneCycles lanes;
            lanes.compute = serial_[l] + parallel;
            lanes.offchip = (acc_bytes_[0 * capacity_ + l] +
                             acc_bytes_[1 * capacity_ + l]) /
                            off_bpc;
            lanes.onchip = (acc_bytes_[2 * capacity_ + l] +
                            acc_bytes_[3 * capacity_ + l]) /
                           on_bpc;
            lanes.sg2 = has_sg2 ? (acc_bytes_[4 * capacity_ + l] +
                                   acc_bytes_[5 * capacity_ + l]) /
                                      sg2_bpc
                                : 0.0;
            const double link_bytes =
                std::max(acc_bytes_[6 * capacity_ + l],
                         acc_bytes_[7 * capacity_ + l]);
            const double link_latency = acc_link_latency_[l];
            if (link_bytes > 0.0 || link_latency > 0.0) {
                FLAT_CHECK(link_bpc > 0.0,
                           "timeline carries link traffic ("
                               << link_bytes << " B, " << link_latency
                               << " latency cycles) but no link "
                                  "bandwidth was supplied to "
                                  "TimelineBatch::evaluate()");
                lanes.link = link_bytes / link_bpc + link_latency;
            }
            const double latency = combine_lanes(lanes, overlap_);
            LaneSummary& sum = summaries_[l];
            sum.cycles += latency;
            if (group.all_pace_only && group.members > 0) {
                sum.cold_start_cycles += latency;
            }
            if (latency > slowest_[l]) {
                slowest_[l] = latency;
                sum.bound_by = pick_bound(lanes);
            }
        }
    }

    // Ledger sum over non-pace-only phases, phase order per lane —
    // field-for-field the scalar `activity += phase.activity` chain.
    for (std::size_t p = 0; p < phase_count_; ++p) {
        if (pace_only_[p]) {
            continue;
        }
        const std::size_t base = p * capacity_;
        for (std::size_t l = 0; l < n; ++l) {
            ActivityCounts& act = summaries_[l].activity;
            act.macs += macs_[base + l];
            act.sl_accesses += sl_accesses_[base + l];
            act.sfu_elems += sfu_elems_[base + l];
            act.traffic.dram_read += dram_read_[base + l];
            act.traffic.dram_write += dram_write_[base + l];
            act.traffic.sg_read += sg_read_[base + l];
            act.traffic.sg_write += sg_write_[base + l];
            act.traffic.sg2_read += sg2_read_[base + l];
            act.traffic.sg2_write += sg2_write_[base + l];
            act.traffic.link_in += link_in_[base + l];
            act.traffic.link_out += link_out_[base + l];
        }
    }
}

} // namespace flat

#include "costmodel/gemm_engine.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/math_util.h"
#include "common/status.h"
#include "dataflow/reuse.h"

namespace flat {
namespace {

/**
 * Sum over the tiling of extent @p x with tile @p t of
 * ceil(tile_extent / array_dim): the spatial folding factor including
 * the smaller remainder tile at the edge.
 */
double
fold_sum(std::uint64_t x, std::uint64_t t, std::uint64_t array_dim)
{
    const std::uint64_t full = x / t;
    const std::uint64_t rem = x % t;
    double sum = static_cast<double>(full) * ceil_div(t, array_dim);
    if (rem > 0) {
        sum += static_cast<double>(ceil_div(rem, array_dim));
    }
    return sum;
}

} // namespace

double
ideal_gemm_cycles(const AccelConfig& accel, std::uint64_t macs)
{
    return static_cast<double>(macs) / accel.macs_per_cycle();
}

GemmComputeCost
model_gemm_compute(const AccelConfig& accel, const GemmShape& shape,
                   const L2Tile& tile_in, LoopOrder order,
                   Stationarity stationarity)
{
    shape.validate();
    const L2Tile tile = tile_in.clamped(shape);
    tile.validate();

    const std::uint64_t trips_m = tile.trips_m(shape);
    const std::uint64_t trips_k = tile.trips_k(shape);
    const std::uint64_t trips_n = tile.trips_n(shape);
    const std::uint64_t trips = trips_m * trips_k * trips_n;
    const std::uint32_t bpe = accel.bytes_per_element;
    const std::uint64_t rows = accel.pe_rows;
    const std::uint64_t cols = accel.pe_cols;

    GemmComputeCost cost;
    cost.tile_switches = trips;

    // Compute cycles: two dims map spatially (with ceil folding at tile
    // and array edges), the third streams temporally one step/cycle.
    switch (stationarity) {
      case Stationarity::kOutputStationary:
        cost.compute_cycles = fold_sum(shape.m, tile.m, rows) *
                              fold_sum(shape.n, tile.n, cols) *
                              static_cast<double>(shape.k);
        break;
      case Stationarity::kWeightStationary:
        cost.compute_cycles = fold_sum(shape.k, tile.k, rows) *
                              fold_sum(shape.n, tile.n, cols) *
                              static_cast<double>(shape.m);
        break;
      case Stationarity::kInputStationary:
        cost.compute_cycles = fold_sum(shape.m, tile.m, rows) *
                              fold_sum(shape.k, tile.k, cols) *
                              static_cast<double>(shape.n);
        break;
    }

    // SG <-> array streaming. The stationary operand is loaded only when
    // the tile loop advances past its reuse scope (reuse analysis); the
    // streamed operands pass through the array every tile iteration.
    const ReuseCounts reuse = analyze_reuse(order, trips_m, trips_k,
                                            trips_n);

    // Tile-switch overhead (cold start / tail): with double buffering
    // the wavefront skew is only exposed when the array-resident operand
    // actually changes — once per residency period of the stationary
    // tensor — not on every streamed tile.
    std::uint64_t switch_events = trips;
    switch (stationarity) {
      case Stationarity::kOutputStationary:
        switch_events = reuse.c_writes; // one skew + drain per C run
        break;
      case Stationarity::kWeightStationary:
        switch_events = reuse.b_fetches;
        break;
      case Stationarity::kInputStationary:
        switch_events = reuse.a_fetches;
        break;
    }
    const NocModel dist = accel.distribution_model();
    const NocModel red = accel.reduction_model();
    const double skew =
        static_cast<double>(dist.fill_latency() + red.drain_latency());
    // Double-buffered PE contexts let the fill of the next residency
    // period overlap the compute of the current one: only the part of
    // the skew longer than a run is exposed, plus the very first fill
    // and final drain.
    const double run_cycles =
        cost.compute_cycles / static_cast<double>(switch_events);
    cost.fill_drain_cycles =
        static_cast<double>(switch_events) *
            std::max(0.0, skew - run_cycles) +
        skew;
    const double a_size = static_cast<double>(shape.a_elems()) * bpe;
    const double b_size = static_cast<double>(shape.b_elems()) * bpe;
    const double c_size = static_cast<double>(shape.c_elems()) * bpe;

    // Bytes for a tensor streamed every iteration: one full-tensor pass
    // per combination of the loops that do not index it.
    const double a_stream = static_cast<double>(trips_n) * a_size;
    const double b_stream = static_cast<double>(trips_m) * b_size;

    // Bytes for a tensor resident in the array: distinct tiles cover the
    // tensor once; extra fetches are uniform repeats.
    auto resident_bytes = [](std::uint64_t fetches,
                             std::uint64_t distinct, double size) {
        return size * (static_cast<double>(fetches) / distinct);
    };

    switch (stationarity) {
      case Stationarity::kOutputStationary: {
        cost.sg_read_bytes = a_stream + b_stream;
        // C lives in the array across the contiguous innermost k trips;
        // the SG-level reuse analysis gives exactly its spill pattern.
        cost.sg_write_bytes =
            resident_bytes(reuse.c_writes, reuse.c_tiles, c_size);
        cost.sg_psum_read_bytes =
            resident_bytes(reuse.c_reads, reuse.c_tiles, c_size);
        break;
      }
      case Stationarity::kWeightStationary: {
        cost.sg_read_bytes =
            a_stream +
            resident_bytes(reuse.b_fetches,
                           trips_k * trips_n, b_size);
        // Partial sums leave the array every iteration and re-enter on
        // every revisit of the same C tile.
        cost.sg_write_bytes = static_cast<double>(trips_k) * c_size;
        cost.sg_psum_read_bytes =
            static_cast<double>(trips_k - 1) * c_size;
        break;
      }
      case Stationarity::kInputStationary: {
        cost.sg_read_bytes =
            b_stream +
            resident_bytes(reuse.a_fetches,
                           trips_m * trips_k, a_size);
        cost.sg_write_bytes = static_cast<double>(trips_k) * c_size;
        cost.sg_psum_read_bytes =
            static_cast<double>(trips_k - 1) * c_size;
        break;
      }
    }
    return cost;
}

L2Tile
default_l2_tile(const AccelConfig& accel, const GemmShape& shape,
                std::uint64_t sg_budget_bytes, Stationarity stationarity)
{
    FLAT_FAULT_POINT("gemm_engine.tile_menu");
    FLAT_CHECK(sg_budget_bytes > 0, "SG budget must be positive");
    const std::uint32_t bpe = accel.bytes_per_element;

    // Seed: spatial dims at a small multiple of the array, temporal dim
    // deep enough to amortize fill/drain.
    L2Tile tile;
    const std::uint64_t rows4 = 4ull * accel.pe_rows;
    const std::uint64_t cols4 = 4ull * accel.pe_cols;
    switch (stationarity) {
      case Stationarity::kOutputStationary:
        tile.m = std::min<std::uint64_t>(shape.m, rows4);
        tile.n = std::min<std::uint64_t>(shape.n, cols4);
        tile.k = std::min<std::uint64_t>(shape.k, 512);
        break;
      case Stationarity::kWeightStationary:
        tile.k = std::min<std::uint64_t>(shape.k, rows4);
        tile.n = std::min<std::uint64_t>(shape.n, cols4);
        tile.m = std::min<std::uint64_t>(shape.m, 512);
        break;
      case Stationarity::kInputStationary:
        tile.m = std::min<std::uint64_t>(shape.m, rows4);
        tile.k = std::min<std::uint64_t>(shape.k, cols4);
        tile.n = std::min<std::uint64_t>(shape.n, 512);
        break;
    }

    auto tile_bytes = [&](const L2Tile& t) {
        return 2 * (t.a_bytes(bpe) + t.b_bytes(bpe) + t.c_bytes(bpe));
    };

    // Shrink the largest dimension until the double-buffered tile set
    // fits the budget.
    while (tile_bytes(tile) > sg_budget_bytes) {
        std::uint64_t* largest = &tile.m;
        if (tile.k > *largest) {
            largest = &tile.k;
        }
        if (tile.n > *largest) {
            largest = &tile.n;
        }
        if (*largest <= 1) {
            break; // minimal tile; caller handles infeasibility
        }
        *largest = ceil_div<std::uint64_t>(*largest, 2);
    }
    return tile;
}

StageReuse
stage_reuse(const GemmShape& shape, const L2Tile& tile_in, LoopOrder order)
{
    const L2Tile tile = tile_in.clamped(shape);
    const std::uint64_t tm = tile.trips_m(shape);
    const std::uint64_t tk = tile.trips_k(shape);
    const std::uint64_t tn = tile.trips_n(shape);
    const ReuseCounts reuse = analyze_reuse(order, tm, tk, tn);

    StageReuse out;
    out.a_repeats = static_cast<double>(reuse.a_fetches) / (tm * tk);
    out.b_repeats = static_cast<double>(reuse.b_fetches) / (tk * tn);
    out.c_write_repeats =
        static_cast<double>(reuse.c_writes) / reuse.c_tiles;
    out.c_read_repeats = static_cast<double>(reuse.c_reads) / reuse.c_tiles;
    return out;
}

} // namespace flat

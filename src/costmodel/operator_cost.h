/**
 * @file
 * Cost model for a single (non-fused) operator: a GEMM with its
 * OperatorDataflow, or the standalone softmax of the baseline dataflow
 * (which round-trips the logits tensor through DRAM).
 */
#ifndef FLAT_COSTMODEL_OPERATOR_COST_H
#define FLAT_COSTMODEL_OPERATOR_COST_H

#include "arch/accel_config.h"
#include "costmodel/cost_types.h"
#include "dataflow/operator_dataflow.h"
#include "workload/operator.h"

namespace flat {

/**
 * Models one GEMM operator (all its instances) on @p accel with
 * @p dataflow.
 *
 * Runtime = max(compute + array fill/drain, off-chip transfer time,
 * on-chip transfer time) + cold-start, i.e. compute and double-buffered
 * transfers overlap in steady state and the slowest resource wins.
 * If the dataflow's live footprint exceeds the SG, the spill model
 * refetches the non-resident fraction on every reuse pass plus one extra
 * staging pass (§6.2.1's Base-M-below-Base effect).
 */
OperatorCost model_gemm_operator(const AccelConfig& accel,
                                 const Operator& op,
                                 const OperatorDataflow& dataflow);

/**
 * Models the baseline softmax: reads the logits tensor from DRAM,
 * processes it on the SFU, writes it back. @p resident_fraction of the
 * tensor may be served from SG instead (used when a Base-X dataflow
 * managed to stage part of the intermediate on-chip).
 */
OperatorCost model_baseline_softmax(const AccelConfig& accel,
                                    const Operator& op,
                                    double resident_fraction = 0.0);

/**
 * Spill-adjusted number of DRAM fetch events for a tensor.
 *
 * @param staged true if the dataflow stages this tensor on-chip.
 * @param resident_fraction fraction of the staged working set that fits.
 * @param unstaged_fetches fetch events if the tensor streams at L2
 *        granularity (reuse-analysis repeats).
 * @return expected fetch events per full tensor pass.
 */
double effective_fetches(bool staged, double resident_fraction,
                         double unstaged_fetches);

} // namespace flat

#endif // FLAT_COSTMODEL_OPERATOR_COST_H

#include "costmodel/trace.h"

#include <algorithm>
#include <cmath>

#include "common/json.h"
#include "common/string_util.h"

namespace flat {
namespace {

double
passes_of(const AttentionDims& dims, const FusedDataflow& dataflow)
{
    return static_cast<double>(
        cross_loop_extent(dataflow.cross, dims.batch, dims.heads,
                          dims.q_len)
            .passes);
}

/** CSV cell, quoted when it contains a delimiter or quote. */
std::string
csv_cell(const std::string& text)
{
    if (text.find_first_of(",\"\n") == std::string::npos) {
        return text;
    }
    std::string out = "\"";
    for (const char c : text) {
        if (c == '"') {
            out += '"';
        }
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

ExecutionTrace
trace_from_timeline(const TimelineResult& timeline, std::string style,
                    std::string dataflow_tag, double passes)
{
    ExecutionTrace trace;
    trace.style = std::move(style);
    trace.dataflow_tag = std::move(dataflow_tag);
    trace.passes = passes;
    trace.total_cycles = timeline.cycles;
    trace.cold_start_cycles = timeline.cold_start_cycles;
    trace.pass_cycles = timeline.cycles / std::max(1.0, passes);
    trace.bound_by = to_string(timeline.bound_by);

    const double per_pass = std::max(1.0, passes);
    for (std::size_t i = 0; i < timeline.phases.size(); ++i) {
        const Phase& phase = timeline.phases[i];
        if (phase.pace_only) {
            continue; // warm-up windows live in cold_start_cycles
        }
        const PhaseTiming& timing = timeline.phase_timings[i];
        TracePhase out;
        out.label = phase.label;
        out.stage = to_string(phase.stage);
        out.cycles = timing.paced_cycles / per_pass;
        out.bound_by = to_string(timing.bound_by);
        out.on_critical_path = timing.on_critical_path;
        trace.phases.push_back(std::move(out));
    }
    return trace;
}

ExecutionTrace
trace_attention(const ExecutionStyle& style, const AccelConfig& accel,
                const AttentionDims& dims, const FusedDataflow& dataflow,
                BaselineOverlap overlap)
{
    std::string name = style.id();
    if (&style == &baseline_execution_style()) {
        name = overlap == BaselineOverlap::kFull ? "baseline-full"
                                                 : "baseline-serialized";
    }
    return trace_from_timeline(
        attention_timeline(style, accel, dims, dataflow, overlap),
        std::move(name), dataflow.tag(), passes_of(dims, dataflow));
}

ExecutionTrace
trace_flat_attention(const AccelConfig& accel, const AttentionDims& dims,
                     const FusedDataflow& dataflow)
{
    return trace_attention(flat_execution_style(), accel, dims,
                           dataflow);
}

ExecutionTrace
trace_baseline_attention(const AccelConfig& accel,
                         const AttentionDims& dims,
                         const FusedDataflow& dataflow,
                         BaselineOverlap overlap)
{
    return trace_attention(baseline_execution_style(), accel, dims,
                           dataflow, overlap);
}

ExecutionTrace
trace_pipelined_attention(const AccelConfig& accel,
                          const AttentionDims& dims,
                          const FusedDataflow& dataflow)
{
    return trace_attention(pipelined_execution_style(), accel, dims,
                           dataflow);
}

std::string
ExecutionTrace::render(std::size_t width) const
{
    double max_cycles = 1.0;
    for (const TracePhase& phase : phases) {
        max_cycles = std::max(max_cycles, phase.cycles);
    }
    std::string out;
    out += strprintf("dataflow %s (%s) — %.0f passes, %s-bound\n",
                     dataflow_tag.c_str(), style.c_str(), passes,
                     bound_by.c_str());
    out += strprintf("one steady-state pass (~%.0f cycles):\n",
                     pass_cycles);
    for (const TracePhase& phase : phases) {
        const std::size_t bar_len = static_cast<std::size_t>(
            std::lround(width * phase.cycles / max_cycles));
        std::string bar(bar_len, phase.on_critical_path ? '#' : '~');
        out += strprintf("  %-34s |%-*s| %.0f\n", phase.label.c_str(),
                         static_cast<int>(width), bar.c_str(),
                         phase.cycles);
    }
    if (cold_start_cycles > 0.0) {
        out += strprintf("cold start / fill: %.3g cycles exposed\n",
                         cold_start_cycles);
    }
    out += strprintf("total: %.3g cycles ('#' serial on the array/SFU, "
                     "'~' overlapped transfers)\n",
                     total_cycles);
    return out;
}

std::string
ExecutionTrace::to_json() const
{
    JsonWriter json;
    json.begin_object();
    json.field("style", style);
    json.field("dataflow", dataflow_tag);
    json.field("passes", passes);
    json.field("bound_by", bound_by);
    json.field("pass_cycles", pass_cycles);
    json.field("cold_start_cycles", cold_start_cycles);
    json.field("total_cycles", total_cycles);
    json.key("phases");
    json.begin_array();
    for (const TracePhase& phase : phases) {
        json.begin_object();
        json.field("label", phase.label);
        json.field("stage", phase.stage);
        json.field("cycles", phase.cycles);
        json.field("bound_by", phase.bound_by);
        json.field("on_critical_path", phase.on_critical_path);
        json.end_object();
    }
    json.end_array();
    json.end_object();
    return json.str();
}

std::string
ExecutionTrace::to_csv() const
{
    std::string out = "phase,stage,cycles,bound_by,on_critical_path\n";
    for (const TracePhase& phase : phases) {
        out += strprintf("%s,%s,%.17g,%s,%d\n",
                         csv_cell(phase.label).c_str(),
                         phase.stage.c_str(), phase.cycles,
                         csv_cell(phase.bound_by).c_str(),
                         phase.on_critical_path ? 1 : 0);
    }
    return out;
}

} // namespace flat

#include "costmodel/trace.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "costmodel/attention_cost.h"
#include "costmodel/gemm_engine.h"

namespace flat {

ExecutionTrace
trace_flat_attention(const AccelConfig& accel, const AttentionDims& dims,
                     const FusedDataflow& dataflow)
{
    accel.validate();
    dims.validate();
    dataflow.validate();

    const CrossLoopExtent extent = cross_loop_extent(
        dataflow.cross, dims.batch, dims.heads, dims.q_len);
    const double passes = static_cast<double>(extent.passes);
    const double inst = static_cast<double>(extent.instances_per_pass);
    const double rows = static_cast<double>(extent.rows_per_pass);

    GemmShape logit_shape;
    logit_shape.m = extent.rows_per_pass;
    logit_shape.k = dims.head_dim;
    logit_shape.n = dims.kv_len;
    GemmShape attend_shape;
    attend_shape.m = extent.rows_per_pass;
    attend_shape.k = dims.kv_len;
    attend_shape.n = dims.head_dim;

    const GemmComputeCost logit = model_gemm_compute(
        accel, logit_shape, dataflow.l2_logit, dataflow.order_logit,
        dataflow.stat_logit);
    const GemmComputeCost attend = model_gemm_compute(
        accel, attend_shape, dataflow.l2_attend, dataflow.order_attend,
        dataflow.stat_attend);

    const OperatorCost total = model_flat_attention(accel, dims, dataflow);
    const TrafficBytes& traffic = total.activity.traffic;

    ExecutionTrace trace;
    trace.dataflow_tag = dataflow.tag();
    trace.passes = passes;
    trace.total_cycles = total.cycles;
    trace.pass_cycles = total.cycles / std::max(1.0, passes);

    const double l_cycles = logit.total_cycles() * inst;
    const double a_cycles = attend.total_cycles() * inst;
    const double softmax_cycles =
        rows * static_cast<double>(dims.kv_len) * inst / accel.sfu_lanes;
    const double prefetch_cycles =
        traffic.dram_read / std::max(1.0, passes) /
        accel.offchip_bytes_per_cycle();
    const double writeback_cycles =
        traffic.dram_write / std::max(1.0, passes) /
        accel.offchip_bytes_per_cycle();

    trace.phases.push_back(
        {"prefetch (DRAM->SG, overlapped)", prefetch_cycles, false});
    trace.phases.push_back({"L: logits slice GEMM", l_cycles, true});
    trace.phases.push_back({"softmax on SFU", softmax_cycles, true});
    trace.phases.push_back({"A: attend slice GEMM", a_cycles, true});
    trace.phases.push_back(
        {"writeback (SG->DRAM, overlapped)", writeback_cycles, false});

    // What paces a pass: the serial compute chain or a transfer stream.
    const double compute_chain = l_cycles + softmax_cycles + a_cycles;
    const double offchip = (prefetch_cycles + writeback_cycles);
    const double onchip = traffic.total_sg() / std::max(1.0, passes) /
                          accel.onchip_bytes_per_cycle();
    const double second = accel.has_sg2()
                              ? traffic.total_sg2() /
                                    std::max(1.0, passes) /
                                    accel.sg2_bytes_per_cycle()
                              : 0.0;
    const double pace =
        std::max({compute_chain, offchip, onchip, second});
    if (pace == compute_chain) {
        trace.bound_by = "compute";
    } else if (pace == offchip) {
        trace.bound_by = "off-chip BW";
    } else if (pace == onchip) {
        trace.bound_by = "on-chip BW";
    } else {
        trace.bound_by = "SG2 BW";
    }
    return trace;
}

std::string
ExecutionTrace::render(std::size_t width) const
{
    double max_cycles = 1.0;
    for (const TracePhase& phase : phases) {
        max_cycles = std::max(max_cycles, phase.cycles);
    }
    std::string out;
    out += strprintf("dataflow %s — %.0f passes, %s-bound\n",
                     dataflow_tag.c_str(), passes, bound_by.c_str());
    out += strprintf("one steady-state pass (~%.0f cycles):\n",
                     pass_cycles);
    for (const TracePhase& phase : phases) {
        const std::size_t bar_len = static_cast<std::size_t>(
            std::lround(width * phase.cycles / max_cycles));
        std::string bar(bar_len, phase.on_critical_path ? '#' : '~');
        out += strprintf("  %-34s |%-*s| %.0f\n", phase.label.c_str(),
                         static_cast<int>(width), bar.c_str(),
                         phase.cycles);
    }
    out += strprintf("total: %.3g cycles ('#' serial on the array/SFU, "
                     "'~' overlapped transfers)\n",
                     total_cycles);
    return out;
}

} // namespace flat

/**
 * @file
 * Phase-timeline IR of the performance model.
 *
 * Every execution style (FLAT interleaved, sequential baseline,
 * spatially pipelined, and the standalone operator models) is expressed
 * as a list of Phase records — label, stage tag, compute/SFU occupancy,
 * per-interface byte vector, overlap group — and evaluated by ONE
 * engine, evaluate_timeline(), which owns the shared-bandwidth
 * arbitration, the serialized-vs-overlapped transfer policy and the
 * per-phase/per-group "which resource paces this" attribution (§4.3,
 * §5.1, Fig. 11).
 *
 * The cost models are pure *phase emitters*; the energy model, the
 * Fig. 11 breakdown and the --trace observability layer all consume the
 * same evaluated ledger, so their totals agree exactly by construction.
 */
#ifndef FLAT_COSTMODEL_TIMELINE_H
#define FLAT_COSTMODEL_TIMELINE_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "arch/accel_config.h"
#include "costmodel/cost_types.h"

namespace flat {

/** What a phase does in the L -> softmax -> A cascade. */
enum class StageTag {
    kPrefetch,  ///< DRAM/SG2 -> SG input transfers
    kLogit,     ///< L = Q.K^T on the PE array
    kSoftmax,   ///< softmax on the SFU
    kAttend,    ///< A = P.V on the PE array
    kWriteback, ///< SG -> DRAM output transfers
    kCompute,   ///< generic (non-fused operator) array work
    kColdStart, ///< exposed first-fetch / pipeline-fill window
    kCollective, ///< inter-device collective (all-gather / all-reduce)
};

/** Short stable name ("prefetch", "logit", ..., "collective"). */
const char* to_string(StageTag stage);

/**
 * One phase of an execution timeline.
 *
 * Phases with the same @ref group share one arbitration window: the
 * group's latency is decided jointly from the summed compute occupancy
 * and the summed per-interface bytes of its members. Groups execute
 * back-to-back in order of first appearance.
 */
struct Phase {
    std::string label;
    StageTag stage = StageTag::kCompute;

    /** Overlap group id; groups run sequentially, members overlap. */
    int group = 0;

    /**
     * Concurrency track inside the group. -1 (default) = serial: the
     * phase's compute/SFU occupancy adds to the group's compute lane.
     * Tracks >= 0 run concurrently with each other (spatial pipelining:
     * the group's parallel contribution is the max over tracks).
     */
    int track = -1;

    /** PE-array occupancy in cycles. */
    double compute_cycles = 0.0;

    /** SFU occupancy in cycles (serial with the array inside a track). */
    double sfu_cycles = 0.0;

    /**
     * Exposed fabric hop latency in cycles (collective startup: one
     * per-hop link latency per serialized step). Added to the group's
     * link lane on top of the byte-paced time; 0 for on-device phases.
     */
    double link_latency_cycles = 0.0;

    /**
     * Activity ledger of this phase: MACs, SL accesses, SFU elements
     * and the per-interface byte vector. The bytes both pace the
     * group's transfer lanes and feed the energy model — one ledger,
     * no separately-aggregated scalars.
     */
    ActivityCounts activity;

    /**
     * True for windows whose latency is exposed but whose bytes/work
     * are already counted by a steady-state phase (cold-start fetches,
     * pipeline fill). Pace-only phases contribute to timing, never to
     * the summed ledger.
     */
    bool pace_only = false;
};

/** How a group's compute and transfer lanes combine (§5.1(4)). */
enum class OverlapKind {
    /** Double-buffered: latency = max(compute, per-interface lanes). */
    kOverlapped,
    /** No off-chip hiding: latency = max(compute, on-chip lane)
     *  + max(off-chip lane, SG2 lane). */
    kSerialTransfers,
};

/** Cycle cost of one overlap group, per resource lane. */
struct LaneCycles {
    double compute = 0.0; ///< serial compute/SFU chain (+ max over tracks)
    double offchip = 0.0; ///< DRAM bytes / off-chip bytes-per-cycle
    double onchip = 0.0;  ///< SG bytes / on-chip bytes-per-cycle
    double sg2 = 0.0;     ///< SG2 bytes / SG2 bytes-per-cycle
    double link = 0.0;    ///< fabric bytes / link bytes-per-cycle + hops
};

/** Arbitration outcome of one overlap group. */
struct GroupTiming {
    int group = 0;
    OverlapKind overlap = OverlapKind::kOverlapped;
    LaneCycles lanes;
    double latency = 0.0;
    BoundBy bound_by = BoundBy::kCompute;
    std::vector<std::size_t> phase_indices; ///< members, emission order
};

/** Per-phase attribution (observability; totals live in GroupTiming). */
struct PhaseTiming {
    /** Time this phase occupies its own binding resource. */
    double occupancy_cycles = 0.0;

    /** Latency the phase alone would need: max of its own lanes. */
    double paced_cycles = 0.0;

    /** The phase's own pacing resource. */
    BoundBy bound_by = BoundBy::kCompute;

    /** True if the phase occupies the PE array / SFU serially. */
    bool on_critical_path = false;
};

/** Evaluated timeline: the model's single source of truth. */
struct TimelineResult {
    /** The phases as emitted (evaluation does not reorder them). */
    std::vector<Phase> phases;

    /** Parallel to @ref phases. */
    std::vector<PhaseTiming> phase_timings;

    /** One entry per overlap group, execution order. */
    std::vector<GroupTiming> groups;

    /** Total modeled cycles: sum of group latencies. */
    double cycles = 0.0;

    /** Latency of pace-only groups (cold start / pipeline fill). */
    double cold_start_cycles = 0.0;

    /** Pacing resource of the dominant group (ties -> earlier group). */
    BoundBy bound_by = BoundBy::kCompute;

    /** Ledger sum over non-pace-only phases, in emission order. */
    ActivityCounts activity;
};

/**
 * Evaluates @p phases on @p accel under one arbitration policy.
 *
 * For each overlap group, in order of first appearance:
 *   compute lane  = sum of serial (track -1) compute+SFU cycles
 *                   + max over tracks of the per-track sums;
 *   off-chip lane = sum of member DRAM bytes / off-chip BW;
 *   on-chip lane  = sum of member SG bytes / on-chip BW;
 *   SG2 lane      = sum of member SG2 bytes / SG2 BW (0 without SG2);
 *   link lane     = max(summed link_in, summed link_out) bytes /
 *                   @p link_bytes_per_cycle + summed hop latency
 *                   (full-duplex fabric; 0 without collectives);
 *   latency       = per @p overlap (see OverlapKind).
 * Total cycles = sum of group latencies. A group made only of
 * pace-only phases models an exposed warm-up window (cold start or
 * pipeline fill); its latency lands in cold_start_cycles too.
 *
 * @p link_bytes_per_cycle may stay 0 (the default) as long as no phase
 * carries link traffic; supplying link bytes without a link bandwidth
 * is a configuration error. Single-device timelines never carry link
 * traffic, so every pre-scale-out call site is unchanged bit for bit.
 */
TimelineResult evaluate_timeline(std::vector<Phase> phases,
                                 const AccelConfig& accel,
                                 OverlapKind overlap =
                                     OverlapKind::kOverlapped,
                                 double link_bytes_per_cycle = 0.0);

/**
 * Reusable buffers for repeated timeline evaluation (one instance per
 * worker thread). Emitters write into `phases` in place (reusing the
 * Phase label strings' capacity) and evaluate_timeline_into() fills
 * `result` without releasing any of its vectors, so a steady-state
 * evaluate loop performs zero heap allocations.
 */
struct TimelineScratch {
    /** Input: the phase list to evaluate (emitted in place). */
    std::vector<Phase> phases;

    /**
     * Output of evaluate_timeline_into(). Unlike evaluate_timeline(),
     * `result.phases` stays EMPTY — the phases live in `phases` above
     * (phase_timings is parallel to it); moving them would defeat the
     * buffer reuse.
     */
    TimelineResult result;

    /** Internal evaluator scratch; contents are unspecified. */
    std::vector<int> group_ids;
    std::vector<std::pair<int, double>> track_cycles;

    /**
     * When set, evaluate_timeline_into() skips the per-phase
     * PhaseTiming fill and the groups' member index lists —
     * `result.phase_timings` is left empty and
     * `result.groups[i].phase_indices` is cleared. The scalar summary
     * (cycles, cold_start_cycles, bound_by, activity, group latencies)
     * is computed with identical arithmetic either way. The DSE hot
     * path reads only the summary and sets this to shed the per-phase
     * bookkeeping.
     */
    bool summary_only = false;
};

/**
 * Identical arithmetic to evaluate_timeline() — same results bit for
 * bit — but reads `scratch.phases` and reuses every buffer inside
 * `scratch.result` instead of allocating a fresh TimelineResult.
 */
void evaluate_timeline_into(TimelineScratch& scratch,
                            const AccelConfig& accel,
                            OverlapKind overlap = OverlapKind::kOverlapped,
                            double link_bytes_per_cycle = 0.0);

/**
 * Structure-of-arrays batch evaluator for summary-only timelines.
 *
 * The DSE hot path evaluates thousands of candidate plans that all
 * share one phase *structure* (same phase count, groups, tracks and
 * pace-only flags — fixed by the execution style) and differ only in
 * the per-phase *values* (occupancies and byte vectors). This class
 * lays N such candidates out as lanes of flat per-field arrays
 * (value index = phase * lane_capacity + lane) and evaluates them in
 * one pass: the per-phase accumulation loops run lane-innermost over
 * contiguous doubles, which the compiler auto-vectorizes (and which a
 * -DFLAT_SIMD=ON build annotates with ivdep-style pragmas).
 *
 * Bit-identity contract: evaluate() performs the exact floating-point
 * operations of evaluate_timeline_into() with summary_only set, in the
 * same order per lane — per-field accumulators only ever combine with
 * themselves, phase-order is preserved, and group max/combine logic is
 * shared with the scalar engine. A lane's summary therefore equals the
 * scalar result bit for bit (asserted by tests/costmodel/
 * test_timeline_batch.cc across the golden catalog).
 */
class TimelineBatch
{
  public:
    /** The summary-only outputs of one lane (cf. TimelineResult). */
    struct LaneSummary {
        double cycles = 0.0;
        double cold_start_cycles = 0.0;
        BoundBy bound_by = BoundBy::kCompute;
        ActivityCounts activity;
    };

    /**
     * Rebinds the batch to @p structure's phase skeleton (group, track
     * and pace_only of each phase; labels/values are ignored) with room
     * for @p lane_capacity lanes, and drops all lanes. Buffers are
     * reused when the shape matches the previous configure call.
     */
    void configure(const std::vector<Phase>& structure,
                   OverlapKind overlap, std::size_t lane_capacity);

    std::size_t phase_count() const { return phase_count_; }
    std::size_t lanes() const { return lanes_; }
    std::size_t capacity() const { return capacity_; }
    bool full() const { return lanes_ == capacity_; }

    /** Appends a lane and returns its index; values are UNDEFINED until
     *  set_phase() has covered every phase of the lane. */
    std::size_t add_lane();

    /** Drops all lanes; structure and buffer capacity stay. */
    void clear_lanes();

    /** Writes one (lane, phase) value set. */
    void set_phase(std::size_t lane, std::size_t phase,
                   double compute_cycles, double sfu_cycles,
                   double link_latency_cycles,
                   const ActivityCounts& activity);

    /** Evaluates every lane; summaries are valid until the next
     *  configure()/add_lane()/set_phase(). */
    void evaluate(const AccelConfig& accel,
                  double link_bytes_per_cycle = 0.0);

    const LaneSummary& summary(std::size_t lane) const
    {
        return summaries_[lane];
    }

  private:
    /** Per-group structure, precomputed once per configure(). */
    struct GroupShape {
        std::vector<std::size_t> member_phases; ///< all members, in order
        std::vector<std::size_t> serial_phases; ///< track -1, in order
        /** (phase, track slot) of track >= 0 members, in order. */
        std::vector<std::pair<std::size_t, std::size_t>> track_phases;
        std::size_t track_slots = 0; ///< distinct tracks, first-seen order
        std::size_t members = 0;
        bool all_pace_only = true;
    };

    double* field(std::vector<double>& store, std::size_t phase)
    {
        return store.data() + phase * capacity_;
    }

    std::size_t phase_count_ = 0;
    std::size_t capacity_ = 0;
    std::size_t lanes_ = 0;
    OverlapKind overlap_ = OverlapKind::kOverlapped;
    std::vector<bool> pace_only_;

    // groups_[0..group_count_) are live; entries past group_count_ are
    // retired but keep their heap buffers so the per-block reconfigure
    // on the DSE hot path allocates nothing in steady state (the
    // discovery scratch below persists for the same reason).
    std::vector<GroupShape> groups_;
    std::size_t group_count_ = 0;
    std::vector<int> group_ids_;                 ///< configure() scratch
    std::vector<std::vector<int>> track_ids_;    ///< configure() scratch

    // Per-(phase, lane) values, phase-major.
    std::vector<double> occupancy_; ///< compute + SFU cycles
    std::vector<double> link_latency_;
    std::vector<double> macs_;
    std::vector<double> sl_accesses_;
    std::vector<double> sfu_elems_;
    std::vector<double> dram_read_;
    std::vector<double> dram_write_;
    std::vector<double> sg_read_;
    std::vector<double> sg_write_;
    std::vector<double> sg2_read_;
    std::vector<double> sg2_write_;
    std::vector<double> link_in_;
    std::vector<double> link_out_;

    // Per-lane evaluation scratch (group accumulators).
    std::vector<double> serial_;
    std::vector<double> tracks_; ///< track_slots x lanes, slot-major
    std::vector<double> acc_bytes_; ///< 8 interface rows x lanes
    std::vector<double> acc_link_latency_;
    std::vector<double> slowest_;

    std::vector<LaneSummary> summaries_;
};

} // namespace flat

#endif // FLAT_COSTMODEL_TIMELINE_H

#include "costmodel/cost_types.h"

#include <algorithm>

namespace flat {

const char*
to_string(BoundBy bound)
{
    switch (bound) {
      case BoundBy::kCompute:
        return "compute";
      case BoundBy::kOffchip:
        return "off-chip BW";
      case BoundBy::kOnchip:
        return "on-chip BW";
      case BoundBy::kSg2:
        return "SG2 BW";
      case BoundBy::kLink:
        return "link BW";
    }
    return "compute";
}

TrafficBytes&
TrafficBytes::operator+=(const TrafficBytes& other)
{
    dram_read += other.dram_read;
    dram_write += other.dram_write;
    sg_read += other.sg_read;
    sg_write += other.sg_write;
    sg2_read += other.sg2_read;
    sg2_write += other.sg2_write;
    link_in += other.link_in;
    link_out += other.link_out;
    return *this;
}

ActivityCounts&
ActivityCounts::operator+=(const ActivityCounts& other)
{
    macs += other.macs;
    sl_accesses += other.sl_accesses;
    sfu_elems += other.sfu_elems;
    traffic += other.traffic;
    return *this;
}

OperatorCost&
OperatorCost::operator+=(const OperatorCost& other)
{
    cycles += other.cycles;
    ideal_cycles += other.ideal_cycles;
    live_footprint_bytes =
        std::max(live_footprint_bytes, other.live_footprint_bytes);
    resident_fraction = std::min(resident_fraction,
                                 other.resident_fraction);
    activity += other.activity;
    return *this;
}

} // namespace flat

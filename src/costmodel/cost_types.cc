#include "costmodel/cost_types.h"

#include <algorithm>

namespace flat {

const char*
to_string(BoundBy bound)
{
    switch (bound) {
      case BoundBy::kCompute:
        return "compute";
      case BoundBy::kOffchip:
        return "off-chip BW";
      case BoundBy::kOnchip:
        return "on-chip BW";
      case BoundBy::kSg2:
        return "SG2 BW";
      case BoundBy::kLink:
        return "link BW";
    }
    return "compute";
}

OperatorCost&
OperatorCost::operator+=(const OperatorCost& other)
{
    cycles += other.cycles;
    ideal_cycles += other.ideal_cycles;
    live_footprint_bytes =
        std::max(live_footprint_bytes, other.live_footprint_bytes);
    resident_fraction = std::min(resident_fraction,
                                 other.resident_fraction);
    activity += other.activity;
    return *this;
}

} // namespace flat

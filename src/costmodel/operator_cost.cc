#include "costmodel/operator_cost.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "costmodel/gemm_engine.h"
#include "costmodel/timeline.h"
#include "dataflow/reuse.h"

namespace flat {

double
effective_fetches(bool staged, double resident_fraction,
                  double unstaged_fetches)
{
    if (!staged) {
        return unstaged_fetches;
    }
    const double rho = std::clamp(resident_fraction, 0.0, 1.0);
    // Resident part: fetched once. Spilled part: behaves like streaming
    // plus the wasted staging attempt (the "one extra pass" of §6.2.1).
    return rho * 1.0 + (1.0 - rho) * (unstaged_fetches + 1.0);
}

OperatorCost
model_gemm_operator(const AccelConfig& accel, const Operator& op,
                    const OperatorDataflow& dataflow)
{
    FLAT_CHECK(op.kind == OpKind::kGemm,
               op.name << ": model_gemm_operator needs a GEMM");
    accel.validate();
    dataflow.validate();
    const GemmShape& shape = op.gemm;
    const std::uint32_t bpe = accel.bytes_per_element;

    OperatorCost cost;
    cost.name = op.name;
    cost.ideal_cycles = ideal_gemm_cycles(accel, shape.macs());
    cost.live_footprint_bytes =
        operator_live_footprint(dataflow, shape, bpe);
    cost.resident_fraction =
        std::min(1.0, static_cast<double>(accel.sg_bytes) /
                          static_cast<double>(cost.live_footprint_bytes));

    // Per-instance compute on the PE array.
    const L2Tile tile = dataflow.l2.clamped(shape);
    const GemmComputeCost compute = model_gemm_compute(
        accel, shape, tile, dataflow.order, dataflow.stationarity);

    const double instances = static_cast<double>(shape.instances);
    const double compute_cycles =
        (compute.compute_cycles + compute.fill_drain_cycles) * instances;

    // DRAM traffic. Reuse analysis yields fetch events per instance;
    // staging (L3/FLAT-tile) collapses them to one, subject to spill.
    const ReuseCounts reuse =
        analyze_reuse(dataflow.order, tile.trips_m(shape),
                      tile.trips_k(shape), tile.trips_n(shape));
    const double rho = cost.resident_fraction;

    const double a_repeats = static_cast<double>(reuse.a_fetches) /
                             (tile.trips_m(shape) * tile.trips_k(shape));
    const double b_repeats = static_cast<double>(reuse.b_fetches) /
                             (tile.trips_k(shape) * tile.trips_n(shape));
    const double c_write_repeats =
        static_cast<double>(reuse.c_writes) / reuse.c_tiles;
    const double c_read_repeats =
        static_cast<double>(reuse.c_reads) / reuse.c_tiles;

    const double a_bytes_total =
        static_cast<double>(shape.a_elems_total()) * bpe;
    const double b_bytes_total =
        static_cast<double>(shape.b_elems_total()) * bpe;
    const double c_bytes_total =
        static_cast<double>(shape.c_elems_total()) * bpe;

    TrafficBytes dram;
    dram.dram_read =
        effective_fetches(dataflow.l3.a, rho, a_repeats) * a_bytes_total +
        effective_fetches(dataflow.l3.b, rho, b_repeats) * b_bytes_total;
    // Output: writes always happen at least once; partial-sum re-reads
    // stay on-chip when the output is staged and resident.
    if (dataflow.l3.c) {
        dram.dram_write =
            (rho * 1.0 + (1.0 - rho) * c_write_repeats) * c_bytes_total;
        dram.dram_read += (1.0 - rho) * c_read_repeats * c_bytes_total;
    } else {
        dram.dram_write = c_write_repeats * c_bytes_total;
        dram.dram_read += c_read_repeats * c_bytes_total;
    }

    // Express the operator as a phase timeline: an exposed first-tile
    // fetch, then one double-buffered window where the GEMM's compute
    // arbitrates against the prefetch/writeback streams. The on-chip
    // ledger covers operand streaming into the array plus the DRAM
    // transfers landing in / leaving SG.
    std::vector<Phase> phases;

    Phase cold;
    cold.label = "cold start (first A/B tile fetch)";
    cold.stage = StageTag::kColdStart;
    cold.group = 0;
    cold.pace_only = true;
    cold.activity.traffic.dram_read =
        static_cast<double>(tile.a_bytes(bpe) + tile.b_bytes(bpe));
    phases.push_back(cold);

    Phase prefetch;
    prefetch.label = "prefetch (DRAM->SG, overlapped)";
    prefetch.stage = StageTag::kPrefetch;
    prefetch.group = 1;
    prefetch.activity.traffic.dram_read = dram.dram_read;
    prefetch.activity.traffic.sg_write =
        dram.dram_read; // SG write on the way in from DRAM
    phases.push_back(prefetch);

    Phase gemm;
    gemm.label = op.name + " GEMM";
    gemm.stage = StageTag::kCompute;
    gemm.group = 1;
    gemm.compute_cycles = compute_cycles;
    gemm.activity.macs = static_cast<double>(shape.macs());
    // Each MAC reads two operands from and accumulates into the SL.
    gemm.activity.sl_accesses = 3.0 * gemm.activity.macs;
    gemm.activity.traffic.sg_read =
        (compute.sg_read_bytes + compute.sg_psum_read_bytes) * instances;
    gemm.activity.traffic.sg_write = compute.sg_write_bytes * instances;
    phases.push_back(gemm);

    Phase writeback;
    writeback.label = "writeback (SG->DRAM, overlapped)";
    writeback.stage = StageTag::kWriteback;
    writeback.group = 1;
    writeback.activity.traffic.dram_write = dram.dram_write;
    writeback.activity.traffic.sg_read =
        dram.dram_write; // SG read on the way out to DRAM
    phases.push_back(writeback);

    const TimelineResult timeline =
        evaluate_timeline(std::move(phases), accel);
    cost.cycles = timeline.cycles;
    cost.activity = timeline.activity;
    return cost;
}

OperatorCost
model_baseline_softmax(const AccelConfig& accel, const Operator& op,
                       double resident_fraction)
{
    FLAT_CHECK(op.kind == OpKind::kSoftmax,
               op.name << ": model_baseline_softmax needs a softmax");
    const double rho = std::clamp(resident_fraction, 0.0, 1.0);
    const double elems = static_cast<double>(op.output_elems());
    const double bytes = elems * accel.bytes_per_element;

    OperatorCost cost;
    cost.name = op.name;
    // Ideal time for the SFU work itself.
    cost.ideal_cycles = elems / accel.sfu_lanes;

    // One overlapped window: SFU work against the spill round-trip.
    Phase softmax;
    softmax.label = op.name + " on SFU";
    softmax.stage = StageTag::kSoftmax;
    softmax.group = 0;
    softmax.sfu_cycles = elems / accel.sfu_lanes;
    softmax.activity.sfu_elems = elems;
    softmax.activity.traffic.dram_read = (1.0 - rho) * bytes;
    softmax.activity.traffic.dram_write = (1.0 - rho) * bytes;
    softmax.activity.traffic.sg_read = bytes;
    softmax.activity.traffic.sg_write = bytes;

    const TimelineResult timeline =
        evaluate_timeline({softmax}, accel);
    cost.cycles = timeline.cycles;
    cost.activity = timeline.activity;
    return cost;
}

} // namespace flat

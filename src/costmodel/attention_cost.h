/**
 * @file
 * Cost models for the L -> softmax -> A pipeline: the FLAT fused
 * interleaved execution (§4, §5.1) and the sequential baseline with
 * optional L3 staging (Base / Base-X of Figure 7(b)).
 */
#ifndef FLAT_COSTMODEL_ATTENTION_COST_H
#define FLAT_COSTMODEL_ATTENTION_COST_H

#include <memory>

#include "arch/accel_config.h"
#include "costmodel/cost_types.h"
#include "costmodel/gemm_engine.h"
#include "costmodel/timeline.h"
#include "dataflow/fused_dataflow.h"

namespace flat {

/**
 * Models the fused L-A operator under FLAT.
 *
 * Both stages interleave on the PE array; softmax runs on the SFU
 * between them (critical path). Double-buffered prefetch overlaps with
 * the combined duration of both stages, so runtime is the max of total
 * compute (+softmax) and total transfer time — one shared overlap
 * window (§5.1 feature 2).
 */
OperatorCost model_flat_attention(const AccelConfig& accel,
                                  const AttentionDims& dims,
                                  const FusedDataflow& dataflow);

/**
 * How generously the sequential baseline is modeled. The paper's
 * reported baseline numbers are consistent with little or no
 * compute/transfer overlap inside a stage; a double-buffered baseline
 * overlaps fully within its own stage window (§5.1(4) grants it one
 * stage of prefetch window vs FLAT's two). Both are legitimate
 * baselines — the ablation bench quantifies the difference.
 */
enum class BaselineOverlap {
    kFull,       ///< stage time = max(compute, transfers)
    kSerialized, ///< stage time = compute + transfers (no hiding)
};

/**
 * Models the sequential baseline: within each cross-loop pass the whole
 * L slice completes, then softmax, then A. Each stage overlaps (per
 * @p overlap) its own transfers only, and R-granularity is rejected —
 * running L-A in R-row chunks is precisely the fusion that the
 * baseline lacks.
 *
 * With no staging flags set and M granularity this degenerates to the
 * plain Base dataflow (intermediate tensor round-trips through DRAM).
 */
OperatorCost model_baseline_attention(
    const AccelConfig& accel, const AttentionDims& dims,
    const FusedDataflow& dataflow,
    BaselineOverlap overlap = BaselineOverlap::kFull);

/**
 * Models the (spatially) pipelined alternative that §5.1 argues
 * against: the PE array is split in half, one half computes L while
 * the other computes A on the previous slice. Compared to interleaved
 * execution it pays (i) per-slice fill/drain of two half-arrays,
 * (ii) a pipeline fill latency, and (iii) a single-stage prefetch
 * window per half (each half must fetch its next inputs within its own
 * stage duration, not across both stages). The ablation bench
 * quantifies the gap.
 */
OperatorCost model_pipelined_attention(const AccelConfig& accel,
                                       const AttentionDims& dims,
                                       const FusedDataflow& dataflow);

/**
 * Evaluated phase timelines of the three execution styles. Each model
 * above is a pure phase emitter over one shared `AttentionPlan`; these
 * entry points expose the evaluated timeline itself (per-phase cycles,
 * per-group `bound_by`, the activity ledger). By construction
 *
 *   *_attention_timeline(...).cycles == model_*_attention(...).cycles
 *
 * exactly — cold start and pipeline fill included — and the ledger's
 * `activity` equals the model's `OperatorCost::activity`.
 */
TimelineResult flat_attention_timeline(const AccelConfig& accel,
                                       const AttentionDims& dims,
                                       const FusedDataflow& dataflow);

TimelineResult baseline_attention_timeline(
    const AccelConfig& accel, const AttentionDims& dims,
    const FusedDataflow& dataflow,
    BaselineOverlap overlap = BaselineOverlap::kFull);

TimelineResult pipelined_attention_timeline(const AccelConfig& accel,
                                            const AttentionDims& dims,
                                            const FusedDataflow& dataflow);

/**
 * Un-evaluated phase list of one execution style plus the overlap
 * policy it must be evaluated under. This is the seam the scale-out
 * model builds on: it appends collective phases to `phases` and feeds
 * the result to the same evaluate_timeline() call the single-device
 * entry points use — one arbitration engine, no second timing path.
 */
struct AttentionPhases {
    std::vector<Phase> phases;
    OverlapKind overlap = OverlapKind::kOverlapped;

    /** Largest group id used so far (epilogue phases go after it). */
    int max_group() const;
};

AttentionPhases flat_attention_phases(const AccelConfig& accel,
                                      const AttentionDims& dims,
                                      const FusedDataflow& dataflow);

AttentionPhases baseline_attention_phases(
    const AccelConfig& accel, const AttentionDims& dims,
    const FusedDataflow& dataflow,
    BaselineOverlap overlap = BaselineOverlap::kFull);

AttentionPhases pipelined_attention_phases(const AccelConfig& accel,
                                           const AttentionDims& dims,
                                           const FusedDataflow& dataflow);

/**
 * Reusable evaluation buffers for the DSE hot path (one instance per
 * worker). The scratch model overloads below emit phases into
 * `timeline.phases` in place (Phase label strings keep their capacity)
 * and evaluate with evaluate_timeline_into(), so after the first call
 * the per-point evaluation performs zero heap allocations.
 *
 * The scratch also memoizes the loop-order-independent part of the
 * attention plan (extent, stage shapes, byte totals, footprint,
 * residency): consecutive evaluations that differ only in the SG loop
 * orders — the innermost DSE axes — reuse the base and patch the four
 * order-dependent compute/reuse fields. Same arithmetic on the same
 * inputs, so results stay bit-identical; the memo is invalidated by
 * any change to the fields the base depends on.
 */
struct AttentionEvalScratch {
    AttentionEvalScratch();
    ~AttentionEvalScratch();
    AttentionEvalScratch(const AttentionEvalScratch&) = delete;
    AttentionEvalScratch& operator=(const AttentionEvalScratch&) = delete;

    TimelineScratch timeline;

    /** Plan-base memo (defined in attention_cost.cc). */
    struct PlanMemo;
    std::unique_ptr<PlanMemo> memo;
};

/**
 * Precomputed per-slice GEMM cost records injected into the plan. A
 * non-null pointer MUST equal {model_gemm_compute(), stage_reuse()} of
 * the same (accel, stage shape, tile, order, stationarity) — the DSE
 * engine feeds these from its per-slice cost tables (which the
 * evaluation cache memoizes), skipping two model_gemm_compute and two
 * stage_reuse calls per point. Null pointers fall back to computing in
 * place.
 */
struct PlannedGemmCosts {
    const GemmSliceCost* logit = nullptr;
    const GemmSliceCost* attend = nullptr;
};

/**
 * Hot-path variants of the cost models: bit-identical results to the
 * plain overloads above, but reusing @p scratch across calls and
 * honoring injected @p planned compute costs.
 */
OperatorCost model_flat_attention(const AccelConfig& accel,
                                  const AttentionDims& dims,
                                  const FusedDataflow& dataflow,
                                  AttentionEvalScratch& scratch,
                                  const PlannedGemmCosts& planned = {});

OperatorCost model_baseline_attention(const AccelConfig& accel,
                                      const AttentionDims& dims,
                                      const FusedDataflow& dataflow,
                                      BaselineOverlap overlap,
                                      AttentionEvalScratch& scratch,
                                      const PlannedGemmCosts& planned = {});

/** Ideal PE cycles of the whole L-A pair (both GEMMs, no stalls). */
double attention_ideal_cycles(const AccelConfig& accel,
                              const AttentionDims& dims);

/** Total MACs of the L-A pair. */
std::uint64_t attention_macs(const AttentionDims& dims);

} // namespace flat

#endif // FLAT_COSTMODEL_ATTENTION_COST_H

/**
 * @file
 * Cost models for the L -> softmax -> A pipeline. Every execution
 * style — FLAT interleaved (§4, §5.1), the sequential baseline
 * (Base / Base-X of Figure 7(b)), the spatially pipelined foil and the
 * column-blocked flash style — is a registered ExecutionStyle
 * (execution_style.h); the entry points here evaluate one style's
 * phase emission through the shared timeline engine. The style-named
 * functions are thin wrappers kept for the established call sites.
 */
#ifndef FLAT_COSTMODEL_ATTENTION_COST_H
#define FLAT_COSTMODEL_ATTENTION_COST_H

#include <array>
#include <memory>
#include <vector>

#include "arch/accel_config.h"
#include "costmodel/attention_plan.h"
#include "costmodel/cost_types.h"
#include "costmodel/eval_cache.h"
#include "costmodel/execution_style.h"
#include "costmodel/gemm_engine.h"
#include "costmodel/timeline.h"
#include "dataflow/fused_dataflow.h"

namespace flat {

/**
 * Models the fused L-A operator under @p style. @p overlap is read
 * only by the baseline style (see BaselineOverlap).
 */
OperatorCost model_attention(const ExecutionStyle& style,
                             const AccelConfig& accel,
                             const AttentionDims& dims,
                             const FusedDataflow& dataflow,
                             BaselineOverlap overlap =
                                 BaselineOverlap::kFull);

/**
 * Models the fused L-A operator under FLAT.
 *
 * Both stages interleave on the PE array; softmax runs on the SFU
 * between them (critical path). Double-buffered prefetch overlaps with
 * the combined duration of both stages, so runtime is the max of total
 * compute (+softmax) and total transfer time — one shared overlap
 * window (§5.1 feature 2).
 */
OperatorCost model_flat_attention(const AccelConfig& accel,
                                  const AttentionDims& dims,
                                  const FusedDataflow& dataflow);

/**
 * Models the sequential baseline: within each cross-loop pass the whole
 * L slice completes, then softmax, then A. Each stage overlaps (per
 * @p overlap) its own transfers only, and R-granularity is rejected —
 * running L-A in R-row chunks is precisely the fusion that the
 * baseline lacks.
 *
 * With no staging flags set and M granularity this degenerates to the
 * plain Base dataflow (intermediate tensor round-trips through DRAM).
 */
OperatorCost model_baseline_attention(
    const AccelConfig& accel, const AttentionDims& dims,
    const FusedDataflow& dataflow,
    BaselineOverlap overlap = BaselineOverlap::kFull);

/**
 * Models the (spatially) pipelined alternative that §5.1 argues
 * against: the PE array is split in half, one half computes L while
 * the other computes A on the previous slice. Compared to interleaved
 * execution it pays (i) per-slice fill/drain of two half-arrays,
 * (ii) a pipeline fill latency, and (iii) a single-stage prefetch
 * window per half (each half must fetch its next inputs within its own
 * stage duration, not across both stages). The ablation bench
 * quantifies the gap.
 */
OperatorCost model_pipelined_attention(const AccelConfig& accel,
                                       const AttentionDims& dims,
                                       const FusedDataflow& dataflow);

/**
 * Models the column-blocked flash style: online softmax streams C
 * key-columns per R-row chunk with the intermediate in the register
 * tier below SL (C-Gran cross loop required; see execution_style.h).
 */
OperatorCost model_flash_attention(const AccelConfig& accel,
                                   const AttentionDims& dims,
                                   const FusedDataflow& dataflow);

/**
 * Evaluated phase timelines of the execution styles. Each model above
 * is a pure phase emitter over one shared `AttentionPlan`; these entry
 * points expose the evaluated timeline itself (per-phase cycles,
 * per-group `bound_by`, the activity ledger). By construction
 *
 *   attention_timeline(style, ...).cycles ==
 *       model_attention(style, ...).cycles
 *
 * exactly — cold start and pipeline fill included — and the ledger's
 * `activity` equals the model's `OperatorCost::activity`.
 */
TimelineResult attention_timeline(const ExecutionStyle& style,
                                  const AccelConfig& accel,
                                  const AttentionDims& dims,
                                  const FusedDataflow& dataflow,
                                  BaselineOverlap overlap =
                                      BaselineOverlap::kFull);

TimelineResult flat_attention_timeline(const AccelConfig& accel,
                                       const AttentionDims& dims,
                                       const FusedDataflow& dataflow);

TimelineResult baseline_attention_timeline(
    const AccelConfig& accel, const AttentionDims& dims,
    const FusedDataflow& dataflow,
    BaselineOverlap overlap = BaselineOverlap::kFull);

TimelineResult pipelined_attention_timeline(const AccelConfig& accel,
                                            const AttentionDims& dims,
                                            const FusedDataflow& dataflow);

/**
 * Un-evaluated phase list of one execution style plus the overlap
 * policy it must be evaluated under. This is the seam the scale-out
 * model builds on: it appends collective phases to `phases` and feeds
 * the result to the same evaluate_timeline() call the single-device
 * entry points use — one arbitration engine, no second timing path.
 */
struct AttentionPhases {
    std::vector<Phase> phases;
    OverlapKind overlap = OverlapKind::kOverlapped;

    /** Largest group id used so far (epilogue phases go after it). */
    int max_group() const;
};

AttentionPhases attention_phases(const ExecutionStyle& style,
                                 const AccelConfig& accel,
                                 const AttentionDims& dims,
                                 const FusedDataflow& dataflow,
                                 BaselineOverlap overlap =
                                     BaselineOverlap::kFull);

AttentionPhases flat_attention_phases(const AccelConfig& accel,
                                      const AttentionDims& dims,
                                      const FusedDataflow& dataflow);

AttentionPhases baseline_attention_phases(
    const AccelConfig& accel, const AttentionDims& dims,
    const FusedDataflow& dataflow,
    BaselineOverlap overlap = BaselineOverlap::kFull);

AttentionPhases pipelined_attention_phases(const AccelConfig& accel,
                                           const AttentionDims& dims,
                                           const FusedDataflow& dataflow);

/**
 * Reusable evaluation buffers for the DSE hot path (one instance per
 * worker). The scratch model overloads below emit phases into
 * `timeline.phases` in place (Phase label strings keep their capacity)
 * and evaluate with evaluate_timeline_into(), so after the first call
 * the per-point evaluation performs zero heap allocations.
 *
 * The scratch also memoizes the loop-order-independent part of the
 * attention plan (extent, stage shapes, byte totals, footprint,
 * residency): consecutive evaluations that differ only in the SG loop
 * orders — the innermost DSE axes — reuse the base and patch the four
 * order-dependent compute/reuse fields. Same arithmetic on the same
 * inputs, so results stay bit-identical; the memo is invalidated by
 * any change to the fields the base depends on.
 */
struct AttentionEvalScratch {
    AttentionEvalScratch();
    ~AttentionEvalScratch();
    AttentionEvalScratch(const AttentionEvalScratch&) = delete;
    AttentionEvalScratch& operator=(const AttentionEvalScratch&) = delete;

    TimelineScratch timeline;

    /** Plan-base memo (defined in attention_cost.cc). */
    struct PlanMemo;
    std::unique_ptr<PlanMemo> memo;
};

/**
 * Hot-path variant of model_attention(): bit-identical results to the
 * plain overload, but reusing @p scratch across calls and honoring
 * injected @p planned compute costs (see PlannedGemmCosts in
 * attention_plan.h).
 */
OperatorCost model_attention(const ExecutionStyle& style,
                             const AccelConfig& accel,
                             const AttentionDims& dims,
                             const FusedDataflow& dataflow,
                             BaselineOverlap overlap,
                             AttentionEvalScratch& scratch,
                             const PlannedGemmCosts& planned = {});

OperatorCost model_flat_attention(const AccelConfig& accel,
                                  const AttentionDims& dims,
                                  const FusedDataflow& dataflow,
                                  AttentionEvalScratch& scratch,
                                  const PlannedGemmCosts& planned = {});

OperatorCost model_baseline_attention(const AccelConfig& accel,
                                      const AttentionDims& dims,
                                      const FusedDataflow& dataflow,
                                      BaselineOverlap overlap,
                                      AttentionEvalScratch& scratch,
                                      const PlannedGemmCosts& planned = {});

/**
 * Batched DSE point evaluator: N candidates that share one plan base
 * (cross loop, L2 tiles, staging flags — everything but the SG loop
 * orders and stationarities, the innermost search axes) are laid out
 * as lanes of a TimelineBatch and evaluated in one SoA pass.
 *
 * Bit-identity: add() runs the exact scalar phase emitter (the bound
 * style's emit_phases()) over the same memoized plan the scalar hot
 * path uses, and TimelineBatch::evaluate() replicates
 * evaluate_timeline_into()'s per-lane arithmetic — so cycles(),
 * activity() and cost() equal model_attention() bit for bit for every
 * lane, at any batch width.
 *
 * Point cache: every fully specified point (style, accel, dims,
 * plan-base block, loop-order pair) is also a pure function, so the
 * evaluator memoizes each lane's outcome in the process-wide
 * EvalCache. begin() packs the block's key prefix once; add() appends
 * the two order words and probes — a hit resolves the lane immediately
 * and never touches the batch, a miss fills a batch lane as usual and
 * evaluate() publishes the computed outcome. Repeated searches (figure
 * sweeps, scale-out inner loops, warm re-runs) thus skip phase
 * emission and timeline evaluation wholesale; served values are the
 * stored results of the same pure computation, so results stay
 * bit-identical cache on/off.
 *
 * The family engages only for narrow blocks (lane_capacity <=
 * kPointCacheMaxLanes) — the quick-search regime, where every point
 * pays the full plan + phase-emission cost. Wide blocks already
 * amortize that cost across their lanes, so caching them would buy
 * little while flooding the cache with one entry per point of a full
 * search space.
 *
 * Usage per block: begin() -> add() x N (at most `lane_capacity`) ->
 * evaluate() -> cycles()/activity() per lane, cost() for the winner ->
 * clear_lanes() (and more add() rounds) or the next begin().
 */
class AttentionBatchEvaluator
{
  public:
    /**
     * Rebinds the evaluator to a plan-base block under @p style.
     * @p base's loop orders/stationarities are irrelevant — each add()
     * injects a lane's own GEMM cost records. @p baseline_overlap is
     * read only by the baseline style. The plan memo and phase buffers
     * live in @p scratch (shared with the scalar hot path, same reuse
     * rules).
     */
    void begin(const AccelConfig& accel, const AttentionDims& dims,
               const FusedDataflow& base, const ExecutionStyle& style,
               BaselineOverlap baseline_overlap,
               std::size_t lane_capacity,
               AttentionEvalScratch& scratch);

    /** Legacy style selector: @p fused picks flat, else baseline. */
    void begin(const AccelConfig& accel, const AttentionDims& dims,
               const FusedDataflow& base, bool fused,
               BaselineOverlap baseline_overlap,
               std::size_t lane_capacity,
               AttentionEvalScratch& scratch);

    std::size_t lanes() const { return lane_hits_.size(); }
    bool full() const { return lane_hits_.size() >= lane_capacity_; }

    /**
     * Appends one candidate. @p logit / @p attend must be the
     * GemmSliceCost records of the lane's (tile, order, stationarity)
     * choices — the same contract as PlannedGemmCosts — and
     * @p order_logit / @p order_attend must be the loop orders those
     * records were computed for (they key the lane's point-cache
     * entry; the tiles and stationarities are part of the begin()
     * block).
     */
    void add(const GemmSliceCost& logit, const GemmSliceCost& attend,
             LoopOrder order_logit, LoopOrder order_attend);

    /** Evaluates the batched (cache-miss) lanes and publishes their
     *  outcomes to the point cache; hit lanes are already resolved. */
    void evaluate();

    /** Widest begin() block the point cache engages for (see the
     *  class comment). */
    static constexpr std::size_t kPointCacheMaxLanes = 8;

    void clear_lanes()
    {
        batch_.clear_lanes();
        lane_hits_.clear();
        lane_tb_.clear();
        lane_orders_.clear();
    }

    double cycles(std::size_t lane) const
    {
        const CachedPoint* hit = lane_hits_[lane].get();
        return hit ? hit->cycles : batch_.summary(lane_tb_[lane]).cycles;
    }
    const ActivityCounts& activity(std::size_t lane) const
    {
        const CachedPoint* hit = lane_hits_[lane].get();
        return hit ? hit->activity
                   : batch_.summary(lane_tb_[lane]).activity;
    }

    /**
     * Full cost report of lane @p lane — call only while the begin()
     * block is still current (the plan memo supplies the shared
     * footprint/residency fields).
     */
    OperatorCost cost(std::size_t lane) const;

  private:
    /** Memoized outcome of one point — everything cost() reports that
     *  is not derivable from the begin() block alone. */
    struct CachedPoint {
        double cycles = 0.0;
        std::uint64_t live_footprint_bytes = 0;
        double resident_fraction = 1.0;
        ActivityCounts activity;
    };

    TimelineBatch batch_;
    const AccelConfig* accel_ = nullptr;
    const AttentionDims* dims_ = nullptr;
    AttentionEvalScratch* scratch_ = nullptr;
    FusedDataflow base_;
    const ExecutionStyle* style_ = nullptr;
    bool pending_begin_ = false; ///< first miss binds plan + structure
    std::size_t lane_capacity_ = 0;
    OverlapKind overlap_ = OverlapKind::kOverlapped;
    double ideal_cycles_ = 0.0;

    /** Point-cache state. The per-lane vectors are parallel: a hit
     *  lane holds its payload (and no batch lane); a miss lane holds
     *  nullptr plus its TimelineBatch lane and key-suffix orders. */
    bool point_cache_ = false; ///< per block: cache not bypassed
    EvalCache::ProbeKey key_;  ///< block prefix + per-point suffix
    std::vector<std::shared_ptr<const CachedPoint>> lane_hits_;
    std::vector<std::uint32_t> lane_tb_;
    std::vector<std::array<std::uint32_t, 2>> lane_orders_;
};

} // namespace flat

#endif // FLAT_COSTMODEL_ATTENTION_COST_H

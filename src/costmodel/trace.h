/**
 * @file
 * Execution trace: expands the fused L-A cost model's aggregate answer
 * into a per-pass timeline (prefetch / Logit / softmax / Attend /
 * writeback), showing what overlaps what and which resource paces each
 * pass. Diagnostic view of §4.3's walk-through example.
 */
#ifndef FLAT_COSTMODEL_TRACE_H
#define FLAT_COSTMODEL_TRACE_H

#include <string>
#include <vector>

#include "arch/accel_config.h"
#include "dataflow/fused_dataflow.h"

namespace flat {

/** One phase of a steady-state cross-loop pass. */
struct TracePhase {
    std::string label;
    double cycles = 0.0;

    /** True if the phase occupies the PE array / SFU serially; false
     *  if it overlaps with compute (double-buffered transfers). */
    bool on_critical_path = true;
};

/** Timeline of the fused operator at one cross-loop pass granularity. */
struct ExecutionTrace {
    std::string dataflow_tag;
    double passes = 0.0;

    /** Phases of one steady-state pass, execution order. */
    std::vector<TracePhase> phases;

    /** Critical-path cycles of one pass. */
    double pass_cycles = 0.0;

    /** Which resource paces the pass: "compute", "off-chip BW",
     *  "on-chip BW" or "SG2 BW". */
    std::string bound_by;

    /** Total cycles over all passes (matches the cost model's answer
     *  up to the cold start). */
    double total_cycles = 0.0;

    /** ASCII rendering: one bar per phase, widths proportional. */
    std::string render(std::size_t width = 56) const;
};

/** Builds the trace for the FLAT (interleaved) execution. */
ExecutionTrace trace_flat_attention(const AccelConfig& accel,
                                    const AttentionDims& dims,
                                    const FusedDataflow& dataflow);

} // namespace flat

#endif // FLAT_COSTMODEL_TRACE_H

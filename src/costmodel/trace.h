/**
 * @file
 * Execution trace: a *renderer* over the evaluated phase timeline
 * (costmodel/timeline.h). The cost models emit phases and
 * evaluate_timeline() arbitrates them; the trace re-shapes that one
 * result for humans (ASCII bars), machines (JSON/CSV) and tests — so
 * trace totals equal model totals exactly, cold start included.
 * Diagnostic view of §4.3's walk-through example, for every registered
 * execution style (FLAT interleaved, sequential baseline, pipelined,
 * flash).
 */
#ifndef FLAT_COSTMODEL_TRACE_H
#define FLAT_COSTMODEL_TRACE_H

#include <string>
#include <vector>

#include "arch/accel_config.h"
#include "costmodel/attention_cost.h"
#include "costmodel/timeline.h"
#include "dataflow/fused_dataflow.h"

namespace flat {

/** One steady-state phase of the executed timeline. */
struct TracePhase {
    std::string label;

    /** Stage tag name: "prefetch", "logit", "softmax", "attend",
     *  "writeback" or "compute". */
    std::string stage;

    /** Latency this phase alone would need, amortized per pass. */
    double cycles = 0.0;

    /** The phase's own pacing resource ("compute", "off-chip BW",
     *  "on-chip BW" or "SG2 BW"). */
    std::string bound_by;

    /** True if the phase occupies the PE array / SFU serially; false
     *  if it overlaps with compute (double-buffered transfers). */
    bool on_critical_path = true;
};

/** Rendered timeline of one L-A execution. */
struct ExecutionTrace {
    /** Execution style: "flat", "baseline-full", "baseline-serialized"
     *  or "pipelined". */
    std::string style;

    std::string dataflow_tag;
    double passes = 0.0;

    /** Steady-state phases in execution order (pace-only warm-up
     *  windows are folded into cold_start_cycles instead). */
    std::vector<TracePhase> phases;

    /** Critical-path cycles of one pass. */
    double pass_cycles = 0.0;

    /** Which resource paces the dominant window: "compute",
     *  "off-chip BW", "on-chip BW" or "SG2 BW". */
    std::string bound_by;

    /** Exposed warm-up latency (cold start / pipeline fill). */
    double cold_start_cycles = 0.0;

    /** Total cycles, equal to the cost model's cycles EXACTLY (the
     *  trace and the model consume the same evaluated timeline). */
    double total_cycles = 0.0;

    /** ASCII rendering: one bar per phase, widths proportional. */
    std::string render(std::size_t width = 56) const;

    /** Machine-readable forms of the same timeline. */
    std::string to_json() const;
    std::string to_csv() const;
};

/** Re-shapes an evaluated timeline into a trace (any style). */
ExecutionTrace trace_from_timeline(const TimelineResult& timeline,
                                   std::string style,
                                   std::string dataflow_tag,
                                   double passes);

/**
 * Builds the trace of @p dataflow executed under @p style. The trace
 * style string is the registry id, except the baseline which keeps its
 * historical overlap-qualified names ("baseline-full" /
 * "baseline-serialized"); @p overlap is read only by the baseline.
 */
ExecutionTrace trace_attention(const ExecutionStyle& style,
                               const AccelConfig& accel,
                               const AttentionDims& dims,
                               const FusedDataflow& dataflow,
                               BaselineOverlap overlap =
                                   BaselineOverlap::kFull);

/** Builds the trace for the FLAT (interleaved) execution. */
ExecutionTrace trace_flat_attention(const AccelConfig& accel,
                                    const AttentionDims& dims,
                                    const FusedDataflow& dataflow);

/** Builds the trace for the sequential baseline execution. */
ExecutionTrace trace_baseline_attention(
    const AccelConfig& accel, const AttentionDims& dims,
    const FusedDataflow& dataflow,
    BaselineOverlap overlap = BaselineOverlap::kFull);

/** Builds the trace for the spatially pipelined execution. */
ExecutionTrace trace_pipelined_attention(const AccelConfig& accel,
                                         const AttentionDims& dims,
                                         const FusedDataflow& dataflow);

} // namespace flat

#endif // FLAT_COSTMODEL_TRACE_H

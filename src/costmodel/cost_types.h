/**
 * @file
 * Result types of the performance model: traffic, activity counts and
 * per-operator cost reports (Figure 6(b) outputs).
 */
#ifndef FLAT_COSTMODEL_COST_TYPES_H
#define FLAT_COSTMODEL_COST_TYPES_H

#include <cstdint>
#include <string>

namespace flat {

/**
 * The resource that paces a phase, an overlap group or a whole
 * timeline under the shared-bandwidth arbitration (§4.3, Fig. 11).
 * Ties break toward the earlier enumerator (compute wins a dead heat),
 * matching the historical trace attribution.
 */
enum class BoundBy {
    kCompute, ///< PE-array / SFU occupancy
    kOffchip, ///< DRAM <-> SG interface
    kOnchip,  ///< SG <-> PE-array interface
    kSg2,     ///< SG2 <-> SG interface (second-level buffer)
    kLink,    ///< inter-device fabric link (scale-out collectives)
};

/** Display names: "compute", "off-chip BW", "on-chip BW", "SG2 BW",
 *  "link BW". */
const char* to_string(BoundBy bound);

/** Byte traffic at the memory interfaces and the inter-device fabric. */
struct TrafficBytes {
    double dram_read = 0.0;  ///< DRAM -> SG
    double dram_write = 0.0; ///< SG -> DRAM
    double sg_read = 0.0;    ///< SG -> PE array / SFU
    double sg_write = 0.0;   ///< PE array / SFU -> SG
    double sg2_read = 0.0;   ///< SG2 -> SG (second-level buffer)
    double sg2_write = 0.0;  ///< SG -> SG2
    double link_in = 0.0;    ///< fabric -> device (collective receive)
    double link_out = 0.0;   ///< device -> fabric (collective send)

    double total_dram() const { return dram_read + dram_write; }
    double total_sg() const { return sg_read + sg_write; }
    double total_sg2() const { return sg2_read + sg2_write; }
    double total_link() const { return link_in + link_out; }

    /** Inline: the timeline evaluator accumulates one of these per
     *  phase on the DSE hot path. */
    TrafficBytes& operator+=(const TrafficBytes& other)
    {
        dram_read += other.dram_read;
        dram_write += other.dram_write;
        sg_read += other.sg_read;
        sg_write += other.sg_write;
        sg2_read += other.sg2_read;
        sg2_write += other.sg2_write;
        link_in += other.link_in;
        link_out += other.link_out;
        return *this;
    }
};

/** Activity counts feeding the Accelergy-style energy model. */
struct ActivityCounts {
    double macs = 0.0;        ///< multiply-accumulates on the PE array
    double sl_accesses = 0.0; ///< per-PE scratchpad accesses (elements)
    double sfu_elems = 0.0;   ///< elements processed by the SFU
    TrafficBytes traffic;

    /** Inline for the same reason as TrafficBytes::operator+=. */
    ActivityCounts& operator+=(const ActivityCounts& other)
    {
        macs += other.macs;
        sl_accesses += other.sl_accesses;
        sfu_elems += other.sfu_elems;
        traffic += other.traffic;
        return *this;
    }
};

/** Cost report for one operator (or one fused operator pair). */
struct OperatorCost {
    std::string name;

    /** Modeled runtime in accelerator cycles. */
    double cycles = 0.0;

    /** Ideal runtime: MACs / #PEs with no stalls (§6.1). Softmax-only
     *  operators use SFU-ideal time instead. */
    double ideal_cycles = 0.0;

    /** Live SG footprint demanded by the dataflow, in bytes. */
    std::uint64_t live_footprint_bytes = 0;

    /** Fraction of the staged working set resident in SG ([0,1]; 1 when
     *  the footprint fits, lower when the spill model kicks in). */
    double resident_fraction = 1.0;

    ActivityCounts activity;

    /** Compute-resource utilization: ideal / actual (<= 1). */
    double util() const
    {
        return (cycles > 0.0) ? ideal_cycles / cycles : 0.0;
    }

    /** Accumulates another cost (sequential execution). */
    OperatorCost& operator+=(const OperatorCost& other);
};

} // namespace flat

#endif // FLAT_COSTMODEL_COST_TYPES_H

#include "costmodel/execution_style.h"

#include <algorithm>

#include "common/status.h"
#include "costmodel/gemm_engine.h"

namespace flat {

OverlapKind
ExecutionStyle::overlap(BaselineOverlap) const
{
    return OverlapKind::kOverlapped;
}

double
ExecutionStyle::bound_cycles(double gemm_sum_cycles,
                             double /*gemm_max_cycles*/,
                             double softmax_cycles, double cold_cycles,
                             double /*rescale_cycles*/) const
{
    // One shared (or windowed) schedule cannot beat its summed GEMM
    // occupancy plus the serial softmax and the exposed cold start.
    return gemm_sum_cycles + softmax_cycles + cold_cycles;
}

double
ExecutionStyle::inter_sg_round_trip_bytes(double inter_bytes) const
{
    return 2.0 * inter_bytes;
}

namespace {

/**
 * FLAT (interleaved) execution: one shared overlap window — all
 * transfers hide under the combined duration of L + softmax + A —
 * preceded by the exposed cold-start fetch.
 */
class FlatStyle : public ExecutionStyle
{
  public:
    const char* id() const override { return "flat"; }
    const char* summary() const override
    {
        return "FLAT interleaved L-A, one shared overlap window "
               "(M/B/H/R granularity)";
    }
    const char* cost_name() const override { return "L-A(FLAT)"; }
    std::uint64_t cache_key() const override { return 1; }
    bool fused() const override { return true; }

    bool admits(const AccelConfig& accel, const AttentionDims& dims,
                const CrossLoop& cross) const override
    {
        return cross.granularity != Granularity::kColumn &&
               kv_cache_admitted(accel, dims);
    }

    void emit_phases(std::vector<Phase>& phases, const AccelConfig& accel,
                     const AttentionDims& dims, const AttentionPlan& plan,
                     const FusedDataflow& dataflow) const override
    {
        const FusedStageFlags& stage = dataflow.stage;
        const TrafficBytes dram = plan_dram_traffic(plan, stage);

        std::size_t idx = 0;
        emit_cold_start(phases, idx, plan, dims);

        {
            Phase& prefetch = next_phase(
                phases, idx,
                dims.decode ? "KV-cache read (DRAM->SG, overlapped)"
                            : "prefetch (DRAM->SG, overlapped)",
                StageTag::kPrefetch, 1);
            prefetch.activity.traffic.dram_read = dram.dram_read;
            prefetch.activity.traffic.sg_write =
                dram.dram_read; // pass-through
            prefetch.activity.traffic.sg2_read = dram.sg2_read;
        }

        emit_gemm_phase(phases, idx, "L: logits slice GEMM",
                        StageTag::kLogit, 1, plan.logit_compute,
                        plan.logit_compute.total_cycles() * plan.slices,
                        dims, plan.slices);

        {
            Phase& softmax = next_phase(phases, idx, "softmax on SFU",
                                        StageTag::kSoftmax, 1);
            softmax.sfu_cycles = softmax_sfu_cycles(accel, plan);
            softmax.activity.sfu_elems =
                plan.inter_bytes / accel.bytes_per_element;
            softmax.activity.traffic.sg_read = plan.inter_bytes;
            softmax.activity.traffic.sg_write = plan.inter_bytes;
        }

        emit_gemm_phase(phases, idx, "A: attend slice GEMM",
                        StageTag::kAttend, 1, plan.attend_compute,
                        plan.attend_compute.total_cycles() * plan.slices,
                        dims, plan.slices);

        {
            Phase& writeback = next_phase(
                phases, idx, "writeback (SG->DRAM, overlapped)",
                StageTag::kWriteback, 1);
            writeback.activity.traffic.dram_write = dram.dram_write;
            writeback.activity.traffic.sg_read =
                dram.dram_write; // pass-through
            writeback.activity.traffic.sg2_write = dram.sg2_write;
        }
        phases.resize(idx);
    }
};

/**
 * Sequential baseline: three windows (L, softmax, A), each overlapping
 * only its own transfers, after the cold-start fetch. The spilled
 * intermediate fraction round-trips through DRAM between windows.
 */
class BaselineStyle : public ExecutionStyle
{
  public:
    const char* id() const override { return "baseline"; }
    const char* summary() const override
    {
        return "sequential L / softmax / A windows (Base / Base-X; "
               "M/B/H granularity)";
    }
    const char* cost_name() const override { return "L-A(Base)"; }
    std::uint64_t cache_key() const override { return 0; }
    bool fused() const override { return false; }

    bool admits(const AccelConfig& accel, const AttentionDims& dims,
                const CrossLoop& cross) const override
    {
        return cross.granularity != Granularity::kRow &&
               cross.granularity != Granularity::kColumn &&
               kv_cache_admitted(accel, dims);
    }

    OverlapKind overlap(BaselineOverlap baseline_overlap) const override
    {
        return baseline_overlap == BaselineOverlap::kFull
                   ? OverlapKind::kOverlapped
                   : OverlapKind::kSerialTransfers;
    }

    void emit_phases(std::vector<Phase>& phases, const AccelConfig& accel,
                     const AttentionDims& dims, const AttentionPlan& plan,
                     const FusedDataflow& dataflow) const override
    {
        FLAT_CHECK(
            dataflow.cross.granularity != Granularity::kRow &&
                dataflow.cross.granularity != Granularity::kColumn,
            "the sequential baseline cannot execute at R-granularity; "
            "row-chunked L-A is exactly the fusion FLAT adds (§4.2)");
        const FusedStageFlags& stage = dataflow.stage;
        const TrafficBytes dram = plan_dram_traffic(plan, stage);
        const Residency& res = plan.res;
        const double spill =
            stage.intermediate
                ? std::max(0.0, 1.0 - res.inter - res.inter2)
                : 1.0;
        const double staging_penalty = stage.intermediate ? spill : 0.0;
        // The SG2 traffic is dominated by the intermediate, produced in
        // the L window and consumed in the A window: half to each.
        const double sg2_read_half = dram.sg2_read / 2.0;
        const double sg2_write_half = dram.sg2_write / 2.0;

        // Window 3 volumes, computed up front (the output-staging branch
        // couples the A-transfer reads and the writeback writes).
        double a_xfer_dram_read =
            split_fetches(stage.value, res.v, res.v2,
                          plan.kv_chunks * plan.attend_reuse.b_repeats)
                    .dram *
                plan.v_bytes +
            (spill * plan.attend_reuse.a_repeats + staging_penalty) *
                plan.inter_bytes;
        double writeback_dram_write = 0.0;
        if (stage.output) {
            const double spill_out =
                std::max(0.0, 1.0 - res.out - res.out2);
            a_xfer_dram_read += spill_out *
                                plan.attend_reuse.c_read_repeats *
                                plan.out_bytes;
            writeback_dram_write =
                (res.out + res.out2 +
                 spill_out * plan.attend_reuse.c_write_repeats) *
                plan.out_bytes;
        } else {
            a_xfer_dram_read +=
                plan.attend_reuse.c_read_repeats * plan.out_bytes;
            writeback_dram_write =
                plan.attend_reuse.c_write_repeats * plan.out_bytes;
        }

        std::size_t idx = 0;
        emit_cold_start(phases, idx, plan, dims);

        // Window 1: L reads Q and K and round-trips the spilled
        // intermediate fraction (psum re-reads out, result writes in).
        {
            Phase& l_xfer = next_phase(
                phases, idx,
                dims.decode ? "L transfers (q/K-cache in, spill out)"
                            : "L transfers (Q/K in, spill out)",
                StageTag::kPrefetch, 1);
            l_xfer.activity.traffic.dram_read =
                split_fetches(stage.query, res.q, res.q2,
                              plan.logit_reuse.a_repeats)
                        .dram *
                    plan.q_bytes +
                split_fetches(stage.key, res.k, res.k2,
                              plan.kv_chunks * plan.logit_reuse.b_repeats)
                        .dram *
                    plan.k_bytes +
                spill * plan.logit_reuse.c_read_repeats *
                    plan.inter_bytes;
            l_xfer.activity.traffic.dram_write =
                (spill * plan.logit_reuse.c_write_repeats +
                 staging_penalty) *
                plan.inter_bytes;
            l_xfer.activity.traffic.sg_write =
                l_xfer.activity.traffic.dram_read; // pass-through
            l_xfer.activity.traffic.sg_read =
                l_xfer.activity.traffic.dram_write;
            l_xfer.activity.traffic.sg2_read = sg2_read_half;
            l_xfer.activity.traffic.sg2_write = sg2_write_half;
        }

        emit_gemm_phase(phases, idx, "L: logits GEMM", StageTag::kLogit,
                        1, plan.logit_compute,
                        plan.logit_compute.total_cycles() * plan.slices,
                        dims, plan.slices);

        // Window 2: softmax round-trips the spilled fraction.
        {
            Phase& softmax = next_phase(
                phases, idx, "softmax on SFU (spill round-trip)",
                StageTag::kSoftmax, 2);
            softmax.sfu_cycles = softmax_sfu_cycles(accel, plan);
            softmax.activity.sfu_elems =
                plan.inter_bytes / accel.bytes_per_element;
            softmax.activity.traffic.dram_read =
                spill * plan.inter_bytes;
            softmax.activity.traffic.dram_write =
                spill * plan.inter_bytes;
            softmax.activity.traffic.sg_read =
                plan.inter_bytes + softmax.activity.traffic.dram_write;
            softmax.activity.traffic.sg_write =
                plan.inter_bytes + softmax.activity.traffic.dram_read;
        }

        // Window 3: A reads V and the intermediate, writes the output.
        {
            Phase& a_xfer = next_phase(
                phases, idx,
                dims.decode ? "A transfers (V-cache/inter in)"
                            : "A transfers (V/inter in)",
                StageTag::kPrefetch, 3);
            a_xfer.activity.traffic.dram_read = a_xfer_dram_read;
            a_xfer.activity.traffic.sg_write = a_xfer_dram_read;
            a_xfer.activity.traffic.sg2_read = sg2_read_half;
        }

        emit_gemm_phase(phases, idx, "A: attend GEMM", StageTag::kAttend,
                        3, plan.attend_compute,
                        plan.attend_compute.total_cycles() * plan.slices,
                        dims, plan.slices);

        {
            Phase& writeback =
                next_phase(phases, idx, "writeback (out, SG->DRAM)",
                           StageTag::kWriteback, 3);
            writeback.activity.traffic.dram_write = writeback_dram_write;
            writeback.activity.traffic.sg_read = writeback_dram_write;
            writeback.activity.traffic.sg2_write = sg2_write_half;
        }
        phases.resize(idx);
    }
};

/**
 * Spatially pipelined execution: L and A on concurrent half-array
 * tracks inside one overlap window, softmax serial between them, plus
 * a pace-only pipeline-fill window (one L slice + its softmax share).
 */
class PipelinedStyle : public ExecutionStyle
{
  public:
    const char* id() const override { return "pipelined"; }
    const char* summary() const override
    {
        return "spatially pipelined L-A on half-array tracks (the §5.1 "
               "alternative FLAT argues against)";
    }
    const char* cost_name() const override { return "L-A(pipelined)"; }
    std::uint64_t cache_key() const override { return 2; }
    bool fused() const override { return true; }

    bool admits(const AccelConfig& accel, const AttentionDims& dims,
                const CrossLoop& cross) const override
    {
        return accel.pe_rows >= 2 &&
               cross.granularity != Granularity::kColumn &&
               kv_cache_admitted(accel, dims);
    }

    double bound_cycles(double /*gemm_sum_cycles*/, double gemm_max_cycles,
                        double softmax_cycles, double /*cold_cycles*/,
                        double /*rescale_cycles*/) const override
    {
        // The half-array tracks run concurrently: the window is at
        // least the slower stage's full-array occupancy (a half array
        // can only be slower) and at least the serial softmax. The sum
        // bound of the serial styles can EXCEED the pipelined runtime,
        // so it would be invalid here.
        return std::max(gemm_max_cycles, softmax_cycles);
    }

    void emit_phases(std::vector<Phase>& phases, const AccelConfig& accel,
                     const AttentionDims& dims, const AttentionPlan& plan,
                     const FusedDataflow& dataflow) const override
    {
        FLAT_CHECK(accel.pe_rows >= 2,
                   "pipelined execution needs an array splittable in two");

        // Each stage runs on half the array (split along rows). The
        // halves share the SG and the memory interfaces, so the byte
        // ledger keeps the full-array plan's streaming volume.
        AccelConfig half = accel;
        half.pe_rows = accel.pe_rows / 2;
        const GemmComputeCost logit_half =
            model_gemm_compute(half, plan.logit_shape, dataflow.l2_logit,
                               dataflow.order_logit, dataflow.stat_logit);
        const GemmComputeCost attend_half = model_gemm_compute(
            half, plan.attend_shape, dataflow.l2_attend,
            dataflow.order_attend, dataflow.stat_attend);
        const TrafficBytes dram = plan_dram_traffic(plan, dataflow.stage);
        const double softmax_cycles = softmax_sfu_cycles(accel, plan);

        std::size_t idx = 0;

        // Pipeline fill: one slice of L (and its softmax) before A
        // starts.
        {
            Phase& fill =
                next_phase(phases, idx,
                           "pipeline fill (first L slice + softmax)",
                           StageTag::kColdStart, 0);
            fill.pace_only = true;
            if (plan.slices > 0.0) {
                fill.compute_cycles = logit_half.total_cycles();
                fill.sfu_cycles = softmax_cycles / plan.slices;
            }
        }

        {
            Phase& prefetch = next_phase(
                phases, idx,
                dims.decode ? "KV-cache read (DRAM->SG, overlapped)"
                            : "prefetch (DRAM->SG, overlapped)",
                StageTag::kPrefetch, 1);
            prefetch.activity.traffic.dram_read = dram.dram_read;
            prefetch.activity.traffic.sg_write =
                dram.dram_read; // pass-through
            prefetch.activity.traffic.sg2_read = dram.sg2_read;
        }

        {
            Phase& logit = emit_gemm_phase(
                phases, idx, "L: logits GEMM (half array)",
                StageTag::kLogit, 1, plan.logit_compute,
                logit_half.total_cycles() * plan.slices, dims,
                plan.slices);
            logit.track = 0;
        }

        {
            Phase& softmax =
                next_phase(phases, idx, "softmax on SFU (between halves)",
                           StageTag::kSoftmax, 1);
            softmax.sfu_cycles = softmax_cycles;
            softmax.activity.sfu_elems =
                plan.inter_bytes / accel.bytes_per_element;
            softmax.activity.traffic.sg_read = plan.inter_bytes;
            softmax.activity.traffic.sg_write = plan.inter_bytes;
        }

        {
            Phase& attend = emit_gemm_phase(
                phases, idx, "A: attend GEMM (half array)",
                StageTag::kAttend, 1, plan.attend_compute,
                attend_half.total_cycles() * plan.slices, dims,
                plan.slices);
            attend.track = 1;
        }

        {
            Phase& writeback = next_phase(
                phases, idx, "writeback (SG->DRAM, overlapped)",
                StageTag::kWriteback, 1);
            writeback.activity.traffic.dram_write = dram.dram_write;
            writeback.activity.traffic.sg_read =
                dram.dram_write; // pass-through
            writeback.activity.traffic.sg2_write = dram.sg2_write;
        }
        phases.resize(idx);
    }
};

/**
 * Column-blocked streaming execution with online softmax: each R-row
 * chunk streams C key-columns at a time, keeping the running logits
 * block, the output accumulator and the per-row max/sum statistics in
 * the register tier below SL. The intermediate never touches the SG or
 * DRAM; the price is rescale work on the SFU critical path — every
 * column block after the first rescales the output accumulator.
 */
class FlashStyle : public ExecutionStyle
{
  public:
    const char* id() const override { return "flash"; }
    const char* summary() const override
    {
        return "column-blocked streaming L-A with online softmax "
               "(register-tier intermediate, C granularity)";
    }
    const char* cost_name() const override { return "L-A(flash)"; }
    std::uint64_t cache_key() const override { return 3; }
    bool fused() const override { return true; }

    bool admits(const AccelConfig& accel, const AttentionDims& dims,
                const CrossLoop& cross) const override
    {
        if (cross.granularity != Granularity::kColumn) {
            return false;
        }
        const std::uint64_t rows = std::min(cross.rows, dims.q_len);
        const std::uint64_t cols = std::min(cross.cols, dims.kv_len);
        return register_tier_bytes(rows, cols, dims.head_dim,
                                   accel.bytes_per_element) <=
                   accel.rf_capacity_bytes() &&
               kv_cache_admitted(accel, dims);
    }

    double bound_cycles(double gemm_sum_cycles, double /*gemm_max*/,
                        double softmax_cycles, double cold_cycles,
                        double rescale_cycles) const override
    {
        return gemm_sum_cycles + softmax_cycles + cold_cycles +
               rescale_cycles;
    }

    double inter_sg_round_trip_bytes(double) const override
    {
        return 0.0; // register-tier resident
    }

    void emit_phases(std::vector<Phase>& phases, const AccelConfig& accel,
                     const AttentionDims& dims, const AttentionPlan& plan,
                     const FusedDataflow& dataflow) const override
    {
        FLAT_CHECK(dataflow.cross.granularity == Granularity::kColumn,
                   "the flash style streams column blocks; use C-Gran "
                   "(online softmax is what makes it legal)");
        const TrafficBytes dram =
            plan_dram_traffic(plan, dataflow.stage);
        const double inter_elems =
            plan.inter_bytes / accel.bytes_per_element;
        const double rescale_elems = flash_rescale_elems(accel, plan);

        std::size_t idx = 0;
        emit_cold_start(phases, idx, plan, dims);

        {
            Phase& prefetch = next_phase(
                phases, idx,
                dims.decode ? "KV-cache read (DRAM->SG, overlapped)"
                            : "prefetch (DRAM->SG, overlapped)",
                StageTag::kPrefetch, 1);
            prefetch.activity.traffic.dram_read = dram.dram_read;
            prefetch.activity.traffic.sg_write =
                dram.dram_read; // pass-through
            prefetch.activity.traffic.sg2_read = dram.sg2_read;
        }

        emit_gemm_phase(phases, idx, "L: logits block GEMM (streamed)",
                        StageTag::kLogit, 1, plan.logit_compute,
                        plan.logit_compute.total_cycles() * plan.slices,
                        dims, plan.slices);

        {
            // Online softmax: exp/max/sum over every logit element plus
            // the rescale of the output accumulator per subsequent
            // column block — all SFU work, all on the critical path.
            // The running block lives in the register tier, so unlike
            // the staged styles there is NO SG round trip here.
            Phase& softmax = next_phase(
                phases, idx, "online softmax + rescale (SFU)",
                StageTag::kSoftmax, 1);
            softmax.sfu_cycles =
                (inter_elems + rescale_elems) / accel.sfu_lanes;
            softmax.activity.sfu_elems = inter_elems + rescale_elems;
        }

        emit_gemm_phase(phases, idx, "A: attend block GEMM (streamed)",
                        StageTag::kAttend, 1, plan.attend_compute,
                        plan.attend_compute.total_cycles() * plan.slices,
                        dims, plan.slices);

        {
            Phase& writeback = next_phase(
                phases, idx, "writeback (SG->DRAM, overlapped)",
                StageTag::kWriteback, 1);
            writeback.activity.traffic.dram_write = dram.dram_write;
            writeback.activity.traffic.sg_read =
                dram.dram_write; // pass-through
            writeback.activity.traffic.sg2_write = dram.sg2_write;
        }
        phases.resize(idx);
    }
};

const FlatStyle g_flat;
const BaselineStyle g_baseline;
const PipelinedStyle g_pipelined;
const FlashStyle g_flash;

} // namespace

const std::vector<const ExecutionStyle*>&
execution_styles()
{
    static const std::vector<const ExecutionStyle*> styles = {
        &g_baseline, &g_flat, &g_pipelined, &g_flash};
    return styles;
}

const ExecutionStyle*
find_execution_style(const std::string& id)
{
    for (const ExecutionStyle* style : execution_styles()) {
        if (id == style->id()) {
            return style;
        }
    }
    return nullptr;
}

const ExecutionStyle&
default_execution_style(bool fused)
{
    return fused ? static_cast<const ExecutionStyle&>(g_flat)
                 : static_cast<const ExecutionStyle&>(g_baseline);
}

const ExecutionStyle&
baseline_execution_style()
{
    return g_baseline;
}

const ExecutionStyle&
flat_execution_style()
{
    return g_flat;
}

const ExecutionStyle&
pipelined_execution_style()
{
    return g_pipelined;
}

const ExecutionStyle&
flash_execution_style()
{
    return g_flash;
}

} // namespace flat

#include "costmodel/attention_cost.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math_util.h"
#include "common/status.h"
#include "costmodel/gemm_engine.h"
#include "costmodel/operator_cost.h"
#include "dataflow/reuse.h"

namespace flat {
namespace {

/** Per-tensor DRAM fetch-event multipliers for one attention stage. */
struct StageReuse {
    double a_repeats = 1.0;       ///< streaming repeats of the A operand
    double b_repeats = 1.0;       ///< streaming repeats of the B operand
    double c_write_repeats = 1.0; ///< output write passes
    double c_read_repeats = 0.0;  ///< partial-sum re-read passes
};

StageReuse
stage_reuse(const GemmShape& shape, const L2Tile& tile_in, LoopOrder order)
{
    const L2Tile tile = tile_in.clamped(shape);
    const std::uint64_t tm = tile.trips_m(shape);
    const std::uint64_t tk = tile.trips_k(shape);
    const std::uint64_t tn = tile.trips_n(shape);
    const ReuseCounts reuse = analyze_reuse(order, tm, tk, tn);

    StageReuse out;
    out.a_repeats = static_cast<double>(reuse.a_fetches) / (tm * tk);
    out.b_repeats = static_cast<double>(reuse.b_fetches) / (tk * tn);
    out.c_write_repeats =
        static_cast<double>(reuse.c_writes) / reuse.c_tiles;
    out.c_read_repeats = static_cast<double>(reuse.c_reads) / reuse.c_tiles;
    return out;
}

/**
 * Per-tensor resident fractions of the staged working set. The SG is
 * allocated greedily: streaming tiles are mandatory, the intermediate
 * FLAT-tile has priority (it is the single-buffered tensor whose
 * off-chip round trip fusion exists to avoid), then the remaining
 * staged tensors smallest-first.
 */
struct Residency {
    /** Fraction of the staged working set resident in the SG. */
    double q = 1.0;
    double k = 1.0;
    double v = 1.0;
    double out = 1.0;
    double inter = 1.0;

    /** Fraction overflowed into the optional SG2 level (0 without
     *  SG2); the remainder spills to DRAM. */
    double q2 = 0.0;
    double k2 = 0.0;
    double v2 = 0.0;
    double out2 = 0.0;
    double inter2 = 0.0;

    double overall = 1.0;
};

/** DRAM / SG2 fetch-event split for one staged-or-streamed tensor. */
struct FetchSplit {
    double dram = 0.0; ///< full-tensor passes through the DRAM bus
    double sg2 = 0.0;  ///< full-tensor passes through the SG2 bus
};

/**
 * Splits the fetch events of a tensor across the hierarchy: the
 * SG-resident fraction is fetched from DRAM once; the SG2-resident
 * fraction is fetched from DRAM once and re-read from SG2 on every
 * reuse pass; the rest streams from DRAM with the failed-staging
 * penalty.
 */
FetchSplit
split_fetches(bool staged, double rho_sg, double rho_sg2,
              double unstaged_events)
{
    FetchSplit out;
    if (!staged) {
        out.dram = unstaged_events;
        return out;
    }
    const double spill = std::max(0.0, 1.0 - rho_sg - rho_sg2);
    out.dram = rho_sg + rho_sg2 + spill * (unstaged_events + 1.0);
    out.sg2 = rho_sg2 * unstaged_events;
    return out;
}

/** Everything the phase emitters need, computed once. */
struct AttentionPlan {
    CrossLoopExtent extent;
    GemmShape logit_shape;  ///< per staged slice
    GemmShape attend_shape; ///< per staged slice
    double slices = 0.0;    ///< passes * instances_per_pass

    GemmComputeCost logit_compute;  ///< per slice
    GemmComputeCost attend_compute; ///< per slice
    StageReuse logit_reuse;
    StageReuse attend_reuse;

    double q_bytes = 0.0;     ///< total Q rows bytes (B*H*N*dk)
    double k_bytes = 0.0;     ///< total K bytes
    double v_bytes = 0.0;     ///< total V bytes
    double out_bytes = 0.0;   ///< total output bytes
    double inter_bytes = 0.0; ///< total intermediate bytes (B*H*N*kv)

    /** Row chunks per (batch, head) group: K/V are re-touched once per
     *  chunk when they are not resident (1 for M/B/H granularity). */
    double kv_chunks = 1.0;

    std::uint64_t footprint = 0;
    Residency res;
};

/** Greedy SG allocation producing per-tensor resident fractions. */
Residency
allocate_residency(const AccelConfig& accel, const FusedDataflow& dataflow,
                   const AttentionDims& dims, const CrossLoopExtent& extent)
{
    const double bpe = accel.bytes_per_element;
    const double inst = static_cast<double>(extent.instances_per_pass);
    const double rows = static_cast<double>(extent.rows_per_pass);
    const double kv = static_cast<double>(dims.kv_len);
    const double dk = static_cast<double>(dims.head_dim);

    // Mandatory streaming-tile reservation for the unstaged tensors.
    GemmShape logit_shape;
    logit_shape.m = extent.rows_per_pass;
    logit_shape.k = dims.head_dim;
    logit_shape.n = dims.kv_len;
    GemmShape attend_shape;
    attend_shape.m = extent.rows_per_pass;
    attend_shape.k = dims.kv_len;
    attend_shape.n = dims.head_dim;
    const L2Tile lt = dataflow.l2_logit.clamped(logit_shape);
    const L2Tile at = dataflow.l2_attend.clamped(attend_shape);
    const std::uint32_t b = accel.bytes_per_element;
    double reserve = 0.0;
    if (!dataflow.stage.query) {
        reserve += 2.0 * lt.a_bytes(b);
    }
    if (!dataflow.stage.key) {
        reserve += 2.0 * lt.b_bytes(b);
    }
    if (!dataflow.stage.value) {
        reserve += 2.0 * at.b_bytes(b);
    }
    if (!dataflow.stage.output) {
        reserve += 2.0 * at.c_bytes(b);
    }
    if (!dataflow.stage.intermediate) {
        reserve += 2.0 * (lt.c_bytes(b) + at.a_bytes(b));
    }

    double capacity =
        std::max(0.0, static_cast<double>(accel.sg_bytes) - reserve);
    double capacity2 = static_cast<double>(accel.sg2_bytes);

    struct Demand {
        double* rho;
        double* rho2;
        double bytes;
    };
    Residency res;
    std::vector<Demand> demands;
    if (dataflow.stage.intermediate) {
        // Highest priority: the FLAT-tile itself (single-buffered).
        demands.push_back({&res.inter, &res.inter2,
                           rows * kv * inst * bpe});
    }
    std::vector<Demand> staged;
    if (dataflow.stage.query) {
        staged.push_back({&res.q, &res.q2, 2.0 * rows * dk * inst * bpe});
    }
    if (dataflow.stage.output) {
        staged.push_back({&res.out, &res.out2,
                          2.0 * rows * dk * inst * bpe});
    }
    if (dataflow.stage.key) {
        staged.push_back({&res.k, &res.k2, 2.0 * kv * dk * inst * bpe});
    }
    if (dataflow.stage.value) {
        staged.push_back({&res.v, &res.v2, 2.0 * kv * dk * inst * bpe});
    }
    std::sort(staged.begin(), staged.end(),
              [](const Demand& x, const Demand& y) {
                  return x.bytes < y.bytes;
              });
    demands.insert(demands.end(), staged.begin(), staged.end());

    double wanted = 0.0;
    double granted = 0.0;
    for (const Demand& d : demands) {
        const double fit =
            (d.bytes <= 0.0) ? 1.0 : std::min(1.0, capacity / d.bytes);
        *d.rho = fit;
        capacity -= fit * d.bytes;
        // Overflow into the second-level buffer when present.
        const double left = (1.0 - fit) * d.bytes;
        const double fit2 =
            (left <= 0.0 || capacity2 <= 0.0)
                ? 0.0
                : std::min(1.0, capacity2 / left) * (1.0 - fit);
        *d.rho2 = fit2;
        capacity2 -= fit2 * d.bytes;
        wanted += d.bytes;
        granted += (fit + fit2) * d.bytes;
    }
    res.overall = (wanted > 0.0) ? granted / wanted : 1.0;
    return res;
}

AttentionPlan
make_plan(const AccelConfig& accel, const AttentionDims& dims,
          const FusedDataflow& dataflow)
{
    dims.validate();
    dataflow.validate();

    AttentionPlan plan;
    plan.extent = cross_loop_extent(dataflow.cross, dims.batch, dims.heads,
                                    dims.q_len);
    const std::uint64_t rows = plan.extent.rows_per_pass;

    plan.logit_shape.m = rows;
    plan.logit_shape.k = dims.head_dim;
    plan.logit_shape.n = dims.kv_len;
    plan.logit_shape.instances = 1;
    plan.logit_shape.a_kind = OperandKind::kActivation;
    plan.logit_shape.b_kind = OperandKind::kActivation;

    plan.attend_shape.m = rows;
    plan.attend_shape.k = dims.kv_len;
    plan.attend_shape.n = dims.head_dim;
    plan.attend_shape.instances = 1;
    plan.attend_shape.a_kind = OperandKind::kActivation;
    plan.attend_shape.b_kind = OperandKind::kActivation;

    plan.slices = static_cast<double>(plan.extent.passes) *
                  plan.extent.instances_per_pass;

    plan.logit_compute =
        model_gemm_compute(accel, plan.logit_shape, dataflow.l2_logit,
                           dataflow.order_logit, dataflow.stat_logit);
    plan.attend_compute =
        model_gemm_compute(accel, plan.attend_shape, dataflow.l2_attend,
                           dataflow.order_attend, dataflow.stat_attend);
    plan.logit_reuse = stage_reuse(plan.logit_shape, dataflow.l2_logit,
                                   dataflow.order_logit);
    plan.attend_reuse = stage_reuse(plan.attend_shape, dataflow.l2_attend,
                                    dataflow.order_attend);

    const double bpe = accel.bytes_per_element;
    const double bh =
        static_cast<double>(dims.batch) * dims.heads;
    plan.q_bytes = bh * dims.q_len * dims.head_dim * bpe;
    plan.k_bytes = bh * dims.kv_len * dims.head_dim * bpe;
    plan.v_bytes = plan.k_bytes;
    plan.out_bytes = plan.q_bytes;
    plan.inter_bytes = bh * dims.q_len * dims.kv_len * bpe;

    plan.kv_chunks = static_cast<double>(
        ceil_div(dims.q_len, plan.extent.rows_per_pass));

    plan.footprint =
        fused_live_footprint(dataflow, dims, accel.bytes_per_element);
    plan.res = allocate_residency(accel, dataflow, dims, plan.extent);
    return plan;
}

/**
 * Memory traffic of the whole L-A pipeline given the staging flags:
 * DRAM events plus SG2 events for the fractions that overflow into the
 * optional second-level buffer.
 */
TrafficBytes
plan_dram_traffic(const AttentionPlan& plan, const FusedStageFlags& stage)
{
    const Residency& res = plan.res;
    TrafficBytes t;

    // Inputs of L: Q rows stream per slice; K/V per row chunk.
    const FetchSplit q_split = split_fetches(
        stage.query, res.q, res.q2, plan.logit_reuse.a_repeats);
    t.dram_read += q_split.dram * plan.q_bytes;
    t.sg2_read += q_split.sg2 * plan.q_bytes;

    const FetchSplit k_split = split_fetches(
        stage.key, res.k, res.k2,
        plan.kv_chunks * plan.logit_reuse.b_repeats);
    t.dram_read += k_split.dram * plan.k_bytes;
    t.sg2_read += k_split.sg2 * plan.k_bytes;

    const FetchSplit v_split = split_fetches(
        stage.value, res.v, res.v2,
        plan.kv_chunks * plan.attend_reuse.b_repeats);
    t.dram_read += v_split.dram * plan.v_bytes;
    t.sg2_read += v_split.sg2 * plan.v_bytes;

    // SG2-resident input fractions are filled from DRAM through SG2.
    t.sg2_write += (res.q2 * plan.q_bytes + res.k2 * plan.k_bytes +
                    res.v2 * plan.v_bytes);

    // Output of A (events mirrored: writes dominate).
    if (stage.output) {
        const double spill_out =
            std::max(0.0, 1.0 - res.out - res.out2);
        t.dram_write += (res.out + res.out2 +
                         spill_out * plan.attend_reuse.c_write_repeats) *
                        plan.out_bytes;
        t.dram_read += spill_out * plan.attend_reuse.c_read_repeats *
                       plan.out_bytes;
        t.sg2_write += res.out2 * plan.attend_reuse.c_write_repeats *
                       plan.out_bytes;
        t.sg2_read += res.out2 *
                      (plan.attend_reuse.c_read_repeats + 1.0) *
                      plan.out_bytes;
    } else {
        t.dram_write +=
            plan.attend_reuse.c_write_repeats * plan.out_bytes;
        t.dram_read +=
            plan.attend_reuse.c_read_repeats * plan.out_bytes;
    }

    // Intermediate tensor: on-chip when SG-resident; SG2-resident
    // fractions round-trip through SG2; the rest round-trips through
    // DRAM (L writes it, softmax reads+writes it, A reads it) plus the
    // failed-staging penalty (§6.2.1's "one extra pass").
    const double inter_write_events =
        plan.logit_reuse.c_write_repeats + 1.0; // + softmax write
    const double inter_read_events = plan.logit_reuse.c_read_repeats +
                                     plan.attend_reuse.a_repeats +
                                     1.0; // + softmax read
    const double spill = stage.intermediate
                             ? std::max(0.0, 1.0 - res.inter - res.inter2)
                             : 1.0;
    const double staging_penalty = stage.intermediate ? spill : 0.0;
    t.dram_write += (spill * inter_write_events + staging_penalty) *
                    plan.inter_bytes;
    t.dram_read += (spill * inter_read_events + staging_penalty) *
                   plan.inter_bytes;
    t.sg2_write += res.inter2 * inter_write_events * plan.inter_bytes;
    t.sg2_read += res.inter2 * inter_read_events * plan.inter_bytes;
    return t;
}

/** SFU time of the whole softmax (every intermediate element once). */
double
softmax_sfu_cycles(const AccelConfig& accel, const AttentionPlan& plan)
{
    return (plan.inter_bytes / accel.bytes_per_element) / accel.sfu_lanes;
}

/** Half the L-A MACs: each GEMM contributes exactly one half. */
double
half_macs(const AttentionDims& dims)
{
    return static_cast<double>(attention_macs(dims)) / 2.0;
}

/**
 * Exposed first-fetch window: the first Q/K slice cannot hide under
 * any compute. Pace-only — its bytes are already in the steady-state
 * prefetch ledger.
 */
Phase
cold_start_phase(const AttentionPlan& plan)
{
    Phase phase;
    phase.label = "cold start (first Q/K slice fetch)";
    phase.stage = StageTag::kColdStart;
    phase.group = 0;
    phase.pace_only = true;
    phase.activity.traffic.dram_read =
        (plan.q_bytes + plan.k_bytes) /
        (plan.slices > 0.0 ? plan.slices : 1.0);
    return phase;
}

/** GEMM phase skeleton: array occupancy, MACs/SL, SG streaming. */
Phase
gemm_phase(const char* label, StageTag stage, int group,
           const GemmComputeCost& compute, double occupancy_cycles,
           const AttentionDims& dims, double slices)
{
    Phase phase;
    phase.label = label;
    phase.stage = stage;
    phase.group = group;
    phase.compute_cycles = occupancy_cycles;
    phase.activity.macs = half_macs(dims);
    phase.activity.sl_accesses = 3.0 * phase.activity.macs;
    phase.activity.traffic.sg_read =
        (compute.sg_read_bytes + compute.sg_psum_read_bytes) * slices;
    phase.activity.traffic.sg_write = compute.sg_write_bytes * slices;
    return phase;
}

/**
 * FLAT (interleaved) execution: one shared overlap window — all
 * transfers hide under the combined duration of L + softmax + A —
 * preceded by the exposed cold-start fetch.
 */
std::vector<Phase>
emit_flat_phases(const AccelConfig& accel, const AttentionDims& dims,
                 const AttentionPlan& plan, const FusedStageFlags& stage)
{
    const TrafficBytes dram = plan_dram_traffic(plan, stage);

    std::vector<Phase> phases;
    phases.push_back(cold_start_phase(plan));

    Phase prefetch;
    prefetch.label = "prefetch (DRAM->SG, overlapped)";
    prefetch.stage = StageTag::kPrefetch;
    prefetch.group = 1;
    prefetch.activity.traffic.dram_read = dram.dram_read;
    prefetch.activity.traffic.sg_write = dram.dram_read; // pass-through
    prefetch.activity.traffic.sg2_read = dram.sg2_read;
    phases.push_back(prefetch);

    phases.push_back(gemm_phase(
        "L: logits slice GEMM", StageTag::kLogit, 1, plan.logit_compute,
        plan.logit_compute.total_cycles() * plan.slices, dims,
        plan.slices));

    Phase softmax;
    softmax.label = "softmax on SFU";
    softmax.stage = StageTag::kSoftmax;
    softmax.group = 1;
    softmax.sfu_cycles = softmax_sfu_cycles(accel, plan);
    softmax.activity.sfu_elems =
        plan.inter_bytes / accel.bytes_per_element;
    softmax.activity.traffic.sg_read = plan.inter_bytes;
    softmax.activity.traffic.sg_write = plan.inter_bytes;
    phases.push_back(softmax);

    phases.push_back(gemm_phase(
        "A: attend slice GEMM", StageTag::kAttend, 1, plan.attend_compute,
        plan.attend_compute.total_cycles() * plan.slices, dims,
        plan.slices));

    Phase writeback;
    writeback.label = "writeback (SG->DRAM, overlapped)";
    writeback.stage = StageTag::kWriteback;
    writeback.group = 1;
    writeback.activity.traffic.dram_write = dram.dram_write;
    writeback.activity.traffic.sg_read = dram.dram_write; // pass-through
    writeback.activity.traffic.sg2_write = dram.sg2_write;
    phases.push_back(writeback);
    return phases;
}

/**
 * Sequential baseline: three windows (L, softmax, A), each overlapping
 * only its own transfers, after the cold-start fetch. The spilled
 * intermediate fraction round-trips through DRAM between windows.
 */
std::vector<Phase>
emit_baseline_phases(const AccelConfig& accel, const AttentionDims& dims,
                     const AttentionPlan& plan,
                     const FusedDataflow& dataflow)
{
    FLAT_CHECK(dataflow.cross.granularity != Granularity::kRow,
               "the sequential baseline cannot execute at R-granularity; "
               "row-chunked L-A is exactly the fusion FLAT adds (§4.2)");
    const FusedStageFlags& stage = dataflow.stage;
    const TrafficBytes dram = plan_dram_traffic(plan, stage);
    const Residency& res = plan.res;
    const double spill =
        stage.intermediate
            ? std::max(0.0, 1.0 - res.inter - res.inter2)
            : 1.0;
    const double staging_penalty = stage.intermediate ? spill : 0.0;
    // The SG2 traffic is dominated by the intermediate, produced in the
    // L window and consumed in the A window: half to each.
    const double sg2_read_half = dram.sg2_read / 2.0;
    const double sg2_write_half = dram.sg2_write / 2.0;

    std::vector<Phase> phases;
    phases.push_back(cold_start_phase(plan));

    // Window 1: L reads Q and K and round-trips the spilled
    // intermediate fraction (psum re-reads out, result writes in).
    Phase l_xfer;
    l_xfer.label = "L transfers (Q/K in, spill out)";
    l_xfer.stage = StageTag::kPrefetch;
    l_xfer.group = 1;
    l_xfer.activity.traffic.dram_read =
        split_fetches(stage.query, res.q, res.q2,
                      plan.logit_reuse.a_repeats)
                .dram *
            plan.q_bytes +
        split_fetches(stage.key, res.k, res.k2,
                      plan.kv_chunks * plan.logit_reuse.b_repeats)
                .dram *
            plan.k_bytes +
        spill * plan.logit_reuse.c_read_repeats * plan.inter_bytes;
    l_xfer.activity.traffic.dram_write =
        (spill * plan.logit_reuse.c_write_repeats + staging_penalty) *
        plan.inter_bytes;
    l_xfer.activity.traffic.sg_write =
        l_xfer.activity.traffic.dram_read; // pass-through
    l_xfer.activity.traffic.sg_read = l_xfer.activity.traffic.dram_write;
    l_xfer.activity.traffic.sg2_read = sg2_read_half;
    l_xfer.activity.traffic.sg2_write = sg2_write_half;
    phases.push_back(l_xfer);

    phases.push_back(gemm_phase(
        "L: logits GEMM", StageTag::kLogit, 1, plan.logit_compute,
        plan.logit_compute.total_cycles() * plan.slices, dims,
        plan.slices));

    // Window 2: softmax round-trips the spilled fraction.
    Phase softmax;
    softmax.label = "softmax on SFU (spill round-trip)";
    softmax.stage = StageTag::kSoftmax;
    softmax.group = 2;
    softmax.sfu_cycles = softmax_sfu_cycles(accel, plan);
    softmax.activity.sfu_elems =
        plan.inter_bytes / accel.bytes_per_element;
    softmax.activity.traffic.dram_read = spill * plan.inter_bytes;
    softmax.activity.traffic.dram_write = spill * plan.inter_bytes;
    softmax.activity.traffic.sg_read =
        plan.inter_bytes + softmax.activity.traffic.dram_write;
    softmax.activity.traffic.sg_write =
        plan.inter_bytes + softmax.activity.traffic.dram_read;
    phases.push_back(softmax);

    // Window 3: A reads V and the intermediate, writes the output.
    Phase a_xfer;
    a_xfer.label = "A transfers (V/inter in)";
    a_xfer.stage = StageTag::kPrefetch;
    a_xfer.group = 3;
    a_xfer.activity.traffic.dram_read =
        split_fetches(stage.value, res.v, res.v2,
                      plan.kv_chunks * plan.attend_reuse.b_repeats)
                .dram *
            plan.v_bytes +
        (spill * plan.attend_reuse.a_repeats + staging_penalty) *
            plan.inter_bytes;
    Phase writeback;
    writeback.label = "writeback (out, SG->DRAM)";
    writeback.stage = StageTag::kWriteback;
    writeback.group = 3;
    if (stage.output) {
        const double spill_out =
            std::max(0.0, 1.0 - res.out - res.out2);
        a_xfer.activity.traffic.dram_read +=
            spill_out * plan.attend_reuse.c_read_repeats *
            plan.out_bytes;
        writeback.activity.traffic.dram_write =
            (res.out + res.out2 +
             spill_out * plan.attend_reuse.c_write_repeats) *
            plan.out_bytes;
    } else {
        a_xfer.activity.traffic.dram_read +=
            plan.attend_reuse.c_read_repeats * plan.out_bytes;
        writeback.activity.traffic.dram_write =
            plan.attend_reuse.c_write_repeats * plan.out_bytes;
    }
    a_xfer.activity.traffic.sg_write = a_xfer.activity.traffic.dram_read;
    a_xfer.activity.traffic.sg2_read = sg2_read_half;
    writeback.activity.traffic.sg_read =
        writeback.activity.traffic.dram_write;
    writeback.activity.traffic.sg2_write = sg2_write_half;

    phases.push_back(a_xfer);
    phases.push_back(gemm_phase(
        "A: attend GEMM", StageTag::kAttend, 3, plan.attend_compute,
        plan.attend_compute.total_cycles() * plan.slices, dims,
        plan.slices));
    phases.push_back(writeback);
    return phases;
}

/**
 * Spatially pipelined execution: L and A on concurrent half-array
 * tracks inside one overlap window, softmax serial between them, plus
 * a pace-only pipeline-fill window (one L slice + its softmax share).
 */
std::vector<Phase>
emit_pipelined_phases(const AccelConfig& accel, const AttentionDims& dims,
                      const AttentionPlan& plan,
                      const FusedDataflow& dataflow)
{
    FLAT_CHECK(accel.pe_rows >= 2,
               "pipelined execution needs an array splittable in two");

    // Each stage runs on half the array (split along rows). The halves
    // share the SG and the memory interfaces, so the byte ledger keeps
    // the full-array plan's streaming volume.
    AccelConfig half = accel;
    half.pe_rows = accel.pe_rows / 2;
    const GemmComputeCost logit_half =
        model_gemm_compute(half, plan.logit_shape, dataflow.l2_logit,
                           dataflow.order_logit, dataflow.stat_logit);
    const GemmComputeCost attend_half =
        model_gemm_compute(half, plan.attend_shape, dataflow.l2_attend,
                           dataflow.order_attend, dataflow.stat_attend);
    const TrafficBytes dram = plan_dram_traffic(plan, dataflow.stage);
    const double softmax_cycles = softmax_sfu_cycles(accel, plan);

    std::vector<Phase> phases;

    // Pipeline fill: one slice of L (and its softmax) before A starts.
    Phase fill;
    fill.label = "pipeline fill (first L slice + softmax)";
    fill.stage = StageTag::kColdStart;
    fill.group = 0;
    fill.pace_only = true;
    if (plan.slices > 0.0) {
        fill.compute_cycles = logit_half.total_cycles();
        fill.sfu_cycles = softmax_cycles / plan.slices;
    }
    phases.push_back(fill);

    Phase prefetch;
    prefetch.label = "prefetch (DRAM->SG, overlapped)";
    prefetch.stage = StageTag::kPrefetch;
    prefetch.group = 1;
    prefetch.activity.traffic.dram_read = dram.dram_read;
    prefetch.activity.traffic.sg_write = dram.dram_read; // pass-through
    prefetch.activity.traffic.sg2_read = dram.sg2_read;
    phases.push_back(prefetch);

    Phase logit = gemm_phase(
        "L: logits GEMM (half array)", StageTag::kLogit, 1,
        plan.logit_compute, logit_half.total_cycles() * plan.slices,
        dims, plan.slices);
    logit.track = 0;
    phases.push_back(logit);

    Phase softmax;
    softmax.label = "softmax on SFU (between halves)";
    softmax.stage = StageTag::kSoftmax;
    softmax.group = 1;
    softmax.sfu_cycles = softmax_cycles;
    softmax.activity.sfu_elems =
        plan.inter_bytes / accel.bytes_per_element;
    softmax.activity.traffic.sg_read = plan.inter_bytes;
    softmax.activity.traffic.sg_write = plan.inter_bytes;
    phases.push_back(softmax);

    Phase attend = gemm_phase(
        "A: attend GEMM (half array)", StageTag::kAttend, 1,
        plan.attend_compute, attend_half.total_cycles() * plan.slices,
        dims, plan.slices);
    attend.track = 1;
    phases.push_back(attend);

    Phase writeback;
    writeback.label = "writeback (SG->DRAM, overlapped)";
    writeback.stage = StageTag::kWriteback;
    writeback.group = 1;
    writeback.activity.traffic.dram_write = dram.dram_write;
    writeback.activity.traffic.sg_read = dram.dram_write; // pass-through
    writeback.activity.traffic.sg2_write = dram.sg2_write;
    phases.push_back(writeback);
    return phases;
}

/** Cost report from a plan and its evaluated timeline: the cycles and
 *  the activity ledger ARE the timeline's — no re-aggregation. */
OperatorCost
finalize_cost(const AccelConfig& accel, const AttentionDims& dims,
              const AttentionPlan& plan, const TimelineResult& timeline,
              const char* name)
{
    OperatorCost cost;
    cost.name = name;
    cost.ideal_cycles = attention_ideal_cycles(accel, dims);
    cost.cycles = timeline.cycles;
    cost.live_footprint_bytes = plan.footprint;
    cost.resident_fraction = plan.res.overall;
    cost.activity = timeline.activity;
    return cost;
}

} // namespace

std::uint64_t
attention_macs(const AttentionDims& dims)
{
    const std::uint64_t bh = dims.batch * dims.heads;
    // L: N x dk x kv, A: N x kv x dk per (batch, head).
    return 2 * bh * dims.q_len * dims.kv_len * dims.head_dim;
}

double
attention_ideal_cycles(const AccelConfig& accel, const AttentionDims& dims)
{
    return static_cast<double>(attention_macs(dims)) /
           accel.macs_per_cycle();
}

int
AttentionPhases::max_group() const
{
    int max_group = 0;
    for (const Phase& phase : phases) {
        max_group = std::max(max_group, phase.group);
    }
    return max_group;
}

AttentionPhases
flat_attention_phases(const AccelConfig& accel, const AttentionDims& dims,
                      const FusedDataflow& dataflow)
{
    accel.validate();
    const AttentionPlan plan = make_plan(accel, dims, dataflow);
    AttentionPhases out;
    out.phases = emit_flat_phases(accel, dims, plan, dataflow.stage);
    out.overlap = OverlapKind::kOverlapped;
    return out;
}

AttentionPhases
baseline_attention_phases(const AccelConfig& accel,
                          const AttentionDims& dims,
                          const FusedDataflow& dataflow,
                          BaselineOverlap overlap)
{
    accel.validate();
    const AttentionPlan plan = make_plan(accel, dims, dataflow);
    AttentionPhases out;
    out.phases = emit_baseline_phases(accel, dims, plan, dataflow);
    out.overlap = overlap == BaselineOverlap::kFull
                      ? OverlapKind::kOverlapped
                      : OverlapKind::kSerialTransfers;
    return out;
}

AttentionPhases
pipelined_attention_phases(const AccelConfig& accel,
                           const AttentionDims& dims,
                           const FusedDataflow& dataflow)
{
    accel.validate();
    const AttentionPlan plan = make_plan(accel, dims, dataflow);
    AttentionPhases out;
    out.phases = emit_pipelined_phases(accel, dims, plan, dataflow);
    out.overlap = OverlapKind::kOverlapped;
    return out;
}

TimelineResult
flat_attention_timeline(const AccelConfig& accel,
                        const AttentionDims& dims,
                        const FusedDataflow& dataflow)
{
    AttentionPhases emitted = flat_attention_phases(accel, dims, dataflow);
    return evaluate_timeline(std::move(emitted.phases), accel,
                             emitted.overlap);
}

TimelineResult
baseline_attention_timeline(const AccelConfig& accel,
                            const AttentionDims& dims,
                            const FusedDataflow& dataflow,
                            BaselineOverlap overlap)
{
    AttentionPhases emitted =
        baseline_attention_phases(accel, dims, dataflow, overlap);
    return evaluate_timeline(std::move(emitted.phases), accel,
                             emitted.overlap);
}

TimelineResult
pipelined_attention_timeline(const AccelConfig& accel,
                             const AttentionDims& dims,
                             const FusedDataflow& dataflow)
{
    AttentionPhases emitted =
        pipelined_attention_phases(accel, dims, dataflow);
    return evaluate_timeline(std::move(emitted.phases), accel,
                             emitted.overlap);
}

OperatorCost
model_flat_attention(const AccelConfig& accel, const AttentionDims& dims,
                     const FusedDataflow& dataflow)
{
    accel.validate();
    const AttentionPlan plan = make_plan(accel, dims, dataflow);
    const TimelineResult timeline = evaluate_timeline(
        emit_flat_phases(accel, dims, plan, dataflow.stage), accel,
        OverlapKind::kOverlapped);
    return finalize_cost(accel, dims, plan, timeline, "L-A(FLAT)");
}

OperatorCost
model_pipelined_attention(const AccelConfig& accel,
                          const AttentionDims& dims,
                          const FusedDataflow& dataflow)
{
    accel.validate();
    const AttentionPlan plan = make_plan(accel, dims, dataflow);
    const TimelineResult timeline = evaluate_timeline(
        emit_pipelined_phases(accel, dims, plan, dataflow), accel,
        OverlapKind::kOverlapped);
    return finalize_cost(accel, dims, plan, timeline, "L-A(pipelined)");
}

OperatorCost
model_baseline_attention(const AccelConfig& accel,
                         const AttentionDims& dims,
                         const FusedDataflow& dataflow,
                         BaselineOverlap overlap)
{
    accel.validate();
    const AttentionPlan plan = make_plan(accel, dims, dataflow);
    const TimelineResult timeline = evaluate_timeline(
        emit_baseline_phases(accel, dims, plan, dataflow), accel,
        overlap == BaselineOverlap::kFull
            ? OverlapKind::kOverlapped
            : OverlapKind::kSerialTransfers);
    return finalize_cost(accel, dims, plan, timeline, "L-A(Base)");
}

} // namespace flat

#include "costmodel/attention_cost.h"

#include <algorithm>
#include <vector>

#include "common/status.h"
#include "costmodel/eval_cache.h"
#include "dataflow/reuse.h"

namespace flat {

/**
 * Memoized attention plan plus the exact inputs its order-independent
 * base was computed from. Everything in AttentionPlan except the four
 * compute/reuse fields is a pure function of these key fields — the SG
 * loop orders and stationarities never enter the extent, the stage
 * shapes, the byte totals, the footprint or the residency split.
 */
struct AttentionEvalScratch::PlanMemo {
    bool valid = false;

    AttentionDims dims;
    std::uint32_t bytes_per_element = 0;
    std::uint64_t sg_bytes = 0;
    std::uint64_t sg2_bytes = 0;
    CrossLoop cross;
    L2Tile l2_logit;
    L2Tile l2_attend;
    FusedStageFlags stage;

    AttentionPlan plan;
};

AttentionEvalScratch::AttentionEvalScratch() = default;
AttentionEvalScratch::~AttentionEvalScratch() = default;

namespace {

/** True when every input the plan base reads is unchanged. */
bool
plan_base_matches(const AttentionEvalScratch::PlanMemo& memo,
                  const AccelConfig& accel, const AttentionDims& dims,
                  const FusedDataflow& df)
{
    return memo.valid &&
           memo.bytes_per_element == accel.bytes_per_element &&
           memo.sg_bytes == accel.sg_bytes &&
           memo.sg2_bytes == accel.sg2_bytes &&
           memo.dims.batch == dims.batch &&
           memo.dims.heads == dims.heads &&
           memo.dims.q_len == dims.q_len &&
           memo.dims.kv_len == dims.kv_len &&
           memo.dims.head_dim == dims.head_dim &&
           memo.dims.kv_heads == dims.kv_heads &&
           memo.dims.decode == dims.decode &&
           memo.cross.granularity == df.cross.granularity &&
           memo.cross.rows == df.cross.rows &&
           memo.cross.cols == df.cross.cols &&
           memo.l2_logit.m == df.l2_logit.m &&
           memo.l2_logit.k == df.l2_logit.k &&
           memo.l2_logit.n == df.l2_logit.n &&
           memo.l2_attend.m == df.l2_attend.m &&
           memo.l2_attend.k == df.l2_attend.k &&
           memo.l2_attend.n == df.l2_attend.n &&
           memo.stage.query == df.stage.query &&
           memo.stage.key == df.stage.key &&
           memo.stage.value == df.stage.value &&
           memo.stage.output == df.stage.output &&
           memo.stage.intermediate == df.stage.intermediate;
}

/** EvalCache key family of the memoized plan base (see below). */
constexpr std::uint64_t kTagPlanBase = EvalCache::kFirstExternalTag;

/** EvalCache key family of the batch evaluator's per-point outcomes
 *  (AttentionBatchEvaluator::CachedPoint payloads). */
constexpr std::uint64_t kTagPointCost = EvalCache::kFirstExternalTag + 1;

/**
 * Process-wide memoized plan base. The key mirrors plan_base_matches()
 * field for field — exactly the inputs the base (order-independent)
 * part of make_plan() reads — so repeated searches over the same
 * (accel, dims) grid, sweep points and scaleout inner sweeps share one
 * residency/footprint computation per base instead of rebuilding it in
 * every per-thread scratch. Returns nullptr when the cache is bypassed.
 * The stored plan's four order-dependent compute/reuse fields are
 * whatever the first caller's loop orders produced; every consumer
 * refreshes them (make_plan_memo below), so they never leak.
 */
std::shared_ptr<const AttentionPlan>
cached_plan_base(const AccelConfig& accel, const AttentionDims& dims,
                 const FusedDataflow& df, const PlannedGemmCosts& planned)
{
    std::uint64_t words[20];
    std::size_t n = 0;
    words[n++] = accel.bytes_per_element;
    words[n++] = accel.sg_bytes;
    words[n++] = accel.sg2_bytes;
    words[n++] = dims.batch;
    words[n++] = dims.heads;
    words[n++] = dims.q_len;
    words[n++] = dims.kv_len;
    words[n++] = dims.head_dim;
    words[n++] = dims.kv_heads;
    words[n++] = dims.decode ? 1u : 0u;
    words[n++] = static_cast<std::uint64_t>(df.cross.granularity);
    words[n++] = df.cross.rows;
    words[n++] = df.cross.cols;
    words[n++] = df.l2_logit.m;
    words[n++] = df.l2_logit.k;
    words[n++] = df.l2_logit.n;
    words[n++] = df.l2_attend.m;
    words[n++] = df.l2_attend.k;
    words[n++] = df.l2_attend.n;
    words[n++] = FusedStageFlags::encode(df.stage);
    return std::static_pointer_cast<const AttentionPlan>(
        EvalCache::instance().memoize(
            kTagPlanBase, words, n, sizeof(AttentionPlan),
            [&]() -> EvalCache::OpaquePayload {
                return std::make_shared<const AttentionPlan>(
                    make_plan(accel, dims, df, planned));
            }));
}

/**
 * make_plan() through the scratch memo. When only the SG loop orders
 * or stationarities changed since the previous call — the innermost
 * DSE axes — the memoized base is reused and just the four
 * order-dependent compute/reuse fields are refreshed with the identical
 * values make_plan() would have produced. Any other change pulls the
 * base from the process-wide cache (or recomputes the whole plan when
 * the cache is bypassed).
 */
const AttentionPlan&
make_plan_memo(const AccelConfig& accel, const AttentionDims& dims,
               const FusedDataflow& dataflow,
               const PlannedGemmCosts& planned,
               AttentionEvalScratch& scratch)
{
    if (!scratch.memo) {
        scratch.memo = std::make_unique<AttentionEvalScratch::PlanMemo>();
    }
    AttentionEvalScratch::PlanMemo& memo = *scratch.memo;
    if (!plan_base_matches(memo, accel, dims, dataflow)) {
        bool refresh_orders = false;
        if (std::shared_ptr<const AttentionPlan> base =
                cached_plan_base(accel, dims, dataflow, planned)) {
            memo.plan = *base;
            // The cached entry's order-dependent fields may come from
            // another caller's loop orders — refresh them below.
            refresh_orders = true;
        } else {
            memo.plan = make_plan(accel, dims, dataflow, planned);
        }
        memo.dims = dims;
        memo.bytes_per_element = accel.bytes_per_element;
        memo.sg_bytes = accel.sg_bytes;
        memo.sg2_bytes = accel.sg2_bytes;
        memo.cross = dataflow.cross;
        memo.l2_logit = dataflow.l2_logit;
        memo.l2_attend = dataflow.l2_attend;
        memo.stage = dataflow.stage;
        memo.valid = true;
        if (!refresh_orders) {
            return memo.plan;
        }
    }

    AttentionPlan& plan = memo.plan;
    if (planned.logit != nullptr) {
        plan.logit_compute = planned.logit->compute;
        plan.logit_reuse = planned.logit->reuse;
    } else {
        plan.logit_compute =
            model_gemm_compute(accel, plan.logit_shape, dataflow.l2_logit,
                               dataflow.order_logit, dataflow.stat_logit);
        plan.logit_reuse = stage_reuse(plan.logit_shape, dataflow.l2_logit,
                                       dataflow.order_logit);
    }
    if (planned.attend != nullptr) {
        plan.attend_compute = planned.attend->compute;
        plan.attend_reuse = planned.attend->reuse;
    } else {
        plan.attend_compute = model_gemm_compute(
            accel, plan.attend_shape, dataflow.l2_attend,
            dataflow.order_attend, dataflow.stat_attend);
        plan.attend_reuse = stage_reuse(
            plan.attend_shape, dataflow.l2_attend, dataflow.order_attend);
    }
    return plan;
}

} // namespace

int
AttentionPhases::max_group() const
{
    int max_group = 0;
    for (const Phase& phase : phases) {
        max_group = std::max(max_group, phase.group);
    }
    return max_group;
}

AttentionPhases
attention_phases(const ExecutionStyle& style, const AccelConfig& accel,
                 const AttentionDims& dims, const FusedDataflow& dataflow,
                 BaselineOverlap overlap)
{
    accel.validate();
    const AttentionPlan plan = make_plan(accel, dims, dataflow);
    AttentionPhases out;
    style.emit_phases(out.phases, accel, dims, plan, dataflow);
    out.overlap = style.overlap(overlap);
    return out;
}

AttentionPhases
flat_attention_phases(const AccelConfig& accel, const AttentionDims& dims,
                      const FusedDataflow& dataflow)
{
    return attention_phases(flat_execution_style(), accel, dims, dataflow);
}

AttentionPhases
baseline_attention_phases(const AccelConfig& accel,
                          const AttentionDims& dims,
                          const FusedDataflow& dataflow,
                          BaselineOverlap overlap)
{
    return attention_phases(baseline_execution_style(), accel, dims,
                            dataflow, overlap);
}

AttentionPhases
pipelined_attention_phases(const AccelConfig& accel,
                           const AttentionDims& dims,
                           const FusedDataflow& dataflow)
{
    return attention_phases(pipelined_execution_style(), accel, dims,
                            dataflow);
}

TimelineResult
attention_timeline(const ExecutionStyle& style, const AccelConfig& accel,
                   const AttentionDims& dims, const FusedDataflow& dataflow,
                   BaselineOverlap overlap)
{
    AttentionPhases emitted =
        attention_phases(style, accel, dims, dataflow, overlap);
    return evaluate_timeline(std::move(emitted.phases), accel,
                             emitted.overlap);
}

TimelineResult
flat_attention_timeline(const AccelConfig& accel,
                        const AttentionDims& dims,
                        const FusedDataflow& dataflow)
{
    return attention_timeline(flat_execution_style(), accel, dims,
                              dataflow);
}

TimelineResult
baseline_attention_timeline(const AccelConfig& accel,
                            const AttentionDims& dims,
                            const FusedDataflow& dataflow,
                            BaselineOverlap overlap)
{
    return attention_timeline(baseline_execution_style(), accel, dims,
                              dataflow, overlap);
}

TimelineResult
pipelined_attention_timeline(const AccelConfig& accel,
                             const AttentionDims& dims,
                             const FusedDataflow& dataflow)
{
    return attention_timeline(pipelined_execution_style(), accel, dims,
                              dataflow);
}

OperatorCost
model_attention(const ExecutionStyle& style, const AccelConfig& accel,
                const AttentionDims& dims, const FusedDataflow& dataflow,
                BaselineOverlap overlap)
{
    AttentionEvalScratch scratch;
    return model_attention(style, accel, dims, dataflow, overlap, scratch);
}

OperatorCost
model_attention(const ExecutionStyle& style, const AccelConfig& accel,
                const AttentionDims& dims, const FusedDataflow& dataflow,
                BaselineOverlap overlap, AttentionEvalScratch& scratch,
                const PlannedGemmCosts& planned)
{
    accel.validate();
    const AttentionPlan& plan =
        make_plan_memo(accel, dims, dataflow, planned, scratch);
    style.emit_phases(scratch.timeline.phases, accel, dims, plan,
                      dataflow);
    evaluate_timeline_into(scratch.timeline, accel, style.overlap(overlap));
    return finalize_cost(accel, dims, plan, scratch.timeline.result,
                         style.cost_name());
}

OperatorCost
model_flat_attention(const AccelConfig& accel, const AttentionDims& dims,
                     const FusedDataflow& dataflow)
{
    return model_attention(flat_execution_style(), accel, dims, dataflow);
}

OperatorCost
model_flat_attention(const AccelConfig& accel, const AttentionDims& dims,
                     const FusedDataflow& dataflow,
                     AttentionEvalScratch& scratch,
                     const PlannedGemmCosts& planned)
{
    return model_attention(flat_execution_style(), accel, dims, dataflow,
                           BaselineOverlap::kFull, scratch, planned);
}

OperatorCost
model_pipelined_attention(const AccelConfig& accel,
                          const AttentionDims& dims,
                          const FusedDataflow& dataflow)
{
    return model_attention(pipelined_execution_style(), accel, dims,
                           dataflow);
}

OperatorCost
model_flash_attention(const AccelConfig& accel, const AttentionDims& dims,
                      const FusedDataflow& dataflow)
{
    return model_attention(flash_execution_style(), accel, dims, dataflow);
}

OperatorCost
model_baseline_attention(const AccelConfig& accel,
                         const AttentionDims& dims,
                         const FusedDataflow& dataflow,
                         BaselineOverlap overlap)
{
    return model_attention(baseline_execution_style(), accel, dims,
                           dataflow, overlap);
}

OperatorCost
model_baseline_attention(const AccelConfig& accel,
                         const AttentionDims& dims,
                         const FusedDataflow& dataflow,
                         BaselineOverlap overlap,
                         AttentionEvalScratch& scratch,
                         const PlannedGemmCosts& planned)
{
    return model_attention(baseline_execution_style(), accel, dims,
                           dataflow, overlap, scratch, planned);
}

void
AttentionBatchEvaluator::begin(const AccelConfig& accel,
                               const AttentionDims& dims,
                               const FusedDataflow& base, bool fused,
                               BaselineOverlap baseline_overlap,
                               std::size_t lane_capacity,
                               AttentionEvalScratch& scratch)
{
    begin(accel, dims, base, default_execution_style(fused),
          baseline_overlap, lane_capacity, scratch);
}

void
AttentionBatchEvaluator::begin(const AccelConfig& accel,
                               const AttentionDims& dims,
                               const FusedDataflow& base,
                               const ExecutionStyle& style,
                               BaselineOverlap baseline_overlap,
                               std::size_t lane_capacity,
                               AttentionEvalScratch& scratch)
{
    accel.validate();
    accel_ = &accel;
    dims_ = &dims;
    scratch_ = &scratch;
    base_ = base;
    style_ = &style;
    lane_capacity_ = lane_capacity;
    overlap_ = style.overlap(baseline_overlap);
    ideal_cycles_ = attention_ideal_cycles(accel, dims);
    // Plan binding and batch configuration are deferred to the first
    // cache-miss add(): its GEMM cost records seed the plan memo, so a
    // block never computes a gemm cost it was going to overwrite
    // anyway (and an all-hit block never builds a plan at all).
    pending_begin_ = true;
    batch_.clear_lanes();
    lane_hits_.clear();
    lane_tb_.clear();
    lane_orders_.clear();

    // Pack the block's point-cache key prefix once: everything a
    // point's cost depends on except the two loop orders add() appends
    // per probe. The accel fingerprint comes from the cache itself so
    // it cannot drift from the built-in families'. Wide blocks skip
    // the family entirely (see kPointCacheMaxLanes).
    point_cache_ = lane_capacity <= kPointCacheMaxLanes &&
                   !EvalCache::bypassed();
    if (point_cache_) {
        key_.reset(kTagPointCost);
        key_.add((style.cache_key() << 2) |
                 static_cast<std::uint64_t>(overlap_));
        EvalCache::append_accel(key_, accel);
        key_.add(dims.batch);
        key_.add(dims.heads);
        key_.add(dims.q_len);
        key_.add(dims.kv_len);
        key_.add(dims.head_dim);
        key_.add(dims.kv_heads);
        key_.add(dims.decode ? std::uint64_t{1} : std::uint64_t{0});
        key_.add(static_cast<std::uint64_t>(base_.cross.granularity));
        key_.add(base_.cross.rows);
        key_.add(base_.cross.cols);
        key_.add(base_.l2_logit.m);
        key_.add(base_.l2_logit.k);
        key_.add(base_.l2_logit.n);
        key_.add(base_.l2_attend.m);
        key_.add(base_.l2_attend.k);
        key_.add(base_.l2_attend.n);
        key_.add(static_cast<std::uint64_t>(base_.stat_logit));
        key_.add(static_cast<std::uint64_t>(base_.stat_attend));
        key_.add(static_cast<std::uint64_t>(
            FusedStageFlags::encode(base_.stage)));
        key_.mark();
    }
}

void
AttentionBatchEvaluator::add(const GemmSliceCost& logit,
                             const GemmSliceCost& attend,
                             LoopOrder order_logit,
                             LoopOrder order_attend)
{
    if (point_cache_) {
        key_.rewind();
        key_.add(static_cast<std::uint64_t>(order_logit));
        key_.add(static_cast<std::uint64_t>(order_attend));
        if (EvalCache::OpaquePayload hit =
                EvalCache::instance().find(key_)) {
            lane_hits_.push_back(
                std::static_pointer_cast<const CachedPoint>(
                    std::move(hit)));
            lane_tb_.push_back(0); // unused for hit lanes
            lane_orders_.push_back({0, 0});
            return;
        }
    }

    AttentionEvalScratch& scratch = *scratch_;
    if (pending_begin_) {
        PlannedGemmCosts planned;
        planned.logit = &logit;
        planned.attend = &attend;
        make_plan_memo(*accel_, *dims_, base_, planned, scratch);
    } else {
        // Same patch make_plan_memo() applies on a base match.
        AttentionPlan& plan = scratch.memo->plan;
        plan.logit_compute = logit.compute;
        plan.logit_reuse = logit.reuse;
        plan.attend_compute = attend.compute;
        plan.attend_reuse = attend.reuse;
    }

    // The scalar emitter IS the batch fill path: identical phase
    // arithmetic by construction, only the evaluation is batched.
    const AttentionPlan& plan = scratch.memo->plan;
    std::vector<Phase>& phases = scratch.timeline.phases;
    style_->emit_phases(phases, *accel_, *dims_, plan, base_);

    if (pending_begin_) {
        batch_.configure(phases, overlap_, lane_capacity_);
        pending_begin_ = false;
    }
    const std::size_t lane = batch_.add_lane();
    for (std::size_t p = 0; p < phases.size(); ++p) {
        const Phase& phase = phases[p];
        batch_.set_phase(lane, p, phase.compute_cycles,
                         phase.sfu_cycles, phase.link_latency_cycles,
                         phase.activity);
    }
    lane_hits_.push_back(nullptr);
    lane_tb_.push_back(static_cast<std::uint32_t>(lane));
    lane_orders_.push_back({static_cast<std::uint32_t>(order_logit),
                            static_cast<std::uint32_t>(order_attend)});
}

void
AttentionBatchEvaluator::evaluate()
{
    if (batch_.lanes() == 0) {
        return; // every lane was a point-cache hit
    }
    batch_.evaluate(*accel_);
    if (!point_cache_) {
        return;
    }
    // Publish the freshly computed points. A racing duplicate keeps
    // the first entry; both are bit-identical by purity.
    const AttentionPlan& plan = scratch_->memo->plan;
    for (std::size_t i = 0; i < lane_hits_.size(); ++i) {
        if (lane_hits_[i]) {
            continue;
        }
        const TimelineBatch::LaneSummary& summary =
            batch_.summary(lane_tb_[i]);
        auto point = std::make_shared<CachedPoint>();
        point->cycles = summary.cycles;
        point->live_footprint_bytes = plan.footprint;
        point->resident_fraction = plan.res.overall;
        point->activity = summary.activity;
        key_.rewind();
        key_.add(static_cast<std::uint64_t>(lane_orders_[i][0]));
        key_.add(static_cast<std::uint64_t>(lane_orders_[i][1]));
        EvalCache::instance().insert(key_, std::move(point),
                                     sizeof(CachedPoint));
    }
}

OperatorCost
AttentionBatchEvaluator::cost(std::size_t lane) const
{
    OperatorCost cost;
    cost.name = style_->cost_name();
    cost.ideal_cycles = ideal_cycles_;
    if (const CachedPoint* hit = lane_hits_[lane].get()) {
        cost.cycles = hit->cycles;
        cost.live_footprint_bytes = hit->live_footprint_bytes;
        cost.resident_fraction = hit->resident_fraction;
        cost.activity = hit->activity;
        return cost;
    }
    const TimelineBatch::LaneSummary& summary =
        batch_.summary(lane_tb_[lane]);
    const AttentionPlan& plan = scratch_->memo->plan;
    cost.cycles = summary.cycles;
    cost.live_footprint_bytes = plan.footprint;
    cost.resident_fraction = plan.res.overall;
    cost.activity = summary.activity;
    return cost;
}

} // namespace flat

#include "costmodel/attention_cost.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math_util.h"
#include "common/status.h"
#include "costmodel/eval_cache.h"
#include "costmodel/gemm_engine.h"
#include "costmodel/operator_cost.h"
#include "dataflow/reuse.h"

namespace flat {
namespace {

/**
 * Per-tensor resident fractions of the staged working set. The SG is
 * allocated greedily: streaming tiles are mandatory, the intermediate
 * FLAT-tile has priority (it is the single-buffered tensor whose
 * off-chip round trip fusion exists to avoid), then the remaining
 * staged tensors smallest-first.
 */
struct Residency {
    /** Fraction of the staged working set resident in the SG. */
    double q = 1.0;
    double k = 1.0;
    double v = 1.0;
    double out = 1.0;
    double inter = 1.0;

    /** Fraction overflowed into the optional SG2 level (0 without
     *  SG2); the remainder spills to DRAM. */
    double q2 = 0.0;
    double k2 = 0.0;
    double v2 = 0.0;
    double out2 = 0.0;
    double inter2 = 0.0;

    double overall = 1.0;
};

/** DRAM / SG2 fetch-event split for one staged-or-streamed tensor. */
struct FetchSplit {
    double dram = 0.0; ///< full-tensor passes through the DRAM bus
    double sg2 = 0.0;  ///< full-tensor passes through the SG2 bus
};

/**
 * Splits the fetch events of a tensor across the hierarchy: the
 * SG-resident fraction is fetched from DRAM once; the SG2-resident
 * fraction is fetched from DRAM once and re-read from SG2 on every
 * reuse pass; the rest streams from DRAM with the failed-staging
 * penalty.
 */
FetchSplit
split_fetches(bool staged, double rho_sg, double rho_sg2,
              double unstaged_events)
{
    FetchSplit out;
    if (!staged) {
        out.dram = unstaged_events;
        return out;
    }
    const double spill = std::max(0.0, 1.0 - rho_sg - rho_sg2);
    out.dram = rho_sg + rho_sg2 + spill * (unstaged_events + 1.0);
    out.sg2 = rho_sg2 * unstaged_events;
    return out;
}

/** Everything the phase emitters need, computed once. */
struct AttentionPlan {
    CrossLoopExtent extent;
    GemmShape logit_shape;  ///< per staged slice
    GemmShape attend_shape; ///< per staged slice
    double slices = 0.0;    ///< passes * instances_per_pass

    GemmComputeCost logit_compute;  ///< per slice
    GemmComputeCost attend_compute; ///< per slice
    StageReuse logit_reuse;
    StageReuse attend_reuse;

    double q_bytes = 0.0;     ///< total Q rows bytes (B*H*N*dk)
    double k_bytes = 0.0;     ///< total K bytes
    double v_bytes = 0.0;     ///< total V bytes
    double out_bytes = 0.0;   ///< total output bytes
    double inter_bytes = 0.0; ///< total intermediate bytes (B*H*N*kv)

    /** Row chunks per (batch, head) group: K/V are re-touched once per
     *  chunk when they are not resident (1 for M/B/H granularity). */
    double kv_chunks = 1.0;

    std::uint64_t footprint = 0;
    Residency res;
};

/** Greedy SG allocation producing per-tensor resident fractions. */
Residency
allocate_residency(const AccelConfig& accel, const FusedDataflow& dataflow,
                   const AttentionDims& dims, const CrossLoopExtent& extent)
{
    const double bpe = accel.bytes_per_element;
    const double inst = static_cast<double>(extent.instances_per_pass);
    const double rows = static_cast<double>(extent.rows_per_pass);
    const double kv = static_cast<double>(dims.kv_len);
    const double dk = static_cast<double>(dims.head_dim);

    // Mandatory streaming-tile reservation for the unstaged tensors.
    GemmShape logit_shape;
    logit_shape.m = extent.rows_per_pass;
    logit_shape.k = dims.head_dim;
    logit_shape.n = dims.kv_len;
    GemmShape attend_shape;
    attend_shape.m = extent.rows_per_pass;
    attend_shape.k = dims.kv_len;
    attend_shape.n = dims.head_dim;
    const L2Tile lt = dataflow.l2_logit.clamped(logit_shape);
    const L2Tile at = dataflow.l2_attend.clamped(attend_shape);
    const std::uint32_t b = accel.bytes_per_element;
    double reserve = 0.0;
    if (!dataflow.stage.query) {
        reserve += 2.0 * lt.a_bytes(b);
    }
    if (!dataflow.stage.key) {
        reserve += 2.0 * lt.b_bytes(b);
    }
    if (!dataflow.stage.value) {
        reserve += 2.0 * at.b_bytes(b);
    }
    if (!dataflow.stage.output) {
        reserve += 2.0 * at.c_bytes(b);
    }
    if (!dataflow.stage.intermediate) {
        reserve += 2.0 * (lt.c_bytes(b) + at.a_bytes(b));
    }

    double capacity =
        std::max(0.0, static_cast<double>(accel.sg_bytes) - reserve);
    double capacity2 = static_cast<double>(accel.sg2_bytes);

    struct Demand {
        double* rho;
        double* rho2;
        double bytes;
    };
    Residency res;
    // Fixed-capacity demand lists (at most 1 + 4 tensors): this runs
    // once per DSE point, so it must not touch the heap.
    Demand demands[5];
    std::size_t n_demands = 0;
    if (dataflow.stage.intermediate) {
        // Highest priority: the FLAT-tile itself (single-buffered).
        demands[n_demands++] = {&res.inter, &res.inter2,
                                rows * kv * inst * bpe};
    }
    Demand staged[4];
    std::size_t n_staged = 0;
    if (dataflow.stage.query) {
        staged[n_staged++] = {&res.q, &res.q2,
                              2.0 * rows * dk * inst * bpe};
    }
    if (dataflow.stage.output) {
        staged[n_staged++] = {&res.out, &res.out2,
                              2.0 * rows * dk * inst * bpe};
    }
    if (dataflow.stage.key) {
        staged[n_staged++] = {&res.k, &res.k2,
                              2.0 * kv * dk * inst * bpe};
    }
    if (dataflow.stage.value) {
        staged[n_staged++] = {&res.v, &res.v2,
                              2.0 * kv * dk * inst * bpe};
    }
    // Insertion sort by bytes ascending (stable; <= 4 elements). Equal
    // demands keep the q/out/k/v emission order above, matching what
    // std::sort's small-range insertion path produced historically.
    for (std::size_t i = 1; i < n_staged; ++i) {
        const Demand d = staged[i];
        std::size_t j = i;
        while (j > 0 && d.bytes < staged[j - 1].bytes) {
            staged[j] = staged[j - 1];
            --j;
        }
        staged[j] = d;
    }
    for (std::size_t i = 0; i < n_staged; ++i) {
        demands[n_demands++] = staged[i];
    }

    double wanted = 0.0;
    double granted = 0.0;
    for (std::size_t di = 0; di < n_demands; ++di) {
        const Demand& d = demands[di];
        const double fit =
            (d.bytes <= 0.0) ? 1.0 : std::min(1.0, capacity / d.bytes);
        *d.rho = fit;
        capacity -= fit * d.bytes;
        // Overflow into the second-level buffer when present.
        const double left = (1.0 - fit) * d.bytes;
        const double fit2 =
            (left <= 0.0 || capacity2 <= 0.0)
                ? 0.0
                : std::min(1.0, capacity2 / left) * (1.0 - fit);
        *d.rho2 = fit2;
        capacity2 -= fit2 * d.bytes;
        wanted += d.bytes;
        granted += (fit + fit2) * d.bytes;
    }
    res.overall = (wanted > 0.0) ? granted / wanted : 1.0;
    return res;
}

AttentionPlan
make_plan(const AccelConfig& accel, const AttentionDims& dims,
          const FusedDataflow& dataflow,
          const PlannedGemmCosts& planned = {})
{
    dims.validate();
    dataflow.validate();

    AttentionPlan plan;
    plan.extent = cross_loop_extent(dataflow.cross, dims.batch, dims.heads,
                                    dims.q_len);
    const std::uint64_t rows = plan.extent.rows_per_pass;

    plan.logit_shape.m = rows;
    plan.logit_shape.k = dims.head_dim;
    plan.logit_shape.n = dims.kv_len;
    plan.logit_shape.instances = 1;
    plan.logit_shape.a_kind = OperandKind::kActivation;
    plan.logit_shape.b_kind = OperandKind::kActivation;

    plan.attend_shape.m = rows;
    plan.attend_shape.k = dims.kv_len;
    plan.attend_shape.n = dims.head_dim;
    plan.attend_shape.instances = 1;
    plan.attend_shape.a_kind = OperandKind::kActivation;
    plan.attend_shape.b_kind = OperandKind::kActivation;

    plan.slices = static_cast<double>(plan.extent.passes) *
                  plan.extent.instances_per_pass;

    // Injected costs come from the DSE's per-slice tables (see
    // PlannedGemmCosts): same pure functions of the same inputs, so the
    // plan is bit-identical either way — just cheaper.
    if (planned.logit != nullptr) {
        plan.logit_compute = planned.logit->compute;
        plan.logit_reuse = planned.logit->reuse;
    } else {
        plan.logit_compute =
            model_gemm_compute(accel, plan.logit_shape, dataflow.l2_logit,
                               dataflow.order_logit, dataflow.stat_logit);
        plan.logit_reuse = stage_reuse(plan.logit_shape, dataflow.l2_logit,
                                       dataflow.order_logit);
    }
    if (planned.attend != nullptr) {
        plan.attend_compute = planned.attend->compute;
        plan.attend_reuse = planned.attend->reuse;
    } else {
        plan.attend_compute = model_gemm_compute(
            accel, plan.attend_shape, dataflow.l2_attend,
            dataflow.order_attend, dataflow.stat_attend);
        plan.attend_reuse = stage_reuse(
            plan.attend_shape, dataflow.l2_attend, dataflow.order_attend);
    }

    const double bpe = accel.bytes_per_element;
    const double bh =
        static_cast<double>(dims.batch) * dims.heads;
    plan.q_bytes = bh * dims.q_len * dims.head_dim * bpe;
    plan.k_bytes = bh * dims.kv_len * dims.head_dim * bpe;
    plan.v_bytes = plan.k_bytes;
    plan.out_bytes = plan.q_bytes;
    plan.inter_bytes = bh * dims.q_len * dims.kv_len * bpe;

    plan.kv_chunks = static_cast<double>(
        ceil_div(dims.q_len, plan.extent.rows_per_pass));

    plan.footprint =
        fused_live_footprint(dataflow, dims, accel.bytes_per_element);
    plan.res = allocate_residency(accel, dataflow, dims, plan.extent);
    return plan;
}

/**
 * Memory traffic of the whole L-A pipeline given the staging flags:
 * DRAM events plus SG2 events for the fractions that overflow into the
 * optional second-level buffer.
 */
TrafficBytes
plan_dram_traffic(const AttentionPlan& plan, const FusedStageFlags& stage)
{
    const Residency& res = plan.res;
    TrafficBytes t;

    // Inputs of L: Q rows stream per slice; K/V per row chunk.
    const FetchSplit q_split = split_fetches(
        stage.query, res.q, res.q2, plan.logit_reuse.a_repeats);
    t.dram_read += q_split.dram * plan.q_bytes;
    t.sg2_read += q_split.sg2 * plan.q_bytes;

    const FetchSplit k_split = split_fetches(
        stage.key, res.k, res.k2,
        plan.kv_chunks * plan.logit_reuse.b_repeats);
    t.dram_read += k_split.dram * plan.k_bytes;
    t.sg2_read += k_split.sg2 * plan.k_bytes;

    const FetchSplit v_split = split_fetches(
        stage.value, res.v, res.v2,
        plan.kv_chunks * plan.attend_reuse.b_repeats);
    t.dram_read += v_split.dram * plan.v_bytes;
    t.sg2_read += v_split.sg2 * plan.v_bytes;

    // SG2-resident input fractions are filled from DRAM through SG2.
    t.sg2_write += (res.q2 * plan.q_bytes + res.k2 * plan.k_bytes +
                    res.v2 * plan.v_bytes);

    // Output of A (events mirrored: writes dominate).
    if (stage.output) {
        const double spill_out =
            std::max(0.0, 1.0 - res.out - res.out2);
        t.dram_write += (res.out + res.out2 +
                         spill_out * plan.attend_reuse.c_write_repeats) *
                        plan.out_bytes;
        t.dram_read += spill_out * plan.attend_reuse.c_read_repeats *
                       plan.out_bytes;
        t.sg2_write += res.out2 * plan.attend_reuse.c_write_repeats *
                       plan.out_bytes;
        t.sg2_read += res.out2 *
                      (plan.attend_reuse.c_read_repeats + 1.0) *
                      plan.out_bytes;
    } else {
        t.dram_write +=
            plan.attend_reuse.c_write_repeats * plan.out_bytes;
        t.dram_read +=
            plan.attend_reuse.c_read_repeats * plan.out_bytes;
    }

    // Intermediate tensor: on-chip when SG-resident; SG2-resident
    // fractions round-trip through SG2; the rest round-trips through
    // DRAM (L writes it, softmax reads+writes it, A reads it) plus the
    // failed-staging penalty (§6.2.1's "one extra pass").
    const double inter_write_events =
        plan.logit_reuse.c_write_repeats + 1.0; // + softmax write
    const double inter_read_events = plan.logit_reuse.c_read_repeats +
                                     plan.attend_reuse.a_repeats +
                                     1.0; // + softmax read
    const double spill = stage.intermediate
                             ? std::max(0.0, 1.0 - res.inter - res.inter2)
                             : 1.0;
    const double staging_penalty = stage.intermediate ? spill : 0.0;
    t.dram_write += (spill * inter_write_events + staging_penalty) *
                    plan.inter_bytes;
    t.dram_read += (spill * inter_read_events + staging_penalty) *
                   plan.inter_bytes;
    t.sg2_write += res.inter2 * inter_write_events * plan.inter_bytes;
    t.sg2_read += res.inter2 * inter_read_events * plan.inter_bytes;
    return t;
}

/** SFU time of the whole softmax (every intermediate element once). */
double
softmax_sfu_cycles(const AccelConfig& accel, const AttentionPlan& plan)
{
    return (plan.inter_bytes / accel.bytes_per_element) / accel.sfu_lanes;
}

/** Half the L-A MACs: each GEMM contributes exactly one half. */
double
half_macs(const AttentionDims& dims)
{
    return static_cast<double>(attention_macs(dims)) / 2.0;
}

/**
 * Appends-or-reuses the phase at @p idx of @p out, resetting every
 * field. Label assignment reuses the existing string's capacity, so a
 * steady-state emit loop (same style, hence same label lengths) never
 * allocates. The emitters fill phases strictly one at a time — the
 * returned reference is invalidated by the next next_phase() call.
 */
Phase&
next_phase(std::vector<Phase>& out, std::size_t& idx, const char* label,
           StageTag stage, int group)
{
    if (idx == out.size()) {
        out.emplace_back();
    }
    Phase& phase = out[idx++];
    phase.label = label;
    phase.stage = stage;
    phase.group = group;
    phase.track = -1;
    phase.compute_cycles = 0.0;
    phase.sfu_cycles = 0.0;
    phase.link_latency_cycles = 0.0;
    phase.activity = ActivityCounts{};
    phase.pace_only = false;
    return phase;
}

/**
 * Exposed first-fetch window: the first Q/K slice cannot hide under
 * any compute. Pace-only — its bytes are already in the steady-state
 * prefetch ledger.
 */
void
emit_cold_start(std::vector<Phase>& out, std::size_t& idx,
                const AttentionPlan& plan)
{
    Phase& phase = next_phase(out, idx,
                              "cold start (first Q/K slice fetch)",
                              StageTag::kColdStart, 0);
    phase.pace_only = true;
    phase.activity.traffic.dram_read =
        (plan.q_bytes + plan.k_bytes) /
        (plan.slices > 0.0 ? plan.slices : 1.0);
}

/** GEMM phase skeleton: array occupancy, MACs/SL, SG streaming. */
Phase&
emit_gemm_phase(std::vector<Phase>& out, std::size_t& idx,
                const char* label, StageTag stage, int group,
                const GemmComputeCost& compute, double occupancy_cycles,
                const AttentionDims& dims, double slices)
{
    Phase& phase = next_phase(out, idx, label, stage, group);
    phase.compute_cycles = occupancy_cycles;
    phase.activity.macs = half_macs(dims);
    phase.activity.sl_accesses = 3.0 * phase.activity.macs;
    phase.activity.traffic.sg_read =
        (compute.sg_read_bytes + compute.sg_psum_read_bytes) * slices;
    phase.activity.traffic.sg_write = compute.sg_write_bytes * slices;
    return phase;
}

/**
 * FLAT (interleaved) execution: one shared overlap window — all
 * transfers hide under the combined duration of L + softmax + A —
 * preceded by the exposed cold-start fetch. Emits into @p phases in
 * place, reusing its capacity (see next_phase()).
 */
void
emit_flat_phases(std::vector<Phase>& phases, const AccelConfig& accel,
                 const AttentionDims& dims, const AttentionPlan& plan,
                 const FusedStageFlags& stage)
{
    const TrafficBytes dram = plan_dram_traffic(plan, stage);

    std::size_t idx = 0;
    emit_cold_start(phases, idx, plan);

    {
        Phase& prefetch =
            next_phase(phases, idx, "prefetch (DRAM->SG, overlapped)",
                       StageTag::kPrefetch, 1);
        prefetch.activity.traffic.dram_read = dram.dram_read;
        prefetch.activity.traffic.sg_write =
            dram.dram_read; // pass-through
        prefetch.activity.traffic.sg2_read = dram.sg2_read;
    }

    emit_gemm_phase(phases, idx, "L: logits slice GEMM", StageTag::kLogit,
                    1, plan.logit_compute,
                    plan.logit_compute.total_cycles() * plan.slices, dims,
                    plan.slices);

    {
        Phase& softmax = next_phase(phases, idx, "softmax on SFU",
                                    StageTag::kSoftmax, 1);
        softmax.sfu_cycles = softmax_sfu_cycles(accel, plan);
        softmax.activity.sfu_elems =
            plan.inter_bytes / accel.bytes_per_element;
        softmax.activity.traffic.sg_read = plan.inter_bytes;
        softmax.activity.traffic.sg_write = plan.inter_bytes;
    }

    emit_gemm_phase(phases, idx, "A: attend slice GEMM",
                    StageTag::kAttend, 1, plan.attend_compute,
                    plan.attend_compute.total_cycles() * plan.slices,
                    dims, plan.slices);

    {
        Phase& writeback =
            next_phase(phases, idx, "writeback (SG->DRAM, overlapped)",
                       StageTag::kWriteback, 1);
        writeback.activity.traffic.dram_write = dram.dram_write;
        writeback.activity.traffic.sg_read =
            dram.dram_write; // pass-through
        writeback.activity.traffic.sg2_write = dram.sg2_write;
    }
    phases.resize(idx);
}

/**
 * Sequential baseline: three windows (L, softmax, A), each overlapping
 * only its own transfers, after the cold-start fetch. The spilled
 * intermediate fraction round-trips through DRAM between windows.
 * Emits into @p phases in place, reusing its capacity.
 */
void
emit_baseline_phases(std::vector<Phase>& phases, const AccelConfig& accel,
                     const AttentionDims& dims, const AttentionPlan& plan,
                     const FusedDataflow& dataflow)
{
    FLAT_CHECK(dataflow.cross.granularity != Granularity::kRow,
               "the sequential baseline cannot execute at R-granularity; "
               "row-chunked L-A is exactly the fusion FLAT adds (§4.2)");
    const FusedStageFlags& stage = dataflow.stage;
    const TrafficBytes dram = plan_dram_traffic(plan, stage);
    const Residency& res = plan.res;
    const double spill =
        stage.intermediate
            ? std::max(0.0, 1.0 - res.inter - res.inter2)
            : 1.0;
    const double staging_penalty = stage.intermediate ? spill : 0.0;
    // The SG2 traffic is dominated by the intermediate, produced in the
    // L window and consumed in the A window: half to each.
    const double sg2_read_half = dram.sg2_read / 2.0;
    const double sg2_write_half = dram.sg2_write / 2.0;

    // Window 3 volumes, computed up front (the output-staging branch
    // couples the A-transfer reads and the writeback writes).
    double a_xfer_dram_read =
        split_fetches(stage.value, res.v, res.v2,
                      plan.kv_chunks * plan.attend_reuse.b_repeats)
                .dram *
            plan.v_bytes +
        (spill * plan.attend_reuse.a_repeats + staging_penalty) *
            plan.inter_bytes;
    double writeback_dram_write = 0.0;
    if (stage.output) {
        const double spill_out =
            std::max(0.0, 1.0 - res.out - res.out2);
        a_xfer_dram_read += spill_out *
                            plan.attend_reuse.c_read_repeats *
                            plan.out_bytes;
        writeback_dram_write =
            (res.out + res.out2 +
             spill_out * plan.attend_reuse.c_write_repeats) *
            plan.out_bytes;
    } else {
        a_xfer_dram_read +=
            plan.attend_reuse.c_read_repeats * plan.out_bytes;
        writeback_dram_write =
            plan.attend_reuse.c_write_repeats * plan.out_bytes;
    }

    std::size_t idx = 0;
    emit_cold_start(phases, idx, plan);

    // Window 1: L reads Q and K and round-trips the spilled
    // intermediate fraction (psum re-reads out, result writes in).
    {
        Phase& l_xfer =
            next_phase(phases, idx, "L transfers (Q/K in, spill out)",
                       StageTag::kPrefetch, 1);
        l_xfer.activity.traffic.dram_read =
            split_fetches(stage.query, res.q, res.q2,
                          plan.logit_reuse.a_repeats)
                    .dram *
                plan.q_bytes +
            split_fetches(stage.key, res.k, res.k2,
                          plan.kv_chunks * plan.logit_reuse.b_repeats)
                    .dram *
                plan.k_bytes +
            spill * plan.logit_reuse.c_read_repeats * plan.inter_bytes;
        l_xfer.activity.traffic.dram_write =
            (spill * plan.logit_reuse.c_write_repeats + staging_penalty) *
            plan.inter_bytes;
        l_xfer.activity.traffic.sg_write =
            l_xfer.activity.traffic.dram_read; // pass-through
        l_xfer.activity.traffic.sg_read =
            l_xfer.activity.traffic.dram_write;
        l_xfer.activity.traffic.sg2_read = sg2_read_half;
        l_xfer.activity.traffic.sg2_write = sg2_write_half;
    }

    emit_gemm_phase(phases, idx, "L: logits GEMM", StageTag::kLogit, 1,
                    plan.logit_compute,
                    plan.logit_compute.total_cycles() * plan.slices, dims,
                    plan.slices);

    // Window 2: softmax round-trips the spilled fraction.
    {
        Phase& softmax =
            next_phase(phases, idx, "softmax on SFU (spill round-trip)",
                       StageTag::kSoftmax, 2);
        softmax.sfu_cycles = softmax_sfu_cycles(accel, plan);
        softmax.activity.sfu_elems =
            plan.inter_bytes / accel.bytes_per_element;
        softmax.activity.traffic.dram_read = spill * plan.inter_bytes;
        softmax.activity.traffic.dram_write = spill * plan.inter_bytes;
        softmax.activity.traffic.sg_read =
            plan.inter_bytes + softmax.activity.traffic.dram_write;
        softmax.activity.traffic.sg_write =
            plan.inter_bytes + softmax.activity.traffic.dram_read;
    }

    // Window 3: A reads V and the intermediate, writes the output.
    {
        Phase& a_xfer = next_phase(phases, idx, "A transfers (V/inter in)",
                                   StageTag::kPrefetch, 3);
        a_xfer.activity.traffic.dram_read = a_xfer_dram_read;
        a_xfer.activity.traffic.sg_write = a_xfer_dram_read;
        a_xfer.activity.traffic.sg2_read = sg2_read_half;
    }

    emit_gemm_phase(phases, idx, "A: attend GEMM", StageTag::kAttend, 3,
                    plan.attend_compute,
                    plan.attend_compute.total_cycles() * plan.slices,
                    dims, plan.slices);

    {
        Phase& writeback =
            next_phase(phases, idx, "writeback (out, SG->DRAM)",
                       StageTag::kWriteback, 3);
        writeback.activity.traffic.dram_write = writeback_dram_write;
        writeback.activity.traffic.sg_read = writeback_dram_write;
        writeback.activity.traffic.sg2_write = sg2_write_half;
    }
    phases.resize(idx);
}

/**
 * Spatially pipelined execution: L and A on concurrent half-array
 * tracks inside one overlap window, softmax serial between them, plus
 * a pace-only pipeline-fill window (one L slice + its softmax share).
 */
void
emit_pipelined_phases(std::vector<Phase>& phases, const AccelConfig& accel,
                      const AttentionDims& dims, const AttentionPlan& plan,
                      const FusedDataflow& dataflow)
{
    FLAT_CHECK(accel.pe_rows >= 2,
               "pipelined execution needs an array splittable in two");

    // Each stage runs on half the array (split along rows). The halves
    // share the SG and the memory interfaces, so the byte ledger keeps
    // the full-array plan's streaming volume.
    AccelConfig half = accel;
    half.pe_rows = accel.pe_rows / 2;
    const GemmComputeCost logit_half =
        model_gemm_compute(half, plan.logit_shape, dataflow.l2_logit,
                           dataflow.order_logit, dataflow.stat_logit);
    const GemmComputeCost attend_half =
        model_gemm_compute(half, plan.attend_shape, dataflow.l2_attend,
                           dataflow.order_attend, dataflow.stat_attend);
    const TrafficBytes dram = plan_dram_traffic(plan, dataflow.stage);
    const double softmax_cycles = softmax_sfu_cycles(accel, plan);

    std::size_t idx = 0;

    // Pipeline fill: one slice of L (and its softmax) before A starts.
    {
        Phase& fill =
            next_phase(phases, idx,
                       "pipeline fill (first L slice + softmax)",
                       StageTag::kColdStart, 0);
        fill.pace_only = true;
        if (plan.slices > 0.0) {
            fill.compute_cycles = logit_half.total_cycles();
            fill.sfu_cycles = softmax_cycles / plan.slices;
        }
    }

    {
        Phase& prefetch =
            next_phase(phases, idx, "prefetch (DRAM->SG, overlapped)",
                       StageTag::kPrefetch, 1);
        prefetch.activity.traffic.dram_read = dram.dram_read;
        prefetch.activity.traffic.sg_write =
            dram.dram_read; // pass-through
        prefetch.activity.traffic.sg2_read = dram.sg2_read;
    }

    {
        Phase& logit = emit_gemm_phase(
            phases, idx, "L: logits GEMM (half array)", StageTag::kLogit,
            1, plan.logit_compute,
            logit_half.total_cycles() * plan.slices, dims, plan.slices);
        logit.track = 0;
    }

    {
        Phase& softmax =
            next_phase(phases, idx, "softmax on SFU (between halves)",
                       StageTag::kSoftmax, 1);
        softmax.sfu_cycles = softmax_cycles;
        softmax.activity.sfu_elems =
            plan.inter_bytes / accel.bytes_per_element;
        softmax.activity.traffic.sg_read = plan.inter_bytes;
        softmax.activity.traffic.sg_write = plan.inter_bytes;
    }

    {
        Phase& attend = emit_gemm_phase(
            phases, idx, "A: attend GEMM (half array)", StageTag::kAttend,
            1, plan.attend_compute,
            attend_half.total_cycles() * plan.slices, dims, plan.slices);
        attend.track = 1;
    }

    {
        Phase& writeback =
            next_phase(phases, idx, "writeback (SG->DRAM, overlapped)",
                       StageTag::kWriteback, 1);
        writeback.activity.traffic.dram_write = dram.dram_write;
        writeback.activity.traffic.sg_read =
            dram.dram_write; // pass-through
        writeback.activity.traffic.sg2_write = dram.sg2_write;
    }
    phases.resize(idx);
}

/** Cost report from a plan and its evaluated timeline: the cycles and
 *  the activity ledger ARE the timeline's — no re-aggregation. */
OperatorCost
finalize_cost(const AccelConfig& accel, const AttentionDims& dims,
              const AttentionPlan& plan, const TimelineResult& timeline,
              const char* name)
{
    OperatorCost cost;
    cost.name = name;
    cost.ideal_cycles = attention_ideal_cycles(accel, dims);
    cost.cycles = timeline.cycles;
    cost.live_footprint_bytes = plan.footprint;
    cost.resident_fraction = plan.res.overall;
    cost.activity = timeline.activity;
    return cost;
}

} // namespace

/**
 * Memoized attention plan plus the exact inputs its order-independent
 * base was computed from. Everything in AttentionPlan except the four
 * compute/reuse fields is a pure function of these key fields — the SG
 * loop orders and stationarities never enter the extent, the stage
 * shapes, the byte totals, the footprint or the residency split.
 */
struct AttentionEvalScratch::PlanMemo {
    bool valid = false;

    AttentionDims dims;
    std::uint32_t bytes_per_element = 0;
    std::uint64_t sg_bytes = 0;
    std::uint64_t sg2_bytes = 0;
    CrossLoop cross;
    L2Tile l2_logit;
    L2Tile l2_attend;
    FusedStageFlags stage;

    AttentionPlan plan;
};

AttentionEvalScratch::AttentionEvalScratch() = default;
AttentionEvalScratch::~AttentionEvalScratch() = default;

namespace {

/** True when every input the plan base reads is unchanged. */
bool
plan_base_matches(const AttentionEvalScratch::PlanMemo& memo,
                  const AccelConfig& accel, const AttentionDims& dims,
                  const FusedDataflow& df)
{
    return memo.valid &&
           memo.bytes_per_element == accel.bytes_per_element &&
           memo.sg_bytes == accel.sg_bytes &&
           memo.sg2_bytes == accel.sg2_bytes &&
           memo.dims.batch == dims.batch &&
           memo.dims.heads == dims.heads &&
           memo.dims.q_len == dims.q_len &&
           memo.dims.kv_len == dims.kv_len &&
           memo.dims.head_dim == dims.head_dim &&
           memo.cross.granularity == df.cross.granularity &&
           memo.cross.rows == df.cross.rows &&
           memo.l2_logit.m == df.l2_logit.m &&
           memo.l2_logit.k == df.l2_logit.k &&
           memo.l2_logit.n == df.l2_logit.n &&
           memo.l2_attend.m == df.l2_attend.m &&
           memo.l2_attend.k == df.l2_attend.k &&
           memo.l2_attend.n == df.l2_attend.n &&
           memo.stage.query == df.stage.query &&
           memo.stage.key == df.stage.key &&
           memo.stage.value == df.stage.value &&
           memo.stage.output == df.stage.output &&
           memo.stage.intermediate == df.stage.intermediate;
}

/** EvalCache key family of the memoized plan base (see below). */
constexpr std::uint64_t kTagPlanBase = EvalCache::kFirstExternalTag;

/** EvalCache key family of the batch evaluator's per-point outcomes
 *  (AttentionBatchEvaluator::CachedPoint payloads). */
constexpr std::uint64_t kTagPointCost = EvalCache::kFirstExternalTag + 1;

/**
 * Process-wide memoized plan base. The key mirrors plan_base_matches()
 * field for field — exactly the inputs the base (order-independent)
 * part of make_plan() reads — so repeated searches over the same
 * (accel, dims) grid, sweep points and scaleout inner sweeps share one
 * residency/footprint computation per base instead of rebuilding it in
 * every per-thread scratch. Returns nullptr when the cache is bypassed.
 * The stored plan's four order-dependent compute/reuse fields are
 * whatever the first caller's loop orders produced; every consumer
 * refreshes them (make_plan_memo below), so they never leak.
 */
std::shared_ptr<const AttentionPlan>
cached_plan_base(const AccelConfig& accel, const AttentionDims& dims,
                 const FusedDataflow& df, const PlannedGemmCosts& planned)
{
    std::uint64_t words[17];
    std::size_t n = 0;
    words[n++] = accel.bytes_per_element;
    words[n++] = accel.sg_bytes;
    words[n++] = accel.sg2_bytes;
    words[n++] = dims.batch;
    words[n++] = dims.heads;
    words[n++] = dims.q_len;
    words[n++] = dims.kv_len;
    words[n++] = dims.head_dim;
    words[n++] = static_cast<std::uint64_t>(df.cross.granularity);
    words[n++] = df.cross.rows;
    words[n++] = df.l2_logit.m;
    words[n++] = df.l2_logit.k;
    words[n++] = df.l2_logit.n;
    words[n++] = df.l2_attend.m;
    words[n++] = df.l2_attend.k;
    words[n++] = df.l2_attend.n;
    words[n++] = FusedStageFlags::encode(df.stage);
    return std::static_pointer_cast<const AttentionPlan>(
        EvalCache::instance().memoize(
            kTagPlanBase, words, n, sizeof(AttentionPlan),
            [&]() -> EvalCache::OpaquePayload {
                return std::make_shared<const AttentionPlan>(
                    make_plan(accel, dims, df, planned));
            }));
}

/**
 * make_plan() through the scratch memo. When only the SG loop orders
 * or stationarities changed since the previous call — the innermost
 * DSE axes — the memoized base is reused and just the four
 * order-dependent compute/reuse fields are refreshed with the identical
 * values make_plan() would have produced. Any other change pulls the
 * base from the process-wide cache (or recomputes the whole plan when
 * the cache is bypassed).
 */
const AttentionPlan&
make_plan_memo(const AccelConfig& accel, const AttentionDims& dims,
               const FusedDataflow& dataflow,
               const PlannedGemmCosts& planned,
               AttentionEvalScratch& scratch)
{
    if (!scratch.memo) {
        scratch.memo = std::make_unique<AttentionEvalScratch::PlanMemo>();
    }
    AttentionEvalScratch::PlanMemo& memo = *scratch.memo;
    if (!plan_base_matches(memo, accel, dims, dataflow)) {
        bool refresh_orders = false;
        if (std::shared_ptr<const AttentionPlan> base =
                cached_plan_base(accel, dims, dataflow, planned)) {
            memo.plan = *base;
            // The cached entry's order-dependent fields may come from
            // another caller's loop orders — refresh them below.
            refresh_orders = true;
        } else {
            memo.plan = make_plan(accel, dims, dataflow, planned);
        }
        memo.dims = dims;
        memo.bytes_per_element = accel.bytes_per_element;
        memo.sg_bytes = accel.sg_bytes;
        memo.sg2_bytes = accel.sg2_bytes;
        memo.cross = dataflow.cross;
        memo.l2_logit = dataflow.l2_logit;
        memo.l2_attend = dataflow.l2_attend;
        memo.stage = dataflow.stage;
        memo.valid = true;
        if (!refresh_orders) {
            return memo.plan;
        }
    }

    AttentionPlan& plan = memo.plan;
    if (planned.logit != nullptr) {
        plan.logit_compute = planned.logit->compute;
        plan.logit_reuse = planned.logit->reuse;
    } else {
        plan.logit_compute =
            model_gemm_compute(accel, plan.logit_shape, dataflow.l2_logit,
                               dataflow.order_logit, dataflow.stat_logit);
        plan.logit_reuse = stage_reuse(plan.logit_shape, dataflow.l2_logit,
                                       dataflow.order_logit);
    }
    if (planned.attend != nullptr) {
        plan.attend_compute = planned.attend->compute;
        plan.attend_reuse = planned.attend->reuse;
    } else {
        plan.attend_compute = model_gemm_compute(
            accel, plan.attend_shape, dataflow.l2_attend,
            dataflow.order_attend, dataflow.stat_attend);
        plan.attend_reuse = stage_reuse(
            plan.attend_shape, dataflow.l2_attend, dataflow.order_attend);
    }
    return plan;
}

} // namespace

std::uint64_t
attention_macs(const AttentionDims& dims)
{
    const std::uint64_t bh = dims.batch * dims.heads;
    // L: N x dk x kv, A: N x kv x dk per (batch, head).
    return 2 * bh * dims.q_len * dims.kv_len * dims.head_dim;
}

double
attention_ideal_cycles(const AccelConfig& accel, const AttentionDims& dims)
{
    return static_cast<double>(attention_macs(dims)) /
           accel.macs_per_cycle();
}

int
AttentionPhases::max_group() const
{
    int max_group = 0;
    for (const Phase& phase : phases) {
        max_group = std::max(max_group, phase.group);
    }
    return max_group;
}

AttentionPhases
flat_attention_phases(const AccelConfig& accel, const AttentionDims& dims,
                      const FusedDataflow& dataflow)
{
    accel.validate();
    const AttentionPlan plan = make_plan(accel, dims, dataflow);
    AttentionPhases out;
    emit_flat_phases(out.phases, accel, dims, plan, dataflow.stage);
    out.overlap = OverlapKind::kOverlapped;
    return out;
}

AttentionPhases
baseline_attention_phases(const AccelConfig& accel,
                          const AttentionDims& dims,
                          const FusedDataflow& dataflow,
                          BaselineOverlap overlap)
{
    accel.validate();
    const AttentionPlan plan = make_plan(accel, dims, dataflow);
    AttentionPhases out;
    emit_baseline_phases(out.phases, accel, dims, plan, dataflow);
    out.overlap = overlap == BaselineOverlap::kFull
                      ? OverlapKind::kOverlapped
                      : OverlapKind::kSerialTransfers;
    return out;
}

AttentionPhases
pipelined_attention_phases(const AccelConfig& accel,
                           const AttentionDims& dims,
                           const FusedDataflow& dataflow)
{
    accel.validate();
    const AttentionPlan plan = make_plan(accel, dims, dataflow);
    AttentionPhases out;
    emit_pipelined_phases(out.phases, accel, dims, plan, dataflow);
    out.overlap = OverlapKind::kOverlapped;
    return out;
}

TimelineResult
flat_attention_timeline(const AccelConfig& accel,
                        const AttentionDims& dims,
                        const FusedDataflow& dataflow)
{
    AttentionPhases emitted = flat_attention_phases(accel, dims, dataflow);
    return evaluate_timeline(std::move(emitted.phases), accel,
                             emitted.overlap);
}

TimelineResult
baseline_attention_timeline(const AccelConfig& accel,
                            const AttentionDims& dims,
                            const FusedDataflow& dataflow,
                            BaselineOverlap overlap)
{
    AttentionPhases emitted =
        baseline_attention_phases(accel, dims, dataflow, overlap);
    return evaluate_timeline(std::move(emitted.phases), accel,
                             emitted.overlap);
}

TimelineResult
pipelined_attention_timeline(const AccelConfig& accel,
                             const AttentionDims& dims,
                             const FusedDataflow& dataflow)
{
    AttentionPhases emitted =
        pipelined_attention_phases(accel, dims, dataflow);
    return evaluate_timeline(std::move(emitted.phases), accel,
                             emitted.overlap);
}

OperatorCost
model_flat_attention(const AccelConfig& accel, const AttentionDims& dims,
                     const FusedDataflow& dataflow)
{
    AttentionEvalScratch scratch;
    return model_flat_attention(accel, dims, dataflow, scratch);
}

OperatorCost
model_flat_attention(const AccelConfig& accel, const AttentionDims& dims,
                     const FusedDataflow& dataflow,
                     AttentionEvalScratch& scratch,
                     const PlannedGemmCosts& planned)
{
    accel.validate();
    const AttentionPlan& plan =
        make_plan_memo(accel, dims, dataflow, planned, scratch);
    emit_flat_phases(scratch.timeline.phases, accel, dims, plan,
                     dataflow.stage);
    evaluate_timeline_into(scratch.timeline, accel,
                           OverlapKind::kOverlapped);
    return finalize_cost(accel, dims, plan, scratch.timeline.result,
                         "L-A(FLAT)");
}

OperatorCost
model_pipelined_attention(const AccelConfig& accel,
                          const AttentionDims& dims,
                          const FusedDataflow& dataflow)
{
    accel.validate();
    const AttentionPlan plan = make_plan(accel, dims, dataflow);
    std::vector<Phase> phases;
    emit_pipelined_phases(phases, accel, dims, plan, dataflow);
    const TimelineResult timeline = evaluate_timeline(
        std::move(phases), accel, OverlapKind::kOverlapped);
    return finalize_cost(accel, dims, plan, timeline, "L-A(pipelined)");
}

OperatorCost
model_baseline_attention(const AccelConfig& accel,
                         const AttentionDims& dims,
                         const FusedDataflow& dataflow,
                         BaselineOverlap overlap)
{
    AttentionEvalScratch scratch;
    return model_baseline_attention(accel, dims, dataflow, overlap,
                                    scratch);
}

OperatorCost
model_baseline_attention(const AccelConfig& accel,
                         const AttentionDims& dims,
                         const FusedDataflow& dataflow,
                         BaselineOverlap overlap,
                         AttentionEvalScratch& scratch,
                         const PlannedGemmCosts& planned)
{
    accel.validate();
    const AttentionPlan& plan =
        make_plan_memo(accel, dims, dataflow, planned, scratch);
    emit_baseline_phases(scratch.timeline.phases, accel, dims, plan,
                         dataflow);
    evaluate_timeline_into(scratch.timeline, accel,
                           overlap == BaselineOverlap::kFull
                               ? OverlapKind::kOverlapped
                               : OverlapKind::kSerialTransfers);
    return finalize_cost(accel, dims, plan, scratch.timeline.result,
                         "L-A(Base)");
}

void
AttentionBatchEvaluator::begin(const AccelConfig& accel,
                               const AttentionDims& dims,
                               const FusedDataflow& base, bool fused,
                               BaselineOverlap baseline_overlap,
                               std::size_t lane_capacity,
                               AttentionEvalScratch& scratch)
{
    accel.validate();
    accel_ = &accel;
    dims_ = &dims;
    scratch_ = &scratch;
    base_ = base;
    fused_ = fused;
    lane_capacity_ = lane_capacity;
    overlap_ = fused ? OverlapKind::kOverlapped
                     : (baseline_overlap == BaselineOverlap::kFull
                            ? OverlapKind::kOverlapped
                            : OverlapKind::kSerialTransfers);
    ideal_cycles_ = attention_ideal_cycles(accel, dims);
    // Plan binding and batch configuration are deferred to the first
    // cache-miss add(): its GEMM cost records seed the plan memo, so a
    // block never computes a gemm cost it was going to overwrite
    // anyway (and an all-hit block never builds a plan at all).
    pending_begin_ = true;
    batch_.clear_lanes();
    lane_hits_.clear();
    lane_tb_.clear();
    lane_orders_.clear();

    // Pack the block's point-cache key prefix once: everything a
    // point's cost depends on except the two loop orders add() appends
    // per probe. The accel fingerprint comes from the cache itself so
    // it cannot drift from the built-in families'. Wide blocks skip
    // the family entirely (see kPointCacheMaxLanes).
    point_cache_ = lane_capacity <= kPointCacheMaxLanes &&
                   !EvalCache::bypassed();
    if (point_cache_) {
        key_.reset(kTagPointCost);
        key_.add(static_cast<std::uint64_t>(
            (fused_ ? 2u : 0u) | static_cast<unsigned>(overlap_)));
        EvalCache::append_accel(key_, accel);
        key_.add(dims.batch);
        key_.add(dims.heads);
        key_.add(dims.q_len);
        key_.add(dims.kv_len);
        key_.add(dims.head_dim);
        key_.add(static_cast<std::uint64_t>(base_.cross.granularity));
        key_.add(base_.cross.rows);
        key_.add(base_.l2_logit.m);
        key_.add(base_.l2_logit.k);
        key_.add(base_.l2_logit.n);
        key_.add(base_.l2_attend.m);
        key_.add(base_.l2_attend.k);
        key_.add(base_.l2_attend.n);
        key_.add(static_cast<std::uint64_t>(base_.stat_logit));
        key_.add(static_cast<std::uint64_t>(base_.stat_attend));
        key_.add(static_cast<std::uint64_t>(
            FusedStageFlags::encode(base_.stage)));
        key_.mark();
    }
}

void
AttentionBatchEvaluator::add(const GemmSliceCost& logit,
                             const GemmSliceCost& attend,
                             LoopOrder order_logit,
                             LoopOrder order_attend)
{
    if (point_cache_) {
        key_.rewind();
        key_.add(static_cast<std::uint64_t>(order_logit));
        key_.add(static_cast<std::uint64_t>(order_attend));
        if (EvalCache::OpaquePayload hit =
                EvalCache::instance().find(key_)) {
            lane_hits_.push_back(
                std::static_pointer_cast<const CachedPoint>(
                    std::move(hit)));
            lane_tb_.push_back(0); // unused for hit lanes
            lane_orders_.push_back({0, 0});
            return;
        }
    }

    AttentionEvalScratch& scratch = *scratch_;
    if (pending_begin_) {
        PlannedGemmCosts planned;
        planned.logit = &logit;
        planned.attend = &attend;
        make_plan_memo(*accel_, *dims_, base_, planned, scratch);
    } else {
        // Same patch make_plan_memo() applies on a base match.
        AttentionPlan& plan = scratch.memo->plan;
        plan.logit_compute = logit.compute;
        plan.logit_reuse = logit.reuse;
        plan.attend_compute = attend.compute;
        plan.attend_reuse = attend.reuse;
    }

    // The scalar emitters ARE the batch fill path: identical phase
    // arithmetic by construction, only the evaluation is batched.
    const AttentionPlan& plan = scratch.memo->plan;
    std::vector<Phase>& phases = scratch.timeline.phases;
    if (fused_) {
        emit_flat_phases(phases, *accel_, *dims_, plan, base_.stage);
    } else {
        emit_baseline_phases(phases, *accel_, *dims_, plan, base_);
    }

    if (pending_begin_) {
        batch_.configure(phases, overlap_, lane_capacity_);
        pending_begin_ = false;
    }
    const std::size_t lane = batch_.add_lane();
    for (std::size_t p = 0; p < phases.size(); ++p) {
        const Phase& phase = phases[p];
        batch_.set_phase(lane, p, phase.compute_cycles,
                         phase.sfu_cycles, phase.link_latency_cycles,
                         phase.activity);
    }
    lane_hits_.push_back(nullptr);
    lane_tb_.push_back(static_cast<std::uint32_t>(lane));
    lane_orders_.push_back({static_cast<std::uint32_t>(order_logit),
                            static_cast<std::uint32_t>(order_attend)});
}

void
AttentionBatchEvaluator::evaluate()
{
    if (batch_.lanes() == 0) {
        return; // every lane was a point-cache hit
    }
    batch_.evaluate(*accel_);
    if (!point_cache_) {
        return;
    }
    // Publish the freshly computed points. A racing duplicate keeps
    // the first entry; both are bit-identical by purity.
    const AttentionPlan& plan = scratch_->memo->plan;
    for (std::size_t i = 0; i < lane_hits_.size(); ++i) {
        if (lane_hits_[i]) {
            continue;
        }
        const TimelineBatch::LaneSummary& summary =
            batch_.summary(lane_tb_[i]);
        auto point = std::make_shared<CachedPoint>();
        point->cycles = summary.cycles;
        point->live_footprint_bytes = plan.footprint;
        point->resident_fraction = plan.res.overall;
        point->activity = summary.activity;
        key_.rewind();
        key_.add(static_cast<std::uint64_t>(lane_orders_[i][0]));
        key_.add(static_cast<std::uint64_t>(lane_orders_[i][1]));
        EvalCache::instance().insert(key_, std::move(point),
                                     sizeof(CachedPoint));
    }
}

OperatorCost
AttentionBatchEvaluator::cost(std::size_t lane) const
{
    OperatorCost cost;
    cost.name = fused_ ? "L-A(FLAT)" : "L-A(Base)";
    cost.ideal_cycles = ideal_cycles_;
    if (const CachedPoint* hit = lane_hits_[lane].get()) {
        cost.cycles = hit->cycles;
        cost.live_footprint_bytes = hit->live_footprint_bytes;
        cost.resident_fraction = hit->resident_fraction;
        cost.activity = hit->activity;
        return cost;
    }
    const TimelineBatch::LaneSummary& summary =
        batch_.summary(lane_tb_[lane]);
    const AttentionPlan& plan = scratch_->memo->plan;
    cost.cycles = summary.cycles;
    cost.live_footprint_bytes = plan.footprint;
    cost.resident_fraction = plan.res.overall;
    cost.activity = summary.activity;
    return cost;
}

} // namespace flat

/**
 * @file
 * Pluggable execution styles of the fused L -> softmax -> A operator.
 *
 * A style is a pure phase emitter over the shared AttentionPlan: it
 * owns the phase structure (overlap windows, tracks, SFU work), the
 * overlap policy the timeline evaluator applies, the granularity
 * constraints it can legally execute, and the style-specific monotone
 * lower bound the DSE prunes with. Everything downstream — the scalar
 * and batched evaluators, the scale-out model, the trace layer, the
 * DSE and the CLI — consumes styles through this interface, so adding
 * a style is one registration here instead of a special case per layer.
 *
 * Registered styles:
 *   baseline  — sequential L / softmax / A windows (Base / Base-X)
 *   flat      — FLAT interleaved execution, one shared overlap window
 *   pipelined — L and A on concurrent half-array tracks (§5.1 foil)
 *   flash     — column-blocked streaming L-A with online softmax:
 *               running max/sum rescale FLOPs ride the SFU critical
 *               path and the intermediate lives in the register tier
 *               below SL, so C-Gran tiles below the R-Gran floor
 *               become legal and the SG is freed for K/V residency.
 */
#ifndef FLAT_COSTMODEL_EXECUTION_STYLE_H
#define FLAT_COSTMODEL_EXECUTION_STYLE_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/accel_config.h"
#include "costmodel/attention_plan.h"
#include "costmodel/timeline.h"
#include "dataflow/fused_dataflow.h"

namespace flat {

/**
 * How generously the sequential baseline is modeled. The paper's
 * reported baseline numbers are consistent with little or no
 * compute/transfer overlap inside a stage; a double-buffered baseline
 * overlaps fully within its own stage window (§5.1(4) grants it one
 * stage of prefetch window vs FLAT's two). Both are legitimate
 * baselines — the ablation bench quantifies the difference.
 */
enum class BaselineOverlap {
    kFull,       ///< stage time = max(compute, transfers)
    kSerialized, ///< stage time = compute + transfers (no hiding)
};

class ExecutionStyle
{
  public:
    virtual ~ExecutionStyle() = default;

    /** Registry id and CLI `--style` value ("flat", "flash", ...). */
    virtual const char* id() const = 0;

    /** One-line description for `--list-styles`. */
    virtual const char* summary() const = 0;

    /** OperatorCost::name of this style's reports ("L-A(FLAT)", ...). */
    virtual const char* cost_name() const = 0;

    /** Stable small integer keying this style in the eval cache. */
    virtual std::uint64_t cache_key() const = 0;

    /** True when the style interleaves L and A inside one shared
     *  overlap window (the historical fused/sequential search split). */
    virtual bool fused() const = 0;

    /** Legal-granularity constraint: can this style execute @p cross on
     *  @p accel? Styles that stream column blocks admit C-Gran tiles
     *  below the R-Gran floor (capacity-checked against the register
     *  tier); the two-pass-softmax styles reject them. */
    virtual bool admits(const AccelConfig& accel, const AttentionDims& dims,
                        const CrossLoop& cross) const = 0;

    /** Overlap policy the emitted phases are evaluated under. Only the
     *  baseline style reads @p baseline_overlap. */
    virtual OverlapKind overlap(BaselineOverlap baseline_overlap) const;

    /**
     * Emits this style's phase list into @p phases in place (reusing
     * capacity, see next_phase()). The plan must come from make_plan()
     * on the same (accel, dims, dataflow).
     */
    virtual void emit_phases(std::vector<Phase>& phases,
                             const AccelConfig& accel,
                             const AttentionDims& dims,
                             const AttentionPlan& plan,
                             const FusedDataflow& dataflow) const = 0;

    /**
     * Monotone lower bound on total cycles for the DSE pruner, from
     * per-slice aggregates: @p gemm_sum_cycles is (logit + attend)
     * full-array cycles summed over slices, @p gemm_max_cycles the max
     * of the two per-stage totals, @p softmax_cycles the whole-softmax
     * SFU time, @p cold_cycles the exposed cold-start window and
     * @p rescale_cycles the online-softmax rescale SFU time (0 for
     * non-streaming styles). Must never exceed the style's modeled
     * cycles for any candidate sharing these aggregates.
     */
    virtual double bound_cycles(double gemm_sum_cycles,
                                double gemm_max_cycles,
                                double softmax_cycles, double cold_cycles,
                                double rescale_cycles) const;

    /** SG bytes the intermediate tensor round-trips (energy lower
     *  bound): 2x its size for SG-staged styles, 0 when it lives in
     *  the register tier. */
    virtual double inter_sg_round_trip_bytes(double inter_bytes) const;
};

/** All registered styles, enumeration order baseline / flat /
 *  pipelined / flash (stable: tests and --list-styles rely on it). */
const std::vector<const ExecutionStyle*>& execution_styles();

/** Looks a style up by id; nullptr when unknown. */
const ExecutionStyle* find_execution_style(const std::string& id);

/** The style the historical fused/sequential flag selected. */
const ExecutionStyle& default_execution_style(bool fused);

const ExecutionStyle& baseline_execution_style();
const ExecutionStyle& flat_execution_style();
const ExecutionStyle& pipelined_execution_style();
const ExecutionStyle& flash_execution_style();

} // namespace flat

#endif // FLAT_COSTMODEL_EXECUTION_STYLE_H

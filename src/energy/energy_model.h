/**
 * @file
 * Accelergy-style energy estimation (§5.3.2): activity counts from the
 * performance model are multiplied by per-action energies. FLAT does not
 * change the MAC count or the SG access count materially; what it changes
 * is the number of DRAM accesses, which are ~two orders of magnitude more
 * expensive — exactly the property this table encodes.
 *
 * Default values follow the commonly used 16-bit energy ladder
 * (MAC < register file < large SRAM << DRAM); all are configurable.
 */
#ifndef FLAT_ENERGY_ENERGY_MODEL_H
#define FLAT_ENERGY_ENERGY_MODEL_H

#include "arch/accel_config.h"
#include "costmodel/cost_types.h"

namespace flat {

/** Per-action energy in picojoules. */
struct EnergyTable {
    double mac_pj = 0.56;          ///< one 16-bit MAC
    double sl_access_pj = 0.19;    ///< one SL (register-file) element
    double sg_pj_per_byte = 1.5;   ///< SG SRAM, per byte
    double sg2_pj_per_byte = 10.0; ///< second-level on-chip, per byte
    double dram_pj_per_byte = 100; ///< off-chip, per byte
    double sfu_op_pj = 1.0;        ///< one SFU element operation
    double link_pj_per_byte = 60;  ///< inter-device fabric, per byte

    /**
     * Builds a table matched to @p accel: SG energy grows slowly with
     * capacity (longer wires/bigger banks), DRAM stays two orders of
     * magnitude above it. The returned table is validated.
     */
    static EnergyTable for_accel(const AccelConfig& accel);

    /**
     * Checks the entries are positive and the hierarchy is ordered
     * (SG < SG2 < DRAM). estimate_energy() trusts its table — it runs
     * once per DSE design point — so hand-assembled tables should be
     * validated here before use.
     */
    void validate() const;
};

/** Energy breakdown in joules. */
struct EnergyBreakdown {
    double compute_j = 0.0; ///< MAC array
    double sl_j = 0.0;      ///< per-PE scratchpads
    double sg_j = 0.0;      ///< global scratchpad
    double sg2_j = 0.0;     ///< second-level on-chip buffer
    double dram_j = 0.0;    ///< off-chip accesses
    double sfu_j = 0.0;     ///< softmax / reductions
    double link_j = 0.0;    ///< inter-device collective traffic

    double total() const
    {
        return compute_j + sl_j + sg_j + sg2_j + dram_j + sfu_j + link_j;
    }

    EnergyBreakdown& operator+=(const EnergyBreakdown& other);
};

/** Converts activity counts into an energy breakdown. */
EnergyBreakdown estimate_energy(const EnergyTable& table,
                                const ActivityCounts& activity);

} // namespace flat

#endif // FLAT_ENERGY_ENERGY_MODEL_H

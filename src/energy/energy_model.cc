#include "energy/energy_model.h"

#include <cmath>

#include "common/fault_injection.h"
#include "common/status.h"
#include "common/units.h"

namespace flat {

EnergyTable
EnergyTable::for_accel(const AccelConfig& accel)
{
    FLAT_FAULT_POINT("energy.table");
    EnergyTable table;
    // SG access energy grows logarithmically with capacity: bigger
    // arrays mean longer bitlines and wires. Anchored at 1.5 pJ/B for a
    // 512 KiB scratchpad.
    const double ratio = static_cast<double>(accel.sg_bytes) /
                         static_cast<double>(512 * kKiB);
    table.sg_pj_per_byte = 1.5 * (1.0 + 0.35 * std::log2(std::max(
                                                   1.0, ratio)));
    // Keep the hierarchy ordered even for very large scratchpads: SG2
    // always costs more than SG and less than DRAM per byte.
    table.sg2_pj_per_byte =
        std::min(table.dram_pj_per_byte / 2.0,
                 std::max(table.sg2_pj_per_byte,
                          2.0 * table.sg_pj_per_byte));
    table.dram_pj_per_byte =
        std::max(table.dram_pj_per_byte, 2.0 * table.sg2_pj_per_byte);
    table.validate();
    return table;
}

void
EnergyTable::validate() const
{
    FLAT_CHECK(mac_pj > 0 && sl_access_pj > 0 && sg_pj_per_byte > 0 &&
                   dram_pj_per_byte > 0 && sfu_op_pj > 0 &&
                   link_pj_per_byte > 0,
               "energy table entries must be positive");
    FLAT_CHECK(sg2_pj_per_byte > sg_pj_per_byte &&
                   sg2_pj_per_byte < dram_pj_per_byte,
               "SG2 energy must sit between SG and DRAM");
    FLAT_CHECK(dram_pj_per_byte > sg_pj_per_byte,
               "DRAM access must cost more than SG access (got "
                   << dram_pj_per_byte << " vs " << sg_pj_per_byte << ")");
}

EnergyBreakdown&
EnergyBreakdown::operator+=(const EnergyBreakdown& other)
{
    compute_j += other.compute_j;
    sl_j += other.sl_j;
    sg_j += other.sg_j;
    sg2_j += other.sg2_j;
    dram_j += other.dram_j;
    sfu_j += other.sfu_j;
    return *this;
}

EnergyBreakdown
estimate_energy(const EnergyTable& table, const ActivityCounts& activity)
{
    // The table is validated where it is built (for_accel(), or the
    // caller's own validate() for hand-assembled tables), not per call:
    // this runs once per DSE design point.
    constexpr double kPjToJ = 1e-12;

    EnergyBreakdown out;
    out.compute_j = activity.macs * table.mac_pj * kPjToJ;
    out.sl_j = activity.sl_accesses * table.sl_access_pj * kPjToJ;
    out.sg_j = activity.traffic.total_sg() * table.sg_pj_per_byte *
               kPjToJ;
    out.sg2_j = activity.traffic.total_sg2() * table.sg2_pj_per_byte *
                kPjToJ;
    out.dram_j = activity.traffic.total_dram() * table.dram_pj_per_byte *
                 kPjToJ;
    out.sfu_j = activity.sfu_elems * table.sfu_op_pj * kPjToJ;
    out.link_j = activity.traffic.total_link() * table.link_pj_per_byte *
                 kPjToJ;
    return out;
}

} // namespace flat

/**
 * @file
 * The evaluation catalog of Figure 7(b)/(c): named dataflow policies
 * (Base, Base-X, Base-opt, FLAT-X, FLAT-Rx, FLAT-opt) and accelerator
 * configurations (BaseAccel, FlexAccel-M, FlexAccel, ATTACC-M,
 * ATTACC-Rx, ATTACC).
 */
#ifndef FLAT_CORE_CATALOG_H
#define FLAT_CORE_CATALOG_H

#include <cstdint>
#include <string>
#include <vector>

#include "dataflow/granularity.h"

namespace flat {

/** Named L-A dataflow policies (Figure 7(b)). */
enum class PolicyKind {
    kBase,    ///< sequential, no L3 tile
    kBaseM,   ///< sequential, L3 staging at M granularity
    kBaseB,   ///< sequential, L3 staging at B granularity
    kBaseH,   ///< sequential, L3 staging at H granularity
    kBaseOpt, ///< best sequential dataflow found by DSE
    kFlatM,   ///< fused, FLAT-tile at M granularity
    kFlatB,   ///< fused, FLAT-tile at B granularity
    kFlatH,   ///< fused, FLAT-tile at H granularity
    kFlatR,   ///< fused, FLAT-tile at R granularity (rows = r_rows)
    kFlatOpt, ///< best fused dataflow found by DSE
};

/** One policy instance (kFlatR carries its row count). */
struct DataflowPolicy {
    PolicyKind kind = PolicyKind::kBase;
    std::uint64_t r_rows = 64;

    std::string name() const;

    /** True for the FLAT (fused) family. */
    bool fused() const;

    /** True for the -opt policies (hyper-parameter search enabled). */
    bool searched() const;

    /** Fixed cross-loop for the non-opt policies. */
    CrossLoop fixed_cross() const;

    /** Parses names like "base", "base-M", "flat-R64", "flat-opt". */
    static DataflowPolicy parse(const std::string& name);
};

/** The ten curves of Figure 8, with @p rx rows for FLAT-Rx. */
std::vector<DataflowPolicy> figure8_policies(std::uint64_t rx);

/** Accelerator configurations of Figure 7(c). */
enum class AcceleratorKind {
    kBaseAccel,  ///< fixed Base dataflow, no flexibility
    kFlexAccelM, ///< flexible, L3 at M granularity only (Base-opt/M)
    kFlexAccel,  ///< flexible, full Base-opt DSE
    kAttAccM,    ///< FLAT-opt restricted to M granularity
    kAttAccR,    ///< FLAT-opt restricted to R granularity (r_rows)
    kAttAcc,     ///< full FLAT-opt DSE
};

/** One accelerator configuration instance. */
struct AcceleratorSpec {
    AcceleratorKind kind = AcceleratorKind::kAttAcc;
    std::uint64_t r_rows = 64;

    std::string name() const;

    /** The L-A policy this accelerator runs. */
    DataflowPolicy la_policy() const;

    /** Whether non-fused operators may be tuned by DSE. */
    bool flexible() const;

    /** Whether the L3 staging level exists at all. */
    bool allows_l3() const;

    static AcceleratorSpec parse(const std::string& name);
};

} // namespace flat

#endif // FLAT_CORE_CATALOG_H

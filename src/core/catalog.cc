#include "core/catalog.h"

#include "common/status.h"
#include "common/string_util.h"

namespace flat {

std::string
DataflowPolicy::name() const
{
    switch (kind) {
      case PolicyKind::kBase: return "Base";
      case PolicyKind::kBaseM: return "Base-M";
      case PolicyKind::kBaseB: return "Base-B";
      case PolicyKind::kBaseH: return "Base-H";
      case PolicyKind::kBaseOpt: return "Base-opt";
      case PolicyKind::kFlatM: return "FLAT-M";
      case PolicyKind::kFlatB: return "FLAT-B";
      case PolicyKind::kFlatH: return "FLAT-H";
      case PolicyKind::kFlatR:
        return strprintf("FLAT-R%llu",
                         static_cast<unsigned long long>(r_rows));
      case PolicyKind::kFlatOpt: return "FLAT-opt";
    }
    return "?";
}

bool
DataflowPolicy::fused() const
{
    switch (kind) {
      case PolicyKind::kFlatM:
      case PolicyKind::kFlatB:
      case PolicyKind::kFlatH:
      case PolicyKind::kFlatR:
      case PolicyKind::kFlatOpt:
        return true;
      default:
        return false;
    }
}

bool
DataflowPolicy::searched() const
{
    return kind == PolicyKind::kBaseOpt || kind == PolicyKind::kFlatOpt;
}

CrossLoop
DataflowPolicy::fixed_cross() const
{
    switch (kind) {
      case PolicyKind::kBase:
      case PolicyKind::kBaseM:
      case PolicyKind::kFlatM:
        return {Granularity::kMulti, 0};
      case PolicyKind::kBaseB:
      case PolicyKind::kFlatB:
        return {Granularity::kBatch, 0};
      case PolicyKind::kBaseH:
      case PolicyKind::kFlatH:
        return {Granularity::kHead, 0};
      case PolicyKind::kFlatR:
        return {Granularity::kRow, r_rows};
      case PolicyKind::kBaseOpt:
      case PolicyKind::kFlatOpt:
        FLAT_FAIL("policy " << name() << " has no fixed cross loop");
    }
    return {Granularity::kMulti, 0};
}

DataflowPolicy
DataflowPolicy::parse(const std::string& name)
{
    const std::string key = to_lower(trim(name));
    DataflowPolicy policy;
    if (key == "base") {
        policy.kind = PolicyKind::kBase;
    } else if (key == "base-m") {
        policy.kind = PolicyKind::kBaseM;
    } else if (key == "base-b") {
        policy.kind = PolicyKind::kBaseB;
    } else if (key == "base-h") {
        policy.kind = PolicyKind::kBaseH;
    } else if (key == "base-opt") {
        policy.kind = PolicyKind::kBaseOpt;
    } else if (key == "flat-m") {
        policy.kind = PolicyKind::kFlatM;
    } else if (key == "flat-b") {
        policy.kind = PolicyKind::kFlatB;
    } else if (key == "flat-h") {
        policy.kind = PolicyKind::kFlatH;
    } else if (key == "flat-opt") {
        policy.kind = PolicyKind::kFlatOpt;
    } else if (key.rfind("flat-r", 0) == 0 && key.size() > 6) {
        policy.kind = PolicyKind::kFlatR;
        policy.r_rows = std::stoull(key.substr(6));
        FLAT_CHECK(policy.r_rows > 0, "FLAT-Rx needs positive rows");
    } else {
        FLAT_FAIL("unknown dataflow policy '" << name << "'");
    }
    return policy;
}

std::vector<DataflowPolicy>
figure8_policies(std::uint64_t rx)
{
    std::vector<DataflowPolicy> out;
    out.push_back({PolicyKind::kBase, 0});
    out.push_back({PolicyKind::kBaseM, 0});
    out.push_back({PolicyKind::kBaseB, 0});
    out.push_back({PolicyKind::kBaseH, 0});
    out.push_back({PolicyKind::kBaseOpt, 0});
    out.push_back({PolicyKind::kFlatM, 0});
    out.push_back({PolicyKind::kFlatB, 0});
    out.push_back({PolicyKind::kFlatH, 0});
    out.push_back({PolicyKind::kFlatR, rx});
    out.push_back({PolicyKind::kFlatOpt, 0});
    return out;
}

std::string
AcceleratorSpec::name() const
{
    switch (kind) {
      case AcceleratorKind::kBaseAccel: return "BaseAccel";
      case AcceleratorKind::kFlexAccelM: return "FlexAccel-M";
      case AcceleratorKind::kFlexAccel: return "FlexAccel";
      case AcceleratorKind::kAttAccM: return "ATTACC-M";
      case AcceleratorKind::kAttAccR:
        return strprintf("ATTACC-R%llu",
                         static_cast<unsigned long long>(r_rows));
      case AcceleratorKind::kAttAcc: return "ATTACC";
    }
    return "?";
}

DataflowPolicy
AcceleratorSpec::la_policy() const
{
    switch (kind) {
      case AcceleratorKind::kBaseAccel:
        return {PolicyKind::kBase, 0};
      case AcceleratorKind::kFlexAccelM:
        // Base-opt restricted to M granularity: modeled as Base-M with
        // tuned tiles; the simulator pins the cross loop.
        return {PolicyKind::kBaseM, 0};
      case AcceleratorKind::kFlexAccel:
        return {PolicyKind::kBaseOpt, 0};
      case AcceleratorKind::kAttAccM:
        return {PolicyKind::kFlatM, 0};
      case AcceleratorKind::kAttAccR:
        return {PolicyKind::kFlatR, r_rows};
      case AcceleratorKind::kAttAcc:
        return {PolicyKind::kFlatOpt, 0};
    }
    return {PolicyKind::kBase, 0};
}

bool
AcceleratorSpec::flexible() const
{
    return kind != AcceleratorKind::kBaseAccel;
}

bool
AcceleratorSpec::allows_l3() const
{
    return kind != AcceleratorKind::kBaseAccel;
}

AcceleratorSpec
AcceleratorSpec::parse(const std::string& name)
{
    const std::string key = to_lower(trim(name));
    AcceleratorSpec spec;
    if (key == "baseaccel") {
        spec.kind = AcceleratorKind::kBaseAccel;
    } else if (key == "flexaccel-m") {
        spec.kind = AcceleratorKind::kFlexAccelM;
    } else if (key == "flexaccel") {
        spec.kind = AcceleratorKind::kFlexAccel;
    } else if (key == "attacc-m") {
        spec.kind = AcceleratorKind::kAttAccM;
    } else if (key == "attacc") {
        spec.kind = AcceleratorKind::kAttAcc;
    } else if (key.rfind("attacc-r", 0) == 0 && key.size() > 8) {
        spec.kind = AcceleratorKind::kAttAccR;
        spec.r_rows = std::stoull(key.substr(8));
        FLAT_CHECK(spec.r_rows > 0, "ATTACC-Rx needs positive rows");
    } else {
        FLAT_FAIL("unknown accelerator '" << name << "'");
    }
    return spec;
}

} // namespace flat

#include "core/sweep.h"

#include <atomic>
#include <chrono>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "common/cancellation.h"
#include "common/csv.h"
#include "common/fault_injection.h"
#include "common/json.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "workload/model_config.h"

namespace flat {
namespace {

using Clock = std::chrono::steady_clock;

double
elapsed_ms(Clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     since)
        .count();
}

std::vector<std::string>
parse_name_list(const std::string& key, const std::string& value)
{
    std::vector<std::string> out;
    for (const std::string& part : split(value, ',')) {
        const std::string name = trim(part);
        FLAT_CHECK(!name.empty(),
                   "sweep key '" << key << "' has an empty list entry: '"
                                 << value << "'");
        out.push_back(name);
    }
    return out;
}

std::vector<std::uint64_t>
parse_u64_list(const std::string& key, const std::string& value)
{
    std::vector<std::uint64_t> out;
    for (const std::string& name : parse_name_list(key, value)) {
        std::size_t pos = 0;
        std::uint64_t v = 0;
        try {
            v = std::stoull(name, &pos);
        } catch (const std::exception&) {
            pos = 0;
        }
        FLAT_CHECK(pos != 0 && pos == name.size() && v > 0,
                   "sweep key '" << key
                                 << "' expects positive integers, got '"
                                 << name << "'");
        out.push_back(v);
    }
    return out;
}

bool
parse_bool(const std::string& key, const std::string& value)
{
    const std::string v = to_lower(value);
    if (v == "true" || v == "yes" || v == "1") {
        return true;
    }
    if (v == "false" || v == "no" || v == "0") {
        return false;
    }
    FLAT_FAIL("sweep key '" << key << "' expects a boolean, got '"
                            << value << "'");
}

AccelConfig
platform_accel(const std::string& name)
{
    const std::string key = to_lower(name);
    if (key == "edge") {
        return edge_accel();
    }
    if (key == "cloud") {
        return cloud_accel();
    }
    FLAT_FAIL("unknown platform '" << name << "' (edge | cloud)");
}

/** Evaluates one point; throws on any failure (isolated by the caller). */
ScopeReport
evaluate_point(const SweepPoint& point, const SweepSpec& spec,
               const SweepOptions& options,
               const CancellationToken* cancel)
{
    FLAT_FAULT_POINT("sweep.point");
    const ModelConfig model = model_by_name(point.model);
    const AccelConfig accel = platform_accel(point.platform);
    const Workload workload =
        make_workload(model, point.batch, point.seq);

    SimOptions sim = options.sim;
    sim.objective = spec.objective;
    sim.quick = spec.quick;
    // The sweep-level journal also flows into the per-point DSE, so a
    // crash mid-point resumes from completed search slices, not from
    // scratch. The per-point deadline token makes --deadline preemptive.
    sim.journal = options.journal;
    sim.cancel = cancel;

    const Simulator simulator(accel);
    return simulator.run(workload, spec.scope,
                         DataflowPolicy::parse(point.policy), sim);
}

const char*
status_name(const SweepPointResult& r)
{
    if (r.ok) {
        return "ok";
    }
    if (r.cancelled) {
        return "cancelled";
    }
    return r.skipped ? "skipped" : "failed";
}

/** Serializes one FINAL point outcome for the checkpoint journal. */
std::string
encode_point_record(const SweepPointResult& r)
{
    JsonWriter json;
    json.begin_object();
    json.field("ok", r.ok);
    json.field("wall_ms", r.wall_ms);
    json.field("attempts", static_cast<std::uint64_t>(r.attempts));
    if (r.ok) {
        json.key("report");
        json.begin_object();
        json.field("dataflow", r.report.la_dataflow_tag);
        json.field("cycles", r.report.cycles);
        json.field("ideal_cycles", r.report.ideal_cycles);
        json.field("runtime_s", r.report.runtime_s);
        json.field("energy_j", r.report.energy_j);
        json.field("dram_bytes", r.report.traffic.total_dram());
        json.end_object();
    } else {
        json.key("diag");
        r.diag.write_json(json);
    }
    if (!r.warnings.empty()) {
        json.key("warnings");
        json.begin_array();
        for (const Diagnostic& w : r.warnings) {
            w.write_json(json);
        }
        json.end_array();
    }
    json.end_object();
    return json.str();
}

/** Inverse of Diagnostic::write_json. */
Diagnostic
decode_diag(const JsonValue& v)
{
    Diagnostic d;
    d.severity = parse_diag_severity(v.member_string("severity"));
    d.kind = parse_diag_kind(v.member_string("kind"));
    d.message = v.member_string("message");
    if (const JsonValue* site = v.find("probe_site")) {
        d.probe_site = site->as_string();
    }
    if (const JsonValue* ctx = v.find("context")) {
        for (const JsonValue& frame : ctx->array) {
            d.context.push_back(frame.as_string());
        }
    }
    return d;
}

/**
 * Restores a journaled point outcome. Only the emitter-visible slice
 * of the ScopeReport is stored/restored (tag, cycles, ideal cycles,
 * runtime, energy, DRAM traffic) — exactly the fields the sweep JSON,
 * CSV and tables read — so a resumed report renders byte-identically
 * to the uninterrupted one.
 */
void
restore_point_record(const JsonValue& data, SweepPointResult& r)
{
    r.ok = data.member_bool("ok");
    r.wall_ms = data.member_number("wall_ms");
    r.attempts = static_cast<unsigned>(data.member_u64("attempts"));
    r.resumed = true;
    if (r.ok) {
        const JsonValue* rep = data.find("report");
        FLAT_CHECK(rep != nullptr, "journaled sweep point '"
                                       << r.point.tag()
                                       << "' has ok=true but no report");
        r.report.la_dataflow_tag = rep->member_string("dataflow");
        r.report.cycles = rep->member_number("cycles");
        r.report.ideal_cycles = rep->member_number("ideal_cycles");
        r.report.runtime_s = rep->member_number("runtime_s");
        r.report.energy_j = rep->member_number("energy_j");
        // total_dram() = dram_read + dram_write; park the restored sum
        // on one side so the emitters reproduce it exactly.
        r.report.traffic.dram_read = rep->member_number("dram_bytes");
        r.report.traffic.dram_write = 0.0;
    } else {
        const JsonValue* diag = data.find("diag");
        FLAT_CHECK(diag != nullptr,
                   "journaled sweep point '"
                       << r.point.tag()
                       << "' has ok=false but no diagnostic");
        r.diag = decode_diag(*diag);
    }
    if (const JsonValue* warns = data.find("warnings")) {
        for (const JsonValue& w : warns->array) {
            r.warnings.push_back(decode_diag(w));
        }
    }
}

} // namespace

std::string
SweepPoint::tag() const
{
    return strprintf("%s/%s/%s/seq=%llu/batch=%llu", model.c_str(),
                     platform.c_str(), policy.c_str(),
                     static_cast<unsigned long long>(seq),
                     static_cast<unsigned long long>(batch));
}

SweepSpec
SweepSpec::parse(const ConfigMap& config)
{
    SweepSpec spec;
    for (const auto& [key, value] : config) {
        if (key == "models") {
            spec.models = parse_name_list(key, value);
        } else if (key == "platforms") {
            spec.platforms = parse_name_list(key, value);
        } else if (key == "policies") {
            spec.policies = parse_name_list(key, value);
        } else if (key == "seq") {
            spec.seq_lens = parse_u64_list(key, value);
        } else if (key == "batch") {
            spec.batches = parse_u64_list(key, value);
        } else if (key == "scope") {
            spec.scope = parse_scope(value);
        } else if (key == "objective") {
            spec.objective = parse_objective(value);
        } else if (key == "quick") {
            spec.quick = parse_bool(key, value);
        } else {
            FLAT_FAIL("unknown sweep key '"
                      << key
                      << "' (models | platforms | policies | seq | "
                         "batch | scope | objective | quick)");
        }
    }
    return spec;
}

SweepSpec
SweepSpec::from_text(const std::string& text)
{
    return parse(parse_config_text(text));
}

SweepSpec
SweepSpec::from_file(const std::string& path)
{
    FLAT_ERROR_CONTEXT("sweep spec " << path);
    return parse(parse_config_file(path));
}

std::vector<SweepPoint>
SweepSpec::expand() const
{
    // Validate every axis value once, up front: a typo fails the sweep
    // before any evaluation starts instead of failing every point.
    for (const std::string& model : models) {
        model_by_name(model);
    }
    for (const std::string& platform : platforms) {
        platform_accel(platform);
    }
    for (const std::string& policy : policies) {
        DataflowPolicy::parse(policy);
    }
    FLAT_CHECK(!seq_lens.empty() && !batches.empty(),
               "sweep needs at least one seq and batch value");

    std::vector<SweepPoint> points;
    points.reserve(models.size() * platforms.size() * policies.size() *
                   seq_lens.size() * batches.size());
    for (const std::string& model : models) {
        for (const std::string& platform : platforms) {
            for (const std::string& policy : policies) {
                for (const std::uint64_t seq : seq_lens) {
                    for (const std::uint64_t batch : batches) {
                        SweepPoint point;
                        point.index = points.size();
                        point.model = model;
                        point.platform = platform;
                        point.policy = policy;
                        point.seq = seq;
                        point.batch = batch;
                        points.push_back(std::move(point));
                    }
                }
            }
        }
    }
    return points;
}

std::size_t
SweepReport::completed() const
{
    std::size_t n = 0;
    for (const SweepPointResult& r : results) {
        n += r.ok ? 1 : 0;
    }
    return n;
}

std::size_t
SweepReport::failed() const
{
    std::size_t n = 0;
    for (const SweepPointResult& r : results) {
        n += (!r.ok && !r.skipped && !r.cancelled) ? 1 : 0;
    }
    return n;
}

std::size_t
SweepReport::skipped() const
{
    std::size_t n = 0;
    for (const SweepPointResult& r : results) {
        n += r.skipped ? 1 : 0;
    }
    return n;
}

std::size_t
SweepReport::cancelled() const
{
    std::size_t n = 0;
    for (const SweepPointResult& r : results) {
        n += r.cancelled ? 1 : 0;
    }
    return n;
}

std::size_t
SweepReport::resumed() const
{
    std::size_t n = 0;
    for (const SweepPointResult& r : results) {
        n += r.resumed ? 1 : 0;
    }
    return n;
}

std::size_t
SweepReport::retried_points() const
{
    std::size_t n = 0;
    for (const SweepPointResult& r : results) {
        n += (r.attempts > 1) ? 1 : 0;
    }
    return n;
}

std::size_t
SweepReport::extra_attempts() const
{
    std::size_t n = 0;
    for (const SweepPointResult& r : results) {
        n += (r.attempts > 1) ? (r.attempts - 1) : 0;
    }
    return n;
}

std::vector<const SweepPointResult*>
SweepReport::failures() const
{
    std::vector<const SweepPointResult*> out;
    out.reserve(failed());
    for (const SweepPointResult& r : results) {
        if (!r.ok && !r.skipped && !r.cancelled) {
            out.push_back(&r);
        }
    }
    return out;
}

int
SweepReport::exit_code() const
{
    if (cancelled() > 0) {
        return 5; // cancellation wins over per-point failures
    }
    return (failed() == 0 && skipped() == 0) ? 0 : 4;
}

void
SweepReport::write_json(JsonWriter& json) const
{
    json.begin_object();
    json.field("points", static_cast<std::uint64_t>(results.size()));
    json.field("completed", static_cast<std::uint64_t>(completed()));
    json.field("failed", static_cast<std::uint64_t>(failed()));
    json.field("skipped", static_cast<std::uint64_t>(skipped()));
    // Resumed-point counts deliberately stay OUT of the JSON: a resumed
    // run must emit byte-identical machine output to an uninterrupted
    // one (the resume provenance goes to the human footer instead).
    json.field("cancelled", static_cast<std::uint64_t>(cancelled()));
    json.field("retried_points",
               static_cast<std::uint64_t>(retried_points()));
    json.field("extra_attempts",
               static_cast<std::uint64_t>(extra_attempts()));
    json.field("wall_ms", wall_ms);
    json.field("exit_code",
               static_cast<std::int64_t>(exit_code()));

    json.key("results");
    json.begin_array();
    for (const SweepPointResult& r : results) {
        json.begin_object();
        json.field("index", static_cast<std::uint64_t>(r.point.index));
        json.field("tag", r.point.tag());
        json.field("model", r.point.model);
        json.field("platform", r.point.platform);
        json.field("policy", r.point.policy);
        json.field("seq", r.point.seq);
        json.field("batch", r.point.batch);
        json.field("status", status_name(r));
        json.field("wall_ms", r.wall_ms);
        if (r.attempts > 1) {
            // Only retried points carry the field, so retry-free runs
            // keep their exact historical byte layout.
            json.field("attempts",
                       static_cast<std::uint64_t>(r.attempts));
        }
        if (r.ok) {
            json.key("report");
            json.begin_object();
            json.field("picked_dataflow", r.report.la_dataflow_tag);
            json.field("utilization", r.report.util());
            json.field("runtime_s", r.report.runtime_s);
            json.field("cycles", r.report.cycles);
            json.field("energy_j", r.report.energy_j);
            json.field("dram_bytes", r.report.traffic.total_dram());
            json.end_object();
        } else if (!r.skipped && !r.cancelled) {
            json.key("diagnostic");
            r.diag.write_json(json);
        }
        if (!r.warnings.empty()) {
            json.key("warnings");
            json.begin_array();
            for (const Diagnostic& w : r.warnings) {
                w.write_json(json);
            }
            json.end_array();
        }
        json.end_object();
    }
    json.end_array();

    // Flat list of failure diagnostics for report consumers that only
    // triage errors.
    json.key("diagnostics");
    json.begin_array();
    for (const SweepPointResult* r : failures()) {
        json.begin_object();
        json.field("index", static_cast<std::uint64_t>(r->point.index));
        json.field("tag", r->point.tag());
        json.key("diagnostic");
        r->diag.write_json(json);
        json.end_object();
    }
    json.end_array();
    json.end_object();
}

void
SweepReport::print(std::ostream& os) const
{
    TextTable table({"point", "status", "runtime", "util", "energy",
                     "wall"});
    for (const SweepPointResult& r : results) {
        if (r.ok) {
            table.add_row({r.point.tag(), "ok",
                           format_time(r.report.runtime_s),
                           strprintf("%.3f", r.report.util()),
                           strprintf("%.4g J", r.report.energy_j),
                           format_time(r.wall_ms / 1e3)});
        } else {
            table.add_row({r.point.tag(), status_name(r), "-", "-", "-",
                           format_time(r.wall_ms / 1e3)});
        }
    }
    table.print(os);

    const std::vector<const SweepPointResult*> failed_points =
        failures();
    os << "\n"
       << completed() << "/" << results.size() << " points completed, "
       << failed_points.size() << " failed, " << skipped()
       << " skipped";
    if (cancelled() > 0) {
        os << ", " << cancelled() << " cancelled";
    }
    if (resumed() > 0) {
        os << " (" << resumed() << " restored from journal)";
    }
    if (retried_points() > 0) {
        os << " (" << retried_points() << " retried, "
           << extra_attempts() << " extra attempts)";
    }
    os << "\n";
    if (!failed_points.empty()) {
        os << "\nfailure diagnostics:\n";
        std::vector<std::string> header = {"point"};
        for (std::string& col : Diagnostic::table_header()) {
            header.push_back(std::move(col));
        }
        TextTable diag_table(std::move(header));
        for (const SweepPointResult* r : failed_points) {
            std::vector<std::string> row = {r->point.tag()};
            for (std::string& cell : r->diag.table_row()) {
                row.push_back(std::move(cell));
            }
            diag_table.add_row(std::move(row));
        }
        diag_table.print(os);
    }
}

void
SweepReport::write_csv(const std::string& path) const
{
    CsvWriter csv(path,
                  {"index", "tag", "status", "runtime_s", "cycles",
                   "energy_j", "utilization", "wall_ms", "kind",
                   "message"});
    for (const SweepPointResult& r : results) {
        if (r.ok) {
            csv.add_row({std::to_string(r.point.index), r.point.tag(),
                         "ok", strprintf("%.6g", r.report.runtime_s),
                         strprintf("%.6g", r.report.cycles),
                         strprintf("%.6g", r.report.energy_j),
                         strprintf("%.4f", r.report.util()),
                         strprintf("%.1f", r.wall_ms), "", ""});
        } else {
            const bool has_diag = !r.skipped && !r.cancelled;
            csv.add_row({std::to_string(r.point.index), r.point.tag(),
                         status_name(r), "", "", "", "",
                         strprintf("%.1f", r.wall_ms),
                         has_diag ? to_string(r.diag.kind) : "",
                         has_diag ? r.diag.message : ""});
        }
    }
}

SweepReport
run_sweep(const SweepSpec& spec, const SweepOptions& options)
{
    std::vector<SweepPoint> points = spec.expand();

    SweepReport report;
    report.results.resize(points.size());
    std::atomic<bool> stop{false};
    const Clock::time_point sweep_start = Clock::now();

    // The cancellation token is deliberately NOT passed to parallel_for
    // here: every result slot must be written (as ok / failed /
    // skipped / cancelled), so the body always runs and does its own
    // token check at entry. Points already running when the signal
    // lands simply finish.
    parallel_for(points.size(), options.threads, [&](std::size_t i) {
        SweepPointResult& r = report.results[i];
        // Each point's record owns its SweepPoint; the expanded list is
        // not read again, so the strings move instead of copying.
        r.point = std::move(points[i]);
        if (options.fail_fast &&
            stop.load(std::memory_order_relaxed)) {
            r.skipped = true;
            return;
        }
        if (options.cancel != nullptr && options.cancel->cancelled()) {
            // Graceful drain: unstarted points are marked cancelled
            // and never journaled, so a resume attempts them again.
            r.cancelled = true;
            return;
        }

        // Checkpoint restore: a journaled outcome is final — ok and
        // failed alike (failures are deterministic; transients already
        // consumed their retry budget when they were journaled).
        if (options.journal != nullptr) {
            const JsonValue* rec =
                options.journal->find("sweep", r.point.tag());
            if (rec != nullptr) {
                restore_point_record(*rec, r);
                if (!r.ok && options.fail_fast) {
                    stop.store(true, std::memory_order_relaxed);
                }
                return;
            }
        }

        DiagnosticCapture capture;
        FLAT_ERROR_CONTEXT("sweep point " << i << " ("
                                          << r.point.tag() << ")");
        (void)take_last_fired_fault_site(); // drop stale attribution

        // Per-point preemptive deadline. A separate token — NOT
        // parented to options.cancel — so a SIGINT lets the running
        // point finish instead of aborting it mid-search.
        CancellationToken deadline;
        const CancellationToken* point_cancel = nullptr;
        if (options.deadline_ms > 0.0) {
            deadline.set_deadline_ms(options.deadline_ms);
            point_cancel = &deadline;
        }

        const Clock::time_point start = Clock::now();
        const unsigned max_attempts = 1 + options.retries;
        for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
            if (attempt > 1 && options.retry_backoff_ms > 0.0) {
                // Deterministic exponential backoff, no jitter:
                // base * 2^(retry - 1) milliseconds.
                const double delay_ms =
                    options.retry_backoff_ms *
                    static_cast<double>(1u << (attempt - 2));
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        delay_ms));
            }
            // Deterministic fault targeting: probes hit while
            // evaluating point i fire iff the armed seed equals i. One
            // scope per attempt; the transient-fault attempt counter
            // survives scope re-construction by design.
            FaultScope fault_scope(i);
            r.attempts = attempt;
            try {
                r.report = evaluate_point(r.point, spec, options,
                                          point_cancel);
                r.ok = true;
                break;
            } catch (...) {
                // Spec axes were validated by expand(), so an Error
                // here means the point itself is infeasible.
                r.diag = diagnostic_from_current_exception(
                    DiagKind::kInfeasible);
                r.ok = false;
            }
            if (r.diag.kind != DiagKind::kTransient ||
                attempt == max_attempts) {
                break; // deterministic failure, or budget exhausted
            }
            Diagnostic warn = r.diag;
            warn.severity = DiagSeverity::kWarning;
            warn.message = strprintf(
                "attempt %u/%u failed, retrying: %s", attempt,
                max_attempts, r.diag.message.c_str());
            emit_diagnostic(warn);
        }
        r.wall_ms = elapsed_ms(start);

        if (r.ok && options.deadline_ms > 0.0 &&
            r.wall_ms > options.deadline_ms) {
            // Post-hoc backstop for points that never reached a poll
            // site (the preemptive token already caught the rest).
            r.ok = false;
            r.diag = Diagnostic{};
            r.diag.kind = DiagKind::kTimeout;
            r.diag.message = strprintf(
                "point exceeded deadline: %.0fms > %.0fms", r.wall_ms,
                options.deadline_ms);
            r.diag.context = diagnostic_context();
            // A delay fault that slept here gets the attribution.
            r.diag.probe_site = take_last_fired_fault_site();
        }
        r.warnings = capture.take();
        if (!r.ok && options.fail_fast) {
            stop.store(true, std::memory_order_relaxed);
        }

        // Journal the FINAL outcome (ok or failed, with attempts and
        // warnings); the per-slice search records for this point were
        // already appended by the DSE while it ran.
        if (options.journal != nullptr) {
            options.journal->append("sweep", r.point.tag(),
                                    encode_point_record(r));
        }
    });

    if (options.journal != nullptr) {
        options.journal->flush();
    }
    report.wall_ms = elapsed_ms(sweep_start);
    return report;
}

RunJournalHeader
sweep_journal_header(const SweepSpec& spec, const SimOptions& sim)
{
    // Canonical text of every knob that shapes the sweep's RESULTS.
    // Execution knobs (threads, prune, batch width, deadlines, retry
    // budgets) are excluded on purpose: a journal written under one
    // execution configuration must resume under another.
    std::ostringstream text;
    text << "models=";
    for (const std::string& m : spec.models) {
        text << m << ',';
    }
    text << " platforms=";
    for (const std::string& p : spec.platforms) {
        text << p << ',';
    }
    text << " policies=";
    for (const std::string& p : spec.policies) {
        text << p << ',';
    }
    text << " seq=";
    for (const std::uint64_t s : spec.seq_lens) {
        text << s << ',';
    }
    text << " batch=";
    for (const std::uint64_t b : spec.batches) {
        text << b << ',';
    }
    text << " scope=" << static_cast<int>(spec.scope)
         << " objective=" << static_cast<int>(spec.objective)
         << " quick=" << spec.quick
         << " overlap=" << static_cast<int>(sim.baseline_overlap);

    RunJournalHeader header;
    header.mode = "sweep";
    header.space_hash = fnv1a64(text.str());
    header.points = spec.expand().size();
    return header;
}

} // namespace flat

#include "core/sweep.h"

#include <atomic>
#include <chrono>
#include <ostream>
#include <utility>

#include "common/csv.h"
#include "common/fault_injection.h"
#include "common/json.h"
#include "common/string_util.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "workload/model_config.h"

namespace flat {
namespace {

using Clock = std::chrono::steady_clock;

double
elapsed_ms(Clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     since)
        .count();
}

std::vector<std::string>
parse_name_list(const std::string& key, const std::string& value)
{
    std::vector<std::string> out;
    for (const std::string& part : split(value, ',')) {
        const std::string name = trim(part);
        FLAT_CHECK(!name.empty(),
                   "sweep key '" << key << "' has an empty list entry: '"
                                 << value << "'");
        out.push_back(name);
    }
    return out;
}

std::vector<std::uint64_t>
parse_u64_list(const std::string& key, const std::string& value)
{
    std::vector<std::uint64_t> out;
    for (const std::string& name : parse_name_list(key, value)) {
        std::size_t pos = 0;
        std::uint64_t v = 0;
        try {
            v = std::stoull(name, &pos);
        } catch (const std::exception&) {
            pos = 0;
        }
        FLAT_CHECK(pos != 0 && pos == name.size() && v > 0,
                   "sweep key '" << key
                                 << "' expects positive integers, got '"
                                 << name << "'");
        out.push_back(v);
    }
    return out;
}

bool
parse_bool(const std::string& key, const std::string& value)
{
    const std::string v = to_lower(value);
    if (v == "true" || v == "yes" || v == "1") {
        return true;
    }
    if (v == "false" || v == "no" || v == "0") {
        return false;
    }
    FLAT_FAIL("sweep key '" << key << "' expects a boolean, got '"
                            << value << "'");
}

AccelConfig
platform_accel(const std::string& name)
{
    const std::string key = to_lower(name);
    if (key == "edge") {
        return edge_accel();
    }
    if (key == "cloud") {
        return cloud_accel();
    }
    FLAT_FAIL("unknown platform '" << name << "' (edge | cloud)");
}

/** Evaluates one point; throws on any failure (isolated by the caller). */
ScopeReport
evaluate_point(const SweepPoint& point, const SweepSpec& spec,
               const SweepOptions& options)
{
    FLAT_FAULT_POINT("sweep.point");
    const ModelConfig model = model_by_name(point.model);
    const AccelConfig accel = platform_accel(point.platform);
    const Workload workload =
        make_workload(model, point.batch, point.seq);

    SimOptions sim = options.sim;
    sim.objective = spec.objective;
    sim.quick = spec.quick;

    const Simulator simulator(accel);
    return simulator.run(workload, spec.scope,
                         DataflowPolicy::parse(point.policy), sim);
}

const char*
status_name(const SweepPointResult& r)
{
    return r.ok ? "ok" : (r.skipped ? "skipped" : "failed");
}

} // namespace

std::string
SweepPoint::tag() const
{
    return strprintf("%s/%s/%s/seq=%llu/batch=%llu", model.c_str(),
                     platform.c_str(), policy.c_str(),
                     static_cast<unsigned long long>(seq),
                     static_cast<unsigned long long>(batch));
}

SweepSpec
SweepSpec::parse(const ConfigMap& config)
{
    SweepSpec spec;
    for (const auto& [key, value] : config) {
        if (key == "models") {
            spec.models = parse_name_list(key, value);
        } else if (key == "platforms") {
            spec.platforms = parse_name_list(key, value);
        } else if (key == "policies") {
            spec.policies = parse_name_list(key, value);
        } else if (key == "seq") {
            spec.seq_lens = parse_u64_list(key, value);
        } else if (key == "batch") {
            spec.batches = parse_u64_list(key, value);
        } else if (key == "scope") {
            spec.scope = parse_scope(value);
        } else if (key == "objective") {
            spec.objective = parse_objective(value);
        } else if (key == "quick") {
            spec.quick = parse_bool(key, value);
        } else {
            FLAT_FAIL("unknown sweep key '"
                      << key
                      << "' (models | platforms | policies | seq | "
                         "batch | scope | objective | quick)");
        }
    }
    return spec;
}

SweepSpec
SweepSpec::from_text(const std::string& text)
{
    return parse(parse_config_text(text));
}

SweepSpec
SweepSpec::from_file(const std::string& path)
{
    FLAT_ERROR_CONTEXT("sweep spec " << path);
    return parse(parse_config_file(path));
}

std::vector<SweepPoint>
SweepSpec::expand() const
{
    // Validate every axis value once, up front: a typo fails the sweep
    // before any evaluation starts instead of failing every point.
    for (const std::string& model : models) {
        model_by_name(model);
    }
    for (const std::string& platform : platforms) {
        platform_accel(platform);
    }
    for (const std::string& policy : policies) {
        DataflowPolicy::parse(policy);
    }
    FLAT_CHECK(!seq_lens.empty() && !batches.empty(),
               "sweep needs at least one seq and batch value");

    std::vector<SweepPoint> points;
    points.reserve(models.size() * platforms.size() * policies.size() *
                   seq_lens.size() * batches.size());
    for (const std::string& model : models) {
        for (const std::string& platform : platforms) {
            for (const std::string& policy : policies) {
                for (const std::uint64_t seq : seq_lens) {
                    for (const std::uint64_t batch : batches) {
                        SweepPoint point;
                        point.index = points.size();
                        point.model = model;
                        point.platform = platform;
                        point.policy = policy;
                        point.seq = seq;
                        point.batch = batch;
                        points.push_back(std::move(point));
                    }
                }
            }
        }
    }
    return points;
}

std::size_t
SweepReport::completed() const
{
    std::size_t n = 0;
    for (const SweepPointResult& r : results) {
        n += r.ok ? 1 : 0;
    }
    return n;
}

std::size_t
SweepReport::failed() const
{
    std::size_t n = 0;
    for (const SweepPointResult& r : results) {
        n += (!r.ok && !r.skipped) ? 1 : 0;
    }
    return n;
}

std::size_t
SweepReport::skipped() const
{
    std::size_t n = 0;
    for (const SweepPointResult& r : results) {
        n += r.skipped ? 1 : 0;
    }
    return n;
}

std::vector<const SweepPointResult*>
SweepReport::failures() const
{
    std::vector<const SweepPointResult*> out;
    out.reserve(failed());
    for (const SweepPointResult& r : results) {
        if (!r.ok && !r.skipped) {
            out.push_back(&r);
        }
    }
    return out;
}

int
SweepReport::exit_code() const
{
    return (failed() == 0 && skipped() == 0) ? 0 : 4;
}

void
SweepReport::write_json(JsonWriter& json) const
{
    json.begin_object();
    json.field("points", static_cast<std::uint64_t>(results.size()));
    json.field("completed", static_cast<std::uint64_t>(completed()));
    json.field("failed", static_cast<std::uint64_t>(failed()));
    json.field("skipped", static_cast<std::uint64_t>(skipped()));
    json.field("wall_ms", wall_ms);
    json.field("exit_code",
               static_cast<std::int64_t>(exit_code()));

    json.key("results");
    json.begin_array();
    for (const SweepPointResult& r : results) {
        json.begin_object();
        json.field("index", static_cast<std::uint64_t>(r.point.index));
        json.field("tag", r.point.tag());
        json.field("model", r.point.model);
        json.field("platform", r.point.platform);
        json.field("policy", r.point.policy);
        json.field("seq", r.point.seq);
        json.field("batch", r.point.batch);
        json.field("status", status_name(r));
        json.field("wall_ms", r.wall_ms);
        if (r.ok) {
            json.key("report");
            json.begin_object();
            json.field("picked_dataflow", r.report.la_dataflow_tag);
            json.field("utilization", r.report.util());
            json.field("runtime_s", r.report.runtime_s);
            json.field("cycles", r.report.cycles);
            json.field("energy_j", r.report.energy_j);
            json.field("dram_bytes", r.report.traffic.total_dram());
            json.end_object();
        } else if (!r.skipped) {
            json.key("diagnostic");
            r.diag.write_json(json);
        }
        if (!r.warnings.empty()) {
            json.key("warnings");
            json.begin_array();
            for (const Diagnostic& w : r.warnings) {
                w.write_json(json);
            }
            json.end_array();
        }
        json.end_object();
    }
    json.end_array();

    // Flat list of failure diagnostics for report consumers that only
    // triage errors.
    json.key("diagnostics");
    json.begin_array();
    for (const SweepPointResult* r : failures()) {
        json.begin_object();
        json.field("index", static_cast<std::uint64_t>(r->point.index));
        json.field("tag", r->point.tag());
        json.key("diagnostic");
        r->diag.write_json(json);
        json.end_object();
    }
    json.end_array();
    json.end_object();
}

void
SweepReport::print(std::ostream& os) const
{
    TextTable table({"point", "status", "runtime", "util", "energy",
                     "wall"});
    for (const SweepPointResult& r : results) {
        if (r.ok) {
            table.add_row({r.point.tag(), "ok",
                           format_time(r.report.runtime_s),
                           strprintf("%.3f", r.report.util()),
                           strprintf("%.4g J", r.report.energy_j),
                           format_time(r.wall_ms / 1e3)});
        } else {
            table.add_row({r.point.tag(), status_name(r), "-", "-", "-",
                           format_time(r.wall_ms / 1e3)});
        }
    }
    table.print(os);

    const std::vector<const SweepPointResult*> failed_points =
        failures();
    os << "\n"
       << completed() << "/" << results.size() << " points completed, "
       << failed_points.size() << " failed, " << skipped()
       << " skipped\n";
    if (!failed_points.empty()) {
        os << "\nfailure diagnostics:\n";
        std::vector<std::string> header = {"point"};
        for (std::string& col : Diagnostic::table_header()) {
            header.push_back(std::move(col));
        }
        TextTable diag_table(std::move(header));
        for (const SweepPointResult* r : failed_points) {
            std::vector<std::string> row = {r->point.tag()};
            for (std::string& cell : r->diag.table_row()) {
                row.push_back(std::move(cell));
            }
            diag_table.add_row(std::move(row));
        }
        diag_table.print(os);
    }
}

void
SweepReport::write_csv(const std::string& path) const
{
    CsvWriter csv(path,
                  {"index", "tag", "status", "runtime_s", "cycles",
                   "energy_j", "utilization", "wall_ms", "kind",
                   "message"});
    for (const SweepPointResult& r : results) {
        if (r.ok) {
            csv.add_row({std::to_string(r.point.index), r.point.tag(),
                         "ok", strprintf("%.6g", r.report.runtime_s),
                         strprintf("%.6g", r.report.cycles),
                         strprintf("%.6g", r.report.energy_j),
                         strprintf("%.4f", r.report.util()),
                         strprintf("%.1f", r.wall_ms), "", ""});
        } else {
            csv.add_row({std::to_string(r.point.index), r.point.tag(),
                         status_name(r), "", "", "", "",
                         strprintf("%.1f", r.wall_ms),
                         r.skipped ? "" : to_string(r.diag.kind),
                         r.skipped ? "" : r.diag.message});
        }
    }
}

SweepReport
run_sweep(const SweepSpec& spec, const SweepOptions& options)
{
    std::vector<SweepPoint> points = spec.expand();

    SweepReport report;
    report.results.resize(points.size());
    std::atomic<bool> stop{false};
    const Clock::time_point sweep_start = Clock::now();

    parallel_for(points.size(), options.threads, [&](std::size_t i) {
        SweepPointResult& r = report.results[i];
        // Each point's record owns its SweepPoint; the expanded list is
        // not read again, so the strings move instead of copying.
        r.point = std::move(points[i]);
        if (options.fail_fast &&
            stop.load(std::memory_order_relaxed)) {
            r.skipped = true;
            return;
        }

        // Deterministic fault targeting: probes hit while evaluating
        // point i fire iff the armed seed equals i.
        FaultScope fault_scope(i);
        DiagnosticCapture capture;
        FLAT_ERROR_CONTEXT("sweep point " << i << " ("
                                          << r.point.tag() << ")");
        (void)take_last_fired_fault_site(); // drop stale attribution
        const Clock::time_point start = Clock::now();
        try {
            r.report = evaluate_point(r.point, spec, options);
            r.ok = true;
        } catch (...) {
            // Spec axes were validated by expand(), so an Error here
            // means the point itself is infeasible.
            r.diag = diagnostic_from_current_exception(
                DiagKind::kInfeasible);
            r.ok = false;
        }
        r.wall_ms = elapsed_ms(start);

        if (r.ok && options.deadline_ms > 0.0 &&
            r.wall_ms > options.deadline_ms) {
            r.ok = false;
            r.diag = Diagnostic{};
            r.diag.kind = DiagKind::kTimeout;
            r.diag.message = strprintf(
                "point exceeded deadline: %.0fms > %.0fms", r.wall_ms,
                options.deadline_ms);
            r.diag.context = diagnostic_context();
            // A delay fault that slept here gets the attribution.
            r.diag.probe_site = take_last_fired_fault_site();
        }
        r.warnings = capture.take();
        if (!r.ok && options.fail_fast) {
            stop.store(true, std::memory_order_relaxed);
        }
    });

    report.wall_ms = elapsed_ms(sweep_start);
    return report;
}

} // namespace flat

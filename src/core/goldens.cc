#include "core/goldens.h"

#include "common/status.h"
#include "common/units.h"
#include "costmodel/execution_style.h"
#include "costmodel/trace.h"
#include "dse/search.h"
#include "scaleout/scaleout_model.h"
#include "workload/model_config.h"

namespace flat {
namespace {

AccelConfig
accel_for_preset(const std::string& preset)
{
    if (preset == "edge") {
        return edge_accel();
    }
    if (preset == "cloud") {
        return cloud_accel();
    }
    if (preset == "edge-sg2") {
        // Edge array with a 4 MiB second-level buffer: keeps the SG2
        // lane and its trace columns pinned by a golden.
        AccelConfig accel = edge_accel();
        accel.name = "edge-sg2";
        accel.sg2_bytes = 4 * kMiB;
        accel.sg2_bw = 200e9;
        return accel;
    }
    FLAT_FAIL("unknown golden preset '" << preset
                                        << "' (edge | cloud | edge-sg2)");
}

AttentionDims
dims_for(const GoldenConfig& config)
{
    const ModelConfig model = model_by_name(config.model);
    AttentionDims dims;
    dims.batch = config.batch;
    dims.heads = model.num_heads;
    dims.q_len = config.decode ? 1 : config.seq_len;
    dims.kv_len = config.seq_len;
    dims.head_dim = model.head_dim();
    dims.kv_heads = model.kv_heads();
    dims.decode = config.decode;
    return dims;
}

/** Quick deterministic DSE for the style's dataflow space. */
FusedDataflow
golden_dataflow(const AccelConfig& accel, const AttentionDims& dims,
                bool fused)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.fused = fused;
    const AttentionSearchResult result =
        search_attention(accel, dims, opt);
    FLAT_CHECK(result.found, "golden DSE found no feasible dataflow");
    return result.best.dataflow;
}

/** Quick DSE restricted to the flash style's column-blocked space. */
FusedDataflow
golden_flash_dataflow(const AccelConfig& accel, const AttentionDims& dims)
{
    AttentionSearchOptions opt;
    opt.quick = true;
    opt.fused = true;
    opt.styles = {"flash"};
    const AttentionSearchResult result =
        search_attention(accel, dims, opt);
    FLAT_CHECK(result.found,
               "golden DSE found no feasible flash dataflow");
    return result.best.dataflow;
}

double
passes_of(const AttentionDims& dims, const FusedDataflow& dataflow)
{
    return static_cast<double>(
        cross_loop_extent(dataflow.cross, dims.batch, dims.heads,
                          dims.q_len)
            .passes);
}

} // namespace

const std::vector<GoldenConfig>&
golden_configs()
{
    static const std::vector<GoldenConfig> configs = {
        {"edge-bert-flat", "edge", "bert", 512, 8, GoldenStyle::kFlat, 1},
        {"edge-bert-baseline", "edge", "bert", 512, 8,
         GoldenStyle::kBaselineFull, 1},
        {"edge-t5-baseline-serialized", "edge", "t5", 1024, 8,
         GoldenStyle::kBaselineSerialized, 1},
        {"edge-sg2-bert-flat", "edge-sg2", "bert", 1024, 8,
         GoldenStyle::kFlat, 1},
        {"cloud-trxl-flat", "cloud", "trxl", 2048, 16,
         GoldenStyle::kFlat, 1},
        {"cloud-trxl-pipelined", "cloud", "trxl", 2048, 16,
         GoldenStyle::kPipelined, 1},
        {"edge-bert-scaleout-seq-d4", "edge", "bert", 1024, 8,
         GoldenStyle::kScaleOutSequence, 4},
        {"cloud-xlm-scaleout-head-d8", "cloud", "xlm", 2048, 16,
         GoldenStyle::kScaleOutHead, 8},
        // Appended after the original eight so their bytes (and the
        // regen tool's file order) stay untouched.
        {"edge-bert-flash", "edge", "bert", 512, 8,
         GoldenStyle::kFlash, 1},
        {"cloud-trxl-flash", "cloud", "trxl", 2048, 16,
         GoldenStyle::kFlash, 1},
        // Decode-phase goldens (PR 9): one query token against a
        // KV-cache — classic MHA on the edge preset, grouped-query on
        // cloud. Appended after the original ten, same rationale.
        {"edge-bert-decode", "edge", "bert", 512, 8,
         GoldenStyle::kFlat, 1, true},
        {"cloud-mistral-decode-gqa", "cloud", "mistral", 2048, 16,
         GoldenStyle::kFlat, 1, true},
    };
    return configs;
}

GoldenSearchSetup
golden_search_setup(const GoldenConfig& config)
{
    GoldenSearchSetup setup;
    setup.accel = accel_for_preset(config.preset);
    setup.dims = dims_for(config);
    setup.options.quick = true;
    switch (config.style) {
      case GoldenStyle::kFlat:
      case GoldenStyle::kPipelined:
        setup.options.fused = true;
        break;
      case GoldenStyle::kBaselineFull:
      case GoldenStyle::kBaselineSerialized:
        setup.options.fused = false;
        break;
      case GoldenStyle::kFlash:
        setup.options.fused = true;
        setup.options.styles = {"flash"};
        break;
      case GoldenStyle::kScaleOutSequence:
      case GoldenStyle::kScaleOutHead:
        setup.options.fused = true;
        setup.dims = shard_attention_dims(
            setup.dims,
            config.style == GoldenStyle::kScaleOutSequence
                ? ShardAxis::kSequence
                : ShardAxis::kHead,
            config.devices);
        break;
    }
    return setup;
}

std::string
golden_trace_json(const GoldenConfig& config)
{
    const AccelConfig accel = accel_for_preset(config.preset);
    const AttentionDims dims = dims_for(config);

    switch (config.style) {
      case GoldenStyle::kFlat:
        return trace_flat_attention(accel, dims,
                                    golden_dataflow(accel, dims, true))
            .to_json();
      case GoldenStyle::kBaselineFull:
        return trace_baseline_attention(
                   accel, dims, golden_dataflow(accel, dims, false),
                   BaselineOverlap::kFull)
            .to_json();
      case GoldenStyle::kBaselineSerialized:
        return trace_baseline_attention(
                   accel, dims, golden_dataflow(accel, dims, false),
                   BaselineOverlap::kSerialized)
            .to_json();
      case GoldenStyle::kPipelined:
        return trace_pipelined_attention(
                   accel, dims, golden_dataflow(accel, dims, true))
            .to_json();
      case GoldenStyle::kFlash:
        return trace_attention(flash_execution_style(), accel, dims,
                               golden_flash_dataflow(accel, dims))
            .to_json();
      case GoldenStyle::kScaleOutSequence:
      case GoldenStyle::kScaleOutHead: {
        ScaleOutConfig fabric = scaleout_preset("pod-ring");
        fabric.devices = config.devices;
        fabric.axis = config.style == GoldenStyle::kScaleOutSequence
                          ? ShardAxis::kSequence
                          : ShardAxis::kHead;
        const AttentionDims device_dims =
            shard_attention_dims(dims, fabric.axis, fabric.devices);
        const FusedDataflow dataflow =
            golden_dataflow(accel, device_dims, true);
        const ScaleOutCost cost =
            model_scaleout_attention(accel, dims, dataflow, fabric);
        return trace_from_timeline(
                   cost.timeline,
                   std::string("scaleout-") + to_string(fabric.axis),
                   dataflow.tag(),
                   passes_of(device_dims, dataflow))
            .to_json();
      }
    }
    FLAT_FAIL("unknown golden style");
}

} // namespace flat

#include "core/simulator.h"

#include "common/status.h"
#include "costmodel/attention_cost.h"
#include "costmodel/execution_style.h"
#include "costmodel/timeline.h"

namespace flat {
namespace {

/** Folds an evaluated L-A timeline into the per-stage ledger view. */
LaStageBreakdown
fold_la_stages(const TimelineResult& timeline)
{
    LaStageBreakdown out;
    for (std::size_t i = 0; i < timeline.phases.size(); ++i) {
        const Phase& phase = timeline.phases[i];
        if (phase.pace_only) {
            continue; // warm-up windows live in cold_start_cycles
        }
        const double paced = timeline.phase_timings[i].paced_cycles;
        switch (phase.stage) {
          case StageTag::kPrefetch: out.prefetch_cycles += paced; break;
          case StageTag::kLogit: out.logit_cycles += paced; break;
          case StageTag::kSoftmax: out.softmax_cycles += paced; break;
          case StageTag::kAttend: out.attend_cycles += paced; break;
          case StageTag::kWriteback: out.writeback_cycles += paced; break;
          case StageTag::kCompute:
          case StageTag::kColdStart:
          case StageTag::kCollective:
            break; // not emitted by the single-device attention models
        }
    }
    out.cold_start_cycles = timeline.cold_start_cycles;
    out.bound_by = to_string(timeline.bound_by);
    return out;
}

} // namespace

CandidateOptions
fixed_policy_candidates()
{
    CandidateOptions cand;
    cand.tile_budget_fractions = {1.0 / 4};
    cand.loop_orders = {LoopOrder::kMNK};
    // Two stationarities so a fixed policy can still map narrow GEMMs
    // (n = dk) onto wide arrays; the better of the two is used.
    cand.stationarities = {Stationarity::kOutputStationary,
                           Stationarity::kInputStationary};
    cand.sweep_stage_flags = false;
    return cand;
}

AttentionSearchOptions
attention_options(const DataflowPolicy& policy, const SimOptions& options)
{
    AttentionSearchOptions out;
    out.objective = options.objective;
    out.mode = options.search_mode;
    out.quick = options.quick;
    out.baseline_overlap = options.baseline_overlap;
    out.threads = options.threads;
    out.prune = options.prune;
    out.batch_width = options.batch_width;
    out.journal = options.journal;
    out.cancel = options.cancel;
    out.fused = policy.fused();
    out.styles = options.styles;

    if (policy.searched()) {
        return out; // full sweep
    }

    out.fixed_cross = policy.fixed_cross();
    out.candidates = fixed_policy_candidates();
    if (policy.kind == PolicyKind::kBase) {
        // Plain Base: no L3 staging at all.
        out.fixed_flags = FusedStageFlags::decode(0);
    } else {
        // Base-X / FLAT-X / FLAT-Rx: every tensor staged.
        out.fixed_flags = FusedStageFlags{};
    }
    return out;
}

AttentionSearchOptions
attention_options(const AcceleratorSpec& spec, const SimOptions& options)
{
    const DataflowPolicy policy = spec.la_policy();
    AttentionSearchOptions out;
    out.objective = options.objective;
    out.mode = options.search_mode;
    out.quick = options.quick;
    out.baseline_overlap = options.baseline_overlap;
    out.threads = options.threads;
    out.prune = options.prune;
    out.batch_width = options.batch_width;
    out.journal = options.journal;
    out.cancel = options.cancel;
    out.fused = policy.fused();
    out.styles = options.styles;

    switch (spec.kind) {
      case AcceleratorKind::kBaseAccel:
        // Fixed Base dataflow, nothing tunable.
        return attention_options(policy, options);
      case AcceleratorKind::kFlexAccelM:
      case AcceleratorKind::kAttAccM:
      case AcceleratorKind::kAttAccR:
        // Full DSE with the cross loop pinned. Staging is always on:
        // a fixed-granularity accelerator stages its tensors at that
        // granularity by construction (it cannot fall back to pure
        // streaming), which is what bends FlexAccel-M below FlexAccel
        // when the M-Gran footprint outgrows the buffer (Fig. 12(a)).
        out.fixed_cross = policy.fixed_cross();
        out.fixed_flags = FusedStageFlags{};
        return out;
      case AcceleratorKind::kFlexAccel:
      case AcceleratorKind::kAttAcc:
        return out; // full sweep
    }
    return out;
}

Simulator::Simulator(AccelConfig accel)
    : accel_(std::move(accel)), energy_table_(EnergyTable::for_accel(accel_))
{
    accel_.validate();
}

AttentionSearchResult
Simulator::attention(const Workload& workload, const DataflowPolicy& policy,
                     const SimOptions& options) const
{
    const AttentionDims dims = AttentionDims::from_workload(workload);
    return search_attention(accel_, dims,
                            attention_options(policy, options));
}

ScopeReport
Simulator::run(const Workload& workload, Scope scope,
               const DataflowPolicy& policy,
               const SimOptions& options) const
{
    return run_impl(workload, scope, attention_options(policy, options),
                    /*flexible_ops=*/true, /*allow_l3=*/true,
                    policy.name(), options);
}

ScopeReport
Simulator::run(const Workload& workload, Scope scope,
               const AcceleratorSpec& spec, const SimOptions& options) const
{
    return run_impl(workload, scope, attention_options(spec, options),
                    spec.flexible(), spec.allows_l3(), spec.name(),
                    options);
}

ScopeReport
Simulator::run_impl(const Workload& workload, Scope scope,
                    const AttentionSearchOptions& la_options,
                    bool flexible_ops, bool allow_l3,
                    const std::string& policy_name,
                    const SimOptions& options) const
{
    const AttentionDims dims = AttentionDims::from_workload(workload);

    ScopeReport report;
    report.scope = scope;
    report.policy_name = policy_name;

    // L-A pipeline (always present at every scope).
    const AttentionSearchResult la = search_attention(accel_, dims,
                                                      la_options);
    const double la_energy =
        estimate_energy(energy_table_, la.best.cost.activity).total();
    report.breakdown.la_cycles = la.best.cost.cycles;
    report.breakdown.la_ideal = la.best.cost.ideal_cycles;
    report.breakdown.la_energy_j = la_energy;
    report.la_footprint_bytes = la.best.cost.live_footprint_bytes;
    report.la_resident_fraction = la.best.cost.resident_fraction;
    const ExecutionStyle& la_style =
        la.best.style != nullptr ? *la.best.style
                                 : default_execution_style(la_options.fused);
    // Keep the historical "fused:"/"seq:" prefixes for the two original
    // styles; newer styles are prefixed by their registry id.
    const std::string style_prefix =
        (&la_style == &flat_execution_style())       ? "fused:"
        : (&la_style == &baseline_execution_style())
            ? "seq:"
            : std::string(la_style.id()) + ":";
    report.la_dataflow_tag = style_prefix + la.best.dataflow.tag();
    report.la_points_evaluated = la.evaluated;
    report.la_points_pruned = la.pruned;
    report.la_verified = la.verified;
    report.la_verified_ratio = la.verified_ratio;
    report.traffic += la.best.cost.activity.traffic;

    // Re-evaluate the winning dataflow's timeline for the per-stage
    // view (the cost model consumed the same timeline, so cycles agree
    // exactly with breakdown.la_cycles before scaling).
    const TimelineResult la_timeline = attention_timeline(
        la_style, accel_, dims, la.best.dataflow,
        la_options.baseline_overlap);
    report.la_stages = fold_la_stages(la_timeline);

    // Projections and FCs at Block/Model scope.
    if (scope != Scope::kLogitAttend) {
        OperatorSearchOptions op_options;
        op_options.objective = options.objective;
        op_options.allow_l3 = allow_l3;
        op_options.quick = options.quick;
        op_options.cancel = options.cancel;
        if (!flexible_ops) {
            op_options.candidates = fixed_policy_candidates();
            op_options.allow_l3 = false;
        }

        for (const Operator& op : workload.ops) {
            if (op.kind != OpKind::kGemm ||
                op.category == OpCategory::kLogitAttend) {
                continue;
            }
            const OperatorSearchResult res =
                search_operator(accel_, op, op_options);
            const double op_energy =
                estimate_energy(energy_table_, res.cost.activity).total();
            if (op.category == OpCategory::kProjection) {
                report.breakdown.proj_cycles += res.cost.cycles;
                report.breakdown.proj_ideal += res.cost.ideal_cycles;
                report.breakdown.proj_energy_j += op_energy;
            } else {
                report.breakdown.fc_cycles += res.cost.cycles;
                report.breakdown.fc_ideal += res.cost.ideal_cycles;
                report.breakdown.fc_energy_j += op_energy;
            }
            report.traffic += res.cost.activity.traffic;
        }
    }

    const double mult =
        static_cast<double>(workload.scope_multiplier(scope));
    report.breakdown.la_cycles *= mult;
    report.breakdown.la_ideal *= mult;
    report.breakdown.la_energy_j *= mult;
    report.breakdown.proj_cycles *= mult;
    report.breakdown.proj_ideal *= mult;
    report.breakdown.proj_energy_j *= mult;
    report.breakdown.fc_cycles *= mult;
    report.breakdown.fc_ideal *= mult;
    report.breakdown.fc_energy_j *= mult;
    report.la_stages.prefetch_cycles *= mult;
    report.la_stages.logit_cycles *= mult;
    report.la_stages.softmax_cycles *= mult;
    report.la_stages.attend_cycles *= mult;
    report.la_stages.writeback_cycles *= mult;
    report.la_stages.cold_start_cycles *= mult;

    report.cycles = report.breakdown.la_cycles +
                    report.breakdown.proj_cycles +
                    report.breakdown.fc_cycles;
    report.ideal_cycles = report.breakdown.la_ideal +
                          report.breakdown.proj_ideal +
                          report.breakdown.fc_ideal;
    report.energy_j = report.breakdown.la_energy_j +
                      report.breakdown.proj_energy_j +
                      report.breakdown.fc_energy_j;
    report.runtime_s = report.cycles * accel_.cycle_time();
    return report;
}

} // namespace flat

/**
 * @file
 * Top-level API: evaluate a workload at a scope (L-A / Block / Model) on
 * an accelerator under a named dataflow policy or accelerator spec.
 * This is the entry point the benches and examples use.
 */
#ifndef FLAT_CORE_SIMULATOR_H
#define FLAT_CORE_SIMULATOR_H

#include <string>
#include <vector>

#include "arch/accel_config.h"
#include "core/catalog.h"
#include "costmodel/cost_types.h"
#include "dse/search.h"
#include "energy/energy_model.h"
#include "workload/attention.h"

namespace flat {

/** Global evaluation options. */
struct SimOptions {
    Objective objective = Objective::kRuntime;

    /** How the L-A DSE walks its space (exhaustive sweep, analytic
     *  tile mapper, or analytic cross-checked against exhaustive).
     *  See AttentionSearchOptions::mode. */
    SearchMode search_mode = SearchMode::kExhaustive;

    /** Smaller DSE menus (used by the broad Figure 8/9 sweeps). */
    bool quick = false;

    /** Execution styles the L-A DSE may pick from (registry ids, or
     *  "all"). Empty = the single style the policy's fused flag
     *  selects, which keeps historical searches bit-identical. */
    std::vector<std::string> styles;

    /** Overlap assumption for sequential-baseline dataflows. */
    BaselineOverlap baseline_overlap = BaselineOverlap::kFull;

    /** DSE worker threads; 0 = auto (FLAT_THREADS env, else all
     *  hardware threads). Results are identical for any count. */
    unsigned threads = 0;

    /** Incumbent lower-bound pruning in the L-A DSE (identical result,
     *  fewer cost-model evaluations). */
    bool prune = true;

    /** Lanes per batched L-A evaluation; 0 = auto (one whole
     *  tiles-x-flags block). Identical result at any width. */
    std::size_t batch_width = 0;

    /** Optional checkpoint journal threaded into the L-A DSE (see
     *  AttentionSearchOptions::journal). Not owned. */
    RunJournal* journal = nullptr;

    /** Optional cooperative cancellation threaded into every search
     *  loop (see AttentionSearchOptions::cancel). Not owned. */
    const CancellationToken* cancel = nullptr;
};

/** Per-category cycle/energy decomposition (Figure 11). */
struct CategoryBreakdown {
    double la_cycles = 0.0;   ///< fused or sequential L-softmax-A
    double proj_cycles = 0.0; ///< Q, K, V, O
    double fc_cycles = 0.0;   ///< FC1, FC2
    double la_ideal = 0.0;
    double proj_ideal = 0.0;
    double fc_ideal = 0.0;
    double la_energy_j = 0.0;
    double proj_energy_j = 0.0;
    double fc_energy_j = 0.0;
};

/**
 * Per-stage split of the L-A bar, sourced from the picked dataflow's
 * evaluated phase timeline (the same ledger the cost model and the
 * trace consume). Each stage's cycles are the latency that stage alone
 * would need — overlapped stages sum to more than `la_cycles`, which
 * is the point: the gap is what double buffering hides.
 */
struct LaStageBreakdown {
    double prefetch_cycles = 0.0;  ///< DRAM->SG transfers (overlapped)
    double logit_cycles = 0.0;     ///< L GEMM occupancy window
    double softmax_cycles = 0.0;   ///< SFU window
    double attend_cycles = 0.0;    ///< A GEMM occupancy window
    double writeback_cycles = 0.0; ///< SG->DRAM transfers (overlapped)
    double cold_start_cycles = 0.0; ///< exposed warm-up / pipeline fill

    /** Pacing resource of the dominant timeline window. */
    std::string bound_by;
};

/** Evaluation result at one scope. */
struct ScopeReport {
    Scope scope = Scope::kLogitAttend;
    std::string policy_name;

    double cycles = 0.0;
    double ideal_cycles = 0.0; ///< the non-stall latency of Figure 11
    double energy_j = 0.0;
    double runtime_s = 0.0;

    CategoryBreakdown breakdown;
    LaStageBreakdown la_stages;
    TrafficBytes traffic;

    /** L-A dataflow details. */
    std::uint64_t la_footprint_bytes = 0;
    double la_resident_fraction = 1.0;
    std::string la_dataflow_tag;

    /** L-A DSE audit: design points run through the full cost model
     *  and points skipped by the pruning bound. */
    std::size_t la_points_evaluated = 0;
    std::size_t la_points_pruned = 0;

    /** analytic-verified mode only: the analytic pick's objective as a
     *  ratio of the exhaustive optimum (1.0 = exact parity). */
    bool la_verified = false;
    double la_verified_ratio = 1.0;

    double util() const
    {
        return (cycles > 0.0) ? ideal_cycles / cycles : 0.0;
    }
};

/**
 * Builds the DSE options implementing a named policy: non-opt policies
 * become deterministic single-point "searches" (fixed granularity,
 * default tiles, all FLAT-tiles enabled), -opt policies sweep the space.
 */
/** Single-point candidate menus for the fixed (non-opt) policies. */
CandidateOptions fixed_policy_candidates();

AttentionSearchOptions attention_options(const DataflowPolicy& policy,
                                         const SimOptions& options);

/** DSE options implementing an accelerator spec's L-A dataflow. */
AttentionSearchOptions attention_options(const AcceleratorSpec& spec,
                                         const SimOptions& options);

/** Evaluates workloads on one accelerator configuration. */
class Simulator
{
  public:
    explicit Simulator(AccelConfig accel);

    const AccelConfig& accel() const { return accel_; }

    /** Cost of the L-A pipeline only, under @p policy. */
    AttentionSearchResult attention(const Workload& workload,
                                    const DataflowPolicy& policy,
                                    const SimOptions& options = {}) const;

    /** Full scope evaluation under a dataflow policy. Non-fused
     *  operators are tuned by DSE (they are unaffected by the policy). */
    ScopeReport run(const Workload& workload, Scope scope,
                    const DataflowPolicy& policy,
                    const SimOptions& options = {}) const;

    /** Full scope evaluation of an accelerator spec (Figure 7(c)):
     *  the spec decides the L-A policy, operator flexibility and
     *  whether L3 staging exists. */
    ScopeReport run(const Workload& workload, Scope scope,
                    const AcceleratorSpec& spec,
                    const SimOptions& options = {}) const;

  private:
    ScopeReport run_impl(const Workload& workload, Scope scope,
                         const AttentionSearchOptions& la_options,
                         bool flexible_ops, bool allow_l3,
                         const std::string& policy_name,
                         const SimOptions& options) const;

    AccelConfig accel_;
    EnergyTable energy_table_;
};

} // namespace flat

#endif // FLAT_CORE_SIMULATOR_H

/**
 * @file
 * Fault-isolated batch sweep engine: evaluates the cross product of
 * models x platforms x policies x sequence lengths x batch sizes, one
 * Simulator::run per point, over the shared ThreadPool.
 *
 * Robustness contract:
 *  - every point runs inside its own exception boundary: a config
 *    error, infeasible dataflow, internal invariant violation or OOM in
 *    one point is recorded as a structured Diagnostic and never stops
 *    the other points (unless fail_fast is requested);
 *  - a per-point wall-clock deadline demotes over-budget points to
 *    kTimeout diagnostics;
 *  - partial results are always emitted: the report carries one entry
 *    per point, completed or failed, in spec order regardless of the
 *    thread count;
 *  - each point is wrapped in a FaultScope carrying its index, so
 *    `--inject-fault SITE:N` deterministically poisons point N only.
 *
 * Spec files reuse the key=value syntax of common/config.h; list values
 * are comma-separated:
 *
 *   # edge_quick.sweep
 *   models    = bert, t5
 *   platforms = edge
 *   policies  = flat-opt, base-opt
 *   seq       = 512, 4096
 *   batch     = 64
 *   scope     = la          # la | block | model
 *   objective = runtime     # runtime | energy | edp
 *   quick     = true
 */
#ifndef FLAT_CORE_SWEEP_H
#define FLAT_CORE_SWEEP_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/diagnostics.h"
#include "core/simulator.h"

namespace flat {

class JsonWriter;

/** One point of the cross product. */
struct SweepPoint {
    std::size_t index = 0;
    std::string model;
    std::string platform; ///< "edge" | "cloud"
    std::string policy;   ///< DataflowPolicy::parse name
    std::uint64_t seq = 0;
    std::uint64_t batch = 0;

    /** Stable id: "bert/edge/flat-opt/seq=4096/batch=64". */
    std::string tag() const;
};

/** The sweep axes plus shared evaluation settings. */
struct SweepSpec {
    std::vector<std::string> models = {"bert"};
    std::vector<std::string> platforms = {"edge"};
    std::vector<std::string> policies = {"flat-opt"};
    std::vector<std::uint64_t> seq_lens = {4096};
    std::vector<std::uint64_t> batches = {64};
    Scope scope = Scope::kBlock;
    Objective objective = Objective::kRuntime;
    bool quick = false;

    /** Parses a spec (see the file header); unknown keys throw. */
    static SweepSpec parse(const ConfigMap& config);
    static SweepSpec from_text(const std::string& text);
    static SweepSpec from_file(const std::string& path);

    /** Cross product in axis order (model-major), with every model,
     *  platform and policy name validated eagerly so a typo fails the
     *  whole sweep up front instead of every point individually. */
    std::vector<SweepPoint> expand() const;
};

/** Execution knobs of one sweep run. */
struct SweepOptions {
    /** Sweep-level worker threads; 0 = auto. Per-point DSE runs
     *  serially inside a sweep worker (nested parallel_for). */
    unsigned threads = 0;

    /** Per-point wall-clock deadline in milliseconds; 0 = none. */
    double deadline_ms = 0.0;

    /** Stop scheduling new points after the first failure. Started
     *  points still finish; unstarted ones are reported as skipped. */
    bool fail_fast = false;

    /** Forwarded to Simulator::run (threads is overridden to 1). */
    SimOptions sim;
};

/** Outcome of one point: a report or a diagnostic, never both. */
struct SweepPointResult {
    SweepPoint point;
    bool ok = false;
    bool skipped = false; ///< not attempted (fail-fast abort)
    ScopeReport report;   ///< valid iff ok
    Diagnostic diag;      ///< valid iff !ok && !skipped
    std::vector<Diagnostic> warnings; ///< captured during evaluation
    double wall_ms = 0.0;
};

/** Aggregate outcome; always has one entry per expanded point. */
struct SweepReport {
    std::vector<SweepPointResult> results;
    double wall_ms = 0.0;

    std::size_t completed() const;
    std::size_t failed() const;
    std::size_t skipped() const;

    /** Failed (not skipped) points, in spec order. */
    std::vector<const SweepPointResult*> failures() const;

    /** 0 when every attempted point completed, 4 otherwise. */
    int exit_code() const;

    /** Full machine-readable report (spec echo, per-point results,
     *  structured diagnostics). */
    void write_json(JsonWriter& json) const;

    /** Human-readable tables: results, then failure diagnostics. */
    void print(std::ostream& os) const;

    /** Per-point CSV rows (partial results for failed sweeps too). */
    void write_csv(const std::string& path) const;
};

/** Runs @p spec under @p options; throws only on spec-level errors
 *  (per-point failures are isolated into the report). */
SweepReport run_sweep(const SweepSpec& spec, const SweepOptions& options);

} // namespace flat

#endif // FLAT_CORE_SWEEP_H

/**
 * @file
 * Fault-isolated batch sweep engine: evaluates the cross product of
 * models x platforms x policies x sequence lengths x batch sizes, one
 * Simulator::run per point, over the shared ThreadPool.
 *
 * Robustness contract:
 *  - every point runs inside its own exception boundary: a config
 *    error, infeasible dataflow, internal invariant violation or OOM in
 *    one point is recorded as a structured Diagnostic and never stops
 *    the other points (unless fail_fast is requested);
 *  - a per-point wall-clock deadline demotes over-budget points to
 *    kTimeout diagnostics; the deadline is enforced PREEMPTIVELY via a
 *    per-point CancellationToken polled inside the DSE loops, so a
 *    stuck point stops near its budget instead of after it;
 *  - transient failures (TransientError) are retried up to
 *    options.retries times with deterministic exponential backoff
 *    before the point is recorded as failed;
 *  - partial results are always emitted: the report carries one entry
 *    per point, completed or failed, in spec order regardless of the
 *    thread count;
 *  - a cancellation request (SIGINT/SIGTERM via options.cancel) drains
 *    gracefully: running points finish, unstarted points are marked
 *    cancelled, and the report's exit code becomes 5;
 *  - with options.journal set, every final point outcome (ok or
 *    failed) is checkpointed; a resumed sweep restores journaled
 *    points instead of re-evaluating them and produces the same
 *    machine-readable report as an uninterrupted run;
 *  - each point is wrapped in a FaultScope carrying its index, so
 *    `--inject-fault SITE:N` deterministically poisons point N only.
 *
 * Spec files reuse the key=value syntax of common/config.h; list values
 * are comma-separated:
 *
 *   # edge_quick.sweep
 *   models    = bert, t5
 *   platforms = edge
 *   policies  = flat-opt, base-opt
 *   seq       = 512, 4096
 *   batch     = 64
 *   scope     = la          # la | block | model
 *   objective = runtime     # runtime | energy | edp
 *   quick     = true
 */
#ifndef FLAT_CORE_SWEEP_H
#define FLAT_CORE_SWEEP_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/diagnostics.h"
#include "common/run_journal.h"
#include "core/simulator.h"

namespace flat {

class JsonWriter;

/** One point of the cross product. */
struct SweepPoint {
    std::size_t index = 0;
    std::string model;
    std::string platform; ///< "edge" | "cloud"
    std::string policy;   ///< DataflowPolicy::parse name
    std::uint64_t seq = 0;
    std::uint64_t batch = 0;

    /** Stable id: "bert/edge/flat-opt/seq=4096/batch=64". */
    std::string tag() const;
};

/** The sweep axes plus shared evaluation settings. */
struct SweepSpec {
    std::vector<std::string> models = {"bert"};
    std::vector<std::string> platforms = {"edge"};
    std::vector<std::string> policies = {"flat-opt"};
    std::vector<std::uint64_t> seq_lens = {4096};
    std::vector<std::uint64_t> batches = {64};
    Scope scope = Scope::kBlock;
    Objective objective = Objective::kRuntime;
    bool quick = false;

    /** Parses a spec (see the file header); unknown keys throw. */
    static SweepSpec parse(const ConfigMap& config);
    static SweepSpec from_text(const std::string& text);
    static SweepSpec from_file(const std::string& path);

    /** Cross product in axis order (model-major), with every model,
     *  platform and policy name validated eagerly so a typo fails the
     *  whole sweep up front instead of every point individually. */
    std::vector<SweepPoint> expand() const;
};

/** Execution knobs of one sweep run. */
struct SweepOptions {
    /** Sweep-level worker threads; 0 = auto. Per-point DSE runs
     *  serially inside a sweep worker (nested parallel_for). */
    unsigned threads = 0;

    /** Per-point wall-clock deadline in milliseconds; 0 = none. */
    double deadline_ms = 0.0;

    /** Stop scheduling new points after the first failure. Started
     *  points still finish; unstarted ones are reported as skipped. */
    bool fail_fast = false;

    /**
     * Transparent retries of TransientError failures, per point
     * (0 = fail on the first transient error). Other failure classes
     * are deterministic and never retried.
     */
    unsigned retries = 0;

    /** Backoff before retry attempt k: retry_backoff_ms * 2^(k-1)
     *  milliseconds — deterministic, no jitter. */
    double retry_backoff_ms = 0.0;

    /**
     * Optional checkpoint journal (scope "sweep", key = point tag):
     * each point's FINAL outcome — completed or failed, with its
     * diagnostics, warnings and attempt count — is appended once;
     * points already journaled are restored instead of re-evaluated.
     * Skipped/cancelled points are never journaled (a resume retries
     * them). Not owned.
     */
    RunJournal* journal = nullptr;

    /**
     * Optional cooperative cancellation (SIGINT/SIGTERM drain): polled
     * as each point starts. Running points FINISH (the token is not
     * threaded into point evaluation), pending points are marked
     * cancelled, and the report's exit code becomes 5. Not owned.
     */
    const CancellationToken* cancel = nullptr;

    /** Forwarded to Simulator::run (threads is overridden to 1). */
    SimOptions sim;
};

/** Outcome of one point: a report or a diagnostic, never both. */
struct SweepPointResult {
    SweepPoint point;
    bool ok = false;
    bool skipped = false;   ///< not attempted (fail-fast abort)
    bool cancelled = false; ///< not attempted (cancellation drain)
    bool resumed = false;   ///< restored from the checkpoint journal
    ScopeReport report;     ///< valid iff ok
    Diagnostic diag;        ///< valid iff !ok && !skipped && !cancelled
    std::vector<Diagnostic> warnings; ///< captured during evaluation
    double wall_ms = 0.0;

    /** Evaluation attempts consumed (>1 iff transient retries fired);
     *  0 when the point was never attempted. */
    unsigned attempts = 0;
};

/** Aggregate outcome; always has one entry per expanded point. */
struct SweepReport {
    std::vector<SweepPointResult> results;
    double wall_ms = 0.0;

    std::size_t completed() const;
    std::size_t failed() const;
    std::size_t skipped() const;
    std::size_t cancelled() const;

    /** Points restored from the checkpoint journal. */
    std::size_t resumed() const;

    /** Points that needed more than one attempt (transient retries). */
    std::size_t retried_points() const;

    /** Total retry attempts beyond the first, across all points. */
    std::size_t extra_attempts() const;

    /** Failed (not skipped/cancelled) points, in spec order. */
    std::vector<const SweepPointResult*> failures() const;

    /** 0 when every attempted point completed, 5 when the run was
     *  cancelled (even with failures), 4 otherwise. */
    int exit_code() const;

    /** Full machine-readable report (spec echo, per-point results,
     *  structured diagnostics). */
    void write_json(JsonWriter& json) const;

    /** Human-readable tables: results, then failure diagnostics. */
    void print(std::ostream& os) const;

    /** Per-point CSV rows (partial results for failed sweeps too). */
    void write_csv(const std::string& path) const;
};

/** Runs @p spec under @p options; throws only on spec-level errors
 *  (per-point failures are isolated into the report). */
SweepReport run_sweep(const SweepSpec& spec, const SweepOptions& options);

/**
 * Journal identity of @p spec under @p sim: mode "sweep", a hash over
 * every result-shaping knob (axes, scope, objective, quick, overlap
 * model — NOT threads/prune/batch_width) and the expanded point count.
 * flatsim uses this to create fresh journals and to reject stale ones
 * on --resume.
 */
RunJournalHeader sweep_journal_header(const SweepSpec& spec,
                                      const SimOptions& sim);

} // namespace flat

#endif // FLAT_CORE_SWEEP_H

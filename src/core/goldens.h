/**
 * @file
 * Golden-trace catalog: the canonical (preset x workload x style)
 * configurations whose --trace-json output is pinned byte-for-byte in
 * tests/goldens/. One generator serves both the regeneration tool
 * (tools/regen_goldens) and the regression test (ctest -L golden), so
 * the two can never drift apart.
 */
#ifndef FLAT_CORE_GOLDENS_H
#define FLAT_CORE_GOLDENS_H

#include <cstdint>
#include <string>
#include <vector>

namespace flat {

/** Execution style a golden pins. */
enum class GoldenStyle {
    kFlat,               ///< FLAT fused interleaved
    kBaselineFull,       ///< sequential baseline, overlapped transfers
    kBaselineSerialized, ///< sequential baseline, serialized transfers
    kPipelined,          ///< spatially pipelined halves
    kFlash,              ///< column-streamed online-softmax (flash)
    kScaleOutSequence,   ///< sequence-sharded multi-device FLAT
    kScaleOutHead,       ///< head-sharded multi-device FLAT
};

/** One pinned configuration. */
struct GoldenConfig {
    std::string id;     ///< file stem in tests/goldens/<id>.json
    std::string preset; ///< "edge" | "cloud" | "edge-sg2"
    std::string model;  ///< model-zoo name ("bert", "trxl", ...)
    std::uint64_t seq_len = 512;
    std::uint64_t batch = 8;
    GoldenStyle style = GoldenStyle::kFlat;
    std::uint32_t devices = 1; ///< > 1 only for the scale-out styles

    /** Decode step: one query token against a KV-cache of seq_len
     *  tokens (seq_len plays the n_ctx role). */
    bool decode = false;
};

/** The pinned catalog, stable order. */
const std::vector<GoldenConfig>& golden_configs();

/**
 * The exact golden bytes for @p config: a quick deterministic DSE
 * picks the dataflow, the style's timeline is evaluated, and the
 * trace is serialized with the shortest-round-trip JSON emitter.
 */
std::string golden_trace_json(const GoldenConfig& config);

} // namespace flat

#endif // FLAT_CORE_GOLDENS_H

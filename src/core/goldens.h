/**
 * @file
 * Golden-trace catalog: the canonical (preset x workload x style)
 * configurations whose --trace-json output is pinned byte-for-byte in
 * tests/goldens/. One generator serves both the regeneration tool
 * (tools/regen_goldens) and the regression test (ctest -L golden), so
 * the two can never drift apart.
 */
#ifndef FLAT_CORE_GOLDENS_H
#define FLAT_CORE_GOLDENS_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/accel_config.h"
#include "dse/search.h"
#include "workload/attention.h"

namespace flat {

/** Execution style a golden pins. */
enum class GoldenStyle {
    kFlat,               ///< FLAT fused interleaved
    kBaselineFull,       ///< sequential baseline, overlapped transfers
    kBaselineSerialized, ///< sequential baseline, serialized transfers
    kPipelined,          ///< spatially pipelined halves
    kFlash,              ///< column-streamed online-softmax (flash)
    kScaleOutSequence,   ///< sequence-sharded multi-device FLAT
    kScaleOutHead,       ///< head-sharded multi-device FLAT
};

/** One pinned configuration. */
struct GoldenConfig {
    std::string id;     ///< file stem in tests/goldens/<id>.json
    std::string preset; ///< "edge" | "cloud" | "edge-sg2"
    std::string model;  ///< model-zoo name ("bert", "trxl", ...)
    std::uint64_t seq_len = 512;
    std::uint64_t batch = 8;
    GoldenStyle style = GoldenStyle::kFlat;
    std::uint32_t devices = 1; ///< > 1 only for the scale-out styles

    /** Decode step: one query token against a KV-cache of seq_len
     *  tokens (seq_len plays the n_ctx role). */
    bool decode = false;
};

/** The pinned catalog, stable order. */
const std::vector<GoldenConfig>& golden_configs();

/** The (accel, dims, quick-DSE options) triple behind one golden's
 *  dataflow pick. Scale-out goldens search the per-device shard. */
struct GoldenSearchSetup {
    AccelConfig accel;
    AttentionDims dims;
    AttentionSearchOptions options;
};

/**
 * The exact search golden_trace_json() runs to pick @p config's
 * dataflow — exposed so the analytic-mapper bench and parity checks
 * can re-run the catalog's searches under a different SearchMode.
 */
GoldenSearchSetup golden_search_setup(const GoldenConfig& config);

/**
 * The exact golden bytes for @p config: a quick deterministic DSE
 * picks the dataflow, the style's timeline is evaluated, and the
 * trace is serialized with the shortest-round-trip JSON emitter.
 */
std::string golden_trace_json(const GoldenConfig& config);

} // namespace flat

#endif // FLAT_CORE_GOLDENS_H

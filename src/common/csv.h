/**
 * @file
 * Minimal CSV emitter so bench binaries can dump machine-readable series
 * alongside the human-readable tables.
 */
#ifndef FLAT_COMMON_CSV_H
#define FLAT_COMMON_CSV_H

#include <fstream>
#include <string>
#include <vector>

namespace flat {

/** Streams rows into a CSV file, quoting only when necessary. */
class CsvWriter
{
  public:
    /** Opens @p path for writing and emits the header row. */
    CsvWriter(const std::string& path, std::vector<std::string> header);

    /** Appends a data row (arity-checked against the header). */
    void add_row(const std::vector<std::string>& cells);

    /** Flushes and closes the file; called by the destructor too. */
    void close();

    ~CsvWriter();

    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;

  private:
    void write_row(const std::vector<std::string>& cells);
    static std::string escape(const std::string& cell);

    std::ofstream out_;
    std::size_t arity_;
};

} // namespace flat

#endif // FLAT_COMMON_CSV_H

#include "common/diagnostics.h"

#include <typeinfo>

#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace flat {
namespace {

/** Per-thread diagnostic state (context stack + innermost capture). */
thread_local std::vector<std::string> t_context;
thread_local DiagnosticCapture* t_capture = nullptr;

} // namespace

const char*
to_string(DiagSeverity severity)
{
    switch (severity) {
      case DiagSeverity::kWarning: return "warning";
      case DiagSeverity::kError: return "error";
    }
    return "error";
}

const char*
to_string(DiagKind kind)
{
    switch (kind) {
      case DiagKind::kUsage: return "usage";
      case DiagKind::kConfig: return "config";
      case DiagKind::kInfeasible: return "infeasible";
      case DiagKind::kInternal: return "internal";
      case DiagKind::kTimeout: return "timeout";
      case DiagKind::kOom: return "oom";
      case DiagKind::kTransient: return "transient";
      case DiagKind::kCancelled: return "cancelled";
    }
    return "internal";
}

DiagKind
parse_diag_kind(const std::string& name)
{
    for (const DiagKind kind :
         {DiagKind::kUsage, DiagKind::kConfig, DiagKind::kInfeasible,
          DiagKind::kInternal, DiagKind::kTimeout, DiagKind::kOom,
          DiagKind::kTransient, DiagKind::kCancelled}) {
        if (name == to_string(kind)) {
            return kind;
        }
    }
    FLAT_FAIL("unknown diagnostic kind '" << name << "'");
}

DiagSeverity
parse_diag_severity(const std::string& name)
{
    for (const DiagSeverity severity :
         {DiagSeverity::kWarning, DiagSeverity::kError}) {
        if (name == to_string(severity)) {
            return severity;
        }
    }
    FLAT_FAIL("unknown diagnostic severity '" << name << "'");
}

int
exit_code_for(DiagKind kind)
{
    switch (kind) {
      case DiagKind::kUsage:
        return 2;
      case DiagKind::kConfig:
      case DiagKind::kInfeasible:
        return 1;
      case DiagKind::kInternal:
      case DiagKind::kTimeout:
      case DiagKind::kOom:
      case DiagKind::kTransient:
        return 3;
      case DiagKind::kCancelled:
        return 5;
    }
    return 3;
}

std::string
Diagnostic::to_string() const
{
    std::ostringstream oss;
    oss << flat::to_string(severity) << "[" << flat::to_string(kind)
        << "] " << message;
    if (!probe_site.empty()) {
        oss << " {probe: " << probe_site << "}";
    }
    if (!context.empty()) {
        oss << " (in: " << join(context, " > ") << ")";
    }
    return oss.str();
}

void
Diagnostic::write_json(JsonWriter& json) const
{
    json.begin_object();
    json.field("severity", flat::to_string(severity));
    json.field("kind", flat::to_string(kind));
    json.field("message", message);
    if (!probe_site.empty()) {
        json.field("probe_site", probe_site);
    }
    json.key("context");
    json.begin_array();
    for (const std::string& frame : context) {
        json.value(frame);
    }
    json.end_array();
    json.end_object();
}

std::vector<std::string>
Diagnostic::table_header()
{
    return {"severity", "kind", "probe", "context", "message"};
}

std::vector<std::string>
Diagnostic::table_row() const
{
    return {flat::to_string(severity), flat::to_string(kind), probe_site,
            join(context, " > "), message};
}

DiagContext::DiagContext(std::string label)
{
    t_context.push_back(std::move(label));
}

DiagContext::~DiagContext()
{
    t_context.pop_back();
}

std::vector<std::string>
diagnostic_context()
{
    return t_context;
}

Diagnostic
diagnostic_from_exception(const std::exception& e, DiagKind error_kind)
{
    Diagnostic diag;
    diag.severity = DiagSeverity::kError;
    diag.message = e.what();
    diag.context = diagnostic_context();
    diag.probe_site = take_last_fired_fault_site();

    if (dynamic_cast<const UsageError*>(&e) != nullptr) {
        diag.kind = DiagKind::kUsage;
    } else if (const auto* cancelled =
                   dynamic_cast<const CancelledError*>(&e)) {
        // A tripped deadline keeps the established kTimeout contract;
        // everything else (signal drain, programmatic) is kCancelled.
        diag.kind = (cancelled->reason() == CancelReason::kDeadline)
                        ? DiagKind::kTimeout
                        : DiagKind::kCancelled;
    } else if (const auto* fault =
                   dynamic_cast<const FaultInjectedError*>(&e)) {
        diag.kind = error_kind;
        diag.probe_site = fault->site();
    } else if (dynamic_cast<const TransientError*>(&e) != nullptr) {
        diag.kind = DiagKind::kTransient;
    } else if (dynamic_cast<const Error*>(&e) != nullptr) {
        diag.kind = error_kind;
    } else if (dynamic_cast<const InternalError*>(&e) != nullptr) {
        diag.kind = DiagKind::kInternal;
    } else if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) {
        diag.kind = DiagKind::kOom;
        diag.message = strprintf("allocation failed (%s)", e.what());
    } else {
        diag.kind = DiagKind::kInternal;
        diag.message = strprintf("unexpected exception (%s): %s",
                                 typeid(e).name(), e.what());
    }
    return diag;
}

Diagnostic
diagnostic_from_current_exception(DiagKind error_kind)
{
    try {
        throw;
    } catch (const std::exception& e) {
        return diagnostic_from_exception(e, error_kind);
    } catch (...) {
        Diagnostic diag;
        diag.severity = DiagSeverity::kError;
        diag.kind = DiagKind::kInternal;
        diag.message = "unexpected non-standard exception";
        diag.context = diagnostic_context();
        diag.probe_site = take_last_fired_fault_site();
        return diag;
    }
}

void
emit_diagnostic(const Diagnostic& diag)
{
    if (t_capture != nullptr) {
        t_capture->diagnostics_.push_back(diag);
        return;
    }
    const LogLevel level = (diag.severity == DiagSeverity::kWarning)
                               ? LogLevel::kWarn
                               : LogLevel::kError;
    FLAT_LOG(level, diag.to_string());
}

DiagnosticCapture::DiagnosticCapture() : previous_(t_capture)
{
    t_capture = this;
}

DiagnosticCapture::~DiagnosticCapture()
{
    t_capture = previous_;
}

std::vector<Diagnostic>
DiagnosticCapture::take()
{
    std::vector<Diagnostic> out;
    out.swap(diagnostics_);
    return out;
}

} // namespace flat

#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/cancellation.h"

namespace flat {
namespace {

/** >0 while the current thread executes parallel_for iterations. */
thread_local int g_parallel_depth = 0;

struct DepthGuard {
    DepthGuard() { ++g_parallel_depth; }
    ~DepthGuard() { --g_parallel_depth; }
};

/**
 * The process-wide worker pool behind parallel_for: created on first
 * use, grown to the largest helper count ever requested, and leaked on
 * purpose — parked workers hold no locks and touch only the (equally
 * leaked) pool internals, so process teardown is safe while static
 * destruction order stays a non-issue. Mirrors the EvalCache
 * leaked-singleton idiom.
 */
ThreadPool&
shared_pool(unsigned helpers)
{
    static std::mutex mutex;
    static ThreadPool* pool = nullptr;
    std::lock_guard<std::mutex> lock(mutex);
    if (pool == nullptr) {
        pool = new ThreadPool(helpers);
    } else {
        pool->grow_to(helpers);
    }
    return *pool;
}

} // namespace

unsigned
default_threads()
{
    if (const char* env = std::getenv("FLAT_THREADS")) {
        try {
            const long parsed = std::stol(env);
            if (parsed > 0) {
                return static_cast<unsigned>(parsed);
            }
        } catch (const std::exception&) {
            // Fall through to the hardware default on garbage input.
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

unsigned
resolve_threads(unsigned requested)
{
    return requested > 0 ? requested : default_threads();
}

ThreadPool::ThreadPool(unsigned workers)
{
    const unsigned count = workers > 0 ? workers : 1;
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

void
ThreadPool::grow_to(unsigned workers)
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (workers_.size() < workers) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    work_available_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    all_idle_.wait(lock,
                   [this] { return queue_.empty() && running_ == 0; });
}

void
ThreadPool::worker_loop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                return; // stopping_ and drained
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        task(); // tasks must not throw (parallel_for wraps bodies)
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --running_;
            if (queue_.empty() && running_ == 0) {
                all_idle_.notify_all();
            }
        }
    }
}

void
parallel_for(std::size_t n, unsigned threads,
             const std::function<void(std::size_t)>& body,
             std::size_t grain, const CancellationToken* cancel)
{
    if (n == 0) {
        return;
    }
    const std::size_t step = grain > 0 ? grain : 1;
    const std::size_t want =
        std::min<std::size_t>(resolve_threads(threads), n);
    if (want <= 1 || g_parallel_depth > 0) {
        // Serial fallback: one thread requested, or already inside a
        // parallel_for body (nested calls must not spawn recursively).
        DepthGuard guard;
        for (std::size_t i = 0; i < n; ++i) {
            if (cancel != nullptr && cancel->cancelled()) {
                return;
            }
            body(i);
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;

    const auto runner = [&] {
        DepthGuard guard;
        while (!failed.load(std::memory_order_relaxed)) {
            if (cancel != nullptr && cancel->cancelled()) {
                break; // stop claiming batches; started ones finish
            }
            const std::size_t begin =
                next.fetch_add(step, std::memory_order_relaxed);
            if (begin >= n) {
                break;
            }
            const std::size_t end = std::min(begin + step, n);
            for (std::size_t i = begin; i < end; ++i) {
                if (failed.load(std::memory_order_relaxed)) {
                    break;
                }
                try {
                    body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!failed.exchange(true)) {
                        error = std::current_exception();
                    }
                }
            }
        }
    };

    // Helpers run on the process-wide shared pool; the calling thread
    // participates too. pool.wait() would also wait on CONCURRENT
    // parallel_for calls' tasks, so each call tracks its own helpers
    // with a stack-local latch: every task only touches the latch
    // under its mutex and the caller returns only after remaining ==
    // 0, which makes the stack storage safe.
    struct Latch {
        std::mutex mutex;
        std::condition_variable done;
        std::size_t remaining;
    } latch;
    const std::size_t helpers = want - 1;
    latch.remaining = helpers;

    ThreadPool& pool = shared_pool(static_cast<unsigned>(helpers));
    for (std::size_t t = 0; t < helpers; ++t) {
        pool.submit([&runner, &latch] {
            runner();
            std::lock_guard<std::mutex> lock(latch.mutex);
            if (--latch.remaining == 0) {
                latch.done.notify_all();
            }
        });
    }
    runner(); // the calling thread participates
    {
        std::unique_lock<std::mutex> lock(latch.mutex);
        latch.done.wait(lock, [&latch] { return latch.remaining == 0; });
    }
    if (error) {
        std::rethrow_exception(error);
    }
}

} // namespace flat

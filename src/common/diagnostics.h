/**
 * @file
 * Structured diagnostics for graceful degradation.
 *
 * A Diagnostic is a machine-readable error/warning record: severity,
 * kind (usage/config/infeasible/internal/timeout/oom), message, source
 * location and the context stack that was active when it was raised.
 * The context stack is maintained by RAII frames:
 *
 *   FLAT_ERROR_CONTEXT("evaluating point seq=" << seq);
 *   ... // any Diagnostic built here names this phase
 *
 * Exception-to-diagnostic classification (diagnostic_from_exception)
 * maps the status.h taxonomy onto kinds, so batch drivers like the
 * sweep engine can isolate a failing work item, record what happened
 * and keep going. Warnings flow through emit_diagnostic(), which
 * delivers to the innermost DiagnosticCapture on the calling thread
 * (or the logger when none is installed).
 */
#ifndef FLAT_COMMON_DIAGNOSTICS_H
#define FLAT_COMMON_DIAGNOSTICS_H

#include <string>
#include <vector>

#include "common/status.h"

namespace flat {

class JsonWriter;

/** CLI misuse (bad flag or flag value); maps to exit code 2. */
class UsageError : public Error
{
  public:
    explicit UsageError(const std::string& msg) : Error(msg) {}
};

/** How bad: warnings are advisory, errors fail the enclosing item. */
enum class DiagSeverity {
    kWarning,
    kError,
};

/** What class of failure a diagnostic describes. */
enum class DiagKind {
    kUsage,      ///< CLI misuse (bad flag value)
    kConfig,     ///< invalid user configuration (files, specs)
    kInfeasible, ///< valid input, but no feasible evaluation exists
    kInternal,   ///< violated library invariant (a bug)
    kTimeout,    ///< a work item exceeded its wall-clock deadline
    kOom,        ///< allocation failure while evaluating
    kTransient,  ///< retryable failure (exhausted its retry budget)
    kCancelled,  ///< run cancelled (SIGINT/SIGTERM graceful drain)
};

const char* to_string(DiagSeverity severity);
const char* to_string(DiagKind kind);

/** Inverse of to_string(DiagKind); throws flat::Error on unknown
 *  names. Used to round-trip diagnostics through the run journal. */
DiagKind parse_diag_kind(const std::string& name);

/** Inverse of to_string(DiagSeverity); throws flat::Error. */
DiagSeverity parse_diag_severity(const std::string& name);

/**
 * Process exit code contract (shared by flatsim and the sweep engine):
 * 0 success, 1 config/infeasible error, 2 usage, 3 internal/oom/
 * timeout/transient, 5 run cancelled by a SIGINT/SIGTERM drain.
 * (Exit code 4 — sweep completed with failed points — is owned by the
 * sweep report, not by a single diagnostic; a cancelled sweep reports
 * 5 even when it also has failed points.)
 */
int exit_code_for(DiagKind kind);

/** One structured error/warning record. */
struct Diagnostic {
    DiagSeverity severity = DiagSeverity::kError;
    DiagKind kind = DiagKind::kConfig;
    std::string message;

    /** Fault-injection probe that raised this (empty otherwise). */
    std::string probe_site;

    /** Context stack at raise time, outermost first. */
    std::vector<std::string> context;

    /** One-line human rendering: "error[config] message (in: a > b)". */
    std::string to_string() const;

    /** Emits this record as a JSON object on @p json. */
    void write_json(JsonWriter& json) const;

    /** Column header shared by the table and CSV renderings. */
    static std::vector<std::string> table_header();

    /** Cells matching table_header() (context joined with " > "). */
    std::vector<std::string> table_row() const;
};

/**
 * RAII frame on the calling thread's diagnostic context stack. Use via
 * FLAT_ERROR_CONTEXT so frames compose with stream-style messages.
 */
class DiagContext
{
  public:
    explicit DiagContext(std::string label);
    ~DiagContext();

    DiagContext(const DiagContext&) = delete;
    DiagContext& operator=(const DiagContext&) = delete;
};

/** Snapshot of the calling thread's context stack, outermost first. */
std::vector<std::string> diagnostic_context();

/**
 * Classifies a caught exception: UsageError -> usage, CancelledError ->
 * cancelled (or timeout when its reason is a deadline), TransientError
 * -> transient, InternalError -> internal, bad_alloc -> oom, other
 * std::exception -> internal, and plain flat::Error -> @p error_kind
 * (callers that already validated their configuration pass
 * kInfeasible). The current context stack and the last fired
 * fault-injection site (if any) are attached.
 */
Diagnostic diagnostic_from_exception(const std::exception& e,
                                     DiagKind error_kind = DiagKind::kConfig);

/** catch (...) variant of diagnostic_from_exception. */
Diagnostic diagnostic_from_current_exception(
    DiagKind error_kind = DiagKind::kConfig);

/**
 * Routes @p diag to the innermost DiagnosticCapture on this thread;
 * falls back to the logger (warn/error level) when none is active.
 */
void emit_diagnostic(const Diagnostic& diag);

/** RAII sink collecting emit_diagnostic() calls on this thread. */
class DiagnosticCapture
{
  public:
    DiagnosticCapture();
    ~DiagnosticCapture();

    DiagnosticCapture(const DiagnosticCapture&) = delete;
    DiagnosticCapture& operator=(const DiagnosticCapture&) = delete;

    const std::vector<Diagnostic>& diagnostics() const
    {
        return diagnostics_;
    }

    /** Moves the captured records out (capture keeps running). */
    std::vector<Diagnostic> take();

  private:
    friend void emit_diagnostic(const Diagnostic&);

    std::vector<Diagnostic> diagnostics_;
    DiagnosticCapture* previous_ = nullptr;
};

} // namespace flat

#define FLAT_DIAG_CONCAT_IMPL(a, b) a##b
#define FLAT_DIAG_CONCAT(a, b) FLAT_DIAG_CONCAT_IMPL(a, b)

/**
 * Pushes a stream-style label onto the diagnostic context stack for the
 * rest of the enclosing scope:
 *   FLAT_ERROR_CONTEXT("parsing " << path << " line " << line_no);
 */
#define FLAT_ERROR_CONTEXT(msg)                                              \
    ::flat::DiagContext FLAT_DIAG_CONCAT(flat_diag_ctx__, __LINE__)([&] {    \
        std::ostringstream flat_oss__;                                       \
        flat_oss__ << msg;                                                   \
        return flat_oss__.str();                                             \
    }())

#endif // FLAT_COMMON_DIAGNOSTICS_H

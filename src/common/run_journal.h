/**
 * @file
 * Append-only JSONL run journal: crash-safe checkpoint/resume for
 * long-running sweeps and DSE searches.
 *
 * Layout: line 1 is a header record binding the journal to one run
 * configuration —
 *
 *   {"flat_run_journal":1,"mode":"sweep",
 *    "space_hash":"0xa1b2c3d4e5f60718","points":24}
 *
 * — every further line is one completed work item:
 *
 *   {"scope":"sweep","key":"bert/edge/flat-opt/seq=4096/batch=64",
 *    "data":{...}}
 *
 * The (scope, key) pair is the canonical point key; `data` is an
 * opaque payload the producer (sweep engine, attention search) knows
 * how to restore. Appends are buffered and fsync'd in batches, so a
 * crash loses at most the last unflushed batch — which resume simply
 * re-evaluates.
 *
 * Resume contract (open_resume):
 *  - the header must match the expected mode, space hash and point
 *    count exactly, otherwise the journal is STALE and rejected with a
 *    flat::Error (exit code 1 through the CLI) — a journal written for
 *    a different spec must never leak results into this run;
 *  - a torn FINAL line (partial write at crash time) is tolerated: it
 *    is dropped and the file truncated back to the last intact record;
 *  - a corrupt NON-final line is rejected (that is data loss in the
 *    middle of the file, not a crash artifact).
 *
 * Thread safety: find() reads the immutable restored map; append() and
 * flush() are serialized by an internal mutex, so sweep/search worker
 * threads journal their results directly.
 */
#ifndef FLAT_COMMON_RUN_JOURNAL_H
#define FLAT_COMMON_RUN_JOURNAL_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.h"

namespace flat {

/** 64-bit FNV-1a of @p text (the canonical space description). */
std::uint64_t fnv1a64(std::string_view text);

/** Identity of the run a journal belongs to. */
struct RunJournalHeader {
    /** Producer mode: "sweep" (run_sweep) or "run" (single-run DSE). */
    std::string mode;

    /** Hash of the canonical search-space description. Includes every
     *  knob that changes results (axes, scope, objective, overlap
     *  model, quick menus); excludes bit-identical execution knobs
     *  (threads, prune, batch width), so a journal written at
     *  --threads 8 resumes fine at --threads 1. */
    std::uint64_t space_hash = 0;

    /** Expected work-item count (sweep points); 0 for open-ended
     *  producers (the per-search slice count is part of space_hash). */
    std::uint64_t points = 0;
};

class RunJournal
{
  public:
    /** Creates a fresh journal at @p path (truncating any existing
     *  file) and writes the header. Throws flat::Error on I/O. */
    static std::unique_ptr<RunJournal> create(
        const std::string& path, const RunJournalHeader& header);

    /** Opens @p path for resume: loads every intact record, drops a
     *  torn final line, and re-opens for appending. Throws flat::Error
     *  when the file is missing/corrupt or the header does not match
     *  @p expected (stale journal). */
    static std::unique_ptr<RunJournal> open_resume(
        const std::string& path, const RunJournalHeader& expected);

    /** Flushes and closes. */
    ~RunJournal();

    RunJournal(const RunJournal&) = delete;
    RunJournal& operator=(const RunJournal&) = delete;

    /** The payload of a restored record; nullptr when (scope, key) was
     *  not in the journal at open time. */
    const JsonValue* find(const std::string& scope,
                          const std::string& key) const;

    /** Records restored at open time (0 for a fresh journal). */
    std::size_t restored() const { return records_.size(); }

    /**
     * Appends one record. @p data_json must be one complete JSON value
     * without embedded newlines (use JsonWriter). Duplicate (scope,
     * key) pairs — already restored or already appended — are dropped,
     * so re-running a restored search cannot double-journal.
     */
    void append(const std::string& scope, const std::string& key,
                const std::string& data_json);

    /** Writes buffered records and fsyncs. */
    void flush();

    /** Appends between fsyncs (default 8; tests shrink it to 1). */
    void set_flush_every(std::size_t n);

    const std::string& path() const { return path_; }

  private:
    RunJournal() = default;

    void flush_locked();

    std::string path_;
    int fd_ = -1;

    /** Records loaded at open_resume time, keyed by (scope, key). */
    std::map<std::pair<std::string, std::string>, JsonValue> records_;

    mutable std::mutex mutex_;
    std::set<std::pair<std::string, std::string>> appended_;
    std::string pending_;
    std::size_t pending_records_ = 0;
    std::size_t flush_every_ = 8;
};

} // namespace flat

#endif // FLAT_COMMON_RUN_JOURNAL_H

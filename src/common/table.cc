#include "common/table.h"

#include <algorithm>

#include "common/status.h"

namespace flat {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    FLAT_CHECK(!header_.empty(), "table needs at least one column");
}

void
TextTable::add_row(std::vector<std::string> cells)
{
    FLAT_CHECK(cells.size() == header_.size(),
               "row arity " << cells.size() << " != header arity "
                            << header_.size());
    rows_.push_back(std::move(cells));
    ++numDataRows_;
}

void
TextTable::add_separator()
{
    rows_.push_back({kSeparatorTag});
}

void
TextTable::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        if (row.size() == 1 && row[0] == kSeparatorTag) {
            continue;
        }
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto print_sep = [&]() {
        os << '+';
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << std::string(widths[c] + 2, '-') << '+';
        }
        os << '\n';
    };
    auto print_row = [&](const std::vector<std::string>& row) {
        os << '|';
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& cell = (c < row.size()) ? row[c] : "";
            os << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ')
               << '|';
        }
        os << '\n';
    };

    print_sep();
    print_row(header_);
    print_sep();
    for (const auto& row : rows_) {
        if (row.size() == 1 && row[0] == kSeparatorTag) {
            print_sep();
        } else {
            print_row(row);
        }
    }
    print_sep();
}

} // namespace flat

#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace flat {

void
JsonWriter::prepare_value()
{
    FLAT_CHECK(!done_, "JSON document already complete");
    if (stack_.empty()) {
        return; // root value
    }
    if (stack_.back() == Ctx::kObject) {
        FLAT_CHECK(pending_key_, "JSON object values need a key first");
        pending_key_ = false;
        return;
    }
    if (has_items_.back()) {
        out_ << ',';
    }
    has_items_.back() = true;
}

void
JsonWriter::begin_object()
{
    prepare_value();
    out_ << '{';
    stack_.push_back(Ctx::kObject);
    has_items_.push_back(false);
}

void
JsonWriter::end_object()
{
    FLAT_CHECK(!stack_.empty() && stack_.back() == Ctx::kObject,
               "end_object without matching begin_object");
    FLAT_CHECK(!pending_key_, "dangling JSON key");
    out_ << '}';
    stack_.pop_back();
    has_items_.pop_back();
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::begin_array()
{
    prepare_value();
    out_ << '[';
    stack_.push_back(Ctx::kArray);
    has_items_.push_back(false);
}

void
JsonWriter::end_array()
{
    FLAT_CHECK(!stack_.empty() && stack_.back() == Ctx::kArray,
               "end_array without matching begin_array");
    out_ << ']';
    stack_.pop_back();
    has_items_.pop_back();
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::key(const std::string& name)
{
    FLAT_CHECK(!stack_.empty() && stack_.back() == Ctx::kObject,
               "JSON keys only belong in objects");
    FLAT_CHECK(!pending_key_, "two keys in a row");
    if (has_items_.back()) {
        out_ << ',';
    }
    has_items_.back() = true;
    out_ << '"' << escape(name) << "\":";
    pending_key_ = true;
}

void
JsonWriter::value(const std::string& text)
{
    prepare_value();
    out_ << '"' << escape(text) << '"';
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::value(const char* text)
{
    value(std::string(text));
}

void
JsonWriter::value(double number)
{
    prepare_value();
    if (std::isfinite(number)) {
        // Shortest round-trip form: the fewest digits that strtod()
        // parses back to the identical bits. Keeps emitted JSON stable
        // across compilers/libcs, which the golden-trace suite compares
        // byte-for-byte on.
        char buf[64];
        for (int precision = 15; precision <= 17; ++precision) {
            std::snprintf(buf, sizeof(buf), "%.*g", precision, number);
            if (std::strtod(buf, nullptr) == number) {
                break;
            }
        }
        out_ << buf;
    } else {
        out_ << "null"; // JSON has no inf/nan
    }
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::value(std::uint64_t number)
{
    prepare_value();
    out_ << number;
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::value(std::int64_t number)
{
    prepare_value();
    out_ << number;
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::value(bool flag)
{
    prepare_value();
    out_ << (flag ? "true" : "false");
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::null_value()
{
    prepare_value();
    out_ << "null";
    if (stack_.empty()) {
        done_ = true;
    }
}

std::string
JsonWriter::str() const
{
    FLAT_CHECK(done_ && stack_.empty(),
               "JSON document is incomplete (open nesting)");
    return out_.str();
}

std::string
JsonWriter::escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view json_text) : text_(json_text) {}

    JsonValue
    parse_document()
    {
        JsonValue value = parse_value();
        skip_ws();
        FLAT_CHECK(pos_ == text_.size(),
                   "JSON: trailing input at offset " << pos_);
        return value;
    }

  private:
    [[noreturn]] void
    fail(const char* what)
    {
        FLAT_FAIL("JSON: " << what << " at offset " << pos_);
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c) {
            fail("unexpected character");
        }
        ++pos_;
    }

    bool
    consume_literal(std::string_view literal)
    {
        if (text_.substr(pos_, literal.size()) != literal) {
            return false;
        }
        pos_ += literal.size();
        return true;
    }

    std::string
    parse_string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        fail("bad \\u escape digit");
                    }
                }
                // UTF-8 encode the code point (no surrogate pairing:
                // the writer only emits \u00xx control escapes).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    parse_number()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        JsonValue value;
        value.kind = JsonValue::Kind::kNumber;
        value.text.assign(text_.substr(start, pos_ - start));
        // Validate eagerly so corrupt journals fail at parse time.
        char* end = nullptr;
        std::strtod(value.text.c_str(), &end);
        if (value.text.empty() ||
            end != value.text.c_str() + value.text.size()) {
            fail("malformed number");
        }
        return value;
    }

    JsonValue
    parse_value()
    {
        skip_ws();
        const char c = peek();
        JsonValue value;
        if (c == '{') {
            ++pos_;
            value.kind = JsonValue::Kind::kObject;
            skip_ws();
            if (peek() == '}') {
                ++pos_;
                return value;
            }
            for (;;) {
                skip_ws();
                std::string key = parse_string();
                skip_ws();
                expect(':');
                value.object.emplace_back(std::move(key), parse_value());
                skip_ws();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect('}');
                return value;
            }
        }
        if (c == '[') {
            ++pos_;
            value.kind = JsonValue::Kind::kArray;
            skip_ws();
            if (peek() == ']') {
                ++pos_;
                return value;
            }
            for (;;) {
                value.array.push_back(parse_value());
                skip_ws();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                expect(']');
                return value;
            }
        }
        if (c == '"') {
            value.kind = JsonValue::Kind::kString;
            value.text = parse_string();
            return value;
        }
        if (c == 't' && consume_literal("true")) {
            value.kind = JsonValue::Kind::kBool;
            value.boolean = true;
            return value;
        }
        if (c == 'f' && consume_literal("false")) {
            value.kind = JsonValue::Kind::kBool;
            value.boolean = false;
            return value;
        }
        if (c == 'n' && consume_literal("null")) {
            return value; // kNull
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            return parse_number();
        }
        fail("unexpected character");
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (kind != Kind::kObject) {
        return nullptr;
    }
    for (const auto& [name, value] : object) {
        if (name == key) {
            return &value;
        }
    }
    return nullptr;
}

bool
JsonValue::as_bool() const
{
    FLAT_CHECK(kind == Kind::kBool, "JSON value is not a bool");
    return boolean;
}

double
JsonValue::as_number() const
{
    FLAT_CHECK(kind == Kind::kNumber, "JSON value is not a number");
    return std::strtod(text.c_str(), nullptr);
}

std::uint64_t
JsonValue::as_u64() const
{
    FLAT_CHECK(kind == Kind::kNumber, "JSON value is not a number");
    try {
        std::size_t pos = 0;
        const std::uint64_t v = std::stoull(text, &pos);
        FLAT_CHECK(pos == text.size(),
                   "JSON number '" << text
                                   << "' is not an unsigned integer");
        return v;
    } catch (const Error&) {
        throw;
    } catch (const std::exception&) {
        FLAT_FAIL("JSON number '" << text
                                  << "' is not an unsigned integer");
    }
}

const std::string&
JsonValue::as_string() const
{
    FLAT_CHECK(kind == Kind::kString, "JSON value is not a string");
    return text;
}

bool
JsonValue::member_bool(const std::string& key) const
{
    const JsonValue* member = find(key);
    FLAT_CHECK(member != nullptr, "JSON object misses key '" << key
                                                             << "'");
    return member->as_bool();
}

double
JsonValue::member_number(const std::string& key) const
{
    const JsonValue* member = find(key);
    FLAT_CHECK(member != nullptr, "JSON object misses key '" << key
                                                             << "'");
    return member->as_number();
}

std::uint64_t
JsonValue::member_u64(const std::string& key) const
{
    const JsonValue* member = find(key);
    FLAT_CHECK(member != nullptr, "JSON object misses key '" << key
                                                             << "'");
    return member->as_u64();
}

const std::string&
JsonValue::member_string(const std::string& key) const
{
    const JsonValue* member = find(key);
    FLAT_CHECK(member != nullptr, "JSON object misses key '" << key
                                                             << "'");
    return member->as_string();
}

JsonValue
parse_json(std::string_view json_text)
{
    return JsonParser(json_text).parse_document();
}

bool
try_parse_json(std::string_view json_text, JsonValue* out)
{
    try {
        *out = parse_json(json_text);
        return true;
    } catch (const Error&) {
        return false;
    }
}

} // namespace flat

#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace flat {

void
JsonWriter::prepare_value()
{
    FLAT_CHECK(!done_, "JSON document already complete");
    if (stack_.empty()) {
        return; // root value
    }
    if (stack_.back() == Ctx::kObject) {
        FLAT_CHECK(pending_key_, "JSON object values need a key first");
        pending_key_ = false;
        return;
    }
    if (has_items_.back()) {
        out_ << ',';
    }
    has_items_.back() = true;
}

void
JsonWriter::begin_object()
{
    prepare_value();
    out_ << '{';
    stack_.push_back(Ctx::kObject);
    has_items_.push_back(false);
}

void
JsonWriter::end_object()
{
    FLAT_CHECK(!stack_.empty() && stack_.back() == Ctx::kObject,
               "end_object without matching begin_object");
    FLAT_CHECK(!pending_key_, "dangling JSON key");
    out_ << '}';
    stack_.pop_back();
    has_items_.pop_back();
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::begin_array()
{
    prepare_value();
    out_ << '[';
    stack_.push_back(Ctx::kArray);
    has_items_.push_back(false);
}

void
JsonWriter::end_array()
{
    FLAT_CHECK(!stack_.empty() && stack_.back() == Ctx::kArray,
               "end_array without matching begin_array");
    out_ << ']';
    stack_.pop_back();
    has_items_.pop_back();
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::key(const std::string& name)
{
    FLAT_CHECK(!stack_.empty() && stack_.back() == Ctx::kObject,
               "JSON keys only belong in objects");
    FLAT_CHECK(!pending_key_, "two keys in a row");
    if (has_items_.back()) {
        out_ << ',';
    }
    has_items_.back() = true;
    out_ << '"' << escape(name) << "\":";
    pending_key_ = true;
}

void
JsonWriter::value(const std::string& text)
{
    prepare_value();
    out_ << '"' << escape(text) << '"';
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::value(const char* text)
{
    value(std::string(text));
}

void
JsonWriter::value(double number)
{
    prepare_value();
    if (std::isfinite(number)) {
        // Shortest round-trip form: the fewest digits that strtod()
        // parses back to the identical bits. Keeps emitted JSON stable
        // across compilers/libcs, which the golden-trace suite compares
        // byte-for-byte on.
        char buf[64];
        for (int precision = 15; precision <= 17; ++precision) {
            std::snprintf(buf, sizeof(buf), "%.*g", precision, number);
            if (std::strtod(buf, nullptr) == number) {
                break;
            }
        }
        out_ << buf;
    } else {
        out_ << "null"; // JSON has no inf/nan
    }
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::value(std::uint64_t number)
{
    prepare_value();
    out_ << number;
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::value(std::int64_t number)
{
    prepare_value();
    out_ << number;
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::value(bool flag)
{
    prepare_value();
    out_ << (flag ? "true" : "false");
    if (stack_.empty()) {
        done_ = true;
    }
}

void
JsonWriter::null_value()
{
    prepare_value();
    out_ << "null";
    if (stack_.empty()) {
        done_ = true;
    }
}

std::string
JsonWriter::str() const
{
    FLAT_CHECK(done_ && stack_.empty(),
               "JSON document is incomplete (open nesting)");
    return out_.str();
}

std::string
JsonWriter::escape(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace flat

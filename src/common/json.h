/**
 * @file
 * Minimal JSON writer (objects, arrays, scalars) used to emit
 * machine-readable reports from the CLI and benches, plus a matching
 * minimal parser (JsonValue / parse_json) so the run journal can read
 * its own records back. The parser keeps each number's raw token, so
 * values written by JsonWriter (shortest round-trip doubles, plain
 * integers) reparse bit-exactly.
 */
#ifndef FLAT_COMMON_JSON_H
#define FLAT_COMMON_JSON_H

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace flat {

/**
 * Streaming JSON writer with nesting validation.
 *
 * Example:
 *   JsonWriter json;
 *   json.begin_object();
 *   json.key("util");
 *   json.value(0.97);
 *   json.key("tags");
 *   json.begin_array();
 *   json.value("R64");
 *   json.end_array();
 *   json.end_object();
 *   std::string text = json.str();
 */
class JsonWriter
{
  public:
    JsonWriter() = default;

    void begin_object();
    void end_object();
    void begin_array();
    void end_array();

    /** Emits an object key; must be inside an object. */
    void key(const std::string& name);

    void value(const std::string& text);
    void value(const char* text);
    void value(double number);
    void value(std::uint64_t number);
    void value(std::int64_t number);
    void value(bool flag);
    void null_value();

    /** Shorthand: key + scalar value. */
    template <typename T>
    void
    field(const std::string& name, const T& v)
    {
        key(name);
        value(v);
    }

    /** Finished document; throws flat::Error if nesting is open. */
    std::string str() const;

    /** Escapes a string per RFC 8259. */
    static std::string escape(const std::string& text);

  private:
    enum class Ctx { kObject, kArray };

    void prepare_value();

    std::ostringstream out_;
    std::vector<Ctx> stack_;
    std::vector<bool> has_items_;
    bool pending_key_ = false;
    bool done_ = false;
};

/**
 * One parsed JSON value. Numbers keep their raw token text and are
 * converted on access, so a double that JsonWriter emitted in shortest
 * round-trip form comes back bit-identical, and 64-bit integers never
 * lose precision through a double detour.
 */
struct JsonValue {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool boolean = false;
    std::string text; ///< string payload, or the raw number token
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue* find(const std::string& key) const;

    /** Typed accessors; throw flat::Error on a kind mismatch. */
    bool as_bool() const;
    double as_number() const;
    std::uint64_t as_u64() const;
    const std::string& as_string() const;

    /** find() + typed access; throws flat::Error when the member is
     *  missing or has the wrong type (@p key names the context). */
    bool member_bool(const std::string& key) const;
    double member_number(const std::string& key) const;
    std::uint64_t member_u64(const std::string& key) const;
    const std::string& member_string(const std::string& key) const;
};

/** Parses one complete JSON document; throws flat::Error with the
 *  byte offset on malformed or trailing input. */
JsonValue parse_json(std::string_view json_text);

/** Non-throwing parse_json; returns false on malformed input (used
 *  for torn-final-line tolerance in the run journal). */
bool try_parse_json(std::string_view json_text, JsonValue* out);

} // namespace flat

#endif // FLAT_COMMON_JSON_H

/**
 * @file
 * Minimal JSON writer (objects, arrays, scalars) used to emit
 * machine-readable reports from the CLI and benches. Writer-only by
 * design: the library never needs to parse JSON.
 */
#ifndef FLAT_COMMON_JSON_H
#define FLAT_COMMON_JSON_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace flat {

/**
 * Streaming JSON writer with nesting validation.
 *
 * Example:
 *   JsonWriter json;
 *   json.begin_object();
 *   json.key("util");
 *   json.value(0.97);
 *   json.key("tags");
 *   json.begin_array();
 *   json.value("R64");
 *   json.end_array();
 *   json.end_object();
 *   std::string text = json.str();
 */
class JsonWriter
{
  public:
    JsonWriter() = default;

    void begin_object();
    void end_object();
    void begin_array();
    void end_array();

    /** Emits an object key; must be inside an object. */
    void key(const std::string& name);

    void value(const std::string& text);
    void value(const char* text);
    void value(double number);
    void value(std::uint64_t number);
    void value(std::int64_t number);
    void value(bool flag);
    void null_value();

    /** Shorthand: key + scalar value. */
    template <typename T>
    void
    field(const std::string& name, const T& v)
    {
        key(name);
        value(v);
    }

    /** Finished document; throws flat::Error if nesting is open. */
    std::string str() const;

    /** Escapes a string per RFC 8259. */
    static std::string escape(const std::string& text);

  private:
    enum class Ctx { kObject, kArray };

    void prepare_value();

    std::ostringstream out_;
    std::vector<Ctx> stack_;
    std::vector<bool> has_items_;
    bool pending_key_ = false;
    bool done_ = false;
};

} // namespace flat

#endif // FLAT_COMMON_JSON_H

#include "common/config.h"

#include <fstream>
#include <sstream>

#include "common/diagnostics.h"
#include "common/fault_injection.h"
#include "common/status.h"
#include "common/string_util.h"

namespace flat {

ConfigMap
parse_config_text(const std::string& text)
{
    FLAT_FAULT_POINT("config.parse");
    ConfigMap out;
    std::istringstream stream(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(stream, line)) {
        ++line_no;
        const std::string raw = trim(line);
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line = line.substr(0, hash);
        }
        const std::string trimmed = trim(line);
        if (trimmed.empty()) {
            continue;
        }
        const std::size_t eq = trimmed.find('=');
        FLAT_CHECK(eq != std::string::npos && eq > 0,
                   "config line " << line_no << " is not 'key = value': '"
                                  << raw << "'");
        const std::string key = to_lower(trim(trimmed.substr(0, eq)));
        const std::string value = trim(trimmed.substr(eq + 1));
        FLAT_CHECK(!key.empty() && !value.empty(),
                   "config line " << line_no
                                  << " has an empty key or value: '"
                                  << raw << "'");
        const auto it = out.find(key);
        if (it != out.end()) {
            Diagnostic diag;
            diag.severity = DiagSeverity::kWarning;
            diag.kind = DiagKind::kConfig;
            diag.message = "config line " + std::to_string(line_no) +
                           " duplicates key '" + key +
                           "' (overriding earlier value '" + it->second +
                           "' with '" + value + "')";
            diag.context = diagnostic_context();
            emit_diagnostic(diag);
        }
        out[key] = value;
    }
    return out;
}

ConfigMap
parse_config_file(const std::string& path)
{
    std::ifstream in(path);
    FLAT_CHECK(in.good(), "cannot open config file: " << path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    FLAT_ERROR_CONTEXT("parsing " << path);
    return parse_config_text(buffer.str());
}

} // namespace flat

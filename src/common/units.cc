#include "common/units.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <string>

#include "common/status.h"

namespace flat {
namespace {

std::string
format_scaled(double value, double base,
              const std::array<const char*, 5>& suffixes, const char* unit)
{
    double v = value;
    std::size_t idx = 0;
    while (v >= base && idx + 1 < suffixes.size()) {
        v /= base;
        ++idx;
    }
    char buf[64];
    if (v == std::floor(v) && v < 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.0f%s%s", v, suffixes[idx], unit);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f%s%s", v, suffixes[idx], unit);
    }
    return buf;
}

} // namespace

std::string
format_bytes(std::uint64_t bytes)
{
    static const std::array<const char*, 5> suffixes = {
        "", "Ki", "Mi", "Gi", "Ti"};
    return format_scaled(static_cast<double>(bytes), 1024.0, suffixes, "B");
}

std::string
format_bandwidth(double bytes_per_sec)
{
    static const std::array<const char*, 5> ladder = {
        "", "K", "M", "G", "T"};
    return format_scaled(bytes_per_sec, 1000.0, ladder, "B/s");
}

std::string
format_time(double seconds)
{
    char buf[64];
    if (seconds < 1e-6) {
        std::snprintf(buf, sizeof(buf), "%.2fns", seconds * 1e9);
    } else if (seconds < 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.2fus", seconds * 1e6);
    } else if (seconds < 1.0) {
        std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
    }
    return buf;
}

std::string
format_count(double count)
{
    static const std::array<const char*, 5> ladder = {"", "K", "M", "G", "T"};
    return format_scaled(count, 1000.0, ladder, "");
}

// Parsing helpers.
namespace {

bool
parse_scaled_value(const std::string& text, double* value_out,
                   std::string* suffix_out)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception&) {
        return false;
    }
    while (pos < text.size() && text[pos] == ' ') {
        ++pos;
    }
    *value_out = value;
    *suffix_out = text.substr(pos);
    return true;
}

/** 2^64 as a double; scaled values at or above it overflow uint64_t. */
constexpr double kUint64Limit = 18446744073709551616.0;

} // namespace

std::uint64_t
parse_bytes(const std::string& text)
{
    double value = 0.0;
    std::string suffix;
    if (!parse_scaled_value(text, &value, &suffix) || value < 0.0 ||
        !std::isfinite(value)) {
        FLAT_FAIL("cannot parse byte size: '" << text << "'");
    }
    double scale = 1.0;
    if (!suffix.empty() && suffix != "B" && suffix != "b") {
        // Strict suffix grammar: [KMGT], optional binary 'i', optional
        // trailing B — anything else (e.g. "4MiBx") is rejected.
        const std::string rest = suffix.substr(1);
        const bool binary = !rest.empty() && rest[0] == 'i';
        const double base = binary ? 1024.0 : 1000.0;
        const std::string tail = binary ? rest.substr(1) : rest;
        if (tail != "" && tail != "B" && tail != "b") {
            FLAT_FAIL("cannot parse byte size: '" << text << "'");
        }
        switch (suffix[0]) {
          case 'K': case 'k': scale = base; break;
          case 'M': case 'm': scale = base * base; break;
          case 'G': case 'g': scale = base * base * base; break;
          case 'T': case 't': scale = base * base * base * base; break;
          default:
            FLAT_FAIL("cannot parse byte size: '" << text << "'");
        }
    }
    const double scaled = value * scale;
    FLAT_CHECK(scaled < kUint64Limit,
               "byte size '" << text << "' overflows 64 bits");
    return static_cast<std::uint64_t>(scaled);
}

double
parse_time(const std::string& text)
{
    double value = 0.0;
    std::string suffix;
    if (!parse_scaled_value(text, &value, &suffix) || value < 0.0 ||
        !std::isfinite(value)) {
        FLAT_FAIL("cannot parse time: '" << text << "'");
    }
    if (suffix.empty() || suffix == "s") {
        return value;
    }
    if (suffix == "ms") {
        return value * 1e-3;
    }
    if (suffix == "us") {
        return value * 1e-6;
    }
    if (suffix == "ns") {
        return value * 1e-9;
    }
    FLAT_FAIL("cannot parse time: '" << text
                                     << "' (use s | ms | us | ns)");
}

double
parse_bandwidth(const std::string& text)
{
    std::string stripped = text;
    const std::size_t slash = stripped.find("/s");
    if (slash != std::string::npos) {
        FLAT_CHECK(slash + 2 == stripped.size(),
                   "cannot parse bandwidth: '" << text << "'");
        stripped = stripped.substr(0, slash);
    }
    return static_cast<double>(parse_bytes(stripped));
}

} // namespace flat

#include "common/units.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <string>

#include "common/status.h"

namespace flat {
namespace {

std::string
format_scaled(double value, double base,
              const std::array<const char*, 5>& suffixes, const char* unit)
{
    double v = value;
    std::size_t idx = 0;
    while (v >= base && idx + 1 < suffixes.size()) {
        v /= base;
        ++idx;
    }
    char buf[64];
    if (v == std::floor(v) && v < 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.0f%s%s", v, suffixes[idx], unit);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f%s%s", v, suffixes[idx], unit);
    }
    return buf;
}

} // namespace

std::string
format_bytes(std::uint64_t bytes)
{
    static const std::array<const char*, 5> suffixes = {
        "", "Ki", "Mi", "Gi", "Ti"};
    return format_scaled(static_cast<double>(bytes), 1024.0, suffixes, "B");
}

std::string
format_bandwidth(double bytes_per_sec)
{
    static const std::array<const char*, 5> ladder = {
        "", "K", "M", "G", "T"};
    return format_scaled(bytes_per_sec, 1000.0, ladder, "B/s");
}

std::string
format_time(double seconds)
{
    char buf[64];
    if (seconds < 1e-6) {
        std::snprintf(buf, sizeof(buf), "%.2fns", seconds * 1e9);
    } else if (seconds < 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.2fus", seconds * 1e6);
    } else if (seconds < 1.0) {
        std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
    }
    return buf;
}

std::string
format_count(double count)
{
    static const std::array<const char*, 5> ladder = {"", "K", "M", "G", "T"};
    return format_scaled(count, 1000.0, ladder, "");
}

// Parsing helpers.
namespace {

bool
parse_scaled_value(const std::string& text, bool* binary_out,
                   double* value_out, std::string* suffix_out)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (const std::exception&) {
        return false;
    }
    while (pos < text.size() && text[pos] == ' ') {
        ++pos;
    }
    *value_out = value;
    *suffix_out = text.substr(pos);
    *binary_out = suffix_out->find('i') != std::string::npos;
    return true;
}

} // namespace

std::uint64_t
parse_bytes(const std::string& text)
{
    bool binary = false;
    double value = 0.0;
    std::string suffix;
    if (!parse_scaled_value(text, &binary, &value, &suffix) ||
        value < 0.0) {
        FLAT_FAIL("cannot parse byte size: '" << text << "'");
    }
    double scale = 1.0;
    const double base = binary ? 1024.0 : 1000.0;
    if (suffix.empty() || suffix == "B" || suffix == "b") {
        scale = 1.0;
    } else {
        switch (suffix[0]) {
          case 'K': case 'k': scale = base; break;
          case 'M': case 'm': scale = base * base; break;
          case 'G': case 'g': scale = base * base * base; break;
          case 'T': case 't': scale = base * base * base * base; break;
          default:
            FLAT_FAIL("cannot parse byte size: '" << text << "'");
        }
    }
    return static_cast<std::uint64_t>(value * scale);
}

double
parse_bandwidth(const std::string& text)
{
    std::string stripped = text;
    const std::size_t slash = stripped.find("/s");
    if (slash != std::string::npos) {
        stripped = stripped.substr(0, slash);
    }
    return static_cast<double>(parse_bytes(stripped));
}

} // namespace flat

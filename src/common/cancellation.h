/**
 * @file
 * Cooperative cancellation for long-running work (sweeps, DSE).
 *
 * A CancellationToken is a tiny shared flag that work loops poll at
 * natural boundaries (per sweep point, per DSE block). Cancellation is
 * requested either programmatically, by an optional wall-clock deadline
 * checked at poll time, or asynchronously from a signal handler —
 * request() touches only lock-free atomics and is async-signal-safe.
 *
 * Polling code either checks cancelled() and winds down on its own
 * (the sweep engine marks unstarted points as cancelled) or calls
 * poll(), which throws CancelledError to unwind a deep evaluation.
 * diagnostics.h classifies CancelledError by its reason: a deadline
 * trip becomes DiagKind::kTimeout, an external request (signal)
 * becomes DiagKind::kCancelled.
 *
 * install_signal_cancellation() wires SIGINT/SIGTERM to a token for a
 * graceful drain: the first signal requests cancellation (workers
 * finish their current item, partial results and journals are
 * flushed), a second signal hard-exits with 128+signo.
 */
#ifndef FLAT_COMMON_CANCELLATION_H
#define FLAT_COMMON_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace flat {

/** Why a token was cancelled. */
enum class CancelReason {
    kNone = 0,
    kSignal,   ///< SIGINT/SIGTERM drain
    kDeadline, ///< wall-clock deadline passed
    kUser,     ///< programmatic request
};

const char* to_string(CancelReason reason);

/**
 * Thrown by CancellationToken::poll() (and by cancellation-aware loops)
 * to unwind an evaluation that should stop. Deliberately NOT a
 * flat::Error: batch drivers that map Error to "this item is
 * infeasible" must not misclassify a cancelled item.
 */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(CancelReason reason, const std::string& msg)
        : std::runtime_error(msg), reason_(reason)
    {
    }

    CancelReason reason() const { return reason_; }

  private:
    CancelReason reason_;
};

/** Shared cancellation flag; see the file header. */
class CancellationToken
{
  public:
    CancellationToken() = default;

    CancellationToken(const CancellationToken&) = delete;
    CancellationToken& operator=(const CancellationToken&) = delete;

    /** Arms a deadline @p ms_from_now milliseconds in the future; it
     *  trips lazily on the next cancelled() call past that instant.
     *  Call before sharing the token (not thread-safe vs. polls). */
    void set_deadline_ms(double ms_from_now);

    /** Chains @p parent: this token also reports cancelled when the
     *  parent does. Call before sharing the token. */
    void set_parent(const CancellationToken* parent);

    /** Requests cancellation. Async-signal-safe (atomics only); the
     *  first reason wins and later requests are ignored. */
    void request(CancelReason reason);

    /** True once cancellation was requested, the deadline passed, or a
     *  chained parent is cancelled. */
    bool cancelled() const;

    /** The winning reason; kNone while not cancelled. */
    CancelReason reason() const;

    /** Throws CancelledError when cancelled; no-op otherwise. */
    void poll() const;

  private:
    mutable std::atomic<int> state_{0};
    const CancellationToken* parent_ = nullptr;
    bool has_deadline_ = false;
    std::chrono::steady_clock::time_point deadline_{};
};

/**
 * Installs SIGINT/SIGTERM handlers requesting CancelReason::kSignal on
 * @p token (which must outlive the handlers, i.e. effectively the
 * process). The second signal of either kind exits immediately with
 * code 128+signo, the conventional "killed by signal" encoding, so a
 * wedged drain can still be interrupted interactively.
 */
void install_signal_cancellation(CancellationToken* token);

} // namespace flat

#endif // FLAT_COMMON_CANCELLATION_H

#include "common/status.h"

#include <cstring>

namespace flat {
namespace detail {

std::string
make_error_message(const char* kind, const char* cond, const char* file,
                   int line, const std::string& detail)
{
    // Strip the build-tree prefix so messages are stable across machines.
    const char* base = std::strrchr(file, '/');
    base = (base != nullptr) ? base + 1 : file;

    std::ostringstream oss;
    oss << "[flat] " << kind;
    if (cond != nullptr && cond[0] != '\0') {
        oss << ": (" << cond << ")";
    }
    if (!detail.empty()) {
        oss << " — " << detail;
    }
    oss << " [" << base << ":" << line << "]";
    return oss.str();
}

} // namespace detail
} // namespace flat

#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace flat {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char*
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

} // namespace

LogLevel
log_level()
{
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void
set_log_level(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void
log_message(LogLevel level, const std::string& msg)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[flat:%s] %s\n", level_tag(level), msg.c_str());
}

} // namespace flat

#include "common/run_journal.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/status.h"
#include "common/string_util.h"

namespace flat {
namespace {

constexpr std::uint64_t kJournalVersion = 1;

std::string
hash_to_hex(std::uint64_t hash)
{
    return strprintf("0x%016llx",
                     static_cast<unsigned long long>(hash));
}

std::uint64_t
hex_to_hash(const std::string& text)
{
    FLAT_CHECK(text.size() > 2 && text[0] == '0' && text[1] == 'x',
               "journal space_hash '" << text << "' is not 0x-hex");
    std::size_t pos = 0;
    std::uint64_t value = 0;
    try {
        value = std::stoull(text.substr(2), &pos, 16);
    } catch (const std::exception&) {
        pos = 0;
    }
    FLAT_CHECK(pos != 0 && pos == text.size() - 2,
               "journal space_hash '" << text << "' is not 0x-hex");
    return value;
}

std::string
header_line(const RunJournalHeader& header)
{
    JsonWriter json;
    json.begin_object();
    json.field("flat_run_journal", kJournalVersion);
    json.field("mode", header.mode);
    json.field("space_hash", hash_to_hex(header.space_hash));
    json.field("points", header.points);
    json.end_object();
    return json.str();
}

int
open_for_append(const std::string& path, bool truncate)
{
    const int flags = O_CREAT | O_WRONLY | (truncate ? O_TRUNC : 0);
    const int fd = ::open(path.c_str(), flags, 0644);
    FLAT_CHECK(fd >= 0, "cannot open run journal '"
                            << path << "': " << std::strerror(errno));
    return fd;
}

void
write_all(int fd, const std::string& path, const std::string& bytes)
{
    std::size_t written = 0;
    while (written < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + written,
                                  bytes.size() - written);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            FLAT_FAIL("cannot write run journal '"
                      << path << "': " << std::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
    }
}

} // namespace

std::uint64_t
fnv1a64(std::string_view text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::unique_ptr<RunJournal>
RunJournal::create(const std::string& path,
                   const RunJournalHeader& header)
{
    std::unique_ptr<RunJournal> journal(new RunJournal());
    journal->path_ = path;
    journal->fd_ = open_for_append(path, /*truncate=*/true);
    write_all(journal->fd_, path, header_line(header) + "\n");
    FLAT_CHECK(::fsync(journal->fd_) == 0,
               "cannot fsync run journal '" << path << "': "
                                            << std::strerror(errno));
    return journal;
}

std::unique_ptr<RunJournal>
RunJournal::open_resume(const std::string& path,
                        const RunJournalHeader& expected)
{
    std::ifstream in(path, std::ios::binary);
    FLAT_CHECK(in.good(), "cannot read run journal '" << path << "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();

    std::unique_ptr<RunJournal> journal(new RunJournal());
    journal->path_ = path;

    // Walk the lines, tracking the byte offset after the last INTACT
    // record so a torn tail can be truncated away below.
    std::size_t offset = 0;
    std::size_t good_end = 0;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (offset < content.size()) {
        const std::size_t newline = content.find('\n', offset);
        const bool torn_no_newline = (newline == std::string::npos);
        const std::string_view line(
            content.data() + offset,
            (torn_no_newline ? content.size() : newline) - offset);
        const std::size_t next =
            torn_no_newline ? content.size() : newline + 1;
        ++line_no;

        JsonValue record;
        const bool parsed =
            !line.empty() && try_parse_json(line, &record) &&
            record.kind == JsonValue::Kind::kObject;
        const bool is_final_line = (next >= content.size());
        if (!parsed || torn_no_newline) {
            // A damaged FINAL line is the expected crash artifact
            // (torn write); anything earlier is real corruption.
            FLAT_CHECK(is_final_line, "run journal '"
                                          << path
                                          << "' is corrupt at line "
                                          << line_no);
            break; // drop the torn tail; good_end stays put
        }

        if (!saw_header) {
            FLAT_CHECK(
                record.find("flat_run_journal") != nullptr &&
                    record.member_u64("flat_run_journal") ==
                        kJournalVersion,
                "run journal '" << path
                                << "' has no recognizable header");
            const std::string mode = record.member_string("mode");
            const std::uint64_t hash =
                hex_to_hash(record.member_string("space_hash"));
            const std::uint64_t points = record.member_u64("points");
            FLAT_CHECK(mode == expected.mode &&
                           hash == expected.space_hash &&
                           points == expected.points,
                       "run journal '"
                           << path
                           << "' is stale: it was written for a "
                              "different run (journal mode="
                           << mode << " space_hash="
                           << hash_to_hex(hash) << " points=" << points
                           << ", this run mode=" << expected.mode
                           << " space_hash="
                           << hash_to_hex(expected.space_hash)
                           << " points=" << expected.points << ")");
            saw_header = true;
        } else {
            const JsonValue* data = record.find("data");
            FLAT_CHECK(data != nullptr,
                       "run journal '" << path
                                       << "' record at line " << line_no
                                       << " has no data field");
            journal->records_.insert_or_assign(
                {record.member_string("scope"),
                 record.member_string("key")},
                *data);
        }
        good_end = next;
        offset = next;
    }
    FLAT_CHECK(saw_header,
               "run journal '" << path << "' has no header record");

    journal->fd_ = open_for_append(path, /*truncate=*/false);
    // Drop the torn tail (if any) and position appends after the last
    // intact record.
    FLAT_CHECK(::ftruncate(journal->fd_,
                           static_cast<off_t>(good_end)) == 0,
               "cannot truncate run journal '"
                   << path << "': " << std::strerror(errno));
    FLAT_CHECK(::lseek(journal->fd_, 0, SEEK_END) >= 0,
               "cannot seek run journal '" << path << "': "
                                           << std::strerror(errno));
    return journal;
}

RunJournal::~RunJournal()
{
    try {
        flush();
    } catch (...) {
        // Destructor: the run is over; a failed final flush only costs
        // re-evaluating the lost records on the next resume.
    }
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

const JsonValue*
RunJournal::find(const std::string& scope, const std::string& key) const
{
    const auto it = records_.find({scope, key});
    return it == records_.end() ? nullptr : &it->second;
}

void
RunJournal::append(const std::string& scope, const std::string& key,
                   const std::string& data_json)
{
    // data_json is a complete value by contract; splice it verbatim so
    // doubles keep their shortest round-trip form.
    std::string line;
    {
        JsonWriter head;
        head.begin_object();
        head.field("scope", scope);
        head.field("key", key);
        head.end_object();
        const std::string closed = head.str();
        // "{...}" -> "{...,\"data\":<payload>}\n"
        line = closed.substr(0, closed.size() - 1) + ",\"data\":" +
               data_json + "}\n";
    }

    std::lock_guard<std::mutex> lock(mutex_);
    const std::pair<std::string, std::string> id{scope, key};
    if (records_.count(id) > 0 || appended_.count(id) > 0) {
        return; // already journaled (restored or re-computed)
    }
    appended_.insert(id);
    pending_ += line;
    ++pending_records_;
    if (pending_records_ >= flush_every_) {
        flush_locked();
    }
}

void
RunJournal::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    flush_locked();
}

void
RunJournal::flush_locked()
{
    if (pending_.empty()) {
        return;
    }
    write_all(fd_, path_, pending_);
    pending_.clear();
    pending_records_ = 0;
    FLAT_CHECK(::fsync(fd_) == 0, "cannot fsync run journal '"
                                      << path_ << "': "
                                      << std::strerror(errno));
}

void
RunJournal::set_flush_every(std::size_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    flush_every_ = n > 0 ? n : 1;
}

} // namespace flat

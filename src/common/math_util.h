/**
 * @file
 * Small integer/floating-point math helpers used throughout the model.
 */
#ifndef FLAT_COMMON_MATH_UTIL_H
#define FLAT_COMMON_MATH_UTIL_H

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "common/status.h"

namespace flat {

/** Ceiling division for non-negative integers. */
template <typename T>
constexpr T
ceil_div(T num, T den)
{
    static_assert(std::is_integral_v<T>);
    return (den == 0) ? T{0} : (num + den - 1) / den;
}

/** Round @p value up to the next multiple of @p multiple (>0). */
template <typename T>
constexpr T
round_up(T value, T multiple)
{
    static_assert(std::is_integral_v<T>);
    return ceil_div(value, multiple) * multiple;
}

/** True iff @p v is a power of two (0 is not). */
constexpr bool
is_pow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2 for v >= 1. */
constexpr std::uint32_t
ilog2(std::uint64_t v)
{
    std::uint32_t r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Ceil of log2 for v >= 1. */
constexpr std::uint32_t
ilog2_ceil(std::uint64_t v)
{
    return (v <= 1) ? 0 : ilog2(v - 1) + 1;
}

/** Relative closeness for floating point comparisons in tests/models. */
inline bool
almost_equal(double a, double b, double rel_tol = 1e-9,
             double abs_tol = 1e-12)
{
    const double diff = std::fabs(a - b);
    if (diff <= abs_tol) {
        return true;
    }
    return diff <= rel_tol * std::fmax(std::fabs(a), std::fabs(b));
}

/** Saturating double->uint64 conversion used when sizing tensors. */
inline std::uint64_t
checked_u64(double v)
{
    FLAT_CHECK(v >= 0.0 && v <= 1.8e19, "value out of uint64 range: " << v);
    return static_cast<std::uint64_t>(v);
}

} // namespace flat

#endif // FLAT_COMMON_MATH_UTIL_H

#include "common/csv.h"

#include "common/status.h"

namespace flat {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), arity_(header.size())
{
    FLAT_CHECK(out_.good(), "cannot open CSV output: " << path);
    FLAT_CHECK(arity_ > 0, "CSV header must be non-empty");
    write_row(header);
}

void
CsvWriter::add_row(const std::vector<std::string>& cells)
{
    FLAT_CHECK(cells.size() == arity_,
               "CSV row arity " << cells.size() << " != " << arity_);
    write_row(cells);
}

void
CsvWriter::close()
{
    if (out_.is_open()) {
        out_.close();
    }
}

CsvWriter::~CsvWriter()
{
    close();
}

void
CsvWriter::write_row(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) {
            out_ << ',';
        }
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

std::string
CsvWriter::escape(const std::string& cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos) {
        return cell;
    }
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') {
            out += "\"\"";
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

} // namespace flat

#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace flat {

std::string
strprintf(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

std::string
join(const std::vector<std::string>& parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) {
            out.append(sep);
        }
        out.append(parts[i]);
    }
    return out;
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
trim(std::string_view s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(s[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1]))) {
        --end;
    }
    return std::string(s.substr(begin, end - begin));
}

std::string
to_lower(std::string_view s)
{
    std::string out(s);
    for (char& c : out) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

} // namespace flat

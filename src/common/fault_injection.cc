#include "common/fault_injection.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <set>
#include <thread>

#include "common/string_util.h"

namespace flat {
namespace {

/** Number of armed sites; probes bail out when it is zero. */
std::atomic<int> g_armed_count{0};

std::mutex g_mutex;

struct ArmedFault {
    FaultSpec spec;
    /** Hits of this site outside any scope (scope-less firing rule). */
    std::uint64_t hits = 0;
    /** kTransient: failing attempts so far per scope id. Lives here —
     *  not in the thread-local scope — so a retry loop that rebuilds
     *  its FaultScope per attempt still counts attempts cumulatively,
     *  and the count is identical for any thread placement. */
    std::map<std::uint64_t, std::uint64_t> transient_attempts;
};

std::map<std::string, ArmedFault>&
armed_faults()
{
    static std::map<std::string, ArmedFault> faults;
    return faults;
}

std::set<std::string>&
site_registry()
{
    static std::set<std::string> sites;
    return sites;
}

/** Thread-local work-item scope (see FaultScope). */
struct ScopeState {
    bool active = false;
    std::uint64_t id = 0;
    /** Sites already fired in this scope (fire-once semantics). */
    std::set<std::string> fired;
};

thread_local ScopeState t_scope;
thread_local std::string t_last_fired_site;

[[noreturn]] void
throw_fault(const std::string& site, const FaultSpec& spec)
{
    const std::string msg =
        strprintf("fault injected at probe '%s' (seed %llu)",
                  site.c_str(),
                  static_cast<unsigned long long>(spec.seed));
    switch (spec.action) {
      case FaultAction::kThrowInternal:
        throw InternalError(msg);
      case FaultAction::kThrowBadAlloc:
        throw std::bad_alloc();
      case FaultAction::kTransient:
        throw TransientError(
            strprintf("transient fault injected at probe '%s' "
                      "(seed %llu)",
                      site.c_str(),
                      static_cast<unsigned long long>(spec.seed)));
      case FaultAction::kCrash:
        // Simulated hard crash: no unwinding, no flushing — exactly
        // what a power cut or SIGKILL leaves behind. Kill/resume tests
        // prove the journal recovers from whatever reached the disk.
        std::fprintf(stderr, "[flat] crash fault at probe '%s'\n",
                     site.c_str());
        std::abort();
      case FaultAction::kThrowError:
      case FaultAction::kDelay:
        break;
    }
    throw FaultInjectedError(site, msg);
}

} // namespace

void
arm_fault(const std::string& site, const FaultSpec& spec)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    auto [it, inserted] = armed_faults().insert_or_assign(
        site, ArmedFault{spec, 0, {}});
    (void)it;
    if (inserted) {
        g_armed_count.fetch_add(1, std::memory_order_relaxed);
    }
}

void
disarm_fault(const std::string& site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (armed_faults().erase(site) > 0) {
        g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
disarm_all_faults()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    armed_faults().clear();
    g_armed_count.store(0, std::memory_order_relaxed);
}

std::pair<std::string, FaultSpec>
parse_fault_spec(const std::string& text)
{
    const std::vector<std::string> parts = split(text, ':');
    FLAT_CHECK(!parts.empty() && !parts[0].empty() && parts.size() <= 3,
               "fault spec '" << text
                              << "' is not SITE[:SEED][:ACTION[=MS]]");
    FaultSpec spec;
    if (parts.size() >= 2) {
        std::size_t pos = 0;
        try {
            spec.seed = std::stoull(parts[1], &pos);
        } catch (const std::exception&) {
            pos = 0;
        }
        FLAT_CHECK(pos != 0 && pos == parts[1].size(),
                   "fault spec '" << text << "' has a non-numeric seed '"
                                  << parts[1] << "'");
    }
    if (parts.size() == 3) {
        std::string action = to_lower(parts[2]);
        std::string delay;
        const std::size_t eq = action.find('=');
        if (eq != std::string::npos) {
            delay = action.substr(eq + 1);
            action = action.substr(0, eq);
        }
        if (action == "error") {
            spec.action = FaultAction::kThrowError;
        } else if (action == "internal") {
            spec.action = FaultAction::kThrowInternal;
        } else if (action == "oom") {
            spec.action = FaultAction::kThrowBadAlloc;
        } else if (action == "crash") {
            spec.action = FaultAction::kCrash;
            FLAT_CHECK(delay.empty(),
                       "fault spec '" << text
                                      << "': crash takes no argument");
        } else if (action == "transient") {
            spec.action = FaultAction::kTransient;
            spec.count = 1;
            if (!delay.empty()) {
                std::size_t pos = 0;
                try {
                    spec.count = std::stoull(delay, &pos);
                } catch (const std::exception&) {
                    pos = 0;
                }
                FLAT_CHECK(pos != 0 && pos == delay.size() &&
                               spec.count > 0,
                           "fault spec '"
                               << text
                               << "' has a bad transient count '"
                               << delay << "'");
            }
        } else if (action == "delay") {
            spec.action = FaultAction::kDelay;
            spec.delay_ms = 1000;
            if (!delay.empty()) {
                std::size_t pos = 0;
                try {
                    spec.delay_ms = std::stoull(delay, &pos);
                } catch (const std::exception&) {
                    pos = 0;
                }
                FLAT_CHECK(pos != 0 && pos == delay.size(),
                           "fault spec '" << text
                                          << "' has a bad delay '"
                                          << delay << "'");
            }
        } else {
            FLAT_FAIL("fault spec '"
                      << text << "' has unknown action '" << action
                      << "' (error | internal | oom | delay[=MS] | "
                         "transient[=N] | crash)");
        }
    }
    return {parts[0], spec};
}

std::vector<std::string>
registered_fault_sites()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    return {site_registry().begin(), site_registry().end()};
}

std::string
take_last_fired_fault_site()
{
    std::string site;
    site.swap(t_last_fired_site);
    return site;
}

FaultScope::FaultScope(std::uint64_t id)
{
    t_scope.active = true;
    t_scope.id = id;
    t_scope.fired.clear();
}

FaultScope::~FaultScope()
{
    t_scope.active = false;
    t_scope.fired.clear();
}

namespace fault_injection {

bool
enabled()
{
    return g_armed_count.load(std::memory_order_relaxed) > 0;
}

bool
register_site(const char* site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    site_registry().insert(site);
    return true;
}

void
hit(const char* site)
{
    FaultSpec spec;
    {
        std::lock_guard<std::mutex> lock(g_mutex);
        const auto it = armed_faults().find(site);
        if (it == armed_faults().end()) {
            return;
        }
        ArmedFault& armed = it->second;
        if (armed.spec.action == FaultAction::kTransient) {
            // Transient rule: fail the first `count` attempts of the
            // targeted work item, then succeed forever. The attempt
            // counter is keyed by scope id and persists across
            // FaultScope re-construction (one scope per retry).
            if (t_scope.active) {
                if (t_scope.id != armed.spec.seed) {
                    return;
                }
                std::uint64_t& attempts =
                    armed.transient_attempts[t_scope.id];
                if (attempts >= armed.spec.count) {
                    return;
                }
                ++attempts;
            } else {
                // Scope-less: fail hits [seed, seed + count).
                const std::uint64_t hit_no = armed.hits++;
                if (hit_no < armed.spec.seed ||
                    hit_no >= armed.spec.seed + armed.spec.count) {
                    return;
                }
            }
        } else if (t_scope.active) {
            // Scoped rule: fire exactly in the work item whose id
            // matches the seed, at most once per (site, scope).
            if (t_scope.id != armed.spec.seed ||
                t_scope.fired.count(site) > 0) {
                return;
            }
            t_scope.fired.insert(site);
        } else {
            // Scope-less rule: fire on the seed-th hit of the site.
            if (armed.hits++ != armed.spec.seed) {
                return;
            }
        }
        spec = armed.spec;
    }
    t_last_fired_site = site;
    if (spec.action == FaultAction::kDelay) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(spec.delay_ms));
        return;
    }
    throw_fault(site, spec);
}

} // namespace fault_injection
} // namespace flat

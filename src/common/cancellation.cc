#include "common/cancellation.h"

#include <csignal>
#include <cstdlib>

#include "common/string_util.h"

namespace flat {

const char*
to_string(CancelReason reason)
{
    switch (reason) {
      case CancelReason::kNone: return "none";
      case CancelReason::kSignal: return "signal";
      case CancelReason::kDeadline: return "deadline";
      case CancelReason::kUser: return "user";
    }
    return "none";
}

void
CancellationToken::set_deadline_ms(double ms_from_now)
{
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        ms_from_now));
}

void
CancellationToken::set_parent(const CancellationToken* parent)
{
    parent_ = parent;
}

void
CancellationToken::request(CancelReason reason)
{
    int expected = 0;
    state_.compare_exchange_strong(expected, static_cast<int>(reason),
                                   std::memory_order_acq_rel);
}

bool
CancellationToken::cancelled() const
{
    if (state_.load(std::memory_order_acquire) != 0) {
        return true;
    }
    if (parent_ != nullptr && parent_->cancelled()) {
        return true;
    }
    if (has_deadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
        // Latch the deadline so reason() stays stable afterwards.
        int expected = 0;
        state_.compare_exchange_strong(
            expected, static_cast<int>(CancelReason::kDeadline),
            std::memory_order_acq_rel);
        return true;
    }
    return false;
}

CancelReason
CancellationToken::reason() const
{
    const int state = state_.load(std::memory_order_acquire);
    if (state != 0) {
        return static_cast<CancelReason>(state);
    }
    if (parent_ != nullptr) {
        const CancelReason parent_reason = parent_->reason();
        if (parent_reason != CancelReason::kNone) {
            return parent_reason;
        }
    }
    if (cancelled()) { // trips a passed deadline
        return static_cast<CancelReason>(
            state_.load(std::memory_order_acquire));
    }
    return CancelReason::kNone;
}

void
CancellationToken::poll() const
{
    if (!cancelled()) {
        return;
    }
    const CancelReason why = reason();
    if (why == CancelReason::kDeadline) {
        throw CancelledError(why, "deadline exceeded");
    }
    throw CancelledError(
        why, strprintf("run cancelled (%s)", to_string(why)));
}

namespace {

/** Token the signal handlers target; set before installation. */
CancellationToken* g_signal_token = nullptr;

/** Signals seen so far; the second one hard-exits. */
std::atomic<int> g_signal_count{0};

extern "C" void
flat_cancellation_signal_handler(int signo)
{
    if (g_signal_count.fetch_add(1, std::memory_order_acq_rel) == 0) {
        if (g_signal_token != nullptr) {
            g_signal_token->request(CancelReason::kSignal);
        }
        return;
    }
    // Second signal: the user is done waiting for the drain.
    std::_Exit(128 + signo);
}

} // namespace

void
install_signal_cancellation(CancellationToken* token)
{
    g_signal_token = token;
    struct sigaction action = {};
    action.sa_handler = flat_cancellation_signal_handler;
    sigemptyset(&action.sa_mask);
    // SA_RESTART: the drain is poll-driven; interrupted syscalls would
    // only add spurious failure modes to in-flight point evaluations.
    action.sa_flags = SA_RESTART;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

} // namespace flat

/**
 * @file
 * Aligned text-table emitter used by the benchmark harnesses to print
 * the paper's tables/figure series in a readable form.
 */
#ifndef FLAT_COMMON_TABLE_H
#define FLAT_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace flat {

/**
 * Accumulates rows of string cells and prints them with aligned columns.
 *
 * Example:
 *   TextTable t({"SeqLen", "Base", "FLAT"});
 *   t.add_row({"512", "0.61", "0.98"});
 *   t.print(std::cout);
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Appends a data row; must have the same arity as the header. */
    void add_row(std::vector<std::string> cells);

    /** Appends a horizontal separator row. */
    void add_separator();

    /** Renders the table. */
    void print(std::ostream& os) const;

    /** Number of data rows (separators excluded). */
    std::size_t num_rows() const { return numDataRows_; }

  private:
    static constexpr const char* kSeparatorTag = "\x01--";

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::size_t numDataRows_ = 0;
};

} // namespace flat

#endif // FLAT_COMMON_TABLE_H

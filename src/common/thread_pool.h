/**
 * @file
 * Minimal std::thread-based work-sharing primitives for the DSE engine:
 * a reusable fixed-size ThreadPool and a blocking parallel_for built on
 * top of it. No external dependencies; safe under TSan.
 *
 * Concurrency contract of parallel_for:
 *  - every index in [0, n) is executed exactly once;
 *  - the call returns only after all iterations finished;
 *  - the first exception thrown by any iteration is rethrown to the
 *    caller (remaining iterations are abandoned);
 *  - nested calls (parallel_for from inside a body) degrade to serial
 *    execution instead of spawning threads recursively.
 */
#ifndef FLAT_COMMON_THREAD_POOL_H
#define FLAT_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flat {

class CancellationToken;

/**
 * Worker-thread count to use when the caller passes 0 ("auto"): the
 * FLAT_THREADS environment variable when set to a positive integer,
 * otherwise std::thread::hardware_concurrency() (at least 1).
 */
unsigned default_threads();

/** @p requested when positive, otherwise default_threads(). */
unsigned resolve_threads(unsigned requested);

/**
 * Fixed-size pool of worker threads draining a FIFO task queue.
 * Threads are started in the constructor and joined in the destructor;
 * wait() blocks until every task submitted so far has completed.
 */
class ThreadPool
{
  public:
    /** Starts @p workers threads (clamped to at least 1). */
    explicit ThreadPool(unsigned workers);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    /** Adds workers until the pool has at least @p workers threads
     *  (never shrinks; safe to call while tasks are running). */
    void grow_to(unsigned workers);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueues @p task for execution on some worker thread. */
    void submit(std::function<void()> task);

    /** Blocks until the queue is empty and no task is running. */
    void wait();

  private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_idle_;
    std::size_t running_ = 0;
    bool stopping_ = false;
};

/**
 * Runs @p body(i) for every i in [0, n) on up to @p threads threads
 * (0 = auto, see default_threads()). Iterations are handed out
 * dynamically in index order; with threads == 1 (or a nested call) the
 * loop runs serially, in order, on the calling thread.
 *
 * Worker threads come from one process-wide pool that is created on
 * first use, grown on demand, and deliberately never destroyed — the
 * per-call cost is a condition-variable wake, not thread creation, so
 * fine-grained call sites (one small search per sweep point) pay no
 * spawn/join tax. Every call still observes its own completion: the
 * call returns only after all of ITS iterations finished, even when
 * concurrent parallel_for calls share the pool.
 *
 * @p grain batches the dynamic hand-out: each worker claims @p grain
 * consecutive indices per atomic fetch (clamped to at least 1) and runs
 * them in index order. Larger grains amortize the scheduling atomics
 * for cheap bodies; the set of executed indices — and the exception
 * contract — is identical for every grain.
 *
 * @p cancel (optional) makes the loop cooperative: once the token is
 * cancelled, workers stop CLAIMING new index batches; iterations
 * already started run to completion, and the call returns normally
 * without throwing. Some indices are then simply never executed, so
 * only pass a token when the caller checks for cancellation afterwards
 * and discards partial results (the DSE search does; the sweep loop
 * instead polls the token inside its body so every result slot is
 * written).
 */
void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1,
                  const CancellationToken* cancel = nullptr);

} // namespace flat

#endif // FLAT_COMMON_THREAD_POOL_H

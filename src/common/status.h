/**
 * @file
 * Error handling primitives for the FLAT/ATTACC library.
 *
 * Follows the gem5 fatal()/panic() philosophy:
 *  - FLAT_CHECK / flat::Error   -> user-facing configuration errors
 *    (infeasible dataflow, bad model parameters).
 *  - FLAT_ASSERT / flat::InternalError -> invariant violations that
 *    indicate a bug in the library itself.
 */
#ifndef FLAT_COMMON_STATUS_H
#define FLAT_COMMON_STATUS_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace flat {

/** Error caused by invalid user input or an infeasible configuration. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

/**
 * Error from a transient condition that may succeed when the same work
 * item is retried (e.g. an injected flaky failure, a momentarily
 * unavailable resource). Batch drivers retry these with backoff; every
 * other Error is treated as deterministic and fails the item outright.
 */
class TransientError : public Error
{
  public:
    explicit TransientError(const std::string& msg) : Error(msg) {}
};

/** Error caused by a violated internal invariant (a library bug). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string& msg) : std::logic_error(msg) {}
};

namespace detail {

/** Builds the final exception message with source location context. */
std::string make_error_message(const char* kind, const char* cond,
                               const char* file, int line,
                               const std::string& detail);

} // namespace detail

} // namespace flat

/**
 * Check a user-facing precondition; throws flat::Error on failure.
 * Usage: FLAT_CHECK(buf_bytes > 0, "buffer must be positive, got " << x);
 */
#define FLAT_CHECK(cond, msg)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream flat_oss__;                                   \
            flat_oss__ << msg;                                               \
            throw ::flat::Error(::flat::detail::make_error_message(          \
                "check failed", #cond, __FILE__, __LINE__,                   \
                flat_oss__.str()));                                          \
        }                                                                    \
    } while (0)

/** Check an internal invariant; throws flat::InternalError on failure. */
#define FLAT_ASSERT(cond, msg)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream flat_oss__;                                   \
            flat_oss__ << msg;                                               \
            throw ::flat::InternalError(::flat::detail::make_error_message(  \
                "assertion failed", #cond, __FILE__, __LINE__,               \
                flat_oss__.str()));                                          \
        }                                                                    \
    } while (0)

/** Unconditional user-facing failure. */
#define FLAT_FAIL(msg)                                                       \
    do {                                                                     \
        std::ostringstream flat_oss__;                                       \
        flat_oss__ << msg;                                                   \
        throw ::flat::Error(::flat::detail::make_error_message(              \
            "error", "", __FILE__, __LINE__, flat_oss__.str()));             \
    } while (0)

#endif // FLAT_COMMON_STATUS_H

/**
 * @file
 * Tiny "key = value" configuration parser ('#' starts a comment) used
 * to describe custom accelerator platforms for the CLI without
 * recompiling.
 */
#ifndef FLAT_COMMON_CONFIG_H
#define FLAT_COMMON_CONFIG_H

#include <map>
#include <string>

namespace flat {

/** Ordered key -> value map; later duplicates win. */
using ConfigMap = std::map<std::string, std::string>;

/**
 * Parses configuration text: one `key = value` pair per line, blank
 * lines and `#` comments ignored, keys lower-cased. Throws flat::Error
 * on malformed lines.
 */
ConfigMap parse_config_text(const std::string& text);

/** Reads and parses a configuration file. */
ConfigMap parse_config_file(const std::string& path);

} // namespace flat

#endif // FLAT_COMMON_CONFIG_H

/**
 * @file
 * String formatting/splitting helpers.
 */
#ifndef FLAT_COMMON_STRING_UTIL_H
#define FLAT_COMMON_STRING_UTIL_H

#include <string>
#include <string_view>
#include <vector>

namespace flat {

/** printf-style formatting into a std::string. */
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Joins @p parts with @p sep. */
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/** Splits @p s on @p delim; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Trims ASCII whitespace from both ends. */
std::string trim(std::string_view s);

/** Lower-cases ASCII letters. */
std::string to_lower(std::string_view s);

} // namespace flat

#endif // FLAT_COMMON_STRING_UTIL_H

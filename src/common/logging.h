/**
 * @file
 * Tiny leveled logger. The model itself never logs on hot paths; logging
 * is for DSE progress and bench harness diagnostics.
 */
#ifndef FLAT_COMMON_LOGGING_H
#define FLAT_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace flat {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/** Global log threshold; messages below it are dropped. */
LogLevel log_level();
void set_log_level(LogLevel level);

/** Emits one log line to stderr (thread-safe at line granularity). */
void log_message(LogLevel level, const std::string& msg);

} // namespace flat

#define FLAT_LOG(level, msg)                                                 \
    do {                                                                     \
        if (static_cast<int>(level) >=                                       \
            static_cast<int>(::flat::log_level())) {                         \
            std::ostringstream flat_log_oss__;                               \
            flat_log_oss__ << msg;                                           \
            ::flat::log_message(level, flat_log_oss__.str());                \
        }                                                                    \
    } while (0)

#define FLAT_LOG_DEBUG(msg) FLAT_LOG(::flat::LogLevel::kDebug, msg)
#define FLAT_LOG_INFO(msg) FLAT_LOG(::flat::LogLevel::kInfo, msg)
#define FLAT_LOG_WARN(msg) FLAT_LOG(::flat::LogLevel::kWarn, msg)
#define FLAT_LOG_ERROR(msg) FLAT_LOG(::flat::LogLevel::kError, msg)

#endif // FLAT_COMMON_LOGGING_H

/**
 * @file
 * Byte/frequency unit constants and human-readable formatting.
 */
#ifndef FLAT_COMMON_UNITS_H
#define FLAT_COMMON_UNITS_H

#include <cstdint>
#include <string>

namespace flat {

constexpr std::uint64_t kKiB = 1024ull;
constexpr std::uint64_t kMiB = 1024ull * kKiB;
constexpr std::uint64_t kGiB = 1024ull * kMiB;

constexpr double kKHz = 1e3;
constexpr double kMHz = 1e6;
constexpr double kGHz = 1e9;

/** Bytes per second helpers (decimal, matching vendor BW specs). */
constexpr double kGBps = 1e9;
constexpr double kTBps = 1e12;

/** Formats a byte count as e.g. "512KiB", "2.5MiB", "1.2GiB". */
std::string format_bytes(std::uint64_t bytes);

/** Formats a bandwidth in bytes/s as e.g. "400GB/s". */
std::string format_bandwidth(double bytes_per_sec);

/** Formats seconds as the most readable of ns/us/ms/s. */
std::string format_time(double seconds);

/** Formats a count with K/M/G suffix (decimal). */
std::string format_count(double count);

/**
 * Parses byte sizes like "512KiB", "2MiB", "1.5GiB", "4KB" (decimal),
 * or a plain number of bytes. Throws flat::Error on malformed input.
 */
std::uint64_t parse_bytes(const std::string& text);

/** Parses bandwidths like "50GB/s", "1TB/s", "400e9". */
double parse_bandwidth(const std::string& text);

/**
 * Parses durations like "500ns", "1.2us", "3ms", "0.5s", or a plain
 * number of seconds. Returns seconds. Throws flat::Error on malformed
 * input.
 */
double parse_time(const std::string& text);

} // namespace flat

#endif // FLAT_COMMON_UNITS_H

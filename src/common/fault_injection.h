/**
 * @file
 * Deterministic, seed-driven fault injection for robustness testing.
 *
 * Library code marks named probe sites:
 *
 *   FLAT_FAULT_POINT("gemm_engine.tile_menu");
 *
 * A probe is free when nothing is armed (one relaxed atomic load).
 * Tests and the CLI arm a site with a FaultSpec; when an armed probe
 * fires it throws (Error / InternalError / bad_alloc) or sleeps,
 * letting a harness prove that one poisoned work item degrades
 * gracefully instead of taking the whole process down.
 *
 * Determinism contract: a batch driver wraps each work item in a
 * FaultScope carrying the item's index. An armed fault fires exactly in
 * the scope whose id equals the spec's seed, so "poison point 7" means
 * point 7 on every run, for any thread count. Probes hit outside any
 * scope fire on the seed-th hit of that site (a per-site counter).
 */
#ifndef FLAT_COMMON_FAULT_INJECTION_H
#define FLAT_COMMON_FAULT_INJECTION_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace flat {

/** Thrown by an armed probe with action kThrowError. */
class FaultInjectedError : public Error
{
  public:
    FaultInjectedError(const std::string& site, const std::string& msg)
        : Error(msg), site_(site)
    {
    }

    const std::string& site() const { return site_; }

  private:
    std::string site_;
};

/** What an armed probe does when it fires. */
enum class FaultAction {
    kThrowError,    ///< throw FaultInjectedError (a flat::Error)
    kThrowInternal, ///< throw flat::InternalError
    kThrowBadAlloc, ///< throw std::bad_alloc (simulated OOM)
    kDelay,         ///< sleep delay_ms once per scope (deadline tests)
    kTransient,     ///< throw TransientError the first `count` times
    kCrash,         ///< std::abort() mid-run (kill/resume tests)
};

/** One armed fault. */
struct FaultSpec {
    FaultAction action = FaultAction::kThrowError;

    /** FaultScope id (work-item index) the fault fires in; outside any
     *  scope, the 0-based hit number of the site that fires. */
    std::uint64_t seed = 0;

    /** Sleep duration for kDelay, in milliseconds. */
    std::uint64_t delay_ms = 0;

    /** kTransient: failing attempts before the site succeeds. The
     *  per-scope attempt counter survives FaultScope re-construction,
     *  so a retrying driver that re-scopes each attempt still sees
     *  exactly `count` failures, on any thread count. */
    std::uint64_t count = 1;
};

/** Arms (or re-arms) @p site with @p spec. */
void arm_fault(const std::string& site, const FaultSpec& spec);

/** Disarms @p site (no-op when not armed). */
void disarm_fault(const std::string& site);

/** Disarms everything and resets the per-site hit counters. */
void disarm_all_faults();

/**
 * Parses the CLI syntax SITE[:SEED][:ACTION[=N]], where ACTION is one
 * of error | internal | oom | delay[=MS] (default 1000) |
 * transient[=N] (fail the first N attempts, default 1) | crash
 * (std::abort() mid-run, for kill/resume testing):
 *   "dse.search_attention:7"
 *   "sweep.point:3:delay=500"
 *   "sweep.point:3:transient=2"
 *   "sweep.point:5:crash"
 * Throws flat::Error on malformed specs.
 */
std::pair<std::string, FaultSpec> parse_fault_spec(const std::string& text);

/** Probe sites reached at least once in this process, sorted. */
std::vector<std::string> registered_fault_sites();

/**
 * The site of the most recent fault that fired (threw or slept) on the
 * calling thread; empty when none. Consumed (cleared) by the call, so
 * diagnostics attribute a fault to exactly one record.
 */
std::string take_last_fired_fault_site();

/**
 * RAII thread-local scope id tagging the current work item (see the
 * determinism contract above). Scopes do not nest meaningfully: the
 * innermost active scope wins.
 */
class FaultScope
{
  public:
    explicit FaultScope(std::uint64_t id);
    ~FaultScope();

    FaultScope(const FaultScope&) = delete;
    FaultScope& operator=(const FaultScope&) = delete;
};

namespace fault_injection {

/** Fast-path guard: true iff at least one fault is armed. */
bool enabled();

/** Slow path behind FLAT_FAULT_POINT; may throw or sleep. */
void hit(const char* site);

/** Adds @p site to the probe registry; always returns true. */
bool register_site(const char* site);

} // namespace fault_injection
} // namespace flat

/**
 * Marks a named probe site. Near-zero cost when nothing is armed; the
 * site registers itself on first execution (thread-safe static init).
 */
#define FLAT_FAULT_POINT(site)                                               \
    do {                                                                     \
        static const bool flat_fault_registered__ =                          \
            ::flat::fault_injection::register_site(site);                    \
        (void)flat_fault_registered__;                                       \
        if (::flat::fault_injection::enabled()) {                            \
            ::flat::fault_injection::hit(site);                              \
        }                                                                    \
    } while (0)

#endif // FLAT_COMMON_FAULT_INJECTION_H

#include "serving/arrival.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/status.h"
#include "common/string_util.h"

namespace flat {

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
SplitMix64::next_unit()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::string
to_string(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::kPoisson: return "poisson";
      case ArrivalKind::kBursty: return "bursty";
      case ArrivalKind::kReplay: return "replay";
    }
    return "?";
}

ArrivalKind
parse_arrival_kind(const std::string& name)
{
    const std::string key = to_lower(name);
    if (key == "poisson") {
        return ArrivalKind::kPoisson;
    }
    if (key == "bursty") {
        return ArrivalKind::kBursty;
    }
    if (key == "replay") {
        return ArrivalKind::kReplay;
    }
    FLAT_FAIL("unknown arrival kind '" << name
                                       << "' (poisson | bursty | replay)");
}

namespace {

/** Exponential variate via inverse CDF: -ln(1-u)/rate, u in [0,1). */
double
exp_interarrival(SplitMix64& rng, double rate)
{
    return -std::log(1.0 - rng.next_unit()) / rate;
}

/** Deterministic +/- 25% jitter of the prompt budget (min 1 token). */
std::uint64_t
jitter_prompt(SplitMix64& rng, std::uint64_t prompt)
{
    const double scale = 0.75 + 0.5 * rng.next_unit();
    const std::uint64_t tokens =
        static_cast<std::uint64_t>(static_cast<double>(prompt) * scale);
    return std::max<std::uint64_t>(1, tokens);
}

std::vector<Request>
replay_arrivals(const std::string& path)
{
    std::ifstream in(path);
    FLAT_CHECK(in.good(), "cannot open arrival trace '" << path << "'");
    std::vector<Request> out;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#') {
            continue;
        }
        double arrival = 0.0;
        unsigned long long prompt = 0;
        unsigned long long output = 0;
        const int fields = std::sscanf(line.c_str(), "%lf , %llu , %llu",
                                       &arrival, &prompt, &output);
        FLAT_CHECK(fields == 3,
                   path << ":" << line_no
                        << ": expected 'arrival_s,prompt,output', got '"
                        << line << "'");
        FLAT_CHECK(arrival >= 0.0 && prompt > 0 && output > 0,
                   path << ":" << line_no
                        << ": arrival must be >= 0 and token counts "
                           "positive");
        Request r;
        r.arrival_s = arrival;
        r.prompt_tokens = prompt;
        r.output_tokens = output;
        out.push_back(r);
    }
    FLAT_CHECK(!out.empty(),
               "arrival trace '" << path << "' holds no requests");
    return out;
}

} // namespace

std::vector<Request>
generate_arrivals(const ArrivalOptions& options)
{
    std::vector<Request> out;
    if (options.kind == ArrivalKind::kReplay) {
        out = replay_arrivals(options.replay_file);
    } else {
        FLAT_CHECK(options.rate_rps > 0.0,
                   "arrival rate must be positive");
        FLAT_CHECK(options.requests > 0,
                   "need at least one request to serve");
        FLAT_CHECK(options.prompt_tokens > 0 && options.output_tokens > 0,
                   "prompt/output token budgets must be positive");
        SplitMix64 rng(options.seed);
        double now = 0.0;
        for (std::uint64_t i = 0; i < options.requests; ++i) {
            double rate = options.rate_rps;
            if (options.kind == ArrivalKind::kBursty) {
                FLAT_CHECK(options.burst_len > 0 &&
                               options.burst_factor >= 1.0,
                           "bursty arrivals need burst_len >= 1 and "
                           "burst_factor >= 1");
                // Within a burst the rate is factor x mean; the first
                // request of each burst pays the stretched idle gap so
                // the long-run mean stays rate_rps.
                const bool burst_head = i % options.burst_len == 0;
                rate = burst_head
                           ? options.rate_rps / options.burst_factor
                           : options.rate_rps * options.burst_factor;
            }
            now += exp_interarrival(rng, rate);
            Request r;
            r.arrival_s = now;
            r.prompt_tokens = jitter_prompt(rng, options.prompt_tokens);
            r.output_tokens = options.output_tokens;
            out.push_back(r);
        }
    }
    // Replay files may be unsorted; a stable sort keeps equal-time
    // requests in file order, then ids are dense in arrival order.
    std::stable_sort(out.begin(), out.end(),
                     [](const Request& a, const Request& b) {
                         return a.arrival_s < b.arrival_s;
                     });
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i].id = i;
    }
    return out;
}

} // namespace flat

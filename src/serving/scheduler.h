/**
 * @file
 * Continuous-batching scheduler for the traffic simulator: a bounded
 * active set (the batch arbitration cap), a FIFO waiting queue, and
 * two prefill-vs-decode interleaving policies. Fully deterministic —
 * every decision is a pure function of the queue state, so the serving
 * loop's results are bit-identical at any thread count.
 */
#ifndef FLAT_SERVING_SCHEDULER_H
#define FLAT_SERVING_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "serving/arrival.h"

namespace flat {

/**
 * Prefill-vs-decode interleaving policy.
 *
 * kPrefillFirst admits waiting requests into any free batch slot
 * before running the next decode step (continuous batching proper:
 * highest occupancy, new requests interleave with in-flight decodes).
 * kDecodeFirst drains the current batch to completion before admitting
 * the next one (static batching: no interleave, decode steps never
 * share the array with a prefill).
 */
enum class SchedPolicy {
    kPrefillFirst,
    kDecodeFirst,
};

std::string to_string(SchedPolicy policy);

/** Parses "prefill-first" / "decode-first"; throws flat::Error. */
SchedPolicy parse_sched_policy(const std::string& name);

/** All policies, stable order (the serving DSE enumerates these). */
const std::vector<SchedPolicy>& sched_policies();

/** Scheduler knobs. */
struct SchedOptions {
    SchedPolicy policy = SchedPolicy::kPrefillFirst;

    /** Batch arbitration cap: the active set never exceeds this. */
    std::uint64_t max_batch = 8;
};

/** One scheduled step of the serving loop. */
struct SchedStep {
    enum class Kind {
        kPrefill, ///< run the prompts of `ids` (they join the batch)
        kDecode,  ///< one token for every request in `ids`
        kIdle,    ///< nothing runnable; wait for the next arrival
    };

    Kind kind = Kind::kIdle;
    std::vector<std::uint64_t> ids; ///< participating request ids
};

/** In-flight request state. */
struct ActiveRequest {
    Request request;
    bool prefilled = false;
    std::uint64_t generated = 0; ///< decode tokens produced so far
};

class ContinuousBatchScheduler
{
  public:
    explicit ContinuousBatchScheduler(const SchedOptions& options);

    /** Adds an arrived request to the waiting queue (callers enqueue
     *  in arrival order, which is the FIFO service order). */
    void enqueue(const Request& request);

    /** True while any request is waiting or in flight. */
    bool has_work() const;

    /** The next step under the policy: a pure function of state. */
    SchedStep plan() const;

    /** Applies a planned prefill: the requests join the active set. */
    void complete_prefill(const SchedStep& step);

    /**
     * Applies a planned decode: every member generates one token.
     * Returns the ids (ascending) of requests that finished their
     * output budget and left the batch.
     */
    std::vector<std::uint64_t> complete_decode(const SchedStep& step);

    /** Context length of an active request: prompt plus the tokens
     *  generated so far, plus the one being produced. */
    std::uint64_t context_tokens(std::uint64_t id) const;

    std::size_t waiting() const { return waiting_.size(); }
    std::size_t active() const { return active_.size(); }
    const SchedOptions& options() const { return options_; }

  private:
    const ActiveRequest& active_by_id(std::uint64_t id) const;

    SchedOptions options_;
    std::deque<Request> waiting_;
    std::vector<ActiveRequest> active_; ///< sorted by request id
};

} // namespace flat

#endif // FLAT_SERVING_SCHEDULER_H

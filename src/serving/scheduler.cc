#include "serving/scheduler.h"

#include <algorithm>

#include "common/status.h"
#include "common/string_util.h"

namespace flat {

std::string
to_string(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::kPrefillFirst: return "prefill-first";
      case SchedPolicy::kDecodeFirst: return "decode-first";
    }
    return "?";
}

SchedPolicy
parse_sched_policy(const std::string& name)
{
    const std::string key = to_lower(name);
    if (key == "prefill-first") {
        return SchedPolicy::kPrefillFirst;
    }
    if (key == "decode-first") {
        return SchedPolicy::kDecodeFirst;
    }
    FLAT_FAIL("unknown scheduling policy '"
              << name << "' (prefill-first | decode-first)");
}

const std::vector<SchedPolicy>&
sched_policies()
{
    static const std::vector<SchedPolicy> policies = {
        SchedPolicy::kPrefillFirst, SchedPolicy::kDecodeFirst};
    return policies;
}

ContinuousBatchScheduler::ContinuousBatchScheduler(
    const SchedOptions& options)
    : options_(options)
{
    FLAT_CHECK(options_.max_batch > 0,
               "the batch arbitration cap must be positive");
}

void
ContinuousBatchScheduler::enqueue(const Request& request)
{
    waiting_.push_back(request);
}

bool
ContinuousBatchScheduler::has_work() const
{
    return !waiting_.empty() || !active_.empty();
}

SchedStep
ContinuousBatchScheduler::plan() const
{
    SchedStep step;
    const std::uint64_t free_slots =
        options_.max_batch - static_cast<std::uint64_t>(active_.size());

    // Admission: FIFO waiting requests into free slots. Prefill-first
    // admits whenever a slot is free; decode-first only once the batch
    // fully drained.
    const bool admit =
        !waiting_.empty() && free_slots > 0 &&
        (options_.policy == SchedPolicy::kPrefillFirst ||
         active_.empty());
    if (admit) {
        step.kind = SchedStep::Kind::kPrefill;
        const std::uint64_t n = std::min<std::uint64_t>(
            free_slots, static_cast<std::uint64_t>(waiting_.size()));
        for (std::uint64_t i = 0; i < n; ++i) {
            step.ids.push_back(waiting_[i].id);
        }
        return step;
    }

    if (!active_.empty()) {
        step.kind = SchedStep::Kind::kDecode;
        for (const ActiveRequest& a : active_) {
            step.ids.push_back(a.request.id);
        }
        return step;
    }

    return step; // kIdle: nothing runnable until the next arrival
}

void
ContinuousBatchScheduler::complete_prefill(const SchedStep& step)
{
    FLAT_CHECK(step.kind == SchedStep::Kind::kPrefill,
               "complete_prefill needs a prefill step");
    for (const std::uint64_t id : step.ids) {
        FLAT_CHECK(!waiting_.empty() && waiting_.front().id == id,
                   "prefill step out of FIFO order (request " << id
                                                              << ")");
        ActiveRequest active;
        active.request = waiting_.front();
        active.prefilled = true;
        waiting_.pop_front();
        active_.push_back(active);
    }
    FLAT_CHECK(active_.size() <= options_.max_batch,
               "batch occupancy exceeded the arbitration cap");
    std::sort(active_.begin(), active_.end(),
              [](const ActiveRequest& a, const ActiveRequest& b) {
                  return a.request.id < b.request.id;
              });
}

std::vector<std::uint64_t>
ContinuousBatchScheduler::complete_decode(const SchedStep& step)
{
    FLAT_CHECK(step.kind == SchedStep::Kind::kDecode,
               "complete_decode needs a decode step");
    std::vector<std::uint64_t> finished;
    for (const std::uint64_t id : step.ids) {
        for (ActiveRequest& a : active_) {
            if (a.request.id != id) {
                continue;
            }
            ++a.generated;
            if (a.generated >= a.request.output_tokens) {
                finished.push_back(id);
            }
            break;
        }
    }
    active_.erase(
        std::remove_if(active_.begin(), active_.end(),
                       [&](const ActiveRequest& a) {
                           return std::find(finished.begin(),
                                            finished.end(),
                                            a.request.id) !=
                                  finished.end();
                       }),
        active_.end());
    return finished;
}

const ActiveRequest&
ContinuousBatchScheduler::active_by_id(std::uint64_t id) const
{
    for (const ActiveRequest& a : active_) {
        if (a.request.id == id) {
            return a;
        }
    }
    FLAT_FAIL("request " << id << " is not in the active batch");
}

std::uint64_t
ContinuousBatchScheduler::context_tokens(std::uint64_t id) const
{
    const ActiveRequest& a = active_by_id(id);
    return a.request.prompt_tokens + a.generated + 1;
}

} // namespace flat

/**
 * @file
 * Deterministic seeded arrival-trace generation for the request-level
 * traffic simulator: Poisson and bursty processes from an own-rolled
 * SplitMix64 stream (std:: distributions are implementation-defined,
 * so they would break cross-toolchain bit-identity), plus replay of a
 * recorded trace file.
 */
#ifndef FLAT_SERVING_ARRIVAL_H
#define FLAT_SERVING_ARRIVAL_H

#include <cstdint>
#include <string>
#include <vector>

namespace flat {

/**
 * SplitMix64: tiny, fully specified PRNG (Steele et al.). One stream
 * per trace; the same seed always produces the same arrivals on every
 * platform and thread count.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next();

    /** Uniform double in [0, 1): the top 53 bits of next(). */
    double next_unit();

  private:
    std::uint64_t state_;
};

/** Arrival process families the generator supports. */
enum class ArrivalKind {
    kPoisson, ///< exponential inter-arrival times at `rate_rps`
    kBursty,  ///< Poisson bursts of `burst_len` at `burst_factor` x
              ///< rate, separated by proportionally longer idle gaps
    kReplay,  ///< read (arrival_s, prompt, output) rows from a file
};

std::string to_string(ArrivalKind kind);

/** Parses "poisson" / "bursty" / "replay"; throws flat::Error. */
ArrivalKind parse_arrival_kind(const std::string& name);

/** One inference request in the arrival trace. */
struct Request {
    std::uint64_t id = 0;          ///< dense index, arrival order
    double arrival_s = 0.0;        ///< arrival time (seconds)
    std::uint64_t prompt_tokens = 0;
    std::uint64_t output_tokens = 0;
};

/** Knobs of the arrival-trace generator. */
struct ArrivalOptions {
    ArrivalKind kind = ArrivalKind::kPoisson;
    std::uint64_t seed = 1;

    /** Mean offered load in requests/second. */
    double rate_rps = 4.0;

    /** Number of requests to generate (ignored for kReplay). */
    std::uint64_t requests = 64;

    /** Prompt/output token budget per request. The generator jitters
     *  the prompt by up to +/- 25% (deterministically) so batches mix
     *  context lengths. */
    std::uint64_t prompt_tokens = 512;
    std::uint64_t output_tokens = 32;

    /** kBursty: requests per burst and the within-burst rate
     *  multiplier; the idle gap between bursts stretches so the mean
     *  offered load stays `rate_rps`. */
    std::uint64_t burst_len = 8;
    double burst_factor = 4.0;

    /** kReplay: trace file, one `arrival_s,prompt,output` row per
     *  line ('#' comments and blank lines skipped). */
    std::string replay_file;
};

/**
 * Generates the arrival trace: requests sorted by arrival time with
 * dense ids in arrival order. Throws flat::Error on bad options or an
 * unreadable/malformed replay file.
 */
std::vector<Request> generate_arrivals(const ArrivalOptions& options);

} // namespace flat

#endif // FLAT_SERVING_ARRIVAL_H

/**
 * @file
 * Request-level traffic simulator: serves a seeded arrival trace
 * through the continuous-batching scheduler, pricing every prefill and
 * decode step with the operator cost model (through the eval cache and
 * the batched SoA evaluator the DSE already uses), and reports
 * p50/p95/p99 request latency and sustained tokens/s against an SLO.
 *
 * The event loop is strictly serial — the DSE inside each step-cost
 * lookup may fan out across threads, but its result is bit-identical
 * at any thread count, so the serving report is too. Step costs are
 * memoized per (kind, batch, context-bucket) and optionally journaled,
 * so a resumed run replays recorded costs instead of re-searching.
 */
#ifndef FLAT_SERVING_SERVING_H
#define FLAT_SERVING_SERVING_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "serving/arrival.h"
#include "serving/scheduler.h"

namespace flat {

/** Knobs of one serving simulation. */
struct ServeOptions {
    SchedOptions sched;

    /** Dataflow policy the per-step DSE implements ("flat-opt", ...). */
    std::string policy = "flat-opt";

    /**
     * Context lengths are rounded up to a multiple of this before the
     * cost lookup (a paged-KV-style allocation granule): it bounds the
     * number of distinct DSE problems a trace generates.
     */
    std::uint64_t ctx_bucket = 64;

    /** Inner cost-model/DSE options (threads, styles, quick menus,
     *  cancel token). `sim.cancel` also drains the serving loop. */
    SimOptions sim;

    /** Search mode of the auto-DSE (search_serving): the per-step
     *  L-A searches default to the analytic tile mapper, which prices
     *  a step in a handful of evaluations instead of the full sweep.
     *  Set kExhaustive to fall back to the old behaviour
     *  (`flatsim --serve --search-mode exhaustive`). The mode is part
     *  of the serve journal's space hash, so a journal written under
     *  one mode never resumes under another. Plain run_serving()
     *  prices steps under `sim.search_mode` as usual. */
    SearchMode dse_mode = SearchMode::kAnalytic;

    /** Optional step-cost journal (scope "serve"); not owned. Resumed
     *  records short-circuit the per-step DSE entirely. */
    RunJournal* journal = nullptr;
};

/** SLO report of one serving run. */
struct ServeReport {
    std::string model;
    std::string policy;        ///< dataflow policy
    std::string sched_policy;  ///< prefill-vs-decode interleaving
    std::uint64_t max_batch = 0;

    std::uint64_t offered = 0;   ///< requests in the trace
    std::uint64_t completed = 0; ///< requests fully decoded

    /** Request latency (arrival -> last token) percentiles, seconds;
     *  nearest-rank over the completed requests. */
    double p50_s = 0.0;
    double p95_s = 0.0;
    double p99_s = 0.0;
    double mean_s = 0.0;

    double makespan_s = 0.0;     ///< simulated clock at drain
    double tokens_per_s = 0.0;   ///< generated tokens / makespan

    std::uint64_t prefilled_tokens = 0;
    std::uint64_t generated_tokens = 0;

    std::uint64_t prefill_steps = 0;
    std::uint64_t decode_steps = 0;

    /** Step-cost lookups vs. memo/journal hits (the SoA evaluator and
     *  eval cache sit below the misses). */
    std::uint64_t cost_lookups = 0;
    std::uint64_t cost_memo_hits = 0;
    std::uint64_t cost_journal_hits = 0;

    /** Completion order (request ids): pinned by determinism tests. */
    std::vector<std::uint64_t> completion_order;

    /** True when the run drained early on cancellation (SIGINT):
     *  percentiles cover the completed prefix only. */
    bool cancelled = false;
};

/**
 * Canonical description of a serving run: every knob that changes the
 * report (accel, model, the full arrival trace, scheduler policy and
 * cap, dataflow policy, style menu, quick flag, ctx bucket) and none
 * of the execution knobs (threads, batch width). fnv1a64 of this is
 * the journal space hash — the policy axis is folded in here.
 */
std::string serving_space_canonical(const AccelConfig& accel,
                                    const ModelConfig& model,
                                    const std::vector<Request>& requests,
                                    const ServeOptions& options);

/**
 * Serves @p requests on @p accel. Deterministic for fixed inputs at
 * any `sim.threads`. A cancelled run returns a partial report with
 * `cancelled = true` instead of throwing, so callers can surface the
 * drained prefix before exiting with the cancellation code.
 */
ServeReport run_serving(const AccelConfig& accel, const ModelConfig& model,
                        const std::vector<Request>& requests,
                        const ServeOptions& options);

/** One candidate of the serving DSE. */
struct ServingChoice {
    std::string style;      ///< execution style (registry id)
    SchedPolicy sched = SchedPolicy::kPrefillFirst;
};

/** Serving DSE result: best (style x batching policy) for the trace. */
struct ServingSearchResult {
    bool found = false;
    ServingChoice best;
    ServeReport report; ///< the winning combination's report

    /** Every evaluated combination, enumeration order. */
    std::vector<ServeReport> evaluated;
};

/**
 * Serving objective for the DSE: enumerates execution styles (the
 * registry's stable order, or `options.sim.styles` when set) crossed
 * with every batching policy, serves the trace under each, and picks
 * the highest tokens/s (ties: lower p99, then enumeration order).
 * Infeasible combinations (a style that admits no dataflow for some
 * step) are skipped. Cancellation drains the current combination and
 * returns the best seen so far with `report.cancelled` set.
 */
ServingSearchResult search_serving(const AccelConfig& accel,
                                   const ModelConfig& model,
                                   const std::vector<Request>& requests,
                                   const ServeOptions& options);

} // namespace flat

#endif // FLAT_SERVING_SERVING_H
